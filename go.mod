module mummi

go 1.22

// Command matrix replays the committed scenario catalog — the workflow
// instances under scenarios/*.trace.json — and gates their per-scenario
// BENCH_scenario_<name>.json ledgers against drift. It is the `make
// matrix` entry point and the enumerable form of "as many scenarios as you
// can imagine": every scenario is a trace file (internal/trace), every
// replay is deterministic per trace, and every deterministic metric is
// exact-matched against the committed ledger (internal/benchfmt; timing
// metrics are thresholded like every other BENCH_*.json).
//
// Usage:
//
//	go run ./scripts/matrix                         # replay all, gate against committed ledgers
//	go run ./scripts/matrix -only laptop-smoke      # subset (comma-separated scenario names)
//	go run ./scripts/matrix -update                 # rewrite the committed ledgers
//	go run ./scripts/matrix -outdir d -no-timing    # write timing-free ledgers for a determinism diff
//	go run ./scripts/matrix -list                   # print the catalog and exit
//
// The CI smoke replays three fast scenarios twice with -no-timing and
// byte-diffs the two output directories: a clean diff proves same-seed
// scenario replays are deterministic end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mummi/internal/benchfmt"
	"mummi/internal/campaign"
	"mummi/internal/trace"
)

func main() {
	scenariosDir := flag.String("scenarios", "scenarios", "directory of committed *.trace.json scenarios")
	outdir := flag.String("outdir", "", "where to write fresh BENCH_scenario_*.json (default: temp dir)")
	only := flag.String("only", "", "comma-separated scenario names to replay (default: all)")
	update := flag.Bool("update", false, "rewrite the committed ledgers in -scenarios instead of comparing")
	threshold := flag.Float64("threshold", 4.0, "max allowed fresh/committed ratio for timing metrics")
	noTiming := flag.Bool("no-timing", false, "omit wall-clock metrics so ledgers byte-diff across runs")
	list := flag.Bool("list", false, "print the scenario catalog and exit")
	flag.Parse()

	if err := run(*scenariosDir, *outdir, *only, *update, *threshold, *noTiming, *list); err != nil {
		fmt.Fprintln(os.Stderr, "matrix:", err)
		os.Exit(1)
	}
}

// ledgerName is the committed per-scenario report filename.
func ledgerName(scenario string) string {
	return "BENCH_scenario_" + strings.ReplaceAll(scenario, "-", "_") + ".json"
}

func run(scenariosDir, outdir, only string, update bool, threshold float64, noTiming, list bool) error {
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.trace.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.trace.json under %s", scenariosDir)
	}
	sort.Strings(paths)

	traces := make(map[string]*trace.Trace, len(paths))
	var names []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		t, err := trace.Parse(data)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if want := t.Name + ".trace.json"; filepath.Base(p) != want {
			return fmt.Errorf("%s: file name does not match trace name %q (want %s)", p, t.Name, want)
		}
		traces[t.Name] = t
		names = append(names, t.Name)
	}

	if list {
		for _, name := range names {
			fmt.Printf("%-24s %s\n", name, traces[name].Description)
		}
		return nil
	}

	selected := names
	if only != "" {
		selected = nil
		for _, name := range strings.Split(only, ",") {
			name = strings.TrimSpace(name)
			if _, ok := traces[name]; !ok {
				return fmt.Errorf("unknown scenario %q (see -list)", name)
			}
			selected = append(selected, name)
		}
	}

	if outdir == "" {
		tmp, err := os.MkdirTemp("", "mummi-matrix")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		outdir = tmp
	} else if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}

	failures := 0
	for _, name := range selected {
		t := traces[name]
		rep, wall, err := replay(t, noTiming)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		fresh := filepath.Join(outdir, ledgerName(name))
		if update {
			fresh = filepath.Join(scenariosDir, ledgerName(name))
		}
		if err := rep.WriteFile(fresh); err != nil {
			return err
		}
		fmt.Printf("matrix: %-24s replayed in %8v  -> %s\n", name, wall.Round(time.Millisecond), fresh)
		if update {
			continue
		}
		committed := filepath.Join(scenariosDir, ledgerName(name))
		oldRep, err := benchfmt.Load(committed)
		if err != nil {
			return fmt.Errorf("scenario %s has no committed ledger (run -update): %w", name, err)
		}
		res, err := benchfmt.Compare(os.Stdout, oldRep, rep, committed, threshold)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		fmt.Printf("matrix: %-24s %d compared, %d skipped, %d failures\n",
			name, res.Compared, res.Skipped, res.Failures)
		failures += res.Failures
	}
	if failures > 0 {
		return fmt.Errorf("%d metric(s) drifted from the committed ledgers", failures)
	}
	fmt.Printf("matrix: %d scenario(s) clean\n", len(selected))
	return nil
}

// replay runs one scenario and distills its deterministic ledger. Every
// metric except replay_wall_sec is a pure function of the trace, so two
// replays of the same file produce byte-identical reports (with -no-timing,
// literally identical files).
func replay(t *trace.Trace, noTiming bool) (*benchfmt.Report, time.Duration, error) {
	cfg, err := t.Config()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	wall := time.Since(start)

	rep := benchfmt.New(0, cfg.Seed, false, 0)
	scenario := map[string]float64{
		"runs_done":           float64(res.RunsDone),
		"node_hours":          float64(res.TotalNodeHours),
		"matcher_visits":      float64(res.MatcherVisits),
		"snapshots":           float64(res.Snapshots),
		"patches":             float64(res.Patches),
		"cg_selected":         float64(res.CGSelected),
		"cg_frames":           float64(res.CGFrames),
		"cg_frame_candidates": float64(res.CGFrameCandidates),
		"aa_selected":         float64(res.AASelected),
		"files":               float64(res.Files),
		"bytes":               float64(res.Bytes),
		"injected_failures":   float64(res.InjectedFailures),
		"anomalies":           float64(len(res.Anomalies)),
	}
	if !noTiming {
		scenario["replay_wall_sec"] = wall.Seconds()
	}
	rep.Record("scenario", scenario)
	if cfg.Faults != nil {
		rep.Record("chaos", map[string]float64{
			"node_crashes":     float64(res.NodeCrashes),
			"job_hangs":        float64(res.JobHangs),
			"wm_restarts":      float64(res.WMRestarts),
			"store_put_errors": float64(res.StorePutErrors),
		})
	}
	// Distributed-WM ledger, only for fleet scenarios so the committed
	// single-WM ledgers keep their exact historical key set.
	if cfg.WMInstances > 1 {
		rep.Record("fleet", map[string]float64{
			"wm_instances":      float64(cfg.WMInstances),
			"wm_crashes":        float64(res.WMCrashes),
			"wm_adoptions":      float64(res.WMAdoptions),
			"lease_expirations": float64(res.LeaseExpirations),
		})
	}
	return rep, wall, nil
}

#!/bin/sh
# Minimal CI gate: static analysis first (vet + the project's own analyzer
# suite, cmd/mummi-lint), then build, the full test suite, and the
# race-detector pass over the packages that exercise the parallel selector
# engine and the coordination layers. Mirrors the Makefile targets; stdlib
# toolchain only, no external dependencies.
set -eux

go vet ./...
go run ./cmd/mummi-lint ./...
go build ./...
go test ./...
go test -race ./internal/dynim/... ./internal/knn/... ./internal/parallel/... \
	./internal/core/... ./internal/sched/... ./internal/kvstore/... \
	./internal/feedback/... ./internal/telemetry/...

# Observability smoke: the example campaign must emit a loadable Chrome
# trace and a metrics snapshot with nonzero counters for all four workflow
# tasks (tracecheck fails on empty or unparsable artifacts).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/mummi-sim campaign -scale 0.02 \
	-trace "$tmpdir/trace.json" -metrics "$tmpdir/metrics.json"
go run ./scripts/tracecheck "$tmpdir/trace.json" "$tmpdir/metrics.json"

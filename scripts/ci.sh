#!/bin/sh
# Minimal CI gate: static analysis first (vet + the project's own analyzer
# suite, cmd/mummi-lint — per-package and interprocedural, with the
# stale-suppression audit and a wall-clock budget), then build, the full
# test suite, and the race-detector pass over the whole module. Mirrors the
# Makefile targets; stdlib toolchain only, no external dependencies.
set -eux

go vet ./...
go run ./cmd/mummi-lint -unused-suppressions -budget 60s ./...
go build ./...
go test ./...
go test -race ./...

# Bench-diff gate: the committed perf-trajectory reports (BENCH_*.json)
# must stay coherent — deterministic replay metrics identical between the
# pre- and post-optimization reports, timing/alloc metrics within the
# generous regression threshold. The reports are committed artifacts, so
# this is deterministic in CI (no benchmark is re-run here).
go run ./scripts/benchdiff BENCH_baseline.json BENCH_optimized.json
go run ./scripts/benchdiff BENCH_baseline_full.json BENCH_optimized_full.json

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# kvstore feedback-path gate: re-run both kvstore-bench modes with the
# committed workload shape (100µs modeled interconnect RTT, defaults
# otherwise), check each fresh report against its committed counterpart
# (workload metrics exact, timing within the regression threshold), and
# enforce the ≥10x pipelined speedup floor on the committed pair and on
# the fresh pair.
go run ./cmd/kvstore-bench -mode baseline -rtt 100us -out "$tmpdir/kvb-baseline.json"
go run ./cmd/kvstore-bench -mode pipelined -rtt 100us -out "$tmpdir/kvb-optimized.json"
go run ./scripts/benchdiff BENCH_kvstore_baseline.json "$tmpdir/kvb-baseline.json"
go run ./scripts/benchdiff BENCH_kvstore_optimized.json "$tmpdir/kvb-optimized.json"
go run ./cmd/kvstore-bench -mode compare \
	-compare BENCH_kvstore_baseline.json,BENCH_kvstore_optimized.json -min-speedup 10
go run ./cmd/kvstore-bench -mode compare \
	-compare "$tmpdir/kvb-baseline.json,$tmpdir/kvb-optimized.json" -min-speedup 10

# Observability smoke: the example campaign must emit a loadable Chrome
# trace and a metrics snapshot with nonzero counters for all four workflow
# tasks (tracecheck fails on empty or unparsable artifacts).
go run ./cmd/mummi-sim campaign -scale 0.02 \
	-trace "$tmpdir/trace.json" -metrics "$tmpdir/metrics.json"
go run ./scripts/tracecheck "$tmpdir/trace.json" "$tmpdir/metrics.json"

# Chaos smoke: a campaign with every fault class at aggressive rates must
# complete, and two same-seed runs must be byte-identical — the fault
# ledger on stdout and the full metrics snapshot and trace event stream.
chaosplan='store-transient-error:0.10;store-latency-spike:0.05;store-permanent-error:0.01;node-crash:8/day;job-hang:12/day;wm-crash:2/day'
go run ./cmd/mummi-sim campaign -scale 0.02 -seed 7 -faults "$chaosplan" \
	-trace "$tmpdir/chaos1-trace.json" -metrics "$tmpdir/chaos1-metrics.json" >"$tmpdir/chaos1.out"
go run ./cmd/mummi-sim campaign -scale 0.02 -seed 7 -faults "$chaosplan" \
	-trace "$tmpdir/chaos2-trace.json" -metrics "$tmpdir/chaos2-metrics.json" >"$tmpdir/chaos2.out"
# Drop the wall-clock line ("replayed in Nms") and the artifact-path lines
# ("-> .../chaosN-trace.json") before comparing.
grep -v -e 'replayed in' -e ' -> ' "$tmpdir/chaos1.out" >"$tmpdir/chaos1.cmp"
grep -v -e 'replayed in' -e ' -> ' "$tmpdir/chaos2.out" >"$tmpdir/chaos2.cmp"
diff "$tmpdir/chaos1.cmp" "$tmpdir/chaos2.cmp"
diff "$tmpdir/chaos1-metrics.json" "$tmpdir/chaos2-metrics.json"
diff "$tmpdir/chaos1-trace.json" "$tmpdir/chaos2-trace.json"
grep -q 'wm restarts' "$tmpdir/chaos1.out"

# Scenario-matrix gate: replay every committed workflow instance under
# scenarios/ and diff it against its committed per-scenario ledger —
# deterministic metrics must match exactly, timing metrics stay within the
# regression threshold (see docs/SCENARIOS.md).
go run ./scripts/matrix

# Matrix determinism smoke: replay four fast scenarios twice with timing
# metrics omitted; the fresh ledger directories must be byte-identical.
# wm-fleet-chaos is in the set so the distributed-WM crash/adoption
# schedule is held to the same same-seed byte-identity bar as the rest.
fast='laptop-smoke,mini-mummi-two-scale,chaos-store-flaky,wm-fleet-chaos'
go run ./scripts/matrix -only "$fast" -outdir "$tmpdir/matrix1" -no-timing
go run ./scripts/matrix -only "$fast" -outdir "$tmpdir/matrix2" -no-timing
diff -r "$tmpdir/matrix1" "$tmpdir/matrix2"

# Generated-sweep gate: the committed scenarios/generated/ sweep is one
# fixed Gen(seed=42, n=3) instance set. Regenerate it from scratch and
# byte-diff against the committed trace files (Gen must stay deterministic
# and schema-stable), then replay the sweep against its committed ledgers
# like any other scenario directory.
go run ./cmd/mummi-sim trace gen -seed 42 -n 3 -outdir "$tmpdir/gen"
diff -r -x 'BENCH_*' "$tmpdir/gen" scenarios/generated
go run ./scripts/matrix -scenarios scenarios/generated

# Trace round-trip smoke: export a campaign as a workflow instance, import
# and canonically re-export it, and require byte identity end to end
# through the CLI surface.
go run ./cmd/mummi-sim trace export -scale 0.02 -seed 7 -name ci-roundtrip \
	-out "$tmpdir/ci-roundtrip.trace.json"
go run ./cmd/mummi-sim trace import -in "$tmpdir/ci-roundtrip.trace.json" \
	-out "$tmpdir/ci-roundtrip2.trace.json"
diff "$tmpdir/ci-roundtrip.trace.json" "$tmpdir/ci-roundtrip2.trace.json"

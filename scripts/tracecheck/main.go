// Command tracecheck validates the observability artifacts a campaign run
// writes: a Chrome trace-event JSON (-trace flag output) and a metrics
// snapshot JSON (-metrics flag output). CI runs it after the example
// campaign to fail the build if either file is empty, unparsable, or
// missing the spans/counters the instrumentation contract promises
// (all four workflow-manager tasks and at least one scheduler match).
//
// Usage:
//
//	go run ./scripts/tracecheck trace.json metrics.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 3 {
		fail(fmt.Errorf("usage: tracecheck <trace.json> <metrics.json>"))
	}
	if err := checkTrace(os.Args[1]); err != nil {
		fail(fmt.Errorf("%s: %w", os.Args[1], err))
	}
	if err := checkMetrics(os.Args[2]); err != nil {
		fail(fmt.Errorf("%s: %w", os.Args[2], err))
	}
	fmt.Println("tracecheck: ok")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}

// requiredSpans are the span names the instrumented campaign must emit:
// the four workflow-manager tasks and the scheduler's graph match.
var requiredSpans = []string{
	"task1.ingest", "task2.select", "task3.poll", "task4.feedback", "match",
}

// checkTrace parses a Chrome trace-event JSON file and verifies it is
// non-trivial and contains every required span as a complete ("X") event.
func checkTrace(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("empty file")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("not trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			seen[ev.Name] = true
			if ev.Dur < 0 || ev.TS < 0 {
				return fmt.Errorf("span %q has negative ts/dur", ev.Name)
			}
		}
	}
	for _, name := range requiredSpans {
		if !seen[name] {
			return fmt.Errorf("missing required span %q (have %d distinct X events)", name, len(seen))
		}
	}
	return nil
}

// checkMetrics parses a metrics snapshot and verifies the sections exist
// and the workflow-manager counters are present and nonzero.
func checkMetrics(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("empty file")
	}
	var doc struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges     []json.RawMessage `json:"gauges"`
		Histograms []json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("not a metrics snapshot: %w", err)
	}
	if len(doc.Counters) == 0 || len(doc.Histograms) == 0 {
		return fmt.Errorf("snapshot has %d counters, %d histograms; want both nonzero",
			len(doc.Counters), len(doc.Histograms))
	}
	// One nonzero counter per workflow-manager task (labels vary by
	// coupling, so match on prefix).
	for _, prefix := range []string{
		"wm.candidates_total", "wm.selections_total", "wm.polls_total", "wm.feedback_runs_total",
	} {
		ok := false
		for _, c := range doc.Counters {
			if c.Value > 0 && len(c.Name) >= len(prefix) && c.Name[:len(prefix)] == prefix {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("no nonzero counter with prefix %q", prefix)
		}
	}
	return nil
}

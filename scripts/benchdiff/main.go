// Command benchdiff compares two mummi-bench -json reports and fails on
// regression, gating the repo's committed perf trajectory (BENCH_*.json).
//
// Usage:
//
//	go run ./scripts/benchdiff [-threshold 4.0] OLD.json NEW.json
//
// Metrics fall into two classes, told apart by name:
//
//   - Timing metrics (suffix _sec, _per_sec, _per_s, _x, or prefix alloc_)
//     are machine-dependent. NEW may not exceed OLD by more than the
//     threshold factor; improvements of any size pass. The default factor
//     is deliberately generous — the gate catches order-of-magnitude
//     regressions, not CI-machine noise.
//
//   - Everything else is deterministic replay output (event counts, node
//     hours, matcher visits, selection counts) and must match exactly:
//     a drift here means the optimized engines changed simulation
//     behavior, which is an equivalence failure, not a perf regression.
//
// Metrics or experiments present in only one file are reported and
// skipped, so the report schema can grow without invalidating committed
// baselines. The two reports must come from the same scale and seed;
// comparing different configurations is refused rather than misjudged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type report struct {
	Schema      string                        `json:"schema"`
	Scale       float64                       `json:"scale"`
	Seed        int64                         `json:"seed"`
	Full        bool                          `json:"full"`
	Experiments map[string]map[string]float64 `json:"experiments"`
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if !strings.HasPrefix(r.Schema, "mummi-bench/") {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, r.Schema)
	}
	return &r, nil
}

// isTiming reports whether a metric is machine-dependent (thresholded)
// rather than deterministic replay output (exact-matched).
func isTiming(name string) bool {
	return strings.HasSuffix(name, "_sec") ||
		strings.HasSuffix(name, "_per_sec") ||
		strings.HasSuffix(name, "_per_s") ||
		strings.HasSuffix(name, "_x") ||
		strings.HasPrefix(name, "alloc_")
}

func main() {
	threshold := flag.Float64("threshold", 4.0,
		"max allowed NEW/OLD ratio for timing metrics")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold N] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if oldRep.Scale != newRep.Scale || oldRep.Seed != newRep.Seed || oldRep.Full != newRep.Full {
		fmt.Fprintf(os.Stderr,
			"benchdiff: configs differ (scale %v/%v, seed %d/%d, full %v/%v); refusing to compare\n",
			oldRep.Scale, newRep.Scale, oldRep.Seed, newRep.Seed, oldRep.Full, newRep.Full)
		os.Exit(2)
	}

	var names []string
	for name := range oldRep.Experiments {
		names = append(names, name)
	}
	sort.Strings(names)

	failures, compared, skipped := 0, 0, 0
	for _, expName := range names {
		oldM := oldRep.Experiments[expName]
		newM, ok := newRep.Experiments[expName]
		if !ok {
			fmt.Printf("skip  %-28s (experiment only in %s)\n", expName, flag.Arg(0))
			skipped += len(oldM)
			continue
		}
		var metrics []string
		for m := range oldM {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			oldV := oldM[m]
			newV, ok := newM[m]
			key := expName + "." + m
			if !ok {
				skipped++
				continue
			}
			compared++
			switch {
			case isTiming(m):
				if oldV > 0 && newV > oldV*(*threshold) {
					fmt.Printf("FAIL  %-40s %14.6g -> %-14.6g (%.2fx > %.2fx allowed)\n",
						key, oldV, newV, newV/oldV, *threshold)
					failures++
				} else {
					ratio := 0.0
					if oldV > 0 {
						ratio = newV / oldV
					}
					fmt.Printf("ok    %-40s %14.6g -> %-14.6g (%.2fx)\n", key, oldV, newV, ratio)
				}
			default:
				if oldV != newV {
					fmt.Printf("FAIL  %-40s %14.6g != %-14.6g (deterministic metric drifted)\n",
						key, oldV, newV)
					failures++
				} else {
					fmt.Printf("ok    %-40s %14.6g (exact)\n", key, oldV)
				}
			}
		}
	}
	fmt.Printf("benchdiff: %d compared, %d skipped, %d failures\n", compared, skipped, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// Command benchdiff compares two mummi-bench -json reports and fails on
// regression, gating the repo's committed perf trajectory (BENCH_*.json).
//
// Usage:
//
//	go run ./scripts/benchdiff [-threshold 4.0] OLD.json NEW.json
//
// Metrics fall into two classes, told apart by name (see
// internal/benchfmt, which holds the shared report model and comparison
// semantics used here, by cmd/mummi-bench, and by scripts/matrix):
//
//   - Timing metrics (suffix _sec, _per_sec, _per_s, _x, or prefix alloc_)
//     are machine-dependent. NEW may not exceed OLD by more than the
//     threshold factor; improvements of any size pass. The default factor
//     is deliberately generous — the gate catches order-of-magnitude
//     regressions, not CI-machine noise.
//
//   - Everything else is deterministic replay output (event counts, node
//     hours, matcher visits, selection counts) and must match exactly:
//     a drift here means the optimized engines changed simulation
//     behavior, which is an equivalence failure, not a perf regression.
//
// Metrics or experiments present in only one file are reported and
// skipped, so the report schema can grow without invalidating committed
// baselines. The two reports must come from the same scale and seed;
// comparing different configurations is refused rather than misjudged.
package main

import (
	"flag"
	"fmt"
	"os"

	"mummi/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 4.0,
		"max allowed NEW/OLD ratio for timing metrics")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold N] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := benchfmt.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := benchfmt.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	res, err := benchfmt.Compare(os.Stdout, oldRep, newRep, flag.Arg(0), *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("benchdiff: %d compared, %d skipped, %d failures\n",
		res.Compared, res.Skipped, res.Failures)
	if res.Failures > 0 {
		os.Exit(1)
	}
}

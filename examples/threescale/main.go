// Threescale: a scaled-down replay of the paper's three-scale RAS-RAF-PM
// campaign (continuum → CG → AA) through the full coordination stack —
// workflow manager, Flux-like scheduler, maestro throttling, samplers, and
// occupancy profiling — in virtual time. A week of a 32-node machine
// replays in a few seconds and prints the same reports the evaluation
// harness produces for Summit scale.
//
//	go run ./examples/threescale
package main

import (
	"fmt"
	"log"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/sched"
)

func main() {
	cfg := campaign.DefaultConfig()
	cfg.Seed = 2026
	cfg.Runs = []campaign.RunSpec{
		{Nodes: 16, Wall: 24 * time.Hour, Count: 2},
		{Nodes: 32, Wall: 24 * time.Hour, Count: 5},
	}
	cfg.PatchesPerSnapshot = 40
	cfg.PatchQueueCap = 2000
	cfg.FrameCandidateSubsample = 1.0
	// The fixed scheduler configuration (first-match + async Q↔R) — the
	// paper's fix rather than the bottleneck.
	cfg.SchedPolicy = sched.FirstMatch
	cfg.SchedMode = sched.Async
	cfg.ModelStatusLoad = false

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %v of machine time in %v\n\n",
		res.TotalNodeHours, time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Table1Text())
	fmt.Println(res.CountsText())
	fmt.Println(res.Fig3Text())
	fmt.Println(res.Fig5Text())
}

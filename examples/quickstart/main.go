// Quickstart: the MuMMI coupling loop on a laptop, in real computation.
//
// This example runs the full two-scale data path with no scheduler and no
// virtual time: a continuum membrane model evolves, patches are cut around
// its proteins, a fixed-weight ML encoder reduces them to 9-D, farthest-
// point sampling picks the most novel ones, a CG surrogate "simulates" each
// selection and analyzes frames, and the aggregated RDFs feed back into the
// continuum model's coupling parameters — closing the loop the paper builds
// at Summit scale.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mummi/internal/continuum"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/feedback"
	"mummi/internal/mlenc"
	"mummi/internal/patch"
	"mummi/internal/sim"
	"mummi/internal/units"
)

func main() {
	// 1. The macro scale: a small continuum membrane with protein particles.
	cfg := continuum.Config{
		GridN: 96, Domain: 300 * units.Nm,
		InnerLipids: 4, OuterLipids: 3, Proteins: 24, Seed: 42,
	}
	macro, err := continuum.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuum: %d×%d grid, %d lipid species, %d proteins\n",
		cfg.GridN, cfg.GridN, cfg.Species(), cfg.Proteins)

	// 2. The ML selection machinery: encoder + capped farthest-point queues.
	encoder, err := mlenc.NewPatchEncoder(cfg.Species(), patch.DefaultGridN, 9, 7)
	if err != nil {
		log.Fatal(err)
	}
	queues := dynim.NewQueueSet(9, 1000)
	selector := queues.AsSelector(func(p dynim.Point) string { return "all" })

	// 3. The feedback loop: CG analyses write RDF frames into a store; the
	// feedback manager aggregates them and updates the continuum couplings.
	store := datastore.NewMemory()
	fb, err := feedback.NewCGToContinuum(feedback.CGConfig{
		Store: store, NewNS: "rdf-new", DoneNS: "rdf-done",
		Species: cfg.Species(), States: continuum.NumProteinStates,
		Apply: macro.UpdateCouplings,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive a few coupling cycles.
	for cycle := 1; cycle <= 3; cycle++ {
		// Macro advances and emits a snapshot.
		macro.Step(2 * units.Microsecond)
		snap := macro.Snapshot()

		// Task 1: cut a patch around every protein, encode, offer.
		patches, err := patch.CreateAll(snap, patch.DefaultSize, patch.DefaultGridN)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range patches {
			enc, err := encoder.Encode(p)
			if err != nil {
				log.Fatal(err)
			}
			if err := selector.Add(dynim.Point{ID: p.ID, Coords: enc}); err != nil {
				log.Fatal(err)
			}
		}

		// Task 2: promote the most novel patches to the micro scale.
		chosen := selector.Select(4)
		fmt.Printf("cycle %d: %d patches offered, selected %v\n",
			cycle, len(patches), ids(chosen))

		// Micro scale: a CG surrogate per selection produces analyzed
		// frames whose RDFs land in the store.
		for _, pt := range chosen {
			cg := sim.NewCGSim(pt.ID, cfg.Species(), cycle%continuum.NumProteinStates, nil, 99)
			for f := 0; f < 25; f++ {
				frame := cg.NextFrame()
				b, err := frame.Marshal()
				if err != nil {
					log.Fatal(err)
				}
				if err := store.Put("rdf-new", frame.ID(), b); err != nil {
					log.Fatal(err)
				}
			}
		}

		// Task 4: one feedback iteration updates the continuum parameters.
		rep, err := fb.Iterate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: feedback processed %d frames in %v; continuum params v%d\n",
			cycle, rep.Frames, rep.Total().Round(1000), macro.ParamVersion())
	}

	fmt.Printf("\ndone: continuum advanced %v, %d frames aggregated, couplings updated %d times\n",
		macro.Time(), fb.TotalFrames(), macro.ParamVersion())
}

func ids(ps []dynim.Point) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

// Datastores: the paper's "single configuration switch" (§4.2) in action.
//
// The same application code — serialize patches as NumPy byte streams, put
// them through the abstract data interface, read a few back, tag processed
// ones into a done-namespace — runs against all three backends (filesystem,
// indexed tar archives, in-memory database cluster) by changing only the
// datastore.Config, and the example reports how each behaves.
//
//	go run ./examples/datastores
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mummi/internal/continuum"
	"mummi/internal/datastore"
	"mummi/internal/kvstore"
	"mummi/internal/patch"
	"mummi/internal/units"

	// Backends self-register with the datastore factory.
	_ "mummi/internal/fsstore"
	_ "mummi/internal/taridx"
)

func main() {
	dir, err := os.MkdirTemp("", "mummi-datastores")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A kv cluster for the database backend.
	addrs, shutdown, err := kvstore.LaunchCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()

	// The single switch: one Config per backend, same code below.
	configs := []datastore.Config{
		{Backend: datastore.BackendFS, Root: filepath.Join(dir, "fs")},
		{Backend: datastore.BackendTaridx, Root: filepath.Join(dir, "tar")},
		{Backend: datastore.BackendKV, Addrs: addrs},
	}

	// Some real patch payloads.
	sim, err := continuum.New(continuum.Config{
		GridN: 64, Domain: 200 * units.Nm, InnerLipids: 3, OuterLipids: 2,
		Proteins: 10, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Step(1 * units.Microsecond)
	patches, err := patch.CreateAll(sim.Snapshot(), patch.DefaultSize, patch.DefaultGridN)
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range configs {
		store, err := datastore.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()

		// Write every patch (a NumPy byte stream) under the "patches"
		// namespace.
		for _, p := range patches {
			b, err := p.Marshal()
			if err != nil {
				log.Fatal(err)
			}
			if err := store.Put("patches", p.ID, b); err != nil {
				log.Fatal(err)
			}
		}
		// Read one back and decode it — byte-stream redirection is
		// lossless whichever backend held it.
		b, err := store.Get("patches", patches[0].ID)
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := patch.Unmarshal(b)
		if err != nil {
			log.Fatal(err)
		}
		// Tag half the patches as processed (the feedback primitive).
		for i, p := range patches {
			if i%2 == 0 {
				if err := store.Move("patches", p.ID, "processed"); err != nil {
					log.Fatal(err)
				}
			}
		}
		remaining, err := store.Keys("patches")
		if err != nil {
			log.Fatal(err)
		}
		done, err := store.Keys("processed")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %d patches written, decoded %q (%d species), %d active / %d processed, %v\n",
			cfg.Backend+":", len(patches), decoded.ID, len(decoded.Fields),
			len(remaining), len(done), time.Since(start).Round(time.Microsecond))
		if err := store.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// Customapp: generalizability (§4.5) — swap the application components.
//
// The paper's framework is two-part: domain-specific "application"
// components plug into a generic "coordination" platform. This example
// keeps the entire coordination stack (workflow manager, scheduler,
// conductor) and swaps in a completely different application: an urban
// climate study coupling a city-scale airflow model (the coarse scale) to
// street-canyon large-eddy simulations (the fine scale), with a custom
// selector built on the dynim API — a binned sampler over (wind speed,
// thermal stratification, building density) where L2 distance is
// meaningless, exactly the situation the paper's frame selector solves.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/core"
	"mummi/internal/dynim"
	"mummi/internal/maestro"
	"mummi/internal/sched"
	"mummi/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))

	// Coordination platform: a 12-node GPU machine, Flux-like scheduling
	// with the paper's fixed policies, throttled submission.
	machine, err := cluster.New(cluster.Summit(12))
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.New(clk, sched.Config{
		Machine: machine, Policy: sched.FirstMatch, Mode: sched.Async,
	})
	if err != nil {
		log.Fatal(err)
	}
	conductor, err := maestro.NewConductor(clk, maestro.FluxBackend{S: scheduler}, 200)
	if err != nil {
		log.Fatal(err)
	}

	// Application component 1: the selector. Three disparate physical
	// quantities, binned independently, 70% importance / 30% random.
	selector, err := dynim.NewBinned([]dynim.BinDim{
		{Lo: 0, Hi: 30, Bins: 10}, // wind speed, m/s
		{Lo: -5, Hi: 5, Bins: 10}, // stratification, K/100m
		{Lo: 0, Hi: 1, Bins: 8},   // building density
	}, 0.7, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Application component 2: the jobs. Mesh generation is the setup
	// (CPU-only); the street-canyon LES is the simulation (one GPU).
	completed := 0
	spec := core.CouplingSpec{
		Name:     "city-to-canyon",
		Selector: selector,
		SetupReq: sched.Request{Name: "meshgen", Cores: 16},
		SetupDuration: func(rng *rand.Rand) time.Duration {
			return 20*time.Minute + time.Duration(rng.Intn(20))*time.Minute
		},
		SimReq: sched.Request{Name: "canyon-les", Cores: 4, GPUs: 1},
		SimDuration: func(rng *rand.Rand, p dynim.Point) time.Duration {
			return time.Duration(2+rng.Intn(5)) * time.Hour
		},
		MaxSims:     48,
		ReadyTarget: 12,
		MaxSetups:   8,
		OnSimEnd: func(p dynim.Point, id sched.JobID, st sched.State) {
			if st == sched.Completed {
				completed++
			}
		},
	}

	wm, err := core.New(core.Config{
		Clock: clk, Conductor: conductor,
		Couplings: []core.CouplingSpec{spec},
		PollEvery: time.Minute, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Application component 3: the coarse model. A toy city-scale airflow
	// "simulation" emits candidate weather states every coarse step.
	rng := rand.New(rand.NewSource(8))
	weather := vclock.NewTicker(clk, 30*time.Minute, func(now time.Time) {
		for i := 0; i < 6; i++ {
			err := wm.AddCandidate("city-to-canyon", dynim.Point{
				ID: fmt.Sprintf("wx-%s-%d", now.Format("150405"), i),
				Coords: []float64{
					rng.Float64() * 30,
					rng.NormFloat64() * 2,
					rng.Float64(),
				},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	})
	defer weather.Stop()

	if err := wm.Start(); err != nil {
		log.Fatal(err)
	}
	clk.RunFor(48 * time.Hour)
	wm.Stop()

	st := wm.Stats()[0]
	fmt.Println("custom application on the unchanged MuMMI coordination stack:")
	fmt.Printf("  coupling %q: %d candidates queued, %d ready, %d running, %d completed\n",
		st.Name, st.Candidates, st.Ready, st.Running, completed)
	fmt.Printf("  machine: %d/%d GPUs busy, %.0f%% CPU occupancy\n",
		machine.UsedGPUs(), machine.Topology().TotalGPUs(), machine.CPUOccupancy()*100)
	if completed == 0 {
		log.Fatal("no canyon simulations completed — coordination broken")
	}
}

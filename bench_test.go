// Benchmarks regenerating the paper's evaluation — one testing.B target per
// table and figure (§5), plus the headline scaling claims and the design
// ablations called out in DESIGN.md. Each bench reports domain metrics via
// b.ReportMetric alongside the usual ns/op. The campaign-backed benches
// replay a scaled-down schedule per iteration so `go test -bench=.` stays
// tractable; `cmd/mummi-bench -scale 1.0` runs the full 600,600-node-hour
// replay.
package mummi_test

import (
	"testing"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/feedback"
	"mummi/internal/sched"
	"mummi/internal/units"
)

// benchCampaign replays a small Table 1-shaped schedule and returns the
// result for metric extraction.
func benchCampaign(b *testing.B, seed int64) *campaign.Result {
	b.Helper()
	cfg := campaign.DefaultConfig()
	cfg.Seed = seed
	cfg.Runs = []campaign.RunSpec{
		{Nodes: 10, Wall: 6 * time.Hour, Count: 1},
		{Nodes: 50, Wall: 12 * time.Hour, Count: 1},
		{Nodes: 100, Wall: 24 * time.Hour, Count: 2},
	}
	cfg.SchedPolicy = sched.FirstMatch
	cfg.SchedMode = sched.Async
	cfg.ModelStatusLoad = false
	res, err := campaign.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1_CampaignScales replays the multi-scale run schedule
// (Table 1: seamless (re)starts at 100–4000 nodes) and reports node-hours
// replayed per second of bench time.
func BenchmarkTable1_CampaignScales(b *testing.B) {
	var nh units.NodeHours
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, int64(i))
		nh += res.TotalNodeHours
	}
	b.ReportMetric(float64(nh)/time.Since(start).Seconds(), "node-hours/s")
}

// BenchmarkFig3_SimulationLengths replays the campaign and reports the CG
// and AA length distributions' means (paper: 96.67 ms / 34,523 ≈ 2.8 µs CG;
// 326 µs / 9,632 ≈ 33.8 ns AA).
func BenchmarkFig3_SimulationLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, 3)
		b.ReportMetric(mean(res.CGLengthsUs), "cg-mean-µs")
		b.ReportMetric(mean(res.AALengthsNs), "aa-mean-ns")
		b.ReportMetric(float64(len(res.CGLengthsUs)), "cg-sims")
	}
}

// BenchmarkFig4_SimulationPerformance replays the campaign and reports the
// per-scale delivered performance (paper: ~0.96 ms/day continuum at 3600
// ranks, ~1.04 µs/day/GPU CG, ~13.98 ns/day/GPU AA).
func BenchmarkFig4_SimulationPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, 4)
		var cg, aa float64
		for _, s := range res.CGPerf {
			cg += s.PerDay
		}
		for _, s := range res.AAPerf {
			aa += s.PerDay
		}
		if len(res.CGPerf) > 0 {
			b.ReportMetric(cg/float64(len(res.CGPerf)), "cg-µs/day")
		}
		if len(res.AAPerf) > 0 {
			b.ReportMetric(aa/float64(len(res.AAPerf)), "aa-ns/day")
		}
	}
}

// BenchmarkFig5_ResourceOccupancy replays the campaign and reports the
// occupancy headline (paper: GPU ≥98% for 83% of time; CPU mean ~54%).
func BenchmarkFig5_ResourceOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, 5)
		b.ReportMetric(res.GPUMeanPct, "gpu-mean-%")
		b.ReportMetric(res.GPUAtLeast98Frac*100, "gpu≥98-%time")
		b.ReportMetric(res.CPUMeanPct, "cpu-mean-%")
	}
}

// BenchmarkFig6_JobScheduling loads a machine through the sync+exhaustive
// scheduler configuration (the campaign's Flux version) and reports the
// placement rate (paper: ~100 jobs/min at 1000 nodes; chunky collapse at
// 4000 nodes).
func BenchmarkFig6_JobScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := campaign.DefaultConfig()
		cfg.Seed = 6
		cfg.Runs = []campaign.RunSpec{{Nodes: 120, Wall: 12 * time.Hour, Count: 1}}
		// The bottleneck configuration under test.
		cfg.SchedPolicy = sched.LowIDExhaustive
		cfg.SchedMode = sched.Sync
		cfg.ModelStatusLoad = true
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		evs := res.ProfileEvents
		if len(evs) > 0 {
			last := evs[len(evs)-1]
			b.ReportMetric(float64(last.Running), "jobs-running@end")
		}
	}
}

// BenchmarkFluxFix_FirstMatch670x measures matcher work for the paper's
// emulated job mix under the original and fixed policies and reports the
// improvement factor (paper: 670×).
func BenchmarkFluxFix_FirstMatch670x(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.FluxFix670(500, 3000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.VisitRatio(), "improvement-x")
	}
}

// BenchmarkFig7_KVFeedbackQueries sweeps the in-memory database with
// RDF-frame workloads and reports read throughput (paper: ~10k key scans
// and deletions/s, ~2k value reads/s on a 20-node Summit Redis cluster).
func BenchmarkFig7_KVFeedbackQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := campaign.Fig7KVQueries([]int{20000}, 8, 850)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.Frames)/r.RetrieveKeys.Seconds(), "keys/s")
		b.ReportMetric(float64(r.Frames)/r.RetrieveValues.Seconds(), "reads/s")
		b.ReportMetric(float64(r.Frames)/r.Delete.Seconds(), "dels/s")
	}
}

// BenchmarkFig8_AAFeedbackLatency models AA→CG feedback iterations and
// reports the fraction finishing within the 10-minute target (paper: >97%).
func BenchmarkFig8_AAFeedbackLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := campaign.Fig8AAFeedback(2000, 6, 2*time.Second, int64(i))
		b.ReportMetric(res.WithinTarget*100, "within-10min-%")
	}
}

// BenchmarkTaridx_ReadThroughput measures random-access reads from one
// indexed archive at the paper's mean entry size (~156 KB; paper measured
// ~575 files/s, ~87.56 MB/s on GPFS).
func BenchmarkTaridx_ReadThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		res, err := campaign.TaridxThroughput(dir, 500, 156_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FilesPerSec(), "files/s")
		b.ReportMetric(res.MBPerSec(), "MB/s")
	}
}

// BenchmarkFeedbackBackends_12x runs one CG→continuum feedback iteration
// over the filesystem (with GPFS-like latency) and database backends and
// reports the speedup (paper: >12×, two hours down to under ten minutes).
func BenchmarkFeedbackBackends_12x(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		res, err := campaign.Feedback12x(dir, 2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup(), "speedup-x")
	}
}

// BenchmarkSelectors_RankUpdate measures the two samplers at campaign
// scales: a 35,000-candidate farthest-point rank refresh and bulk binned
// ingest — the capacity behind the paper's "165× more data" claim.
func BenchmarkSelectors_RankUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.SelectorScaling(35000, 500_000, 0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FPSUpdateTime.Seconds()*1000, "fps-refresh-ms")
		b.ReportMetric(float64(res.BinnedN)/res.BinnedAddTime.Seconds()/1e6, "binned-Madds/s")
	}
}

// BenchmarkAblation_Bundling compares bundled vs unbundled placement on a
// straggler ensemble (paper §4.3: bundling's worst case wastes 5/6 of a
// node).
func BenchmarkAblation_Bundling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.BundlingAblation(8, 3, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BundledUtilization*100, "bundled-util-%")
		b.ReportMetric(res.UnbundledUtil*100, "unbundled-util-%")
	}
}

// BenchmarkCounts_CampaignLedger replays the campaign and reports the §5.1
// selection fractions (paper: 0.5% of patches; 0.098% of frame candidates).
func BenchmarkCounts_CampaignLedger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, 51)
		b.ReportMetric(100*float64(res.CGSelected)/float64(res.Patches), "cg-sel-%")
		b.ReportMetric(100*float64(res.AASelected)/float64(res.CGFrameCandidates), "aa-sel-%")
		b.ReportMetric(float64(res.Files), "files")
	}
}

// BenchmarkAblation_Inventory sweeps the prepared-configuration buffer size
// (paper §4.4 Task 3: the readiness-vs-staleness trade-off).
func BenchmarkAblation_Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := campaign.InventoryAblation([]float64{0.05, 0.5}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GPUMeanPct, "starved-gpu-%")
		b.ReportMetric(rows[1].GPUMeanPct, "healthy-gpu-%")
	}
}

// BenchmarkFeedbackPool_Simulation measures the deterministic pool model
// used by Fig. 8 on a paper-sized iteration (1600 frames × 2 s, 6 workers).
func BenchmarkFeedbackPool_Simulation(b *testing.B) {
	costs := make([]time.Duration, 1600)
	for i := range costs {
		costs[i] = 2 * time.Second
	}
	for i := 0; i < b.N; i++ {
		d := feedback.SimulatePoolTime(costs, 6)
		if d <= 0 {
			b.Fatal("no pool time")
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

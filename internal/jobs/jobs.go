// Package jobs implements the paper's "generic and abstract Job Tracker
// that can be customized using a combination of inherited classes and
// configuration files" (§4.3): a registry of job-type specifications —
// resource shapes, duration models, retry policies, and success criteria —
// loadable from JSON configuration, from which scheduler requests are
// minted and failures adjudicated. The campaign's four job types (CG setup,
// CG simulation/analysis, AA setup, AA simulation/analysis) ship as the
// default registry; applications define their own the same way.
package jobs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mummi/internal/sched"
)

// Spec is one job type's configuration.
type Spec struct {
	// Name identifies the job type ("cg-sim").
	Name string `json:"name"`
	// Nodes/Cores/GPUs shape the resource request (Cores and GPUs are
	// per-node).
	Nodes int `json:"nodes,omitempty"`
	Cores int `json:"cores"`
	GPUs  int `json:"gpus,omitempty"`
	// MeanDuration is the expected runtime; zero means run-until-completed.
	MeanDuration Duration `json:"duration,omitempty"`
	// DurationJitter is the lognormal sigma applied to MeanDuration
	// (0 = deterministic).
	DurationJitter float64 `json:"jitter,omitempty"`
	// MaxRetries bounds automatic resubmission of failed jobs
	// (-1 = unlimited, the campaign default for simulations).
	MaxRetries int `json:"max_retries,omitempty"`
}

// Duration marshals as a Go duration string ("90m") in JSON configuration.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("jobs: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("jobs: spec without a name")
	}
	if s.Cores < 0 || s.GPUs < 0 || s.Nodes < 0 {
		return fmt.Errorf("jobs: %s: negative resources", s.Name)
	}
	if s.Cores == 0 && s.GPUs == 0 {
		return fmt.Errorf("jobs: %s: requests no resources", s.Name)
	}
	if s.DurationJitter < 0 || s.DurationJitter > 2 {
		return fmt.Errorf("jobs: %s: jitter %v outside [0, 2]", s.Name, s.DurationJitter)
	}
	if s.MaxRetries < -1 {
		return fmt.Errorf("jobs: %s: MaxRetries %d", s.Name, s.MaxRetries)
	}
	return nil
}

// Request mints a scheduler request (without a duration; see Sample).
func (s Spec) Request() sched.Request {
	return sched.Request{Name: s.Name, NodeCount: s.Nodes, Cores: s.Cores, GPUs: s.GPUs}
}

// Sample mints a request with a duration drawn from the spec's model.
func (s Spec) Sample(rng *rand.Rand) sched.Request {
	req := s.Request()
	if s.MeanDuration > 0 {
		f := 1.0
		if s.DurationJitter > 0 {
			f = math.Exp(rng.NormFloat64() * s.DurationJitter)
			if f < 0.25 {
				f = 0.25
			}
			if f > 4 {
				f = 4
			}
		}
		req.Duration = time.Duration(float64(s.MeanDuration) * f)
	}
	return req
}

// ShouldRetry reports whether a job of this type should be resubmitted
// after its attempts-th failure.
func (s Spec) ShouldRetry(attempts int) bool {
	return s.MaxRetries == -1 || attempts <= s.MaxRetries
}

// Registry maps job-type names to specifications.
type Registry struct {
	specs map[string]Spec
}

// NewRegistry builds a registry from specs.
func NewRegistry(specs ...Spec) (*Registry, error) {
	r := &Registry{specs: make(map[string]Spec, len(specs))}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := r.specs[s.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate spec %q", s.Name)
		}
		r.specs[s.Name] = s
	}
	return r, nil
}

// LoadRegistry parses a JSON array of specs — the "configuration files"
// half of the paper's customization story.
func LoadRegistry(data []byte) (*Registry, error) {
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("jobs: parsing registry: %w", err)
	}
	return NewRegistry(specs...)
}

// Get returns a spec by name.
func (r *Registry) Get(name string) (Spec, bool) {
	s, ok := r.specs[name]
	return s, ok
}

// Names returns the registered job types, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Marshal serializes the registry back to JSON configuration.
func (r *Registry) Marshal() ([]byte, error) {
	specs := make([]Spec, 0, len(r.specs))
	for _, n := range r.Names() {
		specs = append(specs, r.specs[n])
	}
	return json.MarshalIndent(specs, "", "  ")
}

// Summit returns the campaign's four job types with the paper's shapes:
// setup jobs on 24 cores, simulations on one GPU plus analysis cores,
// unlimited simulation retries (the tracker "submits new jobs (or
// resubmits failed ones)").
func Summit() *Registry {
	r, err := NewRegistry(
		Spec{Name: "createsim", Cores: 24, MeanDuration: Duration(90 * time.Minute),
			DurationJitter: 0.18, MaxRetries: 3},
		Spec{Name: "cg-sim", Cores: 3, GPUs: 1, MaxRetries: -1},
		Spec{Name: "backmap", Cores: 24, MeanDuration: Duration(2 * time.Hour),
			DurationJitter: 0.18, MaxRetries: 3},
		Spec{Name: "aa-sim", Cores: 3, GPUs: 1, MaxRetries: -1},
		Spec{Name: "continuum", Nodes: 150, Cores: 24, MaxRetries: -1},
	)
	if err != nil {
		panic(err) // static registry; cannot fail
	}
	return r
}

// Tracker counts per-job attempts and applies a spec's retry policy — the
// runtime half of the Job Tracker.
type Tracker struct {
	spec     Spec
	attempts map[string]int
}

// NewTracker builds a tracker for one job type.
func NewTracker(spec Spec) *Tracker {
	return &Tracker{spec: spec, attempts: make(map[string]int)}
}

// Spec returns the tracked specification.
func (t *Tracker) Spec() Spec { return t.spec }

// RecordFailure notes one failure of the identified work item and reports
// whether it should be resubmitted.
func (t *Tracker) RecordFailure(id string) bool {
	t.attempts[id]++
	return t.spec.ShouldRetry(t.attempts[id])
}

// RecordSuccess clears the item's failure history.
func (t *Tracker) RecordSuccess(id string) { delete(t.attempts, id) }

// Attempts returns how many failures the item has accumulated.
func (t *Tracker) Attempts(id string) int { return t.attempts[id] }

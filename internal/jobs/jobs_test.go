package jobs

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Cores: 1},                               // no name
		{Name: "x"},                              // no resources
		{Name: "x", Cores: -1},                   // negative
		{Name: "x", Cores: 1, DurationJitter: 3}, // jitter out of range
		{Name: "x", Cores: 1, MaxRetries: -2},    // bad retries
		{Name: "x", Cores: 1, GPUs: -1},          // negative gpus
		{Name: "x", Cores: 1, Nodes: -1},         // negative nodes
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %d (%+v) accepted", i, s)
		}
	}
	good := Spec{Name: "sim", Cores: 3, GPUs: 1, MaxRetries: -1}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpecRequestAndSample(t *testing.T) {
	s := Spec{Name: "createsim", Cores: 24, MeanDuration: Duration(90 * time.Minute),
		DurationJitter: 0.18}
	req := s.Request()
	if req.Name != "createsim" || req.Cores != 24 || req.Duration != 0 {
		t.Errorf("Request = %+v", req)
	}
	rng := rand.New(rand.NewSource(1))
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := s.Sample(rng).Duration
		if d < 20*time.Minute || d > 7*time.Hour {
			t.Fatalf("sampled duration %v outside clamp", d)
		}
		total += d
	}
	mean := total / n
	if mean < 80*time.Minute || mean > 100*time.Minute {
		t.Errorf("mean sampled duration = %v, want ~90m", mean)
	}
	// Zero jitter is deterministic.
	det := Spec{Name: "d", Cores: 1, MeanDuration: Duration(time.Hour)}
	if got := det.Sample(rng).Duration; got != time.Hour {
		t.Errorf("deterministic sample = %v", got)
	}
	// Zero duration stays zero (run-until-completed).
	open := Spec{Name: "o", Cores: 1, GPUs: 1}
	if got := open.Sample(rng).Duration; got != 0 {
		t.Errorf("open-ended sample = %v", got)
	}
}

func TestShouldRetry(t *testing.T) {
	limited := Spec{Name: "setup", Cores: 1, MaxRetries: 2}
	if !limited.ShouldRetry(1) || !limited.ShouldRetry(2) || limited.ShouldRetry(3) {
		t.Error("bounded retry policy wrong")
	}
	unlimited := Spec{Name: "sim", Cores: 1, MaxRetries: -1}
	if !unlimited.ShouldRetry(1000) {
		t.Error("unlimited retry policy wrong")
	}
	never := Spec{Name: "once", Cores: 1, MaxRetries: 0}
	if never.ShouldRetry(1) {
		t.Error("zero-retry policy wrong")
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	orig := Summit()
	b, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRegistry(b)
	if err != nil {
		t.Fatalf("reloading own output: %v\n%s", err, b)
	}
	if len(loaded.Names()) != len(orig.Names()) {
		t.Errorf("names = %v vs %v", loaded.Names(), orig.Names())
	}
	cg, ok := loaded.Get("cg-sim")
	if !ok || cg.GPUs != 1 || cg.Cores != 3 || cg.MaxRetries != -1 {
		t.Errorf("cg-sim = %+v", cg)
	}
	cs, _ := loaded.Get("createsim")
	if time.Duration(cs.MeanDuration) != 90*time.Minute {
		t.Errorf("createsim duration = %v", cs.MeanDuration)
	}
}

func TestLoadRegistryFromConfigText(t *testing.T) {
	// The configuration-file path an application author uses (§4.5).
	cfg := `[
	  {"name": "meshgen", "cores": 16, "duration": "30m", "jitter": 0.2, "max_retries": 2},
	  {"name": "canyon-les", "cores": 4, "gpus": 1, "max_retries": -1}
	]`
	r, err := LoadRegistry([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); strings.Join(got, ",") != "canyon-les,meshgen" {
		t.Errorf("Names = %v", got)
	}
	les, _ := r.Get("canyon-les")
	if les.GPUs != 1 || !les.ShouldRetry(99) {
		t.Errorf("les = %+v", les)
	}
}

func TestLoadRegistryErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`[{"name": "a", "cores": 1}, {"name": "a", "cores": 2}]`, // duplicate
		`[{"name": "bad", "cores": 1, "duration": "ninety minutes"}]`,
		`[{"cores": 1}]`, // unnamed
	}
	for _, c := range cases {
		if _, err := LoadRegistry([]byte(c)); err == nil {
			t.Errorf("config %q accepted", c)
		}
	}
}

func TestSummitRegistryShapes(t *testing.T) {
	r := Summit()
	want := []string{"aa-sim", "backmap", "cg-sim", "continuum", "createsim"}
	if got := strings.Join(r.Names(), ","); got != strings.Join(want, ",") {
		t.Errorf("Names = %v", got)
	}
	cont, _ := r.Get("continuum")
	if cont.Nodes != 150 || cont.Cores != 24 {
		t.Errorf("continuum = %+v", cont)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("unknown spec found")
	}
}

func TestTrackerRetryAccounting(t *testing.T) {
	tr := NewTracker(Spec{Name: "setup", Cores: 1, MaxRetries: 2})
	if tr.Spec().Name != "setup" {
		t.Error("spec accessor wrong")
	}
	if !tr.RecordFailure("job-a") || tr.Attempts("job-a") != 1 {
		t.Error("first failure should retry")
	}
	if !tr.RecordFailure("job-a") {
		t.Error("second failure should retry")
	}
	if tr.RecordFailure("job-a") {
		t.Error("third failure should give up")
	}
	// Independent items don't share history.
	if !tr.RecordFailure("job-b") {
		t.Error("fresh item should retry")
	}
	// Success clears history.
	tr.RecordSuccess("job-a")
	if tr.Attempts("job-a") != 0 || !tr.RecordFailure("job-a") {
		t.Error("success did not reset attempts")
	}
}

package retry

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 7}
	for attempt := 1; attempt <= 8; attempt++ {
		a := p.Backoff(attempt)
		b := p.Backoff(attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, a, b)
		}
		if a > time.Second {
			t.Fatalf("attempt %d: backoff %v above MaxDelay", attempt, a)
		}
		if a <= 0 {
			t.Fatalf("attempt %d: nonpositive backoff %v", attempt, a)
		}
	}
	// Different seeds must produce different jitter streams (with near
	// certainty for any fixed attempt).
	q := p
	q.Seed = 8
	if p.Backoff(3) == q.Backoff(3) {
		t.Errorf("seeds 7 and 8 produced identical jittered backoff")
	}
}

func TestBackoffGrows(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Hour, Jitter: -1}
	if got := p.Backoff(1); got != 10*time.Millisecond {
		t.Fatalf("attempt 1 = %v, want 10ms", got)
	}
	if got := p.Backoff(3); got != 40*time.Millisecond {
		t.Fatalf("attempt 3 = %v, want 40ms (2x growth)", got)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	var slept []time.Duration
	attempts, err := Policy{MaxAttempts: 5}.Do(
		func(d time.Duration) { slept = append(slept, d) },
		nil,
		func() error {
			calls++
			if calls < 3 {
				return errors.New("flaky")
			}
			return nil
		})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v, want 3/3/nil", attempts, calls, err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	boom := errors.New("boom")
	attempts, err := Policy{MaxAttempts: 3}.Do(nil, nil, func() error { return boom })
	if !errors.Is(err, boom) || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3/boom", attempts, err)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	attempts, err := Policy{MaxAttempts: 10}.Do(nil,
		func(err error) bool { return !errors.Is(err, perm) },
		func() error { calls++; return perm })
	if !errors.Is(err, perm) || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v, want 1/1/permanent", attempts, calls, err)
	}
}

func TestDoNilSleepStillBoundsAttempts(t *testing.T) {
	calls := 0
	if _, err := (Policy{MaxAttempts: 4}).Do(nil, nil, func() error { calls++; return errors.New("x") }); err == nil {
		t.Fatal("want error after exhausted budget")
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

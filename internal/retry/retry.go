// Package retry provides the repo's shared bounded-backoff policy: capped
// exponential backoff with deterministic, seed-derived jitter. It is the
// single implementation behind every armored I/O path (datastore.Armor, the
// kvstore client's transparent reconnect) so that retry behaviour — attempt
// budgets, delay growth, jitter — is uniform and, crucially, reproducible:
// the jitter stream is a pure function of (Seed, attempt), never of the
// wall clock or a global random source, so same-seed chaos replays schedule
// byte-identical backoff sequences.
package retry

import (
	"time"
)

// Policy describes one bounded-backoff schedule. The zero value is usable:
// each zero field takes the default documented on it.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (default 4: one try plus three retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay between retries (default 2.0).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized (default 0.5:
	// delays land in [0.75d, 1.25d]). Set negative to disable entirely.
	Jitter float64
	// Seed selects the deterministic jitter stream. Two policies with the
	// same Seed produce identical backoff sequences.
	Seed uint64
}

// Defaults for the zero Policy.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.5
)

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 0 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultJitter
	}
	return p
}

// mix64 is the splitmix64 finalizer: a stateless bijective hash good enough
// to derive an independent-looking jitter fraction from (seed, attempt)
// without carrying any mutable RNG state.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Backoff returns the delay to sleep after failed attempt n (1-based): the
// capped exponential base delay, spread by the deterministic jitter. It is a
// pure function of the policy and n.
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		// frac in [0,1) from the hash of (seed, attempt); shift the delay
		// into [d*(1-J/2), d*(1+J/2)].
		frac := float64(mix64(p.Seed^uint64(attempt)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
		d *= 1 - p.Jitter/2 + p.Jitter*frac
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// Do runs op under the policy: it retries while op fails, retryable(err)
// reports true, and the attempt budget lasts. Between attempts it calls
// sleep with the Backoff delay; a nil sleep skips the wait but keeps the
// schedule accounting (virtual-time callers cannot block inside an event
// callback, so they account the delay instead of sleeping it — see
// datastore.Armor). A nil retryable retries every error.
//
// Do returns the number of attempts made and op's last error (nil on
// success).
func (p Policy) Do(sleep func(time.Duration), retryable func(error) bool, op func() error) (int, error) {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return attempt, nil
		}
		if retryable != nil && !retryable(err) {
			return attempt, err
		}
		if attempt >= p.MaxAttempts {
			return attempt, err
		}
		if sleep != nil {
			sleep(p.Backoff(attempt))
		}
	}
}

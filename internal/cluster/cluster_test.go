package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummitTopology(t *testing.T) {
	s := Summit(4608)
	if s.CoresPerNode() != 44 {
		t.Errorf("CoresPerNode = %d", s.CoresPerNode())
	}
	if s.TotalGPUs() != 27648 {
		t.Errorf("TotalGPUs = %d", s.TotalGPUs())
	}
	// Vertices per node: 1 node + 2 sockets + 44 cores + 6 GPUs = 53.
	if s.VerticesPerNode() != 53 {
		t.Errorf("VerticesPerNode = %d", s.VerticesPerNode())
	}
	if s.TotalVertices() != 1+4608*53 {
		t.Errorf("TotalVertices = %d", s.TotalVertices())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLassenTopology(t *testing.T) {
	l := Lassen(100)
	if l.GPUsPerNode != 4 || l.CoresPerNode() != 44 {
		t.Errorf("Lassen = %+v", l)
	}
}

func TestValidateRejectsBadTopology(t *testing.T) {
	for _, bad := range []Topology{
		{Nodes: 0, SocketsPerNode: 2, CoresPerSocket: 22, GPUsPerNode: 6},
		{Nodes: 1, SocketsPerNode: 0, CoresPerSocket: 22, GPUsPerNode: 6},
		{Nodes: 1, SocketsPerNode: 2, CoresPerSocket: 0, GPUsPerNode: 6},
		{Nodes: 1, SocketsPerNode: 2, CoresPerSocket: 22, GPUsPerNode: -1},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("topology %+v accepted", bad)
		}
	}
}

func TestReserveAndRelease(t *testing.T) {
	m, err := New(Summit(2))
	if err != nil {
		t.Fatal(err)
	}
	// A CG simulation job: 1 GPU + 3 cores (sim 1 core in the paper's v1
	// accounting, analysis 3; our job shape groups them).
	part, err := m.Reserve(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Cores) != 3 || len(part.GPUs) != 1 {
		t.Fatalf("part = %+v", part)
	}
	// Lowest-id, socket-contiguous placement.
	if part.Cores[0] != 0 || part.Cores[1] != 1 || part.Cores[2] != 2 || part.GPUs[0] != 0 {
		t.Errorf("placement not lowest-id-first: %+v", part)
	}
	if m.UsedCores() != 3 || m.UsedGPUs() != 1 {
		t.Errorf("used = %d cores, %d gpus", m.UsedCores(), m.UsedGPUs())
	}
	if m.Node(0).FreeCores() != 41 || m.Node(0).FreeGPUs() != 5 {
		t.Errorf("node free = %d/%d", m.Node(0).FreeCores(), m.Node(0).FreeGPUs())
	}
	m.Release(Alloc{Parts: []AllocPart{part}})
	if m.UsedCores() != 0 || m.UsedGPUs() != 0 {
		t.Error("release did not restore occupancy")
	}
}

func TestReserveExhaustsGPUs(t *testing.T) {
	m, _ := New(Summit(1))
	for i := 0; i < 6; i++ {
		if _, err := m.Reserve(0, 2, 1); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if m.NodeFits(0, 2, 1) {
		t.Error("node claims to fit a 7th GPU job")
	}
	if _, err := m.Reserve(0, 2, 1); err == nil {
		t.Error("7th GPU reservation succeeded")
	}
	// CPU-only setup job (24 cores) still fits: 44 - 12 = 32 free.
	if !m.NodeFits(0, 24, 0) {
		t.Error("setup job should still fit")
	}
}

func TestDrainBlocksNewWorkKeepsOld(t *testing.T) {
	m, _ := New(Summit(2))
	part, err := m.Reserve(1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Drain(1)
	if m.NodeFits(1, 1, 0) {
		t.Error("drained node accepts new work")
	}
	// The running job's resources stay allocated and releasable.
	if m.UsedGPUs() != 2 {
		t.Error("drain disturbed running allocation")
	}
	m.Release(Alloc{Parts: []AllocPart{part}})
	if m.UsedGPUs() != 0 {
		t.Error("release on drained node failed")
	}
	m.Undrain(1)
	if !m.NodeFits(1, 1, 0) {
		t.Error("undrained node rejects work")
	}
}

func TestOccupancyFractions(t *testing.T) {
	m, _ := New(Summit(4))
	// Fill all GPUs on 3 of 4 nodes: occupancy 18/24 = 0.75.
	for n := 0; n < 3; n++ {
		for g := 0; g < 6; g++ {
			if _, err := m.Reserve(n, 2, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := m.GPUOccupancy(); got != 0.75 {
		t.Errorf("GPUOccupancy = %v", got)
	}
	wantCPU := float64(3*6*2) / float64(4*44)
	if got := m.CPUOccupancy(); got != wantCPU {
		t.Errorf("CPUOccupancy = %v, want %v", got, wantCPU)
	}
}

func TestDoubleReleaseIsHarmless(t *testing.T) {
	m, _ := New(Summit(1))
	part, _ := m.Reserve(0, 2, 1)
	a := Alloc{Parts: []AllocPart{part}}
	m.Release(a)
	m.Release(a) // second release of same alloc must not corrupt counters
	if m.UsedCores() != 0 || m.UsedGPUs() != 0 {
		t.Errorf("counters corrupted: %d cores %d gpus", m.UsedCores(), m.UsedGPUs())
	}
	if m.Node(0).FreeCores() != 44 || m.Node(0).FreeGPUs() != 6 {
		t.Error("node free counts corrupted")
	}
}

func TestPropertyReserveReleaseConservation(t *testing.T) {
	// Any interleaving of reserves and releases conserves resources: free
	// counts never negative, never exceed capacity, and full release
	// restores an idle machine.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(Summit(3))
		if err != nil {
			return false
		}
		var live []Alloc
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 && len(live) > 0 {
				i := rng.Intn(len(live))
				m.Release(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				node := rng.Intn(3)
				cores, gpus := 1+rng.Intn(4), rng.Intn(2)
				if m.NodeFits(node, cores, gpus) {
					part, err := m.Reserve(node, cores, gpus)
					if err != nil {
						return false
					}
					live = append(live, Alloc{Parts: []AllocPart{part}})
				}
			}
			for n := 0; n < 3; n++ {
				nd := m.Node(n)
				if nd.FreeCores() < 0 || nd.FreeCores() > 44 || nd.FreeGPUs() < 0 || nd.FreeGPUs() > 6 {
					return false
				}
			}
		}
		for _, a := range live {
			m.Release(a)
		}
		return m.UsedCores() == 0 && m.UsedGPUs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOccupancyZeroTopology(t *testing.T) {
	// A zero-value Machine has no resources; occupancy must report 0, not
	// NaN (0/0), which would poison downstream profile statistics.
	var m Machine
	if got := m.CPUOccupancy(); got != 0 {
		t.Errorf("CPUOccupancy on empty machine = %v, want 0", got)
	}
	if got := m.GPUOccupancy(); got != 0 {
		t.Errorf("GPUOccupancy on empty machine = %v, want 0", got)
	}
}

// Package cluster models a heterogeneous HPC machine — nodes composed of
// CPU sockets, cores, and GPUs — at the granularity the paper's scheduling
// study needs (§4.3, §5.2). The default topology is Summit's: 4608 nodes,
// each with two 22-core IBM POWER9 sockets and six NVIDIA V100 GPUs. The
// machine tracks per-resource occupancy so a Flux-like matcher can traverse
// it as a resource graph, and exposes drain/undrain for the paper's
// node-failure resilience story.
package cluster

import (
	"fmt"
)

// Topology describes a machine's shape.
type Topology struct {
	Nodes          int `json:"nodes"`
	SocketsPerNode int `json:"sockets_per_node"`
	CoresPerSocket int `json:"cores_per_socket"`
	GPUsPerNode    int `json:"gpus_per_node"`
}

// Summit returns Summit's per-node shape with the given node count
// (§5: 4608 nodes, 2×22-core POWER9, 6 V100s).
func Summit(nodes int) Topology {
	return Topology{Nodes: nodes, SocketsPerNode: 2, CoresPerSocket: 22, GPUsPerNode: 6}
}

// Lassen returns Lassen's per-node shape (the paper's development machine,
// "similar but smaller": 2×22-core POWER9, 4 V100s).
func Lassen(nodes int) Topology {
	return Topology{Nodes: nodes, SocketsPerNode: 2, CoresPerSocket: 22, GPUsPerNode: 4}
}

// CoresPerNode returns the total CPU cores per node.
func (t Topology) CoresPerNode() int { return t.SocketsPerNode * t.CoresPerSocket }

// VerticesPerNode returns the resource-graph vertex count under one node
// vertex: the node itself, its sockets, cores, and GPUs. This is the unit of
// matcher traversal work in the Fig. 6 / 670× experiments.
func (t Topology) VerticesPerNode() int {
	return 1 + t.SocketsPerNode + t.CoresPerNode() + t.GPUsPerNode
}

// TotalVertices returns the whole graph's vertex count (plus the root).
func (t Topology) TotalVertices() int { return 1 + t.Nodes*t.VerticesPerNode() }

// TotalGPUs returns the machine's GPU count.
func (t Topology) TotalGPUs() int { return t.Nodes * t.GPUsPerNode }

// TotalCores returns the machine's CPU core count.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode() }

// Validate checks the topology is physically sensible.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.SocketsPerNode < 1 || t.CoresPerSocket < 1 || t.GPUsPerNode < 0 {
		return fmt.Errorf("cluster: invalid topology %+v", t)
	}
	return nil
}

// Node is one compute node's live occupancy state.
type Node struct {
	ID      int
	Drained bool
	// coreUsed and gpuUsed are indexed by local resource id. Core ids are
	// laid out socket-major, so cores [0,CoresPerSocket) share socket 0 —
	// which lets placement honor the paper's cache/PCIe affinity rules.
	coreUsed []bool
	gpuUsed  []bool
	// RAMDiskUsed tracks bytes of node-local RAM disk in use (CG analysis
	// and backmapping stage data there before pushing results to GPFS).
	RAMDiskUsed int64

	freeCores int
	freeGPUs  int
}

// FreeCores returns the node's free core count.
func (n *Node) FreeCores() int { return n.freeCores }

// FreeGPUs returns the node's free GPU count.
func (n *Node) FreeGPUs() int { return n.freeGPUs }

// Machine is the full resource set.
type Machine struct {
	topo  Topology
	nodes []*Node

	usedCores int
	usedGPUs  int
}

// New builds an idle machine with the given topology.
func New(t Topology) (*Machine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{topo: t, nodes: make([]*Node, t.Nodes)}
	for i := range m.nodes {
		m.nodes[i] = &Node{
			ID:        i,
			coreUsed:  make([]bool, t.CoresPerNode()),
			gpuUsed:   make([]bool, t.GPUsPerNode),
			freeCores: t.CoresPerNode(),
			freeGPUs:  t.GPUsPerNode,
		}
	}
	return m, nil
}

// Topology returns the machine's shape.
func (m *Machine) Topology() Topology { return m.topo }

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// UsedCores returns the number of occupied cores machine-wide.
func (m *Machine) UsedCores() int { return m.usedCores }

// UsedGPUs returns the number of occupied GPUs machine-wide.
func (m *Machine) UsedGPUs() int { return m.usedGPUs }

// GPUOccupancy returns the fraction of GPUs in use (0..1).
func (m *Machine) GPUOccupancy() float64 {
	total := m.topo.TotalGPUs()
	if total == 0 {
		return 0
	}
	return float64(m.usedGPUs) / float64(total)
}

// CPUOccupancy returns the fraction of cores in use (0..1).
func (m *Machine) CPUOccupancy() float64 {
	total := m.topo.TotalCores()
	if total == 0 {
		return 0
	}
	return float64(m.usedCores) / float64(total)
}

// Drain marks a node unschedulable without disturbing running jobs — the
// Flux failure-handling behaviour the paper inherits ("drain the failed
// nodes so that no new jobs can be scheduled while keeping the existing
// jobs running").
func (m *Machine) Drain(node int) { m.nodes[node].Drained = true }

// Undrain returns a node to service.
func (m *Machine) Undrain(node int) { m.nodes[node].Drained = false }

// Alloc is a placement of one job: one part per participating node.
type Alloc struct {
	Parts []AllocPart
}

// AllocPart pins specific cores and GPUs on one node.
type AllocPart struct {
	Node  int
	Cores []int
	GPUs  []int
}

// NodeFits reports whether node i (not drained) can host cores+gpus.
func (m *Machine) NodeFits(i, cores, gpus int) bool {
	n := m.nodes[i]
	return !n.Drained && n.freeCores >= cores && n.freeGPUs >= gpus
}

// Reserve picks specific free resources on node i and returns the part.
// Cores are taken socket-contiguously (lowest free ids first), matching the
// paper's placement rule that a simulation's cores share cache and analysis
// cores sit near the PCIe bus; GPUs are lowest-id-first.
func (m *Machine) Reserve(i, cores, gpus int) (AllocPart, error) {
	if !m.NodeFits(i, cores, gpus) {
		return AllocPart{}, fmt.Errorf("cluster: node %d cannot fit %d cores + %d gpus", i, cores, gpus)
	}
	n := m.nodes[i]
	part := AllocPart{Node: i}
	for c := 0; c < len(n.coreUsed) && len(part.Cores) < cores; c++ {
		if !n.coreUsed[c] {
			n.coreUsed[c] = true
			part.Cores = append(part.Cores, c)
		}
	}
	for g := 0; g < len(n.gpuUsed) && len(part.GPUs) < gpus; g++ {
		if !n.gpuUsed[g] {
			n.gpuUsed[g] = true
			part.GPUs = append(part.GPUs, g)
		}
	}
	n.freeCores -= cores
	n.freeGPUs -= gpus
	m.usedCores += cores
	m.usedGPUs += gpus
	return part, nil
}

// Release frees every resource in the allocation.
func (m *Machine) Release(a Alloc) {
	for _, p := range a.Parts {
		n := m.nodes[p.Node]
		for _, c := range p.Cores {
			if n.coreUsed[c] {
				n.coreUsed[c] = false
				n.freeCores++
				m.usedCores--
			}
		}
		for _, g := range p.GPUs {
			if n.gpuUsed[g] {
				n.gpuUsed[g] = false
				n.freeGPUs++
				m.usedGPUs--
			}
		}
	}
}

// Package knn provides exact nearest-neighbour search over low-dimensional
// float vectors. It replaces the FAISS approximate-nearest-neighbour engine
// the paper uses for the patch selector's L2 rank updates (§4.4, Task 2).
// Exactness only strengthens farthest-point sampling; the cost model the
// paper cares about — rank updates over a 35,000-candidate queue in minutes
// — is measured against this engine in the benches.
//
// Two engines are provided: a brute-force scan (always correct, cache
// friendly, excellent at d=9) and a uniform cell-grid accelerator that
// prunes by cell distance for workloads with many queries against a slowly
// growing reference set.
package knn

import (
	"fmt"
	"math"
	"sort"
)

// SqDist returns the squared L2 distance between equal-length vectors.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Index is the nearest-neighbour engine interface.
type Index interface {
	// Add inserts a vector, returning its id (insertion order).
	Add(p []float64) int
	// Len returns the number of stored vectors.
	Len() int
	// Nearest returns the id and L2 distance of the closest stored vector
	// to q; id is -1 and distance +Inf when the index is empty.
	Nearest(q []float64) (int, float64)
	// KNearest returns up to k ids sorted by increasing distance.
	KNearest(q []float64, k int) []Neighbor
	// At returns the stored vector with the given id.
	At(id int) []float64
}

// Neighbor pairs a stored vector id with its distance from a query.
type Neighbor struct {
	ID   int
	Dist float64
}

// ---------------------------------------------------------------------------
// Brute force

// Brute is an exact linear-scan index over vectors of fixed dimension.
// Not safe for concurrent mutation; the selectors serialize access.
type Brute struct {
	dim  int
	flat []float64 // row-major storage; avoids per-vector allocations
}

// NewBrute creates a brute-force index for dim-dimensional vectors.
func NewBrute(dim int) *Brute {
	if dim < 1 {
		panic(fmt.Sprintf("knn: invalid dimension %d", dim))
	}
	return &Brute{dim: dim}
}

// Add implements Index.
func (b *Brute) Add(p []float64) int {
	if len(p) != b.dim {
		panic(fmt.Sprintf("knn: vector dim %d, index dim %d", len(p), b.dim))
	}
	b.flat = append(b.flat, p...)
	return b.Len() - 1
}

// Len implements Index.
func (b *Brute) Len() int { return len(b.flat) / b.dim }

// At implements Index.
func (b *Brute) At(id int) []float64 { return b.flat[id*b.dim : (id+1)*b.dim] }

// Nearest implements Index.
func (b *Brute) Nearest(q []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	n := b.Len()
	for i := 0; i < n; i++ {
		if d := SqDist(q, b.At(i)); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD)
}

// NearestAmong returns the minimum distance from q to the vectors with ids
// in [from, to). It is the primitive behind incremental rank updates: a
// cached candidate distance only needs comparing against newly selected
// points.
func (b *Brute) NearestAmong(q []float64, from, to int) float64 {
	bestD := math.Inf(1)
	if from < 0 {
		from = 0
	}
	if to > b.Len() {
		to = b.Len()
	}
	for i := from; i < to; i++ {
		if d := SqDist(q, b.At(i)); d < bestD {
			bestD = d
		}
	}
	return math.Sqrt(bestD)
}

// KNearest implements Index.
func (b *Brute) KNearest(q []float64, k int) []Neighbor {
	n := b.Len()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	ns := make([]Neighbor, 0, n)
	for i := 0; i < n; i++ {
		ns = append(ns, Neighbor{ID: i, Dist: math.Sqrt(SqDist(q, b.At(i)))})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
	return ns[:k]
}

// ---------------------------------------------------------------------------
// Cell grid

// Grid is an exact index that hashes vectors into uniform cells of side
// cellSize and prunes the scan by expanding rings of cells around the query
// until the best distance cannot improve. For clustered data it visits a
// small fraction of the points; in the worst case it degrades to brute.
type Grid struct {
	dim      int
	cellSize float64
	flat     []float64
	cells    map[string][]int
}

// NewGrid creates a cell-grid index with the given cell side length.
func NewGrid(dim int, cellSize float64) *Grid {
	if dim < 1 || cellSize <= 0 {
		panic(fmt.Sprintf("knn: invalid grid parameters dim=%d cell=%g", dim, cellSize))
	}
	return &Grid{dim: dim, cellSize: cellSize, cells: make(map[string][]int)}
}

func (g *Grid) cellOf(p []float64) []int {
	c := make([]int, g.dim)
	for i, v := range p {
		c[i] = int(math.Floor(v / g.cellSize))
	}
	return c
}

func cellKey(c []int) string {
	// Fixed-width encoding keeps keys compact and collision-free.
	b := make([]byte, 0, len(c)*5)
	for _, v := range c {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v), ',')
	}
	return string(b)
}

// Add implements Index.
func (g *Grid) Add(p []float64) int {
	if len(p) != g.dim {
		panic(fmt.Sprintf("knn: vector dim %d, index dim %d", len(p), g.dim))
	}
	id := g.Len()
	g.flat = append(g.flat, p...)
	k := cellKey(g.cellOf(p))
	g.cells[k] = append(g.cells[k], id)
	return id
}

// Len implements Index.
func (g *Grid) Len() int { return len(g.flat) / g.dim }

// At implements Index.
func (g *Grid) At(id int) []float64 { return g.flat[id*g.dim : (id+1)*g.dim] }

// Nearest implements Index.
func (g *Grid) Nearest(q []float64) (int, float64) {
	if g.Len() == 0 {
		return -1, math.Inf(1)
	}
	center := g.cellOf(q)
	best, bestD := -1, math.Inf(1)
	// Expand rings of cells. Ring r contains all cells with Chebyshev
	// distance exactly r from the center cell. Once the closest possible
	// point in ring r (which is at least (r-1)*cellSize away) cannot beat
	// the best found, stop.
	for r := 0; ; r++ {
		if best >= 0 {
			minPossible := float64(r-1) * g.cellSize
			if minPossible > 0 && minPossible*minPossible > bestD {
				break
			}
		}
		// Ring enumeration costs O((2r+1)^dim); once that exceeds a small
		// multiple of a full scan (outlier queries, tiny cells), brute
		// force is strictly cheaper and still exact.
		ringCells := math.Pow(float64(2*r+1), float64(g.dim))
		if ringCells > 4*float64(g.Len())+64 {
			b := Brute{dim: g.dim, flat: g.flat}
			return b.Nearest(q)
		}
		g.ring(center, r, func(key string) {
			for _, id := range g.cells[key] {
				if d := SqDist(q, g.At(id)); d < bestD || (d == bestD && id < best) {
					best, bestD = id, d
				}
			}
		})
	}
	return best, math.Sqrt(bestD)
}

// ring enumerates cell keys at Chebyshev radius r around center.
func (g *Grid) ring(center []int, r int, visit func(key string)) {
	cur := make([]int, g.dim)
	var rec func(i int, onShell bool)
	rec = func(i int, onShell bool) {
		if i == g.dim {
			if onShell || r == 0 {
				visit(cellKey(cur))
			}
			return
		}
		for d := -r; d <= r; d++ {
			cur[i] = center[i] + d
			rec(i+1, onShell || d == -r || d == r)
		}
	}
	if r == 0 {
		copy(cur, center)
		visit(cellKey(cur))
		return
	}
	rec(0, false)
}

// KNearest implements Index (falls back to a full scan; the selectors only
// need Nearest on the grid path).
func (g *Grid) KNearest(q []float64, k int) []Neighbor {
	b := Brute{dim: g.dim, flat: g.flat}
	return b.KNearest(q, k)
}

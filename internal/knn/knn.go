// Package knn provides exact nearest-neighbour search over low-dimensional
// float vectors. It replaces the FAISS approximate-nearest-neighbour engine
// the paper uses for the patch selector's L2 rank updates (§4.4, Task 2).
// Exactness only strengthens farthest-point sampling; the cost model the
// paper cares about — rank updates over a 35,000-candidate queue in minutes
// — is measured against this engine in the benches.
//
// Two engines are provided: a brute-force scan (always correct, cache
// friendly, excellent at d=9) and a uniform cell-grid accelerator that
// prunes by cell distance for workloads with many queries against a slowly
// growing reference set.
//
// Distance kernel invariant: every internal comparison is done on *squared*
// L2 distances; math.Sqrt appears only at API boundaries that promise true
// L2 values (Nearest, KNearest, NearestAmong). Squared distance is a
// strictly monotonic transform on non-negative reals, so every comparison,
// argmin, and ordering is unchanged — the sqrt per candidate the serial
// engine paid was pure waste on the rank-update hot path. Callers on that
// hot path (the dynim samplers) use the ...Sq forms end-to-end.
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// SqDist returns the squared L2 distance between equal-length vectors.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Index is the nearest-neighbour engine interface.
type Index interface {
	// Add inserts a vector, returning its id (insertion order).
	Add(p []float64) int
	// Len returns the number of stored vectors.
	Len() int
	// Nearest returns the id and L2 distance of the closest stored vector
	// to q; id is -1 and distance +Inf when the index is empty.
	Nearest(q []float64) (int, float64)
	// KNearest returns up to k ids sorted by increasing distance.
	KNearest(q []float64, k int) []Neighbor
	// At returns the stored vector with the given id.
	At(id int) []float64
}

// Neighbor pairs a stored vector id with its distance from a query.
type Neighbor struct {
	ID   int
	Dist float64
}

// ---------------------------------------------------------------------------
// Brute force

// Brute is an exact linear-scan index over vectors of fixed dimension.
// Not safe for concurrent mutation; the selectors serialize access.
// Concurrent reads (Nearest/NearestAmongSq/At) with no writer are safe —
// the parallel selector engine relies on this during sharded rank updates.
type Brute struct {
	dim  int
	flat []float64 // row-major storage; avoids per-vector allocations
}

// NewBrute creates a brute-force index for dim-dimensional vectors.
func NewBrute(dim int) *Brute {
	if dim < 1 {
		panic(fmt.Sprintf("knn: invalid dimension %d", dim))
	}
	return &Brute{dim: dim}
}

// Add implements Index.
func (b *Brute) Add(p []float64) int {
	if len(p) != b.dim {
		panic(fmt.Sprintf("knn: vector dim %d, index dim %d", len(p), b.dim))
	}
	b.flat = append(b.flat, p...)
	return b.Len() - 1
}

// Len implements Index.
func (b *Brute) Len() int { return len(b.flat) / b.dim }

// At implements Index.
func (b *Brute) At(id int) []float64 { return b.flat[id*b.dim : (id+1)*b.dim] }

// scanBlock is the row count per inner block of the scan kernels. Blocks
// keep the compiler's bounds-check hoisting effective and the working set
// within L1 while walking b.flat in strictly ascending (row-major) order.
const scanBlock = 256

// minSqAmong is the shared scan kernel: the minimum squared distance from q
// to rows [from, to) of flat storage, plus the argmin id. Rows are walked
// row-major through one flat slice — no per-row slice headers beyond the
// re-sliced window, no sqrt, no allocation.
func (b *Brute) minSqAmong(q []float64, from, to int) (int, float64) {
	best, bestD := -1, math.Inf(1)
	dim := b.dim
	for blockLo := from; blockLo < to; blockLo += scanBlock {
		blockHi := blockLo + scanBlock
		if blockHi > to {
			blockHi = to
		}
		base := blockLo * dim
		for i := blockLo; i < blockHi; i++ {
			row := b.flat[base : base+dim : base+dim]
			var s float64
			for j, qv := range q {
				d := qv - row[j]
				s += d * d
			}
			if s < bestD {
				best, bestD = i, s
			}
			base += dim
		}
	}
	return best, bestD
}

// Nearest implements Index. The distance is true L2 (sqrt at the boundary).
func (b *Brute) Nearest(q []float64) (int, float64) {
	best, bestD := b.minSqAmong(q, 0, b.Len())
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD)
}

// RowsFlat returns the row-major backing storage for rows [from, to) — a
// read-only view for batch distance kernels (the selector rank refresh)
// that stream many queries against the same rows and cannot afford a call
// per query-row pair. Callers must not mutate the returned slice.
func (b *Brute) RowsFlat(from, to int) []float64 {
	return b.flat[from*b.dim : to*b.dim]
}

// NearestAmongSq returns the minimum *squared* distance from q to the
// vectors with ids in [from, to). It is the primitive behind incremental
// rank updates: a cached candidate distance only needs comparing against
// newly selected points, and on that hot path (35,000 candidates × every
// new selection) the sqrt the non-Sq form pays per call is pure overhead.
func (b *Brute) NearestAmongSq(q []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > b.Len() {
		to = b.Len()
	}
	_, bestD := b.minSqAmong(q, from, to)
	return bestD
}

// NearestAmong returns the minimum L2 distance from q to the vectors with
// ids in [from, to). Boundary form of NearestAmongSq.
func (b *Brute) NearestAmong(q []float64, from, to int) float64 {
	return math.Sqrt(b.NearestAmongSq(q, from, to))
}

// kHeap is a bounded max-heap of candidate neighbours keyed on (squared
// distance, id): the root is the worst of the k best seen so far, so each
// new candidate needs one root comparison and at most one sift.
type kHeap []Neighbor

func (h kHeap) Len() int { return len(h) }
func (h kHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist // max-heap: worst on top
	}
	return h[i].ID > h[j].ID
}
func (h kHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *kHeap) Push(x any)   { *h = append(*h, x.(Neighbor)) }
func (h *kHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h kHeap) worse(n Neighbor) bool {
	if h[0].Dist != n.Dist {
		return n.Dist < h[0].Dist
	}
	return n.ID < h[0].ID
}

// KNearest implements Index. Partial selection: a bounded max-heap of size
// k replaces the former materialize-all-then-sort, so cost is O(n log k)
// instead of O(n log n) and allocation is k entries instead of n.
func (b *Brute) KNearest(q []float64, k int) []Neighbor {
	n := b.Len()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	h := make(kHeap, 0, k)
	dim := b.dim
	base := 0
	for i := 0; i < n; i++ {
		row := b.flat[base : base+dim : base+dim]
		var s float64
		for j, qv := range q {
			d := qv - row[j]
			s += d * d
		}
		base += dim
		cand := Neighbor{ID: i, Dist: s}
		if len(h) < k {
			heap.Push(&h, cand)
		} else if h.worse(cand) {
			h[0] = cand
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist) // L2 at the API boundary
	}
	return out
}

// ---------------------------------------------------------------------------
// Cell grid

// Grid is an exact index that hashes vectors into uniform cells of side
// cellSize and prunes the scan by expanding rings of cells around the query
// until the best distance cannot improve. For clustered data it visits a
// small fraction of the points; in the worst case it degrades to brute.
//
// Cells are keyed by a 64-bit mix of the integer cell coordinates rather
// than a formatted string: a query's ring enumeration touches O((2r+1)^dim)
// cells, and the former string keys allocated on every one of them. Hash
// collisions are tolerated by construction — a collision only merges two
// cells' id lists, and since every visited id is re-checked against the
// query with its true (squared) distance, results stay exact; the scan just
// inspects a few extra points in the (astronomically rare) colliding case.
type Grid struct {
	dim      int
	cellSize float64
	flat     []float64
	cells    map[uint64][]int
}

// NewGrid creates a cell-grid index with the given cell side length.
func NewGrid(dim int, cellSize float64) *Grid {
	if dim < 1 || cellSize <= 0 {
		panic(fmt.Sprintf("knn: invalid grid parameters dim=%d cell=%g", dim, cellSize))
	}
	return &Grid{dim: dim, cellSize: cellSize, cells: make(map[uint64][]int)}
}

func (g *Grid) cellOf(p []float64) []int {
	c := make([]int, g.dim)
	for i, v := range p {
		c[i] = int(math.Floor(v / g.cellSize))
	}
	return c
}

// cellHash mixes integer cell coordinates into a 64-bit map key,
// allocation-free. Each coordinate is avalanched (splitmix64 finalizer)
// before the combine: cell coordinates are tiny, sign-extended, and highly
// correlated between neighbouring cells, which defeats byte-oriented
// combines like plain FNV.
func cellHash(c []int) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range c {
		x := uint64(v) * 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		h = (h ^ x) * 1099511628211
	}
	return h
}

// Add implements Index.
func (g *Grid) Add(p []float64) int {
	if len(p) != g.dim {
		panic(fmt.Sprintf("knn: vector dim %d, index dim %d", len(p), g.dim))
	}
	id := g.Len()
	g.flat = append(g.flat, p...)
	k := cellHash(g.cellOf(p))
	g.cells[k] = append(g.cells[k], id)
	return id
}

// Len implements Index.
func (g *Grid) Len() int { return len(g.flat) / g.dim }

// At implements Index.
func (g *Grid) At(id int) []float64 { return g.flat[id*g.dim : (id+1)*g.dim] }

// Nearest implements Index.
func (g *Grid) Nearest(q []float64) (int, float64) {
	if g.Len() == 0 {
		return -1, math.Inf(1)
	}
	center := g.cellOf(q)
	best, bestD := -1, math.Inf(1)
	// Expand rings of cells. Ring r contains all cells with Chebyshev
	// distance exactly r from the center cell. Once the closest possible
	// point in ring r (which is at least (r-1)*cellSize away) cannot beat
	// the best found, stop. All comparisons are on squared distances.
	for r := 0; ; r++ {
		if best >= 0 {
			minPossible := float64(r-1) * g.cellSize
			if minPossible > 0 && minPossible*minPossible > bestD {
				break
			}
		}
		// Ring enumeration costs O((2r+1)^dim); once that exceeds a small
		// multiple of a full scan (outlier queries, tiny cells), brute
		// force is strictly cheaper and still exact.
		ringCells := math.Pow(float64(2*r+1), float64(g.dim))
		if ringCells > 4*float64(g.Len())+64 {
			b := Brute{dim: g.dim, flat: g.flat}
			return b.Nearest(q)
		}
		g.ring(center, r, func(key uint64) {
			for _, id := range g.cells[key] {
				if d := SqDist(q, g.At(id)); d < bestD || (d == bestD && id < best) {
					best, bestD = id, d
				}
			}
		})
	}
	return best, math.Sqrt(bestD)
}

// ring enumerates cell hash keys at Chebyshev radius r around center.
func (g *Grid) ring(center []int, r int, visit func(key uint64)) {
	cur := make([]int, g.dim)
	var rec func(i int, onShell bool)
	rec = func(i int, onShell bool) {
		if i == g.dim {
			if onShell || r == 0 {
				visit(cellHash(cur))
			}
			return
		}
		for d := -r; d <= r; d++ {
			cur[i] = center[i] + d
			rec(i+1, onShell || d == -r || d == r)
		}
	}
	if r == 0 {
		copy(cur, center)
		visit(cellHash(cur))
		return
	}
	rec(0, false)
}

// KNearest implements Index (falls back to a full scan; the selectors only
// need Nearest on the grid path).
func (g *Grid) KNearest(q []float64, k int) []Neighbor {
	b := Brute{dim: g.dim, flat: g.flat}
	return b.KNearest(q, k)
}

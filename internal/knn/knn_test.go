package knn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSqDist(t *testing.T) {
	if d := SqDist([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Errorf("SqDist = %v", d)
	}
	if d := SqDist([]float64{1}, []float64{1}); d != 0 {
		t.Errorf("SqDist identical = %v", d)
	}
}

func TestBruteEmpty(t *testing.T) {
	b := NewBrute(3)
	id, d := b.Nearest([]float64{1, 2, 3})
	if id != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Nearest = %d, %v", id, d)
	}
	if ns := b.KNearest([]float64{1, 2, 3}, 5); ns != nil {
		t.Errorf("empty KNearest = %v", ns)
	}
}

func TestBruteNearest(t *testing.T) {
	b := NewBrute(2)
	b.Add([]float64{0, 0})
	b.Add([]float64{10, 0})
	b.Add([]float64{5, 5})
	id, d := b.Nearest([]float64{9, 1})
	if id != 1 || math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Nearest = %d, %v", id, d)
	}
}

func TestBruteKNearestSorted(t *testing.T) {
	b := NewBrute(1)
	for _, v := range []float64{0, 10, 3, 7} {
		b.Add([]float64{v})
	}
	ns := b.KNearest([]float64{4}, 3)
	if len(ns) != 3 {
		t.Fatalf("len = %d", len(ns))
	}
	if ns[0].ID != 2 || ns[1].ID != 3 || ns[2].ID != 0 {
		t.Errorf("order = %v", ns)
	}
	if ns[0].Dist != 1 || ns[1].Dist != 3 || ns[2].Dist != 4 {
		t.Errorf("dists = %v", ns)
	}
	// k larger than the index truncates.
	if got := b.KNearest([]float64{4}, 99); len(got) != 4 {
		t.Errorf("k>n returned %d", len(got))
	}
}

func TestBruteNearestAmong(t *testing.T) {
	b := NewBrute(1)
	for _, v := range []float64{0, 100, 2} {
		b.Add([]float64{v})
	}
	// Only consider ids [1,3): nearest to 3 among {100, 2} is 2.
	if d := b.NearestAmong([]float64{3}, 1, 3); d != 1 {
		t.Errorf("NearestAmong = %v", d)
	}
	// Empty window.
	if d := b.NearestAmong([]float64{3}, 2, 2); !math.IsInf(d, 1) {
		t.Errorf("empty window = %v", d)
	}
	// Out-of-range windows are clamped.
	if d := b.NearestAmong([]float64{3}, -5, 99); d != 1 {
		t.Errorf("clamped window = %v", d)
	}
}

func TestBruteAtAndLen(t *testing.T) {
	b := NewBrute(3)
	b.Add([]float64{1, 2, 3})
	b.Add([]float64{4, 5, 6})
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	if v := b.At(1); v[0] != 4 || v[2] != 6 {
		t.Errorf("At(1) = %v", v)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	NewBrute(2).Add([]float64{1, 2, 3})
}

func TestGridMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dim = 3
	b := NewBrute(dim)
	g := NewGrid(dim, 0.25)
	for i := 0; i < 500; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		b.Add(p)
		g.Add(p)
	}
	for i := 0; i < 100; i++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.NormFloat64() * 1.5
		}
		bi, bd := b.Nearest(q)
		gi, gd := g.Nearest(q)
		if bi != gi || math.Abs(bd-gd) > 1e-12 {
			t.Fatalf("query %d: brute (%d,%v) vs grid (%d,%v)", i, bi, bd, gi, gd)
		}
	}
}

func TestGridOutlierQueryFallsBack(t *testing.T) {
	g := NewGrid(2, 0.5)
	g.Add([]float64{0, 0})
	// Query very far away: must still find the single point.
	id, d := g.Nearest([]float64{1000, 1000})
	if id != 0 || math.Abs(d-1000*math.Sqrt2) > 1e-6 {
		t.Errorf("outlier Nearest = %d, %v", id, d)
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewGrid(2, 1.0)
	g.Add([]float64{-5.5, -5.5})
	g.Add([]float64{5.5, 5.5})
	id, _ := g.Nearest([]float64{-5, -5})
	if id != 0 {
		t.Errorf("negative-coordinate Nearest = %d", id)
	}
}

func TestGridEmptyAndKNearest(t *testing.T) {
	g := NewGrid(2, 1.0)
	if id, d := g.Nearest([]float64{0, 0}); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty grid Nearest = %d, %v", id, d)
	}
	g.Add([]float64{1, 1})
	g.Add([]float64{2, 2})
	ns := g.KNearest([]float64{0, 0}, 2)
	if len(ns) != 2 || ns[0].ID != 0 {
		t.Errorf("KNearest = %v", ns)
	}
}

func TestPropertyGridEqualsBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(4)
		n := 1 + rng.Intn(100)
		b := NewBrute(dim)
		g := NewGrid(dim, 0.1+rng.Float64())
		for i := 0; i < n; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.Float64()*20 - 10
			}
			b.Add(p)
			g.Add(p)
		}
		for i := 0; i < 10; i++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()*24 - 12
			}
			_, bd := b.Nearest(q)
			_, gd := g.Nearest(q)
			if math.Abs(bd-gd) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBruteNearestAmongSq(t *testing.T) {
	b := NewBrute(1)
	for _, v := range []float64{0, 100, 2} {
		b.Add([]float64{v})
	}
	if d := b.NearestAmongSq([]float64{5}, 0, 3); d != 9 {
		t.Errorf("NearestAmongSq = %v, want 9", d)
	}
	if d := b.NearestAmongSq([]float64{5}, 2, 2); !math.IsInf(d, 1) {
		t.Errorf("empty window = %v", d)
	}
	// The boundary form is exactly sqrt of the squared form.
	if d := b.NearestAmong([]float64{5}, 0, 3); d != 3 {
		t.Errorf("NearestAmong = %v, want 3", d)
	}
}

func TestPropertyKNearestMatchesFullSort(t *testing.T) {
	// The bounded-heap partial selection must return exactly what the old
	// materialize-and-sort implementation returned: the k nearest, sorted by
	// (distance, id).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(5)
		n := rng.Intn(200)
		b := NewBrute(dim)
		type ref struct {
			id int
			d  float64
		}
		var all []ref
		for i := 0; i < n; i++ {
			p := make([]float64, dim)
			for j := range p {
				// Coarse values provoke exact distance ties.
				p[j] = float64(rng.Intn(8))
			}
			b.Add(p)
		}
		q := make([]float64, dim)
		for j := range q {
			q[j] = float64(rng.Intn(8))
		}
		for i := 0; i < n; i++ {
			all = append(all, ref{id: i, d: math.Sqrt(SqDist(q, b.At(i)))})
		}
		sortRefs := func() {
			for i := 1; i < len(all); i++ {
				for j := i; j > 0 && (all[j].d < all[j-1].d || (all[j].d == all[j-1].d && all[j].id < all[j-1].id)); j-- {
					all[j], all[j-1] = all[j-1], all[j]
				}
			}
		}
		sortRefs()
		for _, k := range []int{0, 1, 3, n / 2, n, n + 5} {
			got := b.KNearest(q, k)
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				return false
			}
			for i, nb := range got {
				if nb.ID != all[i].id || math.Abs(nb.Dist-all[i].d) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCellHashDistinguishesNeighbours(t *testing.T) {
	// Not a collision-freedom proof (collisions are tolerated by design) —
	// just a sanity check that nearby small-coordinate cells, the common
	// case, hash apart.
	seen := map[uint64][]int{}
	for x := -8; x <= 8; x++ {
		for y := -8; y <= 8; y++ {
			for z := -8; z <= 8; z++ {
				h := cellHash([]int{x, y, z})
				if prev, ok := seen[h]; ok {
					t.Fatalf("collision: %v vs (%d,%d,%d)", prev, x, y, z)
				}
				seen[h] = []int{x, y, z}
			}
		}
	}
}

func BenchmarkBruteNearest9D(b *testing.B) {
	// The patch selector's unit of work: one candidate's distance against a
	// growing selected set in 9-D (§4.4 Task 2).
	rng := rand.New(rand.NewSource(1))
	ix := NewBrute(9)
	for i := 0; i < 5000; i++ {
		p := make([]float64, 9)
		for j := range p {
			p[j] = rng.Float64()
		}
		ix.Add(p)
	}
	q := make([]float64, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[0] = float64(i%100) / 100
		ix.Nearest(q)
	}
}

package wmfleet

import (
	"testing"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/faults"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

func newTestTable(ttl time.Duration) (*vclock.Virtual, *LeaseTable) {
	clk := vclock.NewVirtual(epoch)
	return clk, NewLeaseTable(clk, datastore.NewMemory(), nil, "lease", ttl)
}

func TestLeaseAcquireExcludesLiveHolder(t *testing.T) {
	_, lt := newTestTable(10 * time.Minute)
	term, ok, err := lt.Acquire(0, "c")
	if err != nil || !ok || term != 1 {
		t.Fatalf("first acquire: term=%d ok=%v err=%v", term, ok, err)
	}
	if _, ok, err := lt.Acquire(1, "c"); err != nil || ok {
		t.Fatalf("acquire against live lease: ok=%v err=%v", ok, err)
	}
	// Re-acquire by the holder bumps the term (self-heal path).
	term, ok, err = lt.Acquire(0, "c")
	if err != nil || !ok || term != 2 {
		t.Fatalf("re-acquire by holder: term=%d ok=%v err=%v", term, ok, err)
	}
}

func TestRenewChecksHolderAndTerm(t *testing.T) {
	_, lt := newTestTable(10 * time.Minute)
	term, _, _ := lt.Acquire(0, "c")
	if ok, err := lt.Renew(0, term, "c"); err != nil || !ok {
		t.Fatalf("renew by holder: ok=%v err=%v", ok, err)
	}
	if ok, _ := lt.Renew(1, term, "c"); ok {
		t.Fatal("renew by non-holder succeeded")
	}
	if ok, _ := lt.Renew(0, term+1, "c"); ok {
		t.Fatal("renew with wrong term succeeded")
	}
	if ok, _ := lt.Renew(0, term, "missing"); ok {
		t.Fatal("renew of missing lease succeeded")
	}
}

// TestRenewRacingExpirySameTimestamp pins the tie-break: a renew arriving
// at the exact virtual instant the lease expires must lose, so the holder
// can never extend a lease an adopter is entitled to take at that instant.
func TestRenewRacingExpirySameTimestamp(t *testing.T) {
	ttl := 10 * time.Minute
	clk, lt := newTestTable(ttl)
	term, _, _ := lt.Acquire(0, "c")
	done := false
	clk.After(ttl, func() {
		if ok, err := lt.Renew(0, term, "c"); err != nil || ok {
			t.Errorf("renew at expiry instant: ok=%v err=%v (want ok=false)", ok, err)
		}
		// The adopter racing at the same instant wins.
		next, ok, err := lt.Acquire(1, "c")
		if err != nil || !ok || next != term+1 {
			t.Errorf("takeover at expiry instant: term=%d ok=%v err=%v", next, ok, err)
		}
		done = true
	})
	clk.RunUntil(epoch.Add(ttl))
	if !done {
		t.Fatal("race callback never ran")
	}
}

// TestDoubleAdoptionPrevention pins the term-bump gate: after a lease
// expires, exactly one of two would-be adopters wins it; the loser's
// acquire reports a live lease and the dead holder's stale renewals stay
// rejected.
func TestDoubleAdoptionPrevention(t *testing.T) {
	ttl := 10 * time.Minute
	clk, lt := newTestTable(ttl)
	expirations := 0
	lt.onExpire = func() { expirations++ }
	oldTerm, _, _ := lt.Acquire(0, "c")
	clk.After(ttl+time.Minute, func() {
		term1, ok, err := lt.Acquire(1, "c")
		if err != nil || !ok {
			t.Errorf("first adopter: ok=%v err=%v", ok, err)
		}
		if _, ok, err := lt.Acquire(2, "c"); err != nil || ok {
			t.Errorf("second adopter stole the lease: ok=%v err=%v", ok, err)
		}
		if ok, _ := lt.Renew(0, oldTerm, "c"); ok {
			t.Error("dead holder renewed a reassigned lease")
		}
		if ok, err := lt.Renew(1, term1, "c"); err != nil || !ok {
			t.Errorf("adopter renew: ok=%v err=%v", ok, err)
		}
	})
	clk.RunUntil(epoch.Add(ttl + 2*time.Minute))
	if expirations != 1 {
		t.Fatalf("expiration takeovers = %d, want 1", expirations)
	}
}

// TestLeaseOpsSurviveTransientBurst drives the lease protocol through the
// armored store while the fault engine injects transient errors at a high
// rate: the armor's in-instant retries must keep acquire/renew succeeding
// (same layering the campaign wires).
func TestLeaseOpsSurviveTransientBurst(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	plan := &faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Class: faults.StoreTransient, Rate: 0.5},
	}}
	eng := faults.NewEngine(clk, nil, plan)
	eng.Start()
	defer eng.Stop()
	store := datastore.Armor(faults.WrapStore(datastore.NewMemory(), eng),
		telemetry.Nop(), "memory", datastore.ArmorOptions{})
	ttl := 10 * time.Minute
	lt := NewLeaseTable(clk, store, nil, "lease", ttl)
	term, ok, err := lt.Acquire(0, "c")
	if err != nil || !ok {
		t.Fatalf("acquire under burst: ok=%v err=%v", ok, err)
	}
	renewed, failed := 0, 0
	tick := vclock.NewTicker(clk, ttl/3, func(time.Time) {
		ok, err := lt.Renew(0, term, "c")
		if err == nil && ok {
			renewed++
			return
		}
		failed++
		// A renewal (or its recovery) can lose its whole attempt budget to
		// the burst; the fleet's answer is to re-acquire, retrying on the
		// next tick if even that fails. Mirror that here.
		if next, ok2, err2 := lt.Acquire(0, "c"); err2 == nil && ok2 {
			term = next
		}
	})
	clk.RunUntil(epoch.Add(6 * time.Hour))
	tick.Stop()
	if renewed == 0 {
		t.Fatalf("no renewals succeeded under burst (failed=%d)", failed)
	}
	// The protocol must recover once an op gets through the armor: a fresh
	// acquire by the (sole) holder succeeds within a bounded number of
	// attempts — deterministic for the fixed seed.
	recovered := false
	for i := 0; i < 20 && !recovered; i++ {
		if _, ok, err := lt.Acquire(0, "c"); err == nil && ok {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("holder could not re-acquire after burst (renewed=%d failed=%d)", renewed, failed)
	}
}

package wmfleet

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/core"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/faults"
	"mummi/internal/maestro"
	"mummi/internal/sched"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

type fleetRig struct {
	clk  *vclock.Virtual
	mach *cluster.Machine
	s    *sched.Scheduler
}

func newFleetRig(t *testing.T, nodes int) *fleetRig {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	m, err := cluster.New(cluster.Summit(nodes))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(clk, sched.Config{Machine: m, Policy: sched.FirstMatch, Mode: sched.Async})
	if err != nil {
		t.Fatal(err)
	}
	return &fleetRig{clk: clk, mach: m, s: s}
}

func testCoupling(name string, dims, maxSims, readyTarget int, simDur time.Duration) core.CouplingSpec {
	return core.CouplingSpec{
		Name:          name,
		Selector:      dynim.NewFarthestPoint(dims, 0),
		SetupReq:      sched.Request{Name: name + "-setup", Cores: 4},
		SetupDuration: func(rng *rand.Rand) time.Duration { return time.Hour },
		SimReq:        sched.Request{Name: name + "-sim", Cores: 3, GPUs: 1},
		SimDuration:   func(rng *rand.Rand, p dynim.Point) time.Duration { return simDur },
		MaxSims:       maxSims,
		ReadyTarget:   readyTarget,
	}
}

func feedCandidates(t *testing.T, fl *Fleet, coupling string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := fl.AddCandidate(coupling, dynim.Point{
			ID: fmt.Sprintf("%s-p%03d", coupling, i), Coords: []float64{float64(i), 0}}); err != nil {
			t.Fatal(err)
		}
	}
}

// killCrashJobs mimics the campaign's crash handling: the dead instance's
// tracked jobs die with it (their configurations live on in the flushed
// checkpoints).
func killCrashJobs(t *testing.T, s *sched.Scheduler, info CrashInfo) {
	t.Helper()
	for _, id := range info.Jobs {
		if job, ok := s.Job(id); ok && job.State == sched.Running {
			s.Fail(id)
		} else {
			s.Cancel(id)
		}
	}
}

// TestFleetAdoptionAfterCrash is the tentpole end-to-end: three instances
// over two couplings, instance 0 crashes mid-run, a survivor adopts its
// coupling through the expired store lease, and the campaign finishes with
// every checkpointed selection conserved.
func TestFleetAdoptionAfterCrash(t *testing.T) {
	r := newFleetRig(t, 2) // 12 GPUs
	var anomalies, events []string
	fl, err := New(Config{
		Clock:     r.clk,
		Backend:   maestro.FluxBackend{S: r.s},
		Store:     datastore.NewMemory(),
		Instances: 3,
		Couplings: []core.CouplingSpec{
			testCoupling("cg", 2, 8, 3, 6*time.Hour),
			testCoupling("aa", 2, 4, 2, 3*time.Hour),
		},
		PollEvery:  2 * time.Minute,
		Seed:       7,
		LeaseTTL:   30 * time.Minute,
		RenewEvery: 10 * time.Minute,
		Namespace:  "t1",
		OnEvent:    func(msg string) { events = append(events, msg) },
		OnAnomaly:  func(msg string) { anomalies = append(anomalies, msg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	feedCandidates(t, fl, "cg", 30)
	feedCandidates(t, fl, "aa", 20)
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	if o, _ := fl.Owner("cg"); o != 0 {
		t.Fatalf("cg initially owned by %d, want 0", o)
	}

	// Crash the cg owner mid-pipeline (setups done, sims in flight).
	r.clk.RunFor(3*time.Hour + 5*time.Minute)
	preCrash := fl.Stats()
	info, err := fl.Crash(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Couplings) != 1 || info.Couplings[0] != "cg" {
		t.Fatalf("crash orphaned %v, want [cg]", info.Couplings)
	}
	if len(info.Jobs) == 0 {
		t.Fatal("crashed instance tracked no jobs mid-run")
	}
	killCrashJobs(t, r.s, info)
	if o, _ := fl.Owner("cg"); o != -1 {
		t.Fatalf("cg owner = %d right after crash, want -1 (orphaned)", o)
	}

	// The lease expires one TTL after the last renewal; survivors adopt on
	// their next sweep. Run the rest of the day.
	r.clk.RunFor(21 * time.Hour)
	fl.Stop()

	acc := fl.Accounting()
	if acc.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", acc.Crashes)
	}
	if acc.Adoptions != 1 {
		t.Errorf("adoptions = %d, want exactly 1 (double-adoption guard)", acc.Adoptions)
	}
	if acc.LeaseExpirations < 1 {
		t.Errorf("lease expirations = %d, want >= 1", acc.LeaseExpirations)
	}
	if o, _ := fl.Owner("cg"); o != 1 && o != 2 {
		t.Errorf("cg owner after adoption = %d, want a survivor", o)
	}
	for _, a := range anomalies {
		if strings.Contains(a, "lost selections") {
			t.Errorf("conservation violated: %s", a)
		}
	}
	if len(anomalies) != 0 {
		t.Errorf("unexpected anomalies: %v", anomalies)
	}
	adopted := false
	for _, ev := range events {
		if strings.Contains(ev, "wm-adopt coupling=cg") {
			adopted = true
		}
	}
	if !adopted {
		t.Errorf("no wm-adopt event for cg in %v", events)
	}

	// The adopted coupling kept making progress, and the never-crashed
	// instance's coupling ran throughout — which also exercises the
	// dispatcher fanning one backend's callbacks out to every instance.
	post := fl.Stats()
	if post[0].CompletedSims <= preCrash[0].CompletedSims {
		t.Errorf("cg stalled after adoption: %d -> %d completed",
			preCrash[0].CompletedSims, post[0].CompletedSims)
	}
	if post[1].CompletedSims == 0 {
		t.Errorf("aa completed no sims: %+v", post[1])
	}
}

// TestFleetCheckpointAcrossFleetSizes pins the compatibility contract: a
// fleet checkpoint is the single-WM format, so the next allocation can
// restore it at any fleet size.
func TestFleetCheckpointAcrossFleetSizes(t *testing.T) {
	couplings := func() []core.CouplingSpec {
		return []core.CouplingSpec{
			testCoupling("cg", 2, 8, 3, 6*time.Hour),
			testCoupling("aa", 2, 4, 2, 3*time.Hour),
		}
	}
	r1 := newFleetRig(t, 2)
	fl1, err := New(Config{
		Clock: r1.clk, Backend: maestro.FluxBackend{S: r1.s},
		Store: datastore.NewMemory(), Instances: 3,
		Couplings: couplings(), PollEvery: 2 * time.Minute, Seed: 7, Namespace: "a1",
	})
	if err != nil {
		t.Fatal(err)
	}
	feedCandidates(t, fl1, "cg", 30)
	feedCandidates(t, fl1, "aa", 20)
	if err := fl1.Start(); err != nil {
		t.Fatal(err)
	}
	r1.clk.RunFor(12 * time.Hour)
	fl1.Stop()
	ck, err := fl1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	parts, err := core.SplitCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts["cg"] == nil || parts["aa"] == nil {
		t.Fatalf("checkpoint couplings = %v, want cg and aa", len(parts))
	}
	done1 := fl1.Stats()[0].CompletedSims

	r2 := newFleetRig(t, 2)
	fl2, err := New(Config{
		Clock: r2.clk, Backend: maestro.FluxBackend{S: r2.s},
		Store: datastore.NewMemory(), Instances: 2,
		Couplings: couplings(), PollEvery: 2 * time.Minute, Seed: 8, Namespace: "a2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	feedCandidates(t, fl2, "cg", 10)
	if err := fl2.Start(); err != nil {
		t.Fatal(err)
	}
	r2.clk.RunFor(24 * time.Hour)
	fl2.Stop()
	if done2 := fl2.Stats()[0].CompletedSims; done2 <= done1 {
		t.Errorf("restored fleet lost progress: %d completed before, %d after", done1, done2)
	}
}

// TestFleetAdoptionUnderStoreFaultBurst runs the crash/adopt cycle with
// the lease and checkpoint traffic routed through the armored store while
// the fault engine injects transient errors — the exact layering the chaos
// campaign wires. Adoption must still happen and conserve selections; the
// armor and the in-memory checkpoint fallback absorb the burst.
func TestFleetAdoptionUnderStoreFaultBurst(t *testing.T) {
	r := newFleetRig(t, 2)
	plan := &faults.Plan{Seed: 23, Rules: []faults.Rule{
		{Class: faults.StoreTransient, Rate: 0.5},
	}}
	eng := faults.NewEngine(r.clk, nil, plan)
	eng.Start()
	defer eng.Stop()
	store := datastore.Armor(faults.WrapStore(datastore.NewMemory(), eng),
		telemetry.Nop(), "memory", datastore.ArmorOptions{})
	var anomalies []string
	fl, err := New(Config{
		Clock: r.clk, Backend: maestro.FluxBackend{S: r.s},
		Store: store, Instances: 2,
		Couplings:  []core.CouplingSpec{testCoupling("cg", 2, 8, 3, 6*time.Hour)},
		PollEvery:  2 * time.Minute,
		Seed:       7,
		LeaseTTL:   30 * time.Minute,
		RenewEvery: 10 * time.Minute,
		Namespace:  "b1",
		OnAnomaly:  func(msg string) { anomalies = append(anomalies, msg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	feedCandidates(t, fl, "cg", 30)
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunFor(3*time.Hour + 5*time.Minute)
	info, err := fl.Crash(0)
	if err != nil {
		t.Fatal(err)
	}
	killCrashJobs(t, r.s, info)
	r.clk.RunFor(21 * time.Hour)
	fl.Stop()

	if acc := fl.Accounting(); acc.Adoptions != 1 {
		t.Errorf("adoptions = %d, want 1", acc.Adoptions)
	}
	for _, a := range anomalies {
		// Renew/flush failures past the armor's budget are survivable and
		// expected under a 50% burst; losing a selection is not.
		if strings.Contains(a, "lost selections") {
			t.Errorf("conservation violated under burst: %s", a)
		}
	}
	if st := fl.Stats()[0]; st.CompletedSims == 0 {
		t.Errorf("no sims completed under burst: %+v", st)
	}
}

// TestFleetRefusesLastInstanceCrash: a fleet of zero cannot finish the
// campaign, so the last live instance will not crash.
func TestFleetRefusesLastInstanceCrash(t *testing.T) {
	r := newFleetRig(t, 1)
	fl, err := New(Config{
		Clock: r.clk, Backend: maestro.FluxBackend{S: r.s},
		Store: datastore.NewMemory(), Instances: 1,
		Couplings: []core.CouplingSpec{testCoupling("cg", 2, 4, 2, 6*time.Hour)},
		Namespace: "solo",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if _, err := fl.Crash(0); err == nil {
		t.Fatal("crash of the last live instance succeeded")
	}
	if !fl.Alive(0) {
		t.Fatal("refused crash still killed the instance")
	}
}

// TestFleetCandidateDuringOrphanWindow: candidates arriving between a
// crash and the adoption go straight to the coupling's shared selector —
// nothing is dropped while ownership is in flight.
func TestFleetCandidateDuringOrphanWindow(t *testing.T) {
	r := newFleetRig(t, 2)
	fl, err := New(Config{
		Clock: r.clk, Backend: maestro.FluxBackend{S: r.s},
		Store: datastore.NewMemory(), Instances: 2,
		Couplings:  []core.CouplingSpec{testCoupling("cg", 2, 8, 3, 6*time.Hour)},
		PollEvery:  2 * time.Minute,
		Seed:       7,
		LeaseTTL:   30 * time.Minute,
		RenewEvery: 10 * time.Minute,
		Namespace:  "w1",
	})
	if err != nil {
		t.Fatal(err)
	}
	feedCandidates(t, fl, "cg", 5)
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunFor(2 * time.Hour)
	info, err := fl.Crash(0)
	if err != nil {
		t.Fatal(err)
	}
	killCrashJobs(t, r.s, info)

	// Owner dead, lease not yet expired: the orphan window.
	if err := fl.AddCandidate("cg", dynim.Point{ID: "late", Coords: []float64{99, 0}}); err != nil {
		t.Fatalf("candidate rejected during orphan window: %v", err)
	}
	if st := fl.Stats()[0]; st.Candidates == 0 {
		t.Errorf("orphaned coupling reports no candidates: %+v", st)
	}
	if err := fl.AddCandidate("nope", dynim.Point{ID: "x"}); err == nil {
		t.Error("unknown coupling accepted a candidate")
	}

	r.clk.RunFor(22 * time.Hour)
	fl.Stop()
	if acc := fl.Accounting(); acc.Adoptions != 1 {
		t.Errorf("adoptions = %d, want 1", acc.Adoptions)
	}
	if st := fl.Stats()[0]; st.CompletedSims == 0 {
		t.Errorf("no sims completed after window: %+v", st)
	}
}

package wmfleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mummi/internal/core"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/maestro"
	"mummi/internal/sched"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

// Config wires a Fleet. Clock, Backend, Store, and at least one
// coupling are required; the rest default sensibly.
type Config struct {
	// Clock is the campaign's virtual clock; every fleet decision is a
	// function of it.
	Clock vclock.Clock
	// Backend is the shared job-scheduler backend all instances submit
	// through (each instance gets its own throttled conductor on top).
	Backend maestro.Backend
	// Store carries lease and checkpoint traffic. The campaign passes
	// the armored store, so lease operations survive injected transient
	// store faults by retrying inside one virtual instant.
	Store datastore.Store
	// Telemetry receives fleet counters, histograms, and spans (nil =
	// discarded). See docs/OBSERVABILITY.md for the emitted names.
	Telemetry *telemetry.Telemetry
	// Instances is the fleet size N (>= 1). Coupling i is initially
	// owned by instance i mod N; instances owning no coupling start as
	// hot standbys.
	Instances int
	// Couplings is the campaign's coupling set, in canonical order.
	Couplings []core.CouplingSpec
	// StaticJobs are submitted once at Start by instance 0 (the
	// continuum job in the three-scale regime); they are untracked and
	// survive any instance crash.
	StaticJobs []sched.Request
	// PollEvery is each instance's job-scan cadence (core.Config).
	PollEvery time.Duration
	// Seed derives each instance's WM seed deterministically.
	Seed int64
	// SubmitPerMinute is the campaign-wide submission throttle; it is
	// divided across instances (each conductor gets at least 1/min).
	// 0 disables throttling.
	SubmitPerMinute int
	// WatchdogGrace arms each instance's hung-job watchdog (core.Config).
	WatchdogGrace float64
	// LeaseTTL is how long an unrenewed lease stays live (default 10m).
	// A crashed instance's couplings become adoptable one TTL after its
	// last renewal.
	LeaseTTL time.Duration
	// RenewEvery is the renew/sweep ticker period (default LeaseTTL/3,
	// so a healthy instance has two chances to renew before expiry).
	RenewEvery time.Duration
	// Namespace prefixes the lease and checkpoint key namespaces. The
	// campaign scopes it per allocation so one allocation's leases can
	// never leak into the next.
	Namespace string
	// OnEvent observes fleet lifecycle notes (crashes, adoptions) for
	// the campaign's fault log; nil discards them.
	OnEvent func(msg string)
	// OnAnomaly observes conservation violations and unexpected store
	// failures; nil discards them.
	OnAnomaly func(msg string)
}

// CrashInfo reports what an instance crash orphaned: the jobs the dead
// instance was tracking (the caller kills them — their configurations
// are safe in the flushed checkpoints) and the couplings now awaiting
// adoption.
type CrashInfo struct {
	// Jobs are the dead instance's tracked job IDs, ascending.
	Jobs []sched.JobID
	// Couplings are the orphaned coupling names, in canonical order.
	Couplings []string
}

// Accounting tallies fleet robustness events for the campaign result.
type Accounting struct {
	// Crashes counts injected instance crashes.
	Crashes int
	// Adoptions counts couplings adopted by a surviving instance.
	Adoptions int
	// LeaseExpirations counts expired-lease takeovers.
	LeaseExpirations int
}

// Fleet is N workflow-manager instances over one scheduler, coordinating
// coupling ownership through store leases. Create with New, drive with
// Start/Stop; Crash models an instance failure. All methods must run on
// virtual-clock callbacks or between clock runs (they are serialized).
type Fleet struct {
	cfg    Config
	tel    *telemetry.Telemetry
	leases *LeaseTable
	disp   *dispatcher
	ckptNS string

	mu        sync.Mutex
	instances []*instance
	order     []string // canonical coupling order
	specs     map[string]core.CouplingSpec
	owner     map[string]int // coupling -> live owner index; -1 = orphaned
	terms     map[string]int64
	// parts holds the last known per-coupling checkpoint — the restore
	// source at Start and the fallback when a crash-time store flush
	// fails permanently (the fleet is one process, so an in-memory copy
	// is a legitimate stand-in for the store record it mirrors).
	parts   map[string][]byte
	acc     Accounting
	started bool
	stopped bool
}

// instance is one workflow manager plus its conductor and renew ticker.
type instance struct {
	idx   int
	wm    *core.Workflow
	cond  *maestro.Conductor
	renew *vclock.Ticker
	alive bool
}

// dispatcher fans scheduler lifecycle callbacks out to every instance.
// The scheduler backend has single OnFinish/OnStart slots; the
// dispatcher registers once and forwards to all registered listeners
// (each WM ignores job IDs it does not track).
type dispatcher struct {
	mu     sync.Mutex
	finish []func(sched.JobID, sched.State)
	start  []func(sched.JobID)
}

func (d *dispatcher) bind(b maestro.Backend) {
	b.OnFinish(func(id sched.JobID, st sched.State) {
		d.mu.Lock()
		fns := make([]func(sched.JobID, sched.State), len(d.finish))
		copy(fns, d.finish)
		d.mu.Unlock()
		for _, fn := range fns {
			fn(id, st)
		}
	})
	b.OnStart(func(id sched.JobID) {
		d.mu.Lock()
		fns := make([]func(sched.JobID), len(d.start))
		copy(fns, d.start)
		d.mu.Unlock()
		for _, fn := range fns {
			fn(id)
		}
	})
}

// port adapts the shared backend for one instance's conductor: submits
// pass through, but callback registration appends to the dispatcher
// instead of overwriting the backend's single slot.
type port struct {
	backend maestro.Backend
	disp    *dispatcher
}

func (p *port) Submit(req sched.Request) (sched.JobID, error) { return p.backend.Submit(req) }
func (p *port) Cancel(id sched.JobID) bool                    { return p.backend.Cancel(id) }
func (p *port) Fail(id sched.JobID) error                     { return p.backend.Fail(id) }

func (p *port) OnFinish(fn func(sched.JobID, sched.State)) {
	p.disp.mu.Lock()
	p.disp.finish = append(p.disp.finish, fn)
	p.disp.mu.Unlock()
}

func (p *port) OnStart(fn func(sched.JobID)) {
	p.disp.mu.Lock()
	p.disp.start = append(p.disp.start, fn)
	p.disp.mu.Unlock()
}

// New builds a fleet of cfg.Instances workflow managers. Coupling i goes
// to instance i mod N; every instance is built with AllowNoCouplings so
// a standby with nothing to manage is legal.
func New(cfg Config) (*Fleet, error) {
	if cfg.Clock == nil {
		return nil, errors.New("wmfleet: nil clock")
	}
	if cfg.Backend == nil {
		return nil, errors.New("wmfleet: nil backend")
	}
	if cfg.Store == nil {
		return nil, errors.New("wmfleet: nil store")
	}
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("wmfleet: instances must be >= 1, got %d", cfg.Instances)
	}
	if len(cfg.Couplings) == 0 {
		return nil, errors.New("wmfleet: no couplings")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Minute
	}
	if cfg.RenewEvery <= 0 {
		cfg.RenewEvery = cfg.LeaseTTL / 3
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Nop()
	}
	f := &Fleet{
		cfg:    cfg,
		tel:    tel,
		ckptNS: cfg.Namespace + "-ckpt",
		specs:  make(map[string]core.CouplingSpec, len(cfg.Couplings)),
		owner:  make(map[string]int, len(cfg.Couplings)),
		terms:  make(map[string]int64, len(cfg.Couplings)),
		parts:  make(map[string][]byte, len(cfg.Couplings)),
		disp:   &dispatcher{},
	}
	f.leases = NewLeaseTable(cfg.Clock, cfg.Store, tel, cfg.Namespace+"-lease", cfg.LeaseTTL)
	f.leases.onExpire = func() { f.acc.LeaseExpirations++ }
	for i, spec := range cfg.Couplings {
		if _, dup := f.specs[spec.Name]; dup {
			return nil, fmt.Errorf("wmfleet: duplicate coupling %q", spec.Name)
		}
		f.order = append(f.order, spec.Name)
		f.specs[spec.Name] = spec
		f.owner[spec.Name] = i % cfg.Instances
	}
	f.disp.bind(cfg.Backend)
	perInstance := 0
	if cfg.SubmitPerMinute > 0 {
		perInstance = cfg.SubmitPerMinute / cfg.Instances
		if perInstance < 1 {
			perInstance = 1
		}
	}
	for i := 0; i < cfg.Instances; i++ {
		cond, err := maestro.NewConductor(cfg.Clock,
			&port{backend: cfg.Backend, disp: f.disp}, perInstance)
		if err != nil {
			return nil, err
		}
		var owned []core.CouplingSpec
		for j, spec := range cfg.Couplings {
			if j%cfg.Instances == i {
				owned = append(owned, spec)
			}
		}
		var static []sched.Request
		if i == 0 {
			static = cfg.StaticJobs
		}
		wm, err := core.New(core.Config{
			Clock:            cfg.Clock,
			Conductor:        cond,
			Couplings:        owned,
			PollEvery:        cfg.PollEvery,
			StaticJobs:       static,
			Seed:             cfg.Seed + int64(i+1)*104729,
			WatchdogGrace:    cfg.WatchdogGrace,
			Telemetry:        cfg.Telemetry,
			AllowNoCouplings: true,
		})
		if err != nil {
			return nil, err
		}
		f.instances = append(f.instances, &instance{idx: i, wm: wm, cond: cond, alive: true})
	}
	return f, nil
}

// Restore rehydrates the fleet from a full WM checkpoint (the previous
// allocation's Checkpoint output, fleet-produced or single-WM), routing
// each coupling's state to its initial owner. Must precede Start.
func (f *Fleet) Restore(data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return errors.New("wmfleet: restore must precede Start")
	}
	parts, err := core.SplitCheckpoint(data)
	if err != nil {
		return err
	}
	seen := 0
	for _, name := range f.order {
		part, ok := parts[name]
		if !ok {
			continue
		}
		seen++
		f.parts[name] = part
		if err := f.instances[f.owner[name]].wm.RestoreCoupling(part); err != nil {
			return err
		}
	}
	if seen != len(parts) {
		return fmt.Errorf("wmfleet: checkpoint has %d couplings the fleet does not manage", len(parts)-seen)
	}
	return nil
}

// Start acquires every coupling's initial lease, publishes each
// coupling's starting checkpoint to the store (so a crash before the
// first flush still leaves adopters a record), starts every instance,
// and arms the renew/sweep tickers.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return errors.New("wmfleet: already started")
	}
	f.started = true
	for _, name := range f.order {
		holder := f.owner[name]
		term, ok, err := f.leases.Acquire(holder, name)
		if err != nil {
			return fmt.Errorf("wmfleet: acquiring lease for %s: %w", name, err)
		}
		if !ok {
			return fmt.Errorf("wmfleet: lease for %s unexpectedly held at start", name)
		}
		f.terms[name] = term
		if err := f.flushCouplingLocked(f.instances[holder], name); err != nil {
			f.anomaly(fmt.Sprintf("wmfleet: start flush of %s failed: %v (in-memory copy retained)", name, err))
		}
	}
	for _, inst := range f.instances {
		if err := inst.wm.Start(); err != nil {
			return err
		}
	}
	for _, inst := range f.instances {
		inst := inst
		inst.renew = vclock.NewTicker(f.cfg.Clock, f.cfg.RenewEvery, func(time.Time) {
			f.renewTick(inst)
		})
	}
	return nil
}

// Stop halts every live instance's tickers and conductor; running jobs
// continue in the scheduler (allocation teardown mirrors the single-WM
// path).
func (f *Fleet) Stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	live := f.liveLocked()
	f.mu.Unlock()
	for _, inst := range live {
		if inst.renew != nil {
			inst.renew.Stop()
		}
		inst.wm.Stop()
		inst.cond.Close()
	}
}

// Crash models instance idx dying mid-run: its tickers stop, its
// conductor flushes, and each of its couplings gets a final checkpoint
// flushed through the store before being marked orphaned. Its leases are
// NOT released — they expire naturally, which is exactly the signal
// survivors adopt on. The last live instance refuses to crash (a fleet
// of zero cannot finish the campaign).
func (f *Fleet) Crash(idx int) (CrashInfo, error) {
	f.mu.Lock()
	if idx < 0 || idx >= len(f.instances) {
		f.mu.Unlock()
		return CrashInfo{}, fmt.Errorf("wmfleet: no instance %d", idx)
	}
	inst := f.instances[idx]
	if !inst.alive {
		f.mu.Unlock()
		return CrashInfo{}, fmt.Errorf("wmfleet: instance %d already dead", idx)
	}
	if len(f.liveLocked()) <= 1 {
		f.mu.Unlock()
		return CrashInfo{}, errors.New("wmfleet: refusing to crash the last live instance")
	}
	f.mu.Unlock()

	// Stop the victim outside the fleet lock: Stop/Close drive callbacks
	// that may re-enter WM state.
	if inst.renew != nil {
		inst.renew.Stop()
	}
	jobs := inst.wm.LiveJobIDs()
	inst.wm.Stop()
	inst.cond.Close() // queued submissions fail back into the victim's state

	f.mu.Lock()
	defer f.mu.Unlock()
	info := CrashInfo{Jobs: jobs}
	for _, name := range f.order {
		if f.owner[name] != idx {
			continue
		}
		// Final checkpoint flush: a real WM cannot checkpoint after
		// dying, but its last periodic flush would hold the same state;
		// capturing it at crash time models that without a redundant
		// flush schedule (same modeling license as PR 5's restart path).
		if err := f.flushCouplingLocked(inst, name); err != nil {
			f.anomaly(fmt.Sprintf("wmfleet: crash flush of %s failed: %v (in-memory copy retained)", name, err))
		}
		f.owner[name] = -1
		info.Couplings = append(info.Couplings, name)
	}
	inst.alive = false
	f.acc.Crashes++
	f.tel.Counter("wmfleet.wm_crashes_total").Inc()
	now := f.cfg.Clock.Now()
	f.tel.RecordSpan("wmfleet", "crash", now, 0,
		"instance", idx, "couplings", len(info.Couplings))
	return info, nil
}

// flushCouplingLocked checkpoints one coupling from inst and publishes
// it to the checkpoint namespace, keeping the in-memory copy as the
// fallback adoption source. Caller holds f.mu.
func (f *Fleet) flushCouplingLocked(inst *instance, name string) error {
	ck, err := inst.wm.CheckpointCoupling(name)
	if err != nil {
		return err
	}
	f.parts[name] = ck
	return f.cfg.Store.Put(f.ckptNS, name, ck)
}

// renewTick is one instance's periodic lease maintenance: renew every
// owned coupling, then sweep for orphans to adopt.
func (f *Fleet) renewTick(inst *instance) {
	f.mu.Lock()
	if f.stopped || !inst.alive {
		f.mu.Unlock()
		return
	}
	for _, name := range f.order {
		if f.owner[name] != inst.idx {
			continue
		}
		ok, err := f.leases.Renew(inst.idx, f.terms[name], name)
		if err != nil {
			// A store failure past the armor: keep ownership (liveness
			// is in-process knowledge, see sweep below) and retry next
			// tick.
			f.anomaly(fmt.Sprintf("wmfleet: instance %d renew of %s failed: %v", inst.idx, name, err))
			continue
		}
		if !ok {
			// The lease lapsed (e.g. a long store-fault burst ate the
			// renewal margin). Ownership is decided by liveness, not the
			// record, so re-acquire rather than abandon the coupling.
			term, ok2, err := f.leases.Acquire(inst.idx, name)
			if err != nil || !ok2 {
				f.anomaly(fmt.Sprintf("wmfleet: instance %d could not re-acquire lease for %s: %v", inst.idx, name, err))
				continue
			}
			f.terms[name] = term
		}
	}
	f.sweepLocked(inst)
	f.mu.Unlock()
}

// sweepLocked adopts couplings whose owner is dead and whose store lease
// has expired. Requiring both is the split-brain guard: the fleet shares
// a process, so instance liveness is reliable in-process knowledge
// (modeling the fleet-gossip a real deployment would run), and the lease
// expiry gates WHEN adoption is safe — a slow-but-alive owner whose
// renewals are failing keeps its couplings. The lease term bump inside
// Acquire is the true double-adoption gate. Caller holds f.mu.
func (f *Fleet) sweepLocked(inst *instance) {
	for _, name := range f.order {
		o := f.owner[name]
		if o >= 0 && f.instances[o].alive {
			continue
		}
		expired, err := f.leases.Expired(name)
		if err != nil {
			f.anomaly(fmt.Sprintf("wmfleet: lease check for %s failed: %v", name, err))
			continue
		}
		if !expired {
			continue // the dead owner's lease has not run out yet
		}
		f.adoptLocked(inst, name)
	}
}

// adoptLocked has inst take over one orphaned coupling: win the lease,
// replay the checkpointed state, and verify conservation (everything
// ready, running, or in setup before the crash must be ready or in setup
// after adoption). Caller holds f.mu.
func (f *Fleet) adoptLocked(inst *instance, name string) {
	term, ok, err := f.leases.Acquire(inst.idx, name)
	if err != nil {
		f.anomaly(fmt.Sprintf("wmfleet: instance %d adopt-acquire of %s failed: %v", inst.idx, name, err))
		return
	}
	if !ok {
		return // another instance won the lease first
	}
	start := f.cfg.Clock.Now()
	part, err := f.cfg.Store.Get(f.ckptNS, name)
	if err != nil {
		// The store record is unreadable (fault burst or lost flush);
		// fall back to the in-memory mirror.
		part = f.parts[name]
	}
	st, err := inst.wm.AdoptCoupling(f.specs[name], part)
	if err != nil {
		f.anomaly(fmt.Sprintf("wmfleet: instance %d adoption of %s failed: %v", inst.idx, name, err))
		return
	}
	if want, counted := countCkptSelections(part); counted {
		got := st.Ready + st.InSetup
		if got != want {
			f.anomaly(fmt.Sprintf("wm-adopt lost selections in %s: %d before, %d after", name, want, got))
		}
	}
	f.owner[name] = inst.idx
	f.terms[name] = term
	f.acc.Adoptions++
	f.tel.Counter("wmfleet.wm_adoptions_total").Inc()
	f.tel.RecordSpan("wmfleet", "adopt", start, f.cfg.Clock.Now().Sub(start),
		"coupling", name, "instance", inst.idx, "term", term)
	f.event(fmt.Sprintf("wm-adopt coupling=%s instance=%d term=%d", name, inst.idx+1, term))
}

// ckptSelections mirrors the selection-bearing fields of core's
// per-coupling checkpoint JSON (the format docs/RESILIENCE.md specifies)
// just closely enough to count them.
type ckptSelections struct {
	Ready       []json.RawMessage `json:"ready"`
	RunningSims []json.RawMessage `json:"running_sims"`
	InSetup     []json.RawMessage `json:"in_setup"`
}

// countCkptSelections counts the selections a coupling checkpoint holds
// (ready + running + in setup); counted=false means the document was
// absent or unparseable, so no conservation claim can be made.
func countCkptSelections(part []byte) (n int, counted bool) {
	if part == nil {
		return 0, false
	}
	var c ckptSelections
	if err := json.Unmarshal(part, &c); err != nil {
		return 0, false
	}
	return len(c.Ready) + len(c.RunningSims) + len(c.InSetup), true
}

// AddCandidate routes a coarse-scale candidate to the coupling's owning
// instance. During the orphan window between a crash and adoption the
// candidate goes straight to the coupling's selector — selectors are
// shared campaign state, so nothing is lost while ownership is in
// flight.
func (f *Fleet) AddCandidate(coupling string, p dynim.Point) error {
	f.mu.Lock()
	spec, known := f.specs[coupling]
	o := -1
	if known {
		o = f.owner[coupling]
	}
	var inst *instance
	if o >= 0 && f.instances[o].alive {
		inst = f.instances[o]
	}
	f.mu.Unlock()
	if !known {
		return fmt.Errorf("wmfleet: unknown coupling %q", coupling)
	}
	if inst != nil {
		return inst.wm.AddCandidate(coupling, p)
	}
	if err := spec.Selector.Add(p); err != nil {
		return err
	}
	f.tel.Counter(telemetry.Name("wm.candidates_total", "coupling", coupling)).Inc()
	return nil
}

// Checkpoint assembles the fleet's state into one full WM checkpoint in
// canonical coupling order — byte-compatible with the single-WM format,
// so a fleet campaign's next allocation can restore at any fleet size.
func (f *Fleet) Checkpoint() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	parts := make([][]byte, 0, len(f.order))
	for _, name := range f.order {
		o := f.owner[name]
		if o >= 0 && f.instances[o].alive {
			ck, err := f.instances[o].wm.CheckpointCoupling(name)
			if err != nil {
				return nil, err
			}
			parts = append(parts, ck)
			continue
		}
		part, ok := f.parts[name]
		if !ok {
			return nil, fmt.Errorf("wmfleet: no checkpoint for orphaned coupling %q", name)
		}
		parts = append(parts, part)
	}
	return core.MergeCouplingCheckpoints(parts)
}

// Stats reports per-coupling progress in canonical order. Owned
// couplings report live WM state; orphaned ones report their last
// checkpointed counts (running simulations counted as ready, matching
// what adoption will restore).
func (f *Fleet) Stats() []core.CouplingStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]core.CouplingStats, 0, len(f.order))
	for _, name := range f.order {
		o := f.owner[name]
		if o >= 0 && f.instances[o].alive {
			for _, cs := range f.instances[o].wm.Stats() {
				if cs.Name == name {
					out = append(out, cs)
					break
				}
			}
			continue
		}
		cs := core.CouplingStats{Name: name}
		if spec, ok := f.specs[name]; ok && spec.Selector != nil {
			cs.Candidates = spec.Selector.Len()
		}
		var c struct {
			ckptSelections
			Launched  int `json:"launched"`
			Completed int `json:"completed"`
		}
		if part := f.parts[name]; part != nil && json.Unmarshal(part, &c) == nil {
			cs.Ready = len(c.Ready) + len(c.RunningSims)
			cs.InSetup = len(c.InSetup)
			cs.Launched = c.Launched
			cs.CompletedSims = c.Completed
		}
		out = append(out, cs)
	}
	return out
}

// Accounting returns the fleet's robustness tallies.
func (f *Fleet) Accounting() Accounting {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acc
}

// Instances returns the configured fleet size.
func (f *Fleet) Instances() int { return len(f.instances) }

// Alive reports whether instance idx is still live.
func (f *Fleet) Alive(idx int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return idx >= 0 && idx < len(f.instances) && f.instances[idx].alive
}

// LiveInstances returns the live instance indices, ascending — the
// deterministic victim pool for random-target crash injection.
func (f *Fleet) LiveInstances() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.instances))
	for _, inst := range f.instances {
		if inst.alive {
			out = append(out, inst.idx)
		}
	}
	return out
}

// Owner returns the live owner index of a coupling (-1 while orphaned)
// and whether the coupling is managed by this fleet.
func (f *Fleet) Owner(coupling string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	o, ok := f.owner[coupling]
	if !ok {
		return -1, false
	}
	if o >= 0 && !f.instances[o].alive {
		o = -1
	}
	return o, true
}

// liveLocked returns the live instances in index order. Caller holds
// f.mu.
func (f *Fleet) liveLocked() []*instance {
	var out []*instance
	for _, inst := range f.instances {
		if inst.alive {
			out = append(out, inst)
		}
	}
	return out
}

// event forwards a lifecycle note to the campaign's fault log.
func (f *Fleet) event(msg string) {
	if f.cfg.OnEvent != nil {
		f.cfg.OnEvent(msg)
	}
}

// anomaly forwards a conservation or store failure to the campaign's
// anomaly log.
func (f *Fleet) anomaly(msg string) {
	if f.cfg.OnAnomaly != nil {
		f.cfg.OnAnomaly(msg)
	}
}

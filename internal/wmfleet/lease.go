// Package wmfleet runs N workflow-manager instances over one campaign,
// each owning a disjoint set of couplings, with ownership coordinated
// through the datastore instead of a central orchestrator — the
// stigmergy shape of ROADMAP item 5. Every coupling is guarded by a
// virtual-clock lease written through the (armored) store: instances
// acquire leases at start, renew them on a ticker, and when an instance
// crashes its leases stop being renewed, expire, and a surviving
// instance adopts the orphaned couplings by replaying their checkpointed
// Task-2/Task-4 state from store records. The campaign continues without
// a conductor restart; the paper's single-WM coordination point stops
// being a single point of failure.
//
// Determinism: every fleet decision (lease grants, renewals, adoption
// order, crash handling) is a pure function of (seed, config, virtual
// time). Store operations advance no virtual time and vclock callbacks
// are serialized, so a Get-then-Put inside one callback is atomic —
// which is what makes the lease table's compare-and-swap semantics sound
// without a real consensus protocol. Two same-seed runs with the same
// fleet size replay byte-identically, crash/adoption schedule included.
package wmfleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

// Lease is the JSON record a coupling's ownership is coordinated
// through, stored at (namespace, coupling-name). Holder is the owning
// instance index; Term increments on every acquisition, so a stale
// holder can never renew a lease that changed hands; ExpiresNs is the
// virtual-clock expiry in nanoseconds since the Unix epoch.
type Lease struct {
	// Holder is the 0-based index of the instance holding the lease.
	Holder int `json:"holder"`
	// Term counts acquisitions; renewals keep the term, takeovers bump it.
	Term int64 `json:"term"`
	// ExpiresNs is the virtual-time expiry (UnixNano). At or past this
	// instant the lease is expired: expiry strictly wins a renew racing
	// it at the same virtual timestamp.
	ExpiresNs int64 `json:"expires_ns"`
}

// LeaseTable implements acquire/renew/load over one store namespace.
// All methods must be called from virtual-clock callbacks (the fleet's
// tickers and fault handlers), which serializes them; the table performs
// no locking of its own beyond what the store provides.
type LeaseTable struct {
	clk   vclock.Clock
	store datastore.Store
	tel   *telemetry.Telemetry
	ns    string
	ttl   time.Duration
	// onExpire observes each takeover of an expired lease (fleet
	// accounting); nil is allowed.
	onExpire func()
}

// NewLeaseTable builds a lease table over one store namespace with the
// given time-to-live. tel may be nil (metrics discarded).
func NewLeaseTable(clk vclock.Clock, store datastore.Store, tel *telemetry.Telemetry,
	ns string, ttl time.Duration) *LeaseTable {
	if tel == nil {
		tel = telemetry.Nop()
	}
	return &LeaseTable{clk: clk, store: store, tel: tel, ns: ns, ttl: ttl}
}

// TTL returns the table's lease time-to-live.
func (l *LeaseTable) TTL() time.Duration { return l.ttl }

// Acquire attempts to take the lease on coupling for holder. It succeeds
// when the lease is unheld, expired, or already held by this holder, and
// returns the new term; a live lease held by another instance returns
// ok=false. Taking over another holder's expired lease counts toward
// wmfleet.lease_expirations_total. Errors are store errors surviving the
// armor (the caller retries on its next tick).
func (l *LeaseTable) Acquire(holder int, coupling string) (term int64, ok bool, err error) {
	now := l.clk.Now().UnixNano()
	var rec Lease
	data, err := l.store.Get(l.ns, coupling)
	switch {
	case errors.Is(err, datastore.ErrNotFound):
		// Unheld: first acquisition starts at term 1.
	case err != nil:
		return 0, false, err
	default:
		if err := json.Unmarshal(data, &rec); err != nil {
			return 0, false, fmt.Errorf("wmfleet: corrupt lease %s/%s: %w", l.ns, coupling, err)
		}
		if rec.Holder != holder && now < rec.ExpiresNs {
			return 0, false, nil // live lease held elsewhere
		}
		if rec.Holder != holder {
			// Taking over a dead holder's expired lease.
			l.tel.Counter("wmfleet.lease_expirations_total").Inc()
			if l.onExpire != nil {
				l.onExpire()
			}
		}
	}
	rec = Lease{Holder: holder, Term: rec.Term + 1, ExpiresNs: now + l.ttl.Nanoseconds()}
	b, err := json.Marshal(rec)
	if err != nil {
		return 0, false, err
	}
	if err := l.store.Put(l.ns, coupling, b); err != nil {
		return 0, false, err
	}
	l.tel.Counter("wmfleet.lease_acquired_total").Inc()
	return rec.Term, true, nil
}

// Renew extends holder's lease on coupling for another TTL without
// changing the term. It fails (ok=false, no error) when the lease is
// missing, held by someone else, on a different term, or already expired
// — expiry at the exact renewal timestamp counts as expired, so a renew
// racing expiry at the same virtual instant always loses. Each
// successful renewal observes the lease's age since grant in the
// wmfleet.lease_renew_age_ms histogram (renew latency relative to the
// lease lifetime: age close to the TTL means the margin is thin).
func (l *LeaseTable) Renew(holder int, term int64, coupling string) (ok bool, err error) {
	data, err := l.store.Get(l.ns, coupling)
	if errors.Is(err, datastore.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var rec Lease
	if err := json.Unmarshal(data, &rec); err != nil {
		return false, fmt.Errorf("wmfleet: corrupt lease %s/%s: %w", l.ns, coupling, err)
	}
	now := l.clk.Now().UnixNano()
	if rec.Holder != holder || rec.Term != term || now >= rec.ExpiresNs {
		return false, nil
	}
	granted := rec.ExpiresNs - l.ttl.Nanoseconds()
	l.tel.Histogram("wmfleet.lease_renew_age_ms", "ms", nil).
		Observe(float64(now-granted) / 1e6)
	rec.ExpiresNs = now + l.ttl.Nanoseconds()
	b, err := json.Marshal(rec)
	if err != nil {
		return false, err
	}
	if err := l.store.Put(l.ns, coupling, b); err != nil {
		return false, err
	}
	l.tel.Counter("wmfleet.lease_renewals_total").Inc()
	return true, nil
}

// Load reads the current lease on coupling; found=false means no record
// exists (never acquired in this namespace).
func (l *LeaseTable) Load(coupling string) (rec Lease, found bool, err error) {
	data, err := l.store.Get(l.ns, coupling)
	if errors.Is(err, datastore.ErrNotFound) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return Lease{}, false, fmt.Errorf("wmfleet: corrupt lease %s/%s: %w", l.ns, coupling, err)
	}
	return rec, true, nil
}

// Expired reports whether coupling's lease is adoptable at the current
// virtual time: no record, or a record at or past its expiry.
func (l *LeaseTable) Expired(coupling string) (bool, error) {
	rec, found, err := l.Load(coupling)
	if err != nil {
		return false, err
	}
	if !found {
		return true, nil
	}
	return l.clk.Now().UnixNano() >= rec.ExpiresNs, nil
}

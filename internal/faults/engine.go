package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

// Handler reacts to one injected timed fault. The engine passes the rule
// that fired and a deterministic per-rule random source the handler may use
// to pick a victim (a node index, a job from a sorted list); drawing from
// it is part of the replayable schedule. Handlers run inside a virtual
// clock callback, so they must not block.
type Handler func(r Rule, rng *rand.Rand)

// Injection is one recorded fault occurrence.
type Injection struct {
	// At is the virtual time of the injection.
	At time.Time
	// Class is the fault class that fired.
	Class Class
	// Detail describes the victim or effect, filled by the handler via
	// Engine.Note (e.g. "node 3", "job sim-12").
	Detail string
}

// ruleState is the mutable scheduling state of one plan rule.
type ruleState struct {
	rule    Rule
	rng     *rand.Rand      // private stream: seed ^ f(rule index)
	pending vclock.EventID  // armed timer for timed classes
	armed   bool
}

// Engine executes a Plan against a clock. One engine serves a whole
// campaign: timed faults are scheduled as events on the clock, store faults
// are consulted synchronously by wrapped stores (WrapStore), and every
// injection is recorded for the campaign's anomaly report.
//
// All methods are safe for concurrent use; under the single-threaded
// discrete-event clock the mutex is uncontended and exists to keep the
// engine correct under go test -race and real-clock deployments.
type Engine struct {
	clk vclock.Clock
	tel *telemetry.Telemetry

	mu        sync.Mutex
	rules     []*ruleState
	handlers  map[Class]Handler
	log       []Injection
	start     time.Time
	started   bool
	stopped   bool
	lastDelay time.Duration // most recent latency spike, for WrapStore accounting
}

// NewEngine builds an engine for plan. The plan must already validate; an
// invalid plan is a programming error and panics. The engine is inert until
// Start.
func NewEngine(clk vclock.Clock, tel *telemetry.Telemetry, plan *Plan) *Engine {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if tel == nil {
		tel = telemetry.Nop()
	}
	e := &Engine{clk: clk, tel: tel, handlers: make(map[Class]Handler)}
	for i, r := range plan.Rules {
		// Each rule gets a private splitmix-style stream so adding a rule
		// never perturbs the draws of the others.
		seed := plan.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15)
		e.rules = append(e.rules, &ruleState{
			rule: r.withDefaults(),
			rng:  rand.New(rand.NewSource(seed)),
		})
	}
	return e
}

// SetHandler installs the callback for a timed fault class, replacing any
// previous one. A nil handler makes the class fire into the void (still
// recorded and counted). The campaign rebinds handlers at the start of each
// allocation, since the victims (scheduler, workflow manager) are rebuilt.
func (e *Engine) SetHandler(c Class, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[c] = h
}

// Start fixes the window origin at the current virtual time and arms the
// timed-fault schedules. Starting twice is a no-op.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.stopped = false
	e.start = e.clk.Now()
	for _, rs := range e.rules {
		if rs.rule.Class.timed() && rs.rule.Rate > 0 {
			e.armLocked(rs)
		}
	}
}

// Stop cancels all pending timed faults and disables store-fault draws.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopped = true
	for _, rs := range e.rules {
		if rs.armed {
			e.clk.Cancel(rs.pending)
			rs.armed = false
		}
	}
}

// armLocked schedules the next arrival of a timed rule: exponential
// interarrival with mean 24h/rate, the Poisson process of the plan.
func (e *Engine) armLocked(rs *ruleState) {
	mean := float64(24*time.Hour) / rs.rule.Rate
	d := time.Duration(rs.rng.ExpFloat64() * mean)
	if d < time.Second {
		d = time.Second // keep pathological rates from starving the clock
	}
	rs.pending = e.clk.After(d, func() { e.fire(rs) })
	rs.armed = true
}

// fire delivers one timed fault occurrence and re-arms the rule.
func (e *Engine) fire(rs *ruleState) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	rs.armed = false
	now := e.clk.Now()
	inWindow := e.inWindowLocked(rs.rule, now)
	var h Handler
	if inWindow {
		h = e.handlers[rs.rule.Class]
		e.log = append(e.log, Injection{At: now, Class: rs.rule.Class})
		e.tel.Counter(telemetry.Name("faults.injected_total", "class", string(rs.rule.Class))).Inc()
		e.tel.RecordSpan("faults", string(rs.rule.Class), now, 0)
	}
	e.armLocked(rs)
	rng := rs.rng
	rule := rs.rule
	e.mu.Unlock()
	if h != nil {
		h(rule, rng)
	}
}

// inWindowLocked reports whether t falls inside the rule's window.
func (e *Engine) inWindowLocked(r Rule, t time.Time) bool {
	off := t.Sub(e.start)
	if off < r.Start {
		return false
	}
	return r.End == 0 || off < r.End
}

// Note annotates the most recent injection with a victim description
// ("node 3", "job sim-12"); handlers call it so the anomaly log names what
// the fault actually hit.
func (e *Engine) Note(detail string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.log); n > 0 {
		e.log[n-1].Detail = detail
	}
}

// Injections returns a copy of everything injected so far, in order.
func (e *Engine) Injections() []Injection {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Injection, len(e.log))
	copy(out, e.log)
	return out
}

// DrawStore is consulted by wrapped stores once per operation. It walks the
// store-class rules in plan order, drawing each in-window rule's generator
// exactly once, and returns the injected error (nil if no fault hit) plus
// any latency spike charged to this operation. Draw order and count are
// functions of (plan, virtual time, operation sequence), keeping replays
// identical.
func (e *Engine) DrawStore(op string) (spike time.Duration, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started || e.stopped {
		return 0, nil
	}
	now := e.clk.Now()
	for _, rs := range e.rules {
		r := rs.rule
		if r.Class.timed() || r.Rate <= 0 || !e.inWindowLocked(r, now) {
			continue
		}
		if rs.rng.Float64() >= r.Rate {
			continue
		}
		e.tel.Counter(telemetry.Name("faults.injected_total", "class", string(r.Class))).Inc()
		switch r.Class {
		case StoreLatency:
			spike += r.Latency
			e.tel.Histogram("faults.store_latency_ms", "ms", nil).
				Observe(float64(r.Latency) / float64(time.Millisecond))
		case StoreTransient:
			if err == nil {
				err = fmt.Errorf("faults: injected transient fault in %s: %w", op, datastore.ErrTransient)
			}
		case StorePermanent:
			if err == nil {
				err = fmt.Errorf("faults: injected fault in %s: %w", op, ErrInjectedPermanent)
			}
		}
	}
	return spike, err
}

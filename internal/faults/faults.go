// Package faults is the deterministic fault-injection engine behind the
// repo's chaos campaigns. A campaign configures it from a declarative Plan
// — six fault classes, each with a rate and an optional time window — and
// the engine turns the plan into a per-seed schedule of injected faults on
// the virtual clock. Determinism is the point: every random draw comes from
// per-rule seeded generators and every schedule decision is a function of
// (plan, seed, virtual time), so two same-seed chaos runs with the same
// plan replay byte-identically — which is what makes the resilience paths
// (datastore.Armor retries, sched.Crash/Revive, the core watchdog, the
// campaign's WM crash-restart loop) testable as exactly reproducible
// scenarios rather than flaky ones (§4.4/§5 of the paper; Mini-MuMMI calls
// fault recovery the hardest part of porting this coordination layer).
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Class names one injectable fault type.
type Class string

// The six fault classes. The store classes are consulted per store
// operation (Rate is a probability in [0,1]); the timed classes fire as a
// seeded Poisson process (Rate is an expected count per day of virtual
// time).
const (
	// StoreTransient makes a store operation fail with an error wrapping
	// datastore.ErrTransient — the armor retries it.
	StoreTransient Class = "store-transient-error"
	// StoreLatency charges a modeled latency spike to a store operation
	// (accounted in telemetry; the operation still succeeds).
	StoreLatency Class = "store-latency-spike"
	// StorePermanent makes a store operation fail with a permanent error —
	// the armor must give up immediately, not burn its budget.
	StorePermanent Class = "store-permanent-error"
	// NodeCrash kills the jobs running on one node and drains it
	// (sched.Crash), reviving it after Rule.Recovery.
	NodeCrash Class = "node-crash"
	// JobHang makes one running job never report completion
	// (sched.Hang); the core watchdog detects and resubmits it.
	JobHang Class = "job-hang"
	// WMCrash kills the workflow manager mid-run; the campaign serializes
	// it via Checkpoint, rebuilds it from scratch, and continues.
	WMCrash Class = "wm-crash"
)

// Classes lists every fault class, in canonical order.
func Classes() []Class {
	return []Class{StoreTransient, StoreLatency, StorePermanent, NodeCrash, JobHang, WMCrash}
}

// ErrInjectedPermanent is the permanent (non-retryable) error injected by
// StorePermanent faults. It deliberately does not wrap
// datastore.ErrTransient, so armored stores surface it without retrying.
var ErrInjectedPermanent = errors.New("faults: injected permanent error")

// Rule enables one fault class.
type Rule struct {
	// Class selects the fault type.
	Class Class `json:"class"`
	// Rate is a per-operation probability for store classes and an
	// expected events-per-day for timed classes.
	Rate float64 `json:"rate"`
	// Start/End bound the injection window as offsets from the engine's
	// start; End 0 leaves the window open-ended.
	Start time.Duration `json:"start,omitempty"`
	End   time.Duration `json:"end,omitempty"`
	// Latency is the modeled delay of a StoreLatency hit (default 2s).
	Latency time.Duration `json:"latency,omitempty"`
	// Recovery is how long a NodeCrash keeps the node drained before the
	// engine revives it (default 1h).
	Recovery time.Duration `json:"recovery,omitempty"`
	// Instance targets one WM instance of a distributed fleet (1-based).
	// Zero picks a random live instance per injection; nonzero is only
	// valid for WMCrash. Single-WM campaigns ignore it.
	Instance int `json:"instance,omitempty"`
}

// timed reports whether the class fires on a schedule (vs. per store op).
func (c Class) timed() bool {
	return c == NodeCrash || c == JobHang || c == WMCrash
}

func (c Class) known() bool {
	for _, k := range Classes() {
		if c == k {
			return true
		}
	}
	return false
}

// Plan is a declarative fault-injection configuration.
type Plan struct {
	// Seed drives every random draw the engine makes; the campaign offsets
	// it per allocation so runs differ while same-seed replays match.
	Seed int64 `json:"seed"`
	// Rules lists the enabled fault classes.
	Rules []Rule `json:"rules"`
}

// Validate checks rates and classes.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if !r.Class.known() {
			return fmt.Errorf("faults: rule %d: unknown class %q", i, r.Class)
		}
		if r.Rate < 0 {
			return fmt.Errorf("faults: rule %d (%s): negative rate %g", i, r.Class, r.Rate)
		}
		if !r.Class.timed() && r.Rate > 1 {
			return fmt.Errorf("faults: rule %d (%s): store-class rate %g is a probability, must be <= 1",
				i, r.Class, r.Rate)
		}
		if r.End != 0 && r.End < r.Start {
			return fmt.Errorf("faults: rule %d (%s): window end %v before start %v",
				i, r.Class, r.End, r.Start)
		}
		if r.Instance < 0 {
			return fmt.Errorf("faults: rule %d (%s): negative instance %d", i, r.Class, r.Instance)
		}
		if r.Instance > 0 && r.Class != WMCrash {
			return fmt.Errorf("faults: rule %d (%s): instance targeting is only valid for %s",
				i, r.Class, WMCrash)
		}
	}
	return nil
}

// withDefaults fills per-rule defaults.
func (r Rule) withDefaults() Rule {
	if r.Class == StoreLatency && r.Latency <= 0 {
		r.Latency = 2 * time.Second
	}
	if r.Class == NodeCrash && r.Recovery <= 0 {
		r.Recovery = time.Hour
	}
	return r
}

// ParsePlan decodes a JSON plan document.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: bad plan JSON: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseFlag interprets the -faults flag value: a path to a JSON plan file,
// or an inline spec of the form
//
//	seed=7;store-transient-error:0.2;node-crash:4/day@2h..8h;wm-crash:1/day#2
//
// Entries are semicolon-separated. "seed=N" sets the seed; every other
// entry is class:rate, where rate is a probability (store classes) or an
// events-per-day count with an optional "/day" suffix (timed classes), with
// an optional "@start..end" window of Go durations. A "#N" suffix on the
// rate pins a wm-crash rule to fleet instance N (1-based).
func ParseFlag(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("faults: empty plan")
	}
	if data, err := os.ReadFile(s); err == nil {
		return ParsePlan(data)
	}
	if strings.HasPrefix(s, "{") {
		return ParsePlan([]byte(s))
	}
	return parseInline(s)
}

func parseInline(s string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(entry, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", rest)
			}
			p.Seed = seed
			continue
		}
		name, spec, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q is not class:rate", entry)
		}
		r := Rule{Class: Class(strings.TrimSpace(name))}
		if spec, window, hasWindow := cutWindow(spec); hasWindow {
			var err error
			if r.Start, r.End, err = parseWindow(window); err != nil {
				return nil, fmt.Errorf("faults: entry %q: %w", entry, err)
			}
			if r.Rate, r.Instance, err = parseRateInstance(spec); err != nil {
				return nil, fmt.Errorf("faults: entry %q: %w", entry, err)
			}
		} else {
			var err error
			if r.Rate, r.Instance, err = parseRateInstance(spec); err != nil {
				return nil, fmt.Errorf("faults: entry %q: %w", entry, err)
			}
		}
		p.Rules = append(p.Rules, r)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func cutWindow(spec string) (rate, window string, ok bool) {
	rate, window, ok = strings.Cut(spec, "@")
	return strings.TrimSpace(rate), strings.TrimSpace(window), ok
}

// parseRateInstance splits an optional "#N" instance suffix off a rate
// spec ("1/day#2" → rate 1, instance 2) and parses both halves.
func parseRateInstance(s string) (float64, int, error) {
	s = strings.TrimSpace(s)
	instance := 0
	if rate, inst, ok := strings.Cut(s, "#"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(inst))
		if err != nil || n <= 0 {
			return 0, 0, fmt.Errorf("bad instance %q (want a positive integer)", inst)
		}
		s, instance = rate, n
	}
	v, err := parseRate(s)
	return v, instance, err
}

func parseRate(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "/day")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v, nil
}

func parseWindow(s string) (start, end time.Duration, err error) {
	from, to, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("bad window %q (want start..end)", s)
	}
	if from = strings.TrimSpace(from); from != "" {
		if start, err = time.ParseDuration(from); err != nil {
			return 0, 0, fmt.Errorf("bad window start %q", from)
		}
	}
	if to = strings.TrimSpace(to); to != "" {
		if end, err = time.ParseDuration(to); err != nil {
			return 0, 0, fmt.Errorf("bad window end %q", to)
		}
	}
	return start, end, nil
}

// AggressivePlan returns a plan with every fault class enabled at the rates
// the CI chaos smoke uses: high enough that a short scaled campaign sees
// all six classes, low enough that it still completes.
func AggressivePlan(seed int64) *Plan {
	return &Plan{
		Seed: seed,
		Rules: []Rule{
			{Class: StoreTransient, Rate: 0.10},
			{Class: StoreLatency, Rate: 0.05, Latency: 2 * time.Second},
			{Class: StorePermanent, Rate: 0.01},
			{Class: NodeCrash, Rate: 8, Recovery: 30 * time.Minute},
			{Class: JobHang, Rate: 12},
			{Class: WMCrash, Rate: 2},
		},
	}
}

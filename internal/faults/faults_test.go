package faults

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/retry"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestParseFlagInline(t *testing.T) {
	p, err := ParseFlag("seed=7; store-transient-error:0.2; node-crash:4/day@2h..8h; wm-crash:1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 3 {
		t.Fatalf("seed=%d rules=%d, want 7/3", p.Seed, len(p.Rules))
	}
	if p.Rules[0].Class != StoreTransient || p.Rules[0].Rate != 0.2 {
		t.Errorf("rule 0 = %+v", p.Rules[0])
	}
	nc := p.Rules[1]
	if nc.Class != NodeCrash || nc.Rate != 4 || nc.Start != 2*time.Hour || nc.End != 8*time.Hour {
		t.Errorf("rule 1 = %+v", nc)
	}
}

func TestParseFlagJSON(t *testing.T) {
	p, err := ParseFlag(`{"seed": 3, "rules": [{"class": "job-hang", "rate": 6}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || len(p.Rules) != 1 || p.Rules[0].Class != JobHang {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParseFlagRejectsBadInput(t *testing.T) {
	for _, s := range []string{
		"",
		"bogus-class:0.5",
		"store-transient-error:1.5", // probability > 1
		"node-crash:-2",
		"node-crash:4/day@8h..2h", // window ends before it starts
		"seed=x",
		"store-transient-error", // missing rate
	} {
		if _, err := ParseFlag(s); err == nil {
			t.Errorf("ParseFlag(%q) accepted bad input", s)
		}
	}
}

func TestAggressivePlanCoversAllClasses(t *testing.T) {
	p := AggressivePlan(1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[Class]bool{}
	for _, r := range p.Rules {
		seen[r.Class] = true
	}
	for _, c := range Classes() {
		if !seen[c] {
			t.Errorf("aggressive plan missing class %s", c)
		}
	}
}

// timedSchedule runs a one-rule engine for d and returns the injection times.
func timedSchedule(t *testing.T, seed int64, rate float64, d time.Duration) []time.Time {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: seed, Rules: []Rule{{Class: NodeCrash, Rate: rate}}})
	e.Start()
	clk.RunFor(d)
	e.Stop()
	var at []time.Time
	for _, inj := range e.Injections() {
		at = append(at, inj.At)
	}
	return at
}

func TestTimedScheduleDeterministicPerSeed(t *testing.T) {
	a := timedSchedule(t, 42, 24, 48*time.Hour)
	b := timedSchedule(t, 42, 24, 48*time.Hour)
	if len(a) == 0 {
		t.Fatal("rate 24/day over 48h produced no injections")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("injection %d at %v vs %v", i, a[i], b[i])
		}
	}
	c := timedSchedule(t, 43, 24, 48*time.Hour)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if !a[i].Equal(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

func TestTimedWindowGating(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 5, Rules: []Rule{
		{Class: JobHang, Rate: 48, Start: 6 * time.Hour, End: 12 * time.Hour},
	}})
	e.Start()
	clk.RunFor(24 * time.Hour)
	e.Stop()
	inj := e.Injections()
	if len(inj) == 0 {
		t.Fatal("rate 48/day in a 6h window produced no injections")
	}
	for _, i := range inj {
		off := i.At.Sub(epoch)
		if off < 6*time.Hour || off >= 12*time.Hour {
			t.Errorf("injection at offset %v escaped window [6h,12h)", off)
		}
	}
}

func TestHandlerReceivesRuleAndNote(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 9, Rules: []Rule{
		{Class: WMCrash, Rate: 24},
	}})
	fired := 0
	e.SetHandler(WMCrash, func(r Rule, rng *rand.Rand) {
		fired++
		if r.Class != WMCrash {
			t.Errorf("handler got rule %+v", r)
		}
		if rng == nil {
			t.Error("handler got nil rng")
		}
		e.Note("wm restart")
	})
	e.Start()
	clk.RunFor(24 * time.Hour)
	e.Stop()
	if fired == 0 {
		t.Fatal("handler never fired")
	}
	inj := e.Injections()
	if len(inj) != fired {
		t.Fatalf("%d injections recorded, handler fired %d times", len(inj), fired)
	}
	for _, i := range inj {
		if i.Detail != "wm restart" {
			t.Errorf("injection %v missing Note detail", i)
		}
	}
}

func TestStopCancelsPendingFaults(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 2, Rules: []Rule{{Class: NodeCrash, Rate: 24}}})
	e.Start()
	clk.RunFor(6 * time.Hour)
	n := len(e.Injections())
	e.Stop()
	clk.RunFor(48 * time.Hour)
	if got := len(e.Injections()); got != n {
		t.Fatalf("injections after Stop: %d -> %d", n, got)
	}
}

func TestDrawStoreInjectsTransientAndPermanent(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 11, Rules: []Rule{
		{Class: StoreTransient, Rate: 0.5},
		{Class: StorePermanent, Rate: 0.2},
	}})
	e.Start()
	var transient, permanent, clean int
	for i := 0; i < 1000; i++ {
		_, err := e.DrawStore("get")
		switch {
		case err == nil:
			clean++
		case errors.Is(err, datastore.ErrTransient):
			transient++
		case errors.Is(err, ErrInjectedPermanent):
			permanent++
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if transient == 0 || permanent == 0 || clean == 0 {
		t.Fatalf("transient=%d permanent=%d clean=%d — all should occur at these rates",
			transient, permanent, clean)
	}
	if transient < 300 || transient > 700 {
		t.Errorf("transient rate off: %d/1000 at p=0.5", transient)
	}
}

func TestDrawStoreDeterministic(t *testing.T) {
	draw := func() []bool {
		clk := vclock.NewVirtual(epoch)
		e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 4, Rules: []Rule{
			{Class: StoreTransient, Rate: 0.3},
		}})
		e.Start()
		var hits []bool
		for i := 0; i < 200; i++ {
			_, err := e.DrawStore("op")
			hits = append(hits, err != nil)
		}
		return hits
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between same-seed runs", i)
		}
	}
}

func TestDrawStoreInertBeforeStartAndAfterStop(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 1, Rules: []Rule{
		{Class: StoreTransient, Rate: 1.0},
	}})
	if _, err := e.DrawStore("get"); err != nil {
		t.Fatalf("engine injected before Start: %v", err)
	}
	e.Start()
	if _, err := e.DrawStore("get"); err == nil {
		t.Fatal("rate-1.0 rule did not inject after Start")
	}
	e.Stop()
	if _, err := e.DrawStore("get"); err != nil {
		t.Fatalf("engine injected after Stop: %v", err)
	}
}

func TestDrawStoreLatencySpike(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 1, Rules: []Rule{
		{Class: StoreLatency, Rate: 1.0, Latency: 3 * time.Second},
	}})
	e.Start()
	spike, err := e.DrawStore("get")
	if err != nil {
		t.Fatalf("latency rule must not fail the op: %v", err)
	}
	if spike != 3*time.Second {
		t.Fatalf("spike = %v, want 3s", spike)
	}
}

func TestWrapStoreInjectsAndArmorAbsorbs(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	tel := telemetry.Nop()
	e := NewEngine(clk, tel, &Plan{Seed: 8, Rules: []Rule{
		{Class: StoreTransient, Rate: 0.4},
	}})
	e.Start()
	// At p=0.4 the default 4-attempt budget fails an op with p≈2.6%; over
	// 400 ops that would (deterministically) hit, so give the armor a deep
	// budget — the test is about faults reaching and being absorbed by it.
	s := datastore.Armor(WrapStore(datastore.NewMemory(), e), tel, "memory",
		datastore.ArmorOptions{Policy: retry.Policy{MaxAttempts: 20}})
	for i := 0; i < 200; i++ {
		key := string(rune('a'+i%26)) + "x"
		if err := s.Put("ns", key, []byte("v")); err != nil {
			t.Fatalf("armored put %d failed despite retries: %v", i, err)
		}
		if _, err := s.Get("ns", key); err != nil {
			t.Fatalf("armored get %d failed despite retries: %v", i, err)
		}
	}
	reg := tel.Registry()
	if got := reg.Counter("store.retries_total{backend=memory}").Value(); got == 0 {
		t.Error("no retries recorded — faults never reached the armor")
	}
	if got := reg.Counter("faults.injected_total{class=store-transient-error}").Value(); got == 0 {
		t.Error("no injections counted")
	}
}

func TestWrapStorePermanentEscapesArmor(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 8, Rules: []Rule{
		{Class: StorePermanent, Rate: 1.0},
	}})
	e.Start()
	s := datastore.Armor(WrapStore(datastore.NewMemory(), e), telemetry.Nop(), "memory", datastore.ArmorOptions{})
	err := s.Put("ns", "k", []byte("v"))
	if !errors.Is(err, ErrInjectedPermanent) {
		t.Fatalf("want ErrInjectedPermanent through the armor, got %v", err)
	}
	if errors.Is(err, datastore.ErrTransient) {
		t.Fatal("permanent injection must not look transient")
	}
}

func TestWrapStorePreservesCapabilities(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	e := NewEngine(clk, telemetry.Nop(), &Plan{Seed: 1})
	plain := WrapStore(datastore.NewMemory(), e)
	if _, ok := plain.(datastore.BatchGetter); ok {
		t.Fatal("plain store should not gain BatchGetter")
	}
	if _, ok := plain.(datastore.BatchMover); ok {
		t.Fatal("plain store should not gain BatchMover")
	}
	if got := WrapStore(datastore.NewMemory(), nil); got == nil {
		t.Fatal("nil engine must pass the store through")
	}
}

package faults

import (
	"mummi/internal/datastore"
)

// WrapStore interposes the engine's store-fault rules in front of every
// operation of s: before each call the engine draws the store-class rules,
// possibly charging a latency spike (accounted, not slept — virtual-clock
// callbacks cannot block) and possibly failing the operation with a
// transient (retryable, wraps datastore.ErrTransient) or permanent
// (ErrInjectedPermanent) error before it reaches the backend. Compose with
// the armor as
//
//	datastore.Armor(WrapStore(Instrument(s, …), e), …)
//
// so that injected transient faults exercise the retry path while the inner
// instrumentation still sees every surviving physical operation.
//
// Like datastore.Armor and datastore.Instrument, WrapStore preserves the
// wrapped store's BatchGetter/BatchMover capabilities exactly. A nil engine
// returns s unchanged.
func WrapStore(s datastore.Store, e *Engine) datastore.Store {
	if e == nil || s == nil {
		return s
	}
	base := faultyStore{s: s, e: e}
	bg, hasBG := s.(datastore.BatchGetter)
	bm, hasBM := s.(datastore.BatchMover)
	switch {
	case hasBG && hasBM:
		return &faultyBatchBoth{faultyStore: base, bg: bg, bm: bm}
	case hasBG:
		return &faultyBatchGet{faultyStore: base, bg: bg}
	case hasBM:
		return &faultyBatchMove{faultyStore: base, bm: bm}
	default:
		return &faultyStore{s: s, e: e}
	}
}

type faultyStore struct {
	s datastore.Store
	e *Engine
}

// inject draws the engine once for this operation and returns the injected
// error, if any. Latency spikes are accounted inside the engine.
func (f *faultyStore) inject(op string) error {
	_, err := f.e.DrawStore(op)
	return err
}

// Put implements datastore.Store.
func (f *faultyStore) Put(ns, key string, data []byte) error {
	if err := f.inject("put"); err != nil {
		return err
	}
	return f.s.Put(ns, key, data)
}

// Get implements datastore.Store.
func (f *faultyStore) Get(ns, key string) ([]byte, error) {
	if err := f.inject("get"); err != nil {
		return nil, err
	}
	return f.s.Get(ns, key)
}

// Delete implements datastore.Store.
func (f *faultyStore) Delete(ns, key string) error {
	if err := f.inject("delete"); err != nil {
		return err
	}
	return f.s.Delete(ns, key)
}

// Keys implements datastore.Store.
func (f *faultyStore) Keys(ns string) ([]string, error) {
	if err := f.inject("keys"); err != nil {
		return nil, err
	}
	return f.s.Keys(ns)
}

// Move implements datastore.Store.
func (f *faultyStore) Move(srcNS, key, dstNS string) error {
	if err := f.inject("move"); err != nil {
		return err
	}
	return f.s.Move(srcNS, key, dstNS)
}

// Close implements datastore.Store. Teardown is never sabotaged.
func (f *faultyStore) Close() error { return f.s.Close() }

type faultyBatchGet struct {
	faultyStore
	bg datastore.BatchGetter
}

// GetBatch implements datastore.BatchGetter.
func (f *faultyBatchGet) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	if err := f.inject("getbatch"); err != nil {
		return nil, err
	}
	return f.bg.GetBatch(ns, keys)
}

type faultyBatchMove struct {
	faultyStore
	bm datastore.BatchMover
}

// MoveBatch implements datastore.BatchMover.
func (f *faultyBatchMove) MoveBatch(srcNS string, keys []string, dstNS string) error {
	if err := f.inject("movebatch"); err != nil {
		return err
	}
	return f.bm.MoveBatch(srcNS, keys, dstNS)
}

type faultyBatchBoth struct {
	faultyStore
	bg datastore.BatchGetter
	bm datastore.BatchMover
}

// GetBatch implements datastore.BatchGetter.
func (f *faultyBatchBoth) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	if err := f.inject("getbatch"); err != nil {
		return nil, err
	}
	return f.bg.GetBatch(ns, keys)
}

// MoveBatch implements datastore.BatchMover.
func (f *faultyBatchBoth) MoveBatch(srcNS string, keys []string, dstNS string) error {
	if err := f.inject("movebatch"); err != nil {
		return err
	}
	return f.bm.MoveBatch(srcNS, keys, dstNS)
}

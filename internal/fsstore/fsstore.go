// Package fsstore is the filesystem backend of the abstract data interface
// (paper §4.2). It is the right backend for small files that hold simulation
// state (checkpoints, logs) or must interface with external tools, and it
// carries the paper's "I/O armoring": atomic writes (temp file + rename),
// bounded retries when reads or writes fail, and optional backups of
// checkpoint-class files so a corrupted write never loses the previous good
// version. A fault-injection hook lets tests exercise the armoring the way
// a loaded parallel filesystem would.
package fsstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mummi/internal/datastore"
)

// Option configures a Store.
type Option func(*Store)

// WithRetries sets how many times failed I/O operations are retried
// (default 3) and the delay between attempts (default 1ms; the real system
// would back off longer, tests keep it short).
func WithRetries(n int, delay time.Duration) Option {
	return func(s *Store) { s.retries, s.retryDelay = n, delay }
}

// WithBackups enables keeping the previous value of every key in a ".bak"
// sibling, and falling back to it when the primary read fails. This is the
// paper's checkpoint-backup armoring.
func WithBackups() Option {
	return func(s *Store) { s.backups = true }
}

// WithFaultHook installs a hook consulted before every primitive filesystem
// operation. Returning a non-nil error makes that operation fail (once);
// used by tests to inject transient filesystem failures.
func WithFaultHook(h func(op, path string) error) Option {
	return func(s *Store) { s.fault = h }
}

// Store implements datastore.Store on a directory tree: one subdirectory per
// namespace, one file per key.
type Store struct {
	root       string
	retries    int
	retryDelay time.Duration
	backups    bool
	fault      func(op, path string) error

	mu sync.Mutex // serializes multi-step operations (backup+rename, move)
}

// New creates (if needed) root and returns a Store over it.
func New(root string, opts ...Option) (*Store, error) {
	s := &Store{root: root, retries: 3, retryDelay: time.Millisecond}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("fsstore: %w", err)
	}
	return s, nil
}

func init() {
	datastore.Register(datastore.BackendFS, func(cfg datastore.Config) (datastore.Store, error) {
		return New(cfg.Root)
	})
}

func (s *Store) inject(op, path string) error {
	if s.fault != nil {
		return s.fault(op, path)
	}
	return nil
}

// retry runs f up to 1+retries times, sleeping retryDelay between attempts.
func (s *Store) retry(f func() error) error {
	var err error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if err = f(); err == nil {
			return nil
		}
		if errors.Is(err, datastore.ErrNotFound) {
			return err // not transient; don't burn retries
		}
		if attempt < s.retries {
			time.Sleep(s.retryDelay)
		}
	}
	return err
}

// sanitize rejects path elements that would escape the root.
func sanitize(name string) (string, error) {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.Contains(name, "\x00") {
		return "", fmt.Errorf("fsstore: invalid name %q", name)
	}
	return name, nil
}

func (s *Store) path(ns, key string) (string, error) {
	n, err := sanitize(ns)
	if err != nil {
		return "", err
	}
	k, err := sanitize(key)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.root, n, k), nil
}

// Put implements datastore.Store with atomic write-then-rename and, when
// enabled, a backup of the previous value.
func (s *Store) Put(ns, key string, data []byte) error {
	p, err := s.path(ns, key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retry(func() error {
		if err := s.inject("put", p); err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return err
		}
		if s.backups {
			// Preserve the previous good value before overwriting.
			if _, err := os.Stat(p); err == nil {
				if err := copyFile(p, p+".bak"); err != nil {
					return err
				}
			}
		}
		tmp := p + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, p)
	})
}

// Get implements datastore.Store; with backups enabled it falls back to the
// ".bak" copy when the primary is missing or unreadable.
func (s *Store) Get(ns, key string) ([]byte, error) {
	p, err := s.path(ns, key)
	if err != nil {
		return nil, err
	}
	var out []byte
	err = s.retry(func() error {
		if err := s.inject("get", p); err != nil {
			return err
		}
		b, err := os.ReadFile(p)
		if err == nil {
			out = b
			return nil
		}
		if s.backups {
			if bb, bErr := os.ReadFile(p + ".bak"); bErr == nil {
				out = bb
				return nil
			}
		}
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
		}
		return err
	})
	return out, err
}

// Delete implements datastore.Store.
func (s *Store) Delete(ns, key string) error {
	p, err := s.path(ns, key)
	if err != nil {
		return err
	}
	return s.retry(func() error {
		if err := s.inject("delete", p); err != nil {
			return err
		}
		err := os.Remove(p)
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
		}
		if err == nil {
			os.Remove(p + ".bak") // best effort; the value is gone either way
		}
		return err
	})
}

// Keys implements datastore.Store.
func (s *Store) Keys(ns string) ([]string, error) {
	n, err := sanitize(ns)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(s.root, n)
	var keys []string
	err = s.retry(func() error {
		if err := s.inject("keys", dir); err != nil {
			return err
		}
		ents, err := os.ReadDir(dir)
		if errors.Is(err, fs.ErrNotExist) {
			keys = nil
			return nil
		}
		if err != nil {
			return err
		}
		keys = keys[:0]
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".bak") {
				continue
			}
			keys = append(keys, name)
		}
		return nil
	})
	return keys, err
}

// Move implements datastore.Store via rename, falling back to copy+delete.
func (s *Store) Move(srcNS, key, dstNS string) error {
	src, err := s.path(srcNS, key)
	if err != nil {
		return err
	}
	dst, err := s.path(dstNS, key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retry(func() error {
		if err := s.inject("move", src); err != nil {
			return err
		}
		if _, err := os.Stat(src); errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, srcNS, key)
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return os.Rename(src, dst)
	})
}

// Close implements datastore.Store.
func (s *Store) Close() error { return nil }

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

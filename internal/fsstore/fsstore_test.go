package fsstore

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/datastore/dstest"
	"mummi/internal/telemetry"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		s, err := New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestArmoredConformance re-runs the suite through datastore.Armor: the
// retry wrapper must be semantically invisible over a healthy backend.
func TestArmoredConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		s, err := New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return datastore.Armor(s, telemetry.Nop(), "fs", datastore.ArmorOptions{})
	})
}

func TestOpenViaFactory(t *testing.T) {
	s, err := datastore.Open(datastore.Config{Backend: datastore.BackendFS, Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ns", "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestSanitizeRejectsTraversal(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{"..", ".", "", "a/b", "a\\b", "x\x00y"}
	for _, b := range bad {
		if err := s.Put(b, "k", nil); err == nil {
			t.Errorf("Put with ns %q succeeded", b)
		}
		if err := s.Put("ns", b, nil); err == nil {
			t.Errorf("Put with key %q succeeded", b)
		}
	}
}

func TestRetriesRecoverFromTransientFaults(t *testing.T) {
	var failures atomic.Int32
	failures.Store(2) // first two attempts fail, third succeeds
	s, err := New(t.TempDir(),
		WithRetries(3, time.Microsecond),
		WithFaultHook(func(op, path string) error {
			if op == "put" && failures.Add(-1) >= 0 {
				return errors.New("injected EIO")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ns", "k", []byte("survived")); err != nil {
		t.Fatalf("Put with transient faults failed: %v", err)
	}
	got, err := s.Get("ns", "k")
	if err != nil || string(got) != "survived" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestRetriesExhausted(t *testing.T) {
	s, err := New(t.TempDir(),
		WithRetries(2, time.Microsecond),
		WithFaultHook(func(op, path string) error {
			if op == "put" {
				return errors.New("injected permanent EIO")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ns", "k", []byte("x")); err == nil {
		t.Fatal("Put succeeded despite permanent faults")
	}
}

func TestNotFoundDoesNotRetry(t *testing.T) {
	var gets atomic.Int32
	s, err := New(t.TempDir(),
		WithRetries(5, time.Microsecond),
		WithFaultHook(func(op, path string) error {
			if op == "get" {
				gets.Add(1)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ns", "missing"); !errors.Is(err, datastore.ErrNotFound) {
		t.Fatalf("Get = %v", err)
	}
	if gets.Load() != 1 {
		t.Errorf("ErrNotFound retried %d times; should not retry", gets.Load())
	}
}

func TestBackupPreservesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithBackups())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ckpt", "sim42", []byte("step-100")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ckpt", "sim42", []byte("step-200")); err != nil {
		t.Fatal(err)
	}
	// The backup must hold the previous value.
	bak, err := os.ReadFile(filepath.Join(dir, "ckpt", "sim42.bak"))
	if err != nil {
		t.Fatal(err)
	}
	if string(bak) != "step-100" {
		t.Errorf("backup = %q, want step-100", bak)
	}
	// Corrupt (remove) the primary: Get must fall back to the backup,
	// modeling a filesystem failure during checkpointing.
	if err := os.Remove(filepath.Join(dir, "ckpt", "sim42")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ckpt", "sim42")
	if err != nil {
		t.Fatalf("Get after primary loss: %v", err)
	}
	if string(got) != "step-100" {
		t.Errorf("fallback read = %q, want step-100", got)
	}
}

func TestKeysHidesInternalFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, WithBackups())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ns", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ns", "k", []byte("v2")); err != nil { // creates k.bak
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ns", "junk.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys("ns")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "k" {
		t.Errorf("Keys = %v, want [k]", keys)
	}
}

func TestPutIsAtomicNoPartialFiles(t *testing.T) {
	// After a failed write (fault during put), no partial primary file may
	// exist — the temp-then-rename protocol guarantees it.
	dir := t.TempDir()
	s, err := New(dir,
		WithRetries(0, 0),
		WithFaultHook(func(op, path string) error {
			if op == "put" {
				return errors.New("boom")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ns", "k", []byte("x")); err == nil {
		t.Fatal("expected injected failure")
	}
	if _, err := os.Stat(filepath.Join(dir, "ns", "k")); !errors.Is(err, os.ErrNotExist) {
		t.Error("partial primary file exists after failed Put")
	}
}

func TestMoveAcrossNamespaces(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("new", "frame", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("new", "frame", "processed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "processed", "frame")); err != nil {
		t.Errorf("moved file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "new", "frame")); !errors.Is(err, os.ErrNotExist) {
		t.Error("source file still present after Move")
	}
}

func TestRootAccessor(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root() != dir {
		t.Errorf("Root = %q", s.Root())
	}
}

package feedback

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mummi/internal/datastore"
	"mummi/internal/sim"
)

// shOrSkip skips the test when no POSIX shell is available.
func shOrSkip(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("no sh available")
	}
}

// writeModule writes an executable shell script standing in for the paper's
// external analysis module.
func writeModule(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "module.sh")
	script := "#!/bin/sh\n" + body + "\n"
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExecProcessorHappyPath(t *testing.T) {
	shOrSkip(t)
	want := strings.Repeat("HEC", sim.SecStructResidues/3)
	mod := writeModule(t, fmt.Sprintf(`cat > /dev/null; printf '%s\n'`, want))
	proc := ExecProcessor(mod)
	g := sim.NewAASim("x", 1)
	got, err := proc(g.NextFrame())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("processor returned %q", got)
	}
}

func TestExecProcessorReceivesFrameOnStdin(t *testing.T) {
	shOrSkip(t)
	// The module greps its stdin for the frame's sim id and emits a
	// structure whose first residue encodes whether it saw it.
	mod := writeModule(t,
		`if grep -q "stdin-check" >/dev/null 2>&1; then printf 'H'; else printf 'C'; fi; `+
			fmt.Sprintf(`i=1; while [ $i -lt %d ]; do printf 'C'; i=$((i+1)); done`, sim.SecStructResidues))
	proc := ExecProcessor(mod)
	g := sim.NewAASim("stdin-check", 1)
	got, err := proc(g.NextFrame())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'H' {
		t.Errorf("module did not see the frame on stdin: %q", got[:5])
	}
}

func TestExecProcessorFailures(t *testing.T) {
	shOrSkip(t)
	g := sim.NewAASim("f", 1)

	// Module crashes.
	crash := writeModule(t, `cat > /dev/null; echo "boom" >&2; exit 3`)
	if _, err := ExecProcessor(crash)(g.NextFrame()); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Errorf("crash not surfaced with stderr: %v", err)
	}
	// Module emits garbage.
	garbage := writeModule(t, `cat > /dev/null; printf 'not a structure'`)
	if _, err := ExecProcessor(garbage)(g.NextFrame()); err == nil {
		t.Error("garbage output accepted")
	}
	// Module emits nothing.
	empty := writeModule(t, `cat > /dev/null`)
	if _, err := ExecProcessor(empty)(g.NextFrame()); err == nil {
		t.Error("empty output accepted")
	}
	// Module binary missing.
	if _, err := ExecProcessor("/nonexistent/module")(g.NextFrame()); err == nil {
		t.Error("missing module accepted")
	}
}

func TestExecProcessorThroughAAFeedback(t *testing.T) {
	shOrSkip(t)
	// End to end: the AA→CG pipeline drives real subprocesses through its
	// worker pool, exactly the paper's deployment shape.
	want := strings.Repeat("E", sim.SecStructResidues)
	mod := writeModule(t, fmt.Sprintf(`cat > /dev/null; printf '%s'`, want))
	store := datastore.NewMemory()
	g := sim.NewAASim("aa", 4)
	for i := 0; i < 12; i++ {
		f := g.NextFrame()
		b, _ := f.Marshal()
		store.Put("new", f.ID(), b)
	}
	var consensus string
	fb, err := NewAAToCG(AAConfig{
		Store: store, NewNS: "new", DoneNS: "done", Workers: 4,
		Process: ExecProcessor(mod),
		Apply:   func(c string, v int) error { consensus = c; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fb.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 12 {
		t.Errorf("Frames = %d", rep.Frames)
	}
	if consensus != want {
		t.Errorf("consensus = %.10q..., want all-E", consensus)
	}
}

func TestValidateSS(t *testing.T) {
	if err := validateSS("HECHEC"); err != nil {
		t.Error(err)
	}
	for _, bad := range []string{"", "HEX", "hec", "H E"} {
		if err := validateSS(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

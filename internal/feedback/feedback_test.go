package feedback

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/sim"
)

func putCGFrames(t *testing.T, st datastore.Store, ns string, n int, species, state int) {
	t.Helper()
	g := sim.NewCGSim(fmt.Sprintf("sim-st%d", state), species, state, []float64{0.9, 0.1, 0.5}, int64(state+1))
	for i := 0; i < n; i++ {
		f := g.NextFrame()
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(ns, f.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
}

func newCG(t *testing.T, st datastore.Store, apply func([][]float64) error) *CGToContinuum {
	t.Helper()
	f, err := NewCGToContinuum(CGConfig{
		Store: st, NewNS: "rdf-new", DoneNS: "rdf-done",
		Species: 3, States: 3, Apply: apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCGConfigValidation(t *testing.T) {
	st := datastore.NewMemory()
	bad := []CGConfig{
		{NewNS: "a", DoneNS: "b", Species: 1, States: 1},            // no store
		{Store: st, NewNS: "a", DoneNS: "a", Species: 1, States: 1}, // same ns
		{Store: st, NewNS: "a", DoneNS: "b", Species: 0, States: 1},
		{Store: st, NewNS: "a", DoneNS: "b", Species: 1, States: 0},
	}
	for i, cfg := range bad {
		if _, err := NewCGToContinuum(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestCGIterateAggregatesAndTags(t *testing.T) {
	st := datastore.NewMemory()
	putCGFrames(t, st, "rdf-new", 40, 3, 1)
	applied := 0
	var got [][]float64
	f := newCG(t, st, func(c [][]float64) error { applied++; got = c; return nil })

	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 40 {
		t.Errorf("Frames = %d", rep.Frames)
	}
	if applied != 1 {
		t.Errorf("Apply called %d times", applied)
	}
	// Species 0 (fingerprint 0.9) must couple more strongly than species 1
	// (0.1) for the observed state.
	if got[1][0] <= got[1][1] {
		t.Errorf("couplings do not reflect RDFs: %v", got[1])
	}
	// Unobserved states keep the neutral prior.
	if got[0][0] != 0.1 {
		t.Errorf("unobserved state coupling = %v", got[0][0])
	}
	// Tagging: the active namespace is empty, processed frames are in done.
	newKeys, _ := st.Keys("rdf-new")
	doneKeys, _ := st.Keys("rdf-done")
	if len(newKeys) != 0 || len(doneKeys) != 40 {
		t.Errorf("tagging: new=%d done=%d", len(newKeys), len(doneKeys))
	}
}

func TestCGIterateCostScalesWithOngoingNotTotal(t *testing.T) {
	// The tagging strategy's defining property (§4.4 Task 4): a second
	// iteration sees only new frames, no matter how many were ever produced.
	st := datastore.NewMemory()
	f := newCG(t, st, nil)
	putCGFrames(t, st, "rdf-new", 100, 3, 0)
	if rep, _ := f.Iterate(); rep.Frames != 100 {
		t.Fatalf("first pass = %d", rep.Frames)
	}
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 0 {
		t.Errorf("second pass reprocessed %d frames", rep.Frames)
	}
	if f.TotalFrames() != 100 {
		t.Errorf("TotalFrames = %d", f.TotalFrames())
	}
}

func TestCGIterateSkipsTornFrames(t *testing.T) {
	st := datastore.NewMemory()
	putCGFrames(t, st, "rdf-new", 5, 3, 0)
	st.Put("rdf-new", "torn", []byte("{not json"))
	f := newCG(t, st, nil)
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 5 {
		t.Errorf("Frames = %d, want 5 (torn skipped)", rep.Frames)
	}
	// Torn frame still tagged away so it is not rescanned forever.
	newKeys, _ := st.Keys("rdf-new")
	if len(newKeys) != 0 {
		t.Errorf("torn frame left in active namespace: %v", newKeys)
	}
}

func TestCGIterateWrongShapeFramesSkipped(t *testing.T) {
	st := datastore.NewMemory()
	// Frame with 7 species into a 3-species aggregator.
	putCGFrames(t, st, "rdf-new", 3, 7, 0)
	f := newCG(t, st, nil)
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 0 {
		t.Errorf("mismatched frames aggregated: %d", rep.Frames)
	}
}

func TestCGApplyErrorPropagates(t *testing.T) {
	st := datastore.NewMemory()
	putCGFrames(t, st, "rdf-new", 2, 3, 0)
	f := newCG(t, st, func([][]float64) error { return errors.New("continuum offline") })
	if _, err := f.Iterate(); err == nil {
		t.Error("apply error swallowed")
	}
}

func TestCGNoApplyOnEmptyIteration(t *testing.T) {
	st := datastore.NewMemory()
	applied := 0
	f := newCG(t, st, func([][]float64) error { applied++; return nil })
	if _, err := f.Iterate(); err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Error("Apply called with no data")
	}
}

func TestFirstShellExcess(t *testing.T) {
	flat := make([]float32, 20)
	for i := range flat {
		flat[i] = 1
	}
	if v := firstShellExcess(flat); v != 0 {
		t.Errorf("flat RDF excess = %v", v)
	}
	peaked := append([]float32(nil), flat...)
	peaked[4] = 3 // +2 over bulk in one of 10 inner bins
	if v := firstShellExcess(peaked); v < 0.19 || v > 0.21 {
		t.Errorf("peaked excess = %v, want 0.2", v)
	}
	if firstShellExcess(nil) != 0 {
		t.Error("empty RDF excess nonzero")
	}
}

// ---------------------------------------------------------------------------
// AA → CG

func putAAFrames(t *testing.T, st datastore.Store, ns string, n int, seed int64) {
	t.Helper()
	g := sim.NewAASim(fmt.Sprintf("aa-%d", seed), seed)
	for i := 0; i < n; i++ {
		f := g.NextFrame()
		b, _ := f.Marshal()
		if err := st.Put(ns, f.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAAConfigValidation(t *testing.T) {
	st := datastore.NewMemory()
	if _, err := NewAAToCG(AAConfig{NewNS: "a", DoneNS: "b"}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewAAToCG(AAConfig{Store: st, NewNS: "a", DoneNS: "a"}); err == nil {
		t.Error("same namespaces accepted")
	}
	// Workers < 1 is repaired, not rejected.
	f, err := NewAAToCG(AAConfig{Store: st, NewNS: "a", DoneNS: "b", Workers: 0})
	if err != nil || f.cfg.Workers != 1 {
		t.Errorf("workers not repaired: %v", err)
	}
}

func TestAAIterateConsensusAndVersioning(t *testing.T) {
	st := datastore.NewMemory()
	putAAFrames(t, st, "aa-new", 20, 1)
	var gotConsensus string
	var gotVersion int
	f, err := NewAAToCG(AAConfig{
		Store: st, NewNS: "aa-new", DoneNS: "aa-done", Workers: 4,
		Apply: func(c string, v int) error { gotConsensus, gotVersion = c, v; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 20 {
		t.Errorf("Frames = %d", rep.Frames)
	}
	if len(gotConsensus) != sim.SecStructResidues || gotVersion != 1 {
		t.Errorf("consensus len=%d version=%d", len(gotConsensus), gotVersion)
	}
	// Progressive refinement: the next batch bumps the version.
	putAAFrames(t, st, "aa-new", 5, 2)
	if _, err := f.Iterate(); err != nil {
		t.Fatal(err)
	}
	if f.Version() != 2 || f.TotalFrames() != 25 {
		t.Errorf("version=%d frames=%d", f.Version(), f.TotalFrames())
	}
	if keys, _ := st.Keys("aa-new"); len(keys) != 0 {
		t.Error("frames left untagged")
	}
}

func TestAAIterateExternalProcessAndFailures(t *testing.T) {
	st := datastore.NewMemory()
	putAAFrames(t, st, "aa-new", 10, 3)
	var calls atomic.Int32
	f, _ := NewAAToCG(AAConfig{
		Store: st, NewNS: "aa-new", DoneNS: "aa-done", Workers: 3,
		Process: func(fr *sim.AAFrame) (string, error) {
			n := calls.Add(1)
			if n%5 == 0 {
				return "", errors.New("external module crashed")
			}
			return strings.Repeat("H", sim.SecStructResidues), nil
		},
	})
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 10 {
		t.Errorf("external module called %d times", calls.Load())
	}
	if rep.Frames != 8 { // two of ten failed
		t.Errorf("Frames = %d, want 8", rep.Frames)
	}
}

func TestAAEligibilityFilter(t *testing.T) {
	st := datastore.NewMemory()
	putAAFrames(t, st, "aa-new", 10, 4)
	f, _ := NewAAToCG(AAConfig{
		Store: st, NewNS: "aa-new", DoneNS: "aa-done", Workers: 2,
		Eligible: func(fr *sim.AAFrame) bool { return fr.Index%2 == 0 },
	})
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 5 {
		t.Errorf("Frames = %d, want 5 eligible", rep.Frames)
	}
	// Ineligible frames are still tagged out of the namespace.
	if keys, _ := st.Keys("aa-new"); len(keys) != 0 {
		t.Error("ineligible frames left in active namespace")
	}
}

func TestAAPoolActuallyParallel(t *testing.T) {
	st := datastore.NewMemory()
	putAAFrames(t, st, "aa-new", 8, 5)
	const perFrame = 30 * time.Millisecond
	f, _ := NewAAToCG(AAConfig{
		Store: st, NewNS: "aa-new", DoneNS: "aa-done", Workers: 8,
		Process: func(fr *sim.AAFrame) (string, error) {
			time.Sleep(perFrame)
			return fr.SecStruct, nil
		},
	})
	rep, err := f.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	// 8 frames × 30 ms serial = 240 ms; 8 workers should finish in ~1× the
	// per-frame cost (generous 4× bound for CI noise).
	if rep.Process > 4*perFrame {
		t.Errorf("pooled processing took %v, want ~%v", rep.Process, perFrame)
	}
}

func TestSimulatePoolTime(t *testing.T) {
	costs := []time.Duration{2 * time.Second, 2 * time.Second, 2 * time.Second, 2 * time.Second}
	if got := SimulatePoolTime(costs, 1); got != 8*time.Second {
		t.Errorf("1 worker = %v", got)
	}
	if got := SimulatePoolTime(costs, 2); got != 4*time.Second {
		t.Errorf("2 workers = %v", got)
	}
	if got := SimulatePoolTime(costs, 8); got != 2*time.Second {
		t.Errorf("8 workers = %v", got)
	}
	if got := SimulatePoolTime(nil, 4); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := SimulatePoolTime(costs, 0); got != 8*time.Second {
		t.Errorf("0 workers not repaired: %v", got)
	}
	// The Fig. 8 arithmetic: 1600 frames × 2 s across a pool must land at
	// the 10-minute mark with ~5.3 workers; with 6 workers it fits.
	many := make([]time.Duration, 1600)
	for i := range many {
		many[i] = 2 * time.Second
	}
	if got := SimulatePoolTime(many, 6); got > 10*time.Minute {
		t.Errorf("1600 frames on 6 workers = %v, want <= 10 min", got)
	}
}

func TestManagersImplementInterface(t *testing.T) {
	st := datastore.NewMemory()
	cg := newCG(t, st, nil)
	aa, _ := NewAAToCG(AAConfig{Store: st, NewNS: "a", DoneNS: "b"})
	for _, m := range []Manager{cg, aa} {
		if m.Name() == "" {
			t.Error("unnamed manager")
		}
		if _, err := m.Iterate(); err != nil {
			t.Errorf("%s empty iterate: %v", m.Name(), err)
		}
	}
}

func TestReportTotalAndString(t *testing.T) {
	r := Report{Frames: 3, Scan: time.Second, Fetch: 2 * time.Second,
		Process: 3 * time.Second, Tag: 4 * time.Second}
	if r.Total() != 10*time.Second {
		t.Errorf("Total = %v", r.Total())
	}
	if !strings.Contains(r.String(), "frames=3") {
		t.Errorf("String = %q", r.String())
	}
}

package feedback

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/sim"
)

// AAConfig assembles the AA→CG feedback loop.
type AAConfig struct {
	Store  datastore.Store
	NewNS  string
	DoneNS string
	// Workers is the processing pool size ("suitable process pools ...
	// allowed bounding the processing time to within the target time
	// limit").
	Workers int
	// Process is the per-frame external-module call (the paper shells out
	// twice per frame, ~2 s in isolation). It returns the frame's refined
	// secondary structure. Nil defaults to using the frame's own analysis.
	Process func(*sim.AAFrame) (string, error)
	// Eligible filters frames before processing (the paper: "AA frames are
	// further filtered for eligibility for feedback"). Nil accepts all.
	Eligible func(*sim.AAFrame) bool
	// Apply receives the consensus secondary structure and a monotonically
	// increasing parameter version — the progressive refinement of the CG
	// protein force field.
	Apply func(consensus string, version int) error
}

// AAToCG computes the most common secondary-structure pattern across AA
// frames and promotes it to the CG model.
type AAToCG struct {
	cfg AAConfig

	mu      sync.Mutex
	version int
	frames  int64
}

// NewAAToCG validates the configuration.
func NewAAToCG(cfg AAConfig) (*AAToCG, error) {
	if cfg.Store == nil || cfg.NewNS == "" || cfg.DoneNS == "" || cfg.NewNS == cfg.DoneNS {
		return nil, errors.New("feedback: AA config needs a store and distinct namespaces")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &AAToCG{cfg: cfg}, nil
}

// Name implements Manager.
func (f *AAToCG) Name() string { return "aa-to-cg" }

// Version returns the current CG parameter version.
func (f *AAToCG) Version() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

// TotalFrames returns the cumulative frames processed.
func (f *AAToCG) TotalFrames() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames
}

// Iterate implements Manager: fetch all new frames, process them through
// the worker pool, derive the consensus, apply it, and tag the frames.
func (f *AAToCG) Iterate() (Report, error) {
	var rep Report
	t0 := time.Now()
	keys, err := f.cfg.Store.Keys(f.cfg.NewNS)
	if err != nil {
		return rep, fmt.Errorf("feedback: scan: %w", err)
	}
	sort.Strings(keys)
	rep.Scan = time.Since(t0)

	t1 := time.Now()
	values, fetched, err := fetchAll(f.cfg.Store, f.cfg.NewNS, keys)
	if err != nil {
		return rep, err
	}
	var frames []*sim.AAFrame
	for _, v := range values {
		fr, err := sim.UnmarshalAAFrame(v)
		if err != nil {
			continue // torn frame: tag it away without processing
		}
		if f.cfg.Eligible != nil && !f.cfg.Eligible(fr) {
			continue
		}
		frames = append(frames, fr)
	}
	rep.Fetch = time.Since(t1)

	t2 := time.Now()
	processed := make([]*sim.AAFrame, 0, len(frames))
	if len(frames) > 0 {
		results := make([]string, len(frames))
		errsCh := make(chan error, len(frames))
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < f.cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if f.cfg.Process == nil {
						results[i] = frames[i].SecStruct
						continue
					}
					ss, err := f.cfg.Process(frames[i])
					if err != nil {
						errsCh <- fmt.Errorf("feedback: process %s: %w", frames[i].ID(), err)
						results[i] = ""
						continue
					}
					results[i] = ss
				}
			}()
		}
		for i := range frames {
			work <- i
		}
		close(work)
		wg.Wait()
		close(errsCh)
		// A failed external call drops that frame; the iteration proceeds
		// (the paper tolerates per-frame failures, rerunning if needed).
		for i, fr := range frames {
			if results[i] != "" {
				fr.SecStruct = results[i]
				processed = append(processed, fr)
			}
		}
	}
	if len(processed) > 0 {
		consensus, err := sim.ConsensusSecStruct(processed)
		if err != nil {
			return rep, err
		}
		f.mu.Lock()
		f.version++
		f.frames += int64(len(processed))
		v := f.version
		f.mu.Unlock()
		rep.Frames = len(processed)
		if f.cfg.Apply != nil {
			if err := f.cfg.Apply(consensus, v); err != nil {
				return rep, fmt.Errorf("feedback: apply: %w", err)
			}
		}
	}
	rep.Process = time.Since(t2)

	t3 := time.Now()
	if err := tagAll(f.cfg.Store, f.cfg.NewNS, fetched, f.cfg.DoneNS); err != nil {
		return rep, err
	}
	rep.Tag = time.Since(t3)
	return rep, nil
}

// SimulatePoolTime computes how long a worker pool takes to drain per-frame
// costs under FIFO list scheduling — the deterministic model the Fig. 8
// generator uses to replay AA-feedback iterations in virtual time (the pool
// above behaves identically for uniform costs).
func SimulatePoolTime(costs []time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	busy := make([]time.Duration, workers)
	for _, c := range costs {
		// Assign to the earliest-free worker (FIFO pull from a channel).
		best := 0
		for w := 1; w < workers; w++ {
			if busy[w] < busy[best] {
				best = w
			}
		}
		busy[best] += c
	}
	var max time.Duration
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// Package feedback implements the paper's two in situ feedback loops
// (§4.1(7), §4.4 Task 4) behind an abstract Feedback Manager API.
//
// CG→Continuum: aggregate protein-lipid RDFs streaming from thousands of CG
// analyses and push updated coupling parameters into the running continuum
// model. The load is I/O-shaped — many small frames — so the pipeline is
// built on the abstract data interface and uses the move-out-of-namespace
// tagging strategy: processed frames leave the active namespace (archive or
// key rename), so each iteration's cost scales with ongoing simulations,
// never with the campaign's full history.
//
// AA→CG: fewer frames, but each needs expensive processing (the paper shells
// out to an external module, ~2 s per frame); a worker pool bounds iteration
// latency, which Fig. 8 measures against the 10-minute target.
package feedback

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/sim"
)

// Report describes one feedback iteration, split the way the paper analyzes
// it: identifying new data (scan), loading it (fetch), computing (process),
// and moving processed data out of the namespace (tag).
type Report struct {
	Frames  int
	Scan    time.Duration
	Fetch   time.Duration
	Process time.Duration
	Tag     time.Duration
}

// Total returns the iteration's end-to-end duration.
func (r Report) Total() time.Duration { return r.Scan + r.Fetch + r.Process + r.Tag }

// String renders a compact summary.
func (r Report) String() string {
	return fmt.Sprintf("frames=%d scan=%v fetch=%v process=%v tag=%v total=%v",
		r.Frames, r.Scan, r.Fetch, r.Process, r.Tag, r.Total())
}

// Manager is the abstract Feedback Manager: applications implement Iterate
// with the specifics of "how to read, interpret, and aggregate the data"
// (§4.5) and the workflow manager schedules iterations.
type Manager interface {
	// Iterate performs one feedback pass over all unprocessed data.
	Iterate() (Report, error)
	// Name labels the feedback type in logs and profiles.
	Name() string
}

// ---------------------------------------------------------------------------
// CG → Continuum

// CGConfig assembles the CG→Continuum feedback loop.
type CGConfig struct {
	// Store holds frames; NewNS is the active namespace CG analyses write
	// identifying frames into; DoneNS receives processed frames.
	Store  datastore.Store
	NewNS  string
	DoneNS string
	// Species is the lipid species count; incoming RDFs must match.
	Species int
	// States is the number of protein configuration states.
	States int
	// Apply pushes updated couplings into the continuum model
	// ("the ongoing continuum simulation reads and updates these
	// parameters on the fly"). May be nil for measurement-only runs.
	Apply func(couplings [][]float64) error
}

// CGToContinuum aggregates RDFs into per-state, per-species couplings. The
// aggregate is cumulative across iterations: each frame's first-solvation-
// shell excess contributes to a running mean.
type CGToContinuum struct {
	cfg CGConfig

	mu     sync.Mutex
	sum    [][]float64
	count  [][]int64
	iters  int
	frames int64
}

// NewCGToContinuum validates the configuration.
func NewCGToContinuum(cfg CGConfig) (*CGToContinuum, error) {
	if cfg.Store == nil || cfg.NewNS == "" || cfg.DoneNS == "" || cfg.NewNS == cfg.DoneNS {
		return nil, errors.New("feedback: CG config needs a store and distinct namespaces")
	}
	if cfg.Species < 1 || cfg.States < 1 {
		return nil, fmt.Errorf("feedback: invalid species/states %d/%d", cfg.Species, cfg.States)
	}
	f := &CGToContinuum{cfg: cfg}
	f.sum = make([][]float64, cfg.States)
	f.count = make([][]int64, cfg.States)
	for st := range f.sum {
		f.sum[st] = make([]float64, cfg.Species)
		f.count[st] = make([]int64, cfg.Species)
	}
	return f, nil
}

// Name implements Manager.
func (f *CGToContinuum) Name() string { return "cg-to-continuum" }

// TotalFrames returns the cumulative number of frames aggregated.
func (f *CGToContinuum) TotalFrames() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frames
}

// Couplings returns the current aggregate: the mean first-shell RDF excess
// per (state, species), defaulting to 0.1 where no data has arrived.
func (f *CGToContinuum) Couplings() [][]float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.couplingsLocked()
}

func (f *CGToContinuum) couplingsLocked() [][]float64 {
	out := make([][]float64, f.cfg.States)
	for st := range out {
		out[st] = make([]float64, f.cfg.Species)
		for sp := range out[st] {
			if f.count[st][sp] == 0 {
				out[st][sp] = 0.1
			} else {
				out[st][sp] = f.sum[st][sp] / float64(f.count[st][sp])
			}
		}
	}
	return out
}

// Iterate implements Manager: scan the active namespace, fetch and
// aggregate every frame, apply couplings, then tag frames processed by
// moving them out.
func (f *CGToContinuum) Iterate() (Report, error) {
	var rep Report
	t0 := time.Now()
	keys, err := f.cfg.Store.Keys(f.cfg.NewNS)
	if err != nil {
		return rep, fmt.Errorf("feedback: scan: %w", err)
	}
	sort.Strings(keys) // deterministic aggregation order
	rep.Scan = time.Since(t0)

	t1 := time.Now()
	values, keys, err := fetchAll(f.cfg.Store, f.cfg.NewNS, keys)
	if err != nil {
		return rep, err
	}
	rep.Fetch = time.Since(t1)

	t2 := time.Now()
	f.mu.Lock()
	for _, v := range values {
		frame, err := sim.UnmarshalCGFrameAuto(v)
		if err != nil {
			// A torn frame is dropped, not fatal: the producer will rerun
			// missing frames if needed (§4.4 resilience).
			continue
		}
		if frame.State < 0 || frame.State >= f.cfg.States || len(frame.RDF) != f.cfg.Species {
			continue
		}
		for sp, rdf := range frame.RDF {
			f.sum[frame.State][sp] += firstShellExcess(rdf)
			f.count[frame.State][sp]++
		}
		f.frames++
		rep.Frames++
	}
	f.iters++
	couplings := f.couplingsLocked()
	f.mu.Unlock()
	if f.cfg.Apply != nil && rep.Frames > 0 {
		if err := f.cfg.Apply(couplings); err != nil {
			return rep, fmt.Errorf("feedback: apply: %w", err)
		}
	}
	rep.Process = time.Since(t2)

	t3 := time.Now()
	if err := tagAll(f.cfg.Store, f.cfg.NewNS, keys, f.cfg.DoneNS); err != nil {
		return rep, err
	}
	rep.Tag = time.Since(t3)
	return rep, nil
}

// fetchAll loads every key's value, batched when the backend supports it.
// It returns the values and the keys actually found (concurrently consumed
// keys are skipped), index-aligned.
func fetchAll(store datastore.Store, ns string, keys []string) (values [][]byte, live []string, err error) {
	if bg, ok := store.(datastore.BatchGetter); ok {
		got, err := bg.GetBatch(ns, keys)
		if err != nil {
			return nil, nil, fmt.Errorf("feedback: batch fetch: %w", err)
		}
		for _, k := range keys {
			if v, ok := got[k]; ok {
				values = append(values, v)
				live = append(live, k)
			}
		}
		return values, live, nil
	}
	for _, k := range keys {
		v, err := store.Get(ns, k)
		if errors.Is(err, datastore.ErrNotFound) {
			continue // concurrently consumed; skip
		}
		if err != nil {
			return nil, nil, fmt.Errorf("feedback: fetch %s: %w", k, err)
		}
		values = append(values, v)
		live = append(live, k)
	}
	return values, live, nil
}

// tagAll moves processed keys out of the active namespace, batched when the
// backend supports it.
func tagAll(store datastore.Store, srcNS string, keys []string, dstNS string) error {
	if bm, ok := store.(datastore.BatchMover); ok {
		if err := bm.MoveBatch(srcNS, keys, dstNS); err != nil {
			return fmt.Errorf("feedback: batch tag: %w", err)
		}
		return nil
	}
	for _, k := range keys {
		if err := store.Move(srcNS, k, dstNS); err != nil && !errors.Is(err, datastore.ErrNotFound) {
			return fmt.Errorf("feedback: tag %s: %w", k, err)
		}
	}
	return nil
}

// firstShellExcess integrates the RDF's excess over bulk density within the
// first solvation shell (the inner half of the radial range) — the coupling
// signal the continuum model consumes.
func firstShellExcess(rdf []float32) float64 {
	n := len(rdf) / 2
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += float64(rdf[i]) - 1
	}
	v := s / float64(n)
	if v < 0 {
		return 0
	}
	return v
}

package feedback

import (
	"bytes"
	"fmt"
	"os/exec"
	"strings"

	"mummi/internal/sim"
)

// ExecProcessor returns an AA-frame processor that shells out to an
// external module, as the paper's AA→CG feedback does ("processing each
// frame needs two system calls to an external module, taking ~2 s in
// isolation"). The frame is serialized to the subprocess's stdin as JSON;
// the subprocess prints the refined per-residue secondary-structure string
// on stdout. Spawn overhead ("the OS needing to spawn a new process and
// loading the required Python modules") is paid per call, exactly as in the
// paper — which is why AAConfig.Workers pools these calls.
func ExecProcessor(name string, args ...string) func(*sim.AAFrame) (string, error) {
	return func(f *sim.AAFrame) (string, error) {
		in, err := f.Marshal()
		if err != nil {
			return "", err
		}
		cmd := exec.Command(name, args...)
		cmd.Stdin = bytes.NewReader(in)
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			return "", fmt.Errorf("feedback: external module %s: %w (stderr: %.200s)",
				name, err, errb.String())
		}
		ss := strings.TrimSpace(out.String())
		if err := validateSS(ss); err != nil {
			return "", fmt.Errorf("feedback: external module %s: %w", name, err)
		}
		return ss, nil
	}
}

// validateSS checks an external module's output is a plausible secondary-
// structure string before it can poison the consensus.
func validateSS(ss string) error {
	if ss == "" {
		return fmt.Errorf("empty secondary structure")
	}
	for i := 0; i < len(ss); i++ {
		switch ss[i] {
		case sim.Helix, sim.Sheet, sim.Coil:
		default:
			return fmt.Errorf("invalid structure code %q at residue %d", ss[i], i)
		}
	}
	return nil
}

package core

import (
	"fmt"
	"testing"
	"time"

	"math/rand"

	"mummi/internal/cluster"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/feedback"
	"mummi/internal/maestro"
	"mummi/internal/sched"
	"mummi/internal/sim"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

type rig struct {
	clk  *vclock.Virtual
	mach *cluster.Machine
	s    *sched.Scheduler
	cond *maestro.Conductor
}

func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	m, err := cluster.New(cluster.Summit(nodes))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(clk, sched.Config{Machine: m, Policy: sched.FirstMatch, Mode: sched.Async})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := maestro.NewConductor(clk, maestro.FluxBackend{S: s}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, mach: m, s: s, cond: cond}
}

func cgCoupling(sel dynim.Selector, maxSims, readyTarget int) CouplingSpec {
	return CouplingSpec{
		Name:          "continuum-to-cg",
		Selector:      sel,
		SetupReq:      sched.Request{Name: "createsim", Cores: 24},
		SetupDuration: func(rng *rand.Rand) time.Duration { return time.Hour },
		SimReq:        sched.Request{Name: "cg-sim", Cores: 3, GPUs: 1},
		SimDuration:   func(rng *rand.Rand, p dynim.Point) time.Duration { return 6 * time.Hour },
		MaxSims:       maxSims,
		ReadyTarget:   readyTarget,
	}
}

func TestWorkflowEndToEnd(t *testing.T) {
	r := newRig(t, 2) // 12 GPUs, 88 cores
	sel := dynim.NewFarthestPoint(2, 0)
	spec := cgCoupling(sel, 12, 4)
	var started, ended int
	spec.OnSimStart = func(p dynim.Point, id sched.JobID) { started++ }
	spec.OnSimEnd = func(p dynim.Point, id sched.JobID, st sched.State) { ended++ }
	w, err := New(Config{Clock: r.clk, Conductor: r.cond,
		Couplings: []CouplingSpec{spec}, PollEvery: 2 * time.Minute, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Offer 30 candidates, start, run one virtual day.
	for i := 0; i < 30; i++ {
		if err := w.AddCandidate("continuum-to-cg", dynim.Point{
			ID: fmt.Sprintf("patch%02d", i), Coords: []float64{float64(i), 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunFor(24 * time.Hour)
	st := w.Stats()[0]
	if started == 0 || ended == 0 {
		t.Fatalf("no sims ran: started=%d ended=%d (stats %+v)", started, ended, st)
	}
	if st.CompletedSims == 0 {
		t.Errorf("no completed sims: %+v", st)
	}
	// Setup + sim pipeline: 1h setup then 6h sim; in 24h a GPU should cycle
	// ~3 sims; 12 GPUs ≈ 30+ sims total, bounded by candidates (30).
	if st.Launched < 12 {
		t.Errorf("launched only %d sims", st.Launched)
	}
	// GPUs should be busy at steady state.
	if r.mach.UsedGPUs() == 0 && st.Candidates > 0 {
		t.Error("machine idle with candidates available")
	}
}

func TestReadyBufferTargetRespected(t *testing.T) {
	r := newRig(t, 1)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 2, 3)
	w, err := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w.AddCandidate("continuum-to-cg", dynim.Point{ID: fmt.Sprintf("p%03d", i), Coords: []float64{float64(i)}})
	}
	w.Start()
	r.clk.RunFor(90 * time.Minute) // setups (1h) done, sims running
	st := w.Stats()[0]
	// Ready + in-setup never exceeds the target: "a full buffer prevents
	// new setup jobs".
	if st.Ready+st.InSetup > 3 {
		t.Errorf("buffer overfilled: ready=%d insetup=%d target=3", st.Ready, st.InSetup)
	}
	if st.Running == 0 {
		t.Error("no sims running")
	}
}

func TestTotalCapStopsLaunching(t *testing.T) {
	r := newRig(t, 2)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 12, 6)
	spec.TotalCap = 5
	spec.SimDuration = func(rng *rand.Rand, p dynim.Point) time.Duration { return 30 * time.Minute }
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec}})
	for i := 0; i < 50; i++ {
		w.AddCandidate("continuum-to-cg", dynim.Point{ID: fmt.Sprintf("p%03d", i), Coords: []float64{float64(i)}})
	}
	w.Start()
	r.clk.RunFor(48 * time.Hour)
	st := w.Stats()[0]
	if st.Launched != 5 || st.CompletedSims != 5 {
		t.Errorf("cap violated: launched=%d completed=%d", st.Launched, st.CompletedSims)
	}
}

func TestFailedSimResubmitted(t *testing.T) {
	r := newRig(t, 1)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 1, 1)
	var simJob sched.JobID
	starts := 0
	spec.OnSimStart = func(p dynim.Point, id sched.JobID) { starts++; simJob = id }
	spec.SimDuration = func(rng *rand.Rand, p dynim.Point) time.Duration { return 0 } // manual completion
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec}})
	w.AddCandidate("continuum-to-cg", dynim.Point{ID: "only", Coords: []float64{1}})
	w.Start()
	r.clk.RunFor(2 * time.Hour) // setup (1h) + sim start
	if starts != 1 {
		t.Fatalf("starts = %d", starts)
	}
	// Kill the simulation: the tracker must resubmit it.
	if err := r.s.Fail(simJob); err != nil {
		t.Fatal(err)
	}
	r.clk.RunFor(time.Hour)
	st := w.Stats()[0]
	if st.FailedSims != 1 {
		t.Errorf("FailedSims = %d", st.FailedSims)
	}
	if starts != 2 {
		t.Errorf("failed sim not resubmitted: starts = %d", starts)
	}
	// Completing the retry counts it done.
	if err := r.s.Complete(simJob); err != nil {
		t.Fatal(err)
	}
	r.clk.RunFor(time.Hour)
	if st := w.Stats()[0]; st.CompletedSims != 1 {
		t.Errorf("CompletedSims = %d", st.CompletedSims)
	}
}

func TestFeedbackTickerRuns(t *testing.T) {
	r := newRig(t, 1)
	store := datastore.NewMemory()
	fb, err := feedback.NewCGToContinuum(feedback.CGConfig{
		Store: store, NewNS: "new", DoneNS: "done", Species: 2, States: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stage some frames.
	g := sim.NewCGSim("s1", 2, 1, nil, 1)
	for i := 0; i < 10; i++ {
		f := g.NextFrame()
		b, _ := f.Marshal()
		store.Put("new", f.ID(), b)
	}
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 1, 1)
	spec.Feedback = fb
	spec.FeedbackEvery = 10 * time.Minute
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec}})
	w.Start()
	r.clk.RunFor(35 * time.Minute)
	st := w.Stats()[0]
	if st.FeedbackRuns != 3 {
		t.Errorf("FeedbackRuns = %d, want 3", st.FeedbackRuns)
	}
	reps := w.FeedbackReports("continuum-to-cg")
	if len(reps) != 3 || reps[0].Frames != 10 || reps[1].Frames != 0 {
		t.Errorf("reports = %+v", reps)
	}
	if fb.TotalFrames() != 10 {
		t.Errorf("frames processed = %d", fb.TotalFrames())
	}
}

func TestStaticJobsSubmittedAtStart(t *testing.T) {
	r := newRig(t, 160)
	sel := dynim.NewFarthestPoint(1, 0)
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond,
		Couplings:  []CouplingSpec{cgCoupling(sel, 1, 1)},
		StaticJobs: []sched.Request{{Name: "continuum", NodeCount: 150, Cores: 24, Duration: 24 * time.Hour}},
	})
	w.Start()
	r.clk.RunFor(time.Hour)
	if r.mach.UsedCores() < 150*24 {
		t.Errorf("continuum job not running: %d cores used", r.mach.UsedCores())
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, 1)
	sel := dynim.NewFarthestPoint(1, 0)
	good := cgCoupling(sel, 1, 1)
	cases := []Config{
		{Conductor: r.cond, Couplings: []CouplingSpec{good}},                      // no clock
		{Clock: r.clk, Couplings: []CouplingSpec{good}},                           // no conductor
		{Clock: r.clk, Conductor: r.cond},                                         // no couplings
		{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{{Name: "x"}}}, // no selector
		{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{good, good}},  // duplicate name
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	// Feedback without interval rejected.
	bad := good
	store := datastore.NewMemory()
	fb, _ := feedback.NewCGToContinuum(feedback.CGConfig{Store: store, NewNS: "a", DoneNS: "b", Species: 1, States: 1})
	bad.Feedback = fb
	if _, err := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{bad}}); err == nil {
		t.Error("feedback without interval accepted")
	}
}

func TestAddCandidateUnknownCoupling(t *testing.T) {
	r := newRig(t, 1)
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond,
		Couplings: []CouplingSpec{cgCoupling(dynim.NewFarthestPoint(1, 0), 1, 1)}})
	if err := w.AddCandidate("nope", dynim.Point{ID: "x", Coords: []float64{1}}); err == nil {
		t.Error("unknown coupling accepted")
	}
}

func TestDoubleStartAndStop(t *testing.T) {
	r := newRig(t, 1)
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond,
		Couplings: []CouplingSpec{cgCoupling(dynim.NewFarthestPoint(1, 0), 1, 1)}})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err == nil {
		t.Error("double Start accepted")
	}
	w.Stop()
	w.Stop() // idempotent
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	r := newRig(t, 2)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 4, 4)
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec}, Seed: 9})
	for i := 0; i < 20; i++ {
		w.AddCandidate("continuum-to-cg", dynim.Point{ID: fmt.Sprintf("p%03d", i), Coords: []float64{float64(i)}})
	}
	w.Start()
	r.clk.RunFor(4 * time.Hour) // setups done, sims running
	ck, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	preStats := w.Stats()[0]
	w.Stop()

	// "Crash": build a fresh rig and WM, restore selector + state.
	selCk, err := SelectorCheckpoint(ck, "continuum-to-cg")
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := dynim.RestoreFarthestPoint(1, 0, selCk)
	if err != nil {
		t.Fatal(err)
	}
	r2 := newRig(t, 2)
	spec2 := cgCoupling(sel2, 4, 4)
	w2, _ := New(Config{Clock: r2.clk, Conductor: r2.cond, Couplings: []CouplingSpec{spec2}, Seed: 9})
	if err := w2.RestoreState(ck); err != nil {
		t.Fatal(err)
	}
	// Nothing lost: every configuration is queued as a candidate, awaiting
	// (re)setup, ready/resumed, or already completed.
	st := w2.Stats()[0]
	total := st.Ready + st.InSetup + st.Candidates + preStats.CompletedSims
	if total != 20 {
		t.Errorf("configurations lost across restore: ready=%d insetup=%d candidates=%d completed=%d",
			st.Ready, st.InSetup, st.Candidates, preStats.CompletedSims)
	}
	// The restored campaign keeps making progress.
	w2.Start()
	r2.clk.RunFor(24 * time.Hour)
	if got := w2.Stats()[0].CompletedSims; got == 0 {
		t.Error("restored workflow made no progress")
	}
}

func TestRestoreErrors(t *testing.T) {
	r := newRig(t, 1)
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond,
		Couplings: []CouplingSpec{cgCoupling(dynim.NewFarthestPoint(1, 0), 1, 1)}})
	if err := w.RestoreState([]byte("junk")); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	if err := w.RestoreState([]byte(`{"couplings":[{"name":"ghost"}]}`)); err == nil {
		t.Error("unknown coupling in checkpoint accepted")
	}
	w.Start()
	if err := w.RestoreState([]byte(`{"couplings":[]}`)); err == nil {
		t.Error("restore after Start accepted")
	}
	if _, err := SelectorCheckpoint([]byte("junk"), "x"); err == nil {
		t.Error("corrupt selector checkpoint accepted")
	}
	if _, err := SelectorCheckpoint([]byte(`{"couplings":[]}`), "x"); err == nil {
		t.Error("missing coupling accepted")
	}
}

func TestWatchdogKillsHungJob(t *testing.T) {
	r := newRig(t, 1)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 1, 1)
	spec.SimDuration = func(rng *rand.Rand, p dynim.Point) time.Duration { return 6 * time.Hour }
	var simJobs []sched.JobID
	spec.OnSimStart = func(p dynim.Point, id sched.JobID) { simJobs = append(simJobs, id) }
	tel := telemetry.Nop()
	w, err := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec},
		PollEvery: 2 * time.Minute, WatchdogGrace: 1.5, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	w.AddCandidate("continuum-to-cg", dynim.Point{ID: "only", Coords: []float64{1}})
	w.Start()
	r.clk.RunFor(2 * time.Hour) // setup (1h) + sim start
	if len(simJobs) != 1 {
		t.Fatalf("starts = %d", len(simJobs))
	}
	// Wedge the simulation: it will never auto-complete; deadline is
	// start + 1.5×6h = 9h.
	if !r.s.Hang(simJobs[0]) {
		t.Fatal("could not hang the sim")
	}
	r.clk.RunFor(12 * time.Hour)
	if len(simJobs) != 2 {
		t.Fatalf("watchdog did not resubmit the hung sim: starts = %d", len(simJobs))
	}
	if got, _ := r.s.Job(simJobs[0]); got.State != sched.Failed {
		t.Errorf("hung job = %v, want Failed", got.State)
	}
	if got := tel.Registry().Counter("wm.watchdog_kills_total{coupling=continuum-to-cg}").Value(); got != 1 {
		t.Errorf("watchdog_kills_total = %d, want 1", got)
	}
	// The healthy retry completes and clears the configuration's budget.
	r.clk.RunFor(12 * time.Hour)
	if st := w.Stats()[0]; st.CompletedSims != 1 {
		t.Errorf("CompletedSims = %d after retry", st.CompletedSims)
	}
}

func TestWatchdogKillBudgetExhausted(t *testing.T) {
	r := newRig(t, 1)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 1, 1)
	spec.SimDuration = func(rng *rand.Rand, p dynim.Point) time.Duration { return time.Hour }
	starts := 0
	spec.OnSimStart = func(p dynim.Point, id sched.JobID) {
		starts++
		r.s.Hang(id) // this configuration wedges every single time
	}
	tel := telemetry.Nop()
	w, _ := New(Config{Clock: r.clk, Conductor: r.cond, Couplings: []CouplingSpec{spec},
		PollEvery: 2 * time.Minute, WatchdogGrace: 1.5, WatchdogMaxKills: 2, Telemetry: tel})
	w.AddCandidate("continuum-to-cg", dynim.Point{ID: "cursed", Coords: []float64{1}})
	w.Start()
	r.clk.RunFor(48 * time.Hour)
	// Two kills, then the budget is exhausted and the third run is left
	// alone rather than cycling forever.
	if starts != 3 {
		t.Errorf("starts = %d, want 3 (initial + 2 watchdog retries)", starts)
	}
	reg := tel.Registry()
	if got := reg.Counter("wm.watchdog_kills_total{coupling=continuum-to-cg}").Value(); got != 2 {
		t.Errorf("watchdog_kills_total = %d, want 2", got)
	}
	if got := reg.Counter("wm.watchdog_exhausted_total{coupling=continuum-to-cg}").Value(); got == 0 {
		t.Error("watchdog_exhausted_total never counted")
	}
	if st := w.Stats()[0]; st.CompletedSims != 0 {
		t.Errorf("CompletedSims = %d for a permanently hung config", st.CompletedSims)
	}
}

func TestDrainUndrainMidCampaign(t *testing.T) {
	r := newRig(t, 2)
	sel := dynim.NewFarthestPoint(1, 0)
	spec := cgCoupling(sel, 12, 6)
	// Cheap, quick setups so the ready buffer keeps all 12 GPUs loaded and
	// the placement pattern (not setup throughput) is what the test sees.
	spec.SetupReq = sched.Request{Name: "createsim", Cores: 4}
	spec.SetupDuration = func(rng *rand.Rand) time.Duration { return 30 * time.Minute }
	spec.SimDuration = func(rng *rand.Rand, p dynim.Point) time.Duration { return 3 * time.Hour }
	live := map[sched.JobID]bool{}
	spec.OnSimStart = func(p dynim.Point, id sched.JobID) { live[id] = true }
	spec.OnSimEnd = func(p dynim.Point, id sched.JobID, st sched.State) { delete(live, id) }
	w, err := New(Config{Clock: r.clk, Conductor: r.cond,
		Couplings: []CouplingSpec{spec}, PollEvery: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		w.AddCandidate("continuum-to-cg", dynim.Point{ID: fmt.Sprintf("p%03d", i),
			Coords: []float64{float64(i)}})
	}
	w.Start()
	onNode := func(node int) int {
		n := 0
		for id := range live {
			j, ok := r.s.Job(id)
			if ok && j.State == sched.Running && j.Alloc.Parts[0].Node == node {
				n++
			}
		}
		return n
	}
	r.clk.RunFor(8 * time.Hour) // steady state: both nodes loaded
	if onNode(0) == 0 || onNode(1) == 0 {
		t.Fatalf("not at steady state: node0=%d node1=%d", onNode(0), onNode(1))
	}

	r.s.Drain(0)
	// Running jobs on the drained node finish their 3h normally; no new
	// match may land there while the other node keeps cycling.
	r.clk.RunFor(4 * time.Hour)
	if got := onNode(0); got != 0 {
		t.Errorf("drained node still hosts %d sims after their durations elapsed", got)
	}
	if got := onNode(1); got == 0 {
		t.Error("healthy node starved while node 0 was drained")
	}
	r.clk.RunFor(4 * time.Hour)
	if got := onNode(0); got != 0 {
		t.Errorf("drained node repopulated: %d sims", got)
	}

	r.s.Undrain(0)
	r.clk.RunFor(4 * time.Hour)
	if got := onNode(0); got == 0 {
		t.Error("undrained node never woke: no sims placed on it")
	}
}

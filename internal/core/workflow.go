// Package core implements the MuMMI Workflow Manager (WM, §4.4) — the
// coordination half of the paper's two-part architecture. The WM couples
// resolution scales pairwise: it ingests selection candidates produced from
// coarse-scale data (Task 1), drives ML-based selection (Task 2), schedules
// and tracks tens of thousands of jobs to keep the machine loaded (Task 3),
// and runs frequent feedback iterations (Task 4). Everything
// application-specific — what a scale is, how a candidate is encoded, what
// a setup or simulation job runs, how feedback aggregates — enters through
// the CouplingSpec plug points, which is what makes the framework
// generalizable beyond the RAS-RAF-membrane campaign (§4.5).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mummi/internal/dynim"
	"mummi/internal/feedback"
	"mummi/internal/maestro"
	"mummi/internal/sched"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

// CouplingSpec defines one pairwise coupling between a coarser scale (the
// candidate producer) and a finer one (the simulations spawned). The
// RAS-RAF campaign instantiates two: continuum→CG and CG→AA.
type CouplingSpec struct {
	// Name identifies the coupling ("continuum-to-cg").
	Name string
	// Selector decides which coarse candidates are promoted (Task 2).
	Selector dynim.Selector
	// SetupReq is the CPU-only setup job that transforms a selected coarse
	// configuration into a runnable fine one (createsim, backmapping).
	SetupReq sched.Request
	// SetupDuration samples a setup job's runtime.
	SetupDuration func(rng *rand.Rand) time.Duration
	// SimReq is the fine-scale simulation job (one GPU in the campaign).
	SimReq sched.Request
	// SimDuration samples a simulation's wall-clock allotment for the
	// selected point.
	SimDuration func(rng *rand.Rand, p dynim.Point) time.Duration
	// MaxSims is the concurrent fine-scale simulation target (the GPU
	// share assigned to this coupling).
	MaxSims int
	// ReadyTarget sizes the prepared-configuration buffer: "sets of CG and
	// AA simulations are kept prepared (setup completed) in anticipation"
	// — a user-configurable trade-off between readiness and staleness that
	// also governs CPU occupancy.
	ReadyTarget int
	// MaxSetups caps concurrent setup jobs independently of the inventory
	// target (0 = uncapped): inventory can be deep (it persists across
	// allocations) while CPU-core demand stays within what the machine can
	// place without stalling the FCFS queue.
	MaxSetups int
	// TotalCap bounds how many simulations this coupling ever launches
	// (0 = unlimited); the campaign driver uses it for selection budgets.
	TotalCap int
	// Feedback, when non-nil, runs every FeedbackEvery (Task 4).
	Feedback      feedback.Manager
	FeedbackEvery time.Duration
	// OnSimStart/OnSimEnd observe simulation lifecycle (the application
	// wires frame production and analysis here).
	OnSimStart func(p dynim.Point, id sched.JobID)
	OnSimEnd   func(p dynim.Point, id sched.JobID, st sched.State)
}

func (c *CouplingSpec) validate() error {
	if c.Name == "" || c.Selector == nil {
		return errors.New("core: coupling needs a name and a selector")
	}
	if c.MaxSims < 1 || c.ReadyTarget < 0 {
		return fmt.Errorf("core: coupling %s: MaxSims %d / ReadyTarget %d invalid",
			c.Name, c.MaxSims, c.ReadyTarget)
	}
	if c.Feedback != nil && c.FeedbackEvery <= 0 {
		return fmt.Errorf("core: coupling %s: feedback without interval", c.Name)
	}
	return nil
}

// Config assembles a Workflow.
type Config struct {
	Clock     vclock.Clock
	Conductor *maestro.Conductor
	Couplings []CouplingSpec
	// PollEvery is the job-scan cadence ("the WM regularly scans all
	// running jobs ... and submits new jobs ... as soon as [resources]
	// become available"; every few minutes in the campaign).
	PollEvery time.Duration
	// StaticJobs are submitted once at Start — the continuum simulation's
	// 150-node job in the campaign.
	StaticJobs []sched.Request
	Seed       int64
	// WatchdogGrace, when positive, arms the hung-job watchdog: a tracked
	// job still running after Grace × its submitted Duration is presumed
	// hung (a wedged simulation never reports completion on its own), is
	// killed through the conductor, and re-enters the machine through the
	// normal failure/resubmission path. Jobs submitted without a Duration
	// are exempt. A sensible grace is 1.2–2.0.
	WatchdogGrace float64
	// WatchdogMaxKills caps watchdog kills per configuration (default 3
	// when the watchdog is armed) so one persistently hung configuration
	// cannot kill/resubmit forever; past the cap the job is left alone and
	// wm.watchdog_exhausted_total counts it.
	WatchdogMaxKills int
	// Telemetry receives per-task spans and WM metrics (nil = discarded).
	// See docs/OBSERVABILITY.md for the emitted names.
	Telemetry *telemetry.Telemetry
	// AllowNoCouplings permits building a Workflow with an empty coupling
	// set. A distributed-fleet standby instance starts with nothing to
	// manage and gains couplings at runtime through AdoptCoupling; outside
	// that use an empty set is almost certainly a misconfiguration, so the
	// default keeps rejecting it.
	AllowNoCouplings bool
}

// CouplingStats reports one coupling's live state.
type CouplingStats struct {
	Name          string `json:"name"`
	Candidates    int    `json:"candidates"`
	Ready         int    `json:"ready"`
	InSetup       int    `json:"in_setup"`
	Running       int    `json:"running"`
	Launched      int    `json:"launched"`
	CompletedSims int    `json:"completed_sims"`
	FailedSims    int    `json:"failed_sims"`
	FailedSetups  int    `json:"failed_setups"`
	FeedbackRuns  int    `json:"feedback_runs"`
}

type jobRole int

const (
	roleSetup jobRole = iota
	roleSim
	roleStatic
)

type jobRecord struct {
	role     jobRole
	coupling int
	point    dynim.Point
	// dur is the submitted modeled duration; deadline is set at job start
	// to now + WatchdogGrace×dur (zero = watchdog-exempt).
	dur      time.Duration
	deadline time.Time
}

type couplingState struct {
	spec  CouplingSpec
	ready []dynim.Point
	// redoSetup holds already-selected points whose setup must (re)run —
	// populated by restore for setups interrupted by a crash, and by the
	// failure path. They take priority over fresh selections.
	redoSetup []dynim.Point
	// pendingSetup/pendingSim count submissions in flight through the
	// throttled conductor (no JobID yet).
	pendingSetup int
	pendingSim   int
	inSetup      int
	running      int
	launched     int
	completed    int
	failedSims   int
	failedSetups int
	feedbackRuns int
	feedbackBusy bool
	lastReports  []feedback.Report
}

// Workflow is the workflow manager.
type Workflow struct {
	clk  vclock.Clock
	cond *maestro.Conductor
	rng  *rand.Rand
	tel  *telemetry.Telemetry

	// The WM's shared objects are guarded by a blocking lock; the feedback
	// path additionally uses a per-coupling nonblocking busy flag so a slow
	// iteration skips rather than stalls job management — the paper's "mix
	// of blocking and nonblocking locks".
	mu        sync.Mutex
	couplings []*couplingState
	jobs      map[sched.JobID]jobRecord
	poll      *vclock.Ticker
	fbTickers []*vclock.Ticker
	started   bool
	stopped   bool
	static    []sched.Request
	pollEvery time.Duration

	// Hung-job watchdog state (Task 3 armoring): kills are counted per
	// coupling/configuration so a wedged configuration is abandoned after
	// watchdogMaxKills rather than looping forever.
	watchdogGrace    float64
	watchdogMaxKills int
	watchdogKills    map[string]int
}

// New validates the configuration and builds a Workflow (not yet running).
func New(cfg Config) (*Workflow, error) {
	if cfg.Clock == nil || cfg.Conductor == nil {
		return nil, errors.New("core: config needs a clock and a conductor")
	}
	if len(cfg.Couplings) == 0 && !cfg.AllowNoCouplings {
		return nil, errors.New("core: no couplings configured")
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 2 * time.Minute
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Nop()
	}
	if cfg.WatchdogGrace > 0 && cfg.WatchdogMaxKills <= 0 {
		cfg.WatchdogMaxKills = 3
	}
	w := &Workflow{
		clk:              cfg.Clock,
		cond:             cfg.Conductor,
		rng:              rand.New(rand.NewSource(cfg.Seed + 1)),
		tel:              tel,
		jobs:             make(map[sched.JobID]jobRecord),
		static:           cfg.StaticJobs,
		pollEvery:        cfg.PollEvery,
		watchdogGrace:    cfg.WatchdogGrace,
		watchdogMaxKills: cfg.WatchdogMaxKills,
		watchdogKills:    make(map[string]int),
	}
	names := map[string]bool{}
	for i := range cfg.Couplings {
		spec := cfg.Couplings[i]
		if err := spec.validate(); err != nil {
			return nil, err
		}
		if names[spec.Name] {
			return nil, fmt.Errorf("core: duplicate coupling %q", spec.Name)
		}
		names[spec.Name] = true
		w.couplings = append(w.couplings, &couplingState{spec: spec})
	}
	w.cond.OnFinish(w.onJobFinish)
	w.cond.OnStart(w.onJobStart)
	return w, nil
}

// onJobStart fires when the scheduler actually places a job (not at
// submission): simulation start observers see real start times, which the
// campaign's progress accounting depends on.
func (w *Workflow) onJobStart(id sched.JobID) {
	w.mu.Lock()
	rec, ok := w.jobs[id]
	if ok && w.watchdogGrace > 0 && rec.dur > 0 {
		rec.deadline = w.clk.Now().Add(time.Duration(w.watchdogGrace * float64(rec.dur)))
		w.jobs[id] = rec
	}
	var cb func(dynim.Point, sched.JobID)
	if ok && rec.role == roleSim {
		cb = w.couplings[rec.coupling].spec.OnSimStart
	}
	w.mu.Unlock()
	if cb != nil {
		cb(rec.point, id)
	}
}

// Start submits static jobs and begins the poll and feedback tickers.
func (w *Workflow) Start() error {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return errors.New("core: already started")
	}
	w.started = true
	static := w.static
	w.mu.Unlock()

	for _, req := range static {
		if err := w.cond.Submit(req, nil); err != nil {
			return err
		}
	}
	w.poll = vclock.NewTicker(w.clk, w.pollEvery, func(time.Time) { w.Poll() })
	for i, cs := range w.couplings {
		if cs.spec.Feedback == nil {
			continue
		}
		idx := i
		w.fbTickers = append(w.fbTickers,
			vclock.NewTicker(w.clk, cs.spec.FeedbackEvery, func(time.Time) {
				w.runFeedback(idx)
			}))
	}
	w.Poll() // load the machine immediately rather than waiting a period
	return nil
}

// Stop halts tickers; running jobs continue in the scheduler.
func (w *Workflow) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	poll := w.poll
	fbs := w.fbTickers
	w.mu.Unlock()
	if poll != nil {
		poll.Stop()
	}
	for _, t := range fbs {
		t.Stop()
	}
}

// AddCandidate offers a coarse-scale candidate to a coupling's selector
// (Task 1 hands patches here; the distributed CG analysis hands frames).
func (w *Workflow) AddCandidate(coupling string, p dynim.Point) error {
	cs := w.findCoupling(coupling)
	if cs == nil {
		return fmt.Errorf("core: unknown coupling %q", coupling)
	}
	sp := w.tel.StartSpan("wm", "task1.ingest").Arg("coupling", coupling)
	err := cs.spec.Selector.Add(p)
	sp.End()
	if err == nil {
		w.tel.Counter(telemetry.Name("wm.candidates_total", "coupling", coupling)).Inc()
	}
	return err
}

func (w *Workflow) findCoupling(name string) *couplingState {
	for _, cs := range w.couplings {
		if cs.spec.Name == name {
			return cs
		}
	}
	return nil
}

// Poll performs one Task-3 scan: replace finished simulations and keep the
// ready buffers topped up. It is normally driven by the ticker but exposed
// for deterministic tests. Poll is the instrumented entry into the WM's
// blocking lock: it observes both how long the lock took to acquire (wait)
// and how long the scan held it (hold) — the paper's locking mix made
// exactly this contention visible on the real system.
func (w *Workflow) Poll() {
	sp := w.tel.StartSpan("wm", "task3.poll")
	waitStart := w.tel.Now()
	w.mu.Lock()
	w.tel.Histogram("wm.lock_wait_ms", "ms", nil).Observe(w.tel.MsSince(waitStart))
	holdStart := w.tel.Now()
	if w.stopped {
		w.mu.Unlock()
		sp.End()
		return
	}
	w.tel.Counter("wm.polls_total").Inc()
	for i := range w.couplings {
		w.pollCoupling(i)
	}
	overdue := w.watchdogSweepLocked()
	w.tel.Histogram("wm.lock_hold_ms", "ms", nil).Observe(w.tel.MsSince(holdStart))
	w.tel.Histogram("wm.poll_ms", "ms", nil).Observe(w.tel.MsSince(waitStart))
	w.mu.Unlock()
	sp.End()
	// Kills happen outside the lock: Fail drives the backend's terminal
	// callback, which re-enters onJobFinish and takes w.mu itself.
	for _, id := range overdue {
		if err := w.cond.Fail(id); err != nil && !errors.Is(err, sched.ErrAlreadyTerminal) {
			w.tel.Counter("wm.watchdog_kill_errors_total").Inc()
		}
	}
}

// watchdogSweepLocked finds tracked jobs past their deadlines and charges
// their kill budgets, returning the IDs to kill in ascending order. Caller
// holds w.mu.
func (w *Workflow) watchdogSweepLocked() []sched.JobID {
	if w.watchdogGrace <= 0 {
		return nil
	}
	now := w.clk.Now()
	var overdue []sched.JobID
	for _, id := range w.sortedJobIDsLocked() {
		rec := w.jobs[id]
		if rec.deadline.IsZero() || now.Before(rec.deadline) {
			continue
		}
		name := w.couplings[rec.coupling].spec.Name
		key := name + "/" + rec.point.ID
		if w.watchdogKills[key] >= w.watchdogMaxKills {
			w.tel.Counter(telemetry.Name("wm.watchdog_exhausted_total", "coupling", name)).Inc()
			// Stop reconsidering it every poll: zero the deadline.
			rec.deadline = time.Time{}
			w.jobs[id] = rec
			continue
		}
		w.watchdogKills[key]++
		w.tel.Counter(telemetry.Name("wm.watchdog_kills_total", "coupling", name)).Inc()
		overdue = append(overdue, id)
	}
	return overdue
}

// pollCoupling holds w.mu.
func (w *Workflow) pollCoupling(i int) {
	cs := w.couplings[i]
	spec := &cs.spec
	defer w.updateGaugesLocked(i)

	// 1. Spawn simulations from the ready buffer up to the concurrency
	// target (and total cap).
	for cs.running+cs.pendingSim < spec.MaxSims && len(cs.ready) > 0 &&
		(spec.TotalCap == 0 || cs.launched < spec.TotalCap) {
		p := cs.ready[0]
		cs.ready = cs.ready[1:]
		cs.pendingSim++
		cs.launched++
		req := spec.SimReq
		if spec.SimDuration != nil {
			req.Duration = spec.SimDuration(w.rng, p)
		}
		w.tel.Counter(telemetry.Name("wm.sims_launched_total", "coupling", spec.Name)).Inc()
		w.submitLocked(req, i, roleSim, p)
	}

	// 2. Keep the prepared buffer at target: new selections trigger setup
	// jobs. A full buffer deliberately idles CPUs (anti-staleness).
	if spec.TotalCap > 0 && cs.launched+len(cs.ready)+cs.inSetup+cs.pendingSetup >= spec.TotalCap {
		return
	}
	want := spec.ReadyTarget - (len(cs.ready) + cs.inSetup + cs.pendingSetup)
	if spec.MaxSetups > 0 {
		if room := spec.MaxSetups - (cs.inSetup + cs.pendingSetup); room < want {
			want = room
		}
	}
	if want <= 0 {
		return
	}
	// Interrupted setups re-run first; only then are fresh selections made.
	var points []dynim.Point
	for want > 0 && len(cs.redoSetup) > 0 {
		points = append(points, cs.redoSetup[0])
		cs.redoSetup = cs.redoSetup[1:]
		want--
	}
	if want > 0 {
		// Task 2: drive the importance sampler. The selection duration is
		// measured on the telemetry clock (virtual in campaign replays), so
		// the span and histogram are deterministic replay artifacts.
		selStart := w.tel.Now()
		sel := spec.Selector.Select(want)
		w.tel.RecordSpan("wm", "task2.select", selStart, w.tel.Now().Sub(selStart),
			"coupling", spec.Name, "want", want, "got", len(sel))
		w.tel.Histogram("wm.select_ms", "ms", nil).Observe(w.tel.MsSince(selStart))
		w.tel.Counter(telemetry.Name("wm.selections_total", "coupling", spec.Name)).Add(int64(len(sel)))
		points = append(points, sel...)
	}
	for _, p := range points {
		cs.pendingSetup++
		req := spec.SetupReq
		if spec.SetupDuration != nil {
			req.Duration = spec.SetupDuration(w.rng)
		}
		w.tel.Counter(telemetry.Name("wm.setups_launched_total", "coupling", spec.Name)).Inc()
		w.submitLocked(req, i, roleSetup, p)
	}
}

// updateGaugesLocked refreshes the per-coupling live-state gauges. Caller
// holds w.mu.
func (w *Workflow) updateGaugesLocked(i int) {
	cs := w.couplings[i]
	name := cs.spec.Name
	w.tel.Gauge(telemetry.Name("wm.ready", "coupling", name)).Set(float64(len(cs.ready)))
	w.tel.Gauge(telemetry.Name("wm.running", "coupling", name)).Set(float64(cs.running + cs.pendingSim))
	w.tel.Gauge(telemetry.Name("wm.in_setup", "coupling", name)).Set(float64(cs.inSetup + cs.pendingSetup))
}

// submitLocked routes one job through the conductor. Caller holds w.mu; the
// conductor callback re-acquires it.
func (w *Workflow) submitLocked(req sched.Request, coupling int, role jobRole, p dynim.Point) {
	err := w.cond.Submit(req, func(id sched.JobID, err error) {
		w.mu.Lock()
		cs := w.couplings[coupling]
		switch role {
		case roleSetup:
			cs.pendingSetup--
			if err != nil {
				cs.failedSetups++
				// Submission failure: the selection stands; re-run the setup.
				cs.redoSetup = append(cs.redoSetup, p)
			} else {
				cs.inSetup++
				w.jobs[id] = jobRecord{role: roleSetup, coupling: coupling, point: p, dur: req.Duration}
			}
		case roleSim:
			cs.pendingSim--
			if err != nil {
				cs.failedSims++
				cs.launched--
				cs.ready = append(cs.ready, p)
			} else {
				cs.running++
				w.jobs[id] = jobRecord{role: roleSim, coupling: coupling, point: p, dur: req.Duration}
			}
		}
		w.mu.Unlock()
	})
	if err != nil {
		// Conductor closed: undo optimistic counters.
		cs := w.couplings[coupling]
		if role == roleSetup {
			cs.pendingSetup--
		} else {
			cs.pendingSim--
			cs.launched--
		}
	}
}

// onJobFinish is the conductor's terminal-state callback (Task 3's
// completion scan, event-driven).
func (w *Workflow) onJobFinish(id sched.JobID, st sched.State) {
	w.mu.Lock()
	rec, ok := w.jobs[id]
	if !ok {
		w.mu.Unlock()
		return // static or foreign job
	}
	delete(w.jobs, id)
	cs := w.couplings[rec.coupling]
	var onEnd func(dynim.Point, sched.JobID, sched.State)
	switch rec.role {
	case roleSetup:
		cs.inSetup--
		if st == sched.Completed {
			// Setup produced a runnable configuration: queue it for the
			// corresponding simulation.
			cs.ready = append(cs.ready, rec.point)
			w.tel.Counter(telemetry.Name("wm.setups_completed_total", "coupling", cs.spec.Name)).Inc()
		} else {
			cs.failedSetups++
			// "resubmits failed ones": the same configuration re-runs setup.
			cs.redoSetup = append(cs.redoSetup, rec.point)
			w.tel.Counter(telemetry.Name("wm.setups_failed_total", "coupling", cs.spec.Name)).Inc()
		}
	case roleSim:
		cs.running--
		if st == sched.Completed {
			cs.completed++
			// A clean completion clears the configuration's watchdog budget.
			delete(w.watchdogKills, cs.spec.Name+"/"+rec.point.ID)
			w.tel.Counter(telemetry.Name("wm.sims_completed_total", "coupling", cs.spec.Name)).Inc()
		} else {
			cs.failedSims++
			// "resubmits failed ones": the configuration returns to the
			// front of the ready queue.
			cs.ready = append([]dynim.Point{rec.point}, cs.ready...)
			cs.launched--
			w.tel.Counter(telemetry.Name("wm.sims_failed_total", "coupling", cs.spec.Name)).Inc()
		}
		onEnd = cs.spec.OnSimEnd
	}
	idx := rec.coupling
	stopped := w.stopped
	w.mu.Unlock()
	if onEnd != nil {
		onEnd(rec.point, id, st)
	}
	// Re-engage resources immediately rather than waiting for the next
	// poll tick.
	if !stopped {
		w.mu.Lock()
		w.pollCoupling(idx)
		w.mu.Unlock()
	}
}

// runFeedback performs one Task-4 iteration for coupling i. The busy flag
// is the nonblocking side of the locking mix: if the previous iteration is
// still running, this tick is skipped instead of queueing behind it.
func (w *Workflow) runFeedback(i int) {
	w.mu.Lock()
	cs := w.couplings[i]
	name := cs.spec.Name
	if cs.feedbackBusy || w.stopped {
		stopped := w.stopped
		w.mu.Unlock()
		if !stopped {
			w.tel.Counter(telemetry.Name("wm.feedback_skipped_total", "coupling", name)).Inc()
		}
		return
	}
	cs.feedbackBusy = true
	mgr := cs.spec.Feedback
	w.mu.Unlock()

	sp := w.tel.StartSpan("wm", "task4.feedback").Arg("coupling", name)
	fbStart := w.tel.Now()
	rep, err := mgr.Iterate()
	sp.End()
	w.tel.Histogram("wm.feedback_ms", "ms", nil).Observe(w.tel.MsSince(fbStart))
	if err == nil {
		w.tel.Counter(telemetry.Name("wm.feedback_runs_total", "coupling", name)).Inc()
	} else {
		w.tel.Counter(telemetry.Name("wm.feedback_failed_total", "coupling", name)).Inc()
	}

	w.mu.Lock()
	cs.feedbackBusy = false
	if err == nil {
		cs.feedbackRuns++
		cs.lastReports = append(cs.lastReports, rep)
	}
	w.mu.Unlock()
}

// Stats snapshots every coupling's state.
func (w *Workflow) Stats() []CouplingStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]CouplingStats, len(w.couplings))
	for i, cs := range w.couplings {
		out[i] = w.couplingStatsLocked(cs)
	}
	return out
}

// couplingStatsLocked snapshots one coupling's state. Caller holds mu.
func (w *Workflow) couplingStatsLocked(cs *couplingState) CouplingStats {
	return CouplingStats{
		Name:          cs.spec.Name,
		Candidates:    cs.spec.Selector.Len(),
		Ready:         len(cs.ready),
		InSetup:       cs.inSetup + cs.pendingSetup + len(cs.redoSetup),
		Running:       cs.running + cs.pendingSim,
		Launched:      cs.launched,
		CompletedSims: cs.completed,
		FailedSims:    cs.failedSims,
		FailedSetups:  cs.failedSetups,
		FeedbackRuns:  cs.feedbackRuns,
	}
}

// FeedbackReports returns the recorded feedback reports for a coupling.
func (w *Workflow) FeedbackReports(coupling string) []feedback.Report {
	w.mu.Lock()
	defer w.mu.Unlock()
	cs := w.findCoupling(coupling)
	if cs == nil {
		return nil
	}
	return append([]feedback.Report(nil), cs.lastReports...)
}

// ---------------------------------------------------------------------------
// Checkpoint / restore (§4.4 resilience: "can be restored completely after
// any such crash without much loss of data")

type checkpoint struct {
	Couplings []couplingCkpt `json:"couplings"`
}

type couplingCkpt struct {
	Name string `json:"name"`
	// Ready holds prepared configurations. RunningSims holds configurations
	// whose simulation was live at checkpoint time — on restore they return
	// to the ready queue and resume without a new setup (simulations restart
	// from their own checkpoints in the real system). InSetup holds
	// configurations whose setup job was live — their setup must re-run, so
	// they are re-offered to the selector.
	Ready       []dynim.Point   `json:"ready"`
	RunningSims []dynim.Point   `json:"running_sims"`
	InSetup     []dynim.Point   `json:"in_setup"`
	Launched    int             `json:"launched"`
	Completed   int             `json:"completed"`
	Selector    json.RawMessage `json:"selector,omitempty"`
}

// Checkpointer is implemented by selectors that support state capture
// (both dynim samplers do).
type Checkpointer interface {
	Checkpoint() ([]byte, error)
}

// sortedJobIDsLocked returns the live job IDs in ascending order — the
// only sanctioned way to sweep w.jobs (the determinism analyzer rejects a
// bare map range here). Caller holds mu.
func (w *Workflow) sortedJobIDsLocked() []sched.JobID {
	ids := make([]sched.JobID, 0, len(w.jobs))
	for id := range w.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// couplingCkptLocked captures one coupling's checkpoint record. ids is the
// sorted live-job sweep shared by every coupling. Caller holds mu.
func (w *Workflow) couplingCkptLocked(cs *couplingState, ids []sched.JobID) (couplingCkpt, error) {
	c := couplingCkpt{
		Name:      cs.spec.Name,
		Ready:     append([]dynim.Point(nil), cs.ready...),
		InSetup:   append([]dynim.Point(nil), cs.redoSetup...),
		Launched:  cs.launched,
		Completed: cs.completed,
	}
	for _, id := range ids {
		rec := w.jobs[id]
		if w.couplings[rec.coupling] != cs {
			continue
		}
		if rec.role == roleSim {
			c.RunningSims = append(c.RunningSims, rec.point)
		} else {
			c.InSetup = append(c.InSetup, rec.point)
		}
	}
	if ckp, ok := cs.spec.Selector.(Checkpointer); ok {
		b, err := ckp.Checkpoint()
		if err != nil {
			return couplingCkpt{}, err
		}
		c.Selector = b
	}
	return c, nil
}

// Checkpoint serializes the WM's recoverable state.
func (w *Workflow) Checkpoint() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var ck checkpoint
	// Deterministic checkpoint: job-map iteration order must not leak into
	// the restore order (campaign replays depend on it). One sorted sweep
	// serves every coupling.
	ids := w.sortedJobIDsLocked()
	for _, cs := range w.couplings {
		c, err := w.couplingCkptLocked(cs, ids)
		if err != nil {
			return nil, err
		}
		ck.Couplings = append(ck.Couplings, c)
	}
	return json.Marshal(ck)
}

// CheckpointCoupling serializes a single coupling's recoverable state as a
// standalone document — the per-coupling unit a distributed WM fleet writes
// through the datastore so a surviving instance can adopt the coupling
// after its owner crashes. The document is the same shape as one entry of
// the full Checkpoint and is accepted by RestoreCoupling and AdoptCoupling.
func (w *Workflow) CheckpointCoupling(name string) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cs := w.findCoupling(name)
	if cs == nil {
		return nil, fmt.Errorf("core: unknown coupling %q", name)
	}
	c, err := w.couplingCkptLocked(cs, w.sortedJobIDsLocked())
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// RestoreState rehydrates a Workflow built with the same coupling specs
// (selector restoration is the caller's job — selectors are restored by
// their own Restore functions and passed in via the specs). In-flight work
// returns to the ready queue; running jobs at crash time are re-run.
func (w *Workflow) RestoreState(data []byte) error {
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("core: corrupt checkpoint: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return errors.New("core: restore must precede Start")
	}
	for _, c := range ck.Couplings {
		cs := w.findCoupling(c.Name)
		if cs == nil {
			return fmt.Errorf("core: checkpoint has unknown coupling %q", c.Name)
		}
		restoreCouplingState(cs, c)
	}
	return nil
}

// restoreCouplingState rehydrates one coupling from its checkpoint record.
// Resumed simulations go to the front of the ready queue: they re-enter the
// machine first, without a new setup. Interrupted setups re-run (their
// selection already happened).
func restoreCouplingState(cs *couplingState, c couplingCkpt) {
	cs.ready = append([]dynim.Point(nil), c.RunningSims...)
	cs.ready = append(cs.ready, c.Ready...)
	cs.launched = c.Launched - len(c.RunningSims)
	if cs.launched < 0 {
		cs.launched = 0
	}
	cs.completed = c.Completed
	cs.redoSetup = append(cs.redoSetup, c.InSetup...)
}

// RestoreCoupling rehydrates one already-registered coupling from a
// per-coupling checkpoint document (CheckpointCoupling's output). Like
// RestoreState it must precede Start; a fleet uses it to split a full
// campaign checkpoint across the instances that own each coupling.
func (w *Workflow) RestoreCoupling(data []byte) error {
	var c couplingCkpt
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("core: corrupt coupling checkpoint: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return errors.New("core: restore must precede Start")
	}
	cs := w.findCoupling(c.Name)
	if cs == nil {
		return fmt.Errorf("core: checkpoint has unknown coupling %q", c.Name)
	}
	restoreCouplingState(cs, c)
	return nil
}

// AdoptCoupling registers a new coupling on a live workflow and rehydrates
// it from ckpt (nil adopts empty state) — the takeover path of the
// distributed WM fleet: a surviving instance that wins an expired lease
// adopts the orphaned coupling and resumes its in-flight work. If the
// workflow is already started the coupling's feedback ticker is armed and
// an immediate poll re-engages its resources. The returned stats are the
// post-restore snapshot the caller's conservation assert checks against the
// pre-crash state.
func (w *Workflow) AdoptCoupling(spec CouplingSpec, ckpt []byte) (CouplingStats, error) {
	if err := spec.validate(); err != nil {
		return CouplingStats{}, err
	}
	var c couplingCkpt
	if ckpt != nil {
		if err := json.Unmarshal(ckpt, &c); err != nil {
			return CouplingStats{}, fmt.Errorf("core: corrupt coupling checkpoint: %w", err)
		}
		if c.Name != spec.Name {
			return CouplingStats{}, fmt.Errorf("core: checkpoint is for coupling %q, adopting %q", c.Name, spec.Name)
		}
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return CouplingStats{}, errors.New("core: workflow stopped")
	}
	if w.findCoupling(spec.Name) != nil {
		w.mu.Unlock()
		return CouplingStats{}, fmt.Errorf("core: duplicate coupling %q", spec.Name)
	}
	cs := &couplingState{spec: spec}
	w.couplings = append(w.couplings, cs)
	idx := len(w.couplings) - 1
	if ckpt != nil {
		restoreCouplingState(cs, c)
	}
	st := w.couplingStatsLocked(cs)
	started := w.started
	if started && spec.Feedback != nil {
		w.fbTickers = append(w.fbTickers,
			vclock.NewTicker(w.clk, spec.FeedbackEvery, func(time.Time) {
				w.runFeedback(idx)
			}))
	}
	w.mu.Unlock()
	if started {
		w.mu.Lock()
		w.pollCoupling(idx)
		w.mu.Unlock()
	}
	return st, nil
}

// LiveJobIDs returns the IDs of every job the manager is currently
// tracking, in ascending order — the set a fleet crash handler kills when
// this instance dies (static jobs are untracked and survive).
func (w *Workflow) LiveJobIDs() []sched.JobID {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sortedJobIDsLocked()
}

// SplitCheckpoint explodes a full WM checkpoint into standalone
// per-coupling documents keyed by coupling name, each accepted by
// RestoreCoupling and AdoptCoupling. A fleet uses it to hand every instance
// exactly the couplings it owns.
func SplitCheckpoint(data []byte) (map[string][]byte, error) {
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint: %w", err)
	}
	out := make(map[string][]byte, len(ck.Couplings))
	for _, c := range ck.Couplings {
		b, err := json.Marshal(c)
		if err != nil {
			return nil, err
		}
		out[c.Name] = b
	}
	return out, nil
}

// MergeCouplingCheckpoints assembles per-coupling checkpoint documents
// (CheckpointCoupling's output) into a full WM checkpoint, in input order —
// the inverse of SplitCheckpoint. A fleet uses it to publish one campaign
// checkpoint spanning instances, in canonical coupling order.
func MergeCouplingCheckpoints(parts [][]byte) ([]byte, error) {
	var ck checkpoint
	for i, part := range parts {
		var c couplingCkpt
		if err := json.Unmarshal(part, &c); err != nil {
			return nil, fmt.Errorf("core: corrupt coupling checkpoint %d: %w", i, err)
		}
		ck.Couplings = append(ck.Couplings, c)
	}
	return json.Marshal(ck)
}

// InjectReady pushes prepared configurations straight into a coupling's
// ready queue, bypassing selection and setup — the campaign driver uses it
// to resume checkpointed simulations across allocations.
func (w *Workflow) InjectReady(coupling string, points []dynim.Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	cs := w.findCoupling(coupling)
	if cs == nil {
		return fmt.Errorf("core: unknown coupling %q", coupling)
	}
	cs.ready = append(points, cs.ready...)
	return nil
}

// SelectorCheckpoint extracts one coupling's selector snapshot from a WM
// checkpoint, for rebuilding the selector before constructing the new WM.
func SelectorCheckpoint(data []byte, coupling string) ([]byte, error) {
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint: %w", err)
	}
	for _, c := range ck.Couplings {
		if c.Name == coupling {
			return c.Selector, nil
		}
	}
	return nil, fmt.Errorf("core: coupling %q not in checkpoint", coupling)
}

package trace

import (
	"bytes"
	"testing"

	"mummi/internal/campaign"
)

func TestGenDeterministic(t *testing.T) {
	a, err := Gen(99, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gen(99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("got %d/%d traces, want 10", len(a), len(b))
	}
	for i := range a {
		ab, err := a[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("instance %d: same (seed, n) produced different traces", i)
		}
	}
	c, err := Gen(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := c[0].Marshal()
	ab, _ := a[0].Marshal()
	if bytes.Equal(ab, cb) {
		t.Error("different seeds produced an identical first instance")
	}
}

func TestGenValidAndParsable(t *testing.T) {
	traces, err := Gen(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tr := range traces {
		if seen[tr.Name] {
			t.Errorf("duplicate generated name %q", tr.Name)
		}
		seen[tr.Name] = true
		b, err := tr.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		if _, err := Parse(b); err != nil {
			t.Errorf("%s: generated trace does not parse: %v", tr.Name, err)
		}
	}
}

// TestGenSweepsAxes checks a modest sweep actually varies the axes the
// generator claims to sweep.
func TestGenSweepsAxes(t *testing.T) {
	traces, err := Gen(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]bool{}
	topologies := map[int]bool{}
	policies := map[string]bool{}
	var faulty, calm bool
	for _, tr := range traces {
		modes[tr.Scales.Mode] = true
		topologies[tr.Topology[0].Nodes] = true
		policies[tr.Scheduler.Policy] = true
		if tr.FaultPlan != nil {
			faulty = true
		} else {
			calm = true
		}
	}
	if !modes[string(campaign.ThreeScale)] || !modes[string(campaign.TwoScale)] {
		t.Errorf("sweep covers modes %v, want both regimes", modes)
	}
	if len(topologies) < 3 {
		t.Errorf("sweep covers %d topologies, want >= 3", len(topologies))
	}
	if len(policies) != 2 {
		t.Errorf("sweep covers policies %v, want both", policies)
	}
	if !faulty || !calm {
		t.Errorf("sweep should mix fault plans and calm runs (faulty=%v calm=%v)", faulty, calm)
	}
}

package trace

import (
	"fmt"
	"math/rand"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/faults"
	"mummi/internal/sched"
)

// topoPreset is one point on the topology axis, laptop to Summit-class.
type topoPreset struct {
	name string
	runs []campaign.RunSpec
}

// genTopologies spans the machine-size axis. The Summit-class entry uses a
// short wall so a generated trace stays replayable in minutes, not hours;
// the point of the axis is scheduler/selector behaviour at node scale, not
// campaign length.
func genTopologies() []topoPreset {
	return []topoPreset{
		{"laptop-2n", []campaign.RunSpec{{Nodes: 2, Wall: 2 * time.Hour, Count: 1}}},
		{"workstation-8n", []campaign.RunSpec{{Nodes: 8, Wall: 4 * time.Hour, Count: 1}}},
		{"cluster-64n", []campaign.RunSpec{{Nodes: 64, Wall: 6 * time.Hour, Count: 2}}},
		{"leadership-512n", []campaign.RunSpec{{Nodes: 512, Wall: 3 * time.Hour, Count: 1}}},
		{"summit-4608n", []campaign.RunSpec{{Nodes: 4608, Wall: 30 * time.Minute, Count: 1}}},
	}
}

// genFaultPlans spans the fault-plan axis: no chaos, a light plan, and the
// aggressive all-six-classes plan the CI chaos smoke uses.
func genFaultPlans(seed int64) []struct {
	name string
	plan *faults.Plan
} {
	return []struct {
		name string
		plan *faults.Plan
	}{
		{"calm", nil},
		{"chaos-light", &faults.Plan{Seed: seed, Rules: []faults.Rule{
			{Class: faults.StoreTransient, Rate: 0.05},
			{Class: faults.NodeCrash, Rate: 2, Recovery: time.Hour},
		}}},
		{"chaos-heavy", faults.AggressivePlan(seed)},
	}
}

// Gen deterministically derives n workflow instances from seed, sweeping
// every scenario axis: topology (laptop to Summit-class), scale regime
// (two- and three-scale stacks), scheduler policy and mode, selection
// knobs, job-shape mix, and fault plans. The same (seed, n) always yields
// byte-identical traces, so generated sweeps are as replayable and
// committable as hand-written scenarios. Axis values are drawn per
// instance from a seeded source; the instance index is part of the name,
// so names are unique within a sweep.
func Gen(seed int64, n int) ([]*Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	topos := genTopologies()
	modes := []campaign.ScaleMode{campaign.ThreeScale, campaign.TwoScale}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		topo := topos[rng.Intn(len(topos))]
		mode := modes[rng.Intn(len(modes))]
		plans := genFaultPlans(seed + int64(i))
		fault := plans[rng.Intn(len(plans))]

		cfg := campaign.DefaultConfig()
		cfg.Seed = seed + int64(i)
		cfg.Runs = topo.runs
		cfg.Scales = mode
		cfg.CGShare = []float64{0.6, 0.7, 0.8}[rng.Intn(3)]
		cfg.FrameCandidateSubsample = []float64{0.05, 0.1, 0.3}[rng.Intn(3)]
		cfg.InventoryFraction = []float64{0.02, 0.25, 0.5, 1.0}[rng.Intn(4)]
		cfg.PatchQueueCap = []int{5000, 35000}[rng.Intn(2)]
		cfg.FrameBins = []int{10, 20, 40}[rng.Intn(3)]
		if rng.Intn(2) == 1 {
			cfg.SchedPolicy = sched.FirstMatch
		}
		if rng.Intn(2) == 1 {
			cfg.SchedMode = sched.Async
		}
		if fault.plan != nil {
			cfg.Faults = fault.plan
			// Store-class faults need feedback traffic to have something
			// to hit (see campaign.Config.Faults).
			cfg.FeedbackEvery = 30 * time.Minute
		}

		name := fmt.Sprintf("gen-%03d-%s-%s-%s", i, topo.name, mode, fault.name)
		desc := fmt.Sprintf("generated sweep instance %d of seed %d: %s topology, %s regime, %s fault plan",
			i, seed, topo.name, mode, fault.name)
		t, err := FromConfig(name, desc, cfg)
		if err != nil {
			return nil, fmt.Errorf("trace: generating instance %d: %w", i, err)
		}
		out = append(out, t)
	}
	return out, nil
}

package trace

import (
	"fmt"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/faults"
	"mummi/internal/sched"
)

// Catalog returns the named scenario matrix: the workflow instances
// committed under scenarios/ and replayed by `make matrix`. Each entry
// stresses one axis of the coordination layer — topology, scale regime,
// scheduler configuration, selection pressure, job-shape mix, or fault
// plan — and carries a committed BENCH_scenario_<name>.json ledger that
// ci.sh gates against drift (docs/SCENARIOS.md documents each scenario
// and its headline metrics).
//
// The committed files are this function's output verbatim:
// TestCommittedScenariosMatchCatalog fails if they diverge, and
// `make scenarios` regenerates them.
func Catalog() ([]*Trace, error) {
	base := func(seed int64, runs ...campaign.RunSpec) campaign.Config {
		cfg := campaign.DefaultConfig()
		cfg.Seed = seed
		cfg.Runs = runs
		// Full-rate selector insertion: catalog scenarios are small enough
		// that memory bounding is unnecessary, and full insertion makes the
		// selection counts a direct function of the workload densities.
		cfg.FrameCandidateSubsample = 0.2
		return cfg
	}
	type entry struct {
		name, desc string
		cfg        campaign.Config
	}
	var entries []entry
	add := func(name, desc string, cfg campaign.Config) {
		entries = append(entries, entry{name, desc, cfg})
	}

	// --- topology axis -----------------------------------------------------
	cfg := base(3, campaign.RunSpec{Nodes: 2, Wall: 2 * time.Hour, Count: 1})
	cfg.FrameCandidateSubsample = 0.05
	add("laptop-smoke",
		"smallest useful campaign: one 2-node 2-hour allocation, the §4.5 laptop deployment",
		cfg)

	cfg = campaign.DefaultConfig()
	cfg.Seed = 1
	cfg.Runs = campaign.ScaledRuns(0.05)
	add("paper-sched-5pct",
		"the paper's Table 1 schedule at 5% scale: five allocation shapes, checkpoint-restart across all of them",
		cfg)

	cfg = base(5, campaign.RunSpec{Nodes: 4608, Wall: 20 * time.Minute, Count: 1})
	add("summit-class-burst",
		"one Summit-class 4608-node allocation: matcher and submission-throttle behaviour at full machine width",
		cfg)

	// --- scale-regime axis (mini-MuMMI, arXiv 2507.07352) ------------------
	cfg = base(11, campaign.RunSpec{Nodes: 8, Wall: 6 * time.Hour, Count: 1})
	cfg.Scales = campaign.TwoScale
	add("mini-mummi-two-scale",
		"mini-MuMMI's two-scale CG-AA regime: archived snapshot stream, no continuum job, 8 nodes",
		cfg)

	cfg = base(13, campaign.RunSpec{Nodes: 16, Wall: 4 * time.Hour, Count: 1})
	cfg.Scales = campaign.TwoScale
	cfg.FrameCandidatesPerUs = 203.6
	cfg.FrameCandidateSubsample = 0.3
	add("two-scale-dense-frames",
		"two-scale regime with doubled AA-candidate density and 0.3 subsampling: frame-selector pressure",
		cfg)

	// --- scheduler axis ----------------------------------------------------
	cfg = base(17, campaign.RunSpec{Nodes: 256, Wall: 2 * time.Hour, Count: 1})
	cfg.SchedPolicy = sched.FirstMatch
	cfg.SchedMode = sched.Async
	add("first-match-async",
		"the paper's Flux fix: first-match policy with async queue-matcher coupling, 256 nodes",
		cfg)

	cfg = base(19, campaign.RunSpec{Nodes: 500, Wall: 2 * time.Hour, Count: 1})
	add("sync-exhaustive-stress",
		"the campaign-era scheduler: synchronous exhaustive matching with modeled status load, 500 nodes",
		cfg)

	// --- selection axis ----------------------------------------------------
	cfg = base(31, campaign.RunSpec{Nodes: 64, Wall: 4 * time.Hour, Count: 1})
	cfg.InventoryFraction = 0.02
	add("inventory-lean",
		"near-empty prepared-configuration inventory (2%): the staleness end of the readiness trade-off",
		cfg)

	cfg = base(37, campaign.RunSpec{Nodes: 32, Wall: 6 * time.Hour, Count: 1})
	cfg.PatchQueueCap = 5000
	cfg.FrameBins = 40
	cfg.FrameCandidateSubsample = 0.3
	add("selector-pressure",
		"small patch queues (5k cap) with a fine 40-bin frame selector: eviction and binning churn",
		cfg)

	// --- job-shape / feedback axis -----------------------------------------
	cfg = base(41, campaign.RunSpec{Nodes: 16, Wall: 6 * time.Hour, Count: 1})
	cfg.CGShare = 0.6
	cfg.FeedbackEvery = 10 * time.Minute
	add("feedback-hot",
		"60/40 CG/AA GPU split with a 10-minute Task-4 feedback cadence: feedback-store traffic dominant",
		cfg)

	cfg = base(43, campaign.RunSpec{Nodes: 64, Wall: 4 * time.Hour, Count: 1})
	cfg.FailuresPerDay = 48
	add("failure-resubmit",
		"48 injected job failures/day: the tracker resubmission path with checkpointed progress continuity",
		cfg)

	// --- fault-plan axis ---------------------------------------------------
	cfg = base(23, campaign.RunSpec{Nodes: 32, Wall: 6 * time.Hour, Count: 1})
	cfg.Faults = &faults.Plan{Seed: 23, Rules: []faults.Rule{
		{Class: faults.NodeCrash, Rate: 24, Recovery: 30 * time.Minute},
		{Class: faults.JobHang, Rate: 12},
	}}
	add("chaos-node-storm",
		"node crashes every hour on average plus hung jobs: drain/revive and watchdog under sustained loss",
		cfg)

	cfg = base(29, campaign.RunSpec{Nodes: 8, Wall: 6 * time.Hour, Count: 1})
	cfg.FeedbackEvery = 15 * time.Minute
	cfg.Faults = &faults.Plan{Seed: 29, Rules: []faults.Rule{
		{Class: faults.StoreTransient, Rate: 0.2},
		{Class: faults.StoreLatency, Rate: 0.1, Latency: 2 * time.Second},
		{Class: faults.StorePermanent, Rate: 0.02},
	}}
	add("chaos-store-flaky",
		"flaky feedback store (20% transient, 2% permanent) under a 15-minute feedback cadence: armor retry path",
		cfg)

	cfg = base(7, campaign.RunSpec{Nodes: 16, Wall: 4 * time.Hour, Count: 1})
	cfg.FeedbackEvery = 30 * time.Minute
	cfg.Faults = faults.AggressivePlan(7)
	add("chaos-full-stack",
		"every fault class at the CI chaos-smoke rates, including WM crash-restart with the conservation assert",
		cfg)

	// --- distributed-WM fleet axis -----------------------------------------
	cfg = base(47, campaign.RunSpec{Nodes: 8, Wall: 6 * time.Hour, Count: 1})
	cfg.WMInstances = 3
	cfg.FeedbackEvery = 30 * time.Minute
	cfg.Faults = &faults.Plan{Seed: 47, Rules: []faults.Rule{
		{Class: faults.WMCrash, Rate: 8, Instance: 1},
	}}
	add("wm-fleet-adopt",
		"three-instance WM fleet with instance 1 pinned as the crash victim: one clean crash-and-adopt cycle through the lease table",
		cfg)

	cfg = base(53, campaign.RunSpec{Nodes: 16, Wall: 6 * time.Hour, Count: 1})
	cfg.WMInstances = 3
	cfg.FeedbackEvery = 15 * time.Minute
	cfg.Faults = &faults.Plan{Seed: 53, Rules: []faults.Rule{
		{Class: faults.WMCrash, Rate: 8},
		{Class: faults.StoreTransient, Rate: 0.2},
		{Class: faults.NodeCrash, Rate: 12, Recovery: 30 * time.Minute},
	}}
	add("wm-fleet-chaos",
		"three-instance WM fleet under random instance crashes, node loss, and a flaky store: lease renewal and adoption through the armor",
		cfg)

	out := make([]*Trace, 0, len(entries))
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.name] {
			return nil, fmt.Errorf("trace: duplicate catalog scenario %q", e.name)
		}
		seen[e.name] = true
		t, err := FromConfig(e.name, e.desc, e.cfg)
		if err != nil {
			return nil, fmt.Errorf("trace: catalog scenario %q: %w", e.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

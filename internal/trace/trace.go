// Package trace is the workload-trace layer: a versioned JSON
// workflow-instance format, in the spirit of WfCommons (arXiv 2105.14352),
// that makes every campaign a portable artifact instead of a
// hand-configured Go struct. A trace records everything that determines a
// replay — topology, scale regime, workload densities, selection knobs,
// scheduler configuration, fault plan, and seed — so a campaign can be
// exported, committed, diffed, imported, and replayed byte-identically on
// any machine.
//
// The codec is canonical: Marshal always produces the same bytes for the
// same trace, and Export→Import→Export round-trips byte-identically. Parse
// is strict (unknown fields and unknown schema versions are rejected), so
// a trace file is either exactly understood or refused.
//
// The package also ships a deterministic seeded generator (gen.go) that
// sweeps topology from laptop to Summit-class, both scale regimes,
// scheduler and selector choices, job-shape mixes, and fault plans — and a
// named-scenario catalog (catalog.go) whose committed instances under
// scenarios/ form the repo's regression-gated scenario matrix (see
// docs/SCENARIOS.md).
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/faults"
	"mummi/internal/sched"
	"mummi/internal/units"
)

// Schema is the trace-format identifier embedded in every instance. The
// compatibility rule is strict: a parser understands exactly one version,
// and any change to the field set — even an addition — bumps it (see
// docs/SCENARIOS.md, "Versioning"). One documented exception: the
// distributed-WM fleet work extended v1 in place with the required
// "coordination" section and the fault-rule "instance" field, and every
// committed scenario was regenerated in the same change — pre-extension
// v1 documents are rejected by Validate (missing coordination section)
// rather than silently replayed with a different meaning.
const Schema = "mummi-trace/v1"

// schemaFamily prefixes every version of the format; Parse uses it to
// distinguish "newer trace version" from "not a trace at all".
const schemaFamily = "mummi-trace/"

// Span is a time.Duration that marshals as a Go duration string ("6h0m0s")
// so traces stay human-readable and diffable. Unmarshal accepts any string
// time.ParseDuration does; Marshal always writes the canonical
// time.Duration.String() form.
type Span time.Duration

// MarshalJSON writes the canonical duration string.
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(s).String())
}

// UnmarshalJSON parses a Go duration string.
func (s *Span) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return fmt.Errorf("duration must be a string like \"6h\": %w", err)
	}
	d, err := time.ParseDuration(str)
	if err != nil {
		return err
	}
	*s = Span(d)
	return nil
}

// RunShape is one topology row: Count allocations of Nodes nodes for Wall
// each (the Table 1 row shape).
type RunShape struct {
	// Nodes is the allocation's node count.
	Nodes int `json:"nodes"`
	// Wall is the allocation's wall-clock duration.
	Wall Span `json:"wall"`
	// Count is how many allocations of this shape run.
	Count int `json:"count"`
}

// ScaleSpec records the scale regime and the coupling split.
type ScaleSpec struct {
	// Mode is the scale regime: "three-scale" (continuum→CG→AA) or
	// "two-scale" (mini-MuMMI CG↔AA over an archived snapshot stream).
	Mode string `json:"mode"`
	// CGShare is the fraction of GPUs assigned to CG simulations.
	CGShare float64 `json:"cg_share"`
	// FeedbackEvery is the Task-4 feedback cadence; "0s" disables the
	// modeled feedback loops.
	FeedbackEvery Span `json:"feedback_every"`
}

// WorkloadSpec records the stochastic workload densities — the job-shape
// mix of the campaign.
type WorkloadSpec struct {
	// PatchesPerSnapshot is the patch yield of one continuum snapshot.
	PatchesPerSnapshot int `json:"patches_per_snapshot"`
	// FrameCandidatesPerUs is the AA-candidate yield per µs of CG trajectory.
	FrameCandidatesPerUs float64 `json:"frame_candidates_per_us"`
	// FrameCandidateSubsample thins the candidates inserted into the frame
	// selector (accounting reports full counts).
	FrameCandidateSubsample float64 `json:"frame_candidate_subsample"`
	// RetireMeanCGFs is the CG retirement-hazard mean in femtoseconds of
	// simulated time (exact integer encoding of units.SimTime).
	RetireMeanCGFs int64 `json:"retire_mean_cg_fs"`
	// RetireMeanAAFs is the AA retirement-hazard mean in femtoseconds.
	RetireMeanAAFs int64 `json:"retire_mean_aa_fs"`
	// MPIBugFraction is the fraction of campaign wall-time spent in the
	// miscompiled-MPI era (CG ~20% slow). Must be > 0; use a tiny value
	// (e.g. 1e-9) to effectively disable the era.
	MPIBugFraction float64 `json:"mpi_bug_fraction"`
	// FailuresPerDay injects random simulation-job failures (expected count
	// per day across the machine); 0 disables injection.
	FailuresPerDay float64 `json:"failures_per_day"`
}

// SelectionSpec records the dynamic-importance selection configuration.
type SelectionSpec struct {
	// InventoryFraction sizes the prepared-configuration inventory as a
	// fraction of each coupling's simulation slots.
	InventoryFraction float64 `json:"inventory_fraction"`
	// PatchQueueCap caps each patch-selector queue.
	PatchQueueCap int `json:"patch_queue_cap"`
	// FrameBins is the per-dimension bin count of the frame selector.
	FrameBins int `json:"frame_bins"`
	// SelectorWorkers sizes the rank-update fan-out (0 = GOMAXPROCS). It is
	// non-semantic: selection sequences are identical for every value, so
	// it only tunes replay wall-clock on the importing machine.
	SelectorWorkers int `json:"selector_workers"`
}

// SchedulerSpec records the scheduler configuration and its time model.
type SchedulerSpec struct {
	// Policy is the matching policy: "low-id-exhaustive" or "first-match".
	Policy string `json:"policy"`
	// Mode is the Q↔R communication mode: "sync" or "async".
	Mode string `json:"mode"`
	// SubmitPerMinute is the maestro submission throttle.
	SubmitPerMinute int `json:"submit_per_minute"`
	// PollEvery is the workflow manager's job-scan cadence.
	PollEvery Span `json:"poll_every"`
	// ProfileEvery is the occupancy profiler's cadence.
	ProfileEvery Span `json:"profile_every"`
	// SubmitMsgCost is the modeled cost of one submission message.
	SubmitMsgCost Span `json:"submit_msg_cost"`
	// StatusMsgCost is the modeled cost of one status message.
	StatusMsgCost Span `json:"status_msg_cost"`
	// VertexVisitCost is the modeled cost of one matcher vertex visit.
	VertexVisitCost Span `json:"vertex_visit_cost"`
	// ModelStatusLoad enables the Q-side status-poll load model.
	ModelStatusLoad bool `json:"model_status_load"`
}

// CoordinationSpec records the coordination-layer topology: how many
// workflow-manager instances share the campaign.
type CoordinationSpec struct {
	// WMInstances is the workflow-manager fleet size (>= 1). At 1 the
	// classic single-WM loop runs; above 1 the couplings are spread across
	// a lease-coordinated fleet (internal/wmfleet).
	WMInstances int `json:"wm_instances"`
}

// FaultRule enables one fault class (see internal/faults for semantics).
type FaultRule struct {
	// Class is the fault class name (one of faults.Classes).
	Class string `json:"class"`
	// Rate is a per-operation probability (store classes) or expected
	// events per day (timed classes).
	Rate float64 `json:"rate"`
	// Instance pins a wm-crash rule to one WM instance (1-based); zero
	// picks a random live instance per injection.
	Instance int `json:"instance,omitempty"`
	// Start/End bound the injection window; zero End leaves it open.
	Start Span `json:"start,omitempty"`
	// End closes the injection window.
	End Span `json:"end,omitempty"`
	// Latency is the modeled delay of a store-latency-spike hit.
	Latency Span `json:"latency,omitempty"`
	// Recovery is how long a crashed node stays drained.
	Recovery Span `json:"recovery,omitempty"`
}

// FaultSpec is the trace encoding of a faults.Plan.
type FaultSpec struct {
	// Seed drives the fault engine's random draws; 0 inherits the trace
	// seed on import.
	Seed int64 `json:"seed"`
	// Rules lists the enabled fault classes.
	Rules []FaultRule `json:"rules"`
}

// Trace is one workflow instance: everything that determines a campaign
// replay, as portable data.
type Trace struct {
	// Schema is the format version; always the package Schema constant.
	Schema string `json:"schema"`
	// Name identifies the scenario ([a-z0-9-], used as the file stem).
	Name string `json:"name"`
	// Description says what the scenario stresses.
	Description string `json:"description,omitempty"`
	// Seed is the campaign seed every random draw derives from.
	Seed int64 `json:"seed"`
	// Topology lists the allocation schedule.
	Topology []RunShape `json:"topology"`
	// Scales records the scale regime.
	Scales ScaleSpec `json:"scales"`
	// Workload records the stochastic densities.
	Workload WorkloadSpec `json:"workload"`
	// Selection records the selector configuration.
	Selection SelectionSpec `json:"selection"`
	// Scheduler records the scheduler configuration.
	Scheduler SchedulerSpec `json:"scheduler"`
	// Coordination records the WM fleet size.
	Coordination CoordinationSpec `json:"coordination"`
	// FaultPlan, when present, runs the campaign as a chaos replay.
	FaultPlan *FaultSpec `json:"fault_plan,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// FromConfig exports a campaign configuration as a trace. The config is
// normalized through campaign.Config.WithDefaults first, so the trace
// records the effective value of every knob — a trace never depends on
// what the defaults happen to be when it is read back.
func FromConfig(name, description string, cfg campaign.Config) (*Trace, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("trace: bad name %q (want [a-z0-9-], starting with [a-z0-9])", name)
	}
	cfg = cfg.WithDefaults()
	t := &Trace{
		Schema:      Schema,
		Name:        name,
		Description: description,
		Seed:        cfg.Seed,
		Scales: ScaleSpec{
			Mode:          string(cfg.Scales),
			CGShare:       cfg.CGShare,
			FeedbackEvery: Span(cfg.FeedbackEvery),
		},
		Workload: WorkloadSpec{
			PatchesPerSnapshot:      cfg.PatchesPerSnapshot,
			FrameCandidatesPerUs:    cfg.FrameCandidatesPerUs,
			FrameCandidateSubsample: cfg.FrameCandidateSubsample,
			RetireMeanCGFs:          cfg.RetireMeanCG.Femtoseconds(),
			RetireMeanAAFs:          cfg.RetireMeanAA.Femtoseconds(),
			MPIBugFraction:          cfg.MPIBugFraction,
			FailuresPerDay:          cfg.FailuresPerDay,
		},
		Selection: SelectionSpec{
			InventoryFraction: cfg.InventoryFraction,
			PatchQueueCap:     cfg.PatchQueueCap,
			FrameBins:         cfg.FrameBins,
			SelectorWorkers:   cfg.SelectorWorkers,
		},
		Scheduler: SchedulerSpec{
			Policy:          cfg.SchedPolicy.String(),
			Mode:            cfg.SchedMode.String(),
			SubmitPerMinute: cfg.SubmitPerMinute,
			PollEvery:       Span(cfg.PollEvery),
			ProfileEvery:    Span(cfg.ProfileEvery),
			SubmitMsgCost:   Span(cfg.SchedCosts.SubmitMsg),
			StatusMsgCost:   Span(cfg.SchedCosts.StatusMsg),
			VertexVisitCost: Span(cfg.SchedCosts.VertexVisit),
			ModelStatusLoad: cfg.ModelStatusLoad,
		},
		Coordination: CoordinationSpec{WMInstances: cfg.WMInstances},
	}
	for _, r := range cfg.Runs {
		t.Topology = append(t.Topology, RunShape{Nodes: r.Nodes, Wall: Span(r.Wall), Count: r.Count})
	}
	if cfg.Faults != nil {
		fp := &FaultSpec{Seed: cfg.Faults.Seed}
		for _, r := range cfg.Faults.Rules {
			fp.Rules = append(fp.Rules, FaultRule{
				Class: string(r.Class), Rate: r.Rate, Instance: r.Instance,
				Start: Span(r.Start), End: Span(r.End),
				Latency: Span(r.Latency), Recovery: Span(r.Recovery),
			})
		}
		t.FaultPlan = fp
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Config converts the trace back into the campaign configuration it
// records. The result carries no runtime attachments (telemetry, heartbeat,
// timeline capture); callers wire those afterwards. The conversion is the
// exact inverse of FromConfig: Config(FromConfig(cfg)) equals
// cfg.WithDefaults() field for field.
func (t *Trace) Config() (campaign.Config, error) {
	if err := t.Validate(); err != nil {
		return campaign.Config{}, err
	}
	cfg := campaign.Config{
		Seed:                    t.Seed,
		Scales:                  campaign.ScaleMode(t.Scales.Mode),
		CGShare:                 t.Scales.CGShare,
		FeedbackEvery:           time.Duration(t.Scales.FeedbackEvery),
		PatchesPerSnapshot:      t.Workload.PatchesPerSnapshot,
		FrameCandidatesPerUs:    t.Workload.FrameCandidatesPerUs,
		FrameCandidateSubsample: t.Workload.FrameCandidateSubsample,
		RetireMeanCG:            units.SimTime(t.Workload.RetireMeanCGFs),
		RetireMeanAA:            units.SimTime(t.Workload.RetireMeanAAFs),
		MPIBugFraction:          t.Workload.MPIBugFraction,
		FailuresPerDay:          t.Workload.FailuresPerDay,
		InventoryFraction:       t.Selection.InventoryFraction,
		PatchQueueCap:           t.Selection.PatchQueueCap,
		FrameBins:               t.Selection.FrameBins,
		SelectorWorkers:         t.Selection.SelectorWorkers,
		SubmitPerMinute:         t.Scheduler.SubmitPerMinute,
		PollEvery:               time.Duration(t.Scheduler.PollEvery),
		ProfileEvery:            time.Duration(t.Scheduler.ProfileEvery),
		SchedCosts: sched.Costs{
			SubmitMsg:   time.Duration(t.Scheduler.SubmitMsgCost),
			StatusMsg:   time.Duration(t.Scheduler.StatusMsgCost),
			VertexVisit: time.Duration(t.Scheduler.VertexVisitCost),
		},
		ModelStatusLoad: t.Scheduler.ModelStatusLoad,
		WMInstances:     t.Coordination.WMInstances,
	}
	for _, r := range t.Topology {
		cfg.Runs = append(cfg.Runs, campaign.RunSpec{
			Nodes: r.Nodes, Wall: time.Duration(r.Wall), Count: r.Count,
		})
	}
	switch t.Scheduler.Policy {
	case sched.LowIDExhaustive.String():
		cfg.SchedPolicy = sched.LowIDExhaustive
	case sched.FirstMatch.String():
		cfg.SchedPolicy = sched.FirstMatch
	}
	switch t.Scheduler.Mode {
	case sched.Sync.String():
		cfg.SchedMode = sched.Sync
	case sched.Async.String():
		cfg.SchedMode = sched.Async
	}
	if t.FaultPlan != nil {
		plan := &faults.Plan{Seed: t.FaultPlan.Seed}
		for _, r := range t.FaultPlan.Rules {
			plan.Rules = append(plan.Rules, faults.Rule{
				Class: faults.Class(r.Class), Rate: r.Rate, Instance: r.Instance,
				Start: time.Duration(r.Start), End: time.Duration(r.End),
				Latency: time.Duration(r.Latency), Recovery: time.Duration(r.Recovery),
			})
		}
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		cfg.Faults = plan
	}
	return cfg, nil
}

// Validate checks the trace for internal consistency: name shape, schema
// version, topology sanity, regime and scheduler enums, workload ranges,
// and the fault plan (via faults.Plan.Validate). Every field a replay
// consults must be explicitly positive — a trace records effective values,
// never "zero means default".
func (t *Trace) Validate() error {
	if t.Schema != Schema {
		return fmt.Errorf("trace: schema %q (this build reads %q)", t.Schema, Schema)
	}
	if !nameRE.MatchString(t.Name) {
		return fmt.Errorf("trace: bad name %q (want [a-z0-9-], starting with [a-z0-9])", t.Name)
	}
	if len(t.Topology) == 0 {
		return fmt.Errorf("trace %s: empty topology", t.Name)
	}
	for i, r := range t.Topology {
		if r.Nodes < 2 {
			return fmt.Errorf("trace %s: topology[%d]: nodes %d < 2", t.Name, i, r.Nodes)
		}
		if r.Wall <= 0 {
			return fmt.Errorf("trace %s: topology[%d]: non-positive wall", t.Name, i)
		}
		if r.Count < 1 {
			return fmt.Errorf("trace %s: topology[%d]: count %d < 1", t.Name, i, r.Count)
		}
	}
	if !campaign.ScaleMode(t.Scales.Mode).Valid() {
		return fmt.Errorf("trace %s: unknown scale mode %q", t.Name, t.Scales.Mode)
	}
	if t.Scales.CGShare <= 0 || t.Scales.CGShare > 1 {
		return fmt.Errorf("trace %s: cg_share %g outside (0, 1]", t.Name, t.Scales.CGShare)
	}
	if t.Scales.FeedbackEvery < 0 {
		return fmt.Errorf("trace %s: negative feedback_every", t.Name)
	}
	w := t.Workload
	switch {
	case w.PatchesPerSnapshot < 1:
		return fmt.Errorf("trace %s: patches_per_snapshot %d < 1", t.Name, w.PatchesPerSnapshot)
	case w.FrameCandidatesPerUs <= 0:
		return fmt.Errorf("trace %s: non-positive frame_candidates_per_us", t.Name)
	case w.FrameCandidateSubsample <= 0 || w.FrameCandidateSubsample > 1:
		return fmt.Errorf("trace %s: frame_candidate_subsample %g outside (0, 1]", t.Name, w.FrameCandidateSubsample)
	case w.RetireMeanCGFs <= 0 || w.RetireMeanAAFs <= 0:
		return fmt.Errorf("trace %s: non-positive retirement mean", t.Name)
	case w.MPIBugFraction <= 0 || w.MPIBugFraction > 1:
		return fmt.Errorf("trace %s: mpi_bug_fraction %g outside (0, 1]", t.Name, w.MPIBugFraction)
	case w.FailuresPerDay < 0:
		return fmt.Errorf("trace %s: negative failures_per_day", t.Name)
	}
	sel := t.Selection
	switch {
	case sel.InventoryFraction <= 0 || sel.InventoryFraction > 1:
		return fmt.Errorf("trace %s: inventory_fraction %g outside (0, 1]", t.Name, sel.InventoryFraction)
	case sel.PatchQueueCap < 1:
		return fmt.Errorf("trace %s: patch_queue_cap %d < 1", t.Name, sel.PatchQueueCap)
	case sel.FrameBins < 1:
		return fmt.Errorf("trace %s: frame_bins %d < 1", t.Name, sel.FrameBins)
	case sel.SelectorWorkers < 0:
		return fmt.Errorf("trace %s: negative selector_workers", t.Name)
	}
	sc := t.Scheduler
	if sc.Policy != sched.LowIDExhaustive.String() && sc.Policy != sched.FirstMatch.String() {
		return fmt.Errorf("trace %s: unknown scheduler policy %q", t.Name, sc.Policy)
	}
	if sc.Mode != sched.Sync.String() && sc.Mode != sched.Async.String() {
		return fmt.Errorf("trace %s: unknown scheduler mode %q", t.Name, sc.Mode)
	}
	if sc.SubmitPerMinute < 1 {
		return fmt.Errorf("trace %s: submit_per_minute %d < 1", t.Name, sc.SubmitPerMinute)
	}
	if sc.PollEvery <= 0 || sc.ProfileEvery <= 0 {
		return fmt.Errorf("trace %s: non-positive poll_every/profile_every", t.Name)
	}
	if sc.SubmitMsgCost < 0 || sc.StatusMsgCost < 0 || sc.VertexVisitCost < 0 {
		return fmt.Errorf("trace %s: negative scheduler cost", t.Name)
	}
	if sc.SubmitMsgCost == 0 && sc.StatusMsgCost == 0 && sc.VertexVisitCost == 0 {
		return fmt.Errorf("trace %s: all scheduler costs zero (campaign would re-default them)", t.Name)
	}
	if t.Coordination.WMInstances < 1 {
		return fmt.Errorf("trace %s: wm_instances %d < 1 (a trace records effective values; pre-extension v1 documents must be regenerated)",
			t.Name, t.Coordination.WMInstances)
	}
	if t.FaultPlan != nil {
		plan := faults.Plan{Seed: t.FaultPlan.Seed}
		for _, r := range t.FaultPlan.Rules {
			plan.Rules = append(plan.Rules, faults.Rule{
				Class: faults.Class(r.Class), Rate: r.Rate, Instance: r.Instance,
				Start: time.Duration(r.Start), End: time.Duration(r.End),
				Latency: time.Duration(r.Latency), Recovery: time.Duration(r.Recovery),
			})
		}
		if err := plan.Validate(); err != nil {
			return fmt.Errorf("trace %s: fault plan: %w", t.Name, err)
		}
	}
	return nil
}

// Marshal renders the trace in canonical form: two-space indented JSON
// with a trailing newline, fields in declaration order, durations in
// time.Duration.String() form. Equal traces always marshal to equal bytes,
// which is what makes committed scenario files diffable and the
// Export→Import→Export round-trip byte-identical.
func (t *Trace) Marshal() ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes and validates a trace document. It is strict: unknown
// fields are rejected (a field this build does not understand could change
// the replay), as is any schema version other than the package's own —
// including newer versions of the family, which get a distinct error so
// the operator knows to upgrade rather than to suspect corruption.
func Parse(data []byte) (*Trace, error) {
	// Peek at the schema with a lenient decode first, so version mismatch
	// is reported as such instead of as an unknown-field error.
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("trace: not a JSON trace: %w", err)
	}
	if head.Schema != Schema {
		if len(head.Schema) >= len(schemaFamily) && head.Schema[:len(schemaFamily)] == schemaFamily {
			return nil, fmt.Errorf("trace: schema %q is a different trace version (this build reads %q)",
				head.Schema, Schema)
		}
		return nil, fmt.Errorf("trace: schema %q is not a %s* trace", head.Schema, schemaFamily)
	}
	var t Trace
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: bad document: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trace: trailing data after document")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/faults"
	"mummi/internal/sched"
)

// testConfig is a small hand-built campaign with every axis exercised,
// including a fault plan.
func testConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	cfg.Seed = 7
	cfg.Runs = []campaign.RunSpec{{Nodes: 4, Wall: 3 * time.Hour, Count: 2}}
	cfg.Scales = campaign.TwoScale
	cfg.CGShare = 0.6
	cfg.FeedbackEvery = 20 * time.Minute
	cfg.FrameCandidateSubsample = 0.1
	cfg.SchedPolicy = sched.FirstMatch
	cfg.SchedMode = sched.Async
	cfg.Faults = &faults.Plan{Seed: 9, Rules: []faults.Rule{
		{Class: faults.StoreTransient, Rate: 0.1},
		{Class: faults.NodeCrash, Rate: 3, Recovery: time.Hour, Start: time.Hour},
	}}
	return cfg
}

func TestExportImportExportByteIdentical(t *testing.T) {
	traces, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	extra, err := FromConfig("hand-built", "round-trip fixture", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	traces = append(traces, extra)
	for _, tr := range traces {
		b1, err := tr.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", tr.Name, err)
		}
		parsed, err := Parse(b1)
		if err != nil {
			t.Fatalf("%s: parse own output: %v", tr.Name, err)
		}
		b2, err := parsed.Marshal()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", tr.Name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: export->import->export not byte-identical", tr.Name)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := testConfig()
	tr, err := FromConfig("hand-built", "round-trip fixture", cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.WithDefaults()
	// A trace records only replay semantics; the runtime attachments a
	// Config can carry (telemetry, heartbeat, timeline capture) are wired by
	// the importer and come back zero.
	want.KeepTimelines = false
	want.Telemetry = nil
	want.HeartbeatEvery = 0
	want.HeartbeatWriter = nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Config round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestParseRejectsOtherSchemaVersions(t *testing.T) {
	tr, err := FromConfig("fixture", "", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	v2 := bytes.Replace(b, []byte(`"mummi-trace/v1"`), []byte(`"mummi-trace/v2"`), 1)
	if _, err := Parse(v2); err == nil {
		t.Fatal("v2 trace accepted by a v1 parser")
	} else if !strings.Contains(err.Error(), "different trace version") {
		t.Errorf("v2 rejection should name the version mismatch, got: %v", err)
	}

	alien := bytes.Replace(b, []byte(`"mummi-trace/v1"`), []byte(`"wfcommons/1.4"`), 1)
	if _, err := Parse(alien); err == nil {
		t.Fatal("non-mummi schema accepted")
	} else if strings.Contains(err.Error(), "different trace version") {
		t.Errorf("foreign schema should not be reported as a version mismatch: %v", err)
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	tr, err := FromConfig("fixture", "", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	unknown := bytes.Replace(b, []byte(`"seed"`), []byte(`"surprise": 1, "seed"`), 1)
	if _, err := Parse(unknown); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse(append(append([]byte{}, b...), []byte("{}")...)); err == nil {
		t.Error("trailing document accepted")
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	mutations := map[string]func(*Trace){
		"bad name":            func(tr *Trace) { tr.Name = "Bad Name" },
		"empty topology":      func(tr *Trace) { tr.Topology = nil },
		"one node":            func(tr *Trace) { tr.Topology[0].Nodes = 1 },
		"zero wall":           func(tr *Trace) { tr.Topology[0].Wall = 0 },
		"zero count":          func(tr *Trace) { tr.Topology[0].Count = 0 },
		"bad scale mode":      func(tr *Trace) { tr.Scales.Mode = "four-scale" },
		"zero cg share":       func(tr *Trace) { tr.Scales.CGShare = 0 },
		"zero subsample":      func(tr *Trace) { tr.Workload.FrameCandidateSubsample = 0 },
		"zero mpi fraction":   func(tr *Trace) { tr.Workload.MPIBugFraction = 0 },
		"zero retire mean":    func(tr *Trace) { tr.Workload.RetireMeanCGFs = 0 },
		"bad policy":          func(tr *Trace) { tr.Scheduler.Policy = "best-fit" },
		"bad mode":            func(tr *Trace) { tr.Scheduler.Mode = "half-duplex" },
		"zero poll":           func(tr *Trace) { tr.Scheduler.PollEvery = 0 },
		"all costs zero":      func(tr *Trace) { tr.Scheduler.SubmitMsgCost = 0; tr.Scheduler.StatusMsgCost = 0; tr.Scheduler.VertexVisitCost = 0 },
		"bad fault class":     func(tr *Trace) { tr.FaultPlan.Rules[0].Class = "meteor-strike" },
		"zero inventory frac": func(tr *Trace) { tr.Selection.InventoryFraction = 0 },
	}
	for name, mutate := range mutations {
		tr, err := FromConfig("fixture", "", testConfig())
		if err != nil {
			t.Fatal(err)
		}
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the broken trace", name)
		}
	}
}

func TestCatalogShape(t *testing.T) {
	traces, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) < 12 {
		t.Fatalf("catalog has %d scenarios, want >= 12", len(traces))
	}
	seen := map[string]bool{}
	var twoScale, faulty bool
	for _, tr := range traces {
		if seen[tr.Name] {
			t.Errorf("duplicate scenario name %q", tr.Name)
		}
		seen[tr.Name] = true
		if tr.Description == "" {
			t.Errorf("%s: catalog scenarios must say what they stress", tr.Name)
		}
		if tr.Scales.Mode == string(campaign.TwoScale) {
			twoScale = true
		}
		if tr.FaultPlan != nil {
			faulty = true
		}
	}
	if !twoScale {
		t.Error("catalog covers no two-scale scenario")
	}
	if !faulty {
		t.Error("catalog covers no fault-plan scenario")
	}
}

// TestCommittedScenariosMatchCatalog pins the files under scenarios/ to the
// catalog's output: the committed scenario set is exactly Catalog(),
// byte-for-byte (run `make scenarios` after editing catalog.go).
func TestCommittedScenariosMatchCatalog(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	traces, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for _, tr := range traces {
		b, err := tr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		want[tr.Name+".trace.json"] = b
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s (run `make scenarios`?): %v", dir, err)
	}
	committed := map[string]bool{}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".trace.json") {
			continue
		}
		committed[e.Name()] = true
		wantB, ok := want[e.Name()]
		if !ok {
			t.Errorf("%s is committed but not in the catalog", e.Name())
			continue
		}
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantB) {
			t.Errorf("%s diverges from the catalog (run `make scenarios`)", e.Name())
		}
	}
	for name := range want {
		if !committed[name] {
			t.Errorf("catalog scenario %s is not committed (run `make scenarios`)", name)
		}
	}
}

package trace

import (
	"bytes"
	"testing"
)

// FuzzParse checks the strict-parse invariant on arbitrary input: Parse
// either rejects a document or accepts one whose canonical re-encoding
// parses back to the same bytes (accept ⇒ idempotent round trip).
func FuzzParse(f *testing.F) {
	traces, err := Catalog()
	if err != nil {
		f.Fatal(err)
	}
	for _, tr := range traces {
		b, err := tr.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"mummi-trace/v2"}`))
	f.Add([]byte(`{"schema":"mummi-trace/v1","name":"x"}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(data)
		if err != nil {
			return
		}
		b1, err := tr.Marshal()
		if err != nil {
			t.Fatalf("accepted trace does not marshal: %v", err)
		}
		tr2, err := Parse(b1)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v", err)
		}
		b2, err := tr2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("canonical encoding is not a fixed point of parse->marshal")
		}
	})
}

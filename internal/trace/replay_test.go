package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"mummi/internal/campaign"
	"mummi/internal/telemetry"
)

// runWithMetrics replays cfg with a fresh telemetry registry attached and
// returns the result's JSON and the metrics snapshot's JSON.
func runWithMetrics(t *testing.T, cfg campaign.Config) ([]byte, []byte) {
	t.Helper()
	tel := telemetry.New(telemetry.Options{})
	cfg.Telemetry = tel
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := tel.Registry().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return resJSON, metrics
}

// TestImportedTraceReplaysHandConfig is the replay-equivalence gate: a
// campaign configured by hand and the same campaign round-tripped through
// export→import produce byte-identical results and metrics snapshots.
func TestImportedTraceReplaysHandConfig(t *testing.T) {
	cfg := campaign.DefaultConfig()
	cfg.Seed = 3
	cfg.Runs = []campaign.RunSpec{{Nodes: 2, Wall: 2 * time.Hour, Count: 1}}
	cfg.FrameCandidateSubsample = 0.05
	cfg.FeedbackEvery = 30 * time.Minute
	// A trace carries no timeline-capture attachment, so the hand config
	// must replay without it too for the comparison to be meaningful.
	cfg.KeepTimelines = false

	tr, err := FromConfig("equivalence", "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	imported, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	importedCfg, err := imported.Config()
	if err != nil {
		t.Fatal(err)
	}

	wantRes, wantMetrics := runWithMetrics(t, cfg)
	gotRes, gotMetrics := runWithMetrics(t, importedCfg)
	if !bytes.Equal(wantRes, gotRes) {
		t.Errorf("imported replay result diverged from hand-configured replay:\nhand:     %s\nimported: %s",
			wantRes, gotRes)
	}
	if !bytes.Equal(wantMetrics, gotMetrics) {
		t.Error("imported replay metrics snapshot diverged from hand-configured replay")
	}
}

// TestTwoScaleReplay pins the two-scale regime's semantics: deterministic
// across replays, snapshots still streamed, and no continuum accounting
// (no continuum job runs in the mini-MuMMI stack).
func TestTwoScaleReplay(t *testing.T) {
	cfg := campaign.DefaultConfig()
	cfg.Seed = 11
	cfg.Runs = []campaign.RunSpec{{Nodes: 8, Wall: 6 * time.Hour, Count: 1}}
	cfg.Scales = campaign.TwoScale
	cfg.FrameCandidateSubsample = 0.2
	cfg.KeepTimelines = false

	res1, m1 := runWithMetrics(t, cfg)
	res2, m2 := runWithMetrics(t, cfg)
	if !bytes.Equal(res1, res2) || !bytes.Equal(m1, m2) {
		t.Fatal("two-scale replay is not deterministic")
	}

	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots == 0 {
		t.Error("two-scale replay streamed no archived snapshots")
	}
	if res.ContinuumTotal != 0 {
		t.Errorf("two-scale replay accumulated continuum time %v; no continuum job should run", res.ContinuumTotal)
	}
	if res.Patches == 0 || res.CGSelected == 0 {
		t.Errorf("two-scale replay should still drive CG selection (patches %d, selected %d)",
			res.Patches, res.CGSelected)
	}
}

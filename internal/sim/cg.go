package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"mummi/internal/units"
)

// RDFBins is the number of radial bins in each protein-lipid RDF histogram.
const RDFBins = 20

// CGFrame is what the on-node CG analysis extracts from each trajectory
// snapshot (§4.1(3)): protein-lipid RDFs for the CG→continuum feedback, and
// the 3-D conformational coordinates (tilt, rotation, depth) that encode
// RAS-RAF state for AA frame selection.
type CGFrame struct {
	SimID string `json:"sim"`
	Index int    `json:"idx"`
	// TimeFs is the frame's position in the trajectory.
	TimeFs int64 `json:"t_fs"`
	// State is the protein configuration (continuum state id).
	State int `json:"state"`
	// RDF[species][bin] is the protein-lipid radial distribution function.
	RDF [][]float32 `json:"rdf"`
	// Tilt, Rotation, Depth are the conformational coordinates.
	Tilt     float64 `json:"tilt"`
	Rotation float64 `json:"rot"`
	Depth    float64 `json:"depth"`
}

// ID returns the frame's campaign-unique key.
func (f *CGFrame) ID() string { return fmt.Sprintf("%s_f%06d", f.SimID, f.Index) }

// Marshal serializes the analysis output for the data interface.
func (f *CGFrame) Marshal() ([]byte, error) { return json.Marshal(f) }

// UnmarshalCGFrame decodes a frame.
func UnmarshalCGFrame(b []byte) (*CGFrame, error) {
	var f CGFrame
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("sim: corrupt CG frame: %w", err)
	}
	return &f, nil
}

// IdentInfo returns the minimal identifying record (~850 B in the paper)
// that distributed CG analysis forwards to the workflow manager instead of
// whole frames — "minimal and sufficient for the downstream tasks".
func (f *CGFrame) IdentInfo() []byte {
	rec := struct {
		ID    string    `json:"id"`
		State int       `json:"state"`
		Enc   []float64 `json:"enc"`
	}{f.ID(), f.State, []float64{f.Tilt, f.Rotation, f.Depth}}
	b, _ := json.Marshal(rec) //lint:allow errdiscipline -- marshal of a plain struct of strings and floats cannot fail
	// Pad to the published record size so data-volume accounting matches.
	if pad := int(CGFrameIdentBytes) - len(b); pad > 0 {
		b = append(b, bytes.Repeat([]byte{' '}, pad)...)
	}
	return b
}

// CGSim generates the analysis stream of one coarse-grained simulation:
// every frame advances the RAS-RAF conformational coordinates by a bounded
// random walk and re-samples RDFs around a per-simulation lipid fingerprint,
// seeded so a restarted campaign replays identically.
type CGSim struct {
	id       string
	species  int
	state    int
	rng      *rand.Rand
	tilt     float64
	rotation float64
	depth    float64
	// fingerprint shapes this simulation's RDFs: the lipid environment the
	// patch was cut from.
	fingerprint []float64
	frame       int
	simTime     units.SimTime
	// FrameInterval is the simulated time between analyzed frames: ddcMD's
	// 4.6 MB/41.5 s cadence at 1.04 µs/day is ~0.5 ns of trajectory per
	// frame.
	FrameInterval units.SimTime
}

// NewCGSim creates the generator. species is the lipid species count
// (couplings fed back to the continuum must match it); state routes the
// feedback aggregation; fingerprint (length species, may be nil) biases the
// RDFs like the source patch's lipid environment would.
func NewCGSim(id string, species, state int, fingerprint []float64, seed int64) *CGSim {
	rng := rand.New(rand.NewSource(seed))
	fp := make([]float64, species)
	for i := range fp {
		if i < len(fingerprint) {
			fp[i] = fingerprint[i]
		} else {
			fp[i] = 0.5
		}
	}
	return &CGSim{
		id: id, species: species, state: state, rng: rng,
		tilt:          rng.Float64() * 180,
		rotation:      rng.Float64() * 360,
		depth:         rng.NormFloat64(),
		fingerprint:   fp,
		FrameInterval: 500 * units.Picosecond,
	}
}

// ID returns the simulation id.
func (s *CGSim) ID() string { return s.id }

// State returns the protein configuration state.
func (s *CGSim) State() int { return s.state }

// SimTime returns the trajectory length produced so far.
func (s *CGSim) SimTime() units.SimTime { return s.simTime }

// Frames returns the number of frames produced so far.
func (s *CGSim) Frames() int { return s.frame }

// NextFrame advances the simulation by one analysis interval and returns
// the analyzed frame.
func (s *CGSim) NextFrame() *CGFrame {
	s.simTime += s.FrameInterval
	// Conformational random walk with reflection at physical bounds.
	s.tilt = reflect(s.tilt+s.rng.NormFloat64()*4, 0, 180)
	s.rotation = wrap360(s.rotation + s.rng.NormFloat64()*8)
	s.depth = reflect(s.depth+s.rng.NormFloat64()*0.2, -5, 5)

	f := &CGFrame{
		SimID:    s.id,
		Index:    s.frame,
		TimeFs:   s.simTime.Femtoseconds(),
		State:    s.state,
		Tilt:     s.tilt,
		Rotation: s.rotation,
		Depth:    s.depth,
		RDF:      make([][]float32, s.species),
	}
	for sp := 0; sp < s.species; sp++ {
		rdf := make([]float32, RDFBins)
		amp := s.fingerprint[sp]
		for b := 0; b < RDFBins; b++ {
			r := (float64(b) + 0.5) / RDFBins
			// A first-solvation-shell peak whose height tracks the lipid
			// fingerprint, decaying to bulk density 1.
			v := 1 + amp*gauss(r, 0.25, 0.08) + 0.05*s.rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			rdf[b] = float32(v)
		}
		f.RDF[sp] = rdf
	}
	s.frame++
	return f
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

func reflect(v, lo, hi float64) float64 {
	for v < lo || v > hi {
		if v < lo {
			v = 2*lo - v
		}
		if v > hi {
			v = 2*hi - v
		}
	}
	return v
}

func wrap360(v float64) float64 {
	for v < 0 {
		v += 360
	}
	for v >= 360 {
		v -= 360
	}
	return v
}

// Package sim provides the simulation-scale surrogates of the three-scale
// campaign (§4.1): coarse-grained (ddcMD-like) and all-atom (AMBER-like)
// simulation generators that emit analyzable frames at the paper's rates
// and sizes, the CPU-only setup jobs (createsim, backmapping) with their
// published durations, and the per-scale performance models behind Fig. 4.
//
// No molecular dynamics is computed — the workflow never looks at forces,
// only at frames, rates, and bytes (see DESIGN.md substitutions). What the
// frames carry is nonetheless real data: RDF histograms and conformational
// coordinates evolve by seeded stochastic processes so that selection and
// feedback downstream operate on meaningful, reproducible inputs.
package sim

import (
	"math"
	"math/rand"
	"time"

	"mummi/internal/units"
)

// Published campaign constants (§4.1, §5.1).
const (
	// CGParticlesMean is the average CG system size (~140k particles;
	// Fig. 4 spans roughly 134k–138k).
	CGParticlesMean = 136000
	// CGParticlesSpread is the ± range of CG system sizes.
	CGParticlesSpread = 2000
	// AAAtomsMean is the average AA system size (1.575 M atoms).
	AAAtomsMean = 1575000
	// AAAtomsSpread is the ± range of AA system sizes.
	AAAtomsSpread = 10000
	// CGMaxLength is the campaign's CG simulation cap (5 µs).
	CGMaxLength = 5 * units.Microsecond
	// AAMinLength and AAMaxLength bound AA simulations (50–65 ns).
	AAMinLength = 50 * units.Nanosecond
	AAMaxLength = 65 * units.Nanosecond
)

// Wall-clock cadences and data volumes (§4.1).
var (
	// CGFrameEvery: ddcMD produces ~4.6 MB of new data every 41.5 s.
	CGFrameEvery = 41*time.Second + 500*time.Millisecond
	// CGFrameBytes is the trajectory data per CG frame.
	CGFrameBytes = units.ByteSize(4_600_000)
	// CGAnalysisBytes is the per-frame analysis output (~17 KB).
	CGAnalysisBytes = units.ByteSize(17_000)
	// CGFrameIdentBytes is the identifying info the distributed analysis
	// emits per interesting frame (~850 B).
	CGFrameIdentBytes = units.ByteSize(850)
	// AAFrameEvery: one 18 MB AA frame every ~10.3 min at 0.1 ns framing.
	AAFrameEvery = 10*time.Minute + 18*time.Second
	// AAFrameBytes is the trajectory data per AA frame.
	AAFrameBytes = units.ByteSize(18_000_000)
	// CreatesimDuration is the average continuum→CG setup time (~1.5 h).
	CreatesimDuration = 90 * time.Minute
	// CreatesimCores is the setup job's CPU allocation.
	CreatesimCores = 24
	// BackmapDuration is the average CG→AA backmapping time (~2 h).
	BackmapDuration = 2 * time.Hour
	// BackmapCores is backmapping's CPU allocation (bumped to 24 in the
	// Summit placement so all setup jobs share one shape; the tool itself
	// uses 18).
	BackmapCores = 24
	// BackmapLocalBytes / BackmapGPFSBytes: 2.9 GB staged on node-local RAM
	// disk, ~0.5 GB backed up to the shared filesystem per run.
	BackmapLocalBytes = units.ByteSize(2_900_000_000)
	BackmapGPFSBytes  = units.ByteSize(500_000_000)
)

// ContinuumPerf models GridSim2D throughput as a function of allocated CPU
// cores: 3600 MPI ranks deliver ~0.96 ms/day (§4.1(1)); smaller allocations
// scale near-linearly, producing the multi-modal Fig. 4 distribution (one
// mode per allocation size).
func ContinuumPerf(cores int) units.Rate {
	msPerDay := 0.96 * float64(cores) / 3600.0
	return units.PerDay(msPerDay, units.Millisecond)
}

// CGPerf samples one CG simulation's delivered performance (µs/day/GPU).
// The distribution is tight around the benchmark with a slow tail (Fig. 4:
// "tight distributions around mean, although the slowest runs showed
// significant slow down"), scaled by system size, and reduced 20% during
// the campaign's miscompiled-MPI era (§5.1).
type CGPerf struct {
	// MPIBugEra applies the ~20% slowdown observed for the first ~third of
	// the campaign.
	MPIBugEra bool
}

// Sample draws one simulation's rate for a given particle count.
func (p CGPerf) Sample(rng *rand.Rand, particles int) units.Rate {
	base := 1.04 * float64(CGParticlesMean) / float64(particles)
	rate := base * slowTailFactor(rng, 0.02, 0.05, 0.35)
	if p.MPIBugEra {
		rate *= 0.8
	}
	return units.PerDay(rate, units.Microsecond)
}

// AAPerf samples one AA simulation's delivered performance (ns/day/GPU),
// matching the AMBER benchmark measured outside MuMMI (§5.1).
type AAPerf struct{}

// Sample draws one simulation's rate for a given atom count.
func (AAPerf) Sample(rng *rand.Rand, atoms int) units.Rate {
	base := 13.98 * float64(AAAtomsMean) / float64(atoms)
	return units.PerDay(base*slowTailFactor(rng, 0.015, 0.03, 0.25), units.Nanosecond)
}

// slowTailFactor returns a multiplicative performance factor: Gaussian
// around 1 with std `std`, and with probability pSlow a slowdown drawn
// uniformly up to maxSlow — the long left tail of Fig. 4 ("the slowest runs
// showed significant slow down", a known HPC variability effect).
func slowTailFactor(rng *rand.Rand, std, pSlow, maxSlow float64) float64 {
	f := 1 + rng.NormFloat64()*std
	if rng.Float64() < pSlow {
		f *= 1 - rng.Float64()*maxSlow
	}
	return clamp(f, 0.5, 1.1)
}

// SetupDuration samples a CPU-setup job duration around mean with lognormal
// spread (createsim "on average takes ~1.5 hours"; backmapping "~2 hours on
// average").
func SetupDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	f := math.Exp(rng.NormFloat64() * 0.18)
	return time.Duration(float64(mean) * clamp(f, 0.5, 2.5))
}

// CGParticles samples a CG system size.
func CGParticles(rng *rand.Rand) int {
	return CGParticlesMean + int(rng.NormFloat64()*CGParticlesSpread/2)
}

// AAAtoms samples an AA system size.
func AAAtoms(rng *rand.Rand) int {
	return AAAtomsMean + int(rng.NormFloat64()*AAAtomsSpread/2)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

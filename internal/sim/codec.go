package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary frame codec: ddcMD writes trajectories in "a custom binary format"
// and the analysis outputs are moved at 4.6 MB per 41.5 s per simulation —
// at 3600 concurrent simulations, serialization efficiency is a real cost.
// CG frames therefore support a compact binary encoding alongside JSON; the
// feedback path auto-detects which one it is handed (UnmarshalCGFrameAuto),
// so producers can switch formats without coordinating with consumers.

var cgFrameMagic = [4]byte{'C', 'G', 'F', '1'}

// MarshalBinary encodes the frame in the compact binary format
// (roughly 10× smaller and faster to decode than the JSON encoding for
// paper-scale frames; see BenchmarkCGFrameCodecs).
func (f *CGFrame) MarshalBinary() ([]byte, error) {
	if len(f.SimID) > 0xFFFF {
		return nil, fmt.Errorf("sim: sim id too long (%d bytes)", len(f.SimID))
	}
	bins := 0
	if len(f.RDF) > 0 {
		bins = len(f.RDF[0])
	}
	var buf bytes.Buffer
	buf.Write(cgFrameMagic[:])
	le := binary.LittleEndian
	var scratch [8]byte
	le.PutUint16(scratch[:2], uint16(len(f.SimID)))
	buf.Write(scratch[:2])
	buf.WriteString(f.SimID)
	le.PutUint32(scratch[:4], uint32(f.Index))
	buf.Write(scratch[:4])
	le.PutUint64(scratch[:8], uint64(f.TimeFs))
	buf.Write(scratch[:8])
	buf.WriteByte(byte(f.State))
	for _, v := range []float64{f.Tilt, f.Rotation, f.Depth} {
		le.PutUint64(scratch[:8], math.Float64bits(v))
		buf.Write(scratch[:8])
	}
	le.PutUint16(scratch[:2], uint16(len(f.RDF)))
	buf.Write(scratch[:2])
	le.PutUint16(scratch[:2], uint16(bins))
	buf.Write(scratch[:2])
	for _, rdf := range f.RDF {
		if len(rdf) != bins {
			return nil, fmt.Errorf("sim: ragged RDF (%d vs %d bins)", len(rdf), bins)
		}
		for _, v := range rdf {
			le.PutUint32(scratch[:4], math.Float32bits(v))
			buf.Write(scratch[:4])
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalCGFrameBinary decodes the compact binary format.
func UnmarshalCGFrameBinary(b []byte) (*CGFrame, error) {
	if len(b) < 4 || !bytes.Equal(b[:4], cgFrameMagic[:]) {
		return nil, errors.New("sim: not a binary CG frame")
	}
	le := binary.LittleEndian
	p := b[4:]
	need := func(n int) error {
		if len(p) < n {
			return errors.New("sim: truncated binary CG frame")
		}
		return nil
	}
	if err := need(2); err != nil {
		return nil, err
	}
	idLen := int(le.Uint16(p))
	p = p[2:]
	if err := need(idLen + 4 + 8 + 1 + 24 + 4); err != nil {
		return nil, err
	}
	f := &CGFrame{SimID: string(p[:idLen])}
	p = p[idLen:]
	f.Index = int(le.Uint32(p))
	p = p[4:]
	f.TimeFs = int64(le.Uint64(p))
	p = p[8:]
	f.State = int(p[0])
	p = p[1:]
	f.Tilt = math.Float64frombits(le.Uint64(p))
	p = p[8:]
	f.Rotation = math.Float64frombits(le.Uint64(p))
	p = p[8:]
	f.Depth = math.Float64frombits(le.Uint64(p))
	p = p[8:]
	species := int(le.Uint16(p))
	bins := int(le.Uint16(p[2:]))
	p = p[4:]
	if species > 1024 || bins > 4096 {
		return nil, errors.New("sim: implausible binary CG frame header")
	}
	if err := need(species * bins * 4); err != nil {
		return nil, err
	}
	f.RDF = make([][]float32, species)
	for sp := 0; sp < species; sp++ {
		rdf := make([]float32, bins)
		for i := range rdf {
			rdf[i] = math.Float32frombits(le.Uint32(p))
			p = p[4:]
		}
		f.RDF[sp] = rdf
	}
	return f, nil
}

// UnmarshalCGFrameAuto decodes either encoding, detecting by magic.
func UnmarshalCGFrameAuto(b []byte) (*CGFrame, error) {
	if len(b) >= 4 && bytes.Equal(b[:4], cgFrameMagic[:]) {
		return UnmarshalCGFrameBinary(b)
	}
	return UnmarshalCGFrame(b)
}

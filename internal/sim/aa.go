package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"mummi/internal/units"
)

// SecStructResidues is the number of protein residues whose secondary
// structure the AA analysis reports (RAS-RAF complex scale).
const SecStructResidues = 96

// Secondary-structure codes (DSSP-style three-state reduction).
const (
	Helix = 'H'
	Sheet = 'E'
	Coil  = 'C'
)

// AAFrame is one analyzed all-atom trajectory frame (§4.1(5)): the
// AA→CG feedback derives "the most common pattern of protein secondary
// structure observed in the AA simulations" from these.
type AAFrame struct {
	SimID  string `json:"sim"`
	Index  int    `json:"idx"`
	TimeFs int64  `json:"t_fs"`
	// SecStruct is the per-residue secondary-structure string ("HHEEC...").
	SecStruct string `json:"ss"`
}

// ID returns the frame's campaign-unique key.
func (f *AAFrame) ID() string { return fmt.Sprintf("%s_f%06d", f.SimID, f.Index) }

// Marshal serializes the frame for the data interface.
func (f *AAFrame) Marshal() ([]byte, error) { return json.Marshal(f) }

// UnmarshalAAFrame decodes a frame.
func UnmarshalAAFrame(b []byte) (*AAFrame, error) {
	var f AAFrame
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("sim: corrupt AA frame: %w", err)
	}
	if len(f.SecStruct) == 0 {
		return nil, fmt.Errorf("sim: AA frame without secondary structure")
	}
	return &f, nil
}

// AASim generates one all-atom simulation's analysis stream. The secondary
// structure starts from a reference fold and residues flip state rarely,
// so consensus across frames is stable but drifts — what the AA→CG feedback
// is designed to track.
type AASim struct {
	id      string
	rng     *rand.Rand
	ss      []byte
	frame   int
	simTime units.SimTime
	// FrameInterval is the trajectory time per frame (0.1 ns per §4.1(5)).
	FrameInterval units.SimTime
}

// NewAASim creates the generator, seeded for reproducibility.
func NewAASim(id string, seed int64) *AASim {
	rng := rand.New(rand.NewSource(seed))
	ss := make([]byte, SecStructResidues)
	for i := range ss {
		// Reference fold: mostly helical with sheet and loop segments.
		switch {
		case i%12 < 6:
			ss[i] = Helix
		case i%12 < 9:
			ss[i] = Sheet
		default:
			ss[i] = Coil
		}
	}
	return &AASim{id: id, rng: rng, ss: ss, FrameInterval: 100 * units.Picosecond}
}

// ID returns the simulation id.
func (s *AASim) ID() string { return s.id }

// SimTime returns the trajectory length produced so far.
func (s *AASim) SimTime() units.SimTime { return s.simTime }

// Frames returns the number of frames produced so far.
func (s *AASim) Frames() int { return s.frame }

// NextFrame advances one frame interval and returns the analysis result.
func (s *AASim) NextFrame() *AAFrame {
	s.simTime += s.FrameInterval
	states := []byte{Helix, Sheet, Coil}
	for i := range s.ss {
		if s.rng.Float64() < 0.02 { // rare local refolding
			s.ss[i] = states[s.rng.Intn(len(states))]
		}
	}
	f := &AAFrame{
		SimID:     s.id,
		Index:     s.frame,
		TimeFs:    s.simTime.Femtoseconds(),
		SecStruct: string(s.ss),
	}
	s.frame++
	return f
}

// ConsensusSecStruct returns the per-residue majority structure across
// frames — the feedback's "most common pattern". Ties resolve H > E > C.
func ConsensusSecStruct(frames []*AAFrame) (string, error) {
	if len(frames) == 0 {
		return "", fmt.Errorf("sim: consensus of zero frames")
	}
	n := len(frames[0].SecStruct)
	counts := make([][3]int, n)
	for _, f := range frames {
		if len(f.SecStruct) != n {
			return "", fmt.Errorf("sim: frame %s has %d residues, want %d", f.ID(), len(f.SecStruct), n)
		}
		for i := 0; i < n; i++ {
			switch f.SecStruct[i] {
			case Helix:
				counts[i][0]++
			case Sheet:
				counts[i][1]++
			case Coil:
				counts[i][2]++
			default:
				return "", fmt.Errorf("sim: invalid structure code %q", f.SecStruct[i])
			}
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		best, bestC := 0, counts[i][0]
		for j := 1; j < 3; j++ {
			if counts[i][j] > bestC {
				best, bestC = j, counts[i][j]
			}
		}
		b.WriteByte([]byte{Helix, Sheet, Coil}[best])
	}
	return b.String(), nil
}

package sim

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"mummi/internal/stats"
	"mummi/internal/units"
)

func TestContinuumPerfModes(t *testing.T) {
	// §4.1(1): 3600 cores deliver ~0.96 ms/day; Fig. 4's modes correspond to
	// allocation sizes.
	full := ContinuumPerf(3600)
	if got := full.SimFor(24 * time.Hour).Milliseconds(); got < 0.95 || got > 0.97 {
		t.Errorf("3600-core rate = %v ms/day", got)
	}
	half := ContinuumPerf(1800)
	if got := half.SimFor(24 * time.Hour).Milliseconds(); got < 0.47 || got > 0.49 {
		t.Errorf("1800-core rate = %v ms/day", got)
	}
}

func TestCGPerfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s stats.Summary
	for i := 0; i < 3000; i++ {
		r := CGPerf{}.Sample(rng, CGParticlesMean)
		s.Add(r.SimFor(24 * time.Hour).Microseconds())
	}
	// Tight around 1.04 µs/day with a slow tail below.
	if s.Mean() < 0.98 || s.Mean() > 1.06 {
		t.Errorf("CG mean = %v µs/day, want ~1.03", s.Mean())
	}
	if s.Max() > 1.04*1.1+0.01 {
		t.Errorf("CG max = %v, should not exceed benchmark by >10%%", s.Max())
	}
	if s.Min() > 0.95 {
		t.Errorf("CG min = %v: slow tail missing", s.Min())
	}
}

func TestCGPerfMPIBugEra(t *testing.T) {
	// §5.1: the miscompiled MPI delivered "almost 20% less than benchmark".
	rng := rand.New(rand.NewSource(2))
	var bug, fixed stats.Summary
	for i := 0; i < 2000; i++ {
		bug.Add(CGPerf{MPIBugEra: true}.Sample(rng, CGParticlesMean).SimFor(24 * time.Hour).Microseconds())
		fixed.Add(CGPerf{}.Sample(rng, CGParticlesMean).SimFor(24 * time.Hour).Microseconds())
	}
	ratio := bug.Mean() / fixed.Mean()
	if ratio < 0.78 || ratio > 0.82 {
		t.Errorf("bug-era ratio = %v, want ~0.8", ratio)
	}
}

func TestAAPerfMatchesBenchmark(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s stats.Summary
	for i := 0; i < 2000; i++ {
		s.Add(AAPerf{}.Sample(rng, AAAtomsMean).SimFor(24 * time.Hour).Nanoseconds())
	}
	if s.Mean() < 13.2 || s.Mean() > 14.2 {
		t.Errorf("AA mean = %v ns/day, want ~13.98", s.Mean())
	}
	// Larger systems run slower.
	big := AAPerf{}.Sample(rand.New(rand.NewSource(4)), AAAtomsMean*2)
	if big.SimFor(24*time.Hour) >= units.SimTimeOf(10, units.Nanosecond) {
		t.Error("2× atoms should run well under 10 ns/day")
	}
}

func TestSetupDurationSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s stats.Summary
	for i := 0; i < 2000; i++ {
		s.Add(SetupDuration(rng, CreatesimDuration).Hours())
	}
	if s.Mean() < 1.3 || s.Mean() > 1.7 {
		t.Errorf("createsim mean = %v h, want ~1.5", s.Mean())
	}
	if s.Min() < 0.7 || s.Max() > 4 {
		t.Errorf("duration range [%v, %v] implausible", s.Min(), s.Max())
	}
}

func TestSystemSizeSamplers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		if p := CGParticles(rng); p < CGParticlesMean-4*CGParticlesSpread || p > CGParticlesMean+4*CGParticlesSpread {
			t.Fatalf("CG particles = %d", p)
		}
		if a := AAAtoms(rng); a < AAAtomsMean-4*AAAtomsSpread || a > AAAtomsMean+4*AAAtomsSpread {
			t.Fatalf("AA atoms = %d", a)
		}
	}
}

func TestCGSimFrameStream(t *testing.T) {
	s := NewCGSim("pfcg_0001", 5, 1, []float64{0.9, 0.1, 0.5, 0.5, 0.5}, 7)
	if s.ID() != "pfcg_0001" || s.State() != 1 {
		t.Error("identity wrong")
	}
	f0 := s.NextFrame()
	f1 := s.NextFrame()
	if f0.Index != 0 || f1.Index != 1 {
		t.Errorf("indices %d, %d", f0.Index, f1.Index)
	}
	if f1.TimeFs <= f0.TimeFs {
		t.Error("frame time not advancing")
	}
	if s.Frames() != 2 || s.SimTime() != 2*s.FrameInterval {
		t.Errorf("Frames=%d SimTime=%v", s.Frames(), s.SimTime())
	}
	if len(f0.RDF) != 5 || len(f0.RDF[0]) != RDFBins {
		t.Fatalf("RDF shape %dx%d", len(f0.RDF), len(f0.RDF[0]))
	}
	// The strongly-coupled species (fingerprint 0.9) must show a higher
	// first-shell peak than the weak one (0.1).
	peak := func(rdf []float32) float64 {
		best := 0.0
		for _, v := range rdf {
			if float64(v) > best {
				best = float64(v)
			}
		}
		return best
	}
	if peak(f0.RDF[0]) <= peak(f0.RDF[1]) {
		t.Errorf("fingerprint not reflected: peaks %v vs %v", peak(f0.RDF[0]), peak(f0.RDF[1]))
	}
	// Conformational coordinates stay in physical ranges.
	for i := 0; i < 500; i++ {
		f := s.NextFrame()
		if f.Tilt < 0 || f.Tilt > 180 || f.Rotation < 0 || f.Rotation >= 360 ||
			f.Depth < -5 || f.Depth > 5 {
			t.Fatalf("coordinates out of range: %+v", f)
		}
	}
}

func TestCGSimDeterministic(t *testing.T) {
	a := NewCGSim("x", 3, 0, nil, 42)
	b := NewCGSim("x", 3, 0, nil, 42)
	for i := 0; i < 10; i++ {
		fa, fb := a.NextFrame(), b.NextFrame()
		if fa.Tilt != fb.Tilt || fa.RDF[0][3] != fb.RDF[0][3] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestCGFrameSerialization(t *testing.T) {
	s := NewCGSim("sim1", 4, 2, nil, 1)
	f := s.NextFrame()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCGFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != f.ID() || got.State != f.State || got.RDF[2][5] != f.RDF[2][5] {
		t.Error("round trip mismatch")
	}
	if _, err := UnmarshalCGFrame([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestCGFrameIdentInfoSize(t *testing.T) {
	// "each CG analysis outputs the frames of interest in the form of
	// identifying information (~850 B)".
	s := NewCGSim("pfcg_000123", 14, 1, nil, 1)
	f := s.NextFrame()
	ident := f.IdentInfo()
	if len(ident) != int(CGFrameIdentBytes) {
		t.Errorf("ident = %d bytes, want %d", len(ident), int(CGFrameIdentBytes))
	}
	if !strings.Contains(string(ident), f.ID()) {
		t.Error("ident missing frame id")
	}
}

func TestAASimFrameStream(t *testing.T) {
	s := NewAASim("aa_0001", 11)
	f := s.NextFrame()
	if len(f.SecStruct) != SecStructResidues {
		t.Fatalf("SecStruct len = %d", len(f.SecStruct))
	}
	for _, c := range f.SecStruct {
		if c != 'H' && c != 'E' && c != 'C' {
			t.Fatalf("invalid code %q", c)
		}
	}
	if s.FrameInterval != 100*units.Picosecond {
		t.Errorf("frame interval = %v, want 0.1 ns", s.FrameInterval)
	}
	// Structure drifts but slowly: consecutive frames mostly agree.
	g := s.NextFrame()
	same := 0
	for i := range f.SecStruct {
		if f.SecStruct[i] == g.SecStruct[i] {
			same++
		}
	}
	if same < SecStructResidues*8/10 {
		t.Errorf("structure changed too fast: %d/%d stable", same, SecStructResidues)
	}
}

func TestAAFrameSerialization(t *testing.T) {
	s := NewAASim("aa1", 1)
	f := s.NextFrame()
	b, _ := f.Marshal()
	got, err := UnmarshalAAFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SecStruct != f.SecStruct {
		t.Error("round trip mismatch")
	}
	if _, err := UnmarshalAAFrame([]byte(`{"sim":"x","idx":0}`)); err == nil {
		t.Error("frame without structure accepted")
	}
}

func TestConsensusSecStruct(t *testing.T) {
	frames := []*AAFrame{
		{SimID: "a", SecStruct: "HHC"},
		{SimID: "a", SecStruct: "HEC"},
		{SimID: "a", SecStruct: "HHE"},
	}
	got, err := ConsensusSecStruct(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got != "HHC" {
		t.Errorf("consensus = %q, want HHC", got)
	}
	if _, err := ConsensusSecStruct(nil); err == nil {
		t.Error("empty consensus accepted")
	}
	if _, err := ConsensusSecStruct([]*AAFrame{{SecStruct: "HH"}, {SecStruct: "H"}}); err == nil {
		t.Error("ragged frames accepted")
	}
	if _, err := ConsensusSecStruct([]*AAFrame{{SecStruct: "HX"}}); err == nil {
		t.Error("invalid code accepted")
	}
}

func TestConsensusTieBreak(t *testing.T) {
	frames := []*AAFrame{
		{SecStruct: "HE"},
		{SecStruct: "EH"},
	}
	got, err := ConsensusSecStruct(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got != "HH" { // ties resolve H > E > C
		t.Errorf("tie consensus = %q", got)
	}
}

func TestPublishedConstants(t *testing.T) {
	// Guard the paper's numbers against accidental edits.
	if CGFrameEvery != 41500*time.Millisecond {
		t.Errorf("CGFrameEvery = %v", CGFrameEvery)
	}
	if CGFrameBytes.String() != "4.60MB" {
		t.Errorf("CGFrameBytes = %v", CGFrameBytes)
	}
	if AAFrameBytes.String() != "18.00MB" {
		t.Errorf("AAFrameBytes = %v", AAFrameBytes)
	}
	if CGMaxLength != 5*units.Microsecond {
		t.Errorf("CGMaxLength = %v", CGMaxLength)
	}
	if AAMinLength != 50*units.Nanosecond || AAMaxLength != 65*units.Nanosecond {
		t.Errorf("AA length bounds = %v..%v", AAMinLength, AAMaxLength)
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestBinaryCodecRoundTrip(t *testing.T) {
	g := NewCGSim("pfcg_000123", 14, 2, []float64{0.9, 0.1}, 5)
	for i := 0; i < 5; i++ {
		f := g.NextFrame()
		b, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalCGFrameBinary(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != f.ID() || got.State != f.State || got.TimeFs != f.TimeFs ||
			got.Tilt != f.Tilt || got.Rotation != f.Rotation || got.Depth != f.Depth {
			t.Fatalf("scalar mismatch: %+v vs %+v", got, f)
		}
		for sp := range f.RDF {
			for j := range f.RDF[sp] {
				if got.RDF[sp][j] != f.RDF[sp][j] {
					t.Fatalf("RDF[%d][%d] mismatch", sp, j)
				}
			}
		}
	}
}

func TestBinaryCodecCompactness(t *testing.T) {
	g := NewCGSim("sim", 14, 1, nil, 1)
	f := g.NextFrame()
	j, _ := f.Marshal()
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) >= len(j)/2 {
		t.Errorf("binary %dB not substantially smaller than JSON %dB", len(b), len(j))
	}
}

func TestAutoDetect(t *testing.T) {
	g := NewCGSim("auto", 4, 0, nil, 2)
	f := g.NextFrame()
	j, _ := f.Marshal()
	b, _ := f.MarshalBinary()
	for _, enc := range [][]byte{j, b} {
		got, err := UnmarshalCGFrameAuto(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != f.ID() {
			t.Errorf("auto decode id = %q", got.ID())
		}
	}
	if _, err := UnmarshalCGFrameAuto([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
}

func TestBinaryCodecErrors(t *testing.T) {
	if _, err := UnmarshalCGFrameBinary([]byte("CG")); err == nil {
		t.Error("short magic accepted")
	}
	if _, err := UnmarshalCGFrameBinary([]byte("JSON{}")); err == nil {
		t.Error("wrong magic accepted")
	}
	g := NewCGSim("t", 3, 0, nil, 3)
	b, _ := g.NextFrame().MarshalBinary()
	for _, cut := range []int{5, 10, len(b) / 2, len(b) - 1} {
		if _, err := UnmarshalCGFrameBinary(b[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Ragged RDF rejected at encode time.
	f := g.NextFrame()
	f.RDF[1] = f.RDF[1][:5]
	if _, err := f.MarshalBinary(); err == nil {
		t.Error("ragged RDF encoded")
	}
}

func TestPropertyBinaryCodec(t *testing.T) {
	f := func(seed int64, species uint8, state uint8) bool {
		sp := 1 + int(species)%20
		g := NewCGSim("p", sp, int(state)%3, nil, seed)
		fr := g.NextFrame()
		b, err := fr.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalCGFrameBinary(b)
		if err != nil || got.ID() != fr.ID() || len(got.RDF) != sp {
			return false
		}
		return got.RDF[sp-1][RDFBins-1] == fr.RDF[sp-1][RDFBins-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCGFrameCodecs(b *testing.B) {
	g := NewCGSim("bench", 14, 1, nil, 1)
	f := g.NextFrame()
	b.Run("json-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	j, _ := f.Marshal()
	bin, _ := f.MarshalBinary()
	b.Run("json-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalCGFrame(j); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalCGFrameBinary(bin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

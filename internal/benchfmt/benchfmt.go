// Package benchfmt is the shared model of the repo's perf-trajectory
// artifacts: the mummi-bench/v1 report shape (one flat numeric metric map
// per experiment), its canonical encoding, the timing-vs-deterministic
// metric classification, and the regression comparison that gates the
// committed BENCH_*.json ledgers. cmd/mummi-bench writes reports,
// scripts/benchdiff compares two files, and scripts/matrix runs the
// scenario matrix — all through this package, so the ledger semantics
// cannot drift between tools.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// SchemaPrefix is the report-schema family every loadable report must
// declare.
const SchemaPrefix = "mummi-bench/"

// Schema is the report version this build writes.
const Schema = "mummi-bench/v1"

// Report is the mummi-bench -json output shape: one flat numeric metric
// map per experiment, durations in seconds, so perf trajectories diff
// cleanly.
type Report struct {
	// Schema is the report version (Schema constant).
	Schema string `json:"schema"`
	// Scale is the campaign scale factor the report was produced at.
	Scale float64 `json:"scale"`
	// Seed is the campaign seed.
	Seed int64 `json:"seed"`
	// Full records whether systems experiments ran at full paper scale.
	Full bool `json:"full"`
	// Workers is the selector fan-out the run used (non-semantic).
	Workers int `json:"workers"`
	// Experiments maps experiment name to its metric map.
	Experiments map[string]map[string]float64 `json:"experiments"`
}

// New returns an empty report at this build's schema version.
func New(scale float64, seed int64, full bool, workers int) *Report {
	return &Report{Schema: Schema, Scale: scale, Seed: seed, Full: full,
		Workers: workers, Experiments: map[string]map[string]float64{}}
}

// Record sets one experiment's metric map.
func (r *Report) Record(name string, metrics map[string]float64) {
	r.Experiments[name] = metrics
}

// Marshal renders the report in canonical form: two-space indented JSON
// with a trailing newline (map keys sorted by encoding/json), so
// same-content reports are byte-identical — the property the scenario
// matrix's determinism diff relies on.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical encoding to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads and validates a report file.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if !strings.HasPrefix(r.Schema, SchemaPrefix) {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, r.Schema)
	}
	return &r, nil
}

// IsTiming reports whether a metric is machine-dependent (thresholded on
// comparison) rather than deterministic replay output (exact-matched).
// Timing metrics are told apart by name: the _sec/_per_sec/_per_s/_x
// suffixes and the alloc_ prefix.
func IsTiming(name string) bool {
	return strings.HasSuffix(name, "_sec") ||
		strings.HasSuffix(name, "_per_sec") ||
		strings.HasSuffix(name, "_per_s") ||
		strings.HasSuffix(name, "_x") ||
		strings.HasPrefix(name, "alloc_")
}

// Result summarizes one Compare call.
type Result struct {
	// Compared counts metrics present in both reports.
	Compared int
	// Skipped counts experiments/metrics present in only one report.
	Skipped int
	// Failures counts regressions: deterministic drift or a timing metric
	// beyond the threshold factor.
	Failures int
}

// Compare diffs two reports metric by metric, writing one line per metric
// to w (benchdiff's human-readable format). Deterministic metrics must
// match exactly — drift there means replay behaviour changed, which is an
// equivalence failure, not a perf regression. Timing metrics may not
// exceed old by more than the threshold factor; improvements of any size
// pass. Metrics or experiments present in only one report are skipped (and
// counted), so the schema can grow without invalidating committed
// baselines. Reports from different configurations (scale, seed, full) are
// refused with an error rather than misjudged.
func Compare(w io.Writer, oldRep, newRep *Report, oldName string, threshold float64) (Result, error) {
	var res Result
	if oldRep.Scale != newRep.Scale || oldRep.Seed != newRep.Seed || oldRep.Full != newRep.Full {
		return res, fmt.Errorf(
			"configs differ (scale %v/%v, seed %d/%d, full %v/%v); refusing to compare",
			oldRep.Scale, newRep.Scale, oldRep.Seed, newRep.Seed, oldRep.Full, newRep.Full)
	}

	var names []string
	for name := range oldRep.Experiments {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, expName := range names {
		oldM := oldRep.Experiments[expName]
		newM, ok := newRep.Experiments[expName]
		if !ok {
			fmt.Fprintf(w, "skip  %-28s (experiment only in %s)\n", expName, oldName)
			res.Skipped += len(oldM)
			continue
		}
		var metrics []string
		for m := range oldM {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			oldV := oldM[m]
			newV, ok := newM[m]
			key := expName + "." + m
			if !ok {
				res.Skipped++
				continue
			}
			res.Compared++
			switch {
			case IsTiming(m):
				if oldV > 0 && newV > oldV*threshold {
					fmt.Fprintf(w, "FAIL  %-40s %14.6g -> %-14.6g (%.2fx > %.2fx allowed)\n",
						key, oldV, newV, newV/oldV, threshold)
					res.Failures++
				} else {
					ratio := 0.0
					if oldV > 0 {
						ratio = newV / oldV
					}
					fmt.Fprintf(w, "ok    %-40s %14.6g -> %-14.6g (%.2fx)\n", key, oldV, newV, ratio)
				}
			default:
				if oldV != newV {
					fmt.Fprintf(w, "FAIL  %-40s %14.6g != %-14.6g (deterministic metric drifted)\n",
						key, oldV, newV)
					res.Failures++
				} else {
					fmt.Fprintf(w, "ok    %-40s %14.6g (exact)\n", key, oldV)
				}
			}
		}
	}
	return res, nil
}

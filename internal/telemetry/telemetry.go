// Package telemetry is mummi's stdlib-only observability layer. The paper
// attributes surviving multi-day Summit allocations to watching the
// workflow in situ (§6: job churn, selector throughput, datastore
// pressure); this package provides the equivalent instruments for the
// reproduction — a metrics registry (counters, gauges, fixed-bucket
// histograms) and a span recorder that exports Chrome trace-event JSON
// loadable in chrome://tracing or Perfetto — without leaving the standard
// library.
//
// Two properties shape the design:
//
//   - Determinism. All timestamps and durations come from a vclock.Clock.
//     Under the campaign's virtual clock, every measurement is a pure
//     function of the replay, so metric snapshots are byte-identical
//     across runs with the same seed and traces replay event-for-event
//     (the mummi-lint determinism contract extends to telemetry).
//     Snapshots render metrics in sorted name order for the same reason.
//   - Nil-safety at the seams. Components accept a *Telemetry in their
//     configs and substitute Nop() when absent, so the hot paths carry at
//     most an atomic add when observability is off and zero conditional
//     plumbing when it is on.
//
// See docs/OBSERVABILITY.md for the full metric and span reference and
// DESIGN.md §9 for the architecture.
package telemetry

import (
	"time"

	"mummi/internal/vclock"
)

// Options configures a Telemetry instance.
type Options struct {
	// Clock supplies timestamps for spans, histograms, and heartbeats.
	// Nil defaults to the real clock; the campaign driver rebinds to its
	// virtual clock via SetClock so replays stay deterministic.
	Clock vclock.Clock
	// Trace enables the span recorder. Off, StartSpan/RecordSpan are
	// no-ops and no span memory is ever allocated.
	Trace bool
	// TraceCap bounds the recorded span count (0 = DefaultTraceCap).
	// Spans beyond the cap are dropped and counted, never resized into
	// unbounded memory — campaign replays record millions of events.
	TraceCap int
}

// Telemetry bundles a metrics registry, an optional span recorder, and the
// clock they measure with. The zero value is not usable; construct with
// New or Nop.
type Telemetry struct {
	reg    *Registry
	tracer *Tracer
	clk    clockHolder
}

// New builds a Telemetry from opts.
func New(opts Options) *Telemetry {
	t := &Telemetry{reg: NewRegistry()}
	clk := opts.Clock
	if clk == nil {
		clk = vclock.NewReal()
	}
	t.clk.set(clk)
	if opts.Trace {
		t.tracer = newTracer(&t.clk, opts.TraceCap)
	}
	return t
}

// Nop returns a fresh Telemetry with tracing disabled and a real clock: a
// working sink components fall back to when no telemetry was configured.
// Metrics written to it are recorded but never exported unless the caller
// keeps the instance.
func Nop() *Telemetry { return New(Options{}) }

// SetClock rebinds the measurement clock. The campaign driver calls it
// after constructing its virtual clock; spans recorded earlier keep the
// timestamps they were measured with.
func (t *Telemetry) SetClock(clk vclock.Clock) {
	if clk == nil {
		return
	}
	t.clk.set(clk)
	if t.tracer != nil {
		t.tracer.rebase(clk.Now())
	}
}

// Now returns the current time on the telemetry clock.
func (t *Telemetry) Now() time.Time { return t.clk.now() }

// Clock returns the bound clock (never nil).
func (t *Telemetry) Clock() vclock.Clock { return t.clk.get() }

// Registry returns the metrics registry.
func (t *Telemetry) Registry() *Registry { return t.reg }

// Tracer returns the span recorder, or nil when tracing is off.
func (t *Telemetry) Tracer() *Tracer { return t.tracer }

// Tracing reports whether spans are being recorded.
func (t *Telemetry) Tracing() bool { return t.tracer != nil }

// Counter returns (creating on first use) the named counter.
func (t *Telemetry) Counter(name string) *Counter { return t.reg.Counter(name) }

// Gauge returns (creating on first use) the named gauge.
func (t *Telemetry) Gauge(name string) *Gauge { return t.reg.Gauge(name) }

// Histogram returns (creating on first use) the named histogram; unit and
// bounds apply only at creation.
func (t *Telemetry) Histogram(name, unit string, bounds []float64) *Histogram {
	return t.reg.Histogram(name, unit, bounds)
}

// StartSpan opens a span at Now. It returns nil when tracing is off; a nil
// *Span accepts Arg and End as no-ops, so call sites need no guards.
func (t *Telemetry) StartSpan(cat, name string) *Span {
	if t.tracer == nil {
		return nil
	}
	return &Span{tr: t.tracer, cat: cat, name: name, start: t.clk.now()}
}

// RecordSpan records a completed span with an explicit start and duration —
// the form used when the duration is modeled (the scheduler's match cost)
// rather than measured. kv are alternating key, value argument pairs.
func (t *Telemetry) RecordSpan(cat, name string, start time.Time, dur time.Duration, kv ...any) {
	if t.tracer == nil {
		return
	}
	t.tracer.record(cat, name, start, dur, kvArgs(kv))
}

// MsSince returns the elapsed time from start to Now in milliseconds — the
// histogram unit used across the codebase.
func (t *Telemetry) MsSince(start time.Time) float64 {
	return float64(t.clk.now().Sub(start)) / float64(time.Millisecond)
}

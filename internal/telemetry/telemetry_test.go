package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"mummi/internal/vclock"
)

func testEpoch() time.Time {
	return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
}

func TestNameRendering(t *testing.T) {
	if got := Name("wm.polls_total"); got != "wm.polls_total" {
		t.Fatalf("bare name: got %q", got)
	}
	got := Name("wm.sims_total", "coupling", "cg", "state", "done")
	want := "wm.sims_total{coupling=cg,state=done}"
	if got != want {
		t.Fatalf("labeled name: got %q want %q", got, want)
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 6 {
		t.Fatalf("counter value: got %d want 6", got)
	}
}

func TestGaugeLastWriteWins(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge: got %g", got)
	}
	g.Set(3.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge value: got %g", got)
	}
}

func TestHistogramBucketsAndClamp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// NaN and +Inf clamp to 0 → first bucket. Bounds are inclusive upper
	// limits (SearchFloat64s), so 1 lands in the first bucket too.
	wantCounts := []int64{4, 1, 1, 1}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, hs.Counts[i], want, hs.Counts)
		}
	}
	if hs.Count != 7 || hs.Min != 0 || hs.Max != 500 {
		t.Fatalf("stream stats: count=%d min=%g max=%g", hs.Count, hs.Min, hs.Max)
	}
}

// TestSnapshotDeterministicUnderConcurrency drives many concurrent writers
// at one registry and checks (under -race) that the final snapshot bytes
// are identical to a sequentially-built registry recording the same
// totals. This is the determinism contract the campaign relies on: metric
// identity and ordering never depend on goroutine interleaving.
func TestSnapshotDeterministicUnderConcurrency(t *testing.T) {
	build := func(concurrent bool) []byte {
		r := NewRegistry()
		const workers = 8
		const perWorker = 200
		work := func(id int) {
			for i := 0; i < perWorker; i++ {
				r.Counter(Name("ops_total", "worker", "w")).Inc()
				r.Gauge("depth").Set(42)
				r.Histogram("lat_ms", "ms", nil).Observe(float64(i % 7))
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) { defer wg.Done(); work(id) }(w)
			}
			wg.Wait()
		} else {
			for w := 0; w < workers; w++ {
				work(w)
			}
		}
		b, err := r.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	seq := build(false)
	for trial := 0; trial < 4; trial++ {
		if got := build(true); !bytes.Equal(got, seq) {
			t.Fatalf("trial %d: concurrent snapshot differs\nconcurrent: %s\nsequential: %s", trial, got, seq)
		}
	}
}

func TestTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Inc()
	r.Counter("a_total").Add(2)
	r.Gauge("m").Set(1.5)
	text := r.Text()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	want := []string{"a_total 2", "z_total 1", "m 1.5"}
	if len(lines) != len(want) {
		t.Fatalf("line count: got %d want %d\n%s", len(lines), len(want), text)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d: got %q want %q", i, lines[i], want[i])
		}
	}
}

// TestTraceExportGolden records a small deterministic span set on a
// virtual clock and checks the exported Chrome trace-event JSON byte for
// byte. The golden string doubles as schema documentation: metadata
// thread_name events first (one per category, tid in sorted-category
// order), then ph:"X" complete events with microsecond ts/dur.
func TestTraceExportGolden(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch())
	tel := New(Options{Clock: clk, Trace: true})

	clk.After(2*time.Millisecond, func() {
		sp := tel.StartSpan("wm", "task1.ingest").Arg("coupling", "cg")
		clk.After(time.Millisecond, func() { sp.End() })
	})
	clk.After(5*time.Millisecond, func() {
		tel.RecordSpan("sched", "match", tel.Now(), 250*time.Microsecond, "visits", 3)
	})
	clk.Run()

	var buf bytes.Buffer
	if err := tel.Tracer().Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	golden := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"sched"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"wm"}},` +
		`{"name":"task1.ingest","cat":"wm","ph":"X","ts":2000,"dur":1000,"pid":1,"tid":2,"args":{"coupling":"cg"}},` +
		`{"name":"match","cat":"sched","ph":"X","ts":5000,"dur":250,"pid":1,"tid":1,"args":{"visits":3}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != golden {
		t.Fatalf("trace JSON mismatch\ngot:    %s\nwanted: %s", got, golden)
	}
}

// TestTraceExportSchema validates the export against the trace-event
// format contract: top-level traceEvents array, every event carries a
// valid ph, complete events have non-negative ts/dur, metadata events
// name threads that complete events actually use.
func TestTraceExportSchema(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch())
	tel := New(Options{Clock: clk, Trace: true})
	for i := 0; i < 10; i++ {
		tel.RecordSpan("cat", "op", tel.Now(), time.Duration(i)*time.Millisecond)
		clk.RunFor(time.Second)
	}

	var buf bytes.Buffer
	if err := tel.Tracer().Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit: got %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 11 { // 1 metadata + 10 spans
		t.Fatalf("event count: got %d want 11", len(doc.TraceEvents))
	}
	namedTIDs := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			namedTIDs[e.TID] = true
		case "X":
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", e)
			}
			if !namedTIDs[e.TID] {
				t.Fatalf("complete event on unnamed tid %d", e.TID)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
		if e.PID != 1 {
			t.Fatalf("pid: got %d", e.PID)
		}
	}
}

func TestTraceCapDrops(t *testing.T) {
	tel := New(Options{Clock: vclock.NewVirtual(testEpoch()), Trace: true, TraceCap: 3})
	for i := 0; i < 5; i++ {
		tel.RecordSpan("c", "op", tel.Now(), 0)
	}
	tr := tel.Tracer()
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("cap: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	if !strings.Contains(buf.String(), `"mummiDroppedSpans":2`) {
		t.Fatalf("dropped marker missing: %s", buf.String())
	}
}

func TestNilSpanSafe(t *testing.T) {
	tel := Nop()
	if tel.Tracing() {
		t.Fatal("Nop should not trace")
	}
	sp := tel.StartSpan("c", "op")
	if sp != nil {
		t.Fatal("StartSpan should return nil when tracing is off")
	}
	sp.Arg("k", "v").End() // must not panic
	tel.RecordSpan("c", "op", tel.Now(), time.Second)
}

func TestSetClockRebindsAndRebases(t *testing.T) {
	tel := New(Options{Trace: true})
	clk := vclock.NewVirtual(testEpoch())
	clk.RunFor(time.Hour) // advance before binding
	tel.SetClock(clk)
	if !tel.Now().Equal(clk.Now()) {
		t.Fatalf("clock not rebound: tel=%v clk=%v", tel.Now(), clk.Now())
	}
	tel.RecordSpan("c", "op", tel.Now(), time.Millisecond)
	var buf bytes.Buffer
	if err := tel.Tracer().Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	// Epoch was rebased to the bind time, so the span's ts is 0, not 1h.
	if !strings.Contains(buf.String(), `"cat":"c","ph":"X","ts":0`) {
		t.Fatalf("epoch not rebased: %s", buf.String())
	}
}

func TestSpanNames(t *testing.T) {
	tel := New(Options{Clock: vclock.NewVirtual(testEpoch()), Trace: true})
	tel.RecordSpan("a", "zeta", tel.Now(), 0)
	tel.RecordSpan("b", "alpha", tel.Now(), 0)
	tel.RecordSpan("a", "zeta", tel.Now(), 0)
	got := tel.Tracer().SpanNames()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("span names: %v", got)
	}
}

func TestHeartbeat(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch())
	var mu sync.Mutex
	var buf bytes.Buffer
	hb := NewHeartbeat(clk, time.Minute, writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), func(now time.Time) string {
		return "hb " + now.Format("15:04")
	})
	clk.RunFor(3*time.Minute + time.Second)
	hb.Stop()
	clk.RunFor(10 * time.Minute)
	mu.Lock()
	defer mu.Unlock()
	want := "hb 00:01\nhb 00:02\nhb 00:03\n"
	if buf.String() != want {
		t.Fatalf("heartbeat output:\ngot:  %q\nwant: %q", buf.String(), want)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestMsSince(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch())
	tel := New(Options{Clock: clk})
	start := tel.Now()
	clk.RunFor(1500 * time.Microsecond)
	if got := tel.MsSince(start); got != 1.5 {
		t.Fatalf("MsSince: got %g want 1.5", got)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Name renders a metric name with labels in the canonical
// base{k1=v1,k2=v2} form. Labels are alternating key, value pairs and are
// emitted in the order given; callers use a fixed order so the same
// logical metric always maps to the same registry entry.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64 metric. Safe for concurrent
// use; the value is read atomically at snapshot time.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 metric (queue depth, occupancy).
// Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bounds are ascending bucket upper
// limits and an implicit +Inf bucket catches the overflow, so the bucket
// layout — and therefore the snapshot shape — is fixed at creation.
// Observations also stream count/sum/min/max. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	unit   string
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample. Non-finite samples are clamped to 0 so a
// poisoned measurement cannot spread NaN through the snapshot.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// LatencyBucketsMs is the default bucket layout for millisecond latency
// histograms: roughly exponential from 10 µs to one minute.
var LatencyBucketsMs = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

// SizeBucketsBytes is the default bucket layout for byte-size histograms.
var SizeBucketsBytes = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20}

// Registry is a deterministic metrics registry: metrics are created on
// first use and snapshots render them in sorted name order, so two runs
// that record the same values produce byte-identical snapshots.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given unit and bucket bounds (nil bounds = LatencyBucketsMs). Unit and
// bounds are fixed by the first caller; later calls reuse the metric.
func (r *Registry) Histogram(name, unit string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBucketsMs
		}
		h = &Histogram{
			unit:   unit,
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnap is one histogram in a Snapshot. Counts has one entry per
// bound plus the trailing +Inf bucket.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot is a point-in-time copy of every metric, each section sorted by
// name. Marshaling a Snapshot is deterministic: identical recorded values
// yield identical bytes.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistogramSnap{},
	}
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: counters[n].Value()})
	}
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: n, Value: gauges[n].Value()})
	}
	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:   n,
			Unit:   h.unit,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
		})
		h.mu.Unlock()
	}
	return s
}

// MarshalJSON encodes the snapshot with stable field and entry ordering.
func (r *Registry) MarshalJSON() ([]byte, error) { return json.Marshal(r.Snapshot()) }

// Text renders the snapshot as sorted "name value" lines (and histogram
// summary lines), the format served by the -metrics-addr endpoint.
func (r *Registry) Text() string {
	s := r.Snapshot()
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%s count=%d sum=%g min=%g max=%g %s\n",
			h.Name, h.Count, h.Sum, h.Min, h.Max, h.Unit)
	}
	return b.String()
}

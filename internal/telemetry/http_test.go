package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"mummi/internal/errutil"
)

func TestMetricsServer(t *testing.T) {
	tel := Nop()
	tel.Counter("req_total").Add(7)
	tel.Gauge("depth").Set(2)

	srv, err := StartMetricsServer("127.0.0.1:0", tel)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() { errutil.CaptureClose(&err, srv.Close) }()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { errutil.CaptureClose(&err, resp.Body.Close) }()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b)
	}

	text := get("/metrics")
	if !strings.Contains(text, "req_total 7\n") || !strings.Contains(text, "depth 2\n") {
		t.Fatalf("/metrics text missing entries:\n%s", text)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json unmarshal: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "req_total" || snap.Counters[0].Value != 7 {
		t.Fatalf("/metrics.json counters: %+v", snap.Counters)
	}
}

// TestMetricsServerCloseJoinsServeGoroutine is the regression test for the
// unjoined serve goroutine the goroutinelifecycle analyzer surfaced: Close
// used to return while srv.Serve could still be running, so a request
// handler could observe state torn down after Close. Close must not return
// until the serve goroutine has exited (done closed).
func TestMetricsServerCloseJoinsServeGoroutine(t *testing.T) {
	srv, err := StartMetricsServer("127.0.0.1:0", Nop())
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-srv.done:
	default:
		t.Fatal("Close returned before the serve goroutine exited")
	}
	// A second Close must not hang on the already-closed done channel.
	//lint:allow errdiscipline -- only the non-hanging property is under test
	srv.Close()
}

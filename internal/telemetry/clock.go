package telemetry

import (
	"sync"
	"time"

	"mummi/internal/vclock"
)

// clockHolder is the rebindable clock shared by the registry's histograms
// and the tracer. A plain RWMutex keeps it race-safe; the campaign rebinds
// it exactly once, before any concurrent use.
type clockHolder struct {
	mu  sync.RWMutex
	clk vclock.Clock
}

func (c *clockHolder) set(clk vclock.Clock) {
	c.mu.Lock()
	c.clk = clk
	c.mu.Unlock()
}

func (c *clockHolder) get() vclock.Clock {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clk
}

func (c *clockHolder) now() time.Time { return c.get().Now() }

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceCap bounds recorded spans when Options.TraceCap is zero.
const DefaultTraceCap = 1 << 20

// Arg is one key/value span argument; values must be JSON-marshalable.
type Arg struct {
	Key   string
	Value any
}

func kvArgs(kv []any) []Arg {
	if len(kv) == 0 {
		return nil
	}
	args := make([]Arg, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		args = append(args, Arg{Key: k, Value: kv[i+1]})
	}
	return args
}

// spanEvent is one recorded complete span.
type spanEvent struct {
	name, cat string
	start     time.Time
	dur       time.Duration
	args      []Arg
}

// Tracer records spans against the telemetry clock and exports them as
// Chrome trace-event JSON ("trace event format", complete events), which
// chrome://tracing and Perfetto load directly. Under the virtual clock the
// recording order is the discrete-event execution order, so traces are
// deterministic replay artifacts, not best-effort logs.
type Tracer struct {
	clk *clockHolder

	mu      sync.Mutex
	epoch   time.Time
	events  []spanEvent
	cap     int
	dropped int64
}

func newTracer(clk *clockHolder, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{clk: clk, epoch: clk.now(), cap: cap}
}

// rebase moves the trace epoch (called when the clock is rebound).
func (t *Tracer) rebase(epoch time.Time) {
	t.mu.Lock()
	t.epoch = epoch
	t.mu.Unlock()
}

func (t *Tracer) record(cat, name string, start time.Time, dur time.Duration, args []Arg) {
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, spanEvent{name: name, cat: cat, start: start, dur: dur, args: args})
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of spans discarded after the cap was hit.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanNames returns the distinct recorded span names, sorted — the
// integration tests' assertion surface.
func (t *Tracer) SpanNames() []string {
	t.mu.Lock()
	seen := make(map[string]bool, 16)
	for _, e := range t.events {
		seen[e.name] = true
	}
	t.mu.Unlock()
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// traceJSON is the trace-event file shape.
type traceJSON struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Dropped         int64        `json:"mummiDroppedSpans,omitempty"`
}

// traceEvent is one trace-event entry. Complete events use ph "X" with ts
// and dur in microseconds; metadata events use ph "M" to name threads.
type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

func marshalArgs(args []Arg) (json.RawMessage, error) {
	if len(args) == 0 {
		return nil, nil
	}
	// Hand-assemble the object so argument order is exactly insertion
	// order (map marshaling would sort keys — fine — but lose duplicates
	// and allocate; this keeps output deterministic and cheap).
	buf := []byte{'{'}
	for i, a := range args {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(a.Value)
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// Export writes the trace as Chrome trace-event JSON. Threads (tid) are
// assigned per category in sorted-category order, so the same workload
// always produces the same thread layout; a metadata event names each
// thread after its category.
func (t *Tracer) Export(w io.Writer) error {
	t.mu.Lock()
	events := append([]spanEvent(nil), t.events...)
	epoch := t.epoch
	dropped := t.dropped
	t.mu.Unlock()

	cats := make(map[string]int)
	for _, e := range events {
		cats[e.cat] = 0
	}
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	for i, c := range names {
		cats[c] = i + 1
	}

	out := traceJSON{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms", Dropped: dropped}
	for _, c := range names {
		args, err := marshalArgs([]Arg{{Key: "name", Value: c}})
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: cats[c], Args: args,
		})
	}
	for _, e := range events {
		args, err := marshalArgs(e.args)
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: e.name,
			Cat:  e.cat,
			Ph:   "X",
			TS:   float64(e.start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(e.dur) / float64(time.Microsecond),
			PID:  1,
			TID:  cats[e.cat],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Span is an open span; End records it. A nil *Span (tracing off) accepts
// every method as a no-op.
type Span struct {
	tr    *Tracer
	cat   string
	name  string
	start time.Time
	args  []Arg
}

// Arg attaches one argument and returns the span for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Value: value})
	return s
}

// End closes the span at the tracer clock's current time and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.record(s.cat, s.name, s.start, s.tr.clk.now().Sub(s.start), s.args)
}

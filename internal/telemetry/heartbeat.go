package telemetry

import (
	"io"
	"time"

	"mummi/internal/vclock"
)

// Heartbeat periodically writes a one-line status to a writer — the
// terminal-friendly stand-in for the paper's live monitoring dashboards
// (§6 credits continuous in-situ monitoring for keeping multi-day runs
// alive). The line builder receives the tick time; the campaign's builder
// summarizes occupancy, queue depth, and per-coupling progress.
type Heartbeat struct {
	ticker *vclock.Ticker
}

// NewHeartbeat starts a heartbeat on clk firing every period; each tick
// writes line(now) plus a newline to w. Stop ends it.
func NewHeartbeat(clk vclock.Clock, period time.Duration, w io.Writer, line func(now time.Time) string) *Heartbeat {
	h := &Heartbeat{}
	h.ticker = vclock.NewTicker(clk, period, func(now time.Time) {
		//lint:allow errdiscipline -- heartbeat output is best-effort monitoring; a failed write must not stop the workflow
		io.WriteString(w, line(now)+"\n")
	})
	return h
}

// Stop cancels future heartbeats.
func (h *Heartbeat) Stop() { h.ticker.Stop() }

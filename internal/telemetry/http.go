package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// MetricsServer serves live registry snapshots over HTTP — the reproduction
// of the operators' in-situ view of a running campaign. Two endpoints:
//
//	/metrics       sorted "name value" text lines
//	/metrics.json  the full Snapshot as JSON
type MetricsServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// StartMetricsServer listens on addr (e.g. "127.0.0.1:9090", or ":0" for
// an ephemeral port) and serves t's registry until Close.
func StartMetricsServer(addr string, t *Telemetry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, t.Registry().Text())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := t.Registry().MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%s\n", b)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ms := &MetricsServer{ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(ms.done)
		//lint:allow errdiscipline -- Serve always returns a non-nil error on Close; the shutdown path is the error
		srv.Serve(ln)
	}()
	return ms, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and joins the serve goroutine, so no request
// handler can observe a half-torn-down registry after Close returns.
func (s *MetricsServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mummi/internal/errutil"
)

// Flags is the standard observability CLI surface shared by the mummi
// commands: -trace, -metrics, -metrics-addr, and -heartbeat. A command
// Registers the flags on its FlagSet, Builds the Telemetry before the run,
// and Finishes afterwards to flush the requested outputs. See
// docs/OBSERVABILITY.md for the operator-facing reference.
type Flags struct {
	// TracePath is -trace: where to write the Chrome trace-event JSON.
	TracePath string
	// MetricsPath is -metrics: where to write the metrics snapshot JSON.
	MetricsPath string
	// MetricsAddr is -metrics-addr: the listen address of the live HTTP
	// snapshot endpoint (serves /metrics text and /metrics.json).
	MetricsAddr string
	// HeartbeatEvery is -heartbeat: the cadence of the one-line status
	// heartbeat (campaign virtual time); zero disables it.
	HeartbeatEvery time.Duration
}

// Register installs the observability flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TracePath, "trace", "",
		"write a Chrome trace-event JSON `file` (open in Perfetto or chrome://tracing)")
	fs.StringVar(&f.MetricsPath, "metrics", "",
		"write a metrics snapshot JSON `file`")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve live /metrics and /metrics.json over HTTP on `addr` (e.g. localhost:9090)")
	fs.DurationVar(&f.HeartbeatEvery, "heartbeat", 0,
		"emit a one-line status heartbeat at this cadence of campaign virtual time (0 = off)")
}

// Enabled reports whether any observability flag was set.
func (f *Flags) Enabled() bool {
	return f.TracePath != "" || f.MetricsPath != "" || f.MetricsAddr != "" || f.HeartbeatEvery > 0
}

// Build returns a Telemetry configured per the flags (span recording only
// when -trace was given) and, when -metrics-addr was set, a running
// MetricsServer. With no observability flag set it returns (nil, nil, nil)
// so the caller's components run fully uninstrumented.
func (f *Flags) Build() (*Telemetry, *MetricsServer, error) {
	if !f.Enabled() {
		return nil, nil, nil
	}
	t := New(Options{Trace: f.TracePath != ""})
	var srv *MetricsServer
	if f.MetricsAddr != "" {
		var err error
		srv, err = StartMetricsServer(f.MetricsAddr, t)
		if err != nil {
			return nil, nil, fmt.Errorf("telemetry: metrics server: %w", err)
		}
	}
	return t, srv, nil
}

// Finish writes the -trace and -metrics outputs and shuts down the
// -metrics-addr server. A nil Telemetry (observability off) is a no-op.
func (f *Flags) Finish(t *Telemetry, srv *MetricsServer) error {
	if srv != nil {
		if err := srv.Close(); err != nil {
			return fmt.Errorf("telemetry: closing metrics server: %w", err)
		}
	}
	if t == nil {
		return nil
	}
	if f.TracePath != "" {
		if err := writeTo(f.TracePath, t.Tracer().Export); err != nil {
			return fmt.Errorf("telemetry: writing trace: %w", err)
		}
	}
	if f.MetricsPath != "" {
		if err := writeTo(f.MetricsPath, func(w io.Writer) error {
			b, err := t.Registry().MarshalJSON()
			if err != nil {
				return err
			}
			_, err = w.Write(append(b, '\n'))
			return err
		}); err != nil {
			return fmt.Errorf("telemetry: writing metrics: %w", err)
		}
	}
	return nil
}

// writeTo streams write into a freshly created file; the content is
// buffered through the OS, so a failed close is a truncated output and must
// fail the command.
func writeTo(path string, write func(io.Writer) error) (err error) {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer errutil.CaptureClose(&err, fh.Close)
	return write(fh)
}

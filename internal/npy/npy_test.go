package npy

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripFloat64(t *testing.T) {
	want := []float64{1.5, -2.25, math.Pi, 0, math.MaxFloat64}
	a, err := NewFloat64([]int{5}, want)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape, []int{5}) {
		t.Errorf("shape = %v", got.Shape)
	}
	if !reflect.DeepEqual(got.Data.([]float64), want) {
		t.Errorf("data = %v", got.Data)
	}
}

func TestRoundTrip2DFloat32(t *testing.T) {
	// A patch-like 37×37 grid (the paper samples patches on a 37×37 grid).
	data := make([]float32, 37*37)
	for i := range data {
		data[i] = float32(i) * 0.001
	}
	a, err := NewFloat32([]int{37, 37}, data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape, []int{37, 37}) {
		t.Errorf("shape = %v", got.Shape)
	}
	if !reflect.DeepEqual(got.Data.([]float32), data) {
		t.Error("float32 data mismatch")
	}
}

func TestRoundTripIntTypes(t *testing.T) {
	a := &Array{Shape: []int{2, 2}, Data: []int64{1, -2, 3, -4}}
	b, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Data.([]int64), []int64{1, -2, 3, -4}) {
		t.Errorf("int64 data = %v", got.Data)
	}

	a32 := &Array{Shape: []int{3}, Data: []int32{7, 8, 9}}
	b, err = Marshal(a32)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Data.([]int32), []int32{7, 8, 9}) {
		t.Errorf("int32 data = %v", got.Data)
	}
}

func TestZeroDimensionalAndEmpty(t *testing.T) {
	// Scalar (shape ()) arrays hold exactly one element.
	a := &Array{Shape: nil, Data: []float64{42}}
	b, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shape) != 0 || got.Data.([]float64)[0] != 42 {
		t.Errorf("scalar round-trip: %+v", got)
	}

	// Empty arrays (shape (0,)) are legal.
	e := &Array{Shape: []int{0}, Data: []float64{}}
	b, err = Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty round-trip has %d elements", got.Len())
	}
}

func TestHeaderIsNumpyCompatible(t *testing.T) {
	a := &Array{Shape: []int{2, 3}, Data: []float32{1, 2, 3, 4, 5, 6}}
	b, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	// Total header (magic..newline) must be 64-byte aligned and the dict
	// must carry the canonical keys.
	nl := bytes.IndexByte(b, '\n')
	if (nl+1)%64 != 0 {
		t.Errorf("header length %d not 64-aligned", nl+1)
	}
	h := string(b[10 : nl+1])
	for _, want := range []string{"'descr': '<f4'", "'fortran_order': False", "'shape': (2, 3)"} {
		if !strings.Contains(h, want) {
			t.Errorf("header %q missing %q", h, want)
		}
	}
}

func TestOneDimShapeHasTrailingComma(t *testing.T) {
	a := &Array{Shape: []int{9}, Data: make([]float64, 9)}
	b, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte("(9,)")) {
		t.Error("1-D shape tuple must serialize as (9,)")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewFloat64([]int{3}, []float64{1}); err == nil {
		t.Error("shape/data mismatch not rejected")
	}
	if _, err := NewFloat64([]int{-1}, nil); err == nil {
		t.Error("negative dimension not rejected")
	}
	if err := Write(&bytes.Buffer{}, &Array{Shape: []int{1}, Data: []string{"x"}}); err == nil {
		t.Error("unsupported dtype not rejected")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOTNUMPYxxxx"),
		"bad version": append(append([]byte{}, magic...), 9, 9, 0, 0),
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	// Truncated data section.
	good, _ := Marshal(&Array{Shape: []int{4}, Data: []float64{1, 2, 3, 4}})
	if _, err := Unmarshal(good[:len(good)-8]); err == nil {
		t.Error("truncated data decoded without error")
	}
}

func TestParseHeaderKeyOrderTolerance(t *testing.T) {
	// numpy always writes descr first, but readers should not rely on order.
	descr, fortran, shape, err := parseHeader(
		"{'fortran_order': False, 'shape': (3, 4), 'descr': '<i8', }")
	if err != nil {
		t.Fatal(err)
	}
	if descr != "<i8" || fortran || !reflect.DeepEqual(shape, []int{3, 4}) {
		t.Errorf("parsed %q %v %v", descr, fortran, shape)
	}
}

func TestParseHeaderRejectsFortran(t *testing.T) {
	hdrOnly := "{'descr': '<f8', 'fortran_order': True, 'shape': (2,), }\n"
	var buf bytes.Buffer
	buf.Write(magic)
	buf.Write([]byte{1, 0})
	buf.Write([]byte{byte(len(hdrOnly)), 0})
	buf.WriteString(hdrOnly)
	buf.Write(make([]byte, 16))
	if _, err := Read(&buf); err == nil {
		t.Error("fortran_order=True must be rejected")
	}
}

func TestFloat64sConversion(t *testing.T) {
	cases := []struct {
		data any
		want []float64
	}{
		{[]float32{1.5, 2.5}, []float64{1.5, 2.5}},
		{[]int32{-1, 2}, []float64{-1, 2}},
		{[]int64{3, 4}, []float64{3, 4}},
		{[]float64{5}, []float64{5}},
	}
	for _, c := range cases {
		a := &Array{Shape: []int{len(c.want)}, Data: c.data}
		if got := a.Float64s(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Float64s(%T) = %v", c.data, got)
		}
	}
	if (&Array{Data: "bogus"}).Float64s() != nil {
		t.Error("Float64s of unsupported type should be nil")
	}
}

func TestPropertyRoundTripFloat64(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0 // NaN != NaN breaks DeepEqual, not the codec
			}
		}
		a := &Array{Shape: []int{len(vals)}, Data: vals}
		b, err := Marshal(a)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return got.Len() == 0
		}
		return reflect.DeepEqual(got.Data.([]float64), vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTrip2D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		data := make([]float32, r*c)
		for i := range data {
			data[i] = rng.Float32()
		}
		a := &Array{Shape: []int{r, c}, Data: data}
		b, err := Marshal(a)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Shape, []int{r, c}) &&
			reflect.DeepEqual(got.Data.([]float32), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

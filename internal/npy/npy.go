// Package npy implements a minimal, dependency-free codec for the NumPy
// .npy v1.0 array format. The paper stores patches "in a standard Numpy
// format" (~70 KB each) and serializes "a Numpy archive into a byte stream
// that can be redirected effortlessly to a file, an archive, or a database";
// this package is that byte-stream layer for mummi-go. Supported dtypes are
// little-endian float32, float64, int32, and int64 in C (row-major) order,
// which covers every array the workflow moves.
package npy

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

var magic = []byte("\x93NUMPY")

// Array is an n-dimensional array with a concrete element slice.
// Data must be one of []float32, []float64, []int32, []int64, with
// len(Data) equal to the product of Shape.
type Array struct {
	Shape []int
	Data  any
}

// NewFloat64 builds a float64 Array, validating the shape/data agreement.
func NewFloat64(shape []int, data []float64) (*Array, error) {
	a := &Array{Shape: shape, Data: data}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// NewFloat32 builds a float32 Array.
func NewFloat32(shape []int, data []float32) (*Array, error) {
	a := &Array{Shape: shape, Data: data}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Len returns the number of elements implied by Shape.
func (a *Array) Len() int {
	n := 1
	for _, s := range a.Shape {
		n *= s
	}
	return n
}

// Float64s returns the data as []float64, converting from float32/int types
// if needed. It always copies unless the underlying data is already
// []float64.
func (a *Array) Float64s() []float64 {
	switch d := a.Data.(type) {
	case []float64:
		return d
	case []float32:
		out := make([]float64, len(d))
		for i, v := range d {
			out[i] = float64(v)
		}
		return out
	case []int32:
		out := make([]float64, len(d))
		for i, v := range d {
			out[i] = float64(v)
		}
		return out
	case []int64:
		out := make([]float64, len(d))
		for i, v := range d {
			out[i] = float64(v)
		}
		return out
	}
	return nil
}

func (a *Array) descrAndSize() (string, int, error) {
	switch a.Data.(type) {
	case []float32:
		return "<f4", 4, nil
	case []float64:
		return "<f8", 8, nil
	case []int32:
		return "<i4", 4, nil
	case []int64:
		return "<i8", 8, nil
	default:
		return "", 0, fmt.Errorf("npy: unsupported data type %T", a.Data)
	}
}

func (a *Array) validate() error {
	_, _, err := a.descrAndSize()
	if err != nil {
		return err
	}
	for _, s := range a.Shape {
		if s < 0 {
			return fmt.Errorf("npy: negative dimension %d", s)
		}
	}
	var n int
	switch d := a.Data.(type) {
	case []float32:
		n = len(d)
	case []float64:
		n = len(d)
	case []int32:
		n = len(d)
	case []int64:
		n = len(d)
	}
	if n != a.Len() {
		return fmt.Errorf("npy: shape %v implies %d elements, data has %d", a.Shape, a.Len(), n)
	}
	return nil
}

// Write encodes the array to w in .npy v1.0 format.
func Write(w io.Writer, a *Array) error {
	if err := a.validate(); err != nil {
		return err
	}
	descr, _, err := a.descrAndSize()
	if err != nil {
		return err
	}
	shape := make([]string, len(a.Shape))
	for i, s := range a.Shape {
		shape[i] = strconv.Itoa(s)
	}
	shapeStr := strings.Join(shape, ", ")
	if len(a.Shape) == 1 {
		shapeStr += "," // numpy 1-tuples carry a trailing comma
	}
	header := fmt.Sprintf("{'descr': '%s', 'fortran_order': False, 'shape': (%s), }", descr, shapeStr)
	// Pad with spaces so magic+version+len+header is a multiple of 64 bytes,
	// ending in newline, exactly as numpy does.
	pre := len(magic) + 2 + 2
	total := pre + len(header) + 1
	pad := (64 - total%64) % 64
	header += strings.Repeat(" ", pad) + "\n"
	if len(header) > 0xFFFF {
		return errors.New("npy: header too large for v1.0")
	}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{1, 0}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(header))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	switch d := a.Data.(type) {
	case []float32:
		return binary.Write(w, binary.LittleEndian, d)
	case []float64:
		return binary.Write(w, binary.LittleEndian, d)
	case []int32:
		return binary.Write(w, binary.LittleEndian, d)
	case []int64:
		return binary.Write(w, binary.LittleEndian, d)
	}
	return nil
}

// Marshal encodes the array to a byte slice.
func Marshal(a *Array) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Read decodes one .npy array from r.
func Read(r io.Reader) (*Array, error) {
	head := make([]byte, len(magic)+2+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("npy: short header: %w", err)
	}
	if !bytes.Equal(head[:len(magic)], magic) {
		return nil, errors.New("npy: bad magic")
	}
	if head[6] != 1 || head[7] != 0 {
		return nil, fmt.Errorf("npy: unsupported version %d.%d", head[6], head[7])
	}
	hlen := int(binary.LittleEndian.Uint16(head[8:10]))
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("npy: short header dict: %w", err)
	}
	descr, fortran, shape, err := parseHeader(string(hdr))
	if err != nil {
		return nil, err
	}
	if fortran {
		return nil, errors.New("npy: fortran_order arrays not supported")
	}
	n := 1
	for _, s := range shape {
		if s < 0 {
			return nil, fmt.Errorf("npy: negative dimension %d", s)
		}
		n *= s
	}
	a := &Array{Shape: shape}
	switch descr {
	case "<f4":
		d := make([]float32, n)
		if err := binary.Read(r, binary.LittleEndian, d); err != nil {
			return nil, fmt.Errorf("npy: short data: %w", err)
		}
		a.Data = d
	case "<f8":
		d := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, d); err != nil {
			return nil, fmt.Errorf("npy: short data: %w", err)
		}
		a.Data = d
	case "<i4":
		d := make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, d); err != nil {
			return nil, fmt.Errorf("npy: short data: %w", err)
		}
		a.Data = d
	case "<i8":
		d := make([]int64, n)
		if err := binary.Read(r, binary.LittleEndian, d); err != nil {
			return nil, fmt.Errorf("npy: short data: %w", err)
		}
		a.Data = d
	default:
		return nil, fmt.Errorf("npy: unsupported dtype %q", descr)
	}
	return a, nil
}

// Unmarshal decodes one .npy array from a byte slice.
func Unmarshal(b []byte) (*Array, error) { return Read(bytes.NewReader(b)) }

// parseHeader parses the python-dict-literal header numpy writes. It
// tolerates arbitrary key order and whitespace but not nested structures
// beyond the shape tuple.
func parseHeader(h string) (descr string, fortran bool, shape []int, err error) {
	h = strings.TrimSpace(h)
	h = strings.TrimPrefix(h, "{")
	h = strings.TrimSuffix(strings.TrimSpace(h), "}")

	// Extract the shape tuple first so its commas don't confuse the split.
	si := strings.Index(h, "(")
	sj := strings.Index(h, ")")
	if si < 0 || sj < si {
		return "", false, nil, errors.New("npy: header missing shape tuple")
	}
	tup := h[si+1 : sj]
	rest := h[:si] + h[sj+1:]
	for _, part := range strings.Split(tup, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, convErr := strconv.Atoi(part)
		if convErr != nil {
			return "", false, nil, fmt.Errorf("npy: bad shape element %q", part)
		}
		shape = append(shape, v)
	}
	descr = ""
	sawFortran := false
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		i := strings.Index(kv, ":")
		if i < 0 {
			continue
		}
		key := strings.Trim(strings.TrimSpace(kv[:i]), "'\"")
		val := strings.TrimSpace(kv[i+1:])
		switch key {
		case "descr":
			descr = strings.Trim(val, "'\"")
		case "fortran_order":
			fortran = val == "True"
			sawFortran = true
		case "shape":
			// already handled via tuple extraction
		}
	}
	if descr == "" || !sawFortran {
		return "", false, nil, errors.New("npy: header missing descr or fortran_order")
	}
	return descr, fortran, shape, nil
}

// Package errutil holds the error-discipline helpers the mummi-lint
// errdiscipline analyzer pushes call sites toward: instead of discarding a
// cleanup error (`defer f.Close()`), join it into the function's result so
// a failed flush or close surfaces to the caller like any other failure.
package errutil

import "errors"

// CaptureClose runs close and joins a non-nil result into *errp. Intended
// for defers in functions with a named error return:
//
//	func load(path string) (err error) {
//		f, err := os.Open(path)
//		...
//		defer errutil.CaptureClose(&err, f.Close)
//
// If both the body and the close fail, errors.Join preserves both.
func CaptureClose(errp *error, close func() error) {
	if cerr := close(); cerr != nil {
		*errp = errors.Join(*errp, cerr)
	}
}

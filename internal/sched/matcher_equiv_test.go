package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"mummi/internal/cluster"
)

// refMatcher is an executable specification of Matcher: the pre-index
// linear node sweep, kept verbatim as the oracle the bitmap-indexed matcher
// is fuzzed against. It runs on its own identical Machine so both engines
// see the same state evolution; any divergence in chosen nodes, visit
// counts, success, or cursor motion is an equivalence bug in the index.
type refMatcher struct {
	m      *cluster.Machine
	policy Policy
	visits int64

	gpuCursor int
	cpuCursor int
}

func (mt *refMatcher) Match(req Request) (cluster.Alloc, int64, bool) {
	req = req.normalize()
	before := mt.visits
	var nodes []int
	var ok bool
	if mt.policy == LowIDExhaustive {
		nodes, ok = mt.matchExhaustive(req)
	} else {
		nodes, ok = mt.matchFirst(req)
	}
	if !ok {
		return cluster.Alloc{}, mt.visits - before, false
	}
	alloc := cluster.Alloc{}
	for _, n := range nodes {
		part, err := mt.m.Reserve(n, req.Cores, req.GPUs)
		if err != nil {
			mt.m.Release(alloc)
			return cluster.Alloc{}, mt.visits - before, false
		}
		alloc.Parts = append(alloc.Parts, part)
	}
	return alloc, mt.visits - before, true
}

func (mt *refMatcher) matchExhaustive(req Request) ([]int, bool) {
	perNode := int64(mt.m.Topology().VerticesPerNode())
	var chosen []int
	for i := 0; i < mt.m.NumNodes(); i++ {
		mt.visits += perNode
		if len(chosen) < req.NodeCount && mt.m.NodeFits(i, req.Cores, req.GPUs) {
			chosen = append(chosen, i)
		}
	}
	if len(chosen) < req.NodeCount {
		return nil, false
	}
	return chosen, true
}

func (mt *refMatcher) matchFirst(req Request) ([]int, bool) {
	perNode := int64(mt.m.Topology().VerticesPerNode())
	cursor := &mt.cpuCursor
	if req.GPUs > 0 {
		cursor = &mt.gpuCursor
	}
	var chosen []int
	advanced := *cursor
	for i := *cursor; i < mt.m.NumNodes(); i++ {
		mt.visits++
		n := mt.m.Node(i)
		classEmpty := (req.GPUs > 0 && n.FreeGPUs() == 0) || (req.GPUs == 0 && n.FreeCores() == 0)
		if classEmpty && i == advanced && len(chosen) == 0 {
			advanced = i + 1
		}
		if mt.m.NodeFits(i, req.Cores, req.GPUs) {
			chosen = append(chosen, i)
			mt.visits += perNode - 1
			if len(chosen) == req.NodeCount {
				*cursor = advanced
				return chosen, true
			}
		}
	}
	*cursor = advanced
	return nil, false
}

func (mt *refMatcher) NoteRelease(a cluster.Alloc) {
	for _, p := range a.Parts {
		if p.Node < mt.gpuCursor {
			mt.gpuCursor = p.Node
		}
		if p.Node < mt.cpuCursor {
			mt.cpuCursor = p.Node
		}
	}
}

func (mt *refMatcher) NoteDrainChange() {
	mt.gpuCursor, mt.cpuCursor = 0, 0
}

// fuzzMatcherEquivalence drives the optimized and reference matchers through
// an identical randomized sequence of matches, releases, and drain flips —
// the full mutation surface the scheduler exposes — and demands identical
// placements, visits, and cursors at every step.
func fuzzMatcherEquivalence(t *testing.T, policy Policy, nodes int, seed int64) {
	t.Helper()
	topo := cluster.Summit(nodes)
	mOpt, err := cluster.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	mRef, err := cluster.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewMatcher(mOpt, policy)
	ref := &refMatcher{m: mRef, policy: policy}

	// The campaign's real shape pool: CG sims, createsims, analysis,
	// backmap, ML inference — a handful of shapes, reused constantly.
	shapes := []Request{
		{Name: "cg-sim", NodeCount: 1, Cores: 6, GPUs: 1},
		{Name: "createsim", NodeCount: 1, Cores: 22, GPUs: 1},
		{Name: "analysis", NodeCount: 1, Cores: 4},
		{Name: "backmap", NodeCount: 1, Cores: 11, GPUs: 1},
		{Name: "ml", NodeCount: 2, Cores: 8, GPUs: 2},
		{Name: "wide", NodeCount: 4, Cores: 40},
	}

	rng := rand.New(rand.NewSource(seed))
	var liveOpt, liveRef []cluster.Alloc
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // match
			req := shapes[rng.Intn(len(shapes))]
			aOpt, vOpt, okOpt := opt.Match(req)
			aRef, vRef, okRef := ref.Match(req)
			if okOpt != okRef || vOpt != vRef {
				t.Fatalf("seed %d step %d %s: (ok,visits) optimized (%v,%d) reference (%v,%d)",
					seed, step, req.Name, okOpt, vOpt, okRef, vRef)
			}
			if fmt.Sprint(aOpt) != fmt.Sprint(aRef) {
				t.Fatalf("seed %d step %d %s: alloc diverged\n optimized %v\n reference %v",
					seed, step, req.Name, aOpt, aRef)
			}
			if okOpt {
				liveOpt = append(liveOpt, aOpt)
				liveRef = append(liveRef, aRef)
			}
		case op < 9: // release a random live alloc
			if len(liveOpt) == 0 {
				continue
			}
			i := rng.Intn(len(liveOpt))
			mOpt.Release(liveOpt[i])
			opt.NoteRelease(liveOpt[i])
			mRef.Release(liveRef[i])
			ref.NoteRelease(liveRef[i])
			liveOpt = append(liveOpt[:i], liveOpt[i+1:]...)
			liveRef = append(liveRef[:i], liveRef[i+1:]...)
		default: // chaos: flip a node's drain state
			n := rng.Intn(nodes)
			if mOpt.Node(n).Drained {
				mOpt.Undrain(n)
				mRef.Undrain(n)
			} else {
				mOpt.Drain(n)
				mRef.Drain(n)
			}
			opt.NoteDrainChange()
			ref.NoteDrainChange()
		}
		if opt.gpuCursor != ref.gpuCursor || opt.cpuCursor != ref.cpuCursor {
			t.Fatalf("seed %d step %d: cursors diverged: optimized (%d,%d) reference (%d,%d)",
				seed, step, opt.gpuCursor, opt.cpuCursor, ref.gpuCursor, ref.cpuCursor)
		}
		if opt.Visits() != ref.visits {
			t.Fatalf("seed %d step %d: cumulative visits diverged: %d vs %d",
				seed, step, opt.Visits(), ref.visits)
		}
	}
}

// TestMatcherFirstMatchEquivalence fuzzes the bitmap-indexed first-match
// path against the linear-sweep oracle, drain flips included.
func TestMatcherFirstMatchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		fuzzMatcherEquivalence(t, FirstMatch, 64, seed)
	}
}

// TestMatcherExhaustiveEquivalence fuzzes the exhaustive path the same way:
// the full-graph visit charge and lowest-ID placement must be preserved.
func TestMatcherExhaustiveEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		fuzzMatcherEquivalence(t, LowIDExhaustive, 48, seed)
	}
}

// TestMatcherEquivalenceLargeCluster runs one long first-match fuzz on a
// Summit-scale node count, where bitmap scans cover many words.
func TestMatcherEquivalenceLargeCluster(t *testing.T) {
	fuzzMatcherEquivalence(t, FirstMatch, 1200, 7)
}

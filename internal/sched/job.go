// Package sched implements a Flux-like workload manager (paper §4.3, §5.2):
// a queue manager (Q) feeding a resource-graph matcher (R) over a
// cluster.Machine, with the paper's two queueing/matching policy axes —
// exhaustive lowest-resource-ID matching versus greedy first-match, and
// synchronous versus asynchronous Q↔R communication. The synchronous +
// exhaustive configuration reproduces the 4000-node scheduling bottleneck of
// Fig. 6; the asynchronous + first-match configuration is the fix whose
// matcher-work improvement the paper measures at 670×.
//
// The scheduler runs under any vclock.Clock: the campaign driver replays
// Summit-scale job streams in virtual time, while examples run it in real
// time unchanged.
package sched

import (
	"fmt"
	"time"

	"mummi/internal/cluster"
)

// JobID identifies a submitted job.
type JobID int64

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	Pending State = iota
	Running
	Completed
	Failed
	Canceled
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Request describes a job's resource needs. The paper's campaign uses four
// single-node job types (CG setup, CG sim, AA setup, AA sim) plus one
// multi-node continuum job; NodeCount > 1 expresses the latter.
type Request struct {
	// Name labels the job type ("cg-sim", "createsim", ...).
	Name string
	// NodeCount is the number of nodes required (min 1).
	NodeCount int
	// Cores is the CPU cores required on each node.
	Cores int
	// GPUs is the GPUs required on each node.
	GPUs int
	// Duration, when positive, auto-completes the job that long after it
	// starts. Zero means the job runs until Complete/Fail is called.
	Duration time.Duration
}

func (r Request) normalize() Request {
	if r.NodeCount < 1 {
		r.NodeCount = 1
	}
	return r
}

func (r Request) validate(t cluster.Topology) error {
	r = r.normalize()
	if r.Cores < 0 || r.GPUs < 0 || (r.Cores == 0 && r.GPUs == 0) {
		return fmt.Errorf("sched: request %q asks for no resources", r.Name)
	}
	if r.Cores > t.CoresPerNode() || r.GPUs > t.GPUsPerNode {
		return fmt.Errorf("sched: request %q exceeds node capacity (%d cores, %d gpus)",
			r.Name, r.Cores, r.GPUs)
	}
	if r.NodeCount > t.Nodes {
		return fmt.Errorf("sched: request %q wants %d nodes, machine has %d", r.Name, r.NodeCount, t.Nodes)
	}
	return nil
}

// Job is the scheduler's record of one submitted job.
type Job struct {
	ID    JobID
	Req   Request
	State State

	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time

	Alloc cluster.Alloc
}

// Placement is one entry of the placement timeline (Fig. 6's x-axis).
type Placement struct {
	Time time.Time
	Job  JobID
}

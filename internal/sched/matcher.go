package sched

import (
	"mummi/internal/cluster"
)

// Policy selects the resource-matching strategy.
type Policy int

// Matching policies.
const (
	// LowIDExhaustive models the Flux behaviour the paper hit at scale:
	// the matcher "traverses the resource graph in its entirety for each
	// job, particularly in the beginning when there are many vacant
	// resources, creating 'too many choices'", then takes the
	// lowest-resource-ID feasible placement.
	LowIDExhaustive Policy = iota
	// FirstMatch is the paper's fix: assign the first matching resource set
	// greedily. "Although an aggressive policy like this may not be
	// suitable for batch job scheduling, it is well-suited for a workflow
	// like MuMMI."
	FirstMatch
)

// String names the policy.
func (p Policy) String() string {
	if p == FirstMatch {
		return "first-match"
	}
	return "low-id-exhaustive"
}

// Matcher is R: it walks the machine's resource graph to place requests,
// counting vertex visits — the unit of matcher work that the Fig. 6 chunky
// scheduling and the 670× comparison are measured in.
type Matcher struct {
	m      *cluster.Machine
	policy Policy

	visits int64

	// First-match cursors: the lowest node id at which a job of each class
	// (GPU-requiring vs CPU-only) might find room. A scan only advances its
	// cursor past nodes with zero free resources of the class; releases pull
	// the cursors back. This keeps first-match exact while visiting O(1)
	// nodes in the common packed-prefix case.
	gpuCursor int
	cpuCursor int
}

// NewMatcher builds a matcher over the machine.
func NewMatcher(m *cluster.Machine, policy Policy) *Matcher {
	return &Matcher{m: m, policy: policy}
}

// Visits returns the cumulative vertex-visit count.
func (mt *Matcher) Visits() int64 { return mt.visits }

// ResetVisits zeroes the counter (per-experiment accounting).
func (mt *Matcher) ResetVisits() { mt.visits = 0 }

// Match attempts to place req, reserving resources on success. It returns
// the allocation, the vertex visits this call performed, and whether the
// placement succeeded.
func (mt *Matcher) Match(req Request) (cluster.Alloc, int64, bool) {
	req = req.normalize()
	before := mt.visits
	var nodes []int
	var ok bool
	if mt.policy == LowIDExhaustive {
		nodes, ok = mt.matchExhaustive(req)
	} else {
		nodes, ok = mt.matchFirst(req)
	}
	if !ok {
		return cluster.Alloc{}, mt.visits - before, false
	}
	alloc := cluster.Alloc{}
	for _, n := range nodes {
		part, err := mt.m.Reserve(n, req.Cores, req.GPUs)
		if err != nil {
			// Roll back earlier parts; this only happens on internal
			// inconsistency and must not leak resources.
			mt.m.Release(alloc)
			return cluster.Alloc{}, mt.visits - before, false
		}
		alloc.Parts = append(alloc.Parts, part)
	}
	return alloc, mt.visits - before, true
}

// matchExhaustive visits every vertex of the graph (each node's full
// subtree), collects all feasible nodes, and picks the lowest IDs.
func (mt *Matcher) matchExhaustive(req Request) ([]int, bool) {
	perNode := int64(mt.m.Topology().VerticesPerNode())
	var chosen []int
	for i := 0; i < mt.m.NumNodes(); i++ {
		mt.visits += perNode // full subtree inspected: "too many choices"
		if len(chosen) < req.NodeCount && mt.m.NodeFits(i, req.Cores, req.GPUs) {
			chosen = append(chosen, i)
		}
		// NOTE: no early exit — this is the entire point of the experiment.
	}
	if len(chosen) < req.NodeCount {
		return nil, false
	}
	return chosen, true
}

// matchFirst scans from the class cursor and stops at the first feasible
// node set. Checking a node's aggregate free counts costs one vertex visit;
// pinning the chosen node's resources costs its subtree.
func (mt *Matcher) matchFirst(req Request) ([]int, bool) {
	perNode := int64(mt.m.Topology().VerticesPerNode())
	cursor := &mt.cpuCursor
	if req.GPUs > 0 {
		cursor = &mt.gpuCursor
	}
	var chosen []int
	advanced := *cursor
	for i := *cursor; i < mt.m.NumNodes(); i++ {
		mt.visits++ // aggregate check at the node vertex
		n := mt.m.Node(i)
		classEmpty := (req.GPUs > 0 && n.FreeGPUs() == 0) || (req.GPUs == 0 && n.FreeCores() == 0)
		if classEmpty && i == advanced && len(chosen) == 0 {
			// Contiguous fully-drained prefix: safe to skip permanently
			// until a release pulls the cursor back.
			advanced = i + 1
		}
		if mt.m.NodeFits(i, req.Cores, req.GPUs) {
			chosen = append(chosen, i)
			mt.visits += perNode - 1 // descend to pin cores/GPUs
			if len(chosen) == req.NodeCount {
				*cursor = advanced
				return chosen, true
			}
		}
	}
	*cursor = advanced
	return nil, false
}

// NoteRelease informs the matcher that resources were freed on a node, so
// first-match cursors can consider it again.
func (mt *Matcher) NoteRelease(a cluster.Alloc) {
	for _, p := range a.Parts {
		if p.Node < mt.gpuCursor {
			mt.gpuCursor = p.Node
		}
		if p.Node < mt.cpuCursor {
			mt.cpuCursor = p.Node
		}
	}
}

// NoteDrainChange resets cursors after drain/undrain events.
func (mt *Matcher) NoteDrainChange() {
	mt.gpuCursor, mt.cpuCursor = 0, 0
}

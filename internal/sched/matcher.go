package sched

import (
	"math/bits"

	"mummi/internal/cluster"
)

// Policy selects the resource-matching strategy.
type Policy int

// Matching policies.
const (
	// LowIDExhaustive models the Flux behaviour the paper hit at scale:
	// the matcher "traverses the resource graph in its entirety for each
	// job, particularly in the beginning when there are many vacant
	// resources, creating 'too many choices'", then takes the
	// lowest-resource-ID feasible placement.
	LowIDExhaustive Policy = iota
	// FirstMatch is the paper's fix: assign the first matching resource set
	// greedily. "Although an aggressive policy like this may not be
	// suitable for batch job scheduling, it is well-suited for a workflow
	// like MuMMI."
	FirstMatch
)

// String names the policy.
func (p Policy) String() string {
	if p == FirstMatch {
		return "first-match"
	}
	return "low-id-exhaustive"
}

// shapeKey identifies a per-node resource demand; every request with the
// same (cores, GPUs) pair selects the same set of feasible nodes.
type shapeKey struct {
	cores, gpus int
}

// Matcher is R: it walks the machine's resource graph to place requests,
// counting vertex visits — the unit of matcher work that the Fig. 6 chunky
// scheduling and the 670× comparison are measured in.
//
// Engineering (DESIGN.md §11): the visit count is part of the simulation
// model (it drives the modeled match latency), so optimizations must
// reproduce it exactly. The matcher therefore keeps per-shape free-node
// bitmaps — one bit per node, set when the node currently fits that
// (cores, GPUs) demand — maintained incrementally on every reservation,
// release, and drain change. Match finds feasible nodes by word-scanning
// the bitmap instead of sweeping the node array, and charges visits by the
// closed-form cost of the scan the pre-index implementation would have
// performed, so placements, visit counts, and cursor motion are
// bit-identical to the linear sweep at a fraction of the cost.
type Matcher struct {
	m      *cluster.Machine
	policy Policy

	visits int64

	// First-match cursors: the lowest node id at which a job of each class
	// (GPU-requiring vs CPU-only) might find room. A scan only advances its
	// cursor past nodes with zero free resources of the class; releases pull
	// the cursors back. This keeps first-match exact while visiting O(1)
	// nodes in the common packed-prefix case.
	gpuCursor int
	cpuCursor int

	// Free-node index. shapes holds one fit bitmap per demand shape seen so
	// far (campaigns use a handful of job shapes); gpuFree and cpuFree mirror
	// the class-empty test the cursor logic depends on (free counts only —
	// drained nodes with free resources still stop cursor advancement, as
	// they did under the linear sweep).
	words   int
	shapes  map[shapeKey][]uint64
	gpuFree []uint64
	cpuFree []uint64
}

// NewMatcher builds a matcher over the machine.
func NewMatcher(m *cluster.Machine, policy Policy) *Matcher {
	mt := &Matcher{
		m:      m,
		policy: policy,
		words:  (m.NumNodes() + 63) / 64,
		shapes: make(map[shapeKey][]uint64),
	}
	mt.gpuFree = make([]uint64, mt.words)
	mt.cpuFree = make([]uint64, mt.words)
	for i := 0; i < m.NumNodes(); i++ {
		mt.refreshNode(i)
	}
	return mt
}

// Visits returns the cumulative vertex-visit count.
func (mt *Matcher) Visits() int64 { return mt.visits }

// ResetVisits zeroes the counter (per-experiment accounting).
func (mt *Matcher) ResetVisits() { mt.visits = 0 }

// Match attempts to place req, reserving resources on success. It returns
// the allocation, the vertex visits this call performed, and whether the
// placement succeeded.
func (mt *Matcher) Match(req Request) (cluster.Alloc, int64, bool) {
	req = req.normalize()
	before := mt.visits
	var nodes []int
	var ok bool
	if mt.policy == LowIDExhaustive {
		nodes, ok = mt.matchExhaustive(req)
	} else {
		nodes, ok = mt.matchFirst(req)
	}
	if !ok {
		return cluster.Alloc{}, mt.visits - before, false
	}
	alloc := cluster.Alloc{}
	for _, n := range nodes {
		part, err := mt.m.Reserve(n, req.Cores, req.GPUs)
		if err != nil {
			// Roll back earlier parts; this only happens on internal
			// inconsistency and must not leak resources.
			mt.m.Release(alloc)
			for _, p := range alloc.Parts {
				mt.refreshNode(p.Node)
			}
			return cluster.Alloc{}, mt.visits - before, false
		}
		alloc.Parts = append(alloc.Parts, part)
		mt.refreshNode(n)
	}
	return alloc, mt.visits - before, true
}

// matchExhaustive models visiting every vertex of the graph (each node's
// full subtree), collects all feasible nodes, and picks the lowest IDs. The
// full-graph visit charge is the entire point of the experiment; only the
// feasibility scan itself is served from the bitmap.
func (mt *Matcher) matchExhaustive(req Request) ([]int, bool) {
	n := mt.m.NumNodes()
	mt.visits += int64(mt.m.Topology().VerticesPerNode()) * int64(n)
	fit := mt.shapeBits(req.Cores, req.GPUs)
	var chosen []int
	for i := nextSet(fit, 0, n); i < n && len(chosen) < req.NodeCount; i = nextSet(fit, i+1, n) {
		chosen = append(chosen, i)
	}
	if len(chosen) < req.NodeCount {
		return nil, false
	}
	return chosen, true
}

// matchFirst takes the first feasible node set at or after the class cursor.
// The linear sweep charged one visit per aggregate node check plus the
// chosen nodes' subtrees; the bitmap scan reproduces that charge in closed
// form: on success the sweep would have stopped at the last chosen node, on
// failure it would have walked to the end of the machine. The cursor
// advances to the first node with free resources of the class, exactly where
// the sweep's contiguous class-empty-prefix rule left it: a feasible node
// has class-free resources, so no placement can precede that point.
func (mt *Matcher) matchFirst(req Request) ([]int, bool) {
	perNode := int64(mt.m.Topology().VerticesPerNode())
	n := mt.m.NumNodes()
	cursor, class := &mt.cpuCursor, mt.cpuFree
	if req.GPUs > 0 {
		cursor, class = &mt.gpuCursor, mt.gpuFree
	}
	fit := mt.shapeBits(req.Cores, req.GPUs)
	var chosen []int
	for i := *cursor; len(chosen) < req.NodeCount; i++ {
		i = nextSet(fit, i, n)
		if i >= n {
			break
		}
		chosen = append(chosen, i)
	}
	advanced := nextSet(class, *cursor, n)
	if req.NodeCount > 0 && len(chosen) == req.NodeCount {
		last := chosen[len(chosen)-1]
		mt.visits += int64(last-*cursor+1) + int64(len(chosen))*(perNode-1)
		*cursor = advanced
		return chosen, true
	}
	mt.visits += int64(n-*cursor) + int64(len(chosen))*(perNode-1)
	*cursor = advanced
	return nil, false
}

// NoteRelease informs the matcher that resources were freed on a node, so
// first-match cursors can consider it again and the free-node index reflects
// the new capacity. Callers release on the machine first.
func (mt *Matcher) NoteRelease(a cluster.Alloc) {
	for _, p := range a.Parts {
		if p.Node < mt.gpuCursor {
			mt.gpuCursor = p.Node
		}
		if p.Node < mt.cpuCursor {
			mt.cpuCursor = p.Node
		}
		mt.refreshNode(p.Node)
	}
}

// NoteDrainChange resets cursors after drain/undrain events and rebuilds the
// free-node index (drain changes carry no node id, and they are rare).
func (mt *Matcher) NoteDrainChange() {
	mt.gpuCursor, mt.cpuCursor = 0, 0
	for i := 0; i < mt.m.NumNodes(); i++ {
		mt.refreshNode(i)
	}
}

// ---------------------------------------------------------------------------
// Free-node bitmaps

// shapeBits returns the fit bitmap for a demand shape, building it on first
// use. Later mutations keep it current via refreshNode.
func (mt *Matcher) shapeBits(cores, gpus int) []uint64 {
	k := shapeKey{cores, gpus}
	b, ok := mt.shapes[k]
	if !ok {
		b = make([]uint64, mt.words)
		for i := 0; i < mt.m.NumNodes(); i++ {
			setBit(b, i, mt.m.NodeFits(i, cores, gpus))
		}
		mt.shapes[k] = b
	}
	return b
}

// refreshNode re-derives every index bit for one node from the machine's
// current state. Bit updates commute, so refresh order never matters.
func (mt *Matcher) refreshNode(i int) {
	nd := mt.m.Node(i)
	setBit(mt.gpuFree, i, nd.FreeGPUs() > 0)
	setBit(mt.cpuFree, i, nd.FreeCores() > 0)
	for k, b := range mt.shapes {
		setBit(b, i, mt.m.NodeFits(i, k.cores, k.gpus))
	}
}

// setBit sets or clears bit i.
func setBit(b []uint64, i int, on bool) {
	if on {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// nextSet returns the first set bit index at or after from, or limit if
// there is none below limit.
func nextSet(b []uint64, from, limit int) int {
	if from >= limit {
		return limit
	}
	w := from >> 6
	cur := b[w] >> (uint(from) & 63) << (uint(from) & 63)
	for {
		if cur != 0 {
			i := w<<6 + bits.TrailingZeros64(cur)
			if i >= limit {
				return limit
			}
			return i
		}
		w++
		if w<<6 >= limit {
			return limit
		}
		cur = b[w]
	}
}

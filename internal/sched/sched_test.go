package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

func newSched(t *testing.T, nodes int, policy Policy, mode Mode) (*vclock.Virtual, *Scheduler) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	m, err := cluster.New(cluster.Summit(nodes))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(clk, Config{Machine: m, Policy: policy, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return clk, s
}

func gpuJob(d time.Duration) Request {
	return Request{Name: "cg-sim", Cores: 3, GPUs: 1, Duration: d}
}

func TestSubmitRunComplete(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	var started, finished []JobID
	s.OnStart(func(j *Job) { started = append(started, j.ID) })
	s.OnFinish(func(j *Job) { finished = append(finished, j.ID) })
	job, err := s.Submit(gpuJob(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Minute)
	if got, _ := s.Job(job.ID); got.State != Running {
		t.Fatalf("state after load = %v", got.State)
	}
	if s.Machine().UsedGPUs() != 1 {
		t.Error("GPU not reserved")
	}
	clk.RunFor(2 * time.Hour)
	got, _ := s.Job(job.ID)
	if got.State != Completed {
		t.Fatalf("state after duration = %v", got.State)
	}
	if got.EndTime.Sub(got.StartTime) != time.Hour {
		t.Errorf("ran for %v, want 1h", got.EndTime.Sub(got.StartTime))
	}
	if s.Machine().UsedGPUs() != 0 {
		t.Error("GPU not released")
	}
	if len(started) != 1 || len(finished) != 1 {
		t.Errorf("callbacks: started=%v finished=%v", started, finished)
	}
}

func TestValidateRequests(t *testing.T) {
	_, s := newSched(t, 2, FirstMatch, Async)
	bad := []Request{
		{Name: "none"},                         // no resources
		{Name: "fat", Cores: 99},               // exceeds node cores
		{Name: "fatg", GPUs: 7},                // exceeds node gpus
		{Name: "wide", Cores: 1, NodeCount: 3}, // exceeds machine
	}
	for _, r := range bad {
		if _, err := s.Submit(r); err == nil {
			t.Errorf("request %+v accepted", r)
		}
	}
}

func TestFCFSNoBackfill(t *testing.T) {
	// Head-of-line job needs 2 nodes; only 1 is free. A small job behind it
	// must NOT jump the queue (throughput-oriented FCFS w/o backfilling).
	clk, s := newSched(t, 2, FirstMatch, Async)
	hog, _ := s.Submit(Request{Name: "hog", Cores: 44, GPUs: 0, NodeCount: 1, Duration: 10 * time.Hour})
	clk.RunFor(time.Minute)
	if j, _ := s.Job(hog.ID); j.State != Running {
		t.Fatal("hog not running")
	}
	big, _ := s.Submit(Request{Name: "big", Cores: 44, NodeCount: 2, Duration: time.Hour})
	small, _ := s.Submit(gpuJob(time.Hour))
	clk.RunFor(time.Hour)
	if j, _ := s.Job(big.ID); j.State != Pending {
		t.Errorf("big = %v, want pending", j.State)
	}
	if j, _ := s.Job(small.ID); j.State != Pending {
		t.Errorf("small = %v, want pending (no backfill)", j.State)
	}
	// When the hog finishes, big then small run.
	clk.RunFor(10 * time.Hour)
	if j, _ := s.Job(big.ID); j.State == Pending {
		t.Error("big never started after release")
	}
}

func TestExhaustiveVisitsWholeGraph(t *testing.T) {
	_, sEx := newSched(t, 50, LowIDExhaustive, Async)
	clkEx := vclock.NewVirtual(epoch)
	m, _ := cluster.New(cluster.Summit(50))
	sEx, _ = New(clkEx, Config{Machine: m, Policy: LowIDExhaustive, Mode: Async})
	const jobs = 20
	for i := 0; i < jobs; i++ {
		if _, err := sEx.Submit(gpuJob(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	clkEx.RunFor(30 * time.Minute)
	wantPerJob := int64(50 * cluster.Summit(50).VerticesPerNode())
	if got := sEx.MatcherVisits(); got != jobs*wantPerJob {
		t.Errorf("exhaustive visits = %d, want %d", got, jobs*wantPerJob)
	}
}

func TestFirstMatchVisitsFar_Fewer(t *testing.T) {
	clk, s := newSched(t, 50, FirstMatch, Async)
	const jobs = 20
	for i := 0; i < jobs; i++ {
		s.Submit(gpuJob(time.Hour))
	}
	clk.RunFor(30 * time.Minute)
	exhaustive := int64(jobs * 50 * cluster.Summit(50).VerticesPerNode())
	got := s.MatcherVisits()
	if got >= exhaustive/10 {
		t.Errorf("first-match visits = %d, not far below exhaustive %d", got, exhaustive)
	}
	_, running, _ := s.Counts()
	if running != jobs {
		t.Errorf("running = %d", running)
	}
}

func TestFirstMatchPacksLowNodesFirst(t *testing.T) {
	clk, s := newSched(t, 4, FirstMatch, Async)
	for i := 0; i < 6; i++ {
		s.Submit(gpuJob(time.Hour))
	}
	clk.RunFor(time.Minute)
	// 6 GPUs fit on node 0; nodes 1-3 must be untouched.
	if s.Machine().Node(0).FreeGPUs() != 0 {
		t.Errorf("node 0 free GPUs = %d", s.Machine().Node(0).FreeGPUs())
	}
	for n := 1; n < 4; n++ {
		if s.Machine().Node(n).FreeGPUs() != 6 {
			t.Errorf("node %d touched", n)
		}
	}
}

func TestFirstMatchCursorRewindsOnRelease(t *testing.T) {
	clk, s := newSched(t, 2, FirstMatch, Async)
	// Fill both nodes (12 GPU jobs), then free one job on node 0 and submit
	// another: it must land on node 0 again despite the advanced cursor.
	var first *Job
	for i := 0; i < 12; i++ {
		j, _ := s.Submit(gpuJob(0))
		if i == 0 {
			first = j
		}
	}
	clk.RunFor(time.Minute)
	if s.Machine().UsedGPUs() != 12 {
		t.Fatalf("UsedGPUs = %d", s.Machine().UsedGPUs())
	}
	if err := s.Complete(first.ID); err != nil {
		t.Fatal(err)
	}
	next, _ := s.Submit(gpuJob(0))
	clk.RunFor(time.Minute)
	j, _ := s.Job(next.ID)
	if j.State != Running {
		t.Fatalf("replacement job = %v", j.State)
	}
	if len(j.Alloc.Parts) != 1 || j.Alloc.Parts[0].Node != 0 {
		t.Errorf("replacement landed on node %d, want 0", j.Alloc.Parts[0].Node)
	}
}

func TestMultiNodeContinuumJob(t *testing.T) {
	// The continuum job: 150 nodes × 24 cores, no GPUs (§4.1, §5.2).
	clk, s := newSched(t, 160, FirstMatch, Async)
	j, err := s.Submit(Request{Name: "continuum", NodeCount: 150, Cores: 24, Duration: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Hour)
	got, _ := s.Job(j.ID)
	if got.State != Running {
		t.Fatalf("continuum = %v", got.State)
	}
	if len(got.Alloc.Parts) != 150 {
		t.Errorf("alloc spans %d nodes", len(got.Alloc.Parts))
	}
	if s.Machine().UsedCores() != 150*24 {
		t.Errorf("UsedCores = %d", s.Machine().UsedCores())
	}
}

func TestCancelPending(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	// Fill the node so later jobs stay pending.
	for i := 0; i < 6; i++ {
		s.Submit(gpuJob(time.Hour))
	}
	victim, _ := s.Submit(gpuJob(time.Hour))
	clk.RunFor(time.Minute)
	if !s.Cancel(victim.ID) {
		t.Fatal("Cancel of pending job failed")
	}
	if s.Cancel(victim.ID) {
		t.Error("double Cancel succeeded")
	}
	j, _ := s.Job(victim.ID)
	if j.State != Canceled {
		t.Errorf("state = %v", j.State)
	}
	// Canceled job must never run.
	clk.RunFor(3 * time.Hour)
	if j, _ := s.Job(victim.ID); j.State != Canceled {
		t.Errorf("canceled job reached %v", j.State)
	}
	if s.Cancel(JobID(9999)) {
		t.Error("Cancel of unknown job succeeded")
	}
}

func TestFailAndResubmit(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	j, _ := s.Submit(gpuJob(0))
	clk.RunFor(time.Minute)
	if err := s.Fail(j.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Job(j.ID)
	if got.State != Failed {
		t.Errorf("state = %v", got.State)
	}
	if s.Machine().UsedGPUs() != 0 {
		t.Error("failed job leaked GPU")
	}
	// The tracker's resubmission path: a fresh job takes its place.
	j2, _ := s.Submit(gpuJob(0))
	clk.RunFor(time.Minute)
	if got, _ := s.Job(j2.ID); got.State != Running {
		t.Errorf("resubmitted job = %v", got.State)
	}
}

func TestCompleteErrors(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	if err := s.Complete(JobID(42)); err == nil {
		t.Error("Complete of unknown job succeeded")
	}
	j, _ := s.Submit(gpuJob(0))
	if err := s.Complete(j.ID); err == nil {
		t.Error("Complete of pending job succeeded")
	}
	clk.RunFor(time.Minute)
	if err := s.Complete(j.ID); err != nil {
		t.Fatal(err)
	}
	// A second finish of an already-terminal job reports the typed
	// ErrAlreadyTerminal so callers can distinguish the benign
	// auto-complete race from real errors.
	if err := s.Complete(j.ID); !errors.Is(err, ErrAlreadyTerminal) {
		t.Errorf("second Complete = %v, want ErrAlreadyTerminal", err)
	}
	if err := s.Fail(j.ID); !errors.Is(err, ErrAlreadyTerminal) {
		t.Errorf("Fail after Complete = %v, want ErrAlreadyTerminal", err)
	}
}

func TestDrainBlocksPlacement(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	s.Drain(0)
	j, _ := s.Submit(gpuJob(time.Hour))
	clk.RunFor(time.Hour)
	if got, _ := s.Job(j.ID); got.State != Pending {
		t.Fatalf("job on drained machine = %v", got.State)
	}
	s.Undrain(0)
	clk.RunFor(time.Hour)
	if got, _ := s.Job(j.ID); got.State != Running && got.State != Completed {
		t.Errorf("job after undrain = %v", got.State)
	}
}

func TestSyncSlowerThanAsyncUnderLoad(t *testing.T) {
	// The Fig. 6 contrast in miniature: same machine, same submission
	// stream; sync+exhaustive must take longer to place all jobs than
	// async+first-match.
	run := func(policy Policy, mode Mode) time.Duration {
		clk := vclock.NewVirtual(epoch)
		m, _ := cluster.New(cluster.Summit(40))
		s, _ := New(clk, Config{Machine: m, Policy: policy, Mode: mode,
			StatusPollEvery: 10 * time.Minute})
		const jobs = 240 // machine holds exactly 240 GPU jobs
		for i := 0; i < jobs; i++ {
			s.Submit(gpuJob(0))
		}
		for i := 0; i < 10000; i++ {
			_, running, _ := s.Counts()
			if running == jobs {
				break
			}
			clk.RunFor(time.Minute)
		}
		tl := s.Timeline()
		if len(tl) != jobs {
			return 1 << 62 // failed to load: treat as infinitely slow
		}
		return tl[len(tl)-1].Time.Sub(epoch)
	}
	slow := run(LowIDExhaustive, Sync)
	fast := run(FirstMatch, Async)
	if slow <= fast {
		t.Errorf("sync+exhaustive loaded in %v, async+first-match in %v", slow, fast)
	}
}

func TestCountsAndTimeline(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	for i := 0; i < 8; i++ { // 6 fit, 2 queue
		s.Submit(gpuJob(0))
	}
	clk.RunFor(time.Minute)
	q, running, finished := s.Counts()
	if q != 2 || running != 6 || finished != 0 {
		t.Errorf("counts = %d/%d/%d", q, running, finished)
	}
	tl := s.Timeline()
	if len(tl) != 6 {
		t.Errorf("timeline = %d placements", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Time.Before(tl[i-1].Time) {
			t.Error("timeline out of order")
		}
	}
}

func TestClosedSchedulerRejectsSubmit(t *testing.T) {
	_, s := newSched(t, 1, FirstMatch, Async)
	s.Close()
	if _, err := s.Submit(gpuJob(0)); err == nil {
		t.Error("Submit after Close succeeded")
	}
}

func TestPropertyNoOvercommitAndFullPlacement(t *testing.T) {
	// Any random mix of short jobs on a small machine: resources are never
	// overcommitted, and with enough virtual time every job completes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := vclock.NewVirtual(epoch)
		m, _ := cluster.New(cluster.Summit(2))
		policy := Policy(rng.Intn(2))
		mode := Mode(rng.Intn(2))
		s, _ := New(clk, Config{Machine: m, Policy: policy, Mode: mode})
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			req := Request{
				Name:     fmt.Sprintf("j%d", i),
				Cores:    1 + rng.Intn(4),
				GPUs:     rng.Intn(2),
				Duration: time.Duration(1+rng.Intn(60)) * time.Minute,
			}
			if req.Cores == 0 && req.GPUs == 0 {
				req.Cores = 1
			}
			if _, err := s.Submit(req); err != nil {
				return false
			}
		}
		ok := true
		for step := 0; step < 24*60; step++ {
			clk.RunFor(time.Minute)
			if m.UsedGPUs() > m.Topology().TotalGPUs() || m.UsedCores() > m.Topology().TotalCores() ||
				m.UsedGPUs() < 0 || m.UsedCores() < 0 {
				ok = false
				break
			}
			_, _, finished := s.Counts()
			if finished == n {
				break
			}
		}
		_, _, finished := s.Counts()
		return ok && finished == n && m.UsedGPUs() == 0 && m.UsedCores() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStatusPollLoadCreatesPlacementGaps(t *testing.T) {
	// The Fig. 6 mechanism: in sync mode, Q-priority message load (status
	// sweeps over all tracked jobs) starves forwarding to R, so placements
	// arrive in chunks separated by idle gaps; in async mode the matcher
	// keeps placing while Q chats.
	run := func(mode Mode) time.Duration {
		clk := vclock.NewVirtual(epoch)
		m, _ := cluster.New(cluster.Summit(30))
		s, _ := New(clk, Config{
			Machine: m, Policy: LowIDExhaustive, Mode: mode,
			Costs: Costs{
				SubmitMsg:   5 * time.Millisecond,
				StatusMsg:   500 * time.Millisecond, // heavy status traffic
				VertexVisit: 2 * time.Millisecond,   // slow exhaustive matches
			},
			StatusPollEvery: 5 * time.Minute,
		})
		for i := 0; i < 180; i++ {
			s.Submit(gpuJob(0))
		}
		clk.RunFor(24 * time.Hour)
		tl := s.Timeline()
		if len(tl) < 180 {
			t.Fatalf("%v: only %d placements", mode, len(tl))
		}
		var maxGap time.Duration
		for i := 1; i < len(tl); i++ {
			if g := tl[i].Time.Sub(tl[i-1].Time); g > maxGap {
				maxGap = g
			}
		}
		return maxGap
	}
	syncGap := run(Sync)
	asyncGap := run(Async)
	if syncGap < 4*asyncGap {
		t.Errorf("sync max placement gap %v not much larger than async %v", syncGap, asyncGap)
	}
	// The sync gaps are minutes-scale chunks, not jitter.
	if syncGap < time.Minute {
		t.Errorf("sync max gap %v too small to be Fig. 6 chunking", syncGap)
	}
}

func TestCrashKillsJobsAndDrainsNode(t *testing.T) {
	clk, s := newSched(t, 2, FirstMatch, Async)
	var jobs []*Job
	for i := 0; i < 12; i++ { // fills both nodes: 6 GPU jobs each
		j, err := s.Submit(gpuJob(0))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	clk.RunFor(time.Hour)
	var onNode0 []JobID
	for _, j := range jobs {
		got, _ := s.Job(j.ID)
		if got.State != Running {
			t.Fatalf("job %d = %v before crash", j.ID, got.State)
		}
		if got.Alloc.Parts[0].Node == 0 {
			onNode0 = append(onNode0, j.ID)
		}
	}
	if len(onNode0) != 6 {
		t.Fatalf("%d jobs on node 0, want 6", len(onNode0))
	}

	killed := s.Crash(0)
	if len(killed) != len(onNode0) {
		t.Fatalf("Crash killed %v, want %v", killed, onNode0)
	}
	for i, id := range killed {
		if id != onNode0[i] {
			t.Fatalf("Crash killed %v, want sorted %v", killed, onNode0)
		}
		if got, _ := s.Job(id); got.State != Failed {
			t.Errorf("victim %d = %v, want Failed", id, got.State)
		}
	}
	if s.Machine().UsedGPUs() != 6 {
		t.Errorf("UsedGPUs = %d after crash, want 6 (survivors only)", s.Machine().UsedGPUs())
	}

	// The crashed node must accept no new placements until revived.
	j, _ := s.Submit(gpuJob(0))
	clk.RunFor(time.Hour)
	if got, _ := s.Job(j.ID); got.State != Pending {
		t.Fatalf("job placed on crashed node: %v", got.State)
	}
	s.Revive(0)
	clk.RunFor(time.Hour)
	if got, _ := s.Job(j.ID); got.State != Running {
		t.Errorf("job after Revive = %v, want Running", got.State)
	}
}

func TestHangSuppressesAutoCompletion(t *testing.T) {
	clk, s := newSched(t, 1, FirstMatch, Async)
	j, _ := s.Submit(gpuJob(time.Hour))
	clk.RunFor(30 * time.Minute)
	if !s.Hang(j.ID) {
		t.Fatal("Hang of running job refused")
	}
	clk.RunFor(5 * time.Hour) // far past the 1h modeled duration
	got, _ := s.Job(j.ID)
	if got.State != Running || !s.Hung(j.ID) {
		t.Fatalf("hung job = %v (hung=%v), want Running/true", got.State, s.Hung(j.ID))
	}
	if s.Machine().UsedGPUs() != 1 {
		t.Error("hung job released its GPU")
	}
	// The watchdog's kill path: Fail gets it off the machine.
	if err := s.Fail(j.ID); err != nil {
		t.Fatal(err)
	}
	if s.Hung(j.ID) {
		t.Error("job still reported hung after Fail")
	}
	if s.Machine().UsedGPUs() != 0 {
		t.Error("GPU not released after failing hung job")
	}
	// Hang of a terminal or unknown job is refused.
	if s.Hang(j.ID) || s.Hang(JobID(9999)) {
		t.Error("Hang accepted a non-running job")
	}
}

func TestAutoCompleteRacesManualFail(t *testing.T) {
	// Under the real clock the modeled auto-completion timer genuinely
	// races a concurrent manual Fail; whichever wins, the loser must see
	// ErrAlreadyTerminal and nothing else (the -race gate covers this
	// path's locking).
	clk := vclock.NewReal()
	m, _ := cluster.New(cluster.Summit(2))
	tel := telemetry.Nop()
	s, err := New(clk, Config{Machine: m, Policy: FirstMatch, Mode: Async,
		Costs: Costs{SubmitMsg: time.Microsecond, StatusMsg: time.Microsecond,
			VertexVisit: time.Nanosecond},
		Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	started := make(chan JobID, n)
	finished := make(chan JobID, n)
	s.OnStart(func(j *Job) { started <- j.ID })
	s.OnFinish(func(j *Job) { finished <- j.ID })
	go func() {
		for id := range started {
			if err := s.Fail(id); err != nil && !errors.Is(err, ErrAlreadyTerminal) {
				t.Errorf("manual Fail of %d: %v", id, err)
			}
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := s.Submit(Request{Name: fmt.Sprintf("r%d", i), GPUs: 1, Cores: 2,
			Duration: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d jobs finished", i, n)
		}
	}
	if m.UsedGPUs() != 0 || m.UsedCores() != 0 {
		t.Errorf("resources leaked: %d GPUs %d cores", m.UsedGPUs(), m.UsedCores())
	}
	if got := tel.Registry().Counter("sched.autocomplete_errors_total").Value(); got != 0 {
		t.Errorf("autocomplete saw %d unexpected errors", got)
	}
}

func TestSchedulerWithRealClock(t *testing.T) {
	// The same scheduler runs under the wall clock (examples do this);
	// costs are scaled down so the test finishes in milliseconds.
	clk := vclock.NewReal()
	m, _ := cluster.New(cluster.Summit(1))
	s, err := New(clk, Config{Machine: m, Policy: FirstMatch, Mode: Async,
		Costs: Costs{SubmitMsg: time.Microsecond, StatusMsg: time.Microsecond,
			VertexVisit: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	s.OnFinish(func(j *Job) { close(done) })
	if _, err := s.Submit(Request{Name: "quick", GPUs: 1, Cores: 2,
		Duration: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("job never finished under the real clock")
	}
	if m.UsedGPUs() != 0 {
		t.Error("GPU not released")
	}
}

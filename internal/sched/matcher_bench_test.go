package sched

import (
	"testing"

	"mummi/internal/cluster"
)

// benchMachine builds a Summit-shaped machine with every node carrying a
// partial load, so matches have to look past busy nodes.
func benchMachine(b *testing.B, nodes int) *cluster.Machine {
	b.Helper()
	m, err := cluster.New(cluster.Summit(nodes))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMatcherFirstMatchDeepQueue models a deep dispatch queue on a
// large cluster: fill the machine nearly full, then alternate release and
// re-match so every placement scans past the packed prefix.
func BenchmarkMatcherFirstMatchDeepQueue(b *testing.B) {
	const nodes = 4608 // full Summit
	m := benchMachine(b, nodes)
	mt := NewMatcher(m, FirstMatch)
	req := Request{Name: "cg-sim", NodeCount: 1, Cores: 6, GPUs: 1}
	var allocs []cluster.Alloc
	for {
		a, _, ok := mt.Match(req)
		if !ok {
			break
		}
		allocs = append(allocs, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Free a slot deep in the machine, then place into it.
		victim := allocs[(i*2654435761)%len(allocs)]
		m.Release(victim)
		mt.NoteRelease(victim)
		a, _, ok := mt.Match(req)
		if !ok {
			b.Fatal("match failed with a freed slot available")
		}
		allocs[(i*2654435761)%len(allocs)] = a
	}
}

// BenchmarkMatcherExhaustiveLargeCluster measures the modeled full-graph
// matcher on a large cluster; the visit charge is constant but the feasible
// scan used to walk every node.
func BenchmarkMatcherExhaustiveLargeCluster(b *testing.B) {
	const nodes = 4608
	m := benchMachine(b, nodes)
	mt := NewMatcher(m, LowIDExhaustive)
	req := Request{Name: "cg-sim", NodeCount: 1, Cores: 6, GPUs: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _, ok := mt.Match(req)
		if !ok {
			b.Fatal("match failed on non-full machine")
		}
		m.Release(a)
		mt.NoteRelease(a)
	}
}

// BenchmarkMatcherMixedShapes exercises the per-shape bitmap maintenance
// cost: several request shapes churn against the same machine.
func BenchmarkMatcherMixedShapes(b *testing.B) {
	const nodes = 1024
	m := benchMachine(b, nodes)
	mt := NewMatcher(m, FirstMatch)
	shapes := []Request{
		{Name: "cg-sim", NodeCount: 1, Cores: 6, GPUs: 1},
		{Name: "analysis", NodeCount: 1, Cores: 4},
		{Name: "createsim", NodeCount: 1, Cores: 22, GPUs: 1},
		{Name: "ml", NodeCount: 2, Cores: 8, GPUs: 2},
	}
	var live []cluster.Alloc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 3000 {
			victim := live[(i*40503)%len(live)]
			m.Release(victim)
			mt.NoteRelease(victim)
			live[(i*40503)%len(live)] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		a, _, ok := mt.Match(shapes[i%len(shapes)])
		if ok {
			live = append(live, a)
		}
	}
}

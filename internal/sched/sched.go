package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/telemetry"
	"mummi/internal/vclock"
)

// ErrAlreadyTerminal is returned by Complete/Fail when the job has already
// reached a terminal state — typically the benign race between the modeled
// auto-completion timer and a manual Complete/Fail (or a node crash).
// Callers that tolerate the race match it with errors.Is; anything else
// escaping finish is a real error.
var ErrAlreadyTerminal = errors.New("sched: job already terminal")

// Mode selects how the queue manager (Q) and matcher (R) communicate.
type Mode int

// Q↔R communication modes.
const (
	// Sync models the Flux version used in the campaign: Q and R
	// "communicate synchronously" — Q is blocked while R matches, and
	// message handling (submissions, status traffic) has priority over
	// forwarding jobs to R. At 4000-node scale this is the Fig. 6
	// bottleneck: scheduling "happened in large chunks followed by large
	// periods of inactivity".
	Sync Mode = iota
	// Async is the paper's fix: Q ingestion and R matching proceed
	// concurrently.
	Async
)

// String names the mode.
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// Costs parameterizes the time model of scheduler work. Defaults are tuned
// so that Summit-scale replays land where the paper's Fig. 6 does: an
// exhaustive match over a 4000-node graph (~212k vertices) costs ~2 s, so a
// 1000-node machine loads in about an hour at ~100 jobs/min while the
// 4000-node run bogs down.
type Costs struct {
	// SubmitMsg is Q's cost to ingest one submission (or forward one job).
	SubmitMsg time.Duration
	// StatusMsg is Q's cost to answer one job-status query; the workflow
	// polls every tracked job every poll interval, so this scales the
	// Q-side load that starves forwarding in sync mode.
	StatusMsg time.Duration
	// VertexVisit is R's cost per resource-graph vertex visited.
	VertexVisit time.Duration
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		SubmitMsg:   5 * time.Millisecond,
		StatusMsg:   10 * time.Millisecond,
		VertexVisit: 10 * time.Microsecond,
	}
}

// Config assembles a scheduler.
type Config struct {
	Machine *cluster.Machine
	Policy  Policy
	Mode    Mode
	Costs   Costs
	// StatusPollEvery, when positive, models the workflow's periodic
	// status sweep over all tracked jobs as Q-priority message load.
	StatusPollEvery time.Duration
	// Telemetry receives match spans and scheduler metrics (nil =
	// discarded). Match spans carry the modeled cost as their duration, so
	// a trace of a virtual-clock replay shows R's duty cycle exactly.
	Telemetry *telemetry.Telemetry
}

type qMsg struct {
	kind string // "submit" | "status"
	job  *Job
	cost time.Duration
}

// Scheduler is the Flux-like workload manager. All methods are safe for
// concurrent use; under a virtual clock everything is single-threaded and
// deterministic.
type Scheduler struct {
	clk     vclock.Clock
	machine *cluster.Machine
	matcher *Matcher
	mode    Mode
	costs   Costs
	tel     *telemetry.Telemetry

	mu           sync.Mutex
	nextID       JobID
	jobs         map[JobID]*Job
	inbox        []qMsg
	pending      []*Job
	rQueue       []*Job
	qBusy        bool
	rBusy        bool
	headBlocked  bool
	rHeadBlocked bool
	matching     map[JobID]bool
	autoDone     map[JobID]vclock.EventID
	hung         map[JobID]bool
	running      int
	finished     int
	timeline     []Placement
	onStart      func(*Job)
	onFinish     func(*Job)
	poll         *vclock.Ticker
	closed       bool
}

// New builds a scheduler over the machine described in cfg.
func New(clk vclock.Clock, cfg Config) (*Scheduler, error) {
	if cfg.Machine == nil {
		return nil, errors.New("sched: nil machine")
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.Nop()
	}
	s := &Scheduler{
		clk:      clk,
		machine:  cfg.Machine,
		matcher:  NewMatcher(cfg.Machine, cfg.Policy),
		mode:     cfg.Mode,
		costs:    cfg.Costs,
		tel:      tel,
		jobs:     make(map[JobID]*Job),
		matching: make(map[JobID]bool),
		autoDone: make(map[JobID]vclock.EventID),
		hung:     make(map[JobID]bool),
	}
	if cfg.StatusPollEvery > 0 {
		s.poll = vclock.NewTicker(clk, cfg.StatusPollEvery, func(time.Time) {
			s.mu.Lock()
			n := len(s.pending) + len(s.rQueue) + s.running
			if n > 0 {
				s.inbox = append(s.inbox, qMsg{kind: "status",
					cost: time.Duration(n) * s.costs.StatusMsg})
				s.kickQ()
			}
			s.mu.Unlock()
		})
	}
	return s, nil
}

// OnStart registers a callback invoked (outside the scheduler lock) when a
// job begins running.
func (s *Scheduler) OnStart(fn func(*Job)) {
	s.mu.Lock()
	s.onStart = fn
	s.mu.Unlock()
}

// OnFinish registers a callback invoked when a job reaches a terminal state.
func (s *Scheduler) OnFinish(fn func(*Job)) {
	s.mu.Lock()
	s.onFinish = fn
	s.mu.Unlock()
}

// Submit enqueues a job. Ingestion is modeled through Q: the job becomes
// visible to matching only after Q processes the submission message.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	req = req.normalize()
	if err := req.validate(s.machine.Topology()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("sched: scheduler closed")
	}
	s.nextID++
	job := &Job{ID: s.nextID, Req: req, State: Pending, SubmitTime: s.clk.Now()}
	s.jobs[job.ID] = job
	s.inbox = append(s.inbox, qMsg{kind: "submit", job: job, cost: s.costs.SubmitMsg})
	s.tel.Counter("sched.submitted_total").Inc()
	s.updateGaugesLocked()
	s.kickQ()
	return job, nil
}

// noteMatchLocked records one matcher invocation. The span's duration is
// the modeled match cost (visits × VertexVisit), charged from the moment R
// begins the match — under a virtual clock this makes the trace an exact
// picture of R's duty cycle. Caller holds s.mu.
func (s *Scheduler) noteMatchLocked(job *Job, visits int64, cost time.Duration, placed bool) {
	s.tel.RecordSpan("sched", "match", s.clk.Now(), cost,
		"job", int64(job.ID), "visits", visits, "placed", placed)
	s.tel.Counter("sched.matches_total").Inc()
	s.tel.Counter("sched.match_visits_total").Add(visits)
	if !placed {
		s.tel.Counter("sched.match_blocked_total").Inc()
	}
	s.tel.Histogram("sched.match_ms", "ms", nil).Observe(float64(cost) / float64(time.Millisecond))
}

// updateGaugesLocked refreshes queue-depth and occupancy gauges. Caller
// holds s.mu.
func (s *Scheduler) updateGaugesLocked() {
	q := len(s.pending) + len(s.rQueue)
	for _, m := range s.inbox {
		if m.kind == "submit" {
			q++
		}
	}
	s.tel.Gauge("sched.queue_depth").Set(float64(q))
	s.tel.Gauge("sched.running").Set(float64(s.running))
	s.tel.Gauge("sched.gpu_occupancy_pct").Set(s.machine.GPUOccupancy() * 100)
	s.tel.Gauge("sched.cpu_occupancy_pct").Set(s.machine.CPUOccupancy() * 100)
}

// kickQ advances the queue manager. Caller holds s.mu.
func (s *Scheduler) kickQ() {
	if s.qBusy || s.closed {
		return
	}
	// Message handling has priority over forwarding/matching.
	if len(s.inbox) > 0 {
		msg := s.inbox[0]
		s.inbox = s.inbox[1:]
		s.qBusy = true
		s.clk.After(msg.cost, func() {
			s.mu.Lock()
			if msg.kind == "submit" && msg.job.State == Pending {
				s.pending = append(s.pending, msg.job)
			}
			s.qBusy = false
			s.kickQ()
			s.mu.Unlock()
		})
		return
	}
	if len(s.pending) == 0 {
		return
	}
	if s.mode == Sync {
		s.syncMatchHead()
		return
	}
	// Async: forward the head to R's queue and keep going.
	job := s.pending[0]
	s.pending = s.pending[1:]
	s.qBusy = true
	s.clk.After(s.costs.SubmitMsg, func() {
		s.mu.Lock()
		if job.State == Pending {
			s.rQueue = append(s.rQueue, job)
		}
		s.qBusy = false
		s.kickR()
		s.kickQ()
		s.mu.Unlock()
	})
}

// syncMatchHead performs one synchronous match with Q blocked for its
// duration. Caller holds s.mu.
func (s *Scheduler) syncMatchHead() {
	if s.headBlocked {
		return // FCFS without backfilling: a blocked head stalls the queue
	}
	job := s.pending[0]
	s.qBusy = true
	s.matching[job.ID] = true
	alloc, visits, ok := s.matcher.Match(job.Req)
	cost := time.Duration(visits) * s.costs.VertexVisit
	s.noteMatchLocked(job, visits, cost, ok)
	s.clk.After(cost, func() {
		s.mu.Lock()
		delete(s.matching, job.ID)
		var started *Job
		if ok {
			s.pending = s.pending[1:]
			s.startLocked(job, alloc)
			started = job
		} else {
			s.headBlocked = true
		}
		s.qBusy = false
		s.kickQ()
		cb := s.onStart
		s.mu.Unlock()
		if started != nil && cb != nil {
			cb(started)
		}
	})
}

// kickR advances the matcher server (async mode). Caller holds s.mu.
func (s *Scheduler) kickR() {
	if s.rBusy || s.rHeadBlocked || len(s.rQueue) == 0 || s.closed {
		return
	}
	job := s.rQueue[0]
	s.rBusy = true
	s.matching[job.ID] = true
	alloc, visits, ok := s.matcher.Match(job.Req)
	cost := time.Duration(visits) * s.costs.VertexVisit
	s.noteMatchLocked(job, visits, cost, ok)
	s.clk.After(cost, func() {
		s.mu.Lock()
		delete(s.matching, job.ID)
		var started *Job
		if ok {
			s.rQueue = s.rQueue[1:]
			s.startLocked(job, alloc)
			started = job
		} else {
			s.rHeadBlocked = true
		}
		s.rBusy = false
		s.kickR()
		cb := s.onStart
		s.mu.Unlock()
		if started != nil && cb != nil {
			cb(started)
		}
	})
}

// startLocked transitions a matched job to Running. Caller holds s.mu.
func (s *Scheduler) startLocked(job *Job, alloc cluster.Alloc) {
	job.State = Running
	job.StartTime = s.clk.Now()
	job.Alloc = alloc
	s.running++
	s.timeline = append(s.timeline, Placement{Time: job.StartTime, Job: job.ID})
	s.tel.Counter("sched.started_total").Inc()
	s.tel.Histogram("sched.queue_wait_ms", "ms", nil).
		Observe(float64(job.StartTime.Sub(job.SubmitTime)) / float64(time.Millisecond))
	s.updateGaugesLocked()
	if job.Req.Duration > 0 {
		id := job.ID
		s.autoDone[id] = s.clk.After(job.Req.Duration, func() {
			// Auto-completion may race a manual Complete/Fail; that race is
			// the one benign outcome, anything else is a real bug.
			if err := s.finish(id, Completed); err != nil && !errors.Is(err, ErrAlreadyTerminal) {
				s.tel.Counter("sched.autocomplete_errors_total").Inc()
			}
		})
	}
}

// Complete marks a running job successfully finished, releasing resources.
func (s *Scheduler) Complete(id JobID) error { return s.finish(id, Completed) }

// Fail marks a running job failed, releasing resources. The workflow's
// trackers resubmit failed jobs (§4.4 Task 3).
func (s *Scheduler) Fail(id JobID) error { return s.finish(id, Failed) }

func (s *Scheduler) finish(id JobID, st State) error {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("sched: unknown job %d", id)
	}
	if job.State != Running {
		s.mu.Unlock()
		if job.State == Completed || job.State == Failed {
			return fmt.Errorf("sched: job %d: %w", id, ErrAlreadyTerminal)
		}
		return fmt.Errorf("sched: job %d is %v, not running", id, job.State)
	}
	if ev, ok := s.autoDone[id]; ok {
		s.clk.Cancel(ev)
		delete(s.autoDone, id)
	}
	delete(s.hung, id)
	job.State = st
	job.EndTime = s.clk.Now()
	s.running--
	s.finished++
	s.machine.Release(job.Alloc)
	s.matcher.NoteRelease(job.Alloc)
	if st == Completed {
		s.tel.Counter("sched.completed_total").Inc()
	} else {
		s.tel.Counter("sched.failed_total").Inc()
	}
	s.updateGaugesLocked()
	// Freed resources may unblock queue heads.
	s.headBlocked = false
	s.rHeadBlocked = false
	s.kickQ()
	s.kickR()
	cb := s.onFinish
	s.mu.Unlock()
	if cb != nil {
		cb(job)
	}
	return nil
}

// Cancel removes a job that has not started. Jobs currently being matched
// or already running cannot be canceled (use Fail for running jobs).
func (s *Scheduler) Cancel(id JobID) bool {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok || job.State != Pending || s.matching[id] {
		s.mu.Unlock()
		return false
	}
	job.State = Canceled
	job.EndTime = s.clk.Now()
	s.pending = removeJob(s.pending, id)
	s.rQueue = removeJob(s.rQueue, id)
	s.tel.Counter("sched.canceled_total").Inc()
	s.updateGaugesLocked()
	cb := s.onFinish
	s.mu.Unlock()
	if cb != nil {
		cb(job)
	}
	return true
}

func removeJob(js []*Job, id JobID) []*Job {
	for i, j := range js {
		if j.ID == id {
			return append(js[:i], js[i+1:]...)
		}
	}
	return js
}

// Drain marks a node unschedulable (running jobs unaffected).
func (s *Scheduler) Drain(node int) {
	s.mu.Lock()
	s.machine.Drain(node)
	s.matcher.NoteDrainChange()
	s.mu.Unlock()
}

// Undrain restores a node and wakes the queues.
func (s *Scheduler) Undrain(node int) {
	s.mu.Lock()
	s.machine.Undrain(node)
	s.matcher.NoteDrainChange()
	s.headBlocked = false
	s.rHeadBlocked = false
	s.kickQ()
	s.kickR()
	s.mu.Unlock()
}

// Hang makes a running job never report completion: its modeled
// auto-completion timer is canceled while its resources stay held, exactly
// what a wedged simulation looks like from the coordinator. Only the
// workflow's hung-job watchdog (or a manual Fail) gets it off the machine.
// Returns false if the job is not currently running.
func (s *Scheduler) Hang(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok || job.State != Running {
		return false
	}
	if ev, armed := s.autoDone[id]; armed {
		s.clk.Cancel(ev)
		delete(s.autoDone, id)
	}
	s.hung[id] = true
	s.tel.Counter("sched.hung_total").Inc()
	return true
}

// Hung reports whether the job was hung via Hang and has not yet been
// forced to a terminal state.
func (s *Scheduler) Hung(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hung[id]
}

// Crash simulates a node failure: the node is drained first (so resources
// freed by its dying jobs are not immediately re-placed onto it), then
// every job running on the node is failed — the workflow's trackers
// resubmit those under their attempt budgets (§4.4). Returns the killed job
// IDs in ascending order. Revive brings the node back.
func (s *Scheduler) Crash(node int) []JobID {
	s.mu.Lock()
	var victims []JobID
	for id, job := range s.jobs {
		if job.State != Running {
			continue
		}
		for _, part := range job.Alloc.Parts {
			if part.Node == node {
				victims = append(victims, id)
				break
			}
		}
	}
	// The map walk above is unordered; sorting restores determinism before
	// any side effects happen.
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	s.machine.Drain(node)
	s.matcher.NoteDrainChange()
	s.tel.Counter("sched.node_crashes_total").Inc()
	s.mu.Unlock()
	for _, id := range victims {
		// A victim may already be terminal if an auto-completion fired
		// between collection and the kill; that race is benign.
		if err := s.finish(id, Failed); err != nil && !errors.Is(err, ErrAlreadyTerminal) {
			s.tel.Counter("sched.crash_kill_errors_total").Inc()
		}
	}
	return victims
}

// Revive restores a crashed node to service and wakes the queues; it is
// Undrain under the name the fault-injection path uses.
func (s *Scheduler) Revive(node int) { s.Undrain(node) }

// LiveJobs returns every non-terminal job id (pending or running) in
// ascending order. The campaign's WM crash-restart uses it to clear the
// crashed manager's job set before restoring from checkpoint.
func (s *Scheduler) LiveJobs() []JobID {
	s.mu.Lock()
	ids := make([]JobID, 0, len(s.jobs))
	for id, job := range s.jobs {
		if job.State == Pending || job.State == Running {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Job returns a copy of the job record.
func (s *Scheduler) Job(id JobID) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Counts returns (queued, running, finished) job counts. Queued includes
// jobs in Q's inbox, the pending FIFO, and R's queue.
func (s *Scheduler) Counts() (queued, running, finished int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := len(s.pending) + len(s.rQueue)
	for _, m := range s.inbox {
		if m.kind == "submit" {
			q++
		}
	}
	return q, s.running, s.finished
}

// Timeline returns the placement history (Fig. 6 series).
func (s *Scheduler) Timeline() []Placement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Placement(nil), s.timeline...)
}

// MatcherVisits returns R's cumulative vertex-visit count.
func (s *Scheduler) MatcherVisits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.matcher.Visits()
}

// Machine exposes the underlying machine (occupancy profiling).
func (s *Scheduler) Machine() *cluster.Machine { return s.machine }

// Close stops the status-poll ticker and rejects further submissions.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	p := s.poll
	s.mu.Unlock()
	if p != nil {
		p.Stop()
	}
}

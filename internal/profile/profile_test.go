package profile

import (
	"math"
	"testing"
	"time"

	"mummi/internal/vclock"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

func TestProfilerSamplesOnCadence(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	frac := 0.0
	p := New(clk, DefaultInterval, func() Event {
		frac += 0.1
		return Event{GPUFrac: frac, Running: int(frac * 10)}
	})
	clk.RunFor(55 * time.Minute)
	p.Stop()
	evs := p.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5 in 55 min at 10-min cadence", len(evs))
	}
	for i, ev := range evs {
		want := epoch.Add(time.Duration(i+1) * DefaultInterval)
		if !ev.Time.Equal(want) {
			t.Errorf("event %d at %v, want %v", i, ev.Time, want)
		}
	}
	if math.Abs(evs[2].GPUFrac-0.3) > 1e-12 {
		t.Errorf("sample payload = %v", evs[2].GPUFrac)
	}
	// No more samples after Stop.
	clk.RunFor(time.Hour)
	if len(p.Events()) != 5 {
		t.Error("profiler sampled after Stop")
	}
}

func TestOccupancyHistogramsAndHeadline(t *testing.T) {
	// Reconstruct Fig. 5's headline: 83% of events at >=98% GPU occupancy.
	var evs []Event
	for i := 0; i < 83; i++ {
		evs = append(evs, Event{GPUFrac: 0.999, CPUFrac: 0.5})
	}
	for i := 0; i < 17; i++ {
		evs = append(evs, Event{GPUFrac: 0.6, CPUFrac: 0.5})
	}
	gpu, cpu := OccupancyHistograms(evs, 100)
	if gpu.N() != 100 || cpu.N() != 100 {
		t.Fatalf("histogram N = %d/%d", gpu.N(), cpu.N())
	}
	if f := gpu.FractionAtLeast(98); math.Abs(f-0.83) > 1e-9 {
		t.Errorf("FractionAtLeast(98) = %v", f)
	}
	frac, mean, median := Headline(evs, 98)
	if math.Abs(frac-0.83) > 1e-9 {
		t.Errorf("headline frac = %v", frac)
	}
	if mean < 90 || mean > 95 {
		t.Errorf("mean = %v", mean)
	}
	if median != 99.9 {
		t.Errorf("median = %v", median)
	}
}

func TestHeadlineEmpty(t *testing.T) {
	f, m, md := Headline(nil, 98)
	if f != 0 || m != 0 || md != 0 {
		t.Error("empty headline nonzero")
	}
}

func TestAddMergesRuns(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	p := New(clk, time.Hour, func() Event { return Event{} })
	p.Stop()
	p.Add(Event{GPUFrac: 1})
	p.Add(Event{GPUFrac: 0.5})
	if len(p.Events()) != 2 {
		t.Errorf("merged events = %d", len(p.Events()))
	}
}

func TestHeadlineAllZeroWindow(t *testing.T) {
	// A window where nothing ran must give finite zeros, never NaN.
	frac, mean, median := Headline([]Event{{}, {}, {}}, 98)
	if frac != 0 || mean != 0 || median != 0 {
		t.Errorf("all-zero headline = (%v, %v, %v), want zeros", frac, mean, median)
	}
}

func TestOccupancySanitizesBadSamples(t *testing.T) {
	// Non-finite and out-of-range fractions (a zero-resource topology
	// yields 0/0 upstream) must clamp instead of poisoning the figures.
	evs := []Event{
		{GPUFrac: math.NaN(), CPUFrac: math.Inf(1)},
		{GPUFrac: -0.5, CPUFrac: 2},
	}
	gpu, cpu := OccupancyHistograms(evs, 10)
	if gpu.N() != 2 || cpu.N() != 2 {
		t.Fatalf("histogram n = %d/%d, want 2/2", gpu.N(), cpu.N())
	}
	if gpu.Counts[0] != 2 {
		t.Errorf("NaN/negative GPU samples should clamp to bin 0: %v", gpu.Counts)
	}
	if cpu.Counts[9] != 2 {
		t.Errorf("Inf/200%% CPU samples should clamp to the top bin: %v", cpu.Counts)
	}
	frac, mean, median := Headline(evs, 98)
	if math.IsNaN(frac) || math.IsNaN(mean) || math.IsNaN(median) {
		t.Errorf("headline produced NaN: (%v, %v, %v)", frac, mean, median)
	}
	if median != 0 {
		t.Errorf("median = %v, want 0 after clamping", median)
	}
}

// Package profile implements MuMMI's occupancy profiling (§5.2): "MuMMI's
// profiling mechanism gathers the number of running and pending jobs every
// few minutes (for most of this campaign, profiling frequency was 10 min)",
// from which GPU and CPU occupancy distributions (Fig. 5) are derived.
package profile

import (
	"math"
	"sync"
	"time"

	"mummi/internal/stats"
	"mummi/internal/vclock"
)

// Event is one profile sample.
type Event struct {
	Time    time.Time
	GPUFrac float64 // fraction of GPUs allocated, 0..1
	CPUFrac float64 // fraction of CPU cores allocated, 0..1
	Running int
	Pending int
}

// DefaultInterval is the campaign's profiling frequency.
const DefaultInterval = 10 * time.Minute

// Profiler samples a callback on a fixed cadence under any Clock.
type Profiler struct {
	mu     sync.Mutex
	events []Event
	ticker *vclock.Ticker
}

// New starts profiling: sample is invoked every interval and its Event
// recorded (the Time field is filled in by the profiler).
func New(clk vclock.Clock, interval time.Duration, sample func() Event) *Profiler {
	p := &Profiler{}
	p.ticker = vclock.NewTicker(clk, interval, func(now time.Time) {
		ev := sample()
		ev.Time = now
		p.mu.Lock()
		p.events = append(p.events, ev)
		p.mu.Unlock()
	})
	return p
}

// Stop ends profiling.
func (p *Profiler) Stop() { p.ticker.Stop() }

// Events returns a copy of the samples so far.
func (p *Profiler) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Add records an externally produced sample (used when merging profiles
// from several runs into one campaign-wide distribution, as Fig. 5 does).
func (p *Profiler) Add(ev Event) {
	p.mu.Lock()
	p.events = append(p.events, ev)
	p.mu.Unlock()
}

// clampPct sanitizes an occupancy percentage: non-finite samples (a
// zero-resource topology divides 0/0 upstream) collapse to 0 and finite
// ones clamp into [0, 100], so one bad window cannot poison a whole
// distribution.
func clampPct(pct float64) float64 {
	switch {
	case math.IsNaN(pct), pct < 0:
		return 0
	case pct > 100:
		return 100
	}
	return pct
}

// OccupancyHistograms builds the Fig. 5 distributions: percent-occupancy
// histograms over profile events for GPUs and CPUs. Samples are clamped
// into [0, 100]; non-finite fractions count as 0.
func OccupancyHistograms(events []Event, bins int) (gpu, cpu *stats.Histogram) {
	gpu = stats.NewHistogram(0, 100.000001, bins)
	cpu = stats.NewHistogram(0, 100.000001, bins)
	for _, ev := range events {
		gpu.Add(clampPct(ev.GPUFrac * 100))
		cpu.Add(clampPct(ev.CPUFrac * 100))
	}
	return gpu, cpu
}

// Headline computes the paper's headline statistics from profile events:
// the fraction of time GPU occupancy was at least the given percent
// threshold, plus mean and median occupancy percentages.
func Headline(events []Event, thresholdPct float64) (fracAtLeast, meanPct, medianPct float64) {
	if len(events) == 0 {
		return 0, 0, 0
	}
	var s stats.Summary
	vals := make([]float64, 0, len(events))
	at := 0
	for _, ev := range events {
		pct := clampPct(ev.GPUFrac * 100)
		s.Add(pct)
		vals = append(vals, pct)
		if pct >= thresholdPct {
			at++
		}
	}
	return float64(at) / float64(len(events)), s.Mean(), stats.Median(vals)
}

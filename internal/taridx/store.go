package taridx

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mummi/internal/datastore"
)

// Store adapts indexed tar archives to the abstract data interface: one
// archive per namespace under a root directory. It is the backend of choice
// for write-mostly data at scale (patches, snapshots, analysis, RDFs in the
// paper), where collecting files into archives slashes inode counts while
// random access stays cheap.
type Store struct {
	root string

	mu       sync.Mutex
	archives map[string]*Archive
}

// NewStore returns a Store rooted at root (created if needed).
func NewStore(root string) (*Store, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("taridx: %w", err)
	}
	return &Store{root: root, archives: make(map[string]*Archive)}, nil
}

func init() {
	datastore.Register(datastore.BackendTaridx, func(cfg datastore.Config) (datastore.Store, error) {
		return NewStore(cfg.Root)
	})
}

func validNS(ns string) error {
	if ns == "" || strings.ContainsAny(ns, "/\\") || ns == "." || ns == ".." {
		return fmt.Errorf("taridx: invalid namespace %q", ns)
	}
	return nil
}

// archive returns (opening or creating) the namespace's archive.
// create=false avoids materializing empty archives for read-only queries.
func (s *Store) archive(ns string, create bool) (*Archive, error) {
	if err := validNS(ns); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.archives[ns]; ok {
		return a, nil
	}
	path := filepath.Join(s.root, ns+".tar")
	if !create {
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
	}
	a, err := Open(path)
	if err != nil {
		return nil, err
	}
	s.archives[ns] = a
	return a, nil
}

// Put implements datastore.Store.
func (s *Store) Put(ns, key string, data []byte) error {
	a, err := s.archive(ns, true)
	if err != nil {
		return err
	}
	return a.Put(key, data)
}

// Get implements datastore.Store.
func (s *Store) Get(ns, key string) ([]byte, error) {
	a, err := s.archive(ns, false)
	if err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	b, err := a.Get(key)
	if errors.Is(err, ErrNotFound) {
		return nil, fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	return b, err
}

// Delete implements datastore.Store (index-only removal; see Archive.Delete).
func (s *Store) Delete(ns, key string) error {
	a, err := s.archive(ns, false)
	if err != nil {
		return err
	}
	if a == nil {
		return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	if err := a.Delete(key); errors.Is(err, ErrNotFound) {
		return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	} else if err != nil {
		return err
	}
	return nil
}

// Keys implements datastore.Store.
func (s *Store) Keys(ns string) ([]string, error) {
	a, err := s.archive(ns, false)
	if err != nil {
		return nil, err
	}
	if a == nil {
		return nil, nil
	}
	return a.Keys(), nil
}

// Move implements datastore.Store: copy into the destination archive, then
// drop the source index entry. This is exactly the paper's "moving files to
// tar archives" tagging primitive.
func (s *Store) Move(srcNS, key, dstNS string) error {
	b, err := s.Get(srcNS, key)
	if err != nil {
		return err
	}
	if err := s.Put(dstNS, key, b); err != nil {
		return err
	}
	return s.Delete(srcNS, key)
}

// Namespace exposes the underlying Archive for a namespace (creating it if
// needed), for components that want archive-level stats.
func (s *Store) Namespace(ns string) (*Archive, error) { return s.archive(ns, true) }

// Close closes all open archives.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, a := range s.archives {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.archives = make(map[string]*Archive)
	return first
}

// Package taridx implements indexed tar archives, mummi-go's equivalent of
// the paper's pytaridx (§4.2, §5.2). Collecting millions of small files into
// archives is the paper's answer to inode pressure on the parallel
// filesystem: the campaign packed 1,034,232,900 files into 114,552 archives
// — a 9000× inode reduction — while retaining efficient random access
// through a complementary index file.
//
// Archives are standard tar files (USTAR), portable and readable by the
// commonly-available decoder. Writes are append-only, which makes the format
// robust against failures: a key is never updated in place — re-inserting
// the same key appends a new entry and the index takes the latest value as
// correct. "Deleting" a key only removes it from the index (the namespace),
// never from the archive. The sidecar index (.tari) is an append-only
// JSON-lines journal and can always be rebuilt by scanning the tar itself.
package taridx

import (
	"archive/tar"
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// IndexSuffix is appended to the archive path to name its index journal.
const IndexSuffix = ".tari"

const blockSize = 512

// ErrNotFound is returned when a key is not in the archive's index.
var ErrNotFound = errors.New("taridx: key not found")

// entry locates one value inside the tar file.
type entry struct {
	Off  int64 `json:"o"` // offset of the data section
	Size int64 `json:"n"`
}

// indexRecord is one line of the .tari journal.
type indexRecord struct {
	Key  string `json:"k"`
	Off  int64  `json:"o,omitempty"`
	Size int64  `json:"n"` // present (possibly 0) on inserts
	Del  bool   `json:"d,omitempty"`
}

// Stats reports archive counters used by the §5.2 throughput experiment.
type Stats struct {
	Keys       int   // live keys in the index
	Appends    int64 // total entries ever appended (includes reinserts)
	Reads      int64 // Get calls served
	BytesRead  int64 // data bytes returned by Get
	ArchiveLen int64 // current tar file size in bytes
}

// Archive is one indexed tar file. All methods are safe for concurrent use.
type Archive struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	idxF  *os.File
	idxW  *bufio.Writer
	index map[string]entry
	end   int64 // logical end of data: where the next header goes
	stats Stats
}

// Open opens (creating if absent) the archive at path and its index.
// If the index journal is missing or unreadable but the tar exists, the
// index is rebuilt by scanning the tar — the recovery path after a crash
// that lost the journal.
func Open(path string) (*Archive, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("taridx: %w", err)
	}
	a := &Archive{path: path, f: f, index: make(map[string]entry)}

	loaded, idxErr := a.loadIndex()
	if idxErr != nil || !loaded {
		// Journal absent or damaged: rebuild from the tar, then rewrite a
		// fresh journal reflecting what we found.
		if err := a.rebuildFromTar(); err != nil {
			return nil, errors.Join(err, f.Close())
		}
		if err := a.rewriteIndex(); err != nil {
			return nil, errors.Join(err, f.Close())
		}
	} else if err := a.openIndexForAppend(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return a, nil
}

// loadIndex replays the journal. Returns (false, nil) when no journal exists.
// A torn final line (crash mid-append) is tolerated: replay stops there.
func (a *Archive) loadIndex() (bool, error) {
	idx, err := os.Open(a.path + IndexSuffix)
	if errors.Is(err, os.ErrNotExist) {
		// No journal. If the tar is empty too, we are a fresh archive.
		st, err := a.f.Stat()
		if err != nil {
			return false, err
		}
		if st.Size() == 0 {
			a.end = 0
			return true, a.openIndexForAppend()
		}
		return false, nil
	}
	if err != nil {
		return false, err
	}
	//lint:allow errdiscipline -- read-side close of the journal; scan errors already surfaced
	defer idx.Close()
	sc := bufio.NewScanner(idx)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	maxEnd := int64(0)
	for sc.Scan() {
		var rec indexRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn write: trust what replayed so far
		}
		if rec.Del {
			delete(a.index, rec.Key)
			continue
		}
		a.index[rec.Key] = entry{Off: rec.Off, Size: rec.Size}
		if e := rec.Off + padded(rec.Size); e > maxEnd {
			maxEnd = e
		}
	}
	a.end = maxEnd
	// Sanity: the tar must be at least as long as the index claims;
	// otherwise the journal is stale/corrupt and we rebuild.
	st, err := a.f.Stat()
	if err != nil {
		return false, err
	}
	if st.Size() < a.end {
		a.index = make(map[string]entry)
		a.end = 0
		return false, nil
	}
	return true, nil
}

func (a *Archive) openIndexForAppend() error {
	idxF, err := os.OpenFile(a.path+IndexSuffix, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("taridx: %w", err)
	}
	a.idxF = idxF
	a.idxW = bufio.NewWriter(idxF)
	return nil
}

// rebuildFromTar scans the tar sequentially, reconstructing the index.
// A truncated trailing entry (crash mid-append) is dropped.
func (a *Archive) rebuildFromTar() error {
	if _, err := a.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	cr := &countingReader{r: bufio.NewReader(a.f)}
	tr := tar.NewReader(cr)
	a.index = make(map[string]entry)
	a.end = 0
	for {
		hdr, err := tr.Next()
		if err != nil {
			break // io.EOF at trailer or truncation: stop trusting further
		}
		dataOff := cr.n
		// Verify the data section is fully present before admitting it.
		if _, err := io.Copy(io.Discard, tr); err != nil {
			break
		}
		a.index[hdr.Name] = entry{Off: dataOff, Size: hdr.Size}
		a.end = dataOff + padded(hdr.Size)
	}
	return nil
}

// rewriteIndex replaces the journal with the current in-memory index.
func (a *Archive) rewriteIndex() error {
	tmp := a.path + IndexSuffix + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for k, e := range a.index {
		if err := enc.Encode(indexRecord{Key: k, Off: e.Off, Size: e.Size}); err != nil {
			return errors.Join(err, f.Close())
		}
	}
	if err := w.Flush(); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, a.path+IndexSuffix); err != nil {
		return err
	}
	return a.openIndexForAppend()
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func padded(size int64) int64 {
	if r := size % blockSize; r != 0 {
		return size + blockSize - r
	}
	return size
}

// validateKey enforces USTAR-representable names so that entry offsets stay
// deterministic (single 512-byte header block, no PAX extension records).
func validateKey(key string) error {
	if key == "" || len(key) > 100 {
		return fmt.Errorf("taridx: key %q must be 1–100 bytes", key)
	}
	for i := 0; i < len(key); i++ {
		if key[i] < 0x20 || key[i] == 0x7f {
			return fmt.Errorf("taridx: key %q contains control characters", key)
		}
	}
	return nil
}

// Put appends data under key. The archive remains a valid tar file after
// every Put (a fresh end-of-archive trailer is written each time).
func (a *Archive) Put(key string, data []byte) error {
	if err := validateKey(key); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return errors.New("taridx: archive closed")
	}
	if _, err := a.f.Seek(a.end, io.SeekStart); err != nil {
		return err
	}
	tw := tar.NewWriter(a.f)
	hdr := &tar.Header{
		Name:     key,
		Size:     int64(len(data)),
		Mode:     0o644,
		ModTime:  time.Now().Truncate(time.Second),
		Typeflag: tar.TypeReg,
		Format:   tar.FormatUSTAR,
	}
	if err := tw.WriteHeader(hdr); err != nil {
		return fmt.Errorf("taridx: %w", err)
	}
	if _, err := tw.Write(data); err != nil {
		return fmt.Errorf("taridx: %w", err)
	}
	// Close pads the final entry and writes the two-zero-block trailer,
	// keeping the file decodable by standard tar at all times. The next
	// append seeks back over the trailer.
	if err := tw.Close(); err != nil {
		return fmt.Errorf("taridx: %w", err)
	}
	dataOff := a.end + blockSize
	a.index[key] = entry{Off: dataOff, Size: int64(len(data))}
	a.end = dataOff + padded(int64(len(data)))
	a.stats.Appends++

	rec := indexRecord{Key: key, Off: dataOff, Size: int64(len(data))}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := a.idxW.Write(append(b, '\n')); err != nil {
		return err
	}
	return a.idxW.Flush()
}

// Get returns the latest value stored under key, via random access.
func (a *Archive) Get(key string) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil, errors.New("taridx: archive closed")
	}
	e, ok := a.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	buf := make([]byte, e.Size)
	if _, err := a.f.ReadAt(buf, e.Off); err != nil {
		return nil, fmt.Errorf("taridx: read %s: %w", key, err)
	}
	a.stats.Reads++
	a.stats.BytesRead += e.Size
	return buf, nil
}

// Delete removes key from the index only; the archived bytes remain (the
// append-only design never mutates the tar).
func (a *Archive) Delete(key string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.index[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(a.index, key)
	b, err := json.Marshal(indexRecord{Key: key, Del: true})
	if err != nil {
		return err
	}
	if _, err := a.idxW.Write(append(b, '\n')); err != nil {
		return err
	}
	return a.idxW.Flush()
}

// Has reports whether key is live in the index.
func (a *Archive) Has(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.index[key]
	return ok
}

// Keys returns the live keys in sorted order.
func (a *Archive) Keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.index))
	for k := range a.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of live keys.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.index)
}

// Stats returns archive counters.
func (a *Archive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.Keys = len(a.index)
	if st, err := a.f.Stat(); err == nil {
		s.ArchiveLen = st.Size()
	}
	return s
}

// Path returns the archive's tar path.
func (a *Archive) Path() string { return a.path }

// Close flushes the index and closes both files.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	var first error
	if a.idxW != nil {
		if err := a.idxW.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if a.idxF != nil {
		if err := a.idxF.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := a.f.Close(); err != nil && first == nil {
		first = err
	}
	a.f, a.idxF, a.idxW = nil, nil, nil
	return first
}

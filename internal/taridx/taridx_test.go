package taridx

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"mummi/internal/datastore"
	"mummi/internal/datastore/dstest"
	"mummi/internal/telemetry"
)

func openT(t *testing.T) (*Archive, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "a.tar")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return a, path
}

func TestPutGetRoundTrip(t *testing.T) {
	a, _ := openT(t)
	defer a.Close()
	want := []byte("patch data bytes")
	if err := a.Put("patch_000001.npy", want); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get("patch_000001.npy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Get = %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	a, _ := openT(t)
	defer a.Close()
	if _, err := a.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestReinsertLastWins(t *testing.T) {
	// §4.4: "in the event of a failure during a write, the same key gets
	// reinserted and is taken to be the correct value."
	a, _ := openT(t)
	defer a.Close()
	for i := 0; i < 5; i++ {
		if err := a.Put("k", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version-4" {
		t.Errorf("Get = %q", got)
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d", a.Len())
	}
	if st := a.Stats(); st.Appends != 5 {
		t.Errorf("Appends = %d, want 5 (append-only)", st.Appends)
	}
}

func TestDeleteIsIndexOnly(t *testing.T) {
	a, path := openT(t)
	if err := a.Put("k", []byte("still-in-tar")); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, path)
	if err := a.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key still readable")
	}
	if err := a.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	a.Close()
	if got := fileSize(t, path); got != sizeBefore {
		t.Errorf("tar size changed on delete: %d -> %d (must be append-only)", sizeBefore, got)
	}
}

func TestArchiveIsStandardTar(t *testing.T) {
	// "The archives created using the pytaridx are standard tar files ...
	// can be used with the commonly-available decoder."
	a, path := openT(t)
	contents := map[string]string{"f1": "alpha", "f2": "beta", "f3": "gamma"}
	for k, v := range contents {
		if err := a.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := tar.NewReader(f)
	seen := map[string]string{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("standard tar decode failed: %v", err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		seen[hdr.Name] = string(b)
	}
	if !reflect.DeepEqual(seen, contents) {
		t.Errorf("tar contents = %v", seen)
	}
}

func TestReopenLoadsJournal(t *testing.T) {
	a, path := openT(t)
	if err := a.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	a.Close()

	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Has("k1") {
		t.Error("deleted key resurrected on reopen")
	}
	got, err := b.Get("k2")
	if err != nil || string(got) != "v2" {
		t.Errorf("Get after reopen = %q, %v", got, err)
	}
	// Appending after reopen must not corrupt earlier entries.
	if err := b.Put("k3", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	got, err = b.Get("k2")
	if err != nil || string(got) != "v2" {
		t.Errorf("Get k2 after append = %q, %v", got, err)
	}
}

func TestRebuildAfterLostIndex(t *testing.T) {
	a, path := openT(t)
	for i := 0; i < 10; i++ {
		if err := a.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Put("k03", []byte("v03-updated")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := os.Remove(path + IndexSuffix); err != nil {
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 10 {
		t.Errorf("rebuilt index has %d keys, want 10", b.Len())
	}
	got, err := b.Get("k03")
	if err != nil || string(got) != "v03-updated" {
		t.Errorf("rebuilt Get(k03) = %q, %v (last-wins must survive rebuild)", got, err)
	}
}

func TestRebuildToleratesTruncatedTail(t *testing.T) {
	// A crash mid-append leaves a truncated final entry; rebuild must keep
	// every complete entry and drop the torn one.
	a, path := openT(t)
	if err := a.Put("good1", bytes.Repeat([]byte("x"), 600)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("good2", bytes.Repeat([]byte("y"), 600)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("torn", bytes.Repeat([]byte("z"), 600)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	os.Remove(path + IndexSuffix)
	// Chop into the middle of the last entry's data: each entry occupies
	// 512 (header) + 1024 (600 B padded) = 1536 B, plus a 1024 B trailer;
	// cutting 2000 B off the end lands inside the third entry's data.
	size := fileSize(t, path)
	if err := os.Truncate(path, size-2000); err != nil {
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Has("torn") {
		t.Error("truncated entry admitted to index")
	}
	for _, k := range []string{"good1", "good2"} {
		if _, err := b.Get(k); err != nil {
			t.Errorf("Get(%s) after truncation: %v", k, err)
		}
	}
	// And the archive must accept fresh appends at the repaired end.
	if err := b.Put("after", []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("after")
	if err != nil || string(got) != "recovery" {
		t.Errorf("post-recovery append = %q, %v", got, err)
	}
}

func TestTornJournalLineIgnored(t *testing.T) {
	a, path := openT(t)
	if err := a.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Append garbage (simulating a torn journal write).
	jf, err := os.OpenFile(path+IndexSuffix, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	jf.WriteString(`{"k":"torn","o":99`)
	jf.Close()
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Get("k1"); err != nil {
		t.Errorf("good entry lost after torn journal: %v", err)
	}
	if b.Has("torn") {
		t.Error("torn journal record admitted")
	}
}

func TestStaleJournalTriggersRebuild(t *testing.T) {
	// Journal claims entries past the tar's end (e.g. tar was restored from
	// an older snapshot): must rebuild rather than serve bad offsets.
	a, path := openT(t)
	if err := a.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Truncate the tar to before k2 but keep the full journal.
	if err := os.Truncate(path, 1024); err != nil { // k1 header+data only
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Has("k2") {
		t.Error("stale journal entry for k2 admitted")
	}
	if got, err := b.Get("k1"); err != nil || string(got) != "v1" {
		t.Errorf("Get(k1) = %q, %v", got, err)
	}
}

func TestKeyValidation(t *testing.T) {
	a, _ := openT(t)
	defer a.Close()
	bad := []string{"", string(bytes.Repeat([]byte("k"), 101)), "bad\nkey", "ctrl\x01"}
	for _, k := range bad {
		if err := a.Put(k, nil); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
	}
	// 100 bytes exactly is the USTAR limit and must be accepted.
	longest := string(bytes.Repeat([]byte("n"), 100))
	if err := a.Put(longest, []byte("ok")); err != nil {
		t.Errorf("Put(100-byte key) rejected: %v", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	a, _ := openT(t)
	a.Close()
	if err := a.Put("k", nil); err == nil {
		t.Error("Put after Close succeeded")
	}
	if _, err := a.Get("k"); err == nil {
		t.Error("Get after Close succeeded")
	}
	if err := a.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	a, _ := openT(t)
	defer a.Close()
	payload := bytes.Repeat([]byte("p"), 1000)
	for i := 0; i < 4; i++ {
		if err := a.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Get("k0"); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Keys != 4 || st.Appends != 4 || st.Reads != 3 || st.BytesRead != 3000 {
		t.Errorf("Stats = %+v", st)
	}
	if st.ArchiveLen == 0 {
		t.Error("ArchiveLen not populated")
	}
}

func TestPropertyRandomOpsMatchModel(t *testing.T) {
	// The archive must behave exactly like a map under a random sequence of
	// put/delete/reinsert, including across a close/reopen cycle.
	f := func(seed int64) bool {
		dir, err := os.MkdirTemp("", "taridx")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "p.tar")
		a, err := Open(path)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[string]string{}
		keys := []string{"a", "b", "c", "d"}
		for i := 0; i < 60; i++ {
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(4) == 0 {
				_, inModel := model[k]
				err := a.Delete(k)
				if inModel != (err == nil) {
					a.Close()
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", i)
				if err := a.Put(k, []byte(v)); err != nil {
					a.Close()
					return false
				}
				model[k] = v
			}
		}
		a.Close()
		b, err := Open(path)
		if err != nil {
			return false
		}
		defer b.Close()
		if b.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := b.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStoreConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		s, err := NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestArmoredStoreConformance re-runs the suite through datastore.Armor:
// the retry wrapper must be semantically invisible over a healthy backend.
func TestArmoredStoreConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		s, err := NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return datastore.Armor(s, telemetry.Nop(), "taridx", datastore.ArmorOptions{})
	})
}

func TestStoreFactoryAndNamespaceFiles(t *testing.T) {
	root := t.TempDir()
	s, err := datastore.Open(datastore.Config{Backend: datastore.BackendTaridx, Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("patches", "p1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("rdfs", "r1", []byte("y")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// One archive per namespace: two tars and two indexes, four inodes for
	// any number of keys.
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		names := []string{}
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Errorf("root entries = %v, want 4 (2 tars + 2 indexes)", names)
	}
}

func TestStoreInodeReduction(t *testing.T) {
	// The headline §5.2 property: N files, O(1) inodes.
	root := t.TempDir()
	s, err := NewStore(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Put("bulk", fmt.Sprintf("file-%04d", i), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Errorf("%d files occupy %d inodes, want 2", n, len(ents))
	}
	keys, err := s.Keys("bulk")
	if err != nil || len(keys) != n {
		t.Errorf("Keys = %d, %v", len(keys), err)
	}
}

func TestStoreInvalidNamespace(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, ns := range []string{"", "a/b", "..", "."} {
		if err := s.Put(ns, "k", nil); err == nil {
			t.Errorf("Put in namespace %q succeeded", ns)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestStoreNamespaceAccessorAndPath(t *testing.T) {
	root := t.TempDir()
	s, err := NewStore(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, err := s.Namespace("patches")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if a.Path() != filepath.Join(root, "patches.tar") {
		t.Errorf("Path = %q", a.Path())
	}
	// Store and archive views agree.
	got, err := s.Get("patches", "k")
	if err != nil || string(got) != "v" {
		t.Errorf("Get via store = %q, %v", got, err)
	}
	if st := a.Stats(); st.Keys != 1 {
		t.Errorf("Stats.Keys = %d", st.Keys)
	}
	// Invalid namespace through the accessor too.
	if _, err := s.Namespace("../evil"); err == nil {
		t.Error("invalid namespace accepted")
	}
}

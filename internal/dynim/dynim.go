// Package dynim implements dynamic-importance sampling, mummi-go's version
// of the DynIm framework the paper's Patch Selector and Frame Selector are
// built on (§4.4, Task 2). Selectors operate on high-dimensional point
// objects and are agnostic to how patches or frames were encoded.
//
// Two samplers are provided, matching the paper:
//
//   - FarthestPoint: selects the candidate farthest (L2) from everything
//     already selected — the patch selector's novelty criterion over 9-D
//     encodings. Candidates are ingested as data arrives; selections happen
//     only when simulations turn over, so ranks are cached and refreshed
//     lazily: adding a candidate is O(1) and the expensive distance work is
//     deferred to selection time, exactly the paper's caching scheme.
//
//   - Binned: the new histogram sampler developed for CG frames, whose 3-D
//     encoding mixes disparate quantities where L2 is meaningless. It treats
//     each dimension separately through binning and exposes a control over
//     the balance between importance and randomness.
//
// Both samplers maintain a replayable history journal, supporting the
// paper's resilience strategy ("key components (ML and job scheduling) also
// maintain elaborate history files that may be replayed exactly").
package dynim

import (
	"encoding/json"
	"fmt"
)

// Point is one selection candidate: an application object (patch, CG frame)
// reduced to a coordinate vector by some encoder.
type Point struct {
	ID     string    `json:"id"`
	Coords []float64 `json:"coords"`
}

// Selector is the abstract selection API shared by both samplers and by any
// application-defined replacement (§4.5).
type Selector interface {
	// Add ingests a new candidate. It must be cheap: candidates arrive at
	// data-production rate (thousands per minute at scale).
	Add(p Point) error
	// Select returns up to n candidates, removing them from the queue and
	// marking them selected. Expensive rank refreshes happen here.
	Select(n int) []Point
	// Update refreshes candidate ranks without selecting. Exposed so the
	// workflow can schedule refreshes off the critical path.
	Update()
	// Len returns the current number of queued candidates.
	Len() int
	// History returns the journal of selection events so far.
	History() []Event
}

// Event is one journal entry. Kind is "add", "select", or "evict".
type Event struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// journal is an embedded, mutex-free event log; the owning sampler's lock
// guards it. Campaign-scale runs (millions of adds) disable recording to
// bound memory; the sequence counter keeps advancing either way.
type journal struct {
	seq      int64
	events   []Event
	disabled bool
}

func (j *journal) record(kind, id string) {
	j.seq++
	if j.disabled {
		return
	}
	j.events = append(j.events, Event{Seq: j.seq, Kind: kind, ID: id})
}

func (j *journal) history() []Event {
	return append([]Event(nil), j.events...)
}

// snapshot is the serialized state shared by Checkpoint/Restore.
type snapshot struct {
	Kind       string  `json:"kind"`
	Candidates []Point `json:"candidates"`
	Selected   []Point `json:"selected"`
	Events     []Event `json:"events"`
	Seq        int64   `json:"seq"`
}

func marshalSnapshot(s snapshot) ([]byte, error) { return json.Marshal(s) }

func unmarshalSnapshot(b []byte, wantKind string) (snapshot, error) {
	var s snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("dynim: corrupt checkpoint: %w", err)
	}
	if s.Kind != wantKind {
		return s, fmt.Errorf("dynim: checkpoint kind %q, want %q", s.Kind, wantKind)
	}
	return s, nil
}

// dedupe guards against re-adding an ID that is queued or already selected;
// the workflow may legitimately re-offer frames after a producer restart.
type dedupe struct {
	seen map[string]bool
}

func newDedupe() dedupe { return dedupe{seen: make(map[string]bool)} }

func (d *dedupe) claim(id string) bool {
	if d.seen[id] {
		return false
	}
	d.seen[id] = true
	return true
}

func (d *dedupe) release(id string) { delete(d.seen, id) }

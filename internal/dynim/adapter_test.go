package dynim

import (
	"fmt"
	"testing"
)

func TestQueueSetAsSelector(t *testing.T) {
	qs := NewQueueSet(1, 0)
	sel := qs.AsSelector(func(p Point) string {
		if p.Coords[0] < 50 {
			return "low"
		}
		return "high"
	})
	for i := 0; i < 10; i++ {
		if err := sel.Add(Point{ID: fmt.Sprintf("p%02d", i), Coords: []float64{float64(i * 10)}}); err != nil {
			t.Fatal(err)
		}
	}
	if sel.Len() != 10 {
		t.Errorf("Len = %d", sel.Len())
	}
	if got := qs.Queues(); len(got) != 2 {
		t.Fatalf("queues = %v", got)
	}
	// Routing is respected: "low" holds coords 0..40, "high" 50..90.
	low := qs.SelectFrom("low", 100)
	for _, p := range low {
		if p.Coords[0] >= 50 {
			t.Errorf("misrouted point %v", p)
		}
	}
	if len(low) != 5 {
		t.Errorf("low queue had %d", len(low))
	}
	// Selector-level Select round-robins what remains.
	rest := sel.Select(10)
	if len(rest) != 5 {
		t.Errorf("Select drained %d", len(rest))
	}
	sel.Update() // must not panic on drained queues
	if h := sel.History(); len(h) == 0 {
		t.Error("merged history empty")
	}
}

func TestQueueSetDisableJournalPropagates(t *testing.T) {
	qs := NewQueueSet(1, 0)
	qs.Add("pre", Point{ID: "a", Coords: []float64{1}})
	qs.DisableJournal()
	qs.Add("pre", Point{ID: "b", Coords: []float64{2}})
	qs.Add("post", Point{ID: "c", Coords: []float64{3}}) // new queue after disable
	sel := qs.AsSelector(func(Point) string { return "pre" })
	h := sel.History()
	// Only the one event recorded before DisableJournal survives.
	if len(h) != 1 || h[0].ID != "a" {
		t.Errorf("history = %v", h)
	}
}

func TestFPSDisableJournal(t *testing.T) {
	f := NewFarthestPoint(1, 0)
	f.Add(Point{ID: "a", Coords: []float64{1}})
	f.DisableJournal()
	f.Add(Point{ID: "b", Coords: []float64{2}})
	f.Select(2)
	h := f.History()
	if len(h) != 1 {
		t.Errorf("history after disable = %v", h)
	}
}

func TestBinnedTrackDuplicatesToggle(t *testing.T) {
	b, err := NewBinned([]BinDim{{0, 10, 5}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.SetTrackDuplicates(false)
	b.Add(Point{ID: "dup", Coords: []float64{1}})
	b.Add(Point{ID: "dup", Coords: []float64{1}})
	if b.Len() != 2 {
		t.Errorf("Len with dedupe off = %d, want 2", b.Len())
	}
	b.SetTrackDuplicates(true)
	b.Add(Point{ID: "x", Coords: []float64{2}})
	b.Add(Point{ID: "x", Coords: []float64{2}})
	if b.Len() != 3 {
		t.Errorf("Len with dedupe on = %d, want 3", b.Len())
	}
}

func TestFPSBatchEvictionKeepsMostNovel(t *testing.T) {
	// With a larger capacity the eviction batches: after overflowing by the
	// slack amount, the survivors must be the highest-ranked candidates.
	f := NewFarthestPoint(1, 64)
	f.Add(Point{ID: "ref", Coords: []float64{0}})
	f.Select(1) // reference point at 0
	// Add 200 candidates at increasing distance from the reference.
	for i := 1; i <= 200; i++ {
		f.Add(Point{ID: fmt.Sprintf("p%03d", i), Coords: []float64{float64(i)}})
		f.Update() // keep ranks fresh so eviction sees true distances
	}
	if f.Len() > 64+4 {
		t.Errorf("queue holds %d, cap 64 (+slack)", f.Len())
	}
	// The far candidates must have survived; the near ones are gone.
	sel := f.Select(5)
	for _, p := range sel {
		if p.Coords[0] < 130 {
			t.Errorf("low-novelty candidate %v survived eviction", p)
		}
	}
}

package dynim

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
)

// The determinism contract of the parallel selector engine: for ANY worker
// count, interleaved Add/Update/Select traffic produces the identical
// selection sequence, eviction set, and journal as the serial (workers=1)
// path. Every §5 replay figure depends on this. The tests in this file run
// the same randomized scenario at workers 1, 2, 7, and GOMAXPROCS and
// require bit-identical outcomes; `go test -race ./internal/dynim/...`
// additionally proves the sharded refresh is data-race-free.

// fpScenario drives one randomized Add/Update/Select workload against a
// sampler with the given worker count and returns the full journal plus the
// selection sequence.
func fpScenario(seed int64, capacity, workers int) (events []Event, selections []string) {
	rng := rand.New(rand.NewSource(seed))
	fp := NewFarthestPoint(3, capacity)
	fp.SetWorkers(workers)
	next := 0
	for op := 0; op < 60; op++ {
		switch rng.Intn(4) {
		case 0, 1: // burst of adds (the common traffic shape)
			for i := rng.Intn(40); i >= 0; i-- {
				fp.Add(Point{
					ID:     fmt.Sprintf("p%04d", next),
					Coords: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
				})
				next++
			}
		case 2: // off-critical-path rank refresh
			fp.Update()
		case 3: // selection burst
			for _, p := range fp.Select(1 + rng.Intn(5)) {
				selections = append(selections, p.ID)
			}
		}
	}
	for _, p := range fp.Select(10) {
		selections = append(selections, p.ID)
	}
	return fp.History(), selections
}

func equivWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

func TestPropertyParallelSelectionMatchesSerial(t *testing.T) {
	f := func(seed int64, cappedQueue bool) bool {
		capacity := 0
		if cappedQueue {
			capacity = 48 // forces eviction batches through the heap path
		}
		refEvents, refSel := fpScenario(seed, capacity, 1)
		for _, workers := range equivWorkerCounts()[1:] {
			events, sel := fpScenario(seed, capacity, workers)
			if !reflect.DeepEqual(sel, refSel) {
				t.Logf("seed %d workers %d: selection sequence diverged", seed, workers)
				return false
			}
			if !reflect.DeepEqual(events, refEvents) {
				t.Logf("seed %d workers %d: journal diverged", seed, workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestParallelSelectionMatchesSerialAtScale(t *testing.T) {
	// One deterministic larger-than-fpsMinChunk run so the fan-out really
	// spawns goroutines (the property test's queues can stay below the
	// serial-inline threshold).
	if testing.Short() {
		t.Skip("short mode")
	}
	build := func(workers int) []string {
		rng := rand.New(rand.NewSource(99))
		fp := NewFarthestPoint(9, 0)
		fp.SetWorkers(workers)
		fp.DisableJournal()
		for i := 0; i < 3*fpsMinChunk; i++ {
			c := make([]float64, 9)
			for j := range c {
				c[j] = rng.Float64()
			}
			fp.Add(Point{ID: fmt.Sprintf("p%05d", i), Coords: c})
		}
		var out []string
		for round := 0; round < 4; round++ {
			fp.Update()
			for _, p := range fp.Select(6) {
				out = append(out, p.ID)
			}
		}
		return out
	}
	ref := build(1)
	for _, workers := range equivWorkerCounts()[1:] {
		if got := build(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: selection sequence differs from serial", workers)
		}
	}
}

func TestQueueSetParallelMatchesSerial(t *testing.T) {
	// QueueSet-wide updates and round-robin selection under the worker knob.
	run := func(workers int) []string {
		rng := rand.New(rand.NewSource(7))
		qs := NewQueueSet(3, 64)
		qs.SetWorkers(workers)
		queues := []string{"ras-a", "ras-b", "ras-raf"}
		var out []string
		for round := 0; round < 8; round++ {
			for i := 0; i < 120; i++ {
				qs.Add(queues[rng.Intn(len(queues))], Point{
					ID:     fmt.Sprintf("r%dp%03d", round, i),
					Coords: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
				})
			}
			qs.Update()
			out = append(out, idsOf(qs.Select(9))...)
		}
		return out
	}
	ref := run(1)
	for _, workers := range equivWorkerCounts()[1:] {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: queue-set selection differs from serial", workers)
		}
	}
}

// BenchmarkFPSSelectBurst is the selector hot path in isolation: fill a
// paper-sized queue, then time eight picks, a full refresh, and a ninth
// pick — the same window campaign.SelectorScaling measures.
func BenchmarkFPSSelectBurst(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 35000)
	for i := range pts {
		coords := make([]float64, 9)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		pts[i] = Point{ID: fmt.Sprintf("p%07d", i), Coords: coords}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fp := NewFarthestPoint(9, 0)
		fp.DisableJournal()
		for _, p := range pts {
			if err := fp.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		fp.Select(8)
		fp.Update()
		fp.Select(1)
	}
}

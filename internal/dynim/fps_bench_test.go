package dynim

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchFill builds a sampler with n candidates and sel pre-selections, the
// steady state of a campaign patch queue.
func benchFill(b *testing.B, dim, n, sel int) *FarthestPoint {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	fp := NewFarthestPoint(dim, 0)
	for i := 0; i < n; i++ {
		c := make([]float64, dim)
		for k := range c {
			c[k] = rng.NormFloat64()
		}
		if err := fp.Add(Point{ID: fmt.Sprintf("p%06d", i), Coords: c}); err != nil {
			b.Fatal(err)
		}
	}
	fp.Select(sel)
	fp.Update()
	return fp
}

// BenchmarkFPSUpdateIdle measures the per-feedback-tick Update cost when
// nothing changed since the last refresh — the most common tick in a long
// campaign. The dirty-set path answers from the (empty) dirty list instead
// of scanning every staleness counter.
func BenchmarkFPSUpdateIdle(b *testing.B) {
	fp := benchFill(b, 9, 35000, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.Update()
	}
}

// BenchmarkFPSUpdateAfterAddBurst measures the paper's feedback shape: a
// burst of fresh candidates lands between selections, then ranks refresh.
// Only the new arrivals are stale; the dirty-set path re-ranks exactly those
// and sifts their heap entries instead of sweeping all 35k slots.
func BenchmarkFPSUpdateAfterAddBurst(b *testing.B) {
	const dim, burst = 9, 64
	fp := benchFill(b, dim, 35000, 128)
	rng := rand.New(rand.NewSource(7))
	next := 1 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			c := make([]float64, dim)
			for k := range c {
				c[k] = rng.NormFloat64()
			}
			fp.Add(Point{ID: fmt.Sprintf("p%07d", next), Coords: c})
			next++
		}
		fp.Update()
	}
}

// BenchmarkFPSSelectFeedbackLoop measures the full selector loop: add a few
// candidates, select one (invalidating every rank), refresh. This is the
// end-to-end hot path behind the campaign's patch-selection ticks.
func BenchmarkFPSSelectFeedbackLoop(b *testing.B) {
	const dim = 9
	fp := benchFill(b, dim, 35000, 128)
	rng := rand.New(rand.NewSource(7))
	next := 1 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			c := make([]float64, dim)
			for k := range c {
				c[k] = rng.NormFloat64()
			}
			fp.Add(Point{ID: fmt.Sprintf("p%07d", next), Coords: c})
			next++
		}
		if len(fp.Select(1)) != 1 {
			b.Fatal("empty selection")
		}
		fp.Update()
	}
}

package dynim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// oracleDist2 recomputes a candidate's squared distance to its nearest
// selected point from scratch, using the same reassociated four-accumulator
// kernel as refreshSlot so the comparison is bitwise, not approximate.
func oracleDist2(q []float64, sel [][]float64) float64 {
	best := math.Inf(1)
	for _, row := range sel {
		var a0, a1, a2, a3 float64
		j := 0
		for ; j+4 <= len(q); j += 4 {
			d0 := q[j] - row[j]
			d1 := q[j+1] - row[j+1]
			d2 := q[j+2] - row[j+2]
			d3 := q[j+3] - row[j+3]
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
		}
		for ; j < len(q); j++ {
			d := q[j] - row[j]
			a0 += d * d
		}
		if acc := (a0 + a1) + (a2 + a3); acc < best {
			best = acc
		}
	}
	return best
}

// oracleFPS is an executable specification of farthest-point selection: a
// plain map of candidates, ranked from scratch on every pick by the shared
// kernel — no caches, no heap, no dirty sets. The production engine's
// selection sequence must match it exactly.
type oracleFPS struct {
	coords   map[string][]float64
	taken    map[string]bool // queued or already selected
	selected [][]float64
}

func newOracleFPS() *oracleFPS {
	return &oracleFPS{coords: make(map[string][]float64), taken: make(map[string]bool)}
}

func (o *oracleFPS) add(id string, c []float64) {
	if o.taken[id] {
		return
	}
	o.taken[id] = true
	o.coords[id] = append([]float64(nil), c...)
}

func (o *oracleFPS) selectN(n int) []string {
	var out []string
	for len(out) < n && len(o.coords) > 0 {
		bestID, bestD := "", math.Inf(-1)
		for id, c := range o.coords {
			d := oracleDist2(c, o.selected)
			if d > bestD || (d == bestD && id < bestID) || bestID == "" {
				bestID, bestD = id, d
			}
		}
		o.selected = append(o.selected, o.coords[bestID])
		delete(o.coords, bestID)
		out = append(out, bestID)
	}
	return out
}

// TestPropertyFPSMatchesOracle fuzzes the full engine — dirty-set refresh,
// lazy heap, eager fallback, pruned kernels — against the from-scratch
// oracle: every selection burst must return the identical ID sequence.
func TestPropertyFPSMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const dim = 5 // odd, so the unrolled kernel's remainder loop runs
		fp := NewFarthestPoint(dim, 0)
		oracle := newOracleFPS()
		next := 0
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0, 1: // add burst, with occasional duplicate re-offers
				for i := rng.Intn(30); i >= 0; i-- {
					id := fmt.Sprintf("p%04d", next)
					if rng.Intn(10) == 0 && next > 0 {
						id = fmt.Sprintf("p%04d", rng.Intn(next))
					} else {
						next++
					}
					c := make([]float64, dim)
					for k := range c {
						c[k] = rng.NormFloat64()
					}
					if err := fp.Add(Point{ID: id, Coords: c}); err != nil {
						t.Fatal(err)
					}
					oracle.add(id, c)
				}
			case 2: // off-path refresh must never change what gets selected
				fp.Update()
			case 3:
				n := 1 + rng.Intn(4)
				got := fp.Select(n)
				want := oracle.selectN(n)
				if len(got) != len(want) {
					t.Fatalf("seed %d op %d: got %d selections, oracle %d", seed, op, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i] {
						t.Fatalf("seed %d op %d: selection[%d] = %s, oracle %s",
							seed, op, i, got[i].ID, want[i])
					}
				}
			}
		}
	}
}

// TestFPSUpdatePlacementInvariant pins that the dirty-set refresh is
// behavior-neutral: running the same capped Add/Select scenario with extra
// Update calls injected at arbitrary points must produce an identical
// journal (selections AND evictions) — refresh timing can change how much
// work happens, never what is chosen.
func TestFPSUpdatePlacementInvariant(t *testing.T) {
	run := func(seed int64, updateMask int64) []Event {
		rng := rand.New(rand.NewSource(seed))
		fp := NewFarthestPoint(3, 64) // small cap: evictions fire constantly
		next := 0
		for op := 0; op < 50; op++ {
			if updateMask&(1<<uint(op%63)) != 0 {
				fp.Update()
			}
			switch rng.Intn(3) {
			case 0, 1:
				for i := rng.Intn(25); i >= 0; i-- {
					fp.Add(Point{
						ID:     fmt.Sprintf("p%04d", next),
						Coords: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
					})
					next++
				}
			case 2:
				fp.Select(1 + rng.Intn(3))
			}
		}
		return fp.History()
	}
	for seed := int64(1); seed <= 10; seed++ {
		base := run(seed, 0)
		for _, mask := range []int64{^int64(0), 0x5555555555555555, 1 << 7} {
			got := run(seed, mask)
			if len(got) != len(base) {
				t.Fatalf("seed %d mask %x: journal length %d vs %d", seed, mask, len(got), len(base))
			}
			for i := range got {
				if got[i].Kind != base[i].Kind || got[i].ID != base[i].ID {
					t.Fatalf("seed %d mask %x: journal[%d] = %s %s, want %s %s",
						seed, mask, i, got[i].Kind, got[i].ID, base[i].Kind, base[i].ID)
				}
			}
		}
	}
}

package dynim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func fp2(t *testing.T, capacity int) *FarthestPoint {
	t.Helper()
	return NewFarthestPoint(2, capacity)
}

func TestFPSGreedyFarthestOrder(t *testing.T) {
	f := fp2(t, 0)
	// Points on a line: 0, 1, 10. First selection has no reference set, so
	// ties (+Inf) break by ID; then the farthest-from-selected rule applies.
	pts := []Point{
		{ID: "a", Coords: []float64{0, 0}},
		{ID: "b", Coords: []float64{1, 0}},
		{ID: "c", Coords: []float64{10, 0}},
	}
	for _, p := range pts {
		if err := f.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	got := f.Select(3)
	ids := []string{got[0].ID, got[1].ID, got[2].ID}
	// First: "a" (ID tie-break at +Inf). Then farthest from {a} is "c"
	// (d=10 vs 1). Then "b".
	if !reflect.DeepEqual(ids, []string{"a", "c", "b"}) {
		t.Errorf("selection order = %v", ids)
	}
}

func TestFPSSelectionIsDiverse(t *testing.T) {
	// Selecting k from two tight clusters must cover both clusters before
	// re-visiting one — the defining property of farthest-point sampling.
	f := fp2(t, 0)
	for i := 0; i < 20; i++ {
		f.Add(Point{ID: fmt.Sprintf("L%02d", i), Coords: []float64{float64(i) * 0.001, 0}})
		f.Add(Point{ID: fmt.Sprintf("R%02d", i), Coords: []float64{100 + float64(i)*0.001, 0}})
	}
	got := f.Select(2)
	if len(got) != 2 {
		t.Fatal("short selection")
	}
	left := got[0].Coords[0] < 50
	right := got[1].Coords[0] >= 50
	if left == (got[1].Coords[0] < 50) {
		t.Errorf("both selections from the same cluster: %v %v", got[0], got[1])
	}
	_ = right
}

func TestFPSAddDimensionMismatch(t *testing.T) {
	f := fp2(t, 0)
	if err := f.Add(Point{ID: "x", Coords: []float64{1, 2, 3}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFPSDuplicateIDsIgnored(t *testing.T) {
	f := fp2(t, 0)
	f.Add(Point{ID: "p", Coords: []float64{0, 0}})
	f.Add(Point{ID: "p", Coords: []float64{9, 9}})
	if f.Len() != 1 {
		t.Errorf("Len = %d after duplicate add", f.Len())
	}
	got := f.Select(1)
	if got[0].Coords[0] != 0 {
		t.Error("duplicate overwrote original")
	}
	// Re-adding a selected ID is also ignored.
	f.Add(Point{ID: "p", Coords: []float64{5, 5}})
	if f.Len() != 0 {
		t.Errorf("selected ID re-queued; Len = %d", f.Len())
	}
}

func TestFPSCapacityEvictsLeastNovel(t *testing.T) {
	f := fp2(t, 3)
	// Select one reference point first so ranks are meaningful.
	f.Add(Point{ID: "ref", Coords: []float64{0, 0}})
	f.Select(1)
	// Add three candidates at distances 1, 5, 9, then refresh ranks.
	f.Add(Point{ID: "near", Coords: []float64{1, 0}})
	f.Add(Point{ID: "mid", Coords: []float64{5, 0}})
	f.Add(Point{ID: "far", Coords: []float64{9, 0}})
	f.Update()
	// A fourth add overflows the cap: the least novel ("near") must go.
	f.Add(Point{ID: "new", Coords: []float64{7, 0}})
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	for _, ev := range f.History() {
		if ev.Kind == "evict" && ev.ID != "near" {
			t.Errorf("evicted %q, want near", ev.ID)
		}
	}
	evicted := false
	for _, ev := range f.History() {
		if ev.Kind == "evict" {
			evicted = true
		}
	}
	if !evicted {
		t.Error("no eviction recorded")
	}
}

func TestFPSLenAndSelected(t *testing.T) {
	f := fp2(t, 0)
	for i := 0; i < 5; i++ {
		f.Add(Point{ID: fmt.Sprintf("p%d", i), Coords: []float64{float64(i), 0}})
	}
	if f.Len() != 5 {
		t.Errorf("Len = %d", f.Len())
	}
	sel := f.Select(2)
	if f.Len() != 3 || len(f.Selected()) != 2 {
		t.Errorf("after select: Len=%d selected=%d", f.Len(), len(f.Selected()))
	}
	if !reflect.DeepEqual(f.Selected(), sel) {
		t.Error("Selected() disagrees with Select() return")
	}
}

func TestFPSSelectMoreThanAvailable(t *testing.T) {
	f := fp2(t, 0)
	f.Add(Point{ID: "only", Coords: []float64{1, 1}})
	got := f.Select(10)
	if len(got) != 1 {
		t.Errorf("Select(10) with 1 candidate = %d", len(got))
	}
	if got2 := f.Select(1); len(got2) != 0 {
		t.Errorf("Select on empty = %v", got2)
	}
}

func TestFPSHistoryJournal(t *testing.T) {
	f := fp2(t, 0)
	f.Add(Point{ID: "a", Coords: []float64{0, 0}})
	f.Add(Point{ID: "b", Coords: []float64{1, 1}})
	f.Select(1)
	h := f.History()
	if len(h) != 3 {
		t.Fatalf("history = %v", h)
	}
	if h[0].Kind != "add" || h[2].Kind != "select" {
		t.Errorf("history kinds = %v", h)
	}
	for i := 1; i < len(h); i++ {
		if h[i].Seq <= h[i-1].Seq {
			t.Error("journal sequence not increasing")
		}
	}
}

func TestFPSCheckpointRestoreReplaysIdentically(t *testing.T) {
	// Resilience (§4.4): after restore, future selections must match those
	// the original would have made.
	mk := func() *FarthestPoint {
		f := fp2(t, 0)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 40; i++ {
			f.Add(Point{ID: fmt.Sprintf("p%02d", i), Coords: []float64{rng.Float64() * 10, rng.Float64() * 10}})
		}
		f.Select(5)
		return f
	}
	orig := mk()
	ckpt, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreFarthestPoint(2, 0, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), orig.Len())
	}
	if len(restored.History()) != len(orig.History()) {
		t.Error("history length changed across restore")
	}
	a, b := orig.Select(10), restored.Select(10)
	aIDs, bIDs := idsOf(a), idsOf(b)
	if !reflect.DeepEqual(aIDs, bIDs) {
		t.Errorf("post-restore selections diverge:\n%v\n%v", aIDs, bIDs)
	}
}

func TestRestoreRejectsCorruptAndWrongKind(t *testing.T) {
	if _, err := RestoreFarthestPoint(2, 0, []byte("not json")); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	b, _ := NewBinned([]BinDim{{0, 1, 4}}, 1, 1)
	ck, _ := b.Checkpoint()
	if _, err := RestoreFarthestPoint(2, 0, ck); err == nil {
		t.Error("binned checkpoint accepted by FPS restore")
	}
}

func TestPropertyFPSCacheEqualsRecompute(t *testing.T) {
	// The incremental rank cache must agree exactly with a from-scratch
	// recomputation — the correctness core of the caching scheme.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fp := NewFarthestPoint(3, 0)
		var all []Point
		for i := 0; i < 30; i++ {
			p := Point{ID: fmt.Sprintf("p%02d", i), Coords: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
			all = append(all, p)
			fp.Add(p)
		}
		// Interleave selects and adds.
		var selected []Point
		selected = append(selected, fp.Select(3)...)
		for i := 30; i < 40; i++ {
			p := Point{ID: fmt.Sprintf("p%02d", i), Coords: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
			all = append(all, p)
			fp.Add(p)
		}
		selected = append(selected, fp.Select(2)...)
		fp.Update()
		// Recompute each remaining candidate's squared distance from scratch
		// and compare with the cached value (the cache is squared end-to-end;
		// sqrt only happens at API boundaries).
		fp.mu.Lock()
		defer fp.mu.Unlock()
		for slot, got := range fp.dist2 {
			coords := fp.coords[slot*fp.dim : (slot+1)*fp.dim]
			want := math.Inf(1)
			for _, s := range selected {
				d := 0.0
				for k := range s.Coords {
					dd := s.Coords[k] - coords[k]
					d += dd * dd
				}
				if d < want {
					want = d
				}
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQueueSetRoutesAndRoundRobins(t *testing.T) {
	qs := NewQueueSet(2, 0)
	// Two protein-configuration queues, as in the paper's five-queue setup.
	for i := 0; i < 5; i++ {
		qs.Add("ras-only", Point{ID: fmt.Sprintf("a%d", i), Coords: []float64{float64(i), 0}})
		qs.Add("ras-raf", Point{ID: fmt.Sprintf("b%d", i), Coords: []float64{float64(i), 5}})
	}
	if qs.Len() != 10 {
		t.Errorf("Len = %d", qs.Len())
	}
	if got := qs.Queues(); !reflect.DeepEqual(got, []string{"ras-only", "ras-raf"}) {
		t.Errorf("Queues = %v", got)
	}
	sel := qs.Select(4)
	if len(sel) != 4 {
		t.Fatalf("Select(4) = %d", len(sel))
	}
	// Round-robin: alternating queues.
	fromA := 0
	for _, p := range sel {
		if p.ID[0] == 'a' {
			fromA++
		}
	}
	if fromA != 2 {
		t.Errorf("round-robin picked %d from queue A, want 2", fromA)
	}
	if got := qs.SelectFrom("ras-only", 100); len(got) != 3 {
		t.Errorf("SelectFrom drained %d, want 3 remaining", len(got))
	}
	if got := qs.SelectFrom("missing", 1); got != nil {
		t.Errorf("SelectFrom(missing) = %v", got)
	}
}

func TestQueueSetExhaustsGracefully(t *testing.T) {
	qs := NewQueueSet(1, 0)
	qs.Add("q", Point{ID: "only", Coords: []float64{1}})
	got := qs.Select(5)
	if len(got) != 1 {
		t.Errorf("Select past exhaustion = %d", len(got))
	}
}

// ---------------------------------------------------------------------------
// Binned sampler

func dims3() []BinDim {
	return []BinDim{{0, 10, 5}, {0, 1, 4}, {-5, 5, 10}}
}

func TestBinnedValidation(t *testing.T) {
	if _, err := NewBinned(nil, 0.5, 1); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewBinned([]BinDim{{0, 0, 4}}, 0.5, 1); err == nil {
		t.Error("hi<=lo accepted")
	}
	if _, err := NewBinned([]BinDim{{0, 1, 0}}, 0.5, 1); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewBinned(dims3(), 1.5, 1); err == nil {
		t.Error("balance > 1 accepted")
	}
}

func TestBinnedPureImportancePicksSparseBin(t *testing.T) {
	b, err := NewBinned([]BinDim{{0, 10, 10}}, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Crowd bin 0 with 50 candidates, put one candidate in bin 9.
	for i := 0; i < 50; i++ {
		b.Add(Point{ID: fmt.Sprintf("crowd%02d", i), Coords: []float64{0.5}})
	}
	b.Add(Point{ID: "rare", Coords: []float64{9.5}})
	got := b.Select(1)
	if got[0].ID != "rare" {
		t.Errorf("pure importance selected %q, want rare", got[0].ID)
	}
}

func TestBinnedBalanceZeroIsUniform(t *testing.T) {
	b, err := NewBinned([]BinDim{{0, 10, 10}}, 0.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 90 in bin 0, 10 in bin 9: pure random must select mostly from bin 0.
	for i := 0; i < 90; i++ {
		b.Add(Point{ID: fmt.Sprintf("a%02d", i), Coords: []float64{0.5}})
	}
	for i := 0; i < 10; i++ {
		b.Add(Point{ID: fmt.Sprintf("b%02d", i), Coords: []float64{9.5}})
	}
	fromA := 0
	for _, p := range b.Select(50) {
		if p.ID[0] == 'a' {
			fromA++
		}
	}
	if fromA < 35 { // E[fromA] ≈ 45 under uniformity; <35 is ~4σ off
		t.Errorf("uniform selection drew only %d/50 from the 90%% bin", fromA)
	}
}

func TestBinnedSelectRemovesAndExhausts(t *testing.T) {
	b, _ := NewBinned(dims3(), 0.7, 3)
	for i := 0; i < 8; i++ {
		b.Add(Point{ID: fmt.Sprintf("f%d", i), Coords: []float64{float64(i), 0.5, 0}})
	}
	got := b.Select(20)
	if len(got) != 8 || b.Len() != 0 {
		t.Errorf("Select = %d, Len = %d", len(got), b.Len())
	}
	seen := map[string]bool{}
	for _, p := range got {
		if seen[p.ID] {
			t.Errorf("duplicate selection %q", p.ID)
		}
		seen[p.ID] = true
	}
	if more := b.Select(1); len(more) != 0 {
		t.Errorf("Select on empty = %v", more)
	}
}

func TestBinnedOccupancyCountsAllOffered(t *testing.T) {
	b, _ := NewBinned([]BinDim{{0, 10, 10}}, 1, 1)
	for i := 0; i < 5; i++ {
		b.Add(Point{ID: fmt.Sprintf("p%d", i), Coords: []float64{3.5}})
	}
	b.Select(2)
	// Occupancy is density-of-seen, not density-of-queued: still 5.
	if occ := b.Occupancy([]float64{3.5}); occ != 5 {
		t.Errorf("Occupancy = %d, want 5", occ)
	}
}

func TestBinnedOutOfRangeClamps(t *testing.T) {
	b, _ := NewBinned([]BinDim{{0, 10, 10}}, 1, 1)
	if err := b.Add(Point{ID: "low", Coords: []float64{-99}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Point{ID: "high", Coords: []float64{+99}}); err != nil {
		t.Fatal(err)
	}
	if b.Occupancy([]float64{-99}) != 1 || b.Occupancy([]float64{99}) != 1 {
		t.Error("clamped bins not counted")
	}
}

func TestBinnedDimMismatchAndDuplicates(t *testing.T) {
	b, _ := NewBinned(dims3(), 1, 1)
	if err := b.Add(Point{ID: "bad", Coords: []float64{1}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	b.Add(Point{ID: "dup", Coords: []float64{1, 0.5, 0}})
	b.Add(Point{ID: "dup", Coords: []float64{2, 0.5, 0}})
	if b.Len() != 1 {
		t.Errorf("Len after duplicate = %d", b.Len())
	}
}

func TestBinnedDeterministicWithSeed(t *testing.T) {
	run := func() []string {
		b, _ := NewBinned(dims3(), 0.5, 99)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50; i++ {
			b.Add(Point{ID: fmt.Sprintf("f%02d", i),
				Coords: []float64{rng.Float64() * 10, rng.Float64(), rng.Float64()*10 - 5}})
		}
		return idsOf(b.Select(20))
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different selections")
	}
}

func TestBinnedCheckpointRestore(t *testing.T) {
	b, _ := NewBinned(dims3(), 1.0, 4)
	for i := 0; i < 10; i++ {
		b.Add(Point{ID: fmt.Sprintf("f%d", i), Coords: []float64{float64(i), 0.2, 0}})
	}
	b.Select(3)
	ck, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreBinned(dims3(), 1.0, 4, ck)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != b.Len() {
		t.Errorf("restored Len = %d, want %d", r.Len(), b.Len())
	}
	if len(r.History()) != len(b.History()) {
		t.Error("history not preserved")
	}
	// Pure-importance selection over restored state must return valid,
	// non-duplicate candidates.
	got := r.Select(r.Len())
	seen := map[string]bool{}
	for _, p := range got {
		if seen[p.ID] {
			t.Errorf("duplicate %q after restore", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestPropertyBinnedConservation(t *testing.T) {
	// Every added point is eventually selected exactly once; none invented.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewBinned([]BinDim{{0, 1, 7}, {0, 1, 7}}, rng.Float64(), seed)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(60)
		want := map[string]bool{}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("p%03d", i)
			want[id] = true
			b.Add(Point{ID: id, Coords: []float64{rng.Float64(), rng.Float64()}})
		}
		got := map[string]bool{}
		for {
			sel := b.Select(7)
			if len(sel) == 0 {
				break
			}
			for _, p := range sel {
				if got[p.ID] {
					return false // duplicate
				}
				got[p.ID] = true
			}
		}
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func idsOf(ps []Point) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

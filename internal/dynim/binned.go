package dynim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mummi/internal/telemetry"
)

// Binned is the discrete histogram sampler developed for CG frame selection
// (§4.1(6), §4.4 Task 2). Frame encodings are 3-D vectors of disparate
// quantities, so L2 distance is meaningless; instead each dimension is
// binned independently and a candidate's novelty is the inverse occupancy
// of its joint bin: frames from sparsely-explored regions of configuration
// space rank first.
//
// Balance controls importance vs randomness, a functional requirement of CG
// frame selection: with probability Balance a selection takes the most
// novel candidate; otherwise it takes a uniformly random one. Updates are
// O(1) per add (a counter increment), which is why this sampler handles
// ~165× more candidates than farthest-point ranking at the same refresh
// budget.
type Binned struct {
	mu sync.Mutex

	dims    []BinDim
	balance float64
	rng     *rand.Rand

	// occupancy counts every point ever offered (queued or selected); it is
	// the "seen" density estimate novelty is measured against.
	occupancy map[int]int
	// queued holds candidate IDs per joint bin, insertion-ordered.
	queued map[int][]Point
	total  int // queued candidate count

	journal  journal
	dd       dedupe
	trackDup bool
	tel      *telemetry.Telemetry // nil = no instrumentation
}

// BinDim describes the binning of one encoding dimension.
type BinDim struct {
	Lo, Hi float64
	Bins   int
}

// NewBinned creates a binned sampler. balance ∈ [0,1]: 1 = pure importance
// (always the least-occupied bin), 0 = pure random. seed makes selection
// reproducible.
func NewBinned(dims []BinDim, balance float64, seed int64) (*Binned, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dynim: binned sampler needs at least one dimension")
	}
	for i, d := range dims {
		if d.Bins < 1 || d.Hi <= d.Lo {
			return nil, fmt.Errorf("dynim: invalid bin dim %d: %+v", i, d)
		}
	}
	if balance < 0 || balance > 1 {
		return nil, fmt.Errorf("dynim: balance %v outside [0,1]", balance)
	}
	return &Binned{
		dims:      append([]BinDim(nil), dims...),
		balance:   balance,
		rng:       rand.New(rand.NewSource(seed)),
		occupancy: make(map[int]int),
		queued:    make(map[int][]Point),
		dd:        newDedupe(),
		trackDup:  true,
	}, nil
}

// binOf maps coords to a joint bin index (row-major over dimensions);
// out-of-range coordinates clamp to edge bins, keeping tails visible.
func (b *Binned) binOf(coords []float64) int {
	idx := 0
	for i, d := range b.dims {
		j := int(float64(d.Bins) * (coords[i] - d.Lo) / (d.Hi - d.Lo))
		if j < 0 {
			j = 0
		}
		if j >= d.Bins {
			j = d.Bins - 1
		}
		idx = idx*d.Bins + j
	}
	return idx
}

// DisableJournal stops event recording (campaign-scale memory bound).
func (b *Binned) DisableJournal() {
	b.mu.Lock()
	b.journal.disabled = true
	b.mu.Unlock()
}

// SetTelemetry routes selection timings to tel (nil disables
// instrumentation). Timings are measured on the telemetry clock, never the
// wall clock, so instrumented replays stay deterministic.
func (b *Binned) SetTelemetry(tel *telemetry.Telemetry) {
	b.mu.Lock()
	b.tel = tel
	b.mu.Unlock()
}

// SetTrackDuplicates toggles duplicate-ID rejection. Producers that
// guarantee unique IDs (the campaign driver does, by construction) turn it
// off so the dedupe set does not grow with every candidate ever offered.
func (b *Binned) SetTrackDuplicates(on bool) {
	b.mu.Lock()
	b.trackDup = on
	b.mu.Unlock()
}

// Add implements Selector: O(1) — increment the bin's occupancy and queue
// the candidate.
func (b *Binned) Add(p Point) error {
	if len(p.Coords) != len(b.dims) {
		return fmt.Errorf("dynim: point %q has dim %d, sampler dim %d", p.ID, len(p.Coords), len(b.dims))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.trackDup && !b.dd.claim(p.ID) {
		return nil
	}
	bin := b.binOf(p.Coords)
	b.occupancy[bin]++
	b.queued[bin] = append(b.queued[bin], p)
	b.total++
	b.journal.record("add", p.ID)
	return nil
}

// Update implements Selector. Occupancy is maintained incrementally, so a
// refresh is a no-op; the method exists to satisfy the Selector contract.
func (b *Binned) Update() {}

// Select implements Selector.
func (b *Binned) Select(n int) []Point {
	b.mu.Lock()
	defer b.mu.Unlock()
	var selStart time.Time
	if b.tel != nil {
		selStart = b.tel.Now()
	}
	var out []Point
	for len(out) < n && b.total > 0 {
		var bin int
		if b.rng.Float64() < b.balance {
			bin = b.leastOccupiedNonEmpty()
		} else {
			bin = b.randomNonEmpty()
		}
		q := b.queued[bin]
		p := q[0]
		b.queued[bin] = q[1:]
		if len(b.queued[bin]) == 0 {
			delete(b.queued, bin)
		}
		b.total--
		b.journal.record("select", p.ID)
		out = append(out, p)
	}
	if b.tel != nil {
		b.tel.Histogram("dynim.select_ms", "ms", nil).Observe(b.tel.MsSince(selStart))
		b.tel.RecordSpan("dynim", "select", selStart, b.tel.Now().Sub(selStart),
			"want", n, "got", len(out))
		b.tel.Counter("dynim.selected_total").Add(int64(len(out)))
	}
	return out
}

// leastOccupiedNonEmpty returns the queued bin with the smallest occupancy,
// ties broken by bin index for determinism. Caller holds the lock.
func (b *Binned) leastOccupiedNonEmpty() int {
	best, bestOcc := -1, 0
	//lint:allow determinism -- min-reduction with a total-order tie-break on bin index; the result is iteration-order independent
	for bin := range b.queued {
		occ := b.occupancy[bin]
		if best < 0 || occ < bestOcc || (occ == bestOcc && bin < best) {
			best, bestOcc = bin, occ
		}
	}
	return best
}

// randomNonEmpty picks a queued candidate uniformly at random (weighting
// bins by their queue length). Caller holds the lock.
func (b *Binned) randomNonEmpty() int {
	k := b.rng.Intn(b.total)
	// Deterministic iteration: walk bins in ascending index order.
	bins := make([]int, 0, len(b.queued))
	for bin := range b.queued {
		bins = append(bins, bin)
	}
	sort.Ints(bins)
	for _, bin := range bins {
		if k < len(b.queued[bin]) {
			return bin
		}
		k -= len(b.queued[bin])
	}
	return bins[len(bins)-1]
}

// Len implements Selector.
func (b *Binned) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Occupancy returns the occupancy count of the joint bin containing coords.
func (b *Binned) Occupancy(coords []float64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.occupancy[b.binOf(coords)]
}

// History implements Selector.
func (b *Binned) History() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.journal.history()
}

// Checkpoint serializes the sampler state (queued candidates and journal;
// occupancy is reconstructed from them plus selected IDs on restore).
func (b *Binned) Checkpoint() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := snapshot{Kind: "binned", Events: b.journal.events, Seq: b.journal.seq}
	bins := make([]int, 0, len(b.queued))
	for bin := range b.queued {
		bins = append(bins, bin)
	}
	sort.Ints(bins)
	for _, bin := range bins {
		s.Candidates = append(s.Candidates, b.queued[bin]...)
	}
	return marshalSnapshot(s)
}

// RestoreBinned reconstructs a binned sampler. Selected points do not need
// their coordinates replayed: occupancy from past selections is an estimate
// and the paper accepts approximate density after restart; queued
// candidates fully repopulate their bins.
func RestoreBinned(dims []BinDim, balance float64, seed int64, ckpt []byte) (*Binned, error) {
	s, err := unmarshalSnapshot(ckpt, "binned")
	if err != nil {
		return nil, err
	}
	b, err := NewBinned(dims, balance, seed)
	if err != nil {
		return nil, err
	}
	for _, p := range s.Candidates {
		if err := b.Add(p); err != nil {
			return nil, err
		}
	}
	// Replace the journal with the checkpointed one (Add above re-recorded
	// the queued candidates; history must be the original).
	b.mu.Lock()
	b.journal.events = s.Events
	b.journal.seq = s.Seq
	b.mu.Unlock()
	return b, nil
}

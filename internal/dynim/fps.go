package dynim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mummi/internal/knn"
)

// FarthestPoint ranks candidates by their L2 distance to the nearest
// already-selected point and selects the farthest — dynamic-importance
// sampling as used by the paper's Patch Selector over 9-D ML encodings.
//
// Rank caching: a candidate's distance-to-selected can only shrink as new
// selections are made, so each candidate caches its distance together with
// the number of selected points it has been compared against; Update only
// compares against selections made since. This is what makes Add O(1) and
// keeps "the cost of adding new candidates negligible" (§4.4).
//
// The queue is capped (35,000 in the paper's patch queues); beyond the cap
// the lowest-ranked (least novel) candidate is evicted.
type FarthestPoint struct {
	mu sync.Mutex

	dim      int
	capacity int

	cands   []*fpCand
	byID    map[string]*fpCand
	sel     *knn.Brute // selected coordinates, append-only
	selPts  []Point
	journal journal
	dd      dedupe
}

type fpCand struct {
	p       Point
	dist    float64 // cached min distance to selected[0:seenSel]
	seenSel int
}

// NewFarthestPoint creates a sampler for dim-dimensional points with the
// given queue capacity (0 means unbounded).
func NewFarthestPoint(dim, capacity int) *FarthestPoint {
	if dim < 1 {
		panic(fmt.Sprintf("dynim: invalid dimension %d", dim))
	}
	return &FarthestPoint{
		dim:      dim,
		capacity: capacity,
		byID:     make(map[string]*fpCand),
		sel:      knn.NewBrute(dim),
		dd:       newDedupe(),
	}
}

// Add implements Selector. Duplicate IDs (already queued or selected) are
// ignored without error, so producers may safely re-offer after restarts.
func (f *FarthestPoint) Add(p Point) error {
	if len(p.Coords) != f.dim {
		return fmt.Errorf("dynim: point %q has dim %d, sampler dim %d", p.ID, len(p.Coords), f.dim)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dd.claim(p.ID) {
		return nil
	}
	c := &fpCand{p: p, dist: math.Inf(1)}
	f.cands = append(f.cands, c)
	f.byID[p.ID] = c
	f.journal.record("add", p.ID)
	if f.capacity > 0 && len(f.cands) > f.capacity {
		// Evict in amortized batches: a single-victim scan per add would be
		// O(queue) for every candidate past the cap, which the campaign's
		// millions of patch offers cannot afford. The queue is allowed a
		// small slack, then trimmed back to capacity in one pass.
		slack := f.capacity / 16
		if slack < 1 {
			slack = 1
		}
		if len(f.cands) >= f.capacity+slack {
			f.evictDownTo(f.capacity)
		}
	}
	return nil
}

// evictDownTo drops the lowest-ranked (least novel) candidates until only
// target remain; ties break by ID for determinism. Caller holds the lock.
func (f *FarthestPoint) evictDownTo(target int) {
	sort.Slice(f.cands, func(i, j int) bool {
		if f.cands[i].dist != f.cands[j].dist {
			return f.cands[i].dist > f.cands[j].dist // most novel first
		}
		return f.cands[i].p.ID > f.cands[j].p.ID
	})
	for _, victim := range f.cands[target:] {
		delete(f.byID, victim.p.ID)
		f.dd.release(victim.p.ID)
		f.journal.record("evict", victim.p.ID)
	}
	f.cands = f.cands[:target]
}

// Update implements Selector: refresh every candidate's cached distance
// against selections made since its last refresh.
func (f *FarthestPoint) Update() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.updateLocked()
}

func (f *FarthestPoint) updateLocked() {
	n := f.sel.Len()
	for _, c := range f.cands {
		if c.seenSel < n {
			d := f.sel.NearestAmong(c.p.Coords, c.seenSel, n)
			if d < c.dist {
				c.dist = d
			}
			c.seenSel = n
		}
	}
}

// Select implements Selector: refresh ranks, then repeatedly take the
// farthest candidate, fold it into the selected set, and re-rank against it.
func (f *FarthestPoint) Select(n int) []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Point
	for len(out) < n && len(f.cands) > 0 {
		f.updateLocked()
		best := 0
		for i, c := range f.cands {
			if c.dist > f.cands[best].dist ||
				(c.dist == f.cands[best].dist && c.p.ID < f.cands[best].p.ID) {
				best = i
			}
		}
		chosen := f.cands[best]
		f.cands[best] = f.cands[len(f.cands)-1]
		f.cands = f.cands[:len(f.cands)-1]
		delete(f.byID, chosen.p.ID)
		f.sel.Add(chosen.p.Coords)
		f.selPts = append(f.selPts, chosen.p)
		f.journal.record("select", chosen.p.ID)
		out = append(out, chosen.p)
	}
	return out
}

// DisableJournal stops event recording (campaign-scale memory bound);
// History returns only events recorded before the call.
func (f *FarthestPoint) DisableJournal() {
	f.mu.Lock()
	f.journal.disabled = true
	f.mu.Unlock()
}

// Len implements Selector.
func (f *FarthestPoint) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.cands)
}

// Selected returns the points selected so far, in selection order.
func (f *FarthestPoint) Selected() []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Point(nil), f.selPts...)
}

// History implements Selector.
func (f *FarthestPoint) History() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.journal.history()
}

// Checkpoint serializes the sampler's full state.
func (f *FarthestPoint) Checkpoint() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := snapshot{Kind: "fps", Selected: f.selPts, Events: f.journal.events, Seq: f.journal.seq}
	for _, c := range f.cands {
		s.Candidates = append(s.Candidates, c.p)
	}
	return marshalSnapshot(s)
}

// RestoreFarthestPoint reconstructs a sampler from a Checkpoint. Cached
// ranks are rebuilt lazily, so a restore is cheap and the next Select pays
// one full refresh — the same cost profile as the paper's restart path.
func RestoreFarthestPoint(dim, capacity int, ckpt []byte) (*FarthestPoint, error) {
	s, err := unmarshalSnapshot(ckpt, "fps")
	if err != nil {
		return nil, err
	}
	f := NewFarthestPoint(dim, capacity)
	for _, p := range s.Selected {
		if len(p.Coords) != dim {
			return nil, fmt.Errorf("dynim: checkpoint point %q has dim %d", p.ID, len(p.Coords))
		}
		f.dd.claim(p.ID)
		f.sel.Add(p.Coords)
		f.selPts = append(f.selPts, p)
	}
	for _, p := range s.Candidates {
		if len(p.Coords) != dim {
			return nil, fmt.Errorf("dynim: checkpoint point %q has dim %d", p.ID, len(p.Coords))
		}
		f.dd.claim(p.ID)
		c := &fpCand{p: p, dist: math.Inf(1)}
		f.cands = append(f.cands, c)
		f.byID[p.ID] = c
	}
	f.journal.events = s.Events
	f.journal.seq = s.Seq
	return f, nil
}

// QueueSet groups several independently-capped FarthestPoint queues, as the
// paper's Patch Selector does with five in-memory queues keyed by protein
// configuration. Selection can target one queue or round-robin across all.
type QueueSet struct {
	mu        sync.Mutex
	dim       int
	cap       int
	queues    map[string]*FarthestPoint
	order     []string
	noJournal bool
}

// NewQueueSet creates an empty set whose queues share dim and capacity.
func NewQueueSet(dim, capacity int) *QueueSet {
	return &QueueSet{dim: dim, cap: capacity, queues: make(map[string]*FarthestPoint)}
}

// Add routes a candidate to the named queue, creating it on first use.
func (q *QueueSet) Add(queue string, p Point) error {
	q.mu.Lock()
	fp, ok := q.queues[queue]
	if !ok {
		fp = NewFarthestPoint(q.dim, q.cap)
		if q.noJournal {
			fp.DisableJournal()
		}
		q.queues[queue] = fp
		q.order = append(q.order, queue)
		sort.Strings(q.order)
	}
	q.mu.Unlock()
	return fp.Add(p)
}

// SelectFrom selects from one queue.
func (q *QueueSet) SelectFrom(queue string, n int) []Point {
	q.mu.Lock()
	fp := q.queues[queue]
	q.mu.Unlock()
	if fp == nil {
		return nil
	}
	return fp.Select(n)
}

// Select round-robins one selection at a time across the queues (sorted by
// name for determinism) until n points are gathered or all queues drain.
func (q *QueueSet) Select(n int) []Point {
	q.mu.Lock()
	order := append([]string(nil), q.order...)
	q.mu.Unlock()
	var out []Point
	for len(out) < n {
		progress := false
		for _, name := range order {
			if len(out) >= n {
				break
			}
			q.mu.Lock()
			fp := q.queues[name]
			q.mu.Unlock()
			got := fp.Select(1)
			if len(got) > 0 {
				out = append(out, got...)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return out
}

// Len sums candidates across queues.
func (q *QueueSet) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for _, fp := range q.queues {
		total += fp.Len()
	}
	return total
}

// Queues returns the queue names, sorted.
func (q *QueueSet) Queues() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]string(nil), q.order...)
}

// DisableJournal turns off journaling in all current and future queues.
func (q *QueueSet) DisableJournal() {
	q.mu.Lock()
	q.noJournal = true
	for _, fp := range q.queues {
		fp.DisableJournal()
	}
	q.mu.Unlock()
}

// AsSelector adapts the QueueSet to the Selector interface: route picks the
// queue for each added point (the paper routes patches by protein
// configuration), Select round-robins across queues.
func (q *QueueSet) AsSelector(route func(Point) string) Selector {
	return queueSelector{qs: q, route: route}
}

type queueSelector struct {
	qs    *QueueSet
	route func(Point) string
}

func (s queueSelector) Add(p Point) error { return s.qs.Add(s.route(p), p) }

func (s queueSelector) Select(n int) []Point { return s.qs.Select(n) }

func (s queueSelector) Update() {
	s.qs.mu.Lock()
	queues := make([]*FarthestPoint, 0, len(s.qs.queues))
	for _, fp := range s.qs.queues {
		queues = append(queues, fp)
	}
	s.qs.mu.Unlock()
	for _, fp := range queues {
		fp.Update()
	}
}

func (s queueSelector) Len() int { return s.qs.Len() }

// History merges the per-queue journals in sequence order within each
// queue; cross-queue ordering is by queue name.
func (s queueSelector) History() []Event {
	s.qs.mu.Lock()
	order := append([]string(nil), s.qs.order...)
	s.qs.mu.Unlock()
	var out []Event
	for _, name := range order {
		s.qs.mu.Lock()
		fp := s.qs.queues[name]
		s.qs.mu.Unlock()
		out = append(out, fp.History()...)
	}
	return out
}

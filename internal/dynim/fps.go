package dynim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mummi/internal/knn"
	"mummi/internal/parallel"
	"mummi/internal/telemetry"
)

// FarthestPoint ranks candidates by their L2 distance to the nearest
// already-selected point and selects the farthest — dynamic-importance
// sampling as used by the paper's Patch Selector over 9-D ML encodings.
//
// Rank caching: a candidate's distance-to-selected can only shrink as new
// selections are made, so each candidate caches its distance together with
// the number of selected points it has been compared against; Update only
// compares against selections made since. This is what makes Add O(1) and
// keeps "the cost of adding new candidates negligible" (§4.4).
//
// Four engine-level optimizations ride on top of that caching scheme:
//
//   - Squared distances end-to-end: the cache holds *squared* L2 values and
//     every comparison is squared-vs-squared, removing one math.Sqrt per
//     candidate-selection comparison from the hot path. Squaring is
//     strictly monotonic, so every ordering is unchanged.
//
//   - Flat candidate storage: candidates live in dense parallel arrays
//     (structure-of-arrays) indexed by slot — coordinates in one row-major
//     arena, cached ranks and staleness counters in flat slices. A rank
//     refresh streams those arrays in slot order instead of chasing one
//     heap pointer per candidate, which is what a 35,000-candidate pass is
//     actually bound by (memory latency, not arithmetic).
//
//   - Sharded rank updates: a full refresh partitions the slot range into
//     contiguous chunks fanned out over parallel.For. Each slot's refresh
//     reads the append-only selected index and writes only its own cache,
//     so the result is bit-identical to the serial path for every worker
//     count — the determinism contract every §5 replay figure depends on.
//
//   - Dirty-set refresh: staleness is tracked explicitly — new arrivals
//     join a dirty list, and a selection promotes the whole store to dirty
//     (every rank may shrink against the new point). Update re-ranks only
//     the invalidated candidates and sifts just their heap entries, so the
//     feedback loop's between-selection refreshes cost O(dirty·log n)
//     instead of an O(n) counter scan plus a full re-heapify.
//
//   - Lazy max-heap selection: an index heap keyed on (cached distance,
//     ID) tracks the candidate order. A cached value is always an *upper
//     bound* on the true rank (distances only shrink), so Select pops the
//     top, refreshes it if stale, and re-sifts; the first fresh element to
//     surface is exactly the argmax the serial full-rescan picked,
//     tie-broken identically by ID. k selections cost O(k log n) plus the
//     unavoidable incremental distance work, instead of O(k·n).
//
// The queue is capped (35,000 in the paper's patch queues); beyond the cap
// the lowest-ranked (least novel) candidate is evicted.
type FarthestPoint struct {
	mu sync.Mutex

	dim      int
	capacity int
	workers  int // rank-update fan-out; <=0 means GOMAXPROCS

	// Structure-of-arrays candidate store. Slots are dense [0, n); freeing
	// a slot moves the last slot into the hole so refresh passes stream
	// contiguous memory.
	ids     []string
	coords  []float64 // slot s → coords[s*dim : (s+1)*dim]
	dist2   []float64 // cached min *squared* distance to sel[0:seenSel[s]]
	seenSel []int32

	// Index max-heap over slots under (dist2 desc, ID asc). When heapDirty
	// is set the ordering invariant is suspended and h/heapPos degrade to a
	// plain membership index: cold bursts pick via streaming argmax passes
	// (pickEager) where per-pick sift maintenance would be wasted work, and
	// the next Update heapifies once to re-enter lazy mode.
	h         []int32 // heap position → slot
	heapPos   []int32 // slot → heap position
	heapDirty bool

	// selGap2[r] is the squared distance from sel[r] to its nearest earlier
	// selection (+Inf for r = 0), and gapSuff[k] = min(selGap2[k:n]) cached
	// for the current selection count gapSuffN. Together they drive the
	// triangle-inequality prune in refreshSlot: a selection far from every
	// earlier selection cannot tighten the rank of a candidate close to one
	// of them.
	selGap2  []float64
	gapSuff  []float64
	gapSuffN int

	// Dirty-set staleness tracking. Every slot whose cached rank may be
	// stale is either listed in dirty (new arrivals and restored candidates,
	// appended in creation order) or covered by allDirty (set after any
	// selection, since a new selected point can tighten every rank). Update
	// consults these instead of scanning all seenSel counters, so a refresh
	// between selections re-ranks only the invalidated candidates and sifts
	// just their heap entries — O(dirty·log n) instead of an O(n) sweep and
	// full re-heapify per feedback tick.
	dirty      []int32
	allDirty   bool
	scratchPos []int32 // reused position buffer for the dirty sift sweep

	sel     *knn.Brute // selected coordinates, append-only
	selPts  []Point
	journal journal
	dd      dedupe
	tel     *telemetry.Telemetry // nil = no instrumentation
}

// fpsMinChunk is the smallest per-worker slot chunk worth a goroutine:
// below it, spawn latency dominates the distance arithmetic.
const fpsMinChunk = 512

// NewFarthestPoint creates a sampler for dim-dimensional points with the
// given queue capacity (0 means unbounded).
func NewFarthestPoint(dim, capacity int) *FarthestPoint {
	if dim < 1 {
		panic(fmt.Sprintf("dynim: invalid dimension %d", dim))
	}
	return &FarthestPoint{
		dim:      dim,
		capacity: capacity,
		sel:      knn.NewBrute(dim),
		dd:       newDedupe(),
	}
}

// SetWorkers sets the rank-update fan-out (0 = GOMAXPROCS). Selection
// output is identical for every value — the knob trades wall-clock only.
func (f *FarthestPoint) SetWorkers(n int) {
	f.mu.Lock()
	f.workers = n
	f.mu.Unlock()
}

// SetTelemetry routes rank-refresh and selection timings to tel (nil
// disables instrumentation). Timings are measured on the telemetry clock,
// never the wall clock, so instrumented replays stay deterministic.
func (f *FarthestPoint) SetTelemetry(tel *telemetry.Telemetry) {
	f.mu.Lock()
	f.tel = tel
	f.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Slot store and index heap (caller holds the lock throughout)

// heapAbove reports whether slot a sorts above slot b: most novel first
// (larger cached squared distance), ties broken by smaller ID — the same
// total order the serial argmax used, so heap-top equals argmax-pick.
func (f *FarthestPoint) heapAbove(a, b int32) bool {
	if f.dist2[a] != f.dist2[b] {
		return f.dist2[a] > f.dist2[b]
	}
	return f.ids[a] < f.ids[b]
}

func (f *FarthestPoint) heapSwap(i, j int) {
	f.h[i], f.h[j] = f.h[j], f.h[i]
	f.heapPos[f.h[i]] = int32(i)
	f.heapPos[f.h[j]] = int32(j)
}

func (f *FarthestPoint) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !f.heapAbove(f.h[i], f.h[parent]) {
			break
		}
		f.heapSwap(i, parent)
		i = parent
	}
}

// down sifts position i toward the leaves; reports whether it moved.
func (f *FarthestPoint) down(i int) bool {
	start, n := i, len(f.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && f.heapAbove(f.h[r], f.h[l]) {
			best = r
		}
		if !f.heapAbove(f.h[best], f.h[i]) {
			break
		}
		f.heapSwap(i, best)
		i = best
	}
	return i > start
}

func (f *FarthestPoint) heapInit() {
	for i := len(f.h)/2 - 1; i >= 0; i-- {
		f.down(i)
	}
}

// heapRemoveAt removes the heap entry at position pos. While the heap is
// dirty there is no ordering to restore, so removal is a plain
// swap-with-last.
func (f *FarthestPoint) heapRemoveAt(pos int) {
	last := len(f.h) - 1
	if pos != last {
		f.h[pos] = f.h[last]
		f.heapPos[f.h[pos]] = int32(pos)
	}
	f.h = f.h[:last]
	if pos < last && !f.heapDirty {
		if !f.down(pos) {
			f.up(pos)
		}
	}
}

// newSlot appends a candidate to the store and heap with an unranked
// (+Inf) cache. An unranked push never sifts: +Inf ties resolve by ID and
// slots are appended in arrival order, so the new leaf stays put unless
// its ID sorts below its chain of +Inf ancestors.
func (f *FarthestPoint) newSlot(p Point) {
	s := int32(len(f.ids))
	f.ids = append(f.ids, p.ID)
	f.coords = append(f.coords, p.Coords...)
	f.dist2 = append(f.dist2, math.Inf(1))
	f.seenSel = append(f.seenSel, 0)
	f.heapPos = append(f.heapPos, int32(len(f.h)))
	f.h = append(f.h, s)
	if !f.heapDirty {
		f.up(len(f.h) - 1)
	}
	if f.sel.Len() > 0 {
		// Unranked against a non-empty selected set: stale until refreshed.
		f.dirty = append(f.dirty, s)
	}
}

// freeSlot releases slot s by moving the last slot into it. The slot must
// already be out of the heap; the moved slot's heap entry is re-pointed.
func (f *FarthestPoint) freeSlot(s int32) {
	last := int32(len(f.ids) - 1)
	if s != last {
		f.ids[s] = f.ids[last]
		copy(f.coords[int(s)*f.dim:int(s+1)*f.dim], f.coords[int(last)*f.dim:int(last+1)*f.dim])
		f.dist2[s] = f.dist2[last]
		f.seenSel[s] = f.seenSel[last]
		hp := f.heapPos[last]
		f.heapPos[s] = hp
		f.h[hp] = s
	}
	f.ids[last] = "" // release the string before truncating
	f.ids = f.ids[:last]
	f.coords = f.coords[:int(last)*f.dim]
	f.dist2 = f.dist2[:last]
	f.seenSel = f.seenSel[:last]
	f.heapPos = f.heapPos[:last]
}

// gapSuffix ensures gapSuff[k] = min(selGap2[k:n]) for the current
// selection count n. Selections are append-only, so the cache key is just
// n; the rebuild is O(n) and amortizes over a whole refresh pass. Caller
// holds the lock; the suffix array is read-only during sharded passes.
func (f *FarthestPoint) gapSuffix(n int) {
	if f.gapSuffN == n && len(f.gapSuff) == n {
		return
	}
	if cap(f.gapSuff) < n {
		f.gapSuff = make([]float64, n)
	}
	f.gapSuff = f.gapSuff[:n]
	m := math.Inf(1)
	for k := n - 1; k >= 0; k-- {
		if f.selGap2[k] < m {
			m = f.selGap2[k]
		}
		f.gapSuff[k] = m
	}
	f.gapSuffN = n
}

// refreshSlot folds selections [seenSel[s], n) into slot s's cached rank.
// rows is the selected index's row-major storage for rows [0, n).
//
// Triangle-inequality prune: the cached best is d(c, s*)² for some earlier
// selection s*, and selGap2[r] lower-bounds d(sel[r], s*)². By the triangle
// inequality d(c, sel[r]) ≥ d(sel[r], s*) − d(c, s*), so whenever
// selGap2[r] > 4·best the new selection is at least 2× farther from s* than
// the candidate is, hence at least best away from the candidate — row r
// cannot tighten the min and is skipped without touching its coordinates.
// The comparison is strict so the +Inf sentinel of row 0 (no earlier
// selection, bound vacuous) never prunes, and an unranked candidate
// (best = +Inf) always computes. gapSuff extends the same bound to the whole
// remaining row range, skipping the slot outright. Pruning decisions depend
// only on cached values, never on chunk boundaries, so sharded passes stay
// bit-identical for every worker count.
//
// The inner sum uses four independent accumulators: the naive acc += d*d
// chain serializes on FP-add latency (~4 cycles per term), which at 35,000
// candidates × 9 dims is the single largest cost in a refresh pass. The
// reassociated sum may differ from the naive order in the last ulp; every
// rank comparison in the engine goes through this one kernel, so the
// ordering stays internally consistent.
func (f *FarthestPoint) refreshSlot(s int32, n int, rows []float64) {
	dim := f.dim
	seen := int(f.seenSel[s])
	best := f.dist2[s]
	if f.gapSuffN == n && seen < n && f.gapSuff[seen] > 4*best {
		f.seenSel[s] = int32(n)
		return
	}
	q := f.coords[int(s)*dim : int(s)*dim+dim : int(s)*dim+dim]
	gaps := f.selGap2
	for r := seen; r < n; r++ {
		if gaps[r] > 4*best {
			continue
		}
		// Re-slicing the row to len(q) lets the compiler prove both q[j+k]
		// and row[j+k] in bounds from the single j+4 <= len(q) loop
		// condition — no per-element checks in the unrolled body.
		row := rows[r*dim : r*dim+dim : r*dim+dim]
		row = row[:len(q)]
		var a0, a1, a2, a3 float64
		j := 0
		for ; j+4 <= len(q); j += 4 {
			qs, rs := q[j:j+4:j+4], row[j:j+4:j+4]
			d0 := qs[0] - rs[0]
			d1 := qs[1] - rs[1]
			d2 := qs[2] - rs[2]
			d3 := qs[3] - rs[3]
			a0 += d0 * d0
			a1 += d1 * d1
			a2 += d2 * d2
			a3 += d3 * d3
		}
		for ; j < len(q); j++ {
			d := q[j] - row[j]
			a0 += d * d
		}
		if acc := (a0 + a1) + (a2 + a3); acc < best {
			best = acc
		}
	}
	f.dist2[s] = best
	f.seenSel[s] = int32(n)
}

// pickEager returns the argmax slot under (fresh dist2 desc, ID asc) in one
// fused streaming pass — no heap maintenance. It is the cold-burst
// complement to the lazy heap: when most of the queue is stale, surfacing
// contenders one at a time through the root costs a log-depth sift per
// refresh, while one pass streams the flat rank arrays once. The heap stays
// dirty afterwards (Select marks it); the next Update heapifies once.
//
// The pass exploits the upper-bound invariant twice. A slot whose *cached*
// rank does not beat the running champion's *fresh* rank is screened out
// without refreshing (its fresh rank can only be lower still, and on an
// exact tie the ID order is already decided by the cached comparison) —
// stale ranks go only downward, so typically just the few prefix-maxima of
// the scan refresh, and everything else costs two sequential loads. Slots
// that survive the screen are refreshed, which also prices the eventual
// winner's selGap2 for free. Skipped slots stay stale; the exact catch-up
// happens in the next updateLocked.
//
// Each chunk computes its local argmax; the cross-chunk reduce runs on the
// calling goroutine in chunk order. Which slots refresh varies with chunk
// boundaries, but refreshed values themselves never do, and because
// (dist2 desc, ID asc) is a total order over slots the extremum is unique
// and grouping-invariant — the same slot wins for every worker count, which
// is all the determinism contract promises (selection sequences, not cache
// residue; Update canonicalizes the caches).
func (f *FarthestPoint) pickEager() int32 {
	n := f.sel.Len()
	f.gapSuffix(n)
	rows := f.sel.RowsFlat(0, n)
	nc := len(f.ids)
	w := parallel.Workers(f.workers)
	best := make([]int32, parallel.Chunks(nc, w, fpsMinChunk))
	parallel.ForChunk(nc, w, fpsMinChunk, func(chunk, lo, hi int) {
		b := int32(-1)
		for s := int32(lo); s < int32(hi); s++ {
			if b >= 0 && !f.heapAbove(s, b) {
				continue // upper bound can't beat the champion, fresh won't either
			}
			if int(f.seenSel[s]) < n {
				f.refreshSlot(s, n, rows)
			}
			if b < 0 || f.heapAbove(s, b) {
				b = s
			}
		}
		best[chunk] = b
	})
	b := best[0]
	for _, c := range best[1:] {
		if f.heapAbove(c, b) {
			b = c
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// Selector implementation

// Add implements Selector. Duplicate IDs (already queued or selected) are
// ignored without error, so producers may safely re-offer after restarts.
func (f *FarthestPoint) Add(p Point) error {
	if len(p.Coords) != f.dim {
		return fmt.Errorf("dynim: point %q has dim %d, sampler dim %d", p.ID, len(p.Coords), f.dim)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dd.claim(p.ID) {
		return nil
	}
	f.newSlot(p)
	f.journal.record("add", p.ID)
	if f.capacity > 0 && len(f.ids) > f.capacity {
		// Evict in amortized batches: a single-victim scan per add would be
		// O(queue) for every candidate past the cap, which the campaign's
		// millions of patch offers cannot afford. The queue is allowed a
		// small slack, then trimmed back to capacity in one pass.
		slack := f.capacity / 16
		if slack < 1 {
			slack = 1
		}
		if len(f.ids) >= f.capacity+slack {
			f.evictDownTo(f.capacity)
		}
	}
	return nil
}

// evictDownTo drops the lowest-ranked (least novel) candidates until only
// target remain; ties break by ID for determinism. Ranks are refreshed
// first so victims are chosen on current distances (the former full sort
// ranked on whatever the last refresh left behind); the refresh amortizes
// over the eviction slack exactly like the batch itself. Partial selection
// via a bounded heap costs O(n log m + m log n) for m victims instead of
// the former O(n log n) full sort. Caller holds the lock.
func (f *FarthestPoint) evictDownTo(target int) {
	f.updateLocked()
	m := len(f.ids) - target
	if m <= 0 {
		return
	}
	// moreNovel orders slots most-novel-last-to-evict: under it the root of
	// the bounded max-heap below is the most novel of the current victim
	// set, so each surviving slot costs one root comparison.
	moreNovel := func(a, b int32) bool {
		if f.dist2[a] != f.dist2[b] {
			return f.dist2[a] > f.dist2[b]
		}
		return f.ids[a] > f.ids[b]
	}
	victims := make([]int32, 0, m)
	vdown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(victims) {
				break
			}
			c := l
			if r := l + 1; r < len(victims) && moreNovel(victims[r], victims[l]) {
				c = r
			}
			if !moreNovel(victims[c], victims[i]) {
				break
			}
			victims[i], victims[c] = victims[c], victims[i]
			i = c
		}
	}
	for s := int32(0); int(s) < len(f.ids); s++ {
		if len(victims) < m {
			victims = append(victims, s)
			if len(victims) == m {
				for i := m/2 - 1; i >= 0; i-- {
					vdown(i)
				}
			}
		} else if moreNovel(victims[0], s) {
			victims[0] = s
			vdown(0)
		}
	}
	// Deterministic least-novel-first journal order.
	sort.Slice(victims, func(i, j int) bool { return moreNovel(victims[j], victims[i]) })
	for _, v := range victims {
		f.dd.release(f.ids[v])
		f.journal.record("evict", f.ids[v])
	}
	// Free in descending slot order so each move pulls from a live slot.
	bySlot := append([]int32(nil), victims...)
	sort.Slice(bySlot, func(i, j int) bool { return bySlot[i] > bySlot[j] })
	for _, v := range bySlot {
		f.heapRemoveAt(int(f.heapPos[v]))
		f.freeSlot(v)
	}
}

// Update implements Selector: refresh every candidate's cached distance
// against selections made since its last refresh.
func (f *FarthestPoint) Update() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.updateLocked()
}

// updateLocked refreshes all stale candidate ranks, sharded over the worker
// pool, then restores the heap invariant. Each slot's refresh reads the
// immutable selected index and writes only that slot's own cache, so the
// refreshed values are bit-identical for every worker count; the serial
// heapify that follows sees the same arrays either way. Caller holds the
// lock.
func (f *FarthestPoint) updateLocked() {
	n := f.sel.Len()
	if f.allDirty {
		// A selection happened since the last refresh: every rank may have
		// shrunk, so sweep the whole store and re-heapify once.
		var start time.Time
		if f.tel != nil {
			start = f.tel.Now()
		}
		f.gapSuffix(n)
		rows := f.sel.RowsFlat(0, n)
		parallel.For(len(f.ids), parallel.Workers(f.workers), fpsMinChunk, func(lo, hi int) {
			for s := int32(lo); s < int32(hi); s++ {
				if int(f.seenSel[s]) < n {
					f.refreshSlot(s, n, rows)
				}
			}
		})
		if f.tel != nil {
			f.tel.Histogram("dynim.rank_refresh_ms", "ms", nil).Observe(f.tel.MsSince(start))
			f.tel.RecordSpan("dynim", "rank_refresh", start, f.tel.Now().Sub(start),
				"candidates", len(f.ids))
		}
		f.allDirty = false
		f.dirty = f.dirty[:0]
		f.heapInit()
		f.heapDirty = false
		return
	}
	// Dirty-set path: between selections only explicitly invalidated slots
	// (new arrivals, restores) can be stale, so re-rank exactly those and
	// sift each one back into place — the rest of the heap is untouched. A
	// dirty slot may already be fresh (the lazy Select path refreshed it on
	// the way through the root); it then costs one counter compare.
	stale := false
	for _, s := range f.dirty {
		if int(f.seenSel[s]) < n {
			stale = true
			break
		}
	}
	if stale {
		var start time.Time
		if f.tel != nil {
			start = f.tel.Now()
		}
		f.gapSuffix(n)
		rows := f.sel.RowsFlat(0, n)
		dirty := f.dirty
		parallel.For(len(dirty), parallel.Workers(f.workers), fpsMinChunk, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if s := dirty[k]; int(f.seenSel[s]) < n {
					f.refreshSlot(s, n, rows)
				}
			}
		})
		if f.tel != nil {
			f.tel.Histogram("dynim.rank_refresh_ms", "ms", nil).Observe(f.tel.MsSince(start))
			f.tel.RecordSpan("dynim", "rank_refresh", start, f.tel.Now().Sub(start),
				"candidates", len(dirty))
		}
	}
	if f.heapDirty {
		f.heapInit()
		f.heapDirty = false
	} else if stale {
		// Refreshes only lower ranks, so each dirty entry sifts toward the
		// leaves. Dirty slots can sit on a shared root-leaf path (fresh
		// arrivals surface near the root at +Inf), where repairing an
		// ancestor before a descendant leaves a violation behind — so sift
		// in descending position order, the bottom-up heapify sweep
		// restricted to the dirty positions: a sift at position p only
		// moves content deeper than p, so every position not yet processed
		// still holds its slot and every subtree below a processed position
		// stays valid.
		pos := f.scratchPos[:0]
		for _, s := range f.dirty {
			pos = append(pos, f.heapPos[s])
		}
		sort.Slice(pos, func(i, j int) bool { return pos[i] > pos[j] })
		for _, p := range pos {
			f.down(int(p))
		}
		f.scratchPos = pos[:0]
	}
	f.dirty = f.dirty[:0]
}

// Select implements Selector: repeatedly surface the farthest candidate via
// the lazy heap, fold it into the selected set, and continue. Cached ranks
// are upper bounds, so a popped candidate that is stale is refreshed and
// re-sifted; the first *fresh* candidate to hold the top is the true
// argmax under (distance, ID) — identical to the serial full-refresh scan.
func (f *FarthestPoint) Select(n int) []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	var selStart time.Time
	if f.tel != nil {
		selStart = f.tel.Now()
	}
	var out []Point
	for len(out) < n && len(f.h) > 0 {
		// Lazy pick with an eager fallback. While the heap is ordered,
		// surface the argmax by refreshing stale roots one log-depth sift at
		// a time; if a single pick churns past the limit (a mostly-stale
		// queue — cold burst, post-restore, long Add run), switch to the
		// fused streaming argmax and leave the heap dirty so the rest of the
		// burst skips sift maintenance entirely. Both paths refresh to the
		// exact same values and apply the same (distance, ID) total order,
		// so the selection sequence is unchanged.
		var s int32
		if f.heapDirty {
			s = f.pickEager()
		} else {
			nSel := f.sel.Len()
			f.gapSuffix(nSel)
			rows := f.sel.RowsFlat(0, nSel)
			refreshed, limit := 0, len(f.h)/256+32
			lazy := true
			for {
				top := f.h[0]
				if int(f.seenSel[top]) == nSel {
					break
				}
				if refreshed >= limit {
					lazy = false
					break
				}
				f.refreshSlot(top, nSel, rows)
				f.down(0)
				refreshed++
			}
			if lazy {
				s = f.h[0]
			} else {
				f.heapDirty = true
				s = f.pickEager()
			}
		}
		f.heapRemoveAt(int(f.heapPos[s]))
		id := f.ids[s]
		coords := append([]float64(nil), f.coords[int(s)*f.dim:int(s+1)*f.dim]...)
		// The picked candidate's rank is fresh, and it is exactly the new
		// selection's squared distance to its nearest earlier selection —
		// selGap2 for the triangle-inequality prune comes for free.
		f.selGap2 = append(f.selGap2, f.dist2[s])
		f.freeSlot(s)
		f.sel.Add(coords)
		p := Point{ID: id, Coords: coords}
		f.selPts = append(f.selPts, p)
		f.journal.record("select", id)
		out = append(out, p)
		// The new selection can tighten every remaining rank: promote the
		// dirty set to the whole store.
		f.allDirty = true
		f.dirty = f.dirty[:0]
	}
	if f.tel != nil {
		f.tel.Histogram("dynim.select_ms", "ms", nil).Observe(f.tel.MsSince(selStart))
		f.tel.RecordSpan("dynim", "select", selStart, f.tel.Now().Sub(selStart),
			"want", n, "got", len(out))
		f.tel.Counter("dynim.selected_total").Add(int64(len(out)))
	}
	return out
}

// DisableJournal stops event recording (campaign-scale memory bound);
// History returns only events recorded before the call.
func (f *FarthestPoint) DisableJournal() {
	f.mu.Lock()
	f.journal.disabled = true
	f.mu.Unlock()
}

// Len implements Selector.
func (f *FarthestPoint) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ids)
}

// Selected returns the points selected so far, in selection order.
func (f *FarthestPoint) Selected() []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Point(nil), f.selPts...)
}

// History implements Selector.
func (f *FarthestPoint) History() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.journal.history()
}

// Checkpoint serializes the sampler's full state. Candidates are written
// in ID order so checkpoint bytes are independent of slot and heap layout.
func (f *FarthestPoint) Checkpoint() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := snapshot{Kind: "fps", Selected: f.selPts, Events: f.journal.events, Seq: f.journal.seq}
	for i, id := range f.ids {
		s.Candidates = append(s.Candidates, Point{
			ID:     id,
			Coords: append([]float64(nil), f.coords[i*f.dim:(i+1)*f.dim]...),
		})
	}
	sort.Slice(s.Candidates, func(i, j int) bool { return s.Candidates[i].ID < s.Candidates[j].ID })
	return marshalSnapshot(s)
}

// RestoreFarthestPoint reconstructs a sampler from a Checkpoint. Cached
// ranks are rebuilt lazily, so a restore is cheap and the next Select pays
// one full refresh — the same cost profile as the paper's restart path.
func RestoreFarthestPoint(dim, capacity int, ckpt []byte) (*FarthestPoint, error) {
	s, err := unmarshalSnapshot(ckpt, "fps")
	if err != nil {
		return nil, err
	}
	f := NewFarthestPoint(dim, capacity)
	for _, p := range s.Selected {
		if len(p.Coords) != dim {
			return nil, fmt.Errorf("dynim: checkpoint point %q has dim %d", p.ID, len(p.Coords))
		}
		f.dd.claim(p.ID)
		f.sel.Add(p.Coords)
		f.selPts = append(f.selPts, p)
		// Restored selections get a zero gap: the triangle-inequality prune
		// only ever skips work when a gap is provably large, so a too-small
		// gap is always safe — it merely computes rows it could have
		// skipped. Recomputing exact gaps would cost O(selections²·dim) on
		// every restart; selections made after the restore regain exact
		// gaps for free.
		f.selGap2 = append(f.selGap2, 0)
	}
	for _, p := range s.Candidates {
		if len(p.Coords) != dim {
			return nil, fmt.Errorf("dynim: checkpoint point %q has dim %d", p.ID, len(p.Coords))
		}
		f.dd.claim(p.ID)
		f.newSlot(p)
	}
	f.journal.events = s.Events
	f.journal.seq = s.Seq
	return f, nil
}

// QueueSet groups several independently-capped FarthestPoint queues, as the
// paper's Patch Selector does with five in-memory queues keyed by protein
// configuration. Selection can target one queue or round-robin across all.
type QueueSet struct {
	mu        sync.Mutex
	dim       int
	cap       int
	workers   int
	queues    map[string]*FarthestPoint
	order     []string
	noJournal bool
	tel       *telemetry.Telemetry
}

// NewQueueSet creates an empty set whose queues share dim and capacity.
func NewQueueSet(dim, capacity int) *QueueSet {
	return &QueueSet{dim: dim, cap: capacity, queues: make(map[string]*FarthestPoint)}
}

// SetWorkers sets the rank-update fan-out (0 = GOMAXPROCS) on all current
// and future queues. Selection output is identical for every value.
func (q *QueueSet) SetWorkers(n int) {
	q.mu.Lock()
	q.workers = n
	//lint:allow determinism -- applies the same knob to every queue; iteration order cannot affect state
	for _, fp := range q.queues {
		fp.SetWorkers(n)
	}
	q.mu.Unlock()
}

// SetTelemetry routes selection timings from all current and future queues
// to tel (nil disables instrumentation).
func (q *QueueSet) SetTelemetry(tel *telemetry.Telemetry) {
	q.mu.Lock()
	q.tel = tel
	//lint:allow determinism -- applies the same knob to every queue; iteration order cannot affect state
	for _, fp := range q.queues {
		fp.SetTelemetry(tel)
	}
	q.mu.Unlock()
}

// Add routes a candidate to the named queue, creating it on first use.
func (q *QueueSet) Add(queue string, p Point) error {
	q.mu.Lock()
	fp, ok := q.queues[queue]
	if !ok {
		fp = NewFarthestPoint(q.dim, q.cap)
		if q.noJournal {
			fp.DisableJournal()
		}
		fp.SetWorkers(q.workers)
		fp.SetTelemetry(q.tel)
		q.queues[queue] = fp
		q.order = append(q.order, queue)
		sort.Strings(q.order)
	}
	q.mu.Unlock()
	return fp.Add(p)
}

// SelectFrom selects from one queue.
func (q *QueueSet) SelectFrom(queue string, n int) []Point {
	q.mu.Lock()
	fp := q.queues[queue]
	q.mu.Unlock()
	if fp == nil {
		return nil
	}
	return fp.Select(n)
}

// snapshotQueues returns the queues in name order under one lock
// acquisition, so round-robin passes do not re-take the set lock once per
// queue per point.
func (q *QueueSet) snapshotQueues() []*FarthestPoint {
	q.mu.Lock()
	defer q.mu.Unlock()
	fps := make([]*FarthestPoint, 0, len(q.order))
	for _, name := range q.order {
		fps = append(fps, q.queues[name])
	}
	return fps
}

// Select round-robins one selection at a time across the queues (sorted by
// name for determinism) until n points are gathered or all queues drain.
// The queue list is snapshotted once; queues created during the pass join
// the next Select call.
func (q *QueueSet) Select(n int) []Point {
	fps := q.snapshotQueues()
	var out []Point
	for len(out) < n {
		progress := false
		for _, fp := range fps {
			if len(out) >= n {
				break
			}
			if got := fp.Select(1); len(got) > 0 {
				out = append(out, got...)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return out
}

// Update refreshes candidate ranks in every queue; each queue's refresh is
// itself sharded over the worker pool.
func (q *QueueSet) Update() {
	for _, fp := range q.snapshotQueues() {
		fp.Update()
	}
}

// Len sums candidates across queues.
func (q *QueueSet) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	//lint:allow determinism -- commutative sum; iteration order cannot affect the total
	for _, fp := range q.queues {
		total += fp.Len()
	}
	return total
}

// Queues returns the queue names, sorted.
func (q *QueueSet) Queues() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]string(nil), q.order...)
}

// DisableJournal turns off journaling in all current and future queues.
func (q *QueueSet) DisableJournal() {
	q.mu.Lock()
	q.noJournal = true
	//lint:allow determinism -- applies the same knob to every queue; iteration order cannot affect state
	for _, fp := range q.queues {
		fp.DisableJournal()
	}
	q.mu.Unlock()
}

// AsSelector adapts the QueueSet to the Selector interface: route picks the
// queue for each added point (the paper routes patches by protein
// configuration), Select round-robins across queues.
func (q *QueueSet) AsSelector(route func(Point) string) Selector {
	return queueSelector{qs: q, route: route}
}

type queueSelector struct {
	qs    *QueueSet
	route func(Point) string
}

func (s queueSelector) Add(p Point) error { return s.qs.Add(s.route(p), p) }

func (s queueSelector) Select(n int) []Point { return s.qs.Select(n) }

func (s queueSelector) Update() { s.qs.Update() }

func (s queueSelector) Len() int { return s.qs.Len() }

// History merges the per-queue journals in sequence order within each
// queue; cross-queue ordering is by queue name.
func (s queueSelector) History() []Event {
	var out []Event
	for _, fp := range s.qs.snapshotQueues() {
		out = append(out, fp.History()...)
	}
	return out
}

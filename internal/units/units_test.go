package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimTimeConversions(t *testing.T) {
	cases := []struct {
		in   SimTime
		ns   float64
		us   float64
		want string
	}{
		{5 * Microsecond, 5000, 5, "5us"},
		{50 * Nanosecond, 50, 0.05, "50ns"},
		{Millisecond, 1e6, 1000, "1ms"},
		{1500 * Femtosecond, 1.5e-3, 1.5e-6, "1.5ps"},
		{0, 0, 0, "0fs"},
	}
	for _, c := range cases {
		if got := c.in.Nanoseconds(); got != c.ns {
			t.Errorf("%v.Nanoseconds() = %v, want %v", c.in, got, c.ns)
		}
		if got := c.in.Microseconds(); got != c.us {
			t.Errorf("%v.Microseconds() = %v, want %v", c.in, got, c.us)
		}
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSimTimeNegativeString(t *testing.T) {
	if got := (-5 * Microsecond).String(); got != "-5us" {
		t.Errorf("negative String() = %q, want -5us", got)
	}
}

func TestSimTimeOfRounds(t *testing.T) {
	if got := SimTimeOf(1.0399999, Microsecond); got != 1039999900*Femtosecond {
		t.Errorf("SimTimeOf = %d fs", got.Femtoseconds())
	}
	if got := SimTimeOf(0.5, Picosecond); got != 500*Femtosecond {
		t.Errorf("SimTimeOf(0.5 ps) = %v", got)
	}
}

func TestRateRoundTrip(t *testing.T) {
	// ddcMD delivers ~1.04 µs/day/GPU (§4.1): the wall time for 5 µs must be
	// ~4.8 days.
	r := PerDay(1.04, Microsecond)
	wall := r.WallFor(5 * Microsecond)
	days := wall.Hours() / 24
	if days < 4.8 || days > 4.81 {
		t.Errorf("5us at 1.04us/day took %.3f days, want ~4.807", days)
	}
	// And the inverse direction.
	sim := r.SimFor(24 * time.Hour)
	if us := sim.Microseconds(); us < 1.0399 || us > 1.0401 {
		t.Errorf("SimFor(1 day) = %v µs, want 1.04", us)
	}
}

func TestRateScale(t *testing.T) {
	// The campaign's CG MPI mis-compile delivered ~20% less than benchmark
	// (§5.1); Scale(0.8) models that era.
	r := PerDay(1.0, Microsecond).Scale(0.8)
	if us := r.SimFor(24 * time.Hour).Microseconds(); us < 0.799 || us > 0.801 {
		t.Errorf("scaled rate gives %v µs/day, want 0.8", us)
	}
}

func TestRateZeroGuards(t *testing.T) {
	if (Rate{}).WallFor(Microsecond) != 0 {
		t.Error("zero rate should produce zero wall time, not divide by zero")
	}
	if (Rate{Sim: Microsecond}).SimFor(time.Hour) != 0 {
		t.Error("zero wall should produce zero sim time")
	}
}

func TestRateString(t *testing.T) {
	if got := PerDay(13.98, Nanosecond).String(); got != "13.98ns/day" {
		t.Errorf("Rate.String() = %q", got)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{374 * MB, "374.00MB"},
		{18 * MB, "18.00MB"},
		{850 * Byte, "850B"},
		{455 * GB, "455.00GB"},
		{ByteSize(4.6e6), "4.60MB"},
		{-KB, "-1.00KB"},
		{17 * KB, "17.00KB"},
		{2 * TB, "2.00TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestLengthString(t *testing.T) {
	if got := (30 * Nm).String(); got != "30nm" {
		t.Errorf("30nm renders as %q", got)
	}
	if got := (1 * Um).String(); got != "1um" {
		t.Errorf("1um renders as %q", got)
	}
}

func TestNodeHours(t *testing.T) {
	// Table 1's largest row: 1000 nodes × 24 h × 20 runs = 480,000 node-hours.
	nh := NodeHours(0)
	for i := 0; i < 20; i++ {
		nh += NodeHoursFor(1000, 24*time.Hour)
	}
	if nh != 480000 {
		t.Errorf("20 × 1000-node 24h runs = %v, want 480000", float64(nh))
	}
	if nh.String() != "480000 node-hours" {
		t.Errorf("String() = %q", nh.String())
	}
}

func TestPropertyRateMonotonic(t *testing.T) {
	// More simulated time never takes less wall time at a fixed rate.
	r := PerDay(1.04, Microsecond)
	f := func(a, b uint32) bool {
		ta, tb := SimTime(a), SimTime(b)
		if ta > tb {
			ta, tb = tb, ta
		}
		return r.WallFor(ta) <= r.WallFor(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySimTimeOfInvertsMicroseconds(t *testing.T) {
	f := func(v uint16) bool {
		st := SimTimeOf(float64(v), Microsecond)
		return st.Microseconds() == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package units provides typed physical quantities used throughout mummi:
// simulated (in-model) time at femtosecond resolution, byte sizes, and
// simulation-rate conversions such as "µs of trajectory per day of
// wall-clock". Keeping simulated time distinct from wall-clock
// time.Duration prevents an entire class of unit bugs: the campaign couples
// a continuum model advancing in microseconds of model time with jobs whose
// wall clock is measured in hours.
package units

import (
	"fmt"
	"time"
)

// SimTime is a span of simulated (in-model) time, stored in femtoseconds.
// Molecular-dynamics trajectories span fs..ms, which fits comfortably in an
// int64 (max ≈ 9.2 ms at 1 fs resolution); the continuum scale exceeds that,
// so continuum bookkeeping uses Microseconds as floats where needed, while
// per-simulation spans stay exact.
type SimTime int64

// Units of simulated time.
const (
	Femtosecond SimTime = 1
	Picosecond          = 1000 * Femtosecond
	Nanosecond          = 1000 * Picosecond
	Microsecond         = 1000 * Nanosecond
	Millisecond         = 1000 * Microsecond
)

// Femtoseconds returns t as a count of femtoseconds.
func (t SimTime) Femtoseconds() int64 { return int64(t) }

// Nanoseconds returns t in nanoseconds of simulated time.
func (t SimTime) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t in microseconds of simulated time.
func (t SimTime) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t in milliseconds of simulated time.
func (t SimTime) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the span in the largest unit that keeps the value ≥ 1.
func (t SimTime) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t >= Millisecond:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.4gns", t.Nanoseconds())
	case t >= Picosecond:
		return fmt.Sprintf("%.4gps", float64(t)/float64(Picosecond))
	default:
		return fmt.Sprintf("%dfs", int64(t))
	}
}

// SimTimeOf builds a SimTime from a floating-point count of a unit,
// rounding to the nearest femtosecond.
func SimTimeOf(v float64, unit SimTime) SimTime {
	return SimTime(v*float64(unit) + 0.5)
}

// Rate expresses simulation throughput as simulated time per wall-clock day,
// the unit used throughout the paper (ms/day continuum, µs/day CG, ns/day AA).
type Rate struct {
	Sim  SimTime       // simulated time advanced ...
	Wall time.Duration // ... per this much wall clock
}

// PerDay builds a Rate of v simulated units per wall-clock day.
func PerDay(v float64, unit SimTime) Rate {
	return Rate{Sim: SimTimeOf(v, unit), Wall: 24 * time.Hour}
}

// WallFor returns the wall-clock time needed to advance the simulation by st.
func (r Rate) WallFor(st SimTime) time.Duration {
	if r.Sim <= 0 {
		return 0
	}
	return time.Duration(float64(r.Wall) * float64(st) / float64(r.Sim))
}

// SimFor returns the simulated time advanced in wall-clock span d.
func (r Rate) SimFor(d time.Duration) SimTime {
	if r.Wall <= 0 {
		return 0
	}
	return SimTime(float64(r.Sim) * float64(d) / float64(r.Wall))
}

// Scale returns the rate multiplied by factor f (e.g. a 20% slowdown is
// Scale(0.8)).
func (r Rate) Scale(f float64) Rate {
	return Rate{Sim: SimTime(float64(r.Sim) * f), Wall: r.Wall}
}

// String renders the rate in a paper-style "X/day" form.
func (r Rate) String() string {
	perDay := SimTime(float64(r.Sim) * float64(24*time.Hour) / float64(r.Wall))
	return perDay.String() + "/day"
}

// ByteSize is a size in bytes with human-readable formatting.
type ByteSize int64

// Units of data size (decimal, as used in the paper's MB/GB/TB figures).
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
	TB            = 1000 * GB
)

// String renders the size in the largest unit that keeps the value ≥ 1.
func (b ByteSize) String() string {
	switch {
	case b < 0:
		return "-" + (-b).String()
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Length is a spatial length in nanometers. The campaign spans nm (patches)
// to µm (the full membrane), so float64 nm is exact enough everywhere.
type Length float64

// Units of length.
const (
	Nm Length = 1
	Um Length = 1000
)

// Nanometers returns the length in nm.
func (l Length) Nanometers() float64 { return float64(l) }

// String renders the length in nm or µm.
func (l Length) String() string {
	if l >= Um {
		return fmt.Sprintf("%.4gum", float64(l/Um))
	}
	return fmt.Sprintf("%.4gnm", float64(l))
}

// NodeHours accumulates the campaign's node-hour budget.
type NodeHours float64

// NodeHoursFor computes node-hours for n nodes held for wall-clock d.
func NodeHoursFor(n int, d time.Duration) NodeHours {
	return NodeHours(float64(n) * d.Hours())
}

// String renders node-hours with thousands precision like the paper's tables.
func (nh NodeHours) String() string { return fmt.Sprintf("%.0f node-hours", float64(nh)) }

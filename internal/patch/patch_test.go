package patch

import (
	"strings"
	"testing"

	"mummi/internal/continuum"
	"mummi/internal/units"
)

func snapT(t *testing.T) *continuum.Snapshot {
	t.Helper()
	sim, err := continuum.New(continuum.Config{
		GridN: 64, Domain: 200 * units.Nm, InnerLipids: 3, OuterLipids: 2,
		Proteins: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(1 * units.Microsecond)
	return sim.Snapshot()
}

func TestCreatePatchShape(t *testing.T) {
	snap := snapT(t)
	p, err := Create(snap, snap.Protein[0], DefaultSize, DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	if p.GridN != 37 || len(p.Fields) != 5 {
		t.Errorf("patch shape: gridN=%d species=%d", p.GridN, len(p.Fields))
	}
	for _, f := range p.Fields {
		if len(f) != 37*37 {
			t.Fatalf("field has %d cells", len(f))
		}
	}
	if p.Center.ID != snap.Protein[0].ID {
		t.Error("center mismatch")
	}
	if !strings.HasPrefix(p.ID, "t000001_p") {
		t.Errorf("ID = %q", p.ID)
	}
}

func TestCreateAllOnePatchPerProtein(t *testing.T) {
	snap := snapT(t)
	ps, err := CreateAll(snap, DefaultSize, DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(snap.Protein) {
		t.Fatalf("%d patches for %d proteins", len(ps), len(snap.Protein))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.ID] {
			t.Errorf("duplicate patch ID %q", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestPatchSamplesUnderlyingField(t *testing.T) {
	// A patch's center sample must approximate the density at the protein's
	// position (bilinear continuity).
	snap := snapT(t)
	prot := snap.Protein[0]
	p, err := Create(snap, prot, DefaultSize, DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	cell := snap.Domain.Nanometers() / float64(snap.GridN)
	gx := int(prot.X/cell) % snap.GridN
	gy := int(prot.Y/cell) % snap.GridN
	fieldVal := float64(snap.Fields[0][gy*snap.GridN+gx])
	patchVal := float64(p.Fields[0][(p.GridN/2)*p.GridN+p.GridN/2])
	if diff := patchVal - fieldVal; diff > 0.2 || diff < -0.2 {
		t.Errorf("patch center %v far from field %v", patchVal, fieldVal)
	}
}

func TestNeighborsDetected(t *testing.T) {
	snap := snapT(t)
	// Plant a neighbor 5 nm from protein 0 and a loner far away.
	snap.Protein = snap.Protein[:0]
	snap.Protein = append(snap.Protein,
		continuum.Protein{ID: 0, X: 100, Y: 100, State: continuum.StateRASOnly},
		continuum.Protein{ID: 1, X: 105, Y: 100, State: continuum.StateRASRAFa},
		continuum.Protein{ID: 2, X: 30, Y: 30, State: continuum.StateRASOnly},
	)
	p, err := Create(snap, snap.Protein[0], DefaultSize, DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Neighbors) != 1 || p.Neighbors[0].ID != 1 {
		t.Errorf("Neighbors = %+v", p.Neighbors)
	}
}

func TestNeighborAcrossPeriodicBoundary(t *testing.T) {
	snap := snapT(t)
	snap.Protein = []continuum.Protein{
		{ID: 0, X: 1, Y: 1},
		{ID: 1, X: 199, Y: 199}, // 2·sqrt(2) nm away through the corner
	}
	p, err := Create(snap, snap.Protein[0], DefaultSize, DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Neighbors) != 1 {
		t.Errorf("periodic neighbor missed: %+v", p.Neighbors)
	}
}

func TestQueueLabels(t *testing.T) {
	cases := []struct {
		state     int
		neighbors int
		want      string
	}{
		{continuum.StateRASOnly, 0, "ras"},
		{continuum.StateRASRAFa, 0, "ras-raf-a"},
		{continuum.StateRASRAFb, 0, "ras-raf-b"},
		{continuum.StateRASOnly, 2, "ras-multi"},
		{continuum.StateRASRAFa, 1, "ras-raf-a-multi"},
	}
	for _, c := range cases {
		p := &Patch{Center: continuum.Protein{State: c.state},
			Neighbors: make([]continuum.Protein, c.neighbors)}
		if got := p.QueueLabel(); got != c.want {
			t.Errorf("QueueLabel(state=%d, n=%d) = %q, want %q", c.state, c.neighbors, got, c.want)
		}
	}
}

func TestCreateValidation(t *testing.T) {
	snap := snapT(t)
	if _, err := Create(snap, snap.Protein[0], DefaultSize, 1); err == nil {
		t.Error("gridN=1 accepted")
	}
	if _, err := Create(snap, snap.Protein[0], 0, DefaultGridN); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Create(snap, snap.Protein[0], 300*units.Nm, DefaultGridN); err == nil {
		t.Error("patch larger than domain accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	snap := snapT(t)
	orig, err := Create(snap, snap.Protein[2], DefaultSize, DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	b, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != orig.ID || got.Time != orig.Time || got.GridN != orig.GridN ||
		got.Size != orig.Size || got.Center != orig.Center {
		t.Errorf("metadata mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Fields) != len(orig.Fields) {
		t.Fatal("species count changed")
	}
	for sp := range got.Fields {
		for i := range got.Fields[sp] {
			if got.Fields[sp][i] != orig.Fields[sp][i] {
				t.Fatalf("field %d cell %d corrupted", sp, i)
			}
		}
	}
}

func TestMarshalSizeMatchesPaper(t *testing.T) {
	// 14 species × 37×37 float32 ≈ 77 KB — the paper's "about 70 KB".
	p := &Patch{ID: "x", GridN: 37, Size: DefaultSize}
	for i := 0; i < 14; i++ {
		p.Fields = append(p.Fields, make([]float32, 37*37))
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 60_000 || len(b) > 90_000 {
		t.Errorf("paper-scale patch = %d bytes, want ~70-77 KB", len(b))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("no newline at all")); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := Unmarshal([]byte("{bad json\nrest")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := Unmarshal([]byte("{\"grid_n\":37}\nnot npy")); err == nil {
		t.Error("bad npy accepted")
	}
}

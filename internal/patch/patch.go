// Package patch implements the Patch Creator (paper §4.4, Task 1): it cuts
// 30 nm × 30 nm patches out of continuum snapshots around each protein,
// resamples the lipid density fields onto a 37×37 grid (the paper's patch
// sampling resolution, ~55× larger than prior work's 5×5), and serializes
// each patch as a standard NumPy array (~70 KB) for consumption by the rest
// of the framework.
package patch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"mummi/internal/continuum"
	"mummi/internal/npy"
	"mummi/internal/units"
)

// DefaultSize is the paper's patch side length.
const DefaultSize = 30 * units.Nm

// DefaultGridN is the paper's patch sampling resolution (37×37).
const DefaultGridN = 37

// Patch is one cut-out region around a protein.
type Patch struct {
	// ID is unique across the campaign: "t<µs>_p<protein>".
	ID string
	// Time is the snapshot's simulated time.
	Time units.SimTime
	// Center is the protein the patch is cut around.
	Center continuum.Protein
	// Size is the physical side length.
	Size units.Length
	// GridN is the resampling resolution per side.
	GridN int
	// Fields holds the resampled densities, [species][GridN*GridN].
	Fields [][]float32
	// Neighbors lists other proteins inside the patch (relative offsets
	// would be derivable; states matter for queue routing).
	Neighbors []continuum.Protein
}

// QueueLabel routes the patch to one of the selector's in-memory queues.
// The paper uses five queues keyed by protein configuration; we key on the
// center protein's state and whether the patch contains company.
func (p *Patch) QueueLabel() string {
	base := "ras"
	switch p.Center.State {
	case continuum.StateRASRAFa:
		base = "ras-raf-a"
	case continuum.StateRASRAFb:
		base = "ras-raf-b"
	}
	if len(p.Neighbors) > 0 {
		return base + "-multi"
	}
	return base
}

// Create cuts one patch of the given size and resolution around center,
// bilinearly resampling every species field with periodic wrapping.
func Create(snap *continuum.Snapshot, center continuum.Protein, size units.Length, gridN int) (*Patch, error) {
	if gridN < 2 {
		return nil, fmt.Errorf("patch: gridN %d too small", gridN)
	}
	if size <= 0 || units.Length(snap.Domain) < size {
		return nil, fmt.Errorf("patch: size %v outside domain %v", size, snap.Domain)
	}
	dom := snap.Domain.Nanometers()
	half := size.Nanometers() / 2
	p := &Patch{
		ID:     fmt.Sprintf("t%06d_p%04d", int64(p2us(snap.Time)), center.ID),
		Time:   snap.Time,
		Center: center,
		Size:   size,
		GridN:  gridN,
		Fields: make([][]float32, len(snap.Fields)),
	}
	for sp, f := range snap.Fields {
		out := make([]float32, gridN*gridN)
		for gy := 0; gy < gridN; gy++ {
			for gx := 0; gx < gridN; gx++ {
				// Physical coordinates of this patch sample.
				px := center.X - half + size.Nanometers()*float64(gx)/float64(gridN-1)
				py := center.Y - half + size.Nanometers()*float64(gy)/float64(gridN-1)
				out[gy*gridN+gx] = float32(sampleBilinear(f, snap.GridN, dom, px, py))
			}
		}
		p.Fields[sp] = out
	}
	for _, q := range snap.Protein {
		if q.ID == center.ID {
			continue
		}
		if pdist(q.X, center.X, dom) <= half && pdist(q.Y, center.Y, dom) <= half {
			p.Neighbors = append(p.Neighbors, q)
		}
	}
	return p, nil
}

// CreateAll cuts one patch per protein in the snapshot — the per-snapshot
// unit of Patch Creator work (~333 patches per snapshot at paper scale:
// 6,828,831 patches / 20,507 snapshots).
func CreateAll(snap *continuum.Snapshot, size units.Length, gridN int) ([]*Patch, error) {
	out := make([]*Patch, 0, len(snap.Protein))
	for _, prot := range snap.Protein {
		p, err := Create(snap, prot, size, gridN)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func p2us(t units.SimTime) float64 { return t.Microseconds() }

// pdist is the minimum-image distance along one periodic axis.
func pdist(a, b, dom float64) float64 {
	d := math.Abs(a - b)
	if d > dom/2 {
		d = dom - d
	}
	return d
}

// sampleBilinear samples field f (n×n over a periodic dom×dom domain) at
// physical position (x, y) nm.
func sampleBilinear(f []float32, n int, dom, x, y float64) float64 {
	fx := wrapF(x, dom) / dom * float64(n)
	fy := wrapF(y, dom) / dom * float64(n)
	x0, y0 := int(fx), int(fy)
	tx, ty := fx-float64(x0), fy-float64(y0)
	x0, y0 = x0%n, y0%n
	x1, y1 := (x0+1)%n, (y0+1)%n
	v00 := float64(f[y0*n+x0])
	v10 := float64(f[y0*n+x1])
	v01 := float64(f[y1*n+x0])
	v11 := float64(f[y1*n+x1])
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

func wrapF(v, dom float64) float64 {
	v = math.Mod(v, dom)
	if v < 0 {
		v += dom
	}
	return v
}

// meta is the JSON header serialized ahead of the npy payload.
type meta struct {
	ID        string              `json:"id"`
	TimeFs    int64               `json:"time_fs"`
	Center    continuum.Protein   `json:"center"`
	SizeNm    float64             `json:"size_nm"`
	GridN     int                 `json:"grid_n"`
	Neighbors []continuum.Protein `json:"neighbors,omitempty"`
}

// Marshal serializes the patch: one JSON metadata line followed by a NumPy
// array of shape (species, GridN, GridN) float32 — "a standard Numpy format"
// offering "simple and portable I/O". At paper scale (14 species, 37×37)
// the payload is ~77 KB, matching the quoted ~70 KB.
func (p *Patch) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	m := meta{ID: p.ID, TimeFs: p.Time.Femtoseconds(), Center: p.Center,
		SizeNm: p.Size.Nanometers(), GridN: p.GridN, Neighbors: p.Neighbors}
	hdr, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	flat := make([]float32, 0, len(p.Fields)*p.GridN*p.GridN)
	for _, f := range p.Fields {
		flat = append(flat, f...)
	}
	arr := &npy.Array{Shape: []int{len(p.Fields), p.GridN, p.GridN}, Data: flat}
	if err := npy.Write(&buf, arr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a serialized patch.
func Unmarshal(b []byte) (*Patch, error) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return nil, fmt.Errorf("patch: missing metadata header")
	}
	var m meta
	if err := json.Unmarshal(b[:i], &m); err != nil {
		return nil, fmt.Errorf("patch: corrupt metadata: %w", err)
	}
	arr, err := npy.Unmarshal(b[i+1:])
	if err != nil {
		return nil, fmt.Errorf("patch: corrupt array: %w", err)
	}
	if len(arr.Shape) != 3 || arr.Shape[1] != m.GridN || arr.Shape[2] != m.GridN {
		return nil, fmt.Errorf("patch: unexpected array shape %v", arr.Shape)
	}
	flat, ok := arr.Data.([]float32)
	if !ok {
		return nil, fmt.Errorf("patch: array dtype %T, want float32", arr.Data)
	}
	p := &Patch{
		ID:        m.ID,
		Time:      units.SimTime(m.TimeFs),
		Center:    m.Center,
		Size:      units.Length(m.SizeNm),
		GridN:     m.GridN,
		Neighbors: m.Neighbors,
	}
	per := m.GridN * m.GridN
	for sp := 0; sp < arr.Shape[0]; sp++ {
		p.Fields = append(p.Fields, flat[sp*per:(sp+1)*per])
	}
	return p, nil
}

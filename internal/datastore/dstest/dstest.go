// Package dstest provides a reusable conformance suite for datastore.Store
// implementations. Every backend (memory, fs, taridx, kv) must pass the same
// behavioural contract, which is what lets mummi switch backends with a
// single configuration change.
package dstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"mummi/internal/datastore"
)

// Run exercises the full Store contract against the store returned by mk.
// mk is called once per subtest so state never leaks between subtests.
func Run(t *testing.T, mk func(t *testing.T) datastore.Store) {
	t.Helper()

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		want := []byte("rdf-frame-0001")
		if err := s.Put("rdfs", "f1", want); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("rdfs", "f1")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Get = %q, want %q", got, want)
		}
	})

	t.Run("GetMissing", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		if _, err := s.Get("ns", "absent"); !errors.Is(err, datastore.ErrNotFound) {
			t.Errorf("Get missing = %v, want ErrNotFound", err)
		}
	})

	t.Run("OverwriteLastWins", func(t *testing.T) {
		// The paper's archiving strategy: "the same key gets reinserted and
		// is taken to be the correct value".
		s := mk(t)
		defer closeStore(t, s)
		for i := 0; i < 3; i++ {
			if err := s.Put("ns", "k", []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.Get("ns", "k")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "v2" {
			t.Errorf("Get after overwrites = %q, want v2", got)
		}
		keys, err := s.Keys("ns")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 1 {
			t.Errorf("Keys after overwrites = %v, want exactly one", keys)
		}
	})

	t.Run("EmptyValue", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		if err := s.Put("ns", "empty", nil); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("ns", "empty")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("empty value round-tripped as %q", got)
		}
	})

	t.Run("BinaryValue", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		blob := make([]byte, 4096)
		rand.New(rand.NewSource(7)).Read(blob)
		if err := s.Put("bin", "blob", blob); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("bin", "blob")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blob) {
			t.Error("binary blob corrupted in round-trip")
		}
	})

	t.Run("DeleteThenGetFails", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		if err := s.Put("ns", "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("ns", "k"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("ns", "k"); !errors.Is(err, datastore.ErrNotFound) {
			t.Errorf("Get after delete = %v, want ErrNotFound", err)
		}
		if err := s.Delete("ns", "k"); !errors.Is(err, datastore.ErrNotFound) {
			t.Errorf("double Delete = %v, want ErrNotFound", err)
		}
	})

	t.Run("KeysListsNamespaceOnly", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		for i := 0; i < 5; i++ {
			if err := s.Put("a", fmt.Sprintf("k%d", i), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Put("b", "other", []byte("y")); err != nil {
			t.Fatal(err)
		}
		keys, err := s.Keys("a")
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(keys)
		if len(keys) != 5 || keys[0] != "k0" || keys[4] != "k4" {
			t.Errorf("Keys(a) = %v", keys)
		}
		empty, err := s.Keys("missing-ns")
		if err != nil {
			t.Fatal(err)
		}
		if len(empty) != 0 {
			t.Errorf("Keys of missing ns = %v, want empty", empty)
		}
	})

	t.Run("MoveTagsProcessedFrames", func(t *testing.T) {
		// Task 4's tagging: processed frames leave the active namespace.
		s := mk(t)
		defer closeStore(t, s)
		if err := s.Put("new", "frame1", []byte("rdf")); err != nil {
			t.Fatal(err)
		}
		if err := s.Move("new", "frame1", "done"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("new", "frame1"); !errors.Is(err, datastore.ErrNotFound) {
			t.Errorf("source still present after Move: %v", err)
		}
		got, err := s.Get("done", "frame1")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "rdf" {
			t.Errorf("moved value = %q", got)
		}
		if err := s.Move("new", "frame1", "done"); !errors.Is(err, datastore.ErrNotFound) {
			t.Errorf("Move of missing key = %v, want ErrNotFound", err)
		}
	})

	t.Run("MoveOverwritesDestination", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		if err := s.Put("src", "k", []byte("new")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put("dst", "k", []byte("old")); err != nil {
			t.Fatal(err)
		}
		if err := s.Move("src", "k", "dst"); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("dst", "k")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "new" {
			t.Errorf("Move did not overwrite: %q", got)
		}
	})

	t.Run("ManyKeysScanExact", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		const n = 200
		for i := 0; i < n; i++ {
			if err := s.Put("bulk", fmt.Sprintf("key-%04d", i), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		keys, err := s.Keys("bulk")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != n {
			t.Fatalf("Keys = %d entries, want %d", len(keys), n)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if k != fmt.Sprintf("key-%04d", i) {
				t.Fatalf("keys[%d] = %q", i, k)
			}
		}
	})

	t.Run("ConcurrentPutGet", func(t *testing.T) {
		s := mk(t)
		defer closeStore(t, s)
		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					k := fmt.Sprintf("w%d-i%d", w, i)
					if err := s.Put("conc", k, []byte(k)); err != nil {
						errs <- err
						return
					}
					v, err := s.Get("conc", k)
					if err != nil {
						errs <- err
						return
					}
					if string(v) != k {
						errs <- fmt.Errorf("read back %q for key %q", v, k)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		keys, err := s.Keys("conc")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != workers*25 {
			t.Errorf("Keys = %d, want %d", len(keys), workers*25)
		}
	})
}

// closeStore closes s at the end of a subtest and fails the test if the
// backend reports a close error — a store that cannot flush cleanly has
// lost data (errdiscipline).
func closeStore(t *testing.T, s datastore.Store) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

package datastore

import (
	"errors"
	"time"

	"mummi/internal/telemetry"
)

// Instrument wraps a Store so every operation feeds the telemetry
// registry: per-backend op counters, read/write byte counters, per-op
// latency histograms, and miss/error counters. The backend label keeps one
// campaign's stores distinguishable when several backends run side by side
// (the paper's deployments mix files, tar archives, and the database).
//
// The wrapper preserves the optional BatchGetter/BatchMover capabilities:
// the returned Store satisfies exactly the extensions the wrapped store
// does, so feedback loops still pick their batched paths by type
// assertion.
func Instrument(s Store, tel *telemetry.Telemetry, backend string) Store {
	if s == nil {
		return nil
	}
	if tel == nil {
		tel = telemetry.Nop()
	}
	base := instrumented{s: s, tel: tel, backend: backend}
	bg, hasBG := s.(BatchGetter)
	bm, hasBM := s.(BatchMover)
	switch {
	case hasBG && hasBM:
		return &instrumentedBatchBoth{instrumented: base, bg: bg, bm: bm}
	case hasBG:
		return &instrumentedBatchGet{instrumented: base, bg: bg}
	case hasBM:
		return &instrumentedBatchMove{instrumented: base, bm: bm}
	default:
		return &instrumented{s: s, tel: tel, backend: backend}
	}
}

// OpenInstrumented opens the Store selected by cfg (any registered backend:
// memory, fs, taridx, kv) and wraps it with telemetry labeled by the
// backend name, so a deployment's store metrics arrive with a single call.
func OpenInstrumented(cfg Config, tel *telemetry.Telemetry) (Store, error) {
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	return Instrument(s, tel, cfg.Backend), nil
}

type instrumented struct {
	s       Store
	tel     *telemetry.Telemetry
	backend string
}

// observeAt records one finished op: count, latency, and the error split.
// ErrNotFound counts as a miss, not an error — lookups of
// not-yet-produced frames are part of normal feedback operation.
func (d *instrumented) observeAt(op string, start time.Time, err error) {
	t := d.tel
	t.Counter(telemetry.Name("store.ops_total", "backend", d.backend, "op", op)).Inc()
	t.Histogram(telemetry.Name("store.op_ms", "backend", d.backend, "op", op), "ms", nil).
		Observe(t.MsSince(start))
	if err == nil {
		return
	}
	if errors.Is(err, ErrNotFound) {
		t.Counter(telemetry.Name("store.misses_total", "backend", d.backend)).Inc()
	} else {
		t.Counter(telemetry.Name("store.errors_total", "backend", d.backend)).Inc()
	}
}

// Put implements Store.
func (d *instrumented) Put(ns, key string, data []byte) error {
	start := d.tel.Now()
	err := d.s.Put(ns, key, data)
	d.observeAt("put", start, err)
	if err == nil {
		d.tel.Counter(telemetry.Name("store.write_bytes_total", "backend", d.backend)).Add(int64(len(data)))
	}
	return err
}

// Get implements Store.
func (d *instrumented) Get(ns, key string) ([]byte, error) {
	start := d.tel.Now()
	v, err := d.s.Get(ns, key)
	d.observeAt("get", start, err)
	if err == nil {
		d.tel.Counter(telemetry.Name("store.read_bytes_total", "backend", d.backend)).Add(int64(len(v)))
	}
	return v, err
}

// Delete implements Store.
func (d *instrumented) Delete(ns, key string) error {
	start := d.tel.Now()
	err := d.s.Delete(ns, key)
	d.observeAt("delete", start, err)
	return err
}

// Keys implements Store.
func (d *instrumented) Keys(ns string) ([]string, error) {
	start := d.tel.Now()
	ks, err := d.s.Keys(ns)
	d.observeAt("keys", start, err)
	return ks, err
}

// Move implements Store.
func (d *instrumented) Move(srcNS, key, dstNS string) error {
	start := d.tel.Now()
	err := d.s.Move(srcNS, key, dstNS)
	d.observeAt("move", start, err)
	return err
}

// Close implements Store.
func (d *instrumented) Close() error { return d.s.Close() }

type instrumentedBatchGet struct {
	instrumented
	bg BatchGetter
}

// GetBatch implements BatchGetter.
func (d *instrumentedBatchGet) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	return d.getBatch(d.bg, ns, keys)
}

type instrumentedBatchMove struct {
	instrumented
	bm BatchMover
}

// MoveBatch implements BatchMover.
func (d *instrumentedBatchMove) MoveBatch(srcNS string, keys []string, dstNS string) error {
	return d.moveBatch(d.bm, srcNS, keys, dstNS)
}

type instrumentedBatchBoth struct {
	instrumented
	bg BatchGetter
	bm BatchMover
}

// GetBatch implements BatchGetter.
func (d *instrumentedBatchBoth) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	return d.getBatch(d.bg, ns, keys)
}

// MoveBatch implements BatchMover.
func (d *instrumentedBatchBoth) MoveBatch(srcNS string, keys []string, dstNS string) error {
	return d.moveBatch(d.bm, srcNS, keys, dstNS)
}

func (d *instrumented) getBatch(bg BatchGetter, ns string, keys []string) (map[string][]byte, error) {
	start := d.tel.Now()
	m, err := bg.GetBatch(ns, keys)
	d.observeAt("get_batch", start, err)
	if err == nil {
		var n int64
		for _, v := range m {
			n += int64(len(v))
		}
		d.tel.Counter(telemetry.Name("store.read_bytes_total", "backend", d.backend)).Add(n)
	}
	return m, err
}

func (d *instrumented) moveBatch(bm BatchMover, srcNS string, keys []string, dstNS string) error {
	start := d.tel.Now()
	err := bm.MoveBatch(srcNS, keys, dstNS)
	d.observeAt("move_batch", start, err)
	return err
}

package datastore_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/datastore/dstest"
	"mummi/internal/retry"
	"mummi/internal/telemetry"
)

// flakyStore errors transiently N times per operation key before letting the
// call through to the wrapped store — the "errors N times then succeeds"
// double of the conformance suite.
type flakyStore struct {
	datastore.Store
	mu        sync.Mutex
	failures  int // transient failures served before each op succeeds
	remaining map[string]int
}

func newFlaky(inner datastore.Store, failures int) *flakyStore {
	return &flakyStore{Store: inner, failures: failures, remaining: make(map[string]int)}
}

func (f *flakyStore) trip(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	left, ok := f.remaining[op]
	if !ok {
		left = f.failures
	}
	if left > 0 {
		f.remaining[op] = left - 1
		return fmt.Errorf("flaky %s: %w", op, datastore.ErrTransient)
	}
	f.remaining[op] = f.failures // re-arm for the next call of this op
	return nil
}

func (f *flakyStore) Put(ns, key string, data []byte) error {
	if err := f.trip("put/" + ns + "/" + key); err != nil {
		return err
	}
	return f.Store.Put(ns, key, data)
}

func (f *flakyStore) Get(ns, key string) ([]byte, error) {
	if err := f.trip("get/" + ns + "/" + key); err != nil {
		return nil, err
	}
	return f.Store.Get(ns, key)
}

func (f *flakyStore) Delete(ns, key string) error {
	if err := f.trip("delete/" + ns + "/" + key); err != nil {
		return err
	}
	return f.Store.Delete(ns, key)
}

func (f *flakyStore) Keys(ns string) ([]string, error) {
	if err := f.trip("keys/" + ns); err != nil {
		return nil, err
	}
	return f.Store.Keys(ns)
}

func (f *flakyStore) Move(srcNS, key, dstNS string) error {
	if err := f.trip("move/" + srcNS + "/" + key); err != nil {
		return err
	}
	return f.Store.Move(srcNS, key, dstNS)
}

// armorBatchMemory augments Memory with both batch capabilities for the
// capability-preservation test.
type armorBatchMemory struct{ *datastore.Memory }

func (b armorBatchMemory) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, err := b.Get(ns, k); err == nil {
			out[k] = v
		}
	}
	return out, nil
}

func (b armorBatchMemory) MoveBatch(srcNS string, keys []string, dstNS string) error {
	for _, k := range keys {
		if err := b.Move(srcNS, k, dstNS); err != nil && !errors.Is(err, datastore.ErrNotFound) {
			return err
		}
	}
	return nil
}

// TestArmorConformance runs the full Store conformance suite over an
// Armor-wrapped memory store — and again over a flaky double whose every
// operation fails transiently twice before succeeding, which the armor's
// default budget (4 attempts) must absorb invisibly.
func TestArmorConformance(t *testing.T) {
	t.Run("memory", func(t *testing.T) {
		dstest.Run(t, func(t *testing.T) datastore.Store {
			return datastore.Armor(datastore.NewMemory(), telemetry.Nop(), "memory", datastore.ArmorOptions{})
		})
	})
	t.Run("flaky-twice", func(t *testing.T) {
		dstest.Run(t, func(t *testing.T) datastore.Store {
			return datastore.Armor(newFlaky(datastore.NewMemory(), 2), telemetry.Nop(), "memory", datastore.ArmorOptions{})
		})
	})
}

func TestArmorRetriesTransientThenSucceeds(t *testing.T) {
	tel := telemetry.Nop()
	flaky := newFlaky(datastore.NewMemory(), 2)
	s := datastore.Armor(flaky, tel, "memory", datastore.ArmorOptions{})
	if err := s.Put("ns", "k", []byte("v")); err != nil {
		t.Fatalf("put through armor: %v", err)
	}
	got, err := s.Get("ns", "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("get through armor: %q %v", got, err)
	}
	reg := tel.Registry()
	// Two transient failures per op, two ops: four retries, zero give-ups.
	if got := reg.Counter("store.retries_total{backend=memory}").Value(); got != 4 {
		t.Errorf("retries_total = %d, want 4", got)
	}
	if got := reg.Counter("store.gaveup_total{backend=memory}").Value(); got != 0 {
		t.Errorf("gaveup_total = %d, want 0", got)
	}
}

func TestArmorGivesUpAfterBudget(t *testing.T) {
	tel := telemetry.Nop()
	flaky := newFlaky(datastore.NewMemory(), 100) // more failures than any budget
	s := datastore.Armor(flaky, tel, "memory", datastore.ArmorOptions{Policy: retry.Policy{MaxAttempts: 3}})
	err := s.Put("ns", "k", []byte("v"))
	if !errors.Is(err, datastore.ErrTransient) {
		t.Fatalf("want transient error to surface after budget, got %v", err)
	}
	reg := tel.Registry()
	if got := reg.Counter("store.retries_total{backend=memory}").Value(); got != 2 {
		t.Errorf("retries_total = %d, want 2 (3 attempts)", got)
	}
	if got := reg.Counter("store.gaveup_total{backend=memory}").Value(); got != 1 {
		t.Errorf("gaveup_total = %d, want 1", got)
	}
}

func TestArmorDoesNotRetryPermanentOrMiss(t *testing.T) {
	tel := telemetry.Nop()
	s := datastore.Armor(datastore.NewMemory(), tel, "memory", datastore.ArmorOptions{})
	if _, err := s.Get("ns", "missing"); !errors.Is(err, datastore.ErrNotFound) {
		t.Fatalf("miss: %v", err)
	}
	if err := s.Delete("ns", "missing"); !errors.Is(err, datastore.ErrNotFound) {
		t.Fatalf("delete miss: %v", err)
	}
	reg := tel.Registry()
	if got := reg.Counter("store.retries_total{backend=memory}").Value(); got != 0 {
		t.Errorf("retries_total = %d, want 0 (ErrNotFound is permanent)", got)
	}
	if got := reg.Counter("store.gaveup_total{backend=memory}").Value(); got != 0 {
		t.Errorf("gaveup_total = %d, want 0", got)
	}
}

func TestArmorPreservesCapabilities(t *testing.T) {
	tel := telemetry.Nop()

	plain := datastore.Armor(datastore.NewMemory(), tel, "memory", datastore.ArmorOptions{})
	if _, ok := plain.(datastore.BatchGetter); ok {
		t.Fatal("plain store should not gain BatchGetter")
	}
	if _, ok := plain.(datastore.BatchMover); ok {
		t.Fatal("plain store should not gain BatchMover")
	}

	both := datastore.Armor(armorBatchMemory{datastore.NewMemory()}, tel, "memory", datastore.ArmorOptions{})
	bg, ok := both.(datastore.BatchGetter)
	if !ok {
		t.Fatal("batch store lost BatchGetter")
	}
	bm, ok := both.(datastore.BatchMover)
	if !ok {
		t.Fatal("batch store lost BatchMover")
	}
	if err := both.Put("ns", "a", []byte("xy")); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := bg.GetBatch("ns", []string{"a"})
	if err != nil || string(got["a"]) != "xy" {
		t.Fatalf("GetBatch: %v %v", got, err)
	}
	if err := bm.MoveBatch("ns", []string{"a"}, "done"); err != nil {
		t.Fatalf("MoveBatch: %v", err)
	}
}

func TestArmorSleepHookReceivesBackoff(t *testing.T) {
	var slept []time.Duration
	flaky := newFlaky(datastore.NewMemory(), 2)
	s := datastore.Armor(flaky, telemetry.Nop(), "memory", datastore.ArmorOptions{
		Policy: retry.Policy{BaseDelay: 10 * time.Millisecond, Seed: 3},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	})
	if err := s.Put("ns", "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("sleep hook called %d times, want 2", len(slept))
	}
	p := retry.Policy{BaseDelay: 10 * time.Millisecond, Seed: 3}
	for i, d := range slept {
		if want := p.Backoff(i + 1); d != want {
			t.Errorf("backoff %d = %v, want deterministic %v", i+1, d, want)
		}
	}
}

package datastore

import (
	"errors"
	"time"

	"mummi/internal/retry"
	"mummi/internal/telemetry"
)

// ArmorOptions parameterizes Armor.
type ArmorOptions struct {
	// Policy is the bounded-backoff schedule (zero fields take the retry
	// package defaults). Its Seed drives the deterministic jitter, so two
	// same-seed runs retry on identical schedules.
	Policy retry.Policy
	// Sleep, when non-nil, is called with each backoff delay between
	// attempts. Real-time deployments pass a real sleep; virtual-time
	// replays leave it nil — a discrete-event callback cannot block, so the
	// delay is accounted in the store.backoff_ms histogram instead of slept.
	Sleep func(time.Duration)
	// Retryable classifies errors; nil means errors.Is(err, ErrTransient).
	Retryable func(error) bool
}

// Armor wraps a Store with the paper's I/O armoring (§4.4: "all I/O
// operations are armored with retries"): every operation is retried under a
// capped exponential backoff with deterministic jitter while the error is
// transient, and gives up — surfacing the last error — when the attempt
// budget is exhausted or the error is permanent. ErrNotFound is never
// retried (misses are normal feedback operation, not faults).
//
// Telemetry (labeled by backend):
//
//	store.retries_total — retries performed (attempts beyond the first)
//	store.gaveup_total  — operations that exhausted the attempt budget
//	store.backoff_ms    — histogram of scheduled backoff delays
//
// Like Instrument, Armor is capability-preserving: the returned Store
// satisfies exactly the BatchGetter/BatchMover extensions the wrapped store
// does. Compose the two as Armor(Instrument(s, …), …) when both are wanted:
// the inner Instrument then observes every physical attempt while Armor's
// counters report the retry discipline.
func Armor(s Store, tel *telemetry.Telemetry, backend string, opts ArmorOptions) Store {
	if s == nil {
		return nil
	}
	if tel == nil {
		tel = telemetry.Nop()
	}
	if opts.Retryable == nil {
		opts.Retryable = func(err error) bool { return errors.Is(err, ErrTransient) }
	}
	base := armored{s: s, tel: tel, backend: backend, opts: opts}
	bg, hasBG := s.(BatchGetter)
	bm, hasBM := s.(BatchMover)
	switch {
	case hasBG && hasBM:
		return &armoredBatchBoth{armored: base, bg: bg, bm: bm}
	case hasBG:
		return &armoredBatchGet{armored: base, bg: bg}
	case hasBM:
		return &armoredBatchMove{armored: base, bm: bm}
	default:
		return &armored{s: s, tel: tel, backend: backend, opts: opts}
	}
}

// OpenArmored opens the Store selected by cfg and wraps it with both
// instrumentation and retry armoring, the deployment-ready composition.
func OpenArmored(cfg Config, tel *telemetry.Telemetry, opts ArmorOptions) (Store, error) {
	s, err := OpenInstrumented(cfg, tel)
	if err != nil {
		return nil, err
	}
	return Armor(s, tel, cfg.Backend, opts), nil
}

type armored struct {
	s       Store
	tel     *telemetry.Telemetry
	backend string
	opts    ArmorOptions
}

// do runs one operation under the retry policy, accounting retries, backoff
// delays, and give-ups.
func (a *armored) do(op func() error) error {
	sleep := func(d time.Duration) {
		a.tel.Counter(telemetry.Name("store.retries_total", "backend", a.backend)).Inc()
		a.tel.Histogram(telemetry.Name("store.backoff_ms", "backend", a.backend), "ms", nil).
			Observe(float64(d) / float64(time.Millisecond))
		if a.opts.Sleep != nil {
			a.opts.Sleep(d)
		}
	}
	_, err := a.opts.Policy.Do(sleep, a.opts.Retryable, op)
	if err != nil && a.opts.Retryable(err) {
		// A transient error escaping Do means the attempt budget ran out:
		// the armor gave up.
		a.tel.Counter(telemetry.Name("store.gaveup_total", "backend", a.backend)).Inc()
	}
	return err
}

// Put implements Store.
func (a *armored) Put(ns, key string, data []byte) error {
	return a.do(func() error { return a.s.Put(ns, key, data) })
}

// Get implements Store.
func (a *armored) Get(ns, key string) ([]byte, error) {
	var v []byte
	err := a.do(func() error {
		var err error
		v, err = a.s.Get(ns, key)
		return err
	})
	return v, err
}

// Delete implements Store.
func (a *armored) Delete(ns, key string) error {
	return a.do(func() error { return a.s.Delete(ns, key) })
}

// Keys implements Store.
func (a *armored) Keys(ns string) ([]string, error) {
	var ks []string
	err := a.do(func() error {
		var err error
		ks, err = a.s.Keys(ns)
		return err
	})
	return ks, err
}

// Move implements Store.
func (a *armored) Move(srcNS, key, dstNS string) error {
	return a.do(func() error { return a.s.Move(srcNS, key, dstNS) })
}

// Close implements Store. Close is not retried: teardown errors are final.
func (a *armored) Close() error { return a.s.Close() }

type armoredBatchGet struct {
	armored
	bg BatchGetter
}

// GetBatch implements BatchGetter.
func (a *armoredBatchGet) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	return a.getBatch(a.bg, ns, keys)
}

type armoredBatchMove struct {
	armored
	bm BatchMover
}

// MoveBatch implements BatchMover.
func (a *armoredBatchMove) MoveBatch(srcNS string, keys []string, dstNS string) error {
	return a.moveBatch(a.bm, srcNS, keys, dstNS)
}

type armoredBatchBoth struct {
	armored
	bg BatchGetter
	bm BatchMover
}

// GetBatch implements BatchGetter.
func (a *armoredBatchBoth) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	return a.getBatch(a.bg, ns, keys)
}

// MoveBatch implements BatchMover.
func (a *armoredBatchBoth) MoveBatch(srcNS string, keys []string, dstNS string) error {
	return a.moveBatch(a.bm, srcNS, keys, dstNS)
}

func (a *armored) getBatch(bg BatchGetter, ns string, keys []string) (map[string][]byte, error) {
	var m map[string][]byte
	err := a.do(func() error {
		var err error
		m, err = bg.GetBatch(ns, keys)
		return err
	})
	return m, err
}

func (a *armored) moveBatch(bm BatchMover, srcNS string, keys []string, dstNS string) error {
	return a.do(func() error { return bm.MoveBatch(srcNS, keys, dstNS) })
}

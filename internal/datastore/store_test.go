package datastore_test

import (
	"testing"

	"mummi/internal/datastore"
	"mummi/internal/datastore/dstest"
)

func TestMemoryConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		return datastore.NewMemory()
	})
}

func TestOpenMemory(t *testing.T) {
	s, err := datastore.Open(datastore.Config{Backend: datastore.BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenUnknownBackend(t *testing.T) {
	if _, err := datastore.Open(datastore.Config{Backend: "bogus"}); err == nil {
		t.Fatal("Open of unknown backend succeeded")
	}
}

func TestRegisterCustomBackend(t *testing.T) {
	// §4.5: applications can add their own data interfaces via the same API.
	datastore.Register("custom-test", func(datastore.Config) (datastore.Store, error) {
		return datastore.NewMemory(), nil
	})
	s, err := datastore.Open(datastore.Config{Backend: "custom-test"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	found := false
	for _, b := range datastore.Backends() {
		if b == "custom-test" {
			found = true
		}
	}
	if !found {
		t.Error("registered backend missing from Backends()")
	}
}

func TestMemoryValueIsolation(t *testing.T) {
	// Mutating a returned or stored slice must not affect the store.
	s := datastore.NewMemory()
	src := []byte("abc")
	if err := s.Put("ns", "k", src); err != nil {
		t.Fatal(err)
	}
	src[0] = 'X'
	got, err := s.Get("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Errorf("store aliased caller slice: %q", got)
	}
	got[0] = 'Y'
	again, err := s.Get("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "abc" {
		t.Errorf("store aliased returned slice: %q", again)
	}
}

// Package datastore defines mummi's abstract data interface (paper §4.2).
//
// Rather than speculating on all access patterns and writing tailored
// implementations, every component reads and writes named byte streams
// through the Store interface; concrete backends (filesystem, indexed tar
// archives, and the in-memory key-value database) are selected with a single
// configuration switch. Application modules stay agnostic to read/write
// details, and backends can be implemented and tested in isolation — the
// exact flexibility the paper credits for reducing development overhead.
package datastore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned when a key does not exist in a namespace.
var ErrNotFound = errors.New("datastore: key not found")

// ErrTransient marks an error as retryable: the operation failed for a
// reason expected to clear on its own (a flaky parallel-filesystem call, a
// reset database connection, an injected chaos fault). Backends and fault
// injectors wrap ErrTransient into such errors; Armor retries exactly the
// errors for which errors.Is(err, ErrTransient) holds and treats everything
// else — including ErrNotFound — as permanent.
var ErrTransient = errors.New("datastore: transient error")

// Store is the abstract data interface. A Store holds byte values addressed
// by (namespace, key). Namespaces map to directories (filesystem backend),
// archives (taridx backend), or key prefixes (database backend).
//
// Move relocates a key between namespaces; it is the primitive behind the
// paper's feedback "tagging" strategy: processed frames are moved out of the
// active namespace (files into tar archives, or database keys renamed) so
// that feedback cost scales with ongoing simulations, not with every frame
// ever produced.
type Store interface {
	// Put stores data under (ns, key), overwriting any previous value.
	Put(ns, key string, data []byte) error
	// Get retrieves the value at (ns, key), or ErrNotFound.
	Get(ns, key string) ([]byte, error)
	// Delete removes (ns, key). Deleting a missing key returns ErrNotFound.
	Delete(ns, key string) error
	// Keys lists the keys in ns in unspecified order. A missing namespace
	// yields an empty list, not an error.
	Keys(ns string) ([]string, error)
	// Move atomically (per backend guarantees) relocates key from srcNS to
	// dstNS, overwriting any existing value there.
	Move(srcNS, key, dstNS string) error
	// Close releases resources. The Store must not be used afterwards.
	Close() error
}

// BatchGetter is an optional Store extension: fetch many keys in one
// operation (one pipelined round trip per database node, for the kv
// backend). The feedback loops use it when available — the paper fetches
// frames "in parallel (when reading from files) or serial (when using a
// high-throughput database)", i.e. batched on the database path.
type BatchGetter interface {
	// GetBatch returns the values for the given keys; missing keys are
	// simply absent from the result.
	GetBatch(ns string, keys []string) (map[string][]byte, error)
}

// BatchMover is an optional Store extension: move many keys between
// namespaces in one operation (pipelined renames).
type BatchMover interface {
	// MoveBatch moves each key from srcNS to dstNS; missing keys are
	// skipped.
	MoveBatch(srcNS string, keys []string, dstNS string) error
}

// Backend names accepted by Open.
const (
	BackendMemory = "memory"
	BackendFS     = "fs"
	BackendTaridx = "taridx"
	BackendKV     = "kv"
)

// Config selects and parameterizes a backend. This is the "single
// configuration switch" from the paper: change Backend and nothing else.
type Config struct {
	// Backend is one of BackendMemory, BackendFS, BackendTaridx, BackendKV.
	Backend string `json:"backend"`
	// Root is the directory for fs/taridx backends.
	Root string `json:"root,omitempty"`
	// Addrs lists kv-cluster server addresses for the kv backend.
	Addrs []string `json:"addrs,omitempty"`
	// Replicas optionally lists one replica address per entry of Addrs
	// (same order), making each kv shard a replicated primary/replica
	// pair with client-side failover. Empty means unreplicated.
	Replicas []string `json:"replicas,omitempty"`
}

// Opener constructs a Store from a Config. Backends self-register so that
// this package does not import its implementations (avoiding cycles and
// letting applications add their own backends, per §4.5).
type Opener func(Config) (Store, error)

var (
	openersMu sync.RWMutex
	openers   = map[string]Opener{}
)

// Register installs an Opener for a backend name. Later registrations for
// the same name replace earlier ones (useful in tests).
func Register(name string, o Opener) {
	openersMu.Lock()
	defer openersMu.Unlock()
	openers[name] = o
}

// Backends returns the sorted list of registered backend names.
func Backends() []string {
	openersMu.RLock()
	defer openersMu.RUnlock()
	names := make([]string, 0, len(openers))
	for n := range openers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Open constructs the Store selected by cfg.Backend.
func Open(cfg Config) (Store, error) {
	openersMu.RLock()
	o, ok := openers[cfg.Backend]
	openersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown backend %q (registered: %v)", cfg.Backend, Backends())
	}
	return o(cfg)
}

// Memory is a trivial in-process Store used as a reference implementation
// and in tests; it also serves small deployments the way the paper's "use
// of individual components" on laptops does.
type Memory struct {
	mu sync.RWMutex
	m  map[string]map[string][]byte
}

// NewMemory returns an empty in-process store.
func NewMemory() *Memory { return &Memory{m: make(map[string]map[string][]byte)} }

func init() {
	Register(BackendMemory, func(Config) (Store, error) { return NewMemory(), nil })
}

// Put implements Store.
func (s *Memory) Put(ns, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nsm, ok := s.m[ns]
	if !ok {
		nsm = make(map[string][]byte)
		s.m[ns] = nsm
	}
	nsm[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (s *Memory) Get(ns, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[ns][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, ns, key)
	}
	return append([]byte(nil), v...), nil
}

// Delete implements Store.
func (s *Memory) Delete(ns, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[ns][key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, ns, key)
	}
	delete(s.m[ns], key)
	return nil
}

// Keys implements Store.
func (s *Memory) Keys(ns string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.m[ns]))
	for k := range s.m[ns] {
		keys = append(keys, k)
	}
	return keys, nil
}

// Move implements Store.
func (s *Memory) Move(srcNS, key, dstNS string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[srcNS][key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, srcNS, key)
	}
	nsm, ok := s.m[dstNS]
	if !ok {
		nsm = make(map[string][]byte)
		s.m[dstNS] = nsm
	}
	nsm[key] = v
	delete(s.m[srcNS], key)
	return nil
}

// Close implements Store.
func (s *Memory) Close() error { return nil }

package datastore

import (
	"errors"
	"testing"

	"mummi/internal/telemetry"
)

// batchMemory augments Memory with both batch capabilities for the
// capability-preservation test.
type batchMemory struct{ *Memory }

func (b batchMemory) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, err := b.Get(ns, k); err == nil {
			out[k] = v
		}
	}
	return out, nil
}

func (b batchMemory) MoveBatch(srcNS string, keys []string, dstNS string) error {
	for _, k := range keys {
		if err := b.Move(srcNS, k, dstNS); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	return nil
}

func TestInstrumentCountsOps(t *testing.T) {
	tel := telemetry.Nop()
	s := Instrument(NewMemory(), tel, "memory")

	if err := s.Put("ns", "k", []byte("hello")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := s.Get("ns", "k"); err != nil {
		t.Fatalf("get: %v", err)
	}
	if _, err := s.Get("ns", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: %v", err)
	}
	if err := s.Move("ns", "k", "done"); err != nil {
		t.Fatalf("move: %v", err)
	}

	reg := tel.Registry()
	checks := map[string]int64{
		"store.ops_total{backend=memory,op=put}":  1,
		"store.ops_total{backend=memory,op=get}":  2,
		"store.ops_total{backend=memory,op=move}": 1,
		"store.write_bytes_total{backend=memory}": 5,
		"store.read_bytes_total{backend=memory}":  5,
		"store.misses_total{backend=memory}":      1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s: got %d want %d", name, got, want)
		}
	}
}

func TestInstrumentPreservesCapabilities(t *testing.T) {
	tel := telemetry.Nop()

	plain := Instrument(NewMemory(), tel, "memory")
	if _, ok := plain.(BatchGetter); ok {
		t.Fatal("plain store should not gain BatchGetter")
	}
	if _, ok := plain.(BatchMover); ok {
		t.Fatal("plain store should not gain BatchMover")
	}

	both := Instrument(batchMemory{NewMemory()}, tel, "memory")
	bg, ok := both.(BatchGetter)
	if !ok {
		t.Fatal("batch store lost BatchGetter")
	}
	bm, ok := both.(BatchMover)
	if !ok {
		t.Fatal("batch store lost BatchMover")
	}

	if err := both.Put("ns", "a", []byte("xy")); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := bg.GetBatch("ns", []string{"a", "nope"})
	if err != nil || len(got) != 1 || string(got["a"]) != "xy" {
		t.Fatalf("GetBatch: %v %v", got, err)
	}
	if err := bm.MoveBatch("ns", []string{"a"}, "done"); err != nil {
		t.Fatalf("MoveBatch: %v", err)
	}
	if _, err := both.Get("done", "a"); err != nil {
		t.Fatalf("moved key missing: %v", err)
	}

	reg := tel.Registry()
	if got := reg.Counter("store.ops_total{backend=memory,op=get_batch}").Value(); got != 1 {
		t.Errorf("get_batch ops: got %d", got)
	}
	if got := reg.Counter("store.ops_total{backend=memory,op=move_batch}").Value(); got != 1 {
		t.Errorf("move_batch ops: got %d", got)
	}
}

package campaign

import (
	"fmt"
	"sort"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/feedback"
)

// Modeled per-item feedback costs. The totals reproduce the shape the paper
// reports (Fig. 8): scan and tag are cheap namespace operations, fetch is
// I/O, and AA processing dominates at ~2 s per frame (the external module).
const (
	fbScanPerKey  = 100 * time.Microsecond
	fbFetchPerKey = 200 * time.Microsecond
	fbTagPerKey   = 50 * time.Microsecond
	fbCGProcess   = 500 * time.Microsecond
	fbAAProcess   = 2 * time.Second
)

// modeledFeedback is the campaign's Task-4 feedback manager: a working
// scan → fetch → process → tag pipeline over the campaign's frame store,
// with process time modeled rather than computed. Each iteration lists the
// active namespace, batch-fetches the frames, and moves them to the done
// namespace — the paper's tagging strategy, so iteration cost tracks
// ongoing simulations, not campaign history. It consumes no randomness and
// never touches the job flow, so wiring it in (Config.FeedbackEvery) keeps
// replays deterministic.
type modeledFeedback struct {
	name       string
	store      datastore.Store
	srcNS      string
	dstNS      string
	perProcess time.Duration
}

// Name implements feedback.Manager.
func (m *modeledFeedback) Name() string { return m.name }

// Iterate implements feedback.Manager.
func (m *modeledFeedback) Iterate() (feedback.Report, error) {
	keys, err := m.store.Keys(m.srcNS)
	if err != nil {
		return feedback.Report{}, fmt.Errorf("campaign: feedback scan %s: %w", m.srcNS, err)
	}
	sort.Strings(keys)
	if bg, ok := m.store.(datastore.BatchGetter); ok {
		if _, err := bg.GetBatch(m.srcNS, keys); err != nil {
			return feedback.Report{}, fmt.Errorf("campaign: feedback fetch %s: %w", m.srcNS, err)
		}
	} else {
		for _, k := range keys {
			if _, err := m.store.Get(m.srcNS, k); err != nil {
				return feedback.Report{}, fmt.Errorf("campaign: feedback fetch %s/%s: %w", m.srcNS, k, err)
			}
		}
	}
	for _, k := range keys {
		if err := m.store.Move(m.srcNS, k, m.dstNS); err != nil {
			return feedback.Report{}, fmt.Errorf("campaign: feedback tag %s/%s: %w", m.srcNS, k, err)
		}
	}
	n := time.Duration(len(keys))
	return feedback.Report{
		Frames:  len(keys),
		Scan:    n * fbScanPerKey,
		Fetch:   n * fbFetchPerKey,
		Process: n * m.perProcess,
		Tag:     n * fbTagPerKey,
	}, nil
}

// fbPut stores one frame record in the feedback store's active namespace
// (no-op when feedback is off). Records are tiny placeholders — the replay
// models frame volume in the Result ledger; here only the key flow matters.
func (c *Campaign) fbPut(ns, key string, size int) {
	if c.fbStore == nil {
		return
	}
	if err := c.fbStore.Put(ns, key, make([]byte, size)); err != nil {
		if c.eng != nil {
			// Chaos replay: an injected permanent fault (or an exhausted
			// retry budget) legitimately loses this record. Count it — the
			// ledger stays deterministic — and move on.
			c.res.StorePutErrors++
			c.tel.Counter("campaign.store_put_errors_total").Inc()
			return
		}
		// The in-memory store cannot fail a Put; treat one as a bug.
		panic(err)
	}
}

package campaign

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/errutil"
	"mummi/internal/feedback"
	"mummi/internal/fsstore"
	"mummi/internal/kvstore"
	"mummi/internal/sched"
	"mummi/internal/sim"
	"mummi/internal/stats"
	"mummi/internal/taridx"
	"mummi/internal/units"
	"mummi/internal/vclock"
)

// This file holds the standalone experiments of §5.2 that are not part of
// the virtual-time campaign replay: the Redis-feedback query measurements
// (Fig. 7), the AA-feedback latency model (Fig. 8), the Flux first-match
// fix (the "670×" comparison), the taridx read-throughput and inode
// numbers, the filesystem-vs-database feedback comparison (the ≥12× claim),
// the selector scaling comparison (the "165× more data" claim), and the
// bundled-vs-unbundled scheduling ablation.

// ---------------------------------------------------------------------------
// Fig. 7 — KV-store feedback queries

// Fig7Row is one sweep point: wall time for the three query types the
// CG→continuum feedback performs against the in-memory store.
type Fig7Row struct {
	Frames         int
	RetrieveKeys   time.Duration
	RetrieveValues time.Duration
	Delete         time.Duration
}

// Fig7KVQueries stands up a KV cluster (the paper used 20 Redis nodes),
// loads it with RDF-sized frames, and measures key retrieval, value
// retrieval, and deletion for each frame count.
func Fig7KVQueries(frameCounts []int, clusterNodes, valueBytes int) (_ []Fig7Row, err error) {
	addrs, shutdown, err := kvstore.LaunchCluster(clusterNodes)
	if err != nil {
		return nil, err
	}
	defer shutdown()
	c, err := kvstore.DialCluster(addrs)
	if err != nil {
		return nil, err
	}
	defer errutil.CaptureClose(&err, c.Close)

	value := make([]byte, valueBytes)
	rand.New(rand.NewSource(1)).Read(value)

	var rows []Fig7Row
	for _, n := range frameCounts {
		kv := make(map[string][]byte, n)
		for i := 0; i < n; i++ {
			kv[fmt.Sprintf("rdf:new:%07d", i)] = value
		}
		if err := c.MSet(kv); err != nil {
			return nil, err
		}

		t0 := time.Now()
		keys, err := c.Keys("rdf:new:*")
		if err != nil {
			return nil, err
		}
		tKeys := time.Since(t0)
		if len(keys) != n {
			return nil, fmt.Errorf("fig7: scan found %d/%d keys", len(keys), n)
		}

		t1 := time.Now()
		vals, err := c.MGet(keys)
		if err != nil {
			return nil, err
		}
		tVals := time.Since(t1)
		if len(vals) != n {
			return nil, fmt.Errorf("fig7: fetched %d/%d values", len(vals), n)
		}

		t2 := time.Now()
		deleted, err := c.Del(keys...)
		if err != nil {
			return nil, err
		}
		tDel := time.Since(t2)
		if deleted != n {
			return nil, fmt.Errorf("fig7: deleted %d/%d", deleted, n)
		}
		rows = append(rows, Fig7Row{Frames: n, RetrieveKeys: tKeys, RetrieveValues: tVals, Delete: tDel})
	}
	return rows, nil
}

// Fig7Text renders the sweep with derived throughputs.
func Fig7Text(rows []Fig7Row) string {
	t := stats.Table{Header: []string{"frames", "keys", "values", "delete", "keys/s", "reads/s", "dels/s"}}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Frames),
			r.RetrieveKeys.Round(time.Microsecond).String(),
			r.RetrieveValues.Round(time.Microsecond).String(),
			r.Delete.Round(time.Microsecond).String(),
			rate(r.Frames, r.RetrieveKeys), rate(r.Frames, r.RetrieveValues), rate(r.Frames, r.Delete))
	}
	return "# Fig 7: in-memory DB feedback queries vs number of CG frames\n" +
		"# (paper, 20-node Redis on Summit: ~10k keys+dels/s, ~2k reads/s; linear in frames)\n" +
		t.String()
}

func rate(n int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
}

// ---------------------------------------------------------------------------
// Fig. 8 — AA→CG feedback latency

// Fig8Row is one iteration class: frames processed vs modeled wall time.
type Fig8Row struct {
	Frames int
	Time   time.Duration
}

// Fig8Result is the modeled distribution of AA-feedback iterations.
type Fig8Result struct {
	Rows         []Fig8Row
	WithinTarget float64 // fraction of iterations within the 10-min target
	Target       time.Duration
}

// Fig8AAFeedback models AA→CG feedback iterations: each frame costs ~2 s of
// external-module calls (±20%), drained by a worker pool, plus a fixed
// overhead for process spawning and staging. The iteration sizes follow the
// campaign cadence: 2400 AA simulations produce one eligible frame every
// ~10 min each, thinned by eligibility; occasionally a backlog burst (the
// paper's restart accumulations) pushes past 1600 frames where the target
// is missed but scaling stays linear.
func Fig8AAFeedback(iterations, workers int, perFrame time.Duration, seed int64) Fig8Result {
	rng := rand.New(rand.NewSource(seed))
	res := Fig8Result{Target: 10 * time.Minute}
	within := 0
	for i := 0; i < iterations; i++ {
		frames := int(rng.ExpFloat64() * 400)
		if rng.Float64() < 0.015 { // restart backlog burst
			frames = 1600 + rng.Intn(5500)
		}
		if frames > 7000 {
			frames = 7000
		}
		costs := make([]time.Duration, frames)
		for j := range costs {
			costs[j] = time.Duration(float64(perFrame) * (0.8 + 0.4*rng.Float64()))
		}
		overhead := 30*time.Second + time.Duration(rng.Intn(20))*time.Second
		total := overhead + feedback.SimulatePoolTime(costs, workers)
		res.Rows = append(res.Rows, Fig8Row{Frames: frames, Time: total})
		if total <= res.Target {
			within++
		}
	}
	res.WithinTarget = float64(within) / float64(len(res.Rows))
	return res
}

// Fig8Text renders the iteration scatter as binned means plus the headline.
func Fig8Text(r Fig8Result) string {
	bins := stats.NewHistogram(0, 7000, 14)
	sums := make([]time.Duration, 14)
	counts := make([]int, 14)
	for _, row := range r.Rows {
		i := row.Frames * 14 / 7000
		if i >= 14 {
			i = 13
		}
		sums[i] += row.Time
		counts[i]++
		bins.Add(float64(row.Frames))
	}
	t := stats.Table{Header: []string{"frames(bin)", "iterations", "mean time"}}
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%.0f", bins.BinCenter(i)), fmt.Sprintf("%d", counts[i]),
			(sums[i] / time.Duration(counts[i])).Round(time.Second).String())
	}
	return fmt.Sprintf("# Fig 8: AA-to-CG feedback time vs frames processed\n%s"+
		"iterations within 10-min target: %.1f%% (paper: >97%%)\n",
		t.String(), r.WithinTarget*100)
}

// ---------------------------------------------------------------------------
// Flux fix — first-match + async vs exhaustive + sync (the 670×)

// FluxFixResult compares matcher work for the paper's emulated job mix.
type FluxFixResult struct {
	Nodes            int
	Jobs             int
	ExhaustiveVisits int64
	FirstMatchVisits int64
	ExhaustiveWall   time.Duration
	FirstMatchWall   time.Duration
}

// VisitRatio returns the matcher-work improvement factor.
func (r FluxFixResult) VisitRatio() float64 {
	if r.FirstMatchVisits == 0 {
		return 0
	}
	return float64(r.ExhaustiveVisits) / float64(r.FirstMatchVisits)
}

// FluxFix670 reproduces the §5.2 emulated-environment experiment: "a
// resource graph configuration similar to 4000 Summit nodes and the same
// job mix (24,000 jobs with 1 GPU and 3 CPU cores each, and 1 job with 150
// nodes, each with 24 cores)", matched under the original policy
// (exhaustive lowest-ID traversal) and under the fix (first-match), with
// the traversal work and wall time measured.
func FluxFix670(nodes, gpuJobs int) (FluxFixResult, error) {
	res := FluxFixResult{Nodes: nodes, Jobs: gpuJobs + 1}
	run := func(policy sched.Policy) (int64, time.Duration, error) {
		m, err := cluster.New(cluster.Summit(nodes))
		if err != nil {
			return 0, 0, err
		}
		mt := sched.NewMatcher(m, policy)
		start := time.Now()
		big := sched.Request{Name: "continuum", NodeCount: min(150, nodes), Cores: 24}
		if _, _, ok := mt.Match(big); !ok {
			return 0, 0, fmt.Errorf("fluxfix: continuum job did not place")
		}
		small := sched.Request{Name: "cg-sim", Cores: 3, GPUs: 1}
		placed := 0
		for i := 0; i < gpuJobs; i++ {
			if _, _, ok := mt.Match(small); ok {
				placed++
			}
		}
		if want := minInt(gpuJobs, nodes*6); placed != want {
			return 0, 0, fmt.Errorf("fluxfix: placed %d, want %d", placed, want)
		}
		return mt.Visits(), time.Since(start), nil
	}
	var err error
	if res.ExhaustiveVisits, res.ExhaustiveWall, err = run(sched.LowIDExhaustive); err != nil {
		return res, err
	}
	if res.FirstMatchVisits, res.FirstMatchWall, err = run(sched.FirstMatch); err != nil {
		return res, err
	}
	return res, nil
}

// FluxFixText renders the comparison.
func FluxFixText(r FluxFixResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Flux scheduling fix (emulated %d-node graph, %d-job mix)\n", r.Nodes, r.Jobs)
	fmt.Fprintf(&b, "exhaustive low-ID: %d vertex visits, %v wall\n", r.ExhaustiveVisits, r.ExhaustiveWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "first-match:       %d vertex visits, %v wall\n", r.FirstMatchVisits, r.FirstMatchWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "improvement: %.0fx in matcher work (paper measured 670x with async Q-R)\n", r.VisitRatio())
	return b.String()
}

// ---------------------------------------------------------------------------
// Taridx throughput and inode reduction (§5.2)

// TaridxResult reports archive read performance.
type TaridxResult struct {
	Files     int
	FileBytes int
	Inodes    int
	WriteWall time.Duration
	ReadWall  time.Duration
}

// FilesPerSec returns read throughput in files/s.
func (r TaridxResult) FilesPerSec() float64 { return float64(r.Files) / r.ReadWall.Seconds() }

// MBPerSec returns read throughput in MB/s.
func (r TaridxResult) MBPerSec() float64 {
	return float64(r.Files) * float64(r.FileBytes) / 1e6 / r.ReadWall.Seconds()
}

// TaridxThroughput writes `files` entries of `fileBytes` each into one
// indexed archive, then reads every entry back in random order, measuring
// the §5.2 read numbers (~575 files/s, ~87.56 MB/s at ~156 KB/file on
// Summit's GPFS; local disk is faster — the shape claim is that archives
// deliver sequential-class throughput under random access while occupying
// two inodes).
func TaridxThroughput(dir string, files, fileBytes int) (_ TaridxResult, err error) {
	res := TaridxResult{Files: files, FileBytes: fileBytes}
	a, err := taridx.Open(filepath.Join(dir, "bench.tar"))
	if err != nil {
		return res, err
	}
	// The archive is append-mode: a failed close can mean lost index
	// appends, so it must surface in the benchmark result.
	defer errutil.CaptureClose(&err, a.Close)
	payload := make([]byte, fileBytes)
	rand.New(rand.NewSource(2)).Read(payload)

	t0 := time.Now()
	for i := 0; i < files; i++ {
		if err := a.Put(fmt.Sprintf("f%08d", i), payload); err != nil {
			return res, err
		}
	}
	res.WriteWall = time.Since(t0)

	order := rand.New(rand.NewSource(3)).Perm(files)
	t1 := time.Now()
	for _, i := range order {
		b, err := a.Get(fmt.Sprintf("f%08d", i))
		if err != nil {
			return res, err
		}
		if len(b) != fileBytes {
			return res, fmt.Errorf("taridx bench: short read %d", len(b))
		}
	}
	res.ReadWall = time.Since(t1)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return res, err
	}
	res.Inodes = len(ents)
	return res, nil
}

// TaridxText renders the throughput result.
func TaridxText(r TaridxResult) string {
	return fmt.Sprintf("# taridx: %d files x %s in one archive (%d inodes; 9000x-class reduction)\n"+
		"write: %v   read (random order): %v = %.0f files/s, %.1f MB/s\n"+
		"(paper on GPFS: ~575 files/s, ~87.56 MB/s at ~156 KB/file)\n",
		r.Files, units.ByteSize(r.FileBytes), r.Inodes,
		r.WriteWall.Round(time.Millisecond), r.ReadWall.Round(time.Millisecond),
		r.FilesPerSec(), r.MBPerSec())
}

// ---------------------------------------------------------------------------
// Feedback backends — the ≥12× faster feedback loop

// FeedbackCompareResult compares one CG→continuum feedback iteration over
// the filesystem backend vs the in-memory database backend.
type FeedbackCompareResult struct {
	Frames int
	FSTime time.Duration
	KVTime time.Duration
}

// Speedup returns FS/KV.
func (r FeedbackCompareResult) Speedup() float64 {
	if r.KVTime <= 0 {
		return 0
	}
	return float64(r.FSTime) / float64(r.KVTime)
}

// GPFSOpLatency models per-operation latency of a contended parallel
// filesystem in the Feedback12x comparison. The paper's GPFS feedback
// suffered directory locking, metadata storms and explicit I/O throttling;
// 200 µs per metadata/file operation is a conservative stand-in (real
// contended GPFS metadata operations are millisecond-class).
const GPFSOpLatency = 200 * time.Microsecond

// Feedback12x loads the same CG frames into a filesystem store (with
// GPFS-like per-operation latency injected) and a KV cluster store, and
// runs one full feedback iteration against each. The paper's prior
// filesystem-based feedback took ~2 h per iteration; moving to Redis
// brought it under 10 min (>12×).
func Feedback12x(dir string, frames int) (_ FeedbackCompareResult, err error) {
	res := FeedbackCompareResult{Frames: frames}
	gen := func(store datastore.Store) error {
		g := sim.NewCGSim("cmp", 8, 1, nil, 9)
		for i := 0; i < frames; i++ {
			f := g.NextFrame()
			b, err := f.Marshal()
			if err != nil {
				return err
			}
			if err := store.Put("rdf-new", f.ID(), b); err != nil {
				return err
			}
		}
		return nil
	}
	iterate := func(store datastore.Store) (time.Duration, error) {
		fb, err := feedback.NewCGToContinuum(feedback.CGConfig{
			Store: store, NewNS: "rdf-new", DoneNS: "rdf-done", Species: 8, States: 3,
		})
		if err != nil {
			return 0, err
		}
		rep, err := fb.Iterate()
		if err != nil {
			return 0, err
		}
		if rep.Frames != frames {
			return 0, fmt.Errorf("feedback12x: processed %d/%d", rep.Frames, frames)
		}
		return rep.Total(), nil
	}

	fs, err := fsstore.New(filepath.Join(dir, "fs"),
		fsstore.WithFaultHook(func(op, path string) error {
			time.Sleep(GPFSOpLatency) // contended-GPFS latency model
			return nil
		}))
	if err != nil {
		return res, err
	}
	defer errutil.CaptureClose(&err, fs.Close)
	if err := gen(fs); err != nil {
		return res, err
	}
	if res.FSTime, err = iterate(fs); err != nil {
		return res, err
	}

	addrs, shutdown, err := kvstore.LaunchCluster(4)
	if err != nil {
		return res, err
	}
	defer shutdown()
	kvc, err := kvstore.DialCluster(addrs)
	if err != nil {
		return res, err
	}
	kv := kvstore.NewStore(kvc)
	defer errutil.CaptureClose(&err, kv.Close)
	if err := gen(kv); err != nil {
		return res, err
	}
	if res.KVTime, err = iterate(kv); err != nil {
		return res, err
	}
	return res, nil
}

// FeedbackText renders the backend comparison.
func FeedbackText(r FeedbackCompareResult) string {
	return fmt.Sprintf("# feedback iteration, %d CG frames\nfilesystem backend: %v\nkv-database backend: %v\nspeedup: %.1fx (paper: >12x, 2h -> <10min)\n",
		r.Frames, r.FSTime.Round(time.Millisecond), r.KVTime.Round(time.Millisecond), r.Speedup())
}

// ---------------------------------------------------------------------------
// Selector scaling — "165× more data" for dynamic decisions

// SelectorScalingResult compares rank-update cost of the two samplers at
// their campaign scales.
type SelectorScalingResult struct {
	FPSQueue       int
	FPSUpdateTime  time.Duration
	BinnedN        int
	BinnedAddTime  time.Duration // total for all adds
	BinnedSelTime  time.Duration // one selection burst
	CandidateRatio float64
}

// SelectorScaling fills a farthest-point queue to fpsQueue points (the
// paper's 35,000-patch queues; rank update takes 3–4 min at that size in
// Python/FAISS) and a binned sampler to binnedN candidates (9 M in the
// campaign — ~165× more than the prior work's selector held), measuring
// the cost of a full rank refresh on each. workers sizes the rank-update
// fan-out (0 = GOMAXPROCS); the selection sequence is identical for every
// value, so the knob only moves the measured wall-clock.
func SelectorScaling(fpsQueue, binnedN, workers int, seed int64) (SelectorScalingResult, error) {
	res := SelectorScalingResult{FPSQueue: fpsQueue, BinnedN: binnedN,
		CandidateRatio: float64(binnedN) / float64(fpsQueue)}
	rng := rand.New(rand.NewSource(seed))

	fp := dynim.NewFarthestPoint(9, 0)
	fp.DisableJournal()
	fp.SetWorkers(workers)
	coords := make([]float64, 9)
	for i := 0; i < fpsQueue; i++ {
		for j := range coords {
			coords[j] = rng.Float64()
		}
		if err := fp.Add(dynim.Point{ID: fmt.Sprintf("p%07d", i),
			Coords: append([]float64(nil), coords...)}); err != nil {
			return res, err
		}
	}
	// Time the full selection burst: eight picks (each paying a rank
	// refresh against the selections made since candidates were last
	// ranked), one explicit refresh, and a ninth pick. The window must
	// cover the picks themselves — engines are free to schedule refresh
	// work eagerly (per pick) or lazily (on demand), so timing only the
	// trailing Update would charge the two strategies for different work.
	t0 := time.Now()
	fp.Select(8)
	fp.Update()
	fp.Select(1)
	res.FPSUpdateTime = time.Since(t0)

	dims := []dynim.BinDim{{Lo: 0, Hi: 1, Bins: 20}, {Lo: 0, Hi: 1, Bins: 20}, {Lo: 0, Hi: 1, Bins: 20}}
	bn, err := dynim.NewBinned(dims, 0.8, seed)
	if err != nil {
		return res, err
	}
	bn.DisableJournal()
	bn.SetTrackDuplicates(false)
	t1 := time.Now()
	c3 := make([]float64, 3)
	for i := 0; i < binnedN; i++ {
		for j := range c3 {
			c3[j] = rng.Float64()
		}
		if err := bn.Add(dynim.Point{ID: fmt.Sprintf("f%08d", i),
			Coords: append([]float64(nil), c3...)}); err != nil {
			return res, err
		}
	}
	res.BinnedAddTime = time.Since(t1)
	t2 := time.Now()
	bn.Select(100)
	res.BinnedSelTime = time.Since(t2)
	return res, nil
}

// SelectorText renders the comparison.
func SelectorText(r SelectorScalingResult) string {
	return fmt.Sprintf("# selector scaling\nfarthest-point: %d-candidate queue, rank refresh + select = %v (paper: 3-4 min)\n"+
		"binned: %d candidates ingested in %v (O(1)/add), 100 selections = %v (paper: 3-4 min refresh for 9M)\n"+
		"candidate ratio: %.0fx (paper claims ~165x more data than prior selector)\n",
		r.FPSQueue, r.FPSUpdateTime.Round(time.Millisecond),
		r.BinnedN, r.BinnedAddTime.Round(time.Millisecond), r.BinnedSelTime.Round(time.Millisecond),
		r.CandidateRatio)
}

// ---------------------------------------------------------------------------
// Bundling ablation (§4.3)

// BundlingResult compares effective GPU utilization of bundled (one job per
// node, 6 simulations) vs unbundled (one job per simulation) placement on a
// straggler-prone ensemble.
type BundlingResult struct {
	Nodes              int
	Rounds             int
	BundledUtilization float64
	UnbundledUtil      float64
	BundledMakespan    time.Duration
	UnbundledMakespan  time.Duration
}

// BundlingAblation runs the same ensemble (nodes×6 simulations per round,
// lognormal durations with stragglers) both ways through the real
// scheduler. Under bundling, a node's job ends only when its slowest
// simulation does — "the worst case utilization of 1/6, when a single
// simulation keeps the job alive and continues to occupy the node".
func BundlingAblation(nodes, rounds int, seed int64) (BundlingResult, error) {
	res := BundlingResult{Nodes: nodes, Rounds: rounds}
	durations := make([][]time.Duration, rounds*nodes)
	rng := rand.New(rand.NewSource(seed))
	var useful time.Duration
	for i := range durations {
		ds := make([]time.Duration, 6)
		for j := range ds {
			d := time.Duration(float64(time.Hour) * (0.5 + rng.ExpFloat64()))
			if d > 12*time.Hour {
				d = 12 * time.Hour
			}
			ds[j] = d
			useful += d
		}
		durations[i] = ds
	}

	run := func(bundled bool) (time.Duration, float64, error) {
		clk := vclockVirtual()
		m, err := cluster.New(cluster.Summit(nodes))
		if err != nil {
			return 0, 0, err
		}
		s, err := sched.New(clk, sched.Config{Machine: m, Policy: sched.FirstMatch, Mode: sched.Async})
		if err != nil {
			return 0, 0, err
		}
		for _, ds := range durations {
			if bundled {
				maxD := time.Duration(0)
				for _, d := range ds {
					if d > maxD {
						maxD = d
					}
				}
				if _, err := s.Submit(sched.Request{Name: "bundle", GPUs: 6, Cores: 18, Duration: maxD}); err != nil {
					return 0, 0, err
				}
			} else {
				for _, d := range ds {
					if _, err := s.Submit(sched.Request{Name: "sim", GPUs: 1, Cores: 3, Duration: d}); err != nil {
						return 0, 0, err
					}
				}
			}
		}
		start := clk.Now()
		for i := 0; i < 1000; i++ {
			clk.RunFor(time.Hour)
			_, running, finished := s.Counts()
			if running == 0 && finished == rounds*nodes*boolTo(bundled, 1, 6) {
				break
			}
		}
		makespan := clk.Now().Sub(start)
		gpuTime := float64(nodes*6) * makespan.Seconds()
		return makespan, useful.Seconds() / gpuTime, nil
	}
	var err error
	if res.BundledMakespan, res.BundledUtilization, err = run(true); err != nil {
		return res, err
	}
	if res.UnbundledMakespan, res.UnbundledUtil, err = run(false); err != nil {
		return res, err
	}
	return res, nil
}

func boolTo(b bool, t, f int) int {
	if b {
		return t
	}
	return f
}

// BundlingText renders the ablation.
func BundlingText(r BundlingResult) string {
	return fmt.Sprintf("# bundling ablation: %d nodes x %d rounds of 6 straggler-prone sims\n"+
		"bundled (6 GPUs/job):   makespan %v, useful-GPU utilization %.0f%%\n"+
		"unbundled (1 GPU/job):  makespan %v, useful-GPU utilization %.0f%%\n"+
		"(paper: bundling wastes up to 5/6 of a node on one straggler)\n",
		r.Nodes, r.Rounds,
		r.BundledMakespan.Round(time.Minute), r.BundledUtilization*100,
		r.UnbundledMakespan.Round(time.Minute), r.UnbundledUtil*100)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int { return min(a, b) }

// vclockVirtual returns a fresh virtual clock at the campaign epoch.
func vclockVirtual() *vclock.Virtual { return vclock.NewVirtual(Epoch) }

// ---------------------------------------------------------------------------
// Inventory ablation (§4.4 Task 3)

// InventoryRow is one sweep point of the prepared-configuration trade-off.
type InventoryRow struct {
	Fraction   float64
	GPUMeanPct float64
	CPUMeanPct float64
}

// InventoryAblation sweeps the prepared-configuration inventory size — the
// paper's readiness-vs-staleness knob ("the sizes of these sets are a
// trade-off between readiness for availability of resources and simulating
// stale configurations"; it "governs the utilization of CPUs"). Small
// inventories starve GPU turnover; large ones burn CPU cores banking
// configurations that go stale.
func InventoryAblation(fractions []float64, seed int64) ([]InventoryRow, error) {
	var rows []InventoryRow
	for _, f := range fractions {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Runs = []RunSpec{{Nodes: 8, Wall: 72 * time.Hour, Count: 1}}
		cfg.PatchesPerSnapshot = 20
		cfg.PatchQueueCap = 500
		cfg.SubmitPerMinute = 300
		cfg.SchedPolicy = sched.FirstMatch
		cfg.SchedMode = sched.Async
		cfg.ModelStatusLoad = false
		cfg.RetireMeanCG = units.Microsecond
		cfg.RetireMeanAA = 40 * units.Nanosecond
		cfg.InventoryFraction = f
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		var gpu, cpu stats.Summary
		// Skip the cold ramp: only the second half of the run reflects the
		// steady-state trade-off.
		evs := res.ProfileEvents[len(res.ProfileEvents)/2:]
		for _, ev := range evs {
			gpu.Add(ev.GPUFrac * 100)
			cpu.Add(ev.CPUFrac * 100)
		}
		rows = append(rows, InventoryRow{Fraction: f, GPUMeanPct: gpu.Mean(), CPUMeanPct: cpu.Mean()})
	}
	return rows, nil
}

// InventoryText renders the sweep.
func InventoryText(rows []InventoryRow) string {
	t := stats.Table{Header: []string{"inventory (x slots)", "GPU mean %", "CPU mean %"}}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f", r.Fraction),
			fmt.Sprintf("%.1f", r.GPUMeanPct), fmt.Sprintf("%.1f", r.CPUMeanPct))
	}
	return "# inventory ablation: prepared-configuration buffer sizing (steady state)\n" +
		"# (paper: a full buffer prevents new setup jobs; too small starves GPUs)\n" + t.String()
}

package campaign

import (
	"fmt"
	"time"

	"mummi/internal/faults"
)

// Options is the shared CLI-facing campaign builder: the one entry point
// through which mummi-sim campaign, mummi-run, mummi-bench, the trace
// layer, and the scenario-matrix runner turn flag-level knobs into a
// Config. Hoisting it here keeps the flag semantics (scale factors, fault
// plan parsing, fault-seed defaulting) identical across every command.
type Options struct {
	// Scale shrinks the paper schedule via ScaledRuns when it is in (0, 1);
	// 0 or 1 keeps the full Table 1 schedule.
	Scale float64
	// Seed is the campaign seed; it also seeds the fault plan when the plan
	// does not carry its own.
	Seed int64
	// Scales selects the scale regime; empty keeps the default (ThreeScale).
	Scales ScaleMode
	// Workers is the selector rank-update fan-out (0 = GOMAXPROCS).
	Workers int
	// FeedbackEvery is the Task-4 feedback cadence (0 = off).
	FeedbackEvery time.Duration
	// FaultSpec is the -faults flag value: a JSON plan file, inline JSON, or
	// the class:rate DSL (see faults.ParseFlag); empty means no chaos.
	FaultSpec string
	// WMInstances sizes the distributed WM fleet (0 or 1 = the classic
	// single-WM loop; see Config.WMInstances).
	WMInstances int
}

// Build resolves the options into a campaign configuration. The returned
// Config carries no runtime attachments (telemetry, heartbeat writer);
// callers wire those afterwards.
func (o Options) Build() (Config, error) {
	cfg := DefaultConfig()
	cfg.Seed = o.Seed
	cfg.SelectorWorkers = o.Workers
	cfg.FeedbackEvery = o.FeedbackEvery
	if o.WMInstances < 0 {
		return Config{}, fmt.Errorf("campaign: wm instances must be >= 1, got %d", o.WMInstances)
	}
	if o.WMInstances > 0 {
		cfg.WMInstances = o.WMInstances
	}
	if o.Scales != "" {
		if !o.Scales.Valid() {
			return Config{}, fmt.Errorf("campaign: unknown scale mode %q", o.Scales)
		}
		cfg.Scales = o.Scales
	}
	if o.Scale > 0 && o.Scale < 1 {
		cfg.Runs = ScaledRuns(o.Scale)
	}
	if o.FaultSpec != "" {
		plan, err := faults.ParseFlag(o.FaultSpec)
		if err != nil {
			return Config{}, err
		}
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		cfg.Faults = plan
	}
	return cfg, nil
}

package campaign

import (
	"strings"
	"testing"
	"time"
)

func TestFig7KVQueries(t *testing.T) {
	rows, err := Fig7KVQueries([]int{100, 500, 2000}, 4, 850)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape claims: time grows with frame count; value reads are the
	// slowest of the three query types (paper: ~2k reads/s vs ~10k
	// keys+dels/s).
	if rows[2].RetrieveKeys <= rows[0].RetrieveKeys/2 {
		t.Errorf("key scan not growing with frames: %v vs %v",
			rows[0].RetrieveKeys, rows[2].RetrieveKeys)
	}
	big := rows[2]
	if big.RetrieveValues <= big.RetrieveKeys/2 {
		t.Logf("note: value reads unusually fast (%v vs keys %v)", big.RetrieveValues, big.RetrieveKeys)
	}
	out := Fig7Text(rows)
	if !strings.Contains(out, "Fig 7") || !strings.Contains(out, "2000") {
		t.Errorf("Fig7Text malformed:\n%s", out)
	}
}

func TestFig8AAFeedback(t *testing.T) {
	res := Fig8AAFeedback(400, 6, 2*time.Second, 1)
	if len(res.Rows) != 400 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.WithinTarget < 0.9 {
		t.Errorf("within-target fraction = %.2f, want > 0.9 (paper 0.97)", res.WithinTarget)
	}
	if res.WithinTarget == 1 {
		t.Error("no iteration missed the target: backlog bursts missing")
	}
	// Linear scaling past the knee: a 6400-frame iteration takes ~4x a
	// 1600-frame one.
	var small, large time.Duration
	var nSmall, nLarge int
	for _, r := range res.Rows {
		if r.Frames > 1500 && r.Frames < 2500 {
			small += r.Time
			nSmall++
		}
		if r.Frames > 5500 {
			large += r.Time
			nLarge++
		}
	}
	if nSmall > 0 && nLarge > 0 {
		ratio := float64(large/time.Duration(nLarge)) / float64(small/time.Duration(nSmall))
		if ratio < 2 || ratio > 5 {
			t.Errorf("scaling ratio = %.1f, want ~3 (linear)", ratio)
		}
	}
	if !strings.Contains(Fig8Text(res), "10-min target") {
		t.Error("Fig8Text malformed")
	}
}

func TestFluxFixSmall(t *testing.T) {
	// Scaled-down emulation: 200 nodes, 1200 GPU jobs.
	res, err := FluxFix670(200, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExhaustiveVisits <= res.FirstMatchVisits {
		t.Fatalf("exhaustive (%d) not slower than first-match (%d)",
			res.ExhaustiveVisits, res.FirstMatchVisits)
	}
	// The improvement should be orders of magnitude even at this scale.
	if res.VisitRatio() < 50 {
		t.Errorf("visit ratio = %.0f, want >> 50", res.VisitRatio())
	}
	if !strings.Contains(FluxFixText(res), "improvement") {
		t.Error("FluxFixText malformed")
	}
}

func TestTaridxThroughputSmall(t *testing.T) {
	res, err := TaridxThroughput(t.TempDir(), 200, 156_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inodes != 2 {
		t.Errorf("inodes = %d, want 2 (tar + index)", res.Inodes)
	}
	if res.FilesPerSec() <= 0 || res.MBPerSec() <= 0 {
		t.Error("throughput not measured")
	}
	if !strings.Contains(TaridxText(res), "files/s") {
		t.Error("TaridxText malformed")
	}
}

func TestFeedback12xSmall(t *testing.T) {
	res, err := Feedback12x(t.TempDir(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FSTime <= 0 || res.KVTime <= 0 {
		t.Fatal("times not measured")
	}
	// On local disk the gap is narrower than GPFS-vs-Redis, but the
	// database path must not lose.
	if res.Speedup() < 1.0 {
		t.Errorf("kv backend slower than fs: %.2fx", res.Speedup())
	}
	if !strings.Contains(FeedbackText(res), "speedup") {
		t.Error("FeedbackText malformed")
	}
}

func TestSelectorScalingSmall(t *testing.T) {
	res, err := SelectorScaling(5000, 200_000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FPSUpdateTime <= 0 {
		t.Error("FPS update not measured")
	}
	// Binned ingest at 40x the FPS queue size must still be cheap: the O(1)
	// add is the design point that buys the paper its 165x capacity.
	perAdd := res.BinnedAddTime / time.Duration(res.BinnedN)
	if perAdd > 10*time.Microsecond {
		t.Errorf("binned add = %v each, want O(µs)", perAdd)
	}
	if res.CandidateRatio != 40 {
		t.Errorf("candidate ratio = %v", res.CandidateRatio)
	}
	if !strings.Contains(SelectorText(res), "selector scaling") {
		t.Error("SelectorText malformed")
	}
}

func TestBundlingAblationSmall(t *testing.T) {
	res, err := BundlingAblation(4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Unbundled must beat bundled on both utilization and makespan.
	if res.UnbundledUtil <= res.BundledUtilization {
		t.Errorf("unbundled util %.2f <= bundled %.2f",
			res.UnbundledUtil, res.BundledUtilization)
	}
	if res.UnbundledMakespan >= res.BundledMakespan {
		t.Errorf("unbundled makespan %v >= bundled %v",
			res.UnbundledMakespan, res.BundledMakespan)
	}
	if !strings.Contains(BundlingText(res), "bundling ablation") {
		t.Error("BundlingText malformed")
	}
}

func TestInventoryAblation(t *testing.T) {
	rows, err := InventoryAblation([]float64{0.02, 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A starved inventory must cost GPU occupancy relative to a healthy one.
	if rows[0].GPUMeanPct >= rows[1].GPUMeanPct {
		t.Errorf("tiny inventory GPU %.1f%% not below healthy %.1f%%",
			rows[0].GPUMeanPct, rows[1].GPUMeanPct)
	}
	if !strings.Contains(InventoryText(rows), "inventory ablation") {
		t.Error("InventoryText malformed")
	}
}

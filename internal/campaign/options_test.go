package campaign

import (
	"reflect"
	"testing"
	"time"
)

func TestOptionsBuild(t *testing.T) {
	cfg, err := Options{Scale: 0.05, Seed: 9, FeedbackEvery: time.Hour}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.FeedbackEvery != time.Hour {
		t.Errorf("seed/feedback not applied: %d, %v", cfg.Seed, cfg.FeedbackEvery)
	}
	if !reflect.DeepEqual(cfg.Runs, ScaledRuns(0.05)) {
		t.Error("scale 0.05 should select the scaled schedule")
	}
	if cfg.Scales != ThreeScale {
		t.Errorf("empty Scales should default to three-scale, got %q", cfg.Scales)
	}

	full, err := Options{Scale: 1.0, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Runs, DefaultConfig().Runs) {
		t.Error("scale 1.0 should keep the full paper schedule")
	}

	if _, err := (Options{Seed: 1, Scales: "four-scale"}).Build(); err == nil {
		t.Error("invalid scale mode accepted")
	}
	if _, err := (Options{Seed: 1, FaultSpec: "bogus-class:1"}).Build(); err == nil {
		t.Error("invalid fault spec accepted")
	}

	cfg, err = Options{Seed: 4, FaultSpec: "node-crash:2"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil || cfg.Faults.Seed != 4 {
		t.Errorf("fault plan should inherit the campaign seed, got %+v", cfg.Faults)
	}
}

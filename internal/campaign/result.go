package campaign

import (
	"fmt"
	"strings"
	"time"

	"mummi/internal/profile"
	"mummi/internal/stats"
	"mummi/internal/units"
)

// RunLedger records one completed allocation (a Table 1 entry, unrolled).
type RunLedger struct {
	Nodes     int             `json:"nodes"`
	Wall      time.Duration   `json:"wall"`
	NodeHours units.NodeHours `json:"node_hours"`
}

// PerfSample is one simulation's (system size, rate) pair for Fig. 4.
type PerfSample struct {
	Size   int     `json:"size"`
	PerDay float64 `json:"per_day"`
}

// TimelinePoint is one job placement relative to its run's start (Fig. 6).
type TimelinePoint struct {
	Offset time.Duration `json:"offset"`
	Job    int64         `json:"job"`
}

// Result aggregates everything the §5 evaluation reports.
type Result struct {
	// Table 1.
	Table1         []RunLedger     `json:"table1"`
	RunsDone       int             `json:"runs_done"`
	TotalNodeHours units.NodeHours `json:"total_node_hours"`

	// MatcherVisits is R's cumulative vertex-visit count across all
	// allocations — the modeled match-cost ledger the hot-path trajectory
	// (DESIGN.md §11) tracks alongside wall-clock.
	MatcherVisits int64 `json:"matcher_visits"`

	// §5.1 campaign counts.
	Snapshots         int           `json:"snapshots"`
	ContinuumTotal    units.SimTime `json:"continuum_total_fs"`
	Patches           int64         `json:"patches"`
	CGSelected        int           `json:"cg_selected"`
	CGFrames          int64         `json:"cg_frames"`
	CGFrameCandidates int64         `json:"cg_frame_candidates"`
	AASelected        int           `json:"aa_selected"`
	CGTotal           units.SimTime `json:"cg_total_fs"`
	AATotal           units.SimTime `json:"aa_total_fs"`

	// Fig. 3 length distributions.
	CGLengthsUs []float64 `json:"-"`
	AALengthsNs []float64 `json:"-"`

	// Fig. 4 performance samples.
	ContinuumPerf []float64    `json:"-"`
	CGPerf        []PerfSample `json:"-"`
	AAPerf        []PerfSample `json:"-"`

	// Fig. 5 occupancy.
	ProfileEvents []profile.Event `json:"-"`

	// Fig. 6 placement timelines.
	Timeline1000 []TimelinePoint `json:"-"`
	Timeline4000 []TimelinePoint `json:"-"`

	// §5.2 data ledger.
	Files int64 `json:"files"`
	Bytes int64 `json:"bytes"`

	// InjectedFailures counts simulation jobs killed by failure injection
	// (all resubmitted by the workflow; see Config.FailuresPerDay).
	InjectedFailures int `json:"injected_failures"`

	// Chaos-replay fault ledger (Config.Faults). Timed faults are also
	// recorded individually in Anomalies; store-level faults are too chatty
	// for that and are counted here and in telemetry only.
	NodeCrashes    int `json:"node_crashes,omitempty"`
	JobHangs       int `json:"job_hangs,omitempty"`
	WMRestarts     int `json:"wm_restarts,omitempty"`
	StorePutErrors int `json:"store_put_errors,omitempty"`

	// Distributed-WM fleet ledger (Config.WMInstances > 1): instance
	// crashes, couplings adopted by survivors, and expired-lease takeovers
	// (see internal/wmfleet). Zero-valued — and therefore absent from the
	// JSON — in single-WM campaigns.
	WMCrashes        int `json:"wm_crashes,omitempty"`
	WMAdoptions      int `json:"wm_adoptions,omitempty"`
	LeaseExpirations int `json:"lease_expirations,omitempty"`

	// Anomalies records events that were survivable but must not vanish
	// (errdiscipline): coordination errors (e.g. a failure-injection victim
	// the scheduler no longer considered running) and, in chaos replays,
	// every injected timed fault and recovery ("fault:"-prefixed lines).
	// Both kinds are deterministic per seed; a replay that produces a
	// different list has diverged.
	Anomalies []string `json:"anomalies,omitempty"`

	// Derived headline statistics, filled by finalize.
	GPUAtLeast98Frac float64 `json:"gpu_at_least_98_frac"`
	GPUMeanPct       float64 `json:"gpu_mean_pct"`
	GPUMedianPct     float64 `json:"gpu_median_pct"`
	CPUMeanPct       float64 `json:"cpu_mean_pct"`
	CPUMedianPct     float64 `json:"cpu_median_pct"`
	ArchiveCount     int64   `json:"archive_count"`
}

func newResult() *Result { return &Result{} }

// filesPerArchive is the campaign's observed packing density
// (1,034,232,900 files / 114,552 archives ≈ 9028 — the "9000× reduction").
const filesPerArchive = 9028

func (r *Result) finalize() {
	r.GPUAtLeast98Frac, r.GPUMeanPct, r.GPUMedianPct = profile.Headline(r.ProfileEvents, 98)
	var cpu stats.Summary
	cpuVals := make([]float64, 0, len(r.ProfileEvents))
	for _, ev := range r.ProfileEvents {
		cpu.Add(ev.CPUFrac * 100)
		cpuVals = append(cpuVals, ev.CPUFrac*100)
	}
	r.CPUMeanPct = cpu.Mean()
	r.CPUMedianPct = stats.Median(cpuVals)
	r.ArchiveCount = r.Files / filesPerArchive
}

// Table1Text renders the Table 1 reproduction, aggregated like the paper.
func (r *Result) Table1Text() string {
	type agg struct {
		wall  time.Duration
		count int
		nh    units.NodeHours
	}
	byKey := map[string]*agg{}
	var order []string
	for _, l := range r.Table1 {
		key := fmt.Sprintf("%d/%s", l.Nodes, l.Wall)
		a, ok := byKey[key]
		if !ok {
			a = &agg{wall: l.Wall}
			byKey[key] = a
			order = append(order, key)
		}
		a.count++
		a.nh += l.NodeHours
	}
	t := stats.Table{Header: []string{"#nodes", "wall-time", "#runs", "node hours"}}
	for _, key := range order {
		a := byKey[key]
		nodes := strings.SplitN(key, "/", 2)[0]
		t.AddRow(nodes, fmt.Sprintf("%.0f hours", a.wall.Hours()),
			fmt.Sprintf("%d", a.count), fmt.Sprintf("%.0f", float64(a.nh)))
	}
	t.AddRow("total", "", fmt.Sprintf("%d", r.RunsDone), fmt.Sprintf("%.0f", float64(r.TotalNodeHours)))
	return t.String()
}

// Fig3Text renders the simulation-length histograms.
func (r *Result) Fig3Text() string {
	cg := stats.NewHistogram(0, 5.0001, 25)
	for _, v := range r.CGLengthsUs {
		cg.Add(v)
	}
	aa := stats.NewHistogram(0, 70, 35)
	for _, v := range r.AALengthsNs {
		aa.Add(v)
	}
	return cg.Render(fmt.Sprintf("Fig 3 (CG): simulation length (µs), total=%d", len(r.CGLengthsUs))) +
		aa.Render(fmt.Sprintf("Fig 3 (AA): simulation length (ns), total=%d", len(r.AALengthsNs)))
}

// Fig4Text renders the per-scale performance distributions.
func (r *Result) Fig4Text() string {
	cont := stats.NewHistogram(0, 1.1, 22)
	for _, v := range r.ContinuumPerf {
		cont.Add(v)
	}
	var cg, aa stats.Summary
	for _, s := range r.CGPerf {
		cg.Add(s.PerDay)
	}
	for _, s := range r.AAPerf {
		aa.Add(s.PerDay)
	}
	var b strings.Builder
	b.WriteString(cont.Render("Fig 4 (continuum): performance (ms/day)"))
	fmt.Fprintf(&b, "# Fig 4 (CG): µs/day vs system size: %s\n", cg.String())
	fmt.Fprintf(&b, "# Fig 4 (AA): ns/day vs system size: %s\n", aa.String())
	return b.String()
}

// Fig5Text renders the occupancy distributions and headline claims.
func (r *Result) Fig5Text() string {
	gpu, cpu := profile.OccupancyHistograms(r.ProfileEvents, 20)
	var b strings.Builder
	b.WriteString(gpu.Render("Fig 5: GPU occupancy (%) over profile events"))
	b.WriteString(cpu.Render("Fig 5: CPU occupancy (%) over profile events"))
	fmt.Fprintf(&b, "GPU occupancy >= 98%% for %.1f%% of the time (paper: >83%%)\n",
		r.GPUAtLeast98Frac*100)
	fmt.Fprintf(&b, "GPU mean %.2f%% median %.2f%% (paper: 93.73%% / 99.93%%)\n",
		r.GPUMeanPct, r.GPUMedianPct)
	fmt.Fprintf(&b, "CPU mean %.2f%% median %.2f%% (paper: 54.12%% / 50.48%%)\n",
		r.CPUMeanPct, r.CPUMedianPct)
	return b.String()
}

// Fig6Text renders running-job counts over time for the kept runs.
func (r *Result) Fig6Text() string {
	var b strings.Builder
	render := func(name string, tl []TimelinePoint, horizon time.Duration) {
		if len(tl) == 0 {
			fmt.Fprintf(&b, "# Fig 6 (%s): no timeline captured\n", name)
			return
		}
		fmt.Fprintf(&b, "# Fig 6 (%s): cumulative GPU-job placements vs time\n", name)
		fmt.Fprintf(&b, "%12s %8s\n", "hour", "placed")
		step := 30 * time.Minute
		i := 0
		for t := step; t <= horizon; t += step {
			for i < len(tl) && tl[i].Offset <= t {
				i++
			}
			fmt.Fprintf(&b, "%12.1f %8d\n", t.Hours(), i)
			if i >= len(tl) && t > tl[len(tl)-1].Offset {
				break
			}
		}
	}
	render("1000 nodes", r.Timeline1000, 24*time.Hour)
	render("4000 nodes", r.Timeline4000, 24*time.Hour)
	return b.String()
}

// CountsText renders the §5.1 campaign counts against the paper's.
func (r *Result) CountsText() string {
	t := stats.Table{Header: []string{"quantity", "measured", "paper"}}
	t.AddRow("node hours", fmt.Sprintf("%.0f", float64(r.TotalNodeHours)), "600,600")
	t.AddRow("continuum snapshots", fmt.Sprintf("%d", r.Snapshots), "20,507")
	t.AddRow("continuum total (ms)", fmt.Sprintf("%.2f", r.ContinuumTotal.Milliseconds()), "20.5")
	t.AddRow("patches", fmt.Sprintf("%d", r.Patches), "6,828,831")
	t.AddRow("CG sims selected", fmt.Sprintf("%d", r.CGSelected), "34,523")
	t.AddRow("CG selected fraction", fmt.Sprintf("%.3f%%", pct(int64(r.CGSelected), r.Patches)), "0.5%")
	t.AddRow("CG total (ms)", fmt.Sprintf("%.2f", r.CGTotal.Milliseconds()), "96.67")
	t.AddRow("CG frame candidates", fmt.Sprintf("%d", r.CGFrameCandidates), "9,837,316")
	t.AddRow("AA sims selected", fmt.Sprintf("%d", r.AASelected), "9,632")
	t.AddRow("AA selected fraction", fmt.Sprintf("%.3f%%", pct(int64(r.AASelected), r.CGFrameCandidates)), "0.098%")
	t.AddRow("AA total (µs)", fmt.Sprintf("%.1f", r.AATotal.Microseconds()), "326")
	t.AddRow("files", fmt.Sprintf("%d", r.Files), "1,034,232,900")
	t.AddRow("archives (@9028 files)", fmt.Sprintf("%d", r.ArchiveCount), "114,552")
	t.AddRow("data (TB)", fmt.Sprintf("%.1f", float64(r.Bytes)/1e12), "several TB/day")
	return t.String()
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

package campaign

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mummi/internal/telemetry"
)

// telemetryCfg is smallCfg with the full observability surface on: tracing,
// feedback (Task 4), and a heartbeat into buf.
func telemetryCfg(seed int64, buf *bytes.Buffer) (Config, *telemetry.Telemetry) {
	tel := telemetry.New(telemetry.Options{Trace: true})
	cfg := smallCfg(seed)
	cfg.Runs = []RunSpec{{Nodes: 4, Wall: 12 * time.Hour, Count: 1}}
	cfg.Telemetry = tel
	cfg.FeedbackEvery = 30 * time.Minute
	if buf != nil {
		cfg.HeartbeatEvery = time.Hour
		cfg.HeartbeatWriter = buf
	}
	return cfg, tel
}

func TestCampaignTelemetryEndToEnd(t *testing.T) {
	var hb bytes.Buffer
	cfg, tel := telemetryCfg(11, &hb)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	// All four WM task spans plus scheduler match spans must be present —
	// the trace acceptance surface.
	names := tel.Tracer().SpanNames()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"task1.ingest", "task2.select", "task3.poll", "task4.feedback", "match", "select", "allocation"} {
		if !have[want] {
			t.Errorf("trace is missing span %q (have %v)", want, names)
		}
	}

	// Nonzero counters for every instrumented layer: WM tasks, scheduler,
	// datastore, selector.
	reg := tel.Registry()
	for _, name := range []string{
		"wm.candidates_total{coupling=continuum-to-cg}", // Task 1
		"wm.selections_total{coupling=continuum-to-cg}", // Task 2
		"wm.polls_total",                                // Task 3
		"wm.sims_launched_total{coupling=continuum-to-cg}",
		"wm.sims_completed_total{coupling=continuum-to-cg}",
		"wm.feedback_runs_total{coupling=continuum-to-cg}", // Task 4
		"wm.feedback_runs_total{coupling=cg-to-aa}",
		"sched.submitted_total",
		"sched.matches_total",
		"sched.started_total",
		"sched.completed_total",
		"store.ops_total{backend=memory,op=keys}",
		"store.ops_total{backend=memory,op=move}",
		"store.write_bytes_total{backend=memory}",
		"dynim.selected_total",
	} {
		if got := reg.Counter(name).Value(); got == 0 {
			t.Errorf("counter %s is zero", name)
		}
	}

	// The exported trace must be valid Chrome trace-event JSON.
	var out bytes.Buffer
	if err := tel.Tracer().Export(&out); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) < 10 {
		t.Fatalf("trace suspiciously small: %d events", len(doc.TraceEvents))
	}

	// Heartbeat lines fired on the virtual clock and carry the status shape.
	lines := strings.Split(strings.TrimSpace(hb.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("expected hourly heartbeats over a 12 h run, got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "gpu=") || !strings.Contains(lines[0], "continuum-to-cg") {
		t.Errorf("heartbeat line malformed: %q", lines[0])
	}
}

// TestCampaignMetricsDeterministic runs the same seeded campaign twice and
// requires byte-identical metric snapshots — the telemetry determinism
// contract (all measurements derive from the virtual clock).
func TestCampaignMetricsDeterministic(t *testing.T) {
	snap := func() []byte {
		cfg, tel := telemetryCfg(42, nil)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		b, err := tel.Registry().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatalf("metric snapshots differ across same-seed runs\nrun1: %.400s\nrun2: %.400s", a, b)
	}
	// The traces must agree too; compare exports.
	trace := func() []byte {
		cfg, tel := telemetryCfg(42, nil)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := tel.Tracer().Export(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	ta, tb := trace(), trace()
	if !bytes.Equal(ta, tb) {
		t.Fatal("trace exports differ across same-seed runs")
	}
}

// TestFeedbackOffPreservesReplay guards the opt-in contract: a campaign
// with telemetry but no feedback must produce the exact Result an
// uninstrumented run does — observability cannot perturb the replay.
func TestFeedbackOffPreservesReplay(t *testing.T) {
	plain, err := Run(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(7)
	cfg.Telemetry = telemetry.New(telemetry.Options{Trace: true})
	instr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	ij, err := json.Marshal(instr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, ij) {
		t.Fatal("instrumented run produced a different Result than the plain run")
	}
}

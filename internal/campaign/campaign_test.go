package campaign

import (
	"strings"
	"testing"
	"time"

	"mummi/internal/sched"
	"mummi/internal/units"
)

// smallCfg is a laptop-scale campaign: 3 allocations on a few nodes with
// fast scheduling so tests stay quick.
func smallCfg(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Runs = []RunSpec{
		{Nodes: 4, Wall: 12 * time.Hour, Count: 1},
		{Nodes: 8, Wall: 24 * time.Hour, Count: 2},
	}
	cfg.PatchesPerSnapshot = 20
	cfg.PatchQueueCap = 500
	cfg.SubmitPerMinute = 300
	cfg.SchedPolicy = sched.FirstMatch
	cfg.SchedMode = sched.Async
	cfg.ModelStatusLoad = false
	cfg.FrameCandidateSubsample = 1.0
	cfg.KeepTimelines = true
	// Short simulations so several complete within the runs.
	cfg.RetireMeanCG = 300 * units.Nanosecond
	cfg.RetireMeanAA = 5 * units.Nanosecond
	return cfg
}

func TestSmallCampaignEndToEnd(t *testing.T) {
	res, err := Run(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.RunsDone != 3 {
		t.Errorf("RunsDone = %d", res.RunsDone)
	}
	wantNH := units.NodeHoursFor(4, 12*time.Hour) + 2*units.NodeHoursFor(8, 24*time.Hour)
	if res.TotalNodeHours != wantNH {
		t.Errorf("TotalNodeHours = %v, want %v", res.TotalNodeHours, wantNH)
	}
	if res.Snapshots == 0 || res.Patches == 0 {
		t.Fatalf("no continuum data: snapshots=%d patches=%d", res.Snapshots, res.Patches)
	}
	if res.Patches != int64(res.Snapshots*20) {
		t.Errorf("patches = %d for %d snapshots", res.Patches, res.Snapshots)
	}
	if res.CGSelected == 0 {
		t.Fatal("no CG simulations selected")
	}
	if res.CGSelected > int(res.Patches) {
		t.Error("selected more CG sims than patches")
	}
	if len(res.CGLengthsUs) == 0 {
		t.Fatal("no CG simulation lengths recorded")
	}
	for _, l := range res.CGLengthsUs {
		if l < 0 || l > 5.0001 {
			t.Fatalf("CG length %v µs outside [0, 5]", l)
		}
	}
	for _, l := range res.AALengthsNs {
		if l < 0 || l > 65.0001 {
			t.Fatalf("AA length %v ns outside [0, 65]", l)
		}
	}
	// Conservation: recorded lengths sum to the totals.
	var sum float64
	for _, l := range res.CGLengthsUs {
		sum += l
	}
	if diff := sum - res.CGTotal.Microseconds(); diff > 0.01 || diff < -0.01 {
		t.Errorf("CG lengths sum %v != total %v", sum, res.CGTotal.Microseconds())
	}
	if res.CGFrames == 0 || res.CGFrameCandidates == 0 {
		t.Errorf("no CG frames/candidates: %d/%d", res.CGFrames, res.CGFrameCandidates)
	}
	if res.Files == 0 || res.Bytes == 0 {
		t.Error("empty data ledger")
	}
	if len(res.ProfileEvents) == 0 {
		t.Fatal("no profile events")
	}
	// 60 hours of profiling at 10-minute cadence.
	if got := len(res.ProfileEvents); got < 350 || got > 362 {
		t.Errorf("profile events = %d, want ~360", got)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := Run(smallCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.CGSelected != b.CGSelected || a.AASelected != b.AASelected ||
		a.Snapshots != b.Snapshots || a.CGFrameCandidates != b.CGFrameCandidates ||
		a.CGTotal != b.CGTotal || a.Files != b.Files {
		t.Errorf("same seed diverged:\n%+v\n%+v", summary(a), summary(b))
	}
}

func TestCampaignSeedSensitivity(t *testing.T) {
	a, _ := Run(smallCfg(1))
	b, _ := Run(smallCfg(2))
	if a.CGTotal == b.CGTotal && a.CGSelected == b.CGSelected && a.Files == b.Files {
		t.Error("different seeds produced identical campaigns")
	}
}

func TestSimulationsResumeAcrossRuns(t *testing.T) {
	// Long sims (mean ≈ cap, 5 µs ≈ 4.8 days) cannot finish inside a 24 h
	// allocation; completions require checkpoint-resume across runs.
	cfg := smallCfg(5)
	cfg.RetireMeanCG = 100 * units.Microsecond // effectively always 5 µs target
	cfg.Runs = []RunSpec{{Nodes: 4, Wall: 24 * time.Hour, Count: 7}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, l := range res.CGLengthsUs {
		if l > 4.999 {
			full++
		}
	}
	if full == 0 {
		t.Errorf("no CG sim reached 5 µs across 7 days (lengths: n=%d, max=%v)",
			len(res.CGLengthsUs), maxOf(res.CGLengthsUs))
	}
	// And progress is strictly more than one allocation could deliver:
	// 4 nodes × 24 GPUs... (4 nodes × 6 GPUs × 0.8 share ≈ 19 slots) at
	// ~1.04 µs/day each → >7 days of slot-time must show up in totals.
	if res.CGTotal < 50*units.Microsecond {
		t.Errorf("CG total %v too small for a 7-day campaign", res.CGTotal)
	}
}

func TestOccupancyReachesSteadyState(t *testing.T) {
	cfg := smallCfg(9)
	// Realistic simulation lengths (≈1 µs ≈ a day of GPU time): the setup
	// pipeline easily keeps up, as in the real campaign. The very short
	// sims in smallCfg would demand more setup throughput than one
	// 24-core setup slot per node can deliver — a real design limit.
	cfg.RetireMeanCG = units.Microsecond
	cfg.RetireMeanAA = 40 * units.Nanosecond
	cfg.Runs = []RunSpec{{Nodes: 8, Wall: 72 * time.Hour, Count: 1}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After the load phase, GPU occupancy should be high; check the last
	// quarter of profile events.
	evs := res.ProfileEvents
	tail := evs[3*len(evs)/4:]
	var mean float64
	for _, ev := range tail {
		mean += ev.GPUFrac
	}
	mean /= float64(len(tail))
	if mean < 0.7 {
		t.Errorf("steady-state GPU occupancy = %.2f, want > 0.7", mean)
	}
}

func TestTimelinesCaptured(t *testing.T) {
	cfg := smallCfg(2)
	cfg.Runs = []RunSpec{
		{Nodes: 1000, Wall: time.Hour, Count: 1}, // captured as "1000-node"
	}
	cfg.PatchesPerSnapshot = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline1000) == 0 {
		t.Fatal("1000-node timeline not captured")
	}
	for i := 1; i < len(res.Timeline1000); i++ {
		if res.Timeline1000[i].Offset < res.Timeline1000[i-1].Offset {
			t.Fatal("timeline out of order")
		}
	}
}

func TestReportRendering(t *testing.T) {
	res, err := Run(smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table1Text(), "node hours") {
		t.Error("Table1Text malformed")
	}
	if !strings.Contains(res.Fig3Text(), "Fig 3 (CG)") {
		t.Error("Fig3Text malformed")
	}
	if !strings.Contains(res.Fig4Text(), "ms/day") {
		t.Error("Fig4Text malformed")
	}
	if !strings.Contains(res.Fig5Text(), "GPU occupancy") {
		t.Error("Fig5Text malformed")
	}
	if !strings.Contains(res.Fig6Text(), "Fig 6") {
		t.Error("Fig6Text malformed")
	}
	if !strings.Contains(res.CountsText(), "CG sims selected") {
		t.Error("CountsText malformed")
	}
}

func TestScaledRuns(t *testing.T) {
	full := PaperRuns()
	var nh units.NodeHours
	for _, r := range full {
		nh += r.NodeHours()
	}
	if nh != 600600 {
		t.Errorf("paper schedule = %v node-hours, want 600600", nh)
	}
	small := ScaledRuns(0.1)
	if len(small) != len(full) {
		t.Errorf("scaled schedule lost rows")
	}
	for i, r := range small {
		if r.Nodes >= full[i].Nodes && full[i].Nodes > 20 {
			t.Errorf("row %d not scaled down: %+v", i, r)
		}
		if r.Count < 1 || r.Nodes < 2 {
			t.Errorf("row %d degenerate: %+v", i, r)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Runs: []RunSpec{}}); err == nil {
		// withDefaults fills nil Runs but an explicitly empty schedule is
		// an error.
		t.Error("empty schedule accepted")
	}
}

func summary(r *Result) map[string]int64 {
	return map[string]int64{
		"cg":    int64(r.CGSelected),
		"aa":    int64(r.AASelected),
		"snap":  int64(r.Snapshots),
		"cand":  r.CGFrameCandidates,
		"files": r.Files,
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestFailureInjectionResubmitsWithoutLosingProgress(t *testing.T) {
	cfg := smallCfg(13)
	cfg.RetireMeanCG = units.Microsecond
	cfg.Runs = []RunSpec{{Nodes: 8, Wall: 72 * time.Hour, Count: 1}}
	cfg.FailuresPerDay = 24 // aggressive: ~one failure per hour offered
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedFailures == 0 {
		t.Fatal("no failures injected at 24/day over 3 days")
	}
	// The campaign still makes normal progress: lengths recorded, totals
	// conserved (progress banked at failure, resumed afterwards).
	if len(res.CGLengthsUs) == 0 || res.CGTotal == 0 {
		t.Fatalf("campaign stalled under failures: %d lengths", len(res.CGLengthsUs))
	}
	var sum float64
	for _, l := range res.CGLengthsUs {
		sum += l
	}
	if diff := sum - res.CGTotal.Microseconds(); diff > 0.01 || diff < -0.01 {
		t.Errorf("length/total conservation broken under failures: %v vs %v",
			sum, res.CGTotal.Microseconds())
	}
	for _, l := range res.CGLengthsUs {
		if l > 5.0001 {
			t.Fatalf("failure handling exceeded the 5 µs cap: %v", l)
		}
	}
}

package campaign

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/core"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/faults"
	"mummi/internal/maestro"
	"mummi/internal/profile"
	"mummi/internal/sched"
	"mummi/internal/sim"
	"mummi/internal/telemetry"
	"mummi/internal/units"
	"mummi/internal/vclock"
)

// Epoch is when the paper's campaign began (Dec 2020).
var Epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

type simKind int

const (
	kindCG simKind = iota
	kindAA
)

// simRecord tracks one simulation across allocations (the paper's
// checkpoint/restart continuity).
type simRecord struct {
	kind     simKind
	target   units.SimTime
	progress units.SimTime
	// candMark is the progress up to which AA-candidate frames have been
	// accounted.
	candMark units.SimTime
	rate     units.Rate
	size     int
	// base seeds this simulation's conformational region (frame-candidate
	// coordinates cluster around it).
	base [3]float64
	done bool
}

// Campaign is the replay engine. Create with NewCampaign, drive with Run.
type Campaign struct {
	cfg Config
	clk *vclock.Virtual
	rng *rand.Rand
	tel *telemetry.Telemetry

	patchSel dynim.Selector
	queueSet *dynim.QueueSet
	frameSel *dynim.Binned

	// Task-4 state (wired when Config.FeedbackEvery > 0): frame records
	// flow through fbStore's active namespaces and the modeled managers
	// move them out ("tagging"). fbSeq numbers records deterministically.
	fbStore datastore.Store
	cgFB    *modeledFeedback
	aaFB    *modeledFeedback
	fbSeq   int64

	// eng injects the chaos plan (nil when Config.Faults is nil).
	eng *faults.Engine

	// fleetStore carries the distributed-WM fleet's lease and checkpoint
	// traffic (wired when Config.WMInstances > 1; shares the feedback
	// store's armored stack when that exists).
	fleetStore datastore.Store

	recs    map[string]*simRecord
	walks   [][]float64 // per-protein 9-D encodings, random-walking
	nextCG  int
	nextAA  int
	candAcc float64 // fractional AA-candidate accumulator
	subAcc  float64 // fractional subsample accumulator

	totalWall   time.Duration
	elapsedWall time.Duration

	res *Result

	// per-run state
	active map[sched.JobID]activeJob
}

type activeJob struct {
	simID string
	rate  units.Rate
	start time.Time
}

// NewCampaign builds the engine.
func NewCampaign(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Runs) == 0 {
		return nil, fmt.Errorf("campaign: no runs configured")
	}
	if !cfg.Scales.Valid() {
		return nil, fmt.Errorf("campaign: unknown scale mode %q", cfg.Scales)
	}
	c := &Campaign{
		cfg:  cfg,
		clk:  vclock.NewVirtual(Epoch),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		recs: make(map[string]*simRecord),
		res:  newResult(),
	}
	// Rebind the caller's telemetry to the campaign's virtual clock before
	// anything measures with it: every span and histogram sample becomes a
	// pure function of the replay.
	c.tel = cfg.Telemetry
	if c.tel != nil {
		c.tel.SetClock(c.clk)
	} else {
		c.tel = telemetry.Nop()
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: bad fault plan: %w", err)
		}
		c.eng = faults.NewEngine(c.clk, c.tel, cfg.Faults)
	}
	if cfg.FeedbackEvery > 0 {
		// Layering order matters: Instrument measures the honest backend,
		// WrapStore injects plan faults on top of it, and Armor retries the
		// transient ones — so retry traffic shows up in the instrumented op
		// counts exactly like a real flaky filesystem would. With no engine
		// WrapStore is a pass-through and Armor only adds its (unused) retry
		// accounting.
		c.fbStore = datastore.Armor(
			faults.WrapStore(datastore.Instrument(datastore.NewMemory(), c.tel, "memory"), c.eng),
			c.tel, "memory", datastore.ArmorOptions{})
		c.cgFB = &modeledFeedback{name: "cg-to-continuum", store: c.fbStore,
			srcNS: "cg-active", dstNS: "cg-done", perProcess: fbCGProcess}
		c.aaFB = &modeledFeedback{name: "aa-to-cg", store: c.fbStore,
			srcNS: "aa-active", dstNS: "aa-done", perProcess: fbAAProcess}
	}
	if cfg.WMInstances > 1 {
		// The fleet's lease/checkpoint traffic crosses the same armored
		// stack as the feedback loop, so injected store faults hit lease
		// renewals exactly like any other store client. Without feedback a
		// dedicated stack is built with identical layering.
		if c.fbStore != nil {
			c.fleetStore = c.fbStore
		} else {
			c.fleetStore = datastore.Armor(
				faults.WrapStore(datastore.Instrument(datastore.NewMemory(), c.tel, "memory"), c.eng),
				c.tel, "memory", datastore.ArmorOptions{})
		}
	}
	for _, r := range cfg.Runs {
		c.totalWall += time.Duration(r.Count) * r.Wall
	}
	c.queueSet = dynim.NewQueueSet(9, cfg.PatchQueueCap)
	c.queueSet.DisableJournal()
	c.queueSet.SetWorkers(cfg.SelectorWorkers)
	c.queueSet.SetTelemetry(cfg.Telemetry)
	c.patchSel = c.queueSet.AsSelector(func(p dynim.Point) string {
		// Five queues by protein configuration, as in the paper; route on a
		// stable hash of the candidate id.
		h := uint32(2166136261)
		for i := 0; i < len(p.ID); i++ {
			h = (h ^ uint32(p.ID[i])) * 16777619
		}
		return patchQueues[h%uint32(len(patchQueues))]
	})
	dims := make([]dynim.BinDim, 3)
	for i := range dims {
		dims[i] = dynim.BinDim{Lo: 0, Hi: 1, Bins: cfg.FrameBins}
	}
	fs, err := dynim.NewBinned(dims, 0.8, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	fs.DisableJournal()
	fs.SetTrackDuplicates(false)
	fs.SetTelemetry(cfg.Telemetry)
	c.frameSel = fs
	// 9-D protein walks seed patch encodings.
	c.walks = make([][]float64, cfg.PatchesPerSnapshot)
	for i := range c.walks {
		w := make([]float64, 9)
		for j := range w {
			w[j] = c.rng.NormFloat64()
		}
		c.walks[i] = w
	}
	return c, nil
}

var patchQueues = []string{"ras-a", "ras-b", "ras-raf-a", "ras-raf-b", "ras-multi"}

// chaosWatchdogGrace is the hung-job watchdog grace factor chaos replays arm
// (a job still running at 1.5× its modeled duration is presumed wedged).
const chaosWatchdogGrace = 1.5

// Run replays the whole campaign and returns the collected results.
func Run(cfg Config) (*Result, error) {
	c, err := NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// Run executes every allocation in sequence.
func (c *Campaign) Run() (*Result, error) {
	var ckpt []byte
	kept1000, kept4000 := false, false
	if c.eng != nil {
		// One schedule for the whole campaign: windows are offsets from the
		// campaign epoch, and pending faults roll across allocation
		// boundaries (handlers are rebound per allocation in runOne).
		c.eng.Start()
		defer c.eng.Stop()
	}
	for _, spec := range c.cfg.Runs {
		for i := 0; i < spec.Count; i++ {
			keep := c.cfg.KeepTimelines &&
				((spec.Nodes >= 1000 && spec.Nodes < 4000 && !kept1000) || (spec.Nodes >= 4000 && !kept4000))
			tl, err := c.runOne(spec, &ckpt, keep)
			if err != nil {
				return nil, err
			}
			if keep && tl != nil {
				if spec.Nodes >= 4000 {
					c.res.Timeline4000 = tl
					kept4000 = true
				} else {
					c.res.Timeline1000 = tl
					kept1000 = true
				}
			}
			c.res.Table1 = append(c.res.Table1, RunLedger{
				Nodes: spec.Nodes, Wall: spec.Wall,
				NodeHours: units.NodeHoursFor(spec.Nodes, spec.Wall),
			})
			c.elapsedWall += spec.Wall
		}
	}
	c.finalizeResult()
	return c.res, nil
}

// mpiBugActive reports whether the campaign is still in the miscompiled-MPI
// era.
func (c *Campaign) mpiBugActive() bool {
	return float64(c.elapsedWall) < c.cfg.MPIBugFraction*float64(c.totalWall)
}

// continuumNodes sizes the continuum allocation for a run (150 nodes when
// the machine affords it, scaled down on small runs — the source of
// Fig. 4's continuum performance modes).
func continuumNodes(nodes int) int {
	n := nodes / 2
	if n > 150 {
		n = 150
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runOne executes a single allocation. ckpt carries WM state across runs.
// Fleet campaigns (WMInstances > 1) branch to the fleet analogue; the
// single-WM path below is untouched by the fleet work, so WMInstances=1
// replays stay event-for-event identical to earlier releases.
func (c *Campaign) runOne(spec RunSpec, ckpt *[]byte, keepTimeline bool) ([]TimelinePoint, error) {
	if c.cfg.WMInstances > 1 {
		return c.runOneFleet(spec, ckpt, keepTimeline)
	}
	machine, err := cluster.New(cluster.Summit(spec.Nodes))
	if err != nil {
		return nil, err
	}
	statusPoll := time.Duration(0)
	if c.cfg.ModelStatusLoad {
		statusPoll = c.cfg.ProfileEvery
	}
	s, err := sched.New(c.clk, sched.Config{
		Machine: machine, Policy: c.cfg.SchedPolicy, Mode: c.cfg.SchedMode,
		Costs: c.cfg.SchedCosts, StatusPollEvery: statusPoll,
		Telemetry: c.tel,
	})
	if err != nil {
		return nil, err
	}
	cond, err := maestro.NewConductor(c.clk, maestro.FluxBackend{S: s}, c.cfg.SubmitPerMinute)
	if err != nil {
		return nil, err
	}

	totalGPUs := machine.Topology().TotalGPUs()
	cgSlots := int(float64(totalGPUs) * c.cfg.CGShare)
	aaSlots := totalGPUs - cgSlots
	if aaSlots < 1 {
		aaSlots = 1
	}
	c.active = make(map[sched.JobID]activeJob)

	// In the three-scale regime a live continuum job occupies contNodes and
	// produces the snapshot stream; in the two-scale (mini-MuMMI) regime the
	// stream is an archive replayed at the same published rate, the nodes
	// stay free for simulations, and no continuum job is scheduled.
	contNodes := continuumNodes(spec.Nodes)
	contRate := sim.ContinuumPerf(contNodes * 24)
	var staticJobs []sched.Request
	if c.cfg.Scales == ThreeScale {
		staticJobs = []sched.Request{
			{Name: "continuum", NodeCount: contNodes, Cores: 24},
		}
	}

	// newWM builds the allocation's workflow manager. It is a closure so the
	// WM-crash fault path can rebuild the manager mid-run with the same
	// shape; the selectors are shared Campaign state, so a rebuilt WM keeps
	// the live selector state (the real system restores selectors from their
	// own checkpoints).
	newWM := func(cond *maestro.Conductor, seed int64) (*core.Workflow, error) {
		var wdGrace float64
		if c.eng != nil {
			// Chaos replays arm the hung-job watchdog: injected job-hang
			// faults are unkillable any other way.
			wdGrace = chaosWatchdogGrace
		}
		return core.New(core.Config{
			Clock:         c.clk,
			Conductor:     cond,
			PollEvery:     c.cfg.PollEvery,
			Seed:          seed,
			Telemetry:     c.tel,
			WatchdogGrace: wdGrace,
			StaticJobs: staticJobs,
			Couplings: []core.CouplingSpec{
				// Setup jobs take 24 of a node's 44 cores, so at most one fits
				// per node: cap the combined ready-buffer targets at the node
				// count or queued setups head-of-line-block simulations
				// (FCFS without backfilling).
				c.cgCoupling(cgSlots, max(2, spec.Nodes*2/3)),
				c.aaCoupling(aaSlots, max(1, spec.Nodes/3)),
			},
		})
	}
	wm, err := newWM(cond, c.cfg.Seed+int64(c.res.RunsDone))
	if err != nil {
		return nil, err
	}
	if *ckpt != nil {
		if err := wm.RestoreState(*ckpt); err != nil {
			return nil, err
		}
	}

	prof := profile.New(c.clk, c.cfg.ProfileEvery, func() profile.Event {
		q, running, _ := s.Counts()
		return profile.Event{
			GPUFrac: machine.GPUOccupancy(),
			CPUFrac: machine.CPUOccupancy(),
			Running: running, Pending: q,
		}
	})

	// Continuum snapshot stream: one snapshot per µs of continuum time.
	runEnd := c.clk.Now().Add(spec.Wall)
	snapshotsActive := true
	var scheduleSnapshot func()
	scheduleSnapshot = func() {
		wall := contRate.WallFor(1 * units.Microsecond)
		c.clk.After(wall, func() {
			if !snapshotsActive || c.clk.Now().After(runEnd) {
				return
			}
			c.onSnapshot(wm, contNodes)
			scheduleSnapshot()
		})
	}
	scheduleSnapshot()

	// Failure injection: every half hour, fail the expected share of
	// running simulation jobs. Progress up to the failure survives (the
	// simulation checkpoints), so the resubmitted job resumes — the
	// paper's resilience path, exercised continuously.
	var failTicker *vclock.Ticker
	if c.cfg.FailuresPerDay > 0 {
		perTick := c.cfg.FailuresPerDay / 48
		failTicker = vclock.NewTicker(c.clk, 30*time.Minute, func(time.Time) {
			if c.rng.Float64() >= perTick {
				return
			}
			victim := c.pickActiveJob()
			if victim == 0 {
				return
			}
			// Bank the progress made so far, then kill the job.
			c.bankActive(victim)
			delete(c.active, victim)
			c.res.InjectedFailures++
			if err := s.Fail(victim); err != nil && !errors.Is(err, sched.ErrAlreadyTerminal) {
				// The victim was picked from the active set, so the
				// scheduler disagreeing about its state is a coordination
				// anomaly worth keeping, not a failure of the run. (Losing
				// to the auto-completion race is benign and filtered.)
				c.res.Anomalies = append(c.res.Anomalies,
					fmt.Sprintf("fail-injection job %d: %v", victim, err))
			}
		})
	}

	// Chaos handlers: rebind the plan's timed fault classes to this
	// allocation's scheduler/machine/WM. runActive gates stale events (a
	// node revival armed in one allocation must not touch the next one's
	// rebuilt machine).
	runActive := true
	if c.eng != nil {
		c.bindCommonChaos(s, machine, &runActive)
		c.eng.SetHandler(faults.WMCrash, func(faults.Rule, *rand.Rand) {
			if !runActive {
				return
			}
			c.restartWM(s, &wm, &cond, newWM)
		})
	}

	// Heartbeat: the terminal stand-in for the paper's live dashboards.
	var hb *telemetry.Heartbeat
	if c.cfg.HeartbeatEvery > 0 && c.cfg.HeartbeatWriter != nil {
		run := c.res.RunsDone + 1
		hb = telemetry.NewHeartbeat(c.clk, c.cfg.HeartbeatEvery, c.cfg.HeartbeatWriter,
			func(now time.Time) string {
				return c.heartbeatLine(now, run, spec, machine, s, wm)
			})
	}

	if err := wm.Start(); err != nil {
		return nil, err
	}
	start := c.clk.Now()
	c.clk.RunUntil(runEnd)
	if failTicker != nil {
		failTicker.Stop()
	}
	if hb != nil {
		hb.Stop()
	}
	c.tel.RecordSpan("campaign", "allocation", start, c.clk.Now().Sub(start),
		"run", c.res.RunsDone+1, "nodes", spec.Nodes)

	// Allocation over: stop producers, flush the conductor (queued
	// submissions fail back into WM state), settle running simulations,
	// and checkpoint.
	snapshotsActive = false
	runActive = false
	wm.Stop()
	prof.Stop()
	cond.Close()
	s.Close()
	ids := make([]sched.JobID, 0, len(c.active))
	for id := range c.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		aj := c.active[id]
		job, ok := s.Job(id)
		if !ok || job.State != sched.Running {
			continue
		}
		c.settle(aj.simID, aj.rate.SimFor(c.clk.Now().Sub(aj.start)), false)
	}
	c.active = nil
	b, err := wm.Checkpoint()
	if err != nil {
		return nil, err
	}
	*ckpt = b

	// Merge profiling and stats.
	for _, ev := range prof.Events() {
		c.res.ProfileEvents = append(c.res.ProfileEvents, ev)
	}
	c.res.RunsDone++
	c.res.TotalNodeHours += units.NodeHoursFor(spec.Nodes, spec.Wall)
	c.res.MatcherVisits += s.MatcherVisits()

	if keepTimeline {
		var tl []TimelinePoint
		for _, p := range s.Timeline() {
			tl = append(tl, TimelinePoint{Offset: p.Time.Sub(start), Job: int64(p.Job)})
		}
		return tl, nil
	}
	return nil, nil
}

// bindCommonChaos rebinds the node-crash and job-hang fault classes to one
// allocation's scheduler and machine; *runActive gates stale events (a node
// revival armed in one allocation must not touch the next one's rebuilt
// machine). The wm-crash class is bound separately by each coordination
// path: restart in the single-WM loop, instance crash + adoption in the
// fleet.
func (c *Campaign) bindCommonChaos(s *sched.Scheduler, machine *cluster.Machine, runActive *bool) {
	c.eng.SetHandler(faults.NodeCrash, func(r faults.Rule, rng *rand.Rand) {
		if !*runActive {
			return
		}
		node := rng.Intn(machine.NumNodes())
		// Bank progress for the sims dying with the node; the workflow
		// resubmits them and they resume from the banked progress (the
		// simulations' own checkpoints survive the node).
		for _, id := range c.sortedActiveIDs() {
			job, ok := s.Job(id)
			if ok && job.State == sched.Running && allocOnNode(job.Alloc, node) {
				c.bankActive(id)
			}
		}
		victims := s.Crash(node)
		c.res.NodeCrashes++
		msg := fmt.Sprintf("node-crash node=%d killed=%d recovery=%s", node, len(victims), r.Recovery)
		c.noteFault(msg)
		c.eng.Note(msg)
		c.clk.After(r.Recovery, func() {
			if !*runActive {
				return
			}
			s.Revive(node)
			c.noteFault(fmt.Sprintf("node-revive node=%d", node))
		})
	})
	c.eng.SetHandler(faults.JobHang, func(r faults.Rule, rng *rand.Rand) {
		if !*runActive {
			return
		}
		ids := c.sortedActiveIDs()
		if len(ids) == 0 {
			return
		}
		id := ids[rng.Intn(len(ids))]
		if !s.Hang(id) {
			return
		}
		// Bank progress up to the wedge; from here the job holds its GPU
		// while advancing nothing (zero rate) until the watchdog kills it
		// or the allocation ends.
		c.bankActive(id)
		aj := c.active[id]
		c.active[id] = activeJob{simID: aj.simID, start: c.clk.Now()}
		c.res.JobHangs++
		msg := fmt.Sprintf("job-hang job=%d sim=%s", id, aj.simID)
		c.noteFault(msg)
		c.eng.Note(msg)
	})
}

// wmView is what the campaign's shared observers (Task-1 snapshot ingest,
// the heartbeat) need from a coordination layer — satisfied by both the
// single *core.Workflow and the distributed *wmfleet.Fleet.
type wmView interface {
	AddCandidate(coupling string, p dynim.Point) error
	Stats() []core.CouplingStats
}

// heartbeatLine renders one status line: machine occupancy, scheduler
// queue state, and per-coupling progress — the numbers an operator watches
// to keep a multi-day allocation alive.
func (c *Campaign) heartbeatLine(now time.Time, run int, spec RunSpec,
	machine *cluster.Machine, s *sched.Scheduler, wm wmView) string {
	q, running, finished := s.Counts()
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] run %d (%dn): gpu=%.0f%% cpu=%.0f%% queued=%d running=%d done=%d",
		now.Format("2006-01-02 15:04"), run, spec.Nodes,
		machine.GPUOccupancy()*100, machine.CPUOccupancy()*100, q, running, finished)
	for _, cs := range wm.Stats() {
		fmt.Fprintf(&b, " | %s: ready=%d run=%d done=%d fb=%d",
			cs.Name, cs.Ready, cs.Running, cs.CompletedSims, cs.FeedbackRuns)
	}
	return b.String()
}

// onSnapshot models Task 1 for one continuum snapshot: advance the protein
// encodings, cut patches, offer them to the patch selector, and account the
// data products. In the two-scale regime the snapshot is read from an
// archive rather than produced, so only patch products are accounted — no
// continuum time, performance sample, or snapshot file.
func (c *Campaign) onSnapshot(wm wmView, contNodes int) {
	c.res.Snapshots++
	if c.cfg.Scales == ThreeScale {
		c.res.ContinuumTotal += 1 * units.Microsecond
		perf := sim.ContinuumPerf(contNodes*24).SimFor(24*time.Hour).Milliseconds() *
			(1 + 0.01*c.rng.NormFloat64())
		c.res.ContinuumPerf = append(c.res.ContinuumPerf, perf)

		c.res.Files += 1 // snapshot file
		c.res.Bytes += int64(continuumSnapshotBytes)
	}

	for i := 0; i < c.cfg.PatchesPerSnapshot; i++ {
		// Protein walk: slow drift in 9-D encoding space.
		w := c.walks[i%len(c.walks)]
		for j := range w {
			w[j] += c.rng.NormFloat64() * 0.05
		}
		coords := make([]float64, 9)
		for j := range coords {
			coords[j] = w[j] + c.rng.NormFloat64()*0.02
		}
		// Stabilize queue routing on the protein index, encoded in coord 0
		// fraction (see route function): simply use index-based id.
		id := fmt.Sprintf("p%07d_%03d", c.res.Snapshots, i)
		c.res.Patches++
		c.res.Files++
		c.res.Bytes += 70_000
		if err := wm.AddCandidate("continuum-to-cg", dynim.Point{ID: id, Coords: coords}); err != nil {
			// Selector shape errors are programming bugs; surface loudly.
			panic(err)
		}
	}
}

const continuumSnapshotBytes = 374_000_000

// cgCoupling builds the continuum→CG coupling for one run.
func (c *Campaign) cgCoupling(slots, setupCap int) core.CouplingSpec {
	spec := core.CouplingSpec{
		Name:     "continuum-to-cg",
		Selector: c.patchSel,
		SetupReq: sched.Request{Name: "createsim", Cores: sim.CreatesimCores},
		SetupDuration: func(rng *rand.Rand) time.Duration {
			return sim.SetupDuration(rng, sim.CreatesimDuration)
		},
		SimReq: sched.Request{Name: "cg-sim", Cores: 3, GPUs: 1},
		SimDuration: func(rng *rand.Rand, p dynim.Point) time.Duration {
			rec := c.record("cg:"+p.ID, kindCG, rng)
			remaining := rec.target - rec.progress
			if remaining <= 0 {
				return time.Minute
			}
			return rec.rate.WallFor(remaining)
		},
		MaxSims:     slots,
		ReadyTarget: c.readyTarget(slots),
		MaxSetups:   setupCap,
		OnSimStart:  func(p dynim.Point, id sched.JobID) { c.onSimStart("cg:"+p.ID, id) },
		OnSimEnd:    func(p dynim.Point, id sched.JobID, st sched.State) { c.onSimEnd("cg:"+p.ID, id, st) },
	}
	if c.cgFB != nil {
		spec.Feedback = c.cgFB
		spec.FeedbackEvery = c.cfg.FeedbackEvery
	}
	return spec
}

// aaCoupling builds the CG→AA coupling for one run.
func (c *Campaign) aaCoupling(slots, setupCap int) core.CouplingSpec {
	spec := core.CouplingSpec{
		Name:     "cg-to-aa",
		Selector: c.frameSel,
		SetupReq: sched.Request{Name: "backmap", Cores: sim.BackmapCores},
		SetupDuration: func(rng *rand.Rand) time.Duration {
			return sim.SetupDuration(rng, sim.BackmapDuration)
		},
		SimReq: sched.Request{Name: "aa-sim", Cores: 3, GPUs: 1},
		SimDuration: func(rng *rand.Rand, p dynim.Point) time.Duration {
			rec := c.record("aa:"+p.ID, kindAA, rng)
			remaining := rec.target - rec.progress
			if remaining <= 0 {
				return time.Minute
			}
			return rec.rate.WallFor(remaining)
		},
		MaxSims:     slots,
		ReadyTarget: c.readyTarget(slots),
		MaxSetups:   setupCap,
		OnSimStart:  func(p dynim.Point, id sched.JobID) { c.onSimStart("aa:"+p.ID, id) },
		OnSimEnd:    func(p dynim.Point, id sched.JobID, st sched.State) { c.onSimEnd("aa:"+p.ID, id, st) },
	}
	if c.aaFB != nil {
		spec.Feedback = c.aaFB
		spec.FeedbackEvery = c.cfg.FeedbackEvery
	}
	return spec
}

// readyTarget sizes the prepared-configuration inventory, which persists
// across allocations via the WM checkpoint. Half a machine's worth of
// prepared simulations lets a fresh allocation load at the submission
// throttle (~100 jobs/min — the paper's 1-hour 1000-node load) instead of
// waiting on 1.5–2 h setup jobs, while keeping staleness and CPU burn
// bounded; the separate MaxSetups cap governs concurrent setup jobs.
func (c *Campaign) readyTarget(slots int) int {
	t := int(float64(slots) * c.cfg.InventoryFraction)
	if t < 2 {
		t = 2
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// record returns (creating on first use) the persistent record of one
// simulation.
func (c *Campaign) record(simID string, kind simKind, rng *rand.Rand) *simRecord {
	if rec, ok := c.recs[simID]; ok {
		return rec
	}
	rec := &simRecord{kind: kind}
	switch kind {
	case kindCG:
		rec.size = sim.CGParticles(rng)
		rec.rate = sim.CGPerf{MPIBugEra: c.mpiBugActive()}.Sample(rng, rec.size)
		// Retirement hazard capped at the 5 µs maximum (see package doc).
		rec.target = minSimTime(sim.CGMaxLength,
			units.SimTime(rng.ExpFloat64()*float64(c.cfg.RetireMeanCG)))
		if rec.target < 100*units.Nanosecond {
			rec.target = 100 * units.Nanosecond
		}
		c.res.CGSelected++
		c.res.CGPerf = append(c.res.CGPerf,
			PerfSample{Size: rec.size, PerDay: rec.rate.SimFor(24 * time.Hour).Microseconds()})
	case kindAA:
		rec.size = sim.AAAtoms(rng)
		rec.rate = sim.AAPerf{}.Sample(rng, rec.size)
		span := float64(sim.AAMaxLength - sim.AAMinLength)
		uniform := sim.AAMinLength + units.SimTime(rng.Float64()*span)
		rec.target = minSimTime(uniform,
			units.SimTime(rng.ExpFloat64()*float64(c.cfg.RetireMeanAA)))
		if rec.target < units.Nanosecond {
			rec.target = units.Nanosecond
		}
		c.res.AASelected++
		c.res.AAPerf = append(c.res.AAPerf,
			PerfSample{Size: rec.size, PerDay: rec.rate.SimFor(24 * time.Hour).Nanoseconds()})
	}
	for i := range rec.base {
		rec.base[i] = c.rng.Float64()
	}
	c.recs[simID] = rec
	return rec
}

func (c *Campaign) onSimStart(simID string, id sched.JobID) {
	rec := c.recs[simID]
	if rec == nil {
		return
	}
	c.active[id] = activeJob{simID: simID, rate: rec.rate, start: c.clk.Now()}
}

func (c *Campaign) onSimEnd(simID string, id sched.JobID, st sched.State) {
	delete(c.active, id)
	rec := c.recs[simID]
	if rec == nil {
		return
	}
	if st == sched.Completed {
		// The job ran its full sampled wall time: the simulation reached
		// its target.
		c.settle(simID, rec.target-rec.progress, true)
	}
	// Failed jobs resume from current progress via WM resubmission.
}

// settle advances a simulation's progress and accounts its data products
// and AA candidates; final marks the simulation finished.
func (c *Campaign) settle(simID string, delta units.SimTime, final bool) {
	rec := c.recs[simID]
	if rec == nil || rec.done {
		return
	}
	if delta < 0 {
		delta = 0
	}
	rec.progress += delta
	if rec.progress > rec.target {
		rec.progress = rec.target
	}
	switch rec.kind {
	case kindCG:
		c.accountCG(simID, rec)
	case kindAA:
		framesDelta := int64(float64(delta) / float64(100*units.Picosecond))
		c.res.Files += 1 * framesDelta // trajectory frames
		c.res.Bytes += framesDelta * int64(sim.AAFrameBytes)
		if framesDelta > 0 {
			c.fbSeq++
			c.fbPut("aa-active", fmt.Sprintf("f%012d", c.fbSeq), 128)
		}
	}
	if final || rec.progress >= rec.target {
		rec.done = true
		switch rec.kind {
		case kindCG:
			c.res.CGLengthsUs = append(c.res.CGLengthsUs, rec.progress.Microseconds())
			c.res.CGTotal += rec.progress
		case kindAA:
			c.res.AALengthsNs = append(c.res.AALengthsNs, rec.progress.Nanoseconds())
			c.res.AATotal += rec.progress
		}
	}
}

// accountCG converts new CG trajectory into frame counts, data volume, and
// AA candidates at the published densities.
func (c *Campaign) accountCG(simID string, rec *simRecord) {
	newSim := rec.progress - rec.candMark
	if newSim <= 0 {
		return
	}
	rec.candMark = rec.progress
	us := newSim.Microseconds()
	frames := int64(us / 0.0005) // one analyzed frame per 0.5 ns
	c.res.CGFrames += frames
	c.res.Files += frames * 3 // trajectory + analysis + RDF records
	c.res.Bytes += frames * int64(sim.CGFrameBytes+sim.CGAnalysisBytes)
	if frames > 0 {
		// One RDF batch record per settle feeds the CG→continuum loop.
		c.fbSeq++
		c.fbPut("cg-active", fmt.Sprintf("f%012d", c.fbSeq), 128)
	}

	c.candAcc += us * c.cfg.FrameCandidatesPerUs
	n := int(c.candAcc)
	c.candAcc -= float64(n)
	c.res.CGFrameCandidates += int64(n)
	c.res.Files += int64(n) // identifying-info records
	c.res.Bytes += int64(n) * int64(sim.CGFrameIdentBytes)
	for i := 0; i < n; i++ {
		// Subsample what actually enters the selector; accounting above is
		// full-rate (see Config.FrameCandidateSubsample).
		c.subAcc += c.cfg.FrameCandidateSubsample
		if c.subAcc < 1 {
			continue
		}
		c.subAcc--
		coords := []float64{
			clamp01(rec.base[0] + c.rng.NormFloat64()*0.08),
			clamp01(rec.base[1] + c.rng.NormFloat64()*0.08),
			clamp01(rec.base[2] + c.rng.NormFloat64()*0.08),
		}
		id := fmt.Sprintf("%s_c%06d", simID, c.res.CGFrameCandidates-int64(n)+int64(i))
		if err := c.frameSel.Add(dynim.Point{ID: id, Coords: coords}); err != nil {
			panic(err)
		}
	}
}

func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// pickActiveJob deterministically samples one running simulation job id
// (0 when none are active).
func (c *Campaign) pickActiveJob() sched.JobID {
	ids := c.sortedActiveIDs()
	if len(ids) == 0 {
		return 0
	}
	return ids[c.rng.Intn(len(ids))]
}

// sortedActiveIDs returns the active simulation job ids in ascending order —
// the sanctioned way to sweep c.active (map order must not leak into the
// replay).
func (c *Campaign) sortedActiveIDs() []sched.JobID {
	ids := make([]sched.JobID, 0, len(c.active))
	for id := range c.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// bankActive settles a live simulation job's progress up to now and marks
// the candidate accounting caught up — the step before anything kills the
// job, so the progress its checkpoints hold is not lost and not recounted.
func (c *Campaign) bankActive(id sched.JobID) {
	aj, ok := c.active[id]
	if !ok {
		return
	}
	c.settle(aj.simID, aj.rate.SimFor(c.clk.Now().Sub(aj.start)), false)
	if rec := c.recs[aj.simID]; rec != nil {
		rec.candMark = rec.progress // avoid double-counting later
	}
}

// allocOnNode reports whether any part of the allocation lives on node.
func allocOnNode(a cluster.Alloc, node int) bool {
	for _, part := range a.Parts {
		if part.Node == node {
			return true
		}
	}
	return false
}

// noteFault records one injected fault or recovery in the anomaly log,
// stamped with virtual time. The lines are deterministic per (seed, plan),
// so same-seed chaos replays produce identical anomaly lists.
func (c *Campaign) noteFault(msg string) {
	c.res.Anomalies = append(c.res.Anomalies,
		"fault: "+c.clk.Now().UTC().Format("2006-01-02T15:04:05")+" "+msg)
}

// restartWM models an injected WM crash inside an allocation (§4.4: the WM
// "can be restored completely after any such crash"): stop the dead
// manager, flush its conductor, checkpoint its state, cold-kill the
// allocation's job set (every configuration is in the checkpoint; running
// simulations resume from banked progress), rebuild the WM, restore, and
// restart. The conservation check asserts no selection was lost across the
// crash. wm and cond point at the caller's rig so its closures (snapshots,
// heartbeat) drive the rebuilt manager afterwards.
func (c *Campaign) restartWM(s *sched.Scheduler, wm **core.Workflow, cond **maestro.Conductor,
	newWM func(*maestro.Conductor, int64) (*core.Workflow, error)) {
	old := *wm
	before := old.Stats()
	old.Stop()
	(*cond).Close() // queued submissions fail back into the old WM's state
	ck, err := old.Checkpoint()
	if err != nil {
		c.noteFault(fmt.Sprintf("wm-crash checkpoint failed: %v", err))
		return
	}
	for _, id := range c.sortedActiveIDs() {
		c.bankActive(id)
	}
	orphans := 0
	for _, id := range s.LiveJobs() {
		if job, ok := s.Job(id); ok && job.State == sched.Running {
			if err := s.Fail(id); err != nil && !errors.Is(err, sched.ErrAlreadyTerminal) {
				c.res.Anomalies = append(c.res.Anomalies,
					fmt.Sprintf("wm-crash kill job %d: %v", id, err))
			}
		} else if !s.Cancel(id) {
			orphans++ // mid-match: it will run and finish unobserved
		}
	}
	c.active = make(map[sched.JobID]activeJob)
	next, err := maestro.NewConductor(c.clk, maestro.FluxBackend{S: s}, c.cfg.SubmitPerMinute)
	if err != nil {
		c.noteFault(fmt.Sprintf("wm-crash conductor rebuild failed: %v", err))
		return
	}
	c.res.WMRestarts++
	// A restarted manager is a new process: distinct WM seed, same replay
	// determinism (the offset is a pure function of campaign state).
	seed := c.cfg.Seed + int64(c.res.RunsDone) + 7919*int64(c.res.WMRestarts)
	nw, err := newWM(next, seed)
	if err != nil {
		c.noteFault(fmt.Sprintf("wm-crash rebuild failed: %v", err))
		return
	}
	if err := nw.RestoreState(ck); err != nil {
		c.noteFault(fmt.Sprintf("wm-crash restore failed: %v", err))
		return
	}
	// No selection may be lost: everything ready, running, or in setup
	// before the crash must be ready or in setup after the restore.
	after := nw.Stats()
	for i := range before {
		if i >= len(after) {
			break
		}
		want := before[i].Ready + before[i].Running + before[i].InSetup
		got := after[i].Ready + after[i].InSetup
		if got != want {
			c.res.Anomalies = append(c.res.Anomalies,
				fmt.Sprintf("wm-crash lost selections in %s: %d before, %d after",
					before[i].Name, want, got))
		}
	}
	if err := nw.Start(); err != nil {
		c.noteFault(fmt.Sprintf("wm-crash restart failed: %v", err))
		return
	}
	msg := fmt.Sprintf("wm-crash restart=%d orphans=%d", c.res.WMRestarts, orphans)
	c.noteFault(msg)
	c.eng.Note(msg)
	*wm = nw
	*cond = next
}

func minSimTime(a, b units.SimTime) units.SimTime {
	if a < b {
		return a
	}
	return b
}

// finalizeResult settles simulations that never completed (still queued as
// records at campaign end) and derives summary statistics.
func (c *Campaign) finalizeResult() {
	simIDs := make([]string, 0, len(c.recs))
	for simID := range c.recs {
		simIDs = append(simIDs, simID)
	}
	sort.Strings(simIDs) // determinism: fractional accumulators are order-sensitive
	for _, simID := range simIDs {
		if rec := c.recs[simID]; !rec.done && rec.progress > 0 {
			c.settle(simID, 0, true)
		}
	}
	c.res.finalize()
}

package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/core"
	"mummi/internal/faults"
	"mummi/internal/maestro"
	"mummi/internal/profile"
	"mummi/internal/sched"
	"mummi/internal/sim"
	"mummi/internal/telemetry"
	"mummi/internal/units"
	"mummi/internal/vclock"
	"mummi/internal/wmfleet"
)

// runOneFleet executes a single allocation with a distributed WM fleet
// (Config.WMInstances > 1) — the fleet analogue of runOne: same cluster,
// scheduler, snapshot stream, failure injection, and teardown, but the
// couplings are spread across N workflow managers coordinating ownership
// through store leases (internal/wmfleet). An injected wm-crash kills one
// instance and a survivor adopts its couplings; the conductor is never
// restarted. The checkpoint carried across allocations stays in the
// single-WM format, so fleet size can change between campaigns.
func (c *Campaign) runOneFleet(spec RunSpec, ckpt *[]byte, keepTimeline bool) ([]TimelinePoint, error) {
	machine, err := cluster.New(cluster.Summit(spec.Nodes))
	if err != nil {
		return nil, err
	}
	statusPoll := time.Duration(0)
	if c.cfg.ModelStatusLoad {
		statusPoll = c.cfg.ProfileEvery
	}
	s, err := sched.New(c.clk, sched.Config{
		Machine: machine, Policy: c.cfg.SchedPolicy, Mode: c.cfg.SchedMode,
		Costs: c.cfg.SchedCosts, StatusPollEvery: statusPoll,
		Telemetry: c.tel,
	})
	if err != nil {
		return nil, err
	}

	totalGPUs := machine.Topology().TotalGPUs()
	cgSlots := int(float64(totalGPUs) * c.cfg.CGShare)
	aaSlots := totalGPUs - cgSlots
	if aaSlots < 1 {
		aaSlots = 1
	}
	c.active = make(map[sched.JobID]activeJob)

	contNodes := continuumNodes(spec.Nodes)
	contRate := sim.ContinuumPerf(contNodes * 24)
	var staticJobs []sched.Request
	if c.cfg.Scales == ThreeScale {
		staticJobs = []sched.Request{
			{Name: "continuum", NodeCount: contNodes, Cores: 24},
		}
	}

	var wdGrace float64
	if c.eng != nil {
		wdGrace = chaosWatchdogGrace
	}
	fl, err := wmfleet.New(wmfleet.Config{
		Clock:     c.clk,
		Backend:   maestro.FluxBackend{S: s},
		Store:     c.fleetStore,
		Telemetry: c.tel,
		Instances: c.cfg.WMInstances,
		Couplings: []core.CouplingSpec{
			c.cgCoupling(cgSlots, max(2, spec.Nodes*2/3)),
			c.aaCoupling(aaSlots, max(1, spec.Nodes/3)),
		},
		StaticJobs:      staticJobs,
		PollEvery:       c.cfg.PollEvery,
		Seed:            c.cfg.Seed + int64(c.res.RunsDone),
		SubmitPerMinute: c.cfg.SubmitPerMinute,
		WatchdogGrace:   wdGrace,
		// Per-allocation namespaces: an adopter's still-live lease from
		// one allocation must never block the next allocation's initial
		// owner from acquiring.
		Namespace: fmt.Sprintf("wmfleet-r%03d", c.res.RunsDone),
		OnEvent:   c.noteFault,
		OnAnomaly: func(msg string) {
			c.res.Anomalies = append(c.res.Anomalies, msg)
		},
	})
	if err != nil {
		return nil, err
	}
	if *ckpt != nil {
		if err := fl.Restore(*ckpt); err != nil {
			return nil, err
		}
	}

	prof := profile.New(c.clk, c.cfg.ProfileEvery, func() profile.Event {
		q, running, _ := s.Counts()
		return profile.Event{
			GPUFrac: machine.GPUOccupancy(),
			CPUFrac: machine.CPUOccupancy(),
			Running: running, Pending: q,
		}
	})

	// Continuum snapshot stream: one snapshot per µs of continuum time.
	// The fleet routes each patch to whichever instance owns the coupling
	// at arrival time; while ownership is in flight the shared selectors
	// hold the candidates.
	runEnd := c.clk.Now().Add(spec.Wall)
	snapshotsActive := true
	var scheduleSnapshot func()
	scheduleSnapshot = func() {
		wall := contRate.WallFor(1 * units.Microsecond)
		c.clk.After(wall, func() {
			if !snapshotsActive || c.clk.Now().After(runEnd) {
				return
			}
			c.onSnapshot(fl, contNodes)
			scheduleSnapshot()
		})
	}
	scheduleSnapshot()

	var failTicker *vclock.Ticker
	if c.cfg.FailuresPerDay > 0 {
		perTick := c.cfg.FailuresPerDay / 48
		failTicker = vclock.NewTicker(c.clk, 30*time.Minute, func(time.Time) {
			if c.rng.Float64() >= perTick {
				return
			}
			victim := c.pickActiveJob()
			if victim == 0 {
				return
			}
			c.bankActive(victim)
			delete(c.active, victim)
			c.res.InjectedFailures++
			if err := s.Fail(victim); err != nil && !errors.Is(err, sched.ErrAlreadyTerminal) {
				c.res.Anomalies = append(c.res.Anomalies,
					fmt.Sprintf("fail-injection job %d: %v", victim, err))
			}
		})
	}

	runActive := true
	if c.eng != nil {
		c.bindCommonChaos(s, machine, &runActive)
		c.eng.SetHandler(faults.WMCrash, func(r faults.Rule, rng *rand.Rand) {
			if !runActive {
				return
			}
			c.fleetCrash(s, fl, r, rng)
		})
	}

	var hb *telemetry.Heartbeat
	if c.cfg.HeartbeatEvery > 0 && c.cfg.HeartbeatWriter != nil {
		run := c.res.RunsDone + 1
		hb = telemetry.NewHeartbeat(c.clk, c.cfg.HeartbeatEvery, c.cfg.HeartbeatWriter,
			func(now time.Time) string {
				return c.heartbeatLine(now, run, spec, machine, s, fl)
			})
	}

	if err := fl.Start(); err != nil {
		return nil, err
	}
	start := c.clk.Now()
	c.clk.RunUntil(runEnd)
	if failTicker != nil {
		failTicker.Stop()
	}
	if hb != nil {
		hb.Stop()
	}
	c.tel.RecordSpan("campaign", "allocation", start, c.clk.Now().Sub(start),
		"run", c.res.RunsDone+1, "nodes", spec.Nodes, "wm_instances", c.cfg.WMInstances)

	// Allocation over: stop producers, flush every instance's conductor,
	// settle running simulations, and checkpoint the fleet into the
	// single-WM format.
	snapshotsActive = false
	runActive = false
	fl.Stop()
	prof.Stop()
	s.Close()
	ids := make([]sched.JobID, 0, len(c.active))
	for id := range c.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		aj := c.active[id]
		job, ok := s.Job(id)
		if !ok || job.State != sched.Running {
			continue
		}
		c.settle(aj.simID, aj.rate.SimFor(c.clk.Now().Sub(aj.start)), false)
	}
	c.active = nil
	b, err := fl.Checkpoint()
	if err != nil {
		return nil, err
	}
	*ckpt = b

	acc := fl.Accounting()
	c.res.WMCrashes += acc.Crashes
	c.res.WMAdoptions += acc.Adoptions
	c.res.LeaseExpirations += acc.LeaseExpirations

	for _, ev := range prof.Events() {
		c.res.ProfileEvents = append(c.res.ProfileEvents, ev)
	}
	c.res.RunsDone++
	c.res.TotalNodeHours += units.NodeHoursFor(spec.Nodes, spec.Wall)
	c.res.MatcherVisits += s.MatcherVisits()

	if keepTimeline {
		var tl []TimelinePoint
		for _, p := range s.Timeline() {
			tl = append(tl, TimelinePoint{Offset: p.Time.Sub(start), Job: int64(p.Job)})
		}
		return tl, nil
	}
	return nil, nil
}

// fleetCrash handles one injected wm-crash in the fleet path: pick the
// victim (the rule's pinned instance, or a random live one when the rule
// leaves it open), crash it through the fleet — which flushes its
// couplings' checkpoints through the store and leaves its leases to expire
// — then bank and kill the dead instance's tracked jobs. Every selected
// configuration is in the flushed checkpoints, so the adopting instance
// resubmits them with no selection lost; static jobs (the continuum) are
// untracked and survive. The crash is refused when it would kill the last
// live instance.
func (c *Campaign) fleetCrash(s *sched.Scheduler, fl *wmfleet.Fleet, r faults.Rule, rng *rand.Rand) {
	live := fl.LiveInstances()
	if len(live) <= 1 {
		c.noteFault("wm-crash skipped: one live instance left")
		return
	}
	var victim int
	if r.Instance > 0 {
		victim = r.Instance - 1
		if !fl.Alive(victim) {
			c.noteFault(fmt.Sprintf("wm-crash skipped: instance %d not live", r.Instance))
			return
		}
	} else {
		victim = live[rng.Intn(len(live))]
	}
	info, err := fl.Crash(victim)
	if err != nil {
		c.noteFault(fmt.Sprintf("wm-crash failed: %v", err))
		return
	}
	orphans := 0
	for _, id := range info.Jobs {
		c.bankActive(id)
		delete(c.active, id)
		if job, ok := s.Job(id); ok && job.State == sched.Running {
			if err := s.Fail(id); err != nil && !errors.Is(err, sched.ErrAlreadyTerminal) {
				c.res.Anomalies = append(c.res.Anomalies,
					fmt.Sprintf("wm-crash kill job %d: %v", id, err))
			}
		} else if !s.Cancel(id) {
			orphans++ // mid-match: it will run and finish unobserved
		}
	}
	msg := fmt.Sprintf("wm-crash instance=%d killed=%d couplings=%d orphans=%d",
		victim+1, len(info.Jobs), len(info.Couplings), orphans)
	c.noteFault(msg)
	c.eng.Note(msg)
}

package campaign

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mummi/internal/faults"
	"mummi/internal/telemetry"
)

// chaosCfg is smallCfg plus telemetry, feedback (so store faults have I/O to
// hit), and the aggressive all-six-classes fault plan. Two allocations, so
// the fault schedule crosses an allocation boundary (handler rebinding and
// stale-event gating are exercised).
func chaosCfg(seed int64) (Config, *telemetry.Telemetry) {
	tel := telemetry.New(telemetry.Options{Trace: true})
	cfg := smallCfg(seed)
	cfg.Runs = []RunSpec{
		{Nodes: 4, Wall: 12 * time.Hour, Count: 1},
		{Nodes: 8, Wall: 24 * time.Hour, Count: 1},
	}
	cfg.Telemetry = tel
	cfg.FeedbackEvery = 30 * time.Minute
	cfg.Faults = faults.AggressivePlan(seed)
	return cfg, tel
}

// TestChaosCampaignAllClasses is the tentpole acceptance test: a campaign
// with every fault class enabled at aggressive rates completes, every class
// actually fires, the armored layers absorb what they promise to absorb,
// and the WM crash-restart loop loses no selection.
func TestChaosCampaignAllClasses(t *testing.T) {
	cfg, tel := chaosCfg(5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()

	// Every class fired.
	for _, class := range faults.Classes() {
		name := telemetry.Name("faults.injected_total", "class", string(class))
		if reg.Counter(name).Value() == 0 {
			t.Errorf("fault class %s never fired", class)
		}
	}
	if res.NodeCrashes == 0 || res.JobHangs == 0 || res.WMRestarts == 0 {
		t.Fatalf("timed-fault ledger empty: crashes=%d hangs=%d restarts=%d",
			res.NodeCrashes, res.JobHangs, res.WMRestarts)
	}

	// The armor retried transient store faults (and the campaign survived
	// the permanent ones it could not absorb).
	if reg.Counter("store.retries_total{backend=memory}").Value() == 0 {
		t.Error("armor never retried despite injected transient faults")
	}

	// The watchdog cleaned up at least one injected hang.
	kills := reg.Counter("wm.watchdog_kills_total{coupling=continuum-to-cg}").Value() +
		reg.Counter("wm.watchdog_kills_total{coupling=cg-to-aa}").Value()
	if kills == 0 {
		t.Error("watchdog never killed a hung job")
	}

	// No selection lost across any WM crash-restart, and the campaign still
	// did science.
	for _, a := range res.Anomalies {
		if strings.Contains(a, "lost selections") {
			t.Errorf("selection lost across restart: %s", a)
		}
	}
	if res.CGSelected == 0 || res.CGTotal == 0 {
		t.Fatalf("chaos starved the campaign: selected=%d cgTotal=%v", res.CGSelected, res.CGTotal)
	}

	// Every timed fault is on the anomaly record.
	var faultLines int
	for _, a := range res.Anomalies {
		if strings.HasPrefix(a, "fault: ") {
			faultLines++
		}
	}
	if want := res.NodeCrashes + res.JobHangs + res.WMRestarts; faultLines < want {
		t.Errorf("anomaly log has %d fault lines, want >= %d", faultLines, want)
	}
}

// TestChaosSameSeedByteIdentical is the determinism acceptance test: two
// same-seed chaos campaigns with an identical plan produce byte-identical
// metric snapshots, trace exports, and anomaly logs.
func TestChaosSameSeedByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte, []string) {
		cfg, tel := chaosCfg(42)
		cfg.Runs = []RunSpec{{Nodes: 4, Wall: 12 * time.Hour, Count: 1}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		metrics, err := tel.Registry().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := tel.Tracer().Export(&trace); err != nil {
			t.Fatal(err)
		}
		return metrics, trace.Bytes(), res.Anomalies
	}
	m1, t1, a1 := run()
	m2, t2, a2 := run()
	if !bytes.Equal(m1, m2) {
		t.Errorf("metric snapshots differ across same-seed chaos runs\nrun1: %.400s\nrun2: %.400s", m1, m2)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace exports differ across same-seed chaos runs")
	}
	if strings.Join(a1, "\n") != strings.Join(a2, "\n") {
		t.Errorf("anomaly logs differ across same-seed chaos runs\nrun1:\n%s\nrun2:\n%s",
			strings.Join(a1, "\n"), strings.Join(a2, "\n"))
	}
	if len(a1) == 0 {
		t.Error("chaos run recorded no fault anomalies")
	}
}

// TestChaosPlanValidation: a bad plan is rejected at construction, not at
// first fire.
func TestChaosPlanValidation(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Faults = &faults.Plan{Rules: []faults.Rule{{Class: "meteor-strike", Rate: 1}}}
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("campaign accepted a plan with an unknown fault class")
	}
}

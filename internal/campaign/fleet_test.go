package campaign

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mummi/internal/faults"
	"mummi/internal/telemetry"
)

// fleetCfg is chaosCfg reshaped for the distributed-WM fleet: three WM
// instances per allocation, a wm-crash schedule hot enough to kill an
// instance mid-feedback, and a transient-store drizzle so the lease
// traffic exercises the armor.
func fleetCfg(seed int64) (Config, *telemetry.Telemetry) {
	tel := telemetry.New(telemetry.Options{Trace: true})
	cfg := smallCfg(seed)
	cfg.Runs = []RunSpec{
		{Nodes: 4, Wall: 12 * time.Hour, Count: 1},
		{Nodes: 8, Wall: 24 * time.Hour, Count: 1},
	}
	cfg.Telemetry = tel
	cfg.FeedbackEvery = 30 * time.Minute
	cfg.WMInstances = 3
	cfg.Faults = &faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Class: faults.WMCrash, Rate: 4},
		{Class: faults.StoreTransient, Rate: 0.2},
	}}
	return cfg, tel
}

// TestFleetCampaignAdoptionEndToEnd is the tentpole acceptance test: a
// chaos campaign kills WM instances of a three-instance fleet mid-run,
// survivors adopt the orphaned couplings through expired store leases, and
// the campaign completes with no selection lost and no conductor restart
// (the single-WM wm_restarts ledger stays empty).
func TestFleetCampaignAdoptionEndToEnd(t *testing.T) {
	cfg, tel := fleetCfg(5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WMCrashes == 0 {
		t.Fatal("no WM instance crash fired; pick a different seed")
	}
	if res.WMAdoptions == 0 {
		t.Fatalf("crashes=%d but no adoptions", res.WMCrashes)
	}
	if res.LeaseExpirations == 0 {
		t.Error("adoption happened without an expired-lease takeover")
	}
	if res.WMRestarts != 0 {
		t.Errorf("fleet campaign restarted a conductor %d times", res.WMRestarts)
	}

	// Conservation across every crash/adoption.
	for _, a := range res.Anomalies {
		if strings.Contains(a, "lost selections") {
			t.Errorf("selection lost across adoption: %s", a)
		}
	}
	if res.CGSelected == 0 || res.CGTotal == 0 {
		t.Fatalf("fleet chaos starved the campaign: selected=%d cgTotal=%v",
			res.CGSelected, res.CGTotal)
	}

	// The adoption is visible in telemetry, not just the result ledger.
	reg := tel.Registry()
	if got := reg.Counter("wmfleet.wm_crashes_total").Value(); got != int64(res.WMCrashes) {
		t.Errorf("wmfleet.wm_crashes_total = %d, ledger says %d", got, res.WMCrashes)
	}
	if got := reg.Counter("wmfleet.wm_adoptions_total").Value(); got != int64(res.WMAdoptions) {
		t.Errorf("wmfleet.wm_adoptions_total = %d, ledger says %d", got, res.WMAdoptions)
	}
	if reg.Counter("wmfleet.lease_renewals_total").Value() == 0 {
		t.Error("no lease renewals recorded")
	}

	// Every crash and adoption is on the fault record.
	var crashes, adopts int
	for _, a := range res.Anomalies {
		if strings.Contains(a, "wm-crash instance=") {
			crashes++
		}
		if strings.Contains(a, "wm-adopt coupling=") {
			adopts++
		}
	}
	if crashes < res.WMCrashes || adopts < res.WMAdoptions {
		t.Errorf("fault log has %d crash / %d adopt lines, ledger says %d / %d",
			crashes, adopts, res.WMCrashes, res.WMAdoptions)
	}
}

// TestFleetSameSeedByteIdentical extends the determinism bar to the fleet:
// two same-seed fleet chaos campaigns — including the crash and adoption
// schedule — produce byte-identical metrics, traces, and anomaly logs.
func TestFleetSameSeedByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte, []string, int) {
		cfg, tel := fleetCfg(42)
		cfg.Runs = []RunSpec{{Nodes: 4, Wall: 12 * time.Hour, Count: 1}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		metrics, err := tel.Registry().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := tel.Tracer().Export(&trace); err != nil {
			t.Fatal(err)
		}
		return metrics, trace.Bytes(), res.Anomalies, res.WMAdoptions
	}
	m1, t1, a1, ad1 := run()
	m2, t2, a2, ad2 := run()
	if !bytes.Equal(m1, m2) {
		t.Errorf("metric snapshots differ across same-seed fleet runs\nrun1: %.400s\nrun2: %.400s", m1, m2)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace exports differ across same-seed fleet runs")
	}
	if strings.Join(a1, "\n") != strings.Join(a2, "\n") {
		t.Errorf("anomaly logs differ across same-seed fleet runs\nrun1:\n%s\nrun2:\n%s",
			strings.Join(a1, "\n"), strings.Join(a2, "\n"))
	}
	if ad1 != ad2 {
		t.Errorf("adoption counts differ: %d vs %d", ad1, ad2)
	}
	if ad1 == 0 {
		t.Error("determinism run exercised no adoption; pick a different seed")
	}
}

// TestFleetPinnedInstanceCrash: a wm-crash rule can pin its victim, and
// the pinned instance — never another — is the one that dies.
func TestFleetPinnedInstanceCrash(t *testing.T) {
	cfg, _ := fleetCfg(9)
	cfg.Runs = []RunSpec{{Nodes: 4, Wall: 12 * time.Hour, Count: 1}}
	cfg.Faults = &faults.Plan{Seed: 9, Rules: []faults.Rule{
		{Class: faults.WMCrash, Rate: 4, Instance: 2},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WMCrashes == 0 {
		t.Fatal("pinned wm-crash never fired; pick a different seed")
	}
	for _, a := range res.Anomalies {
		if !strings.Contains(a, "wm-crash instance=") {
			continue
		}
		if !strings.Contains(a, "wm-crash instance=2 ") {
			t.Errorf("crash hit a non-pinned instance: %s", a)
		}
	}
	// Only instance 2 may die, so at most one crash per allocation sticks;
	// later fires are skipped, not redirected.
	if res.WMCrashes > 1 {
		t.Errorf("pinned rule crashed %d instances in one allocation", res.WMCrashes)
	}
}

// TestFleetOptionsValidation: the Options surface rejects a negative fleet
// size and threads a positive one through to the config.
func TestFleetOptionsValidation(t *testing.T) {
	if _, err := (Options{WMInstances: -1}).Build(); err == nil {
		t.Fatal("negative WMInstances accepted")
	}
	cfg, err := (Options{WMInstances: 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WMInstances != 3 {
		t.Fatalf("WMInstances = %d, want 3", cfg.WMInstances)
	}
	cfg, err = (Options{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WMInstances != 1 {
		t.Fatalf("default WMInstances = %d, want 1", cfg.WMInstances)
	}
}

package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mummi/internal/retry"
)

// ---------------------------------------------------------------------------
// Engine

func TestEngineBasics(t *testing.T) {
	e := NewEngine()
	e.Set("a", []byte("1"))
	v, err := e.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := e.Get("missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("missing Get = %v", err)
	}
	if !e.Exists("a") || e.Exists("b") {
		t.Error("Exists wrong")
	}
	if n := e.Del("a", "b"); n != 1 {
		t.Errorf("Del = %d, want 1", n)
	}
	if e.Size() != 0 {
		t.Errorf("Size = %d", e.Size())
	}
}

func TestEngineKeysPatterns(t *testing.T) {
	e := NewEngine()
	for _, k := range []string{"rdf:new:1", "rdf:new:2", "rdf:done:1", "other"} {
		e.Set(k, nil)
	}
	if ks := e.Keys("rdf:new:*"); len(ks) != 2 || ks[0] != "rdf:new:1" {
		t.Errorf("prefix scan = %v", ks)
	}
	if ks := e.Keys("other"); len(ks) != 1 {
		t.Errorf("exact scan = %v", ks)
	}
	if ks := e.Keys("*"); len(ks) != 4 {
		t.Errorf("full scan = %v", ks)
	}
	if ks := e.Keys("zzz*"); len(ks) != 0 {
		t.Errorf("no-match scan = %v", ks)
	}
}

func TestEngineRename(t *testing.T) {
	e := NewEngine()
	e.Set("new:f1", []byte("rdf"))
	if err := e.Rename("new:f1", "done:f1"); err != nil {
		t.Fatal(err)
	}
	if e.Exists("new:f1") {
		t.Error("source survived rename")
	}
	v, _ := e.Get("done:f1")
	if string(v) != "rdf" {
		t.Errorf("renamed value = %q", v)
	}
	if err := e.Rename("new:f1", "x"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("rename missing = %v", err)
	}
}

func TestEngineMGetAndFlush(t *testing.T) {
	e := NewEngine()
	e.Set("a", []byte("1"))
	e.Set("c", []byte("3"))
	got := e.MGet("a", "b", "c")
	if string(got[0]) != "1" || got[1] != nil || string(got[2]) != "3" {
		t.Errorf("MGet = %v", got)
	}
	e.Flush()
	if e.Size() != 0 {
		t.Error("Flush left keys")
	}
}

func TestEngineValueIsolation(t *testing.T) {
	e := NewEngine()
	src := []byte("abc")
	e.Set("k", src)
	src[0] = 'X'
	v, _ := e.Get("k")
	if string(v) != "abc" {
		t.Error("engine aliased caller slice")
	}
	v[0] = 'Y'
	v2, _ := e.Get("k")
	if string(v2) != "abc" {
		t.Error("engine aliased returned slice")
	}
}

func TestPropertyEngineMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		model := map[string]string{}
		keys := []string{"k0", "k1", "k2", "k3", "k4"}
		for i := 0; i < 200; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0:
				v := fmt.Sprintf("v%d", i)
				e.Set(k, []byte(v))
				model[k] = v
			case 1:
				_, inModel := model[k]
				if (e.Del(k) == 1) != inModel {
					return false
				}
				delete(model, k)
			case 2:
				dst := keys[rng.Intn(len(keys))] + "-r"
				v, inModel := model[k]
				err := e.Rename(k, dst)
				if (err == nil) != inModel {
					return false
				}
				if inModel {
					delete(model, k)
					model[dst] = v
				}
			}
		}
		if e.Size() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := e.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Protocol

func TestProtoCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeCommand(w, []byte("SET"), []byte("key"), []byte("val\r\nwith crlf")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	args, err := readCommand(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[2]) != "val\r\nwith crlf" {
		t.Errorf("args = %q", args)
	}
}

func TestProtoReplyKinds(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeSimple(w, "OK")
	writeError(w, "boom")
	writeInt(w, -7)
	writeBulk(w, []byte("data"))
	writeBulk(w, nil)
	writeArray(w, [][]byte{[]byte("a"), nil, []byte("c")})
	w.Flush()
	r := bufio.NewReader(&buf)

	rep, _ := readReply(r)
	if rep.kind != '+' || rep.str != "OK" {
		t.Errorf("simple = %+v", rep)
	}
	rep, _ = readReply(r)
	if rep.kind != '-' || !strings.Contains(rep.str, "boom") {
		t.Errorf("error = %+v", rep)
	}
	rep, _ = readReply(r)
	if rep.kind != ':' || rep.n != -7 {
		t.Errorf("int = %+v", rep)
	}
	rep, _ = readReply(r)
	if rep.kind != '$' || string(rep.bulk) != "data" {
		t.Errorf("bulk = %+v", rep)
	}
	rep, _ = readReply(r)
	if rep.kind != '$' || rep.bulk != nil {
		t.Errorf("nil bulk = %+v", rep)
	}
	rep, _ = readReply(r)
	if rep.kind != '*' || len(rep.array) != 3 || rep.array[1] != nil {
		t.Errorf("array = %+v", rep)
	}
}

func TestProtoMalformedInput(t *testing.T) {
	bad := []string{
		"",                 // empty
		"hello\r\n",        // not an array
		"*x\r\n",           // bad count
		"*1\r\nhi\r\n",     // element not bulk
		"*1\r\n$5\r\nab",   // truncated
		"*1\r\n$-5\r\n",    // negative bulk in request
		"*99999999999\r\n", // over max
	}
	for _, s := range bad {
		if _, err := readCommand(bufio.NewReader(strings.NewReader(s))); err == nil {
			t.Errorf("readCommand(%q) succeeded", s)
		}
	}
}

func TestPropertyProtoRoundTrip(t *testing.T) {
	f := func(parts [][]byte) bool {
		if len(parts) == 0 {
			return true // empty command arrays are invalid by protocol
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeCommand(w, parts...); err != nil {
			return false
		}
		w.Flush()
		got, err := readCommand(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		if len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Server + Client over TCP

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestClientServerBasics(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("frame:1", []byte("rdf-bytes")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("frame:1")
	if err != nil || string(v) != "rdf-bytes" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get("absent"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("absent Get = %v", err)
	}
	n, err := c.Del("frame:1", "absent")
	if err != nil || n != 1 {
		t.Fatalf("Del = %d, %v", n, err)
	}
}

func TestClientKeysRenameDBSize(t *testing.T) {
	_, c := startServer(t)
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("new:%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := c.Keys("new:*")
	if err != nil || len(ks) != 5 {
		t.Fatalf("Keys = %v, %v", ks, err)
	}
	if err := c.Rename("new:0", "done:0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("new:0", "x"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("rename missing = %v", err)
	}
	n, err := c.DBSize()
	if err != nil || n != 5 {
		t.Fatalf("DBSize = %d, %v", n, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.DBSize(); n != 0 {
		t.Errorf("DBSize after flush = %d", n)
	}
}

func TestClientMGet(t *testing.T) {
	_, c := startServer(t)
	c.Set("a", []byte("1"))
	c.Set("c", []byte("3"))
	vals, err := c.MGet("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || vals[1] != nil || string(vals[2]) != "3" {
		t.Errorf("MGet = %v", vals)
	}
}

func TestClientPipelines(t *testing.T) {
	_, c := startServer(t)
	kv := map[string][]byte{}
	for i := 0; i < 100; i++ {
		kv[fmt.Sprintf("k%03d", i)] = []byte(fmt.Sprintf("v%d", i))
	}
	if err := c.PipelineSet(kv); err != nil {
		t.Fatal(err)
	}
	n, err := c.DBSize()
	if err != nil || n != 100 {
		t.Fatalf("DBSize = %d, %v", n, err)
	}
	pairs := make([][2]string, 0, 50)
	for i := 0; i < 50; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("k%03d", i), fmt.Sprintf("done:k%03d", i)})
	}
	ok, err := c.PipelineRename(pairs)
	if err != nil || ok != 50 {
		t.Fatalf("PipelineRename = %d, %v", ok, err)
	}
	keys := make([]string, 0, 50)
	for i := 50; i < 100; i++ {
		keys = append(keys, fmt.Sprintf("k%03d", i))
	}
	deleted, err := c.PipelineDel(keys)
	if err != nil || deleted != 50 {
		t.Fatalf("PipelineDel = %d, %v", deleted, err)
	}
	left, _ := c.Keys("k*")
	if len(left) != 0 {
		t.Errorf("undeleted keys: %v", left)
	}
}

func TestServerUnknownCommand(t *testing.T) {
	_, c := startServer(t)
	rep, err := c.do([]byte("BOGUS"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.kind != '-' {
		t.Errorf("unknown command reply = %+v", rep)
	}
	// Connection must remain usable after a command error.
	if err := c.Ping(); err != nil {
		t.Errorf("connection dead after error reply: %v", err)
	}
}

func TestServerWrongArity(t *testing.T) {
	_, c := startServer(t)
	for _, cmd := range [][][]byte{
		{[]byte("SET"), []byte("k")},
		{[]byte("GET")},
		{[]byte("DEL")},
		{[]byte("RENAME"), []byte("a")},
		{[]byte("KEYS")},
		{[]byte("EXISTS")},
		{[]byte("MGET")},
		{[]byte("MSET"), []byte("k")},
		{[]byte("MSET"), []byte("k"), []byte("v"), []byte("dangling")},
	} {
		rep, err := c.do(cmd...)
		if err != nil {
			t.Fatal(err)
		}
		if rep.kind != '-' {
			t.Errorf("%s with wrong arity: %+v", cmd[0], rep)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _ := startServer(t)
	addr := s.Addr()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("w%d:%d", w, i)
				if err := c.Set(k, []byte(k)); err != nil {
					errs <- err
					return
				}
				v, err := c.Get(k)
				if err != nil || string(v) != k {
					errs <- fmt.Errorf("get %s = %q, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Engine().Size() != workers*50 {
		t.Errorf("Size = %d", s.Engine().Size())
	}
	if s.Commands() < int64(workers*100) {
		t.Errorf("Commands = %d", s.Commands())
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	// Resilience (§4.4): communication redundancy — a dropped connection is
	// retried transparently once the server is back.
	e := NewEngine()
	s1 := NewServer(e)
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	// Restart on the same address with the same engine (state survives, as
	// with Redis persistence/replication).
	s2 := NewServer(e)
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer s2.Close()
	v, err := c.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get after restart = %q, %v", v, err)
	}
	if c.Retries() == 0 {
		t.Error("Retries = 0 after a forced reconnect")
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	// When the server stays down, the client gives up after the policy's
	// attempt budget instead of hanging — and reports how hard it tried.
	e := NewEngine()
	s := NewServer(e)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialPolicy(addr, retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close() // server gone for good
	if err := c.Ping(); err == nil {
		t.Fatal("Ping succeeded against a dead server")
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2 (3 attempts = 1 try + 2 retries)", got)
	}
	// A closed client fails fast: no retries against a nil connection.
	before := c.Retries()
	c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("Ping succeeded on a closed client")
	}
	if got := c.Retries(); got != before {
		t.Errorf("closed client retried: %d -> %d", before, got)
	}
}

// ---------------------------------------------------------------------------
// Cluster

func startCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	addrs, shutdown, err := LaunchCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	c, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterSpreadsKeys(t *testing.T) {
	c := startCluster(t, 4)
	kv := map[string][]byte{}
	for i := 0; i < 200; i++ {
		kv[fmt.Sprintf("frame:%04d", i)] = []byte("x")
	}
	if err := c.MSet(kv); err != nil {
		t.Fatal(err)
	}
	total, err := c.Size()
	if err != nil || total != 200 {
		t.Fatalf("Size = %d, %v", total, err)
	}
	// Every shard should own a nontrivial share under ring hashing.
	for i := range c.shards {
		rep, err := c.doOnShard(i, "", []byte("DBSIZE"))
		if err != nil {
			t.Fatal(err)
		}
		if rep.n < 20 {
			t.Errorf("shard %d owns only %d/200 keys", i, rep.n)
		}
	}
}

func TestClusterScanAndMGet(t *testing.T) {
	c := startCluster(t, 3)
	want := map[string][]byte{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("rdf:new:%03d", i)
		want[k] = []byte(fmt.Sprintf("payload-%d", i))
	}
	if err := c.MSet(want); err != nil {
		t.Fatal(err)
	}
	keys, err := c.Keys("rdf:new:*")
	if err != nil || len(keys) != 50 {
		t.Fatalf("Keys = %d, %v", len(keys), err)
	}
	got, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mapKeysOnly(got), mapKeysOnly(want)) {
		t.Error("MGet returned different key set")
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Errorf("value mismatch at %s", k)
		}
	}
}

func TestClusterRenameAcrossNodes(t *testing.T) {
	c := startCluster(t, 5)
	// Rename many keys; hashing guarantees some pairs straddle nodes.
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("new:%d", i)
		if err := c.Set(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Rename(k, fmt.Sprintf("done:%d", i)); err != nil {
			t.Fatalf("Rename(%s): %v", k, err)
		}
	}
	newKeys, _ := c.Keys("new:*")
	doneKeys, _ := c.Keys("done:*")
	if len(newKeys) != 0 || len(doneKeys) != 40 {
		t.Errorf("new=%d done=%d", len(newKeys), len(doneKeys))
	}
	v, err := c.Get("done:7")
	if err != nil || string(v) != "v7" {
		t.Errorf("Get(done:7) = %q, %v", v, err)
	}
}

func TestClusterDelAndFlush(t *testing.T) {
	c := startCluster(t, 3)
	var keys []string
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%d", i)
		keys = append(keys, k)
		c.Set(k, []byte("x"))
	}
	n, err := c.Del(keys[:20]...)
	if err != nil || n != 20 {
		t.Fatalf("Del = %d, %v", n, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if total, _ := c.Size(); total != 0 {
		t.Errorf("Size after flush = %d", total)
	}
}

func TestDialClusterErrors(t *testing.T) {
	if _, err := DialCluster(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := DialCluster([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable cluster accepted")
	}
}

func mapKeysOnly[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func TestClusterNodesAndServerAddr(t *testing.T) {
	c := startCluster(t, 4)
	if c.Nodes() != 4 {
		t.Errorf("Nodes = %d", c.Nodes())
	}
	s := NewServer(nil)
	if s.Addr() != "" {
		t.Error("Addr before Listen should be empty")
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != addr {
		t.Errorf("Addr = %q, want %q", s.Addr(), addr)
	}
}

func TestSaveFileFailurePaths(t *testing.T) {
	e := NewEngine()
	e.Set("k", []byte("v"))
	if err := e.SaveFile("/nonexistent-dir/snapshot.mkv"); err == nil {
		t.Error("SaveFile into missing directory succeeded")
	}
}

func TestServerMSet(t *testing.T) {
	s, c := startServer(t)
	rep, err := c.do([]byte("MSET"),
		[]byte("m:1"), []byte("v1"),
		[]byte("m:2"), []byte("v2"),
		[]byte("m:3"), []byte("v3"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.kind != '+' || rep.str != "OK" {
		t.Fatalf("MSET reply = %+v", rep)
	}
	for i := 1; i <= 3; i++ {
		k := fmt.Sprintf("m:%d", i)
		v, err := s.Engine().Get(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Errorf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestClusterSliceAPIs(t *testing.T) {
	c := startCluster(t, 3)
	keys := make([]string, 100)
	vals := make([][]byte, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("slice:%03d", i)
		vals[i] = []byte(fmt.Sprintf("payload-%03d", i))
	}
	if err := c.MSetSlice(keys, vals); err != nil {
		t.Fatal(err)
	}
	// Positional results, with a missing key yielding a nil entry in place.
	probe := append([]string{"slice:no-such-key"}, keys...)
	got, err := c.MGetSlice(probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(probe) {
		t.Fatalf("MGetSlice returned %d values for %d keys", len(got), len(probe))
	}
	if got[0] != nil {
		t.Errorf("missing key returned %q", got[0])
	}
	for i, k := range keys {
		if !bytes.Equal(got[i+1], vals[i]) {
			t.Errorf("value mismatch at %s: %q", k, got[i+1])
		}
	}
	if err := c.MSetSlice(keys[:2], vals[:1]); err == nil {
		t.Error("mismatched keys/vals lengths accepted")
	}
}

func TestWrapConnHook(t *testing.T) {
	s, _ := startServer(t)
	var wrapped atomic.Int32
	opts := ClientOptions{WrapConn: func(conn net.Conn) net.Conn {
		wrapped.Add(1)
		return conn
	}}
	c, err := DialOptions(s.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("w", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if wrapped.Load() == 0 {
		t.Error("WrapConn never invoked for the sync client")
	}
	a, err := DialAsync(s.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rep, err := a.Do("w2", []byte("SET"), []byte("w2"), []byte("2"))
	if err != nil || rep.kind != '+' {
		t.Fatalf("async SET through wrapped conn = %+v, %v", rep, err)
	}
	if int(wrapped.Load()) < 2 {
		t.Error("WrapConn never invoked for the async pool")
	}
}

// A scatter burst larger than the in-flight window must not deadlock:
// the writer has to flush buffered commands before blocking on a window
// slot, or the replies that would free the window can never arrive.
// Regression test for a pipelining deadlock hit by Fig7KVQueries
// (hundreds of single-key DELs on one shard against the default window).
func TestBurstLargerThanWindow(t *testing.T) {
	addrs, shutdown, err := LaunchCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	c, err := DialClusterOptions(addrs, ClientOptions{PoolSize: 1, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const n = 600 // per-shard bursts of ~300 single-key commands, window 8
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("burst:%04d", i)
		vals[i] = []byte("v")
	}
	done := make(chan error, 1)
	go func() {
		if err := c.MSetSlice(keys, vals); err != nil {
			done <- err
			return
		}
		deleted, err := c.Del(keys...)
		if err == nil && deleted != n {
			err = fmt.Errorf("deleted %d of %d", deleted, n)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("burst larger than window deadlocked")
	}
}

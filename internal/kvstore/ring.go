package kvstore

import (
	"sort"
	"strconv"
)

// Consistent-hash ring with virtual nodes. The old placement scheme
// (per-call FNV hasher allocation + modulo node count) had two costs: every
// lookup allocated, and any topology change remapped essentially the whole
// keyspace. The ring fixes both. Each shard contributes vnodesPerShard
// points on a 64-bit hash circle; a key is owned by the first point at or
// clockwise after its hash. Lookups are allocation-free (an inlined FNV-1a
// over the key bytes plus a binary search), and adding or removing a shard
// moves only the keys on the arcs it gains or loses — every other
// (key, shard) assignment is untouched, which is what lets a deployment
// grow without a stop-the-world rehash of the feedback keyspace.

// defaultVNodes is the per-shard virtual-node count. 128 points per shard
// keeps the max/mean ownership ratio under ~1.25 for small clusters while
// the whole ring for a 20-shard deployment stays under 40 KB.
const defaultVNodes = 128

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a hashes s with FNV-1a without allocating a hash.Hash.
func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// ringHash scatters fnv64a through the splitmix64 finalizer. Raw FNV-1a is
// badly clustered on the structured strings this ring sees (sequential
// "frame:0042" keys, "shard-2#17" vnode labels): nearby inputs land on
// nearby circle positions and whole shards end up owning almost no arc.
// The finalizer is bijective, so equal-key collision behaviour is
// unchanged — it only spreads positions uniformly around the circle.
func ringHash(s string) uint64 {
	z := fnv64a(s) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ringPoint is one virtual node: a position on the hash circle and the
// shard that owns the arc ending there.
type ringPoint struct {
	hash  uint64
	shard int32
}

// Ring places keys on shards by consistent hashing. A Ring is immutable
// after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	shards int
}

// NewRing builds a ring over `shards` shards with `vnodes` points each
// (vnodes <= 0 selects defaultVNodes). Shard identity is positional: point
// positions depend only on (shard index, vnode index), so extending the
// shard list leaves every existing point — and therefore every surviving
// key assignment — exactly where it was.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		panic("kvstore: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, shards*vnodes), shards: shards}
	for s := 0; s < shards; s++ {
		label := "shard-" + strconv.Itoa(s) + "#"
		for v := 0; v < vnodes; v++ {
			h := ringHash(label + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, shard: int32(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the ring is
		// a pure function of (shards, vnodes).
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring distributes over.
func (r *Ring) Shards() int { return r.shards }

// Lookup returns the shard owning key. It performs no allocations: the key
// is hashed in place and the owning point found by binary search, so the
// hot feedback path pays ~O(len(key)) + O(log points) and nothing else.
func (r *Ring) Lookup(key string) int {
	h := ringHash(key)
	pts := r.points
	// First point with hash >= h, wrapping to 0 past the last point.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0
	}
	return int(pts[lo].shard)
}

package kvstore

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"
)

// AsyncClient is the pipelined replacement for the single-lock Client on
// throughput-critical paths. The old client serializes every caller behind
// one mutex and pays one full round trip per command; under the four
// concurrent WM tasks that means the feedback loop advances one RTT at a
// time. The AsyncClient decouples submission from completion:
//
//   - each connection has a dedicated writer goroutine and reader
//     goroutine. The writer drains queued requests, coalesces everything
//     currently waiting into a single buffered write + flush, and the
//     reader completes replies in FIFO wire order — so N concurrent
//     callers share round trips instead of queueing for them;
//   - an in-flight window (ClientOptions.Window) bounds outstanding
//     requests per connection, providing backpressure instead of
//     unbounded memory growth when the server stalls;
//   - a small connection pool (ClientOptions.PoolSize) multiplies the
//     window. Requests carry an affinity key and all requests with the
//     same key ride the same connection, so per-key operation order is
//     exactly submission order end to end — the property replication
//     forwarding relies on.
//
// A broken connection fails its outstanding and subsequent requests with
// the underlying error; recovery (redial, failover to a replica) is the
// cluster layer's job, where the replacement address is known.
type AsyncClient struct {
	addr string
	opts ClientOptions

	mu     sync.RWMutex
	pipes  []*pipe
	closed bool
}

// errClientClosed is returned for submissions after Close.
var errClientClosed = errors.New("kvstore: client closed")

// DialAsync opens a pipelined client with opts.PoolSize connections to
// addr. Dial failures close any connections already opened.
func DialAsync(addr string, opts ClientOptions) (*AsyncClient, error) {
	opts = opts.withDefaults()
	a := &AsyncClient{addr: addr, opts: opts}
	for i := 0; i < opts.PoolSize; i++ {
		p, err := newPipe(addr, opts)
		if err != nil {
			return nil, errors.Join(err, a.Close())
		}
		a.pipes = append(a.pipes, p)
	}
	return a, nil
}

// Addr returns the remote address the client was dialed against.
func (a *AsyncClient) Addr() string { return a.addr }

// Do submits one command and blocks for its reply. affinity selects the
// pool connection: commands sharing an affinity key are executed in
// submission order. An empty affinity pins to the first connection.
func (a *AsyncClient) Do(affinity string, args ...[]byte) (*reply, error) {
	c, err := a.submit(affinity, args...)
	if err != nil {
		return nil, err
	}
	return c.wait()
}

// submit enqueues one command without waiting. The returned call completes
// when the reply (or a transport error) arrives.
//
// The send happens outside a.mu: holding even the read lock across a
// channel send means one stalled pipe (full window, dead server) wedges
// Close — and, because a pending writer blocks new RLocks, every other
// pipe's submitters with it. Instead each submitter registers on the
// pipe's submitter count under the read lock; pipe.close waits for that
// count to drain before closing reqCh, so the send can never race the
// close. The Add happens-before Close's write lock, so a submitter that
// passed the closed check is always awaited.
func (a *AsyncClient) submit(affinity string, args ...[]byte) (*call, error) {
	c := &call{args: args, done: make(chan struct{})}
	a.mu.RLock()
	if a.closed {
		a.mu.RUnlock()
		return nil, errClientClosed
	}
	p := a.pipes[a.pick(affinity)]
	p.subWg.Add(1)
	a.mu.RUnlock()
	p.reqCh <- c
	p.subWg.Done()
	return c, nil
}

// pick maps an affinity key onto a pool connection, allocation-free.
func (a *AsyncClient) pick(affinity string) int {
	if affinity == "" || len(a.pipes) == 1 {
		return 0
	}
	return int(fnv64a(affinity) % uint64(len(a.pipes)))
}

// Close tears down every connection and fails outstanding requests.
func (a *AsyncClient) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	pipes := a.pipes
	a.mu.Unlock()
	var first error
	for _, p := range pipes {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// pipe: one pipelined connection

// call is one in-flight request: arguments on the way out, a reply or
// error on the way back, with done closed at completion.
type call struct {
	args [][]byte
	rep  *reply
	err  error
	done chan struct{}
}

func (c *call) fail(err error) {
	c.err = err
	close(c.done)
}

func (c *call) wait() (*reply, error) {
	<-c.done
	return c.rep, c.err
}

// pipe is one connection with its writer/reader goroutine pair. The writer
// owns the buffered writer, the reader owns the buffered reader, and the
// inflight channel carries calls between them in wire order; its capacity
// is the in-flight window, so a full window blocks the writer (and
// transitively submitters) until replies drain — bounded pipelining.
type pipe struct {
	conn     net.Conn
	w        *bufio.Writer
	r        *bufio.Reader
	reqCh    chan *call
	inflight chan *call
	opts     ClientOptions
	wg       sync.WaitGroup
	// subWg counts submitters currently sending on reqCh (registered under
	// the client's read lock); close waits for it before closing reqCh.
	subWg sync.WaitGroup

	errMu  sync.Mutex
	broken error
}

func newPipe(addr string, opts ClientOptions) (*pipe, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	tuneConn(conn)
	if opts.WrapConn != nil {
		conn = opts.WrapConn(conn)
	}
	p := &pipe{
		conn:     conn,
		w:        bufio.NewWriterSize(conn, ioBufSize),
		r:        bufio.NewReaderSize(conn, ioBufSize),
		reqCh:    make(chan *call, opts.Window),
		inflight: make(chan *call, opts.Window),
		opts:     opts,
	}
	p.wg.Add(2)
	go p.writeLoop()
	go p.readLoop()
	return p, nil
}

// markBroken records the first transport error and closes the socket so
// the peer goroutine unblocks; all later calls fail with this error. The
// close happens after errMu is released — a socket teardown can block, and
// loadErr is on the per-command hot path.
func (p *pipe) markBroken(err error) {
	p.errMu.Lock()
	first := p.broken == nil
	if first {
		p.broken = err
	}
	p.errMu.Unlock()
	if first {
		p.conn.Close() // best-effort: already failing with the first transport error
	}
}

func (p *pipe) loadErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.broken
}

// writeLoop drains submissions: it blocks for the first queued call, then
// coalesces everything else currently waiting into the same buffered
// write, and flushes once — concurrent callers therefore share a single
// syscall and a single server wakeup per burst, which is where the
// pipelined throughput comes from.
func (p *pipe) writeLoop() {
	defer p.wg.Done()
	defer close(p.inflight)
	for c := range p.reqCh {
		p.writeOne(c)
		// Coalesce the rest of the burst without blocking.
		for more := true; more; {
			select {
			case c2, ok := <-p.reqCh:
				if !ok {
					more = false
					break
				}
				p.writeOne(c2)
			default:
				more = false
			}
		}
		p.flush()
	}
}

// writeOne reserves a window slot and buffers one command. When the
// window is full it flushes before blocking on the slot: the replies
// that free window slots can only arrive for commands that actually
// reached the wire, so holding them buffered while waiting would
// deadlock any burst larger than the window.
func (p *pipe) writeOne(c *call) {
	if err := p.loadErr(); err != nil {
		c.fail(err)
		return
	}
	select {
	case p.inflight <- c:
	default:
		p.flush()
		p.inflight <- c
	}
	if err := writeCommand(p.w, c.args...); err != nil {
		p.markBroken(err)
	}
}

func (p *pipe) flush() {
	if p.loadErr() != nil {
		return
	}
	if p.opts.WriteTimeout > 0 {
		// Socket deadlines are wall-clock by nature; they bound I/O stalls
		// and never influence replayed state.
		//lint:allow determinism -- wall-clock socket deadline, invisible to replay state
		if err := p.conn.SetWriteDeadline(time.Now().Add(p.opts.WriteTimeout)); err != nil {
			p.markBroken(err)
			return
		}
	}
	if err := p.w.Flush(); err != nil {
		p.markBroken(err)
	}
}

// readLoop completes calls in wire order. On a read error it fails the
// current call, marks the pipe broken, and keeps draining so queued calls
// fail promptly instead of hanging.
func (p *pipe) readLoop() {
	defer p.wg.Done()
	for c := range p.inflight {
		if err := p.loadErr(); err != nil {
			c.fail(err)
			continue
		}
		if p.opts.ReadTimeout > 0 {
			//lint:allow determinism -- wall-clock socket deadline, invisible to replay state
			if err := p.conn.SetReadDeadline(time.Now().Add(p.opts.ReadTimeout)); err != nil {
				p.markBroken(err)
				c.fail(err)
				continue
			}
		}
		rep, err := readReply(p.r)
		if err != nil {
			p.markBroken(err)
			c.fail(err)
			continue
		}
		c.rep = rep
		close(c.done)
	}
}

// close shuts the pipe down: in-flight submitters drain (the client's
// closed flag stops new ones registering), reqCh closes so the writer
// exits, the reader completes or fails what is left, and both goroutines
// are joined before the socket result is returned. The socket close
// happens outside errMu, mirroring markBroken.
func (p *pipe) close() error {
	p.subWg.Wait()
	close(p.reqCh)
	p.wg.Wait()
	p.errMu.Lock()
	wasBroken := p.broken != nil
	if !wasBroken {
		p.broken = errClientClosed
	}
	p.errMu.Unlock()
	if wasBroken {
		return nil // socket already closed by markBroken
	}
	return p.conn.Close()
}

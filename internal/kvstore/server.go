package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
)

// Server serves one Engine over TCP. One goroutine per connection, a
// buffered writer flushed once per request batch — the standard shape for a
// high-throughput in-memory store.
type Server struct {
	engine *Engine
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Counters for the Fig. 7 experiment.
	commands atomic.Int64
}

// NewServer wraps an engine (NewEngine() if nil).
func NewServer(engine *Engine) *Server {
	if engine == nil {
		engine = NewEngine()
	}
	return &Server{engine: engine, conns: make(map[net.Conn]struct{})}
}

// Engine returns the server's engine (shared with embedded users).
func (s *Server) Engine() *Engine { return s.engine }

// Listen binds addr ("127.0.0.1:0" for an ephemeral test port) and starts
// accepting connections. It returns the bound address immediately.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvstore: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64*1024)
	w := bufio.NewWriterSize(conn, 64*1024)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		s.commands.Add(1)
		if err := s.dispatch(w, args); err != nil {
			return
		}
		// Flush only when no further pipelined request is already buffered:
		// this is what makes pipelined batches fast.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(w *bufio.Writer, args [][]byte) error {
	cmd := strings.ToUpper(string(args[0]))
	e := s.engine
	switch cmd {
	case "PING":
		return writeSimple(w, "PONG")
	case "SET":
		if len(args) != 3 {
			return writeError(w, "wrong number of arguments for SET")
		}
		e.Set(string(args[1]), args[2])
		return writeSimple(w, "OK")
	case "GET":
		if len(args) != 2 {
			return writeError(w, "wrong number of arguments for GET")
		}
		v, err := e.Get(string(args[1]))
		if err != nil {
			return writeBulk(w, nil)
		}
		return writeBulk(w, v)
	case "DEL":
		if len(args) < 2 {
			return writeError(w, "wrong number of arguments for DEL")
		}
		keys := make([]string, len(args)-1)
		for i, a := range args[1:] {
			keys[i] = string(a)
		}
		return writeInt(w, int64(e.Del(keys...)))
	case "EXISTS":
		if len(args) != 2 {
			return writeError(w, "wrong number of arguments for EXISTS")
		}
		if e.Exists(string(args[1])) {
			return writeInt(w, 1)
		}
		return writeInt(w, 0)
	case "KEYS":
		if len(args) != 2 {
			return writeError(w, "wrong number of arguments for KEYS")
		}
		ks := e.Keys(string(args[1]))
		items := make([][]byte, len(ks))
		for i, k := range ks {
			items[i] = []byte(k)
		}
		return writeArray(w, items)
	case "RENAME":
		if len(args) != 3 {
			return writeError(w, "wrong number of arguments for RENAME")
		}
		if err := e.Rename(string(args[1]), string(args[2])); err != nil {
			return writeError(w, "no such key")
		}
		return writeSimple(w, "OK")
	case "MGET":
		if len(args) < 2 {
			return writeError(w, "wrong number of arguments for MGET")
		}
		keys := make([]string, len(args)-1)
		for i, a := range args[1:] {
			keys[i] = string(a)
		}
		return writeArray(w, e.MGet(keys...))
	case "DBSIZE":
		return writeInt(w, int64(e.Size()))
	case "FLUSHALL":
		e.Flush()
		return writeSimple(w, "OK")
	default:
		return writeError(w, "unknown command '"+sanitizeCmd(cmd)+"'")
	}
}

func sanitizeCmd(c string) string {
	c = strings.Map(func(r rune) rune {
		if r < 0x20 || r > 0x7e {
			return '?'
		}
		return r
	}, c)
	if len(c) > 32 {
		c = c[:32]
	}
	return c
}

// Commands returns the number of commands served (all connections).
func (s *Server) Commands() int64 { return s.commands.Load() }

// Addr returns the listen address, or "" before Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

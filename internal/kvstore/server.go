package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
)

// Server serves one Engine over TCP. One goroutine per connection, a
// buffered writer flushed once per request batch — the standard shape for a
// high-throughput in-memory store.
//
// A server may act as a shard primary by naming a replica address
// (SetReplica): every mutating command is then forwarded to the replica
// and the replica's acknowledgement is awaited before the client reply is
// flushed. A client that has seen OK therefore knows the write exists on
// both nodes — killing the primary at any instant loses no acknowledged
// state, which is the invariant the failover chaos tests assert. If the
// replica link itself fails, the primary degrades to standalone serving
// (availability over replication in the single-failure model) and reports
// it via ReplicaDegraded.
type Server struct {
	engine      *Engine
	ln          net.Listener
	replicaAddr string
	replOpts    ClientOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Counters for the Fig. 7 experiment and replication health.
	commands     atomic.Int64
	replForwards atomic.Int64
	replDegraded atomic.Bool
}

// NewServer wraps an engine (NewEngine() if nil).
func NewServer(engine *Engine) *Server {
	if engine == nil {
		engine = NewEngine()
	}
	return &Server{engine: engine, conns: make(map[net.Conn]struct{})}
}

// SetReplica names the replica this server forwards mutations to,
// promoting it to shard primary. Must be called before Listen. An empty
// addr (the default) serves standalone.
func (s *Server) SetReplica(addr string) { s.replicaAddr = addr }

// SetReplicaOptions overrides the dial/deadline options of replica links
// (default: zero ClientOptions, i.e. 5s dial timeout, unbounded I/O).
func (s *Server) SetReplicaOptions(opts ClientOptions) { s.replOpts = opts }

// ReplicaDegraded reports whether the replica link failed and the primary
// fell back to standalone serving.
func (s *Server) ReplicaDegraded() bool { return s.replDegraded.Load() }

// ReplicaForwards returns how many mutations were forwarded to (and
// acknowledged by) the replica.
func (s *Server) ReplicaForwards() int64 { return s.replForwards.Load() }

// Engine returns the server's engine (shared with embedded users).
func (s *Server) Engine() *Engine { return s.engine }

// Listen binds addr ("127.0.0.1:0" for an ephemeral test port) and starts
// accepting connections. It returns the bound address immediately.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvstore: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		tuneConn(conn)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// replLink is one connection's private pipe to the shard replica. Each
// inbound connection forwards its own mutations over its own link, so the
// order of a connection's mutations on the replica matches the primary —
// and since the cluster client pins each key to one connection, per-key
// order is preserved end to end.
type replLink struct {
	conn    net.Conn
	w       *bufio.Writer
	r       *bufio.Reader
	pending int
}

// mutates reports whether a command changes the keyspace (and must
// therefore be forwarded to the replica). The switch on string(cmd) is
// allocation-free (the compiler special-cases the conversion).
func mutates(cmd []byte) bool {
	switch string(cmd) {
	case "SET", "MSET", "DEL", "RENAME", "FLUSHALL":
		return true
	}
	return false
}

// upperASCII uppercases the command name in place — the buffer is owned by
// this request (readCommand allocates fresh), so dispatch never pays a
// strings.ToUpper allocation.
func upperASCII(b []byte) {
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - ('a' - 'A')
		}
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, ioBufSize)
	w := bufio.NewWriterSize(conn, ioBufSize)
	var rl *replLink
	defer func() {
		if rl != nil {
			rl.conn.Close()
		}
	}()
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		s.commands.Add(1)
		upperASCII(args[0])
		if s.replicaAddr != "" && mutates(args[0]) && !s.replDegraded.Load() {
			rl = s.forward(rl, args)
		}
		if err := s.dispatch(w, args); err != nil {
			return
		}
		// Flush only when no further pipelined request is already buffered:
		// this is what makes pipelined batches fast. Replica acks are
		// collected first, so a flushed client reply implies the replica
		// holds the write.
		if r.Buffered() == 0 {
			if rl != nil && rl.pending > 0 {
				rl = s.syncReplica(rl)
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// forward pipelines one mutation onto the replica link, dialing it lazily.
// Any link failure degrades the server to standalone (nil link).
func (s *Server) forward(rl *replLink, args [][]byte) *replLink {
	if rl == nil {
		conn, err := net.DialTimeout("tcp", s.replicaAddr, s.replOpts.withDefaults().DialTimeout)
		if err != nil {
			s.replDegraded.Store(true)
			return nil
		}
		tuneConn(conn)
		rl = &replLink{
			conn: conn,
			w:    bufio.NewWriterSize(conn, ioBufSize),
			r:    bufio.NewReaderSize(conn, ioBufSize),
		}
	}
	if err := writeCommand(rl.w, args...); err != nil {
		s.degradeReplica(rl)
		return nil
	}
	rl.pending++
	return rl
}

// syncReplica flushes the replica link and consumes one ack per forwarded
// mutation, returning the link (or nil after degrading on failure).
func (s *Server) syncReplica(rl *replLink) *replLink {
	if err := rl.w.Flush(); err != nil {
		s.degradeReplica(rl)
		return nil
	}
	for ; rl.pending > 0; rl.pending-- {
		if _, err := readReply(rl.r); err != nil {
			s.degradeReplica(rl)
			return nil
		}
		s.replForwards.Add(1)
	}
	return rl
}

func (s *Server) degradeReplica(rl *replLink) {
	s.replDegraded.Store(true)
	rl.conn.Close() // best-effort: link already failed
}

func (s *Server) dispatch(w *bufio.Writer, args [][]byte) error {
	e := s.engine
	switch string(args[0]) {
	case "PING":
		return writeSimple(w, "PONG")
	case "SET":
		if len(args) != 3 {
			return writeError(w, "wrong number of arguments for SET")
		}
		// Argument buffers are owned by this request; hand the value to the
		// engine without a second copy.
		e.setOwned(string(args[1]), args[2])
		return writeSimple(w, "OK")
	case "MSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return writeError(w, "wrong number of arguments for MSET")
		}
		e.msetOwned(args[1:])
		return writeSimple(w, "OK")
	case "GET":
		if len(args) != 2 {
			return writeError(w, "wrong number of arguments for GET")
		}
		v, ok := e.getRef(args[1])
		if !ok {
			return writeBulk(w, nil)
		}
		return writeBulk(w, v)
	case "DEL":
		if len(args) < 2 {
			return writeError(w, "wrong number of arguments for DEL")
		}
		keys := make([]string, len(args)-1)
		for i, a := range args[1:] {
			keys[i] = string(a)
		}
		return writeInt(w, int64(e.Del(keys...)))
	case "EXISTS":
		if len(args) != 2 {
			return writeError(w, "wrong number of arguments for EXISTS")
		}
		if e.Exists(string(args[1])) {
			return writeInt(w, 1)
		}
		return writeInt(w, 0)
	case "KEYS":
		if len(args) != 2 {
			return writeError(w, "wrong number of arguments for KEYS")
		}
		ks := e.Keys(string(args[1]))
		items := make([][]byte, len(ks))
		for i, k := range ks {
			items[i] = []byte(k)
		}
		return writeArray(w, items)
	case "RENAME":
		if len(args) != 3 {
			return writeError(w, "wrong number of arguments for RENAME")
		}
		if err := e.Rename(string(args[1]), string(args[2])); err != nil {
			return writeError(w, "no such key")
		}
		return writeSimple(w, "OK")
	case "MGET":
		if len(args) < 2 {
			return writeError(w, "wrong number of arguments for MGET")
		}
		// Serialize references straight out of the engine — stored values
		// are immutable, so no per-key clone on the read path.
		return writeArray(w, e.mgetRef(args[1:]))
	case "DBSIZE":
		return writeInt(w, int64(e.Size()))
	case "FLUSHALL":
		e.Flush()
		return writeSimple(w, "OK")
	default:
		return writeError(w, "unknown command '"+sanitizeCmd(string(args[0]))+"'")
	}
}

func sanitizeCmd(c string) string {
	c = strings.Map(func(r rune) rune {
		if r < 0x20 || r > 0x7e {
			return '?'
		}
		return r
	}, c)
	if len(c) > 32 {
		c = c[:32]
	}
	return c
}

// Commands returns the number of commands served (all connections).
func (s *Server) Commands() int64 { return s.commands.Load() }

// Addr returns the listen address, or "" before Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	//lint:allow determinism -- teardown close order of live sockets is inherently unordered
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

package kvstore_test

import (
	"fmt"

	"testing"

	"mummi/internal/datastore"
	"mummi/internal/datastore/dstest"
	"mummi/internal/kvstore"
	"mummi/internal/telemetry"
)

func TestStoreConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		addrs, shutdown, err := kvstore.LaunchCluster(3)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(shutdown)
		s, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestArmoredStoreConformance re-runs the suite through datastore.Armor:
// the retry wrapper must be semantically invisible over a healthy cluster.
func TestArmoredStoreConformance(t *testing.T) {
	dstest.Run(t, func(t *testing.T) datastore.Store {
		addrs, shutdown, err := kvstore.LaunchCluster(3)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(shutdown)
		s, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		return datastore.Armor(s, telemetry.Nop(), "kv", datastore.ArmorOptions{})
	})
}

func TestStoreRejectsSeparatorInNames(t *testing.T) {
	addrs, shutdown, err := kvstore.LaunchCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	s, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("bad:ns", "k", nil); err == nil {
		t.Error("namespace with separator accepted")
	}
	if err := s.Put("ns", "bad:key", nil); err == nil {
		t.Error("key with separator accepted")
	}
	if err := s.Put("", "k", nil); err == nil {
		t.Error("empty namespace accepted")
	}
	if _, err := s.Keys("bad:ns"); err == nil {
		t.Error("Keys with separator accepted")
	}
}

func TestStoreBatchOps(t *testing.T) {
	addrs, shutdown, err := kvstore.LaunchCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	s, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	bg, ok := s.(datastore.BatchGetter)
	if !ok {
		t.Fatal("kv store does not implement BatchGetter")
	}
	bm, ok := s.(datastore.BatchMover)
	if !ok {
		t.Fatal("kv store does not implement BatchMover")
	}

	var keys []string
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("f%03d", i)
		keys = append(keys, k)
		if err := s.Put("new", k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Batch get, including misses.
	got, err := bg.GetBatch("new", append([]string{"missing"}, keys...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("GetBatch returned %d values", len(got))
	}
	if _, present := got["missing"]; present {
		t.Error("missing key present in batch result")
	}
	if string(got["f007"]) != "v-f007" {
		t.Errorf("value = %q", got["f007"])
	}
	// Batch move: the tagging primitive.
	if err := bm.MoveBatch("new", keys, "done"); err != nil {
		t.Fatal(err)
	}
	left, _ := s.Keys("new")
	done, _ := s.Keys("done")
	if len(left) != 0 || len(done) != 60 {
		t.Errorf("after MoveBatch: new=%d done=%d", len(left), len(done))
	}
	// Invalid names surface errors.
	if _, err := bg.GetBatch("bad:ns", []string{"k"}); err == nil {
		t.Error("GetBatch with bad namespace accepted")
	}
	if err := bm.MoveBatch("new", []string{"bad:key"}, "done"); err == nil {
		t.Error("MoveBatch with bad key accepted")
	}
}

func TestStoreMoveStaysOnNode(t *testing.T) {
	// Key-based placement: a namespace move must not change the owning
	// node, so the value survives even if the "other" namespace hashes
	// elsewhere.
	addrs, shutdown, err := kvstore.LaunchCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	s, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key%02d", i)
		if err := s.Put("a", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		if err := s.Move("a", k, "b"); err != nil {
			t.Fatal(err)
		}
		v, err := s.Get("b", k)
		if err != nil || string(v) != k {
			t.Fatalf("Get after move = %q, %v", v, err)
		}
	}
}

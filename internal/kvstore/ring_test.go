package kvstore

import (
	"fmt"
	"testing"
)

func TestRingDistribution(t *testing.T) {
	const shards, keys = 4, 100000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("frame:%06d", i))]++
	}
	// With 128 vnodes per shard the max/mean ownership ratio stays modest;
	// every shard must own a substantial share.
	for s, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.40 {
			t.Errorf("shard %d owns %.3f of keys, want roughly 1/%d", s, frac, shards)
		}
	}
}

func TestRingStabilityUnderGrowth(t *testing.T) {
	const keys = 20000
	small, big := NewRing(4, 0), NewRing(5, 0)
	moved, stolen := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%05d", i)
		a, b := small.Lookup(k), big.Lookup(k)
		if a != b {
			moved++
			if b != 4 {
				// Consistency property: growing the ring may only move keys
				// onto the new shard, never shuffle them between old shards.
				t.Fatalf("key %q moved between old shards: %d -> %d", k, a, b)
			}
			stolen++
		}
	}
	// The new shard should steal roughly its fair 1/5 share.
	frac := float64(stolen) / keys
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("new shard stole %.3f of keys, want ~0.20", frac)
	}
}

func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(7, 64), NewRing(7, 64)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings disagree on %q", k)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for i := 0; i < 100; i++ {
		if got := r.Lookup(fmt.Sprintf("k%d", i)); got != 0 {
			t.Fatalf("single-shard ring returned %d", got)
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(20, 0)
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("pfu:new:frame-%06d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i&511])
	}
}

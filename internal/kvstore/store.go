package kvstore

import (
	"errors"
	"fmt"
	"strings"

	"mummi/internal/datastore"
)

// nsSep joins namespace and key into the flat cluster keyspace. Namespaces
// and keys may not contain it.
const nsSep = ":"

// Store adapts a Cluster to the abstract data interface: namespaces become
// key prefixes, Keys becomes a prefix scan, Move becomes a rename. This is
// MuMMI's "redis interface": any component can talk to it while cluster
// details stay hidden.
//
// Placement hashes only the bare key (not the namespace), so moving a key
// between namespaces — the feedback tagging primitive — is always a
// same-shard rename, never a cross-shard copy. The bare key is also the
// pipe affinity, so all operations on one key are ordered end to end even
// through the pooled async client and onto the replica.
type Store struct{ c *Cluster }

// NewStore wraps an existing cluster connection.
func NewStore(c *Cluster) *Store { return &Store{c: c} }

func init() {
	datastore.Register(datastore.BackendKV, func(cfg datastore.Config) (datastore.Store, error) {
		if len(cfg.Replicas) > 0 {
			if len(cfg.Replicas) != len(cfg.Addrs) {
				return nil, fmt.Errorf("kvstore: %d addrs but %d replicas", len(cfg.Addrs), len(cfg.Replicas))
			}
			shards := make([]Shard, len(cfg.Addrs))
			for i, a := range cfg.Addrs {
				shards[i] = Shard{Primary: a, Replica: cfg.Replicas[i]}
			}
			cl, err := DialShards(shards, ClientOptions{})
			if err != nil {
				return nil, err
			}
			return NewStore(cl), nil
		}
		cl, err := DialCluster(cfg.Addrs)
		if err != nil {
			return nil, err
		}
		return NewStore(cl), nil
	})
}

func nsKey(ns, key string) (string, error) {
	if ns == "" || key == "" || strings.Contains(ns, nsSep) || strings.Contains(key, nsSep) {
		return "", fmt.Errorf("kvstore: invalid namespace/key %q/%q", ns, key)
	}
	return ns + nsSep + key, nil
}

// Put implements datastore.Store.
func (s *Store) Put(ns, key string, data []byte) error {
	k, err := nsKey(ns, key)
	if err != nil {
		return err
	}
	rep, err := s.c.doOnShard(s.c.ring.Lookup(key), key, []byte("SET"), []byte(k), data)
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return errors.New(rep.str)
	}
	return nil
}

// Get implements datastore.Store.
func (s *Store) Get(ns, key string) ([]byte, error) {
	k, err := nsKey(ns, key)
	if err != nil {
		return nil, err
	}
	rep, err := s.c.doOnShard(s.c.ring.Lookup(key), key, []byte("GET"), []byte(k))
	if err != nil {
		return nil, err
	}
	if rep.kind != '$' {
		return nil, errProtocol
	}
	if rep.bulk == nil {
		return nil, fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	return rep.bulk, nil
}

// Delete implements datastore.Store.
func (s *Store) Delete(ns, key string) error {
	k, err := nsKey(ns, key)
	if err != nil {
		return err
	}
	rep, err := s.c.doOnShard(s.c.ring.Lookup(key), key, []byte("DEL"), []byte(k))
	if err != nil {
		return err
	}
	if rep.n == 0 {
		return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	return nil
}

// Keys implements datastore.Store.
func (s *Store) Keys(ns string) ([]string, error) {
	if ns == "" || strings.Contains(ns, nsSep) {
		return nil, fmt.Errorf("kvstore: invalid namespace %q", ns)
	}
	full, err := s.c.Keys(ns + nsSep + "*")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(full))
	for i, f := range full {
		out[i] = strings.TrimPrefix(f, ns+nsSep)
	}
	return out, nil
}

// Move implements datastore.Store ("renaming keys in the database"):
// bare-key placement makes this a single same-shard RENAME.
func (s *Store) Move(srcNS, key, dstNS string) error {
	src, err := nsKey(srcNS, key)
	if err != nil {
		return err
	}
	dst, err := nsKey(dstNS, key)
	if err != nil {
		return err
	}
	rep, err := s.c.doOnShard(s.c.ring.Lookup(key), key, []byte("RENAME"), []byte(src), []byte(dst))
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, srcNS, key)
	}
	return nil
}

// groupBare splits bare keys into per-shard lists (input order preserved
// within each shard), validating each against the namespace.
func (s *Store) groupBare(ns string, keys []string) ([][]string, error) {
	groups := make([][]string, len(s.c.shards))
	for _, k := range keys {
		if _, err := nsKey(ns, k); err != nil {
			return nil, err
		}
		i := s.c.ring.Lookup(k)
		groups[i] = append(groups[i], k)
	}
	return groups, nil
}

// GetBatch implements datastore.BatchGetter: one pipelined MGET per shard,
// all shards queried in parallel.
func (s *Store) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	groups, err := s.groupBare(ns, keys)
	if err != nil {
		return nil, err
	}
	per := make([]map[string][]byte, len(groups))
	err = s.c.fanout(func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		args := make([][]byte, 1, len(groups[i])+1)
		args[0] = []byte("MGET")
		for _, k := range groups[i] {
			args = append(args, []byte(ns+nsSep+k))
		}
		rep, err := s.c.doOnShard(i, "", args...)
		if err != nil {
			return err
		}
		if rep.kind != '*' || len(rep.array) != len(groups[i]) {
			return errProtocol
		}
		m := make(map[string][]byte, len(groups[i]))
		for j, k := range groups[i] {
			if rep.array[j] != nil {
				m[k] = rep.array[j]
			}
		}
		per[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for _, m := range per {
		//lint:allow determinism -- map-to-map merge of disjoint key sets; result is order-independent
		for k, v := range m {
			out[k] = v
		}
	}
	return out, nil
}

// MoveBatch implements datastore.BatchMover: with bare-key placement every
// rename is same-shard, so the whole batch is one pipelined RENAME burst
// per shard, all shards in parallel. Keys missing from srcNS are skipped
// (not errors) — that contract is what makes the failover retry of a
// partially applied burst safe: a rename that already happened simply
// reports "no such key" on replay.
func (s *Store) MoveBatch(srcNS string, keys []string, dstNS string) error {
	groups := make([][]string, len(s.c.shards))
	for _, k := range keys {
		if _, err := nsKey(srcNS, k); err != nil {
			return err
		}
		if _, err := nsKey(dstNS, k); err != nil {
			return err
		}
		i := s.c.ring.Lookup(k)
		groups[i] = append(groups[i], k)
	}
	return s.c.fanout(func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		cmds := make([][][]byte, len(groups[i]))
		for j, k := range groups[i] {
			cmds[j] = [][]byte{[]byte("RENAME"), []byte(srcNS + nsSep + k), []byte(dstNS + nsSep + k)}
		}
		_, err := s.c.shards[i].doBatch(s.c, groups[i], cmds)
		return err
	})
}

// Close implements datastore.Store.
func (s *Store) Close() error { return s.c.Close() }

// ---------------------------------------------------------------------------
// Test / deployment helpers

// launchServers starts n standalone in-process servers on ephemeral
// loopback ports.
func launchServers(n int) (servers []*Server, addrs []string, err error) {
	stop := func() {
		for _, s := range servers {
			s.Close() //lint:allow errdiscipline -- best-effort teardown of ephemeral in-process servers
		}
	}
	for i := 0; i < n; i++ {
		s := NewServer(nil)
		addr, lerr := s.Listen("127.0.0.1:0")
		if lerr != nil {
			stop()
			return nil, nil, lerr
		}
		servers = append(servers, s)
		addrs = append(addrs, addr)
	}
	return servers, addrs, nil
}

// LaunchCluster starts n in-process servers on ephemeral loopback ports and
// returns their addresses plus a shutdown function. MuMMI's redis interface
// "sets up a cluster of Redis servers ... allocated randomly to all compute
// nodes"; this is that setup step for a single-machine deployment.
func LaunchCluster(n int) (addrs []string, shutdown func(), err error) {
	servers, addrs, err := launchServers(n)
	if err != nil {
		return nil, nil, err
	}
	return addrs, func() {
		for _, s := range servers {
			s.Close() //lint:allow errdiscipline -- best-effort teardown of ephemeral in-process servers
		}
	}, nil
}

// Deployment is a replicated in-process cluster: n shards, each a primary
// forwarding writes to its replica. Tests and benchmarks use it to kill a
// primary mid-workload and assert nothing acknowledged is lost.
type Deployment struct {
	primaries []*Server
	replicas  []*Server
	shards    []Shard
}

// LaunchReplicated starts n primary/replica pairs on ephemeral loopback
// ports. Each replica comes up first (standalone), then its primary with
// forwarding configured.
func LaunchReplicated(n int) (*Deployment, error) {
	d := &Deployment{}
	for i := 0; i < n; i++ {
		replica := NewServer(nil)
		raddr, err := replica.Listen("127.0.0.1:0")
		if err != nil {
			d.Close()
			return nil, err
		}
		d.replicas = append(d.replicas, replica)
		primary := NewServer(nil)
		primary.SetReplica(raddr)
		paddr, err := primary.Listen("127.0.0.1:0")
		if err != nil {
			replica.Close() //lint:allow errdiscipline -- best-effort teardown on launch failure
			d.Close()
			return nil, err
		}
		d.primaries = append(d.primaries, primary)
		d.shards = append(d.shards, Shard{Primary: paddr, Replica: raddr})
	}
	return d, nil
}

// Shards returns the shard list to dial the deployment with.
func (d *Deployment) Shards() []Shard { return append([]Shard(nil), d.shards...) }

// Primary returns shard i's primary server.
func (d *Deployment) Primary(i int) *Server { return d.primaries[i] }

// Replica returns shard i's replica server.
func (d *Deployment) Replica(i int) *Server { return d.replicas[i] }

// KillPrimary hard-stops shard i's primary — connections drop mid-stream,
// exactly like a node crash as far as clients can tell.
func (d *Deployment) KillPrimary(i int) { d.primaries[i].Close() } //lint:allow errdiscipline -- deliberate crash injection; the error is the point

// Close stops every server.
func (d *Deployment) Close() {
	for _, s := range d.primaries {
		s.Close() //lint:allow errdiscipline -- best-effort teardown of ephemeral in-process servers
	}
	for _, s := range d.replicas {
		s.Close() //lint:allow errdiscipline -- best-effort teardown of ephemeral in-process servers
	}
}

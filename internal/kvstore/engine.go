// Package kvstore is mummi-go's substitute for the Redis™ cluster the paper
// uses for high-throughput, updatable in situ data (§4.2): an in-memory
// key-value engine, a TCP server speaking a RESP-compatible wire protocol,
// a pipelining client, and a cluster client that spreads keys across server
// nodes. Feedback runs against this store instead of the filesystem, which
// is what bought the paper its >12× faster feedback loop: key scans,
// value reads, deletions, and renames (the "move out of namespace" tagging
// primitive) all happen at memory speed, away from contended directories.
package kvstore

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// ErrNoSuchKey is returned by Get/Rename for missing keys.
var ErrNoSuchKey = errors.New("kvstore: no such key")

// Engine is the in-memory keyspace. It is safe for concurrent use and is
// shared by the embedded (in-process) and networked paths, so behaviour is
// identical whichever way a component connects.
type Engine struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{m: make(map[string][]byte)} }

// Set stores value under key. The stored copy is always non-nil so that an
// empty value stays distinguishable from a missing key on the wire (RESP
// encodes missing as a nil bulk string, empty as a zero-length one).
func (e *Engine) Set(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	e.mu.Lock()
	e.m[key] = v
	e.mu.Unlock()
}

// clone copies b into a fresh non-nil slice (append would return nil for
// empty input, collapsing "empty value" into "missing key").
func clone(b []byte) []byte {
	v := make([]byte, len(b))
	copy(v, b)
	return v
}

// setOwned stores value without copying — the server's fast path. The
// caller must hand over a freshly allocated slice and never touch it again;
// combined with Set's clone-on-write this keeps every stored value
// immutable, which is what lets getRef/mgetRef serve references.
func (e *Engine) setOwned(key string, value []byte) {
	if value == nil {
		value = []byte{}
	}
	e.mu.Lock()
	e.m[key] = value
	e.mu.Unlock()
}

// msetOwned stores alternating key/value arguments under a single lock
// acquisition — the per-key cost inside an MSET batch is one map assign,
// not a lock round trip. Ownership semantics match setOwned.
func (e *Engine) msetOwned(kv [][]byte) {
	e.mu.Lock()
	for i := 0; i+1 < len(kv); i += 2 {
		v := kv[i+1]
		if v == nil {
			v = []byte{}
		}
		e.m[string(kv[i])] = v
	}
	e.mu.Unlock()
}

// Get returns the value at key.
func (e *Engine) Get(key string) ([]byte, error) {
	e.mu.RLock()
	v, ok := e.m[key]
	e.mu.RUnlock()
	if !ok {
		return nil, ErrNoSuchKey
	}
	return clone(v), nil
}

// getRef returns the stored value without copying. Stored values are
// immutable (Set clones, setOwned transfers ownership, Rename moves the
// slice), so the reference is safe to serialize concurrently with writes —
// a racing Set replaces the map entry, it never mutates the old bytes.
// Callers must not mutate the result.
func (e *Engine) getRef(key []byte) ([]byte, bool) {
	e.mu.RLock()
	v, ok := e.m[string(key)]
	e.mu.RUnlock()
	return v, ok
}

// mgetRef is the multi-key getRef: one lock acquisition, references out,
// nil entries for missing keys. Same immutability contract as getRef.
func (e *Engine) mgetRef(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	e.mu.RLock()
	for i, k := range keys {
		if v, ok := e.m[string(k)]; ok {
			out[i] = v
		}
	}
	e.mu.RUnlock()
	return out
}

// Del removes keys, returning how many existed.
func (e *Engine) Del(keys ...string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := e.m[k]; ok {
			delete(e.m, k)
			n++
		}
	}
	return n
}

// Exists reports whether key is present.
func (e *Engine) Exists(key string) bool {
	e.mu.RLock()
	_, ok := e.m[key]
	e.mu.RUnlock()
	return ok
}

// Keys returns all keys matching pattern, sorted. Patterns are literal
// strings with an optional single trailing '*' wildcard — the only form the
// workflow uses (namespace prefixes like "rdf:new:*").
func (e *Engine) Keys(pattern string) []string {
	prefix, wildcard := strings.CutSuffix(pattern, "*")
	e.mu.RLock()
	defer e.mu.RUnlock()
	all := make([]string, 0, len(e.m))
	for k := range e.m {
		all = append(all, k)
	}
	sort.Strings(all)
	out := all[:0]
	for _, k := range all {
		if wildcard && strings.HasPrefix(k, prefix) || !wildcard && k == pattern {
			out = append(out, k)
		}
	}
	return out
}

// Rename moves the value at src to dst, the primitive behind feedback
// tagging ("renaming keys in the database").
func (e *Engine) Rename(src, dst string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.m[src]
	if !ok {
		return ErrNoSuchKey
	}
	e.m[dst] = v
	delete(e.m, src)
	return nil
}

// MGet returns values for keys; missing keys yield nil entries.
func (e *Engine) MGet(keys ...string) [][]byte {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([][]byte, len(keys))
	for i, k := range keys {
		if v, ok := e.m[k]; ok {
			out[i] = clone(v)
		}
	}
	return out
}

// Size returns the number of keys.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.m)
}

// Flush removes every key.
func (e *Engine) Flush() {
	e.mu.Lock()
	e.m = make(map[string][]byte)
	e.mu.Unlock()
}

package kvstore

import (
	"net"
	"time"

	"mummi/internal/retry"
)

// ClientOptions parameterizes every kvstore client — the synchronous
// Client, the pipelined AsyncClient, and the sharded Cluster. The zero
// value reproduces the historical behaviour exactly (5s dial timeout,
// no read/write deadlines, default reconnect policy), so existing call
// sites keep their semantics without change.
type ClientOptions struct {
	// DialTimeout bounds each TCP dial (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds each reply read; 0 (the default) means no
	// deadline, matching the historical unbounded reads.
	ReadTimeout time.Duration
	// WriteTimeout bounds each command write; 0 means no deadline.
	WriteTimeout time.Duration
	// Retry governs transparent reconnects (sync client) and shard
	// recovery attempts (cluster client). Zero value = retry defaults
	// (4 attempts, 100ms base backoff).
	Retry retry.Policy
	// PoolSize is the number of pipelined connections an AsyncClient
	// opens per node (default 4). Requests for the same key always ride
	// the same connection, preserving per-key ordering end to end.
	PoolSize int
	// Window is the per-connection in-flight request bound (default 128):
	// the writer goroutine stops accepting new requests for a connection
	// once Window replies are outstanding, providing backpressure instead
	// of unbounded buffering.
	Window int
	// VNodes is the per-shard virtual-node count for the placement ring
	// (default 128).
	VNodes int
	// FanoutWorkers bounds the parallel per-shard fan-out of scatter
	// operations (Keys/MGet/MSet/Del/Size/FlushAll); <= 0 means
	// GOMAXPROCS, the repo-wide parallel.Workers convention.
	FanoutWorkers int
	// WrapConn, when non-nil, wraps every dialed connection before use —
	// the hook for transport middleware (TLS, byte accounting, or the
	// bench's interconnect-latency model). The wrapper sees the connection
	// after kernel-buffer tuning.
	WrapConn func(conn net.Conn) net.Conn
}

// Defaults for the zero ClientOptions.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultPoolSize    = 4
	DefaultWindow      = 128
)

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.VNodes <= 0 {
		o.VNodes = defaultVNodes
	}
	return o
}

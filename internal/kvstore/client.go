package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"mummi/internal/retry"
)

// Client is a synchronous connection to one server with explicit pipelining
// support. All methods are safe for concurrent use (serialized internally);
// for throughput-critical paths, use the Pipeline methods to batch round
// trips, as the paper's feedback loop batches its Redis queries — or the
// AsyncClient, which pipelines concurrent callers automatically.
type Client struct {
	mu      sync.Mutex
	addr    string
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	opts    ClientOptions
	retries uint64
}

// Dial connects to a server with default options (5s dial timeout, no
// read/write deadlines, default reconnect policy: 4 attempts, 100ms base
// backoff).
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialPolicy connects with an explicit reconnect-retry policy. The initial
// dial is never retried — a wrong address should fail fast; the policy
// governs the transparent reconnects inside do.
func DialPolicy(addr string, p retry.Policy) (*Client, error) {
	return DialOptions(addr, ClientOptions{Retry: p})
}

// DialOptions connects with explicit client options (timeouts, reconnect
// policy). The zero ClientOptions reproduces Dial exactly.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

// Retries reports how many transparent reconnect-retries the client has
// performed since Dial (one per extra attempt, not per command).
func (c *Client) Retries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

func (c *Client) reconnect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("kvstore: dial %s: %w", c.addr, err)
	}
	tuneConn(conn)
	if c.opts.WrapConn != nil {
		conn = c.opts.WrapConn(conn)
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, ioBufSize)
	c.w = bufio.NewWriterSize(conn, ioBufSize)
	return nil
}

// deadlines applies the configured read/write deadlines ahead of one
// round trip; zero timeouts leave the connection unbounded (the default).
func (c *Client) deadlines() error {
	if c.opts.WriteTimeout > 0 {
		//lint:allow determinism -- wall-clock socket deadline, invisible to replay state
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout)); err != nil {
			return err
		}
	}
	if c.opts.ReadTimeout > 0 {
		//lint:allow determinism -- wall-clock socket deadline, invisible to replay state
		if err := c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout)); err != nil {
			return err
		}
	}
	return nil
}

// do sends one command and reads one reply, transparently reconnecting with
// bounded backoff on a broken connection (the paper leans on Redis
// redundancy/retry for resilience; the shared retry.Policy is our
// equivalent for transient resets). A closed client never retries. The
// client lock is held across backoff sleeps — commands are serialized
// anyway, and queueing behind a reconnect beats interleaving with it.
func (c *Client) do(args ...[]byte) (*reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep *reply
	first := true
	_, err := c.opts.Retry.Do(time.Sleep,
		func(error) bool { return c.conn != nil },
		func() error {
			if !first {
				c.retries++
				if rerr := c.reconnect(); rerr != nil {
					return rerr
				}
			}
			first = false
			var err error
			rep, err = c.doLocked(args...)
			return err
		})
	return rep, err
}

func (c *Client) doLocked(args ...[]byte) (*reply, error) {
	if c.conn == nil {
		return nil, errClientClosed
	}
	if err := c.deadlines(); err != nil {
		return nil, err
	}
	if err := writeCommand(c.w, args...); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return readReply(c.r)
}

func bs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	rep, err := c.do(bs("PING")...)
	if err != nil {
		return err
	}
	if rep.kind != '+' || rep.str != "PONG" {
		return errProtocol
	}
	return nil
}

// Set stores value at key.
func (c *Client) Set(key string, value []byte) error {
	rep, err := c.do([]byte("SET"), []byte(key), value)
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return errors.New(rep.str)
	}
	return nil
}

// Get fetches key; missing keys return ErrNoSuchKey.
func (c *Client) Get(key string) ([]byte, error) {
	rep, err := c.do(bs("GET", key)...)
	if err != nil {
		return nil, err
	}
	if rep.kind != '$' {
		return nil, errProtocol
	}
	if rep.bulk == nil {
		return nil, ErrNoSuchKey
	}
	return rep.bulk, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int, error) {
	rep, err := c.do(bs(append([]string{"DEL"}, keys...)...)...)
	if err != nil {
		return 0, err
	}
	if rep.kind != ':' {
		return 0, errProtocol
	}
	return int(rep.n), nil
}

// Keys lists keys matching a literal-with-trailing-'*' pattern.
func (c *Client) Keys(pattern string) ([]string, error) {
	rep, err := c.do(bs("KEYS", pattern)...)
	if err != nil {
		return nil, err
	}
	if rep.kind != '*' {
		return nil, errProtocol
	}
	out := make([]string, len(rep.array))
	for i, b := range rep.array {
		out[i] = string(b)
	}
	return out, nil
}

// Rename moves src to dst; missing src returns ErrNoSuchKey.
func (c *Client) Rename(src, dst string) error {
	rep, err := c.do(bs("RENAME", src, dst)...)
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return ErrNoSuchKey
	}
	return nil
}

// MGet fetches many keys in one round trip; missing keys yield nil entries.
func (c *Client) MGet(keys ...string) ([][]byte, error) {
	rep, err := c.do(bs(append([]string{"MGET"}, keys...)...)...)
	if err != nil {
		return nil, err
	}
	if rep.kind != '*' {
		return nil, errProtocol
	}
	return rep.array, nil
}

// DBSize returns the server's key count.
func (c *Client) DBSize() (int, error) {
	rep, err := c.do(bs("DBSIZE")...)
	if err != nil {
		return 0, err
	}
	return int(rep.n), nil
}

// FlushAll clears the server.
func (c *Client) FlushAll() error {
	_, err := c.do(bs("FLUSHALL")...)
	return err
}

// PipelineSet sends many SETs in one batch, reading all replies at the
// end. Keys are written in sorted order so that same-seed runs produce
// byte-identical server op sequences — map iteration order must never
// reach the wire (determinism lint enforces this package-wide).
func (c *Client) PipelineSet(kv map[string][]byte) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return errClientClosed
	}
	if err := c.deadlines(); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeCommand(c.w, []byte("SET"), []byte(k), kv[k]); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for range keys {
		if _, err := readReply(c.r); err != nil {
			return err
		}
	}
	return nil
}

// PipelineDel deletes many keys in one batch, in the order given.
func (c *Client) PipelineDel(keys []string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, errClientClosed
	}
	if err := c.deadlines(); err != nil {
		return 0, err
	}
	for _, k := range keys {
		if err := writeCommand(c.w, []byte("DEL"), []byte(k)); err != nil {
			return 0, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	total := 0
	for range keys {
		rep, err := readReply(c.r)
		if err != nil {
			return total, err
		}
		total += int(rep.n)
	}
	return total, nil
}

// PipelineRename renames many (src,dst) pairs in one batch, returning the
// number that succeeded.
func (c *Client) PipelineRename(pairs [][2]string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, errClientClosed
	}
	if err := c.deadlines(); err != nil {
		return 0, err
	}
	for _, p := range pairs {
		if err := writeCommand(c.w, []byte("RENAME"), []byte(p[0]), []byte(p[1])); err != nil {
			return 0, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	ok := 0
	for range pairs {
		rep, err := readReply(c.r)
		if err != nil {
			return ok, err
		}
		if rep.kind == '+' {
			ok++
		}
	}
	return ok, nil
}

// Close tears down the connection. The socket close happens after c.mu is
// released: a TCP teardown can block, and callers contending for the lock
// should fail fast on the nil conn instead.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

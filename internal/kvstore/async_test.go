package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func startAsync(t *testing.T, opts ClientOptions) (*Server, *AsyncClient) {
	t.Helper()
	s := NewServer(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	a, err := DialAsync(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return s, a
}

func TestAsyncClientBasic(t *testing.T) {
	_, a := startAsync(t, ClientOptions{})
	rep, err := a.Do("k", []byte("SET"), []byte("k"), []byte("v"))
	if err != nil || rep.kind != '+' {
		t.Fatalf("SET = %v, %v", rep, err)
	}
	rep, err = a.Do("k", []byte("GET"), []byte("k"))
	if err != nil || string(rep.bulk) != "v" {
		t.Fatalf("GET = %q, %v", rep.bulk, err)
	}
}

func TestAsyncClientConcurrent(t *testing.T) {
	const workers, ops = 8, 200
	s, a := startAsync(t, ClientOptions{PoolSize: 3, Window: 32})
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				v := []byte(fmt.Sprintf("v%d-%d", w, i))
				if _, err := a.Do(k, []byte("SET"), []byte(k), v); err != nil {
					errs[w] = err
					return
				}
				rep, err := a.Do(k, []byte("GET"), []byte(k))
				if err != nil {
					errs[w] = err
					return
				}
				if string(rep.bulk) != string(v) {
					errs[w] = fmt.Errorf("got %q want %q", rep.bulk, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if n := s.Engine().Size(); n != workers*ops {
		t.Errorf("engine holds %d keys, want %d", n, workers*ops)
	}
}

// TestAsyncClientPerKeyOrder hammers single keys with sequential writes from
// their owning goroutines; the final value must be the last write, which
// only holds if per-key submission order survives the pool and pipelining.
func TestAsyncClientPerKeyOrder(t *testing.T) {
	const keys, writes = 16, 100
	_, a := startAsync(t, ClientOptions{PoolSize: 4, Window: 16})
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", k)
			for i := 0; i <= writes; i++ {
				a.Do(key, []byte("SET"), []byte(key), []byte(fmt.Sprintf("%d", i))) //lint:allow errdiscipline -- final read asserts the outcome
			}
		}(k)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		rep, err := a.Do(key, []byte("GET"), []byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if string(rep.bulk) != fmt.Sprintf("%d", writes) {
			t.Errorf("%s = %q, want %d", key, rep.bulk, writes)
		}
	}
}

func TestAsyncClientServerGone(t *testing.T) {
	s, a := startAsync(t, ClientOptions{PoolSize: 2})
	if _, err := a.Do("k", []byte("PING")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Every pipe must eventually fail submissions instead of hanging.
	for p := 0; p < 4; p++ {
		if _, err := a.Do(fmt.Sprintf("k%d", p), []byte("PING")); err == nil {
			// The first command after the close may still have been buffered
			// through; retry until the broken pipe surfaces.
			continue
		}
		return
	}
	t.Fatal("no error after server close")
}

func TestAsyncClientClosedFailsFast(t *testing.T) {
	_, a := startAsync(t, ClientOptions{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Do("k", []byte("PING")); !errors.Is(err, errClientClosed) {
		t.Fatalf("Do after Close = %v, want errClientClosed", err)
	}
}

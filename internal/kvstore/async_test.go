package kvstore

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func startAsync(t *testing.T, opts ClientOptions) (*Server, *AsyncClient) {
	t.Helper()
	s := NewServer(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	a, err := DialAsync(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return s, a
}

func TestAsyncClientBasic(t *testing.T) {
	_, a := startAsync(t, ClientOptions{})
	rep, err := a.Do("k", []byte("SET"), []byte("k"), []byte("v"))
	if err != nil || rep.kind != '+' {
		t.Fatalf("SET = %v, %v", rep, err)
	}
	rep, err = a.Do("k", []byte("GET"), []byte("k"))
	if err != nil || string(rep.bulk) != "v" {
		t.Fatalf("GET = %q, %v", rep.bulk, err)
	}
}

func TestAsyncClientConcurrent(t *testing.T) {
	const workers, ops = 8, 200
	s, a := startAsync(t, ClientOptions{PoolSize: 3, Window: 32})
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				v := []byte(fmt.Sprintf("v%d-%d", w, i))
				if _, err := a.Do(k, []byte("SET"), []byte(k), v); err != nil {
					errs[w] = err
					return
				}
				rep, err := a.Do(k, []byte("GET"), []byte(k))
				if err != nil {
					errs[w] = err
					return
				}
				if string(rep.bulk) != string(v) {
					errs[w] = fmt.Errorf("got %q want %q", rep.bulk, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if n := s.Engine().Size(); n != workers*ops {
		t.Errorf("engine holds %d keys, want %d", n, workers*ops)
	}
}

// TestAsyncClientPerKeyOrder hammers single keys with sequential writes from
// their owning goroutines; the final value must be the last write, which
// only holds if per-key submission order survives the pool and pipelining.
func TestAsyncClientPerKeyOrder(t *testing.T) {
	const keys, writes = 16, 100
	_, a := startAsync(t, ClientOptions{PoolSize: 4, Window: 16})
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", k)
			for i := 0; i <= writes; i++ {
				a.Do(key, []byte("SET"), []byte(key), []byte(fmt.Sprintf("%d", i))) //lint:allow errdiscipline -- final read asserts the outcome
			}
		}(k)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		rep, err := a.Do(key, []byte("GET"), []byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if string(rep.bulk) != fmt.Sprintf("%d", writes) {
			t.Errorf("%s = %q, want %d", key, rep.bulk, writes)
		}
	}
}

func TestAsyncClientServerGone(t *testing.T) {
	s, a := startAsync(t, ClientOptions{PoolSize: 2})
	if _, err := a.Do("k", []byte("PING")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Every pipe must eventually fail submissions instead of hanging.
	for p := 0; p < 4; p++ {
		if _, err := a.Do(fmt.Sprintf("k%d", p), []byte("PING")); err == nil {
			// The first command after the close may still have been buffered
			// through; retry until the broken pipe surfaces.
			continue
		}
		return
	}
	t.Fatal("no error after server close")
}

func TestAsyncClientClosedFailsFast(t *testing.T) {
	_, a := startAsync(t, ClientOptions{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Do("k", []byte("PING")); !errors.Is(err, errClientClosed) {
		t.Fatalf("Do after Close = %v, want errClientClosed", err)
	}
}

// writeBlockConn stalls every Write until unblock closes — a deterministic
// stand-in for a peer that stops draining its socket.
type writeBlockConn struct {
	net.Conn
	unblock <-chan struct{}
}

func (c *writeBlockConn) Write(p []byte) (int, error) {
	<-c.unblock
	return c.Conn.Write(p)
}

// TestStalledPipeDoesNotWedgeClient is the regression test for the
// submit-under-RLock bug the channeldiscipline analyzer surfaced: a
// submitter blocked sending into a stalled pipe used to hold the client's
// read lock across the send, so Close's write lock blocked behind it —
// and, because a pending writer stalls new read locks, so did every
// submitter on every other pipe. The fixed submit registers on the pipe's
// submitter WaitGroup and sends with no lock held: a fully stalled pipe
// must leave the client lock acquirable and Close's fail-fast path live.
func TestStalledPipeDoesNotWedgeClient(t *testing.T) {
	unblock := make(chan struct{})
	release := sync.OnceFunc(func() { close(unblock) })
	var conns int
	var connMu sync.Mutex
	opts := ClientOptions{
		PoolSize:    2,
		Window:      1,
		ReadTimeout: 200 * time.Millisecond,
		WrapConn: func(c net.Conn) net.Conn {
			connMu.Lock()
			defer connMu.Unlock()
			conns++
			if conns == 1 {
				return &writeBlockConn{Conn: c, unblock: unblock}
			}
			return c
		},
	}
	_, a := startAsync(t, opts)
	t.Cleanup(release) // runs before startAsync's a.Close cleanup (LIFO)

	// Affinity keys for each pipe.
	k0, k1 := "", ""
	for i := 0; k0 == "" || k1 == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.pick(k) == 0 {
			k0 = k
		} else {
			k1 = k
		}
	}

	// Stall pipe 0. The writer ends up blocked in the stalled flush holding
	// one command, and the reader can absorb at most two more through the
	// in-flight channel before the window closes — so of six submissions at
	// least one fills the request queue (Window=1) and at least one parks
	// in the channel send inside submit, which is the state under test.
	var doWg sync.WaitGroup
	for i := 0; i < 6; i++ {
		doWg.Add(1)
		go func() {
			defer doWg.Done()
			a.Do(k0, []byte("PING")) //lint:allow errdiscipline -- the pipe is stalled on purpose; outcomes are asserted below
		}()
	}
	waitFor(t, "request queue full", func() bool { return len(a.pipes[0].reqCh) == cap(a.pipes[0].reqCh) })
	time.Sleep(50 * time.Millisecond) // let the third submitter reach the send

	// Regression assertion 1: the client's write lock must be acquirable
	// while a submitter is parked in the send.
	lockOK := make(chan struct{})
	go func() {
		a.mu.Lock()
		a.mu.Unlock() //lint:allow lockdiscipline -- probe: acquire-and-release to prove the lock is not wedged
		close(lockOK)
	}()
	select {
	case <-lockOK:
	case <-time.After(5 * time.Second):
		t.Fatal("client write lock wedged by a submitter blocked on a stalled pipe")
	}

	// Regression assertion 2: Close (which will wait out the stalled pipe)
	// must still flip the closed flag promptly, so new submissions fail
	// fast instead of piling onto pipes.
	closeDone := make(chan error, 1)
	go func() { closeDone <- a.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := a.Do(k1, []byte("PING")); errors.Is(err, errClientClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never started failing fast after Close began")
		}
	}

	// Unstall: everything must unwind — blocked submitters complete (with
	// errors), Close returns.
	release()
	doWg.Wait()
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the stalled pipe was released")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

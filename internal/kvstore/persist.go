package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Persistence: the paper leans on Redis's redundancy for resilience ("Redis
// is an industry standard that utilizes redundancy to mitigate failures").
// This file provides the equivalent snapshot persistence (RDB-style): an
// engine can be dumped to and reloaded from a compact binary snapshot, so a
// killed server node restarts with its keyspace intact.

var persistMagic = [4]byte{'M', 'K', 'V', '1'}

// maxPersistEntry bounds a single key or value read back from a snapshot,
// guarding loads against corrupt length prefixes.
const maxPersistEntry = 256 << 20

// Save writes a point-in-time snapshot of the engine to w. The snapshot is
// taken under the engine's read lock: concurrent writes serialize against
// it but reads proceed.
func (e *Engine) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(e.m))); err != nil {
		return err
	}
	// Entries are written in sorted key order so that equal keyspaces always
	// produce byte-identical snapshots (and map iteration order never leaks
	// into persisted artifacts).
	keys := make([]string, 0, len(e.m))
	for k := range e.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeEntry(bw, []byte(k)); err != nil {
			return err
		}
		if err := writeEntry(bw, e.m[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeEntry(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// Load replaces the engine's contents with a snapshot read from r.
func (e *Engine) Load(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("kvstore: short snapshot: %w", err)
	}
	if magic != persistMagic {
		return errors.New("kvstore: bad snapshot magic")
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("kvstore: short snapshot header: %w", err)
	}
	m := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		k, err := readEntry(br)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot key %d: %w", i, err)
		}
		v, err := readEntry(br)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot value %d: %w", i, err)
		}
		m[string(k)] = v
	}
	e.mu.Lock()
	e.m = m
	e.mu.Unlock()
	return nil
}

func readEntry(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxPersistEntry {
		return nil, fmt.Errorf("entry of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// SaveFile atomically persists the engine to path (write temp + rename).
func (e *Engine) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores the engine from a SaveFile snapshot.
func (e *Engine) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	//lint:allow errdiscipline -- read-side close: Load already surfaced any data error
	defer f.Close()
	return e.Load(f)
}

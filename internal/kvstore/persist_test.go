package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestPersistRoundTrip(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 500; i++ {
		e.Set(fmt.Sprintf("rdf:new:%04d", i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	e.Set("empty", nil)
	e.Set("binary", []byte{0, 1, 2, 255, 254})

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewEngine()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Size() != e.Size() {
		t.Fatalf("sizes: %d vs %d", restored.Size(), e.Size())
	}
	v, err := restored.Get("rdf:new:0123")
	if err != nil || string(v) != "payload-123" {
		t.Errorf("Get = %q, %v", v, err)
	}
	if v, err := restored.Get("empty"); err != nil || len(v) != 0 {
		t.Errorf("empty value = %q, %v", v, err)
	}
	if v, _ := restored.Get("binary"); !bytes.Equal(v, []byte{0, 1, 2, 255, 254}) {
		t.Errorf("binary value = %v", v)
	}
}

func TestPersistFileAndServerRestart(t *testing.T) {
	// The resilience scenario: a KV node dies, restarts from its snapshot,
	// and clients see the same keyspace at the same address.
	dir := t.TempDir()
	snap := filepath.Join(dir, "node0.mkv")

	e := NewEngine()
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	srv.Close() // node dies

	// Restart: fresh engine loaded from the snapshot, same address.
	e2 := NewEngine()
	if err := e2.LoadFile(snap); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(e2)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	v, err := c.Get("k042") // client reconnects transparently
	if err != nil || string(v) != "v" {
		t.Fatalf("Get after restart = %q, %v", v, err)
	}
	if n, _ := c.DBSize(); n != 100 {
		t.Errorf("DBSize after restart = %d", n)
	}
}

func TestLoadErrors(t *testing.T) {
	e := NewEngine()
	if err := e.Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot loaded")
	}
	if err := e.Load(bytes.NewReader([]byte("XXXX????"))); err == nil {
		t.Error("bad magic loaded")
	}
	// Truncated snapshot.
	good := NewEngine()
	good.Set("k", []byte("value"))
	var buf bytes.Buffer
	good.Save(&buf)
	if err := e.Load(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Error("truncated snapshot loaded")
	}
	// Corrupt length prefix.
	b := buf.Bytes()
	corrupt := append([]byte{}, b[:12]...)
	corrupt = append(corrupt, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if err := e.Load(bytes.NewReader(corrupt)); err == nil {
		t.Error("absurd length prefix loaded")
	}
	if err := e.LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestPropertyPersistPreservesKeyspace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		model := map[string]string{}
		for i := 0; i < 50+rng.Intn(100); i++ {
			k := fmt.Sprintf("k%d", rng.Intn(60))
			v := fmt.Sprintf("v%d", rng.Int63())
			e.Set(k, []byte(v))
			model[k] = v
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			return false
		}
		r := NewEngine()
		if err := r.Load(&buf); err != nil {
			return false
		}
		if r.Size() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := r.Get(k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

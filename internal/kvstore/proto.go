package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// The wire protocol is RESP (the Redis serialization protocol), restricted
// to the types mummi needs: requests are arrays of bulk strings; replies
// are simple strings, errors, integers, bulk strings (nil allowed), or
// arrays of bulk strings. Using the real wire format keeps the substitution
// honest: every query crosses a socket and pays serialization costs, like
// the paper's Redis deployment did.

// maxBulkLen bounds a single value (64 MB), far above the ~850 B frame ids
// and ~KB RDF payloads the workflow stores, but low enough to stop a corrupt
// length prefix from allocating unbounded memory.
const maxBulkLen = 64 << 20

var errProtocol = errors.New("kvstore: protocol error")

func writeCommand(w *bufio.Writer, args ...[]byte) error {
	if _, err := fmt.Fprintf(w, "*%d\r\n", len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(a)); err != nil {
			return err
		}
		if _, err := w.Write(a); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return nil
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[:len(line)-2], nil
}

func parseLen(b []byte) (int, error) {
	n, err := strconv.Atoi(string(b))
	if err != nil || n < -1 || n > maxBulkLen {
		return 0, errProtocol
	}
	return n, nil
}

// readCommand reads one request array. Returns (nil, io.EOF) on clean close.
func readCommand(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '*' {
		return nil, errProtocol
	}
	n, err := parseLen(line[1:])
	if err != nil || n < 1 {
		return nil, errProtocol
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(line) == 0 || line[0] != '$' {
			return nil, errProtocol
		}
		ln, err := parseLen(line[1:])
		if err != nil || ln < 0 {
			return nil, errProtocol
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return nil, errProtocol
		}
		args = append(args, buf[:ln])
	}
	return args, nil
}

// reply is a decoded RESP reply.
type reply struct {
	kind  byte // '+', '-', ':', '$', '*'
	str   string
	n     int64
	bulk  []byte // nil means RESP nil bulk
	array [][]byte
}

func readReply(r *bufio.Reader) (*reply, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	rep := &reply{kind: line[0]}
	body := string(line[1:])
	switch rep.kind {
	case '+', '-':
		rep.str = body
	case ':':
		rep.n, err = strconv.ParseInt(body, 10, 64)
		if err != nil {
			return nil, errProtocol
		}
	case '$':
		ln, err := parseLen(line[1:])
		if err != nil {
			return nil, err
		}
		if ln == -1 {
			rep.bulk = nil
			return rep, nil
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return nil, errProtocol
		}
		rep.bulk = buf[:ln]
		if rep.bulk == nil { // zero-length bulk: distinguish from nil
			rep.bulk = []byte{}
		}
	case '*':
		ln, err := parseLen(line[1:])
		if err != nil {
			return nil, err
		}
		if ln == -1 {
			return rep, nil
		}
		rep.array = make([][]byte, 0, ln)
		for i := 0; i < ln; i++ {
			el, err := readReply(r)
			if err != nil {
				return nil, err
			}
			if el.kind != '$' {
				return nil, errProtocol
			}
			rep.array = append(rep.array, el.bulk)
		}
	default:
		return nil, errProtocol
	}
	return rep, nil
}

func writeSimple(w *bufio.Writer, s string) error {
	_, err := fmt.Fprintf(w, "+%s\r\n", s)
	return err
}

func writeError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "-ERR %s\r\n", msg)
	return err
}

func writeInt(w *bufio.Writer, n int64) error {
	_, err := fmt.Fprintf(w, ":%d\r\n", n)
	return err
}

func writeBulk(w *bufio.Writer, b []byte) error {
	if b == nil {
		_, err := w.WriteString("$-1\r\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "$%d\r\n", len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeArray(w *bufio.Writer, items [][]byte) error {
	if _, err := fmt.Fprintf(w, "*%d\r\n", len(items)); err != nil {
		return err
	}
	for _, it := range items {
		if err := writeBulk(w, it); err != nil {
			return err
		}
	}
	return nil
}

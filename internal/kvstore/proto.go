package kvstore

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strconv"
)

// The wire protocol is RESP (the Redis serialization protocol), restricted
// to the types mummi needs: requests are arrays of bulk strings; replies
// are simple strings, errors, integers, bulk strings (nil allowed), or
// arrays of bulk strings. Using the real wire format keeps the substitution
// honest: every query crosses a socket and pays serialization costs, like
// the paper's Redis deployment did.
//
// The encode/decode helpers here are deliberately allocation-lean: they sit
// inside the per-key loops of multi-key commands (MSET/MGET), where the
// feedback path's throughput is decided. Header lines are parsed in place
// from the reader's buffer, payloads are cloned with append (no redundant
// zeroing), and integers are formatted without fmt.

// maxBulkLen bounds a single value (64 MB), far above the ~850 B frame ids
// and ~KB RDF payloads the workflow stores, but low enough to stop a corrupt
// length prefix from allocating unbounded memory.
const maxBulkLen = 64 << 20

// ioBufSize is the buffered reader/writer size on every connection. Sized
// so a full 256-pair burst of ~850 B values (~220 KB) moves in one syscall
// per side — syscalls cost microseconds on the virtualized hosts this runs
// on, and amortizing them is a large share of the pipelined speedup.
const ioBufSize = 256 << 10

var errProtocol = errors.New("kvstore: protocol error")

// tuneConn widens the kernel socket buffers to the buffered-I/O size so a
// full multi-key burst moves with as few syscalls as possible — syscalls,
// not bandwidth, dominate loopback transfer cost on virtualized hosts.
// Best-effort: a kernel refusing the size just leaves the default.
func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(ioBufSize)  //lint:allow errdiscipline -- best-effort socket tuning; defaults are correct, only slower
		tc.SetWriteBuffer(ioBufSize) //lint:allow errdiscipline -- best-effort socket tuning; defaults are correct, only slower
	}
}

// writeLenLine writes "<prefix><n>\r\n" as a single buffered write,
// without fmt. Appending into the writer's available buffer keeps the
// header bytes off the heap (the AvailableBuffer idiom) — this runs two to
// three times per key in a bulk command.
func writeLenLine(w *bufio.Writer, prefix byte, n int) error {
	line := append(w.AvailableBuffer(), prefix)
	line = strconv.AppendInt(line, int64(n), 10)
	line = append(line, '\r', '\n')
	_, err := w.Write(line)
	return err
}

func writeCommand(w *bufio.Writer, args ...[]byte) error {
	if err := writeLenLine(w, '*', len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := writeLenLine(w, '$', len(a)); err != nil {
			return err
		}
		if _, err := w.Write(a); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	return nil
}

// readLine returns one CRLF-terminated line as a view into the reader's
// buffer — valid only until the next read. Header lines are tiny (a type
// byte plus a decimal length), so ErrBufferFull cannot occur for well-formed
// input and is surfaced as a protocol error.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, errProtocol
		}
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[: len(line)-2 : len(line)-2], nil
}

// parseLen parses a decimal length in place (no string conversion). Only
// -1 is accepted as a negative value (RESP nil).
func parseLen(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errProtocol
	}
	if b[0] == '-' {
		if len(b) == 2 && b[1] == '1' {
			return -1, nil
		}
		return 0, errProtocol
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errProtocol
		}
		n = n*10 + int(c-'0')
		if n > maxBulkLen {
			return 0, errProtocol
		}
	}
	return n, nil
}

// readBulkPayload reads ln payload bytes plus the trailing CRLF and returns
// an owned copy of the payload. The fast path clones straight out of the
// reader's buffer with append — no intermediate zeroed allocation — and
// falls back to a zeroed read buffer only when the payload exceeds the
// buffered window.
func readBulkPayload(r *bufio.Reader, ln int) ([]byte, error) {
	if view, err := r.Peek(ln + 2); err == nil {
		if view[ln] != '\r' || view[ln+1] != '\n' {
			return nil, errProtocol
		}
		buf := append(make([]byte, 0, ln), view[:ln]...)
		if _, err := r.Discard(ln + 2); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, ln+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if buf[ln] != '\r' || buf[ln+1] != '\n' {
		return nil, errProtocol
	}
	return buf[:ln:ln], nil
}

// readCommand reads one request array. Returns (nil, io.EOF) on clean close.
// The returned argument slices are freshly allocated and owned by the
// caller — the server hands them to the engine without copying.
func readCommand(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '*' {
		return nil, errProtocol
	}
	n, err := parseLen(line[1:])
	if err != nil || n < 1 {
		return nil, errProtocol
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(line) == 0 || line[0] != '$' {
			return nil, errProtocol
		}
		ln, err := parseLen(line[1:])
		if err != nil || ln < 0 {
			return nil, errProtocol
		}
		buf, err := readBulkPayload(r, ln)
		if err != nil {
			return nil, err
		}
		args = append(args, buf)
	}
	return args, nil
}

// reply is a decoded RESP reply.
type reply struct {
	kind  byte // '+', '-', ':', '$', '*'
	str   string
	n     int64
	bulk  []byte // nil means RESP nil bulk
	array [][]byte
}

func readReply(r *bufio.Reader) (*reply, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	rep := &reply{kind: line[0]}
	switch rep.kind {
	case '+', '-':
		rep.str = string(line[1:])
	case ':':
		rep.n, err = strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil {
			return nil, errProtocol
		}
	case '$':
		ln, err := parseLen(line[1:])
		if err != nil {
			return nil, err
		}
		if ln == -1 {
			rep.bulk = nil
			return rep, nil
		}
		buf, err := readBulkPayload(r, ln)
		if err != nil {
			return nil, err
		}
		rep.bulk = buf
		if rep.bulk == nil { // zero-length bulk: distinguish from nil
			rep.bulk = []byte{}
		}
	case '*':
		ln, err := parseLen(line[1:])
		if err != nil {
			return nil, err
		}
		if ln == -1 {
			return rep, nil
		}
		// Array elements are always bulk strings here; parse them inline
		// rather than recursing — no per-element reply allocation in the
		// MGET fast path.
		rep.array = make([][]byte, 0, ln)
		for i := 0; i < ln; i++ {
			el, err := readLine(r)
			if err != nil {
				return nil, err
			}
			if len(el) == 0 || el[0] != '$' {
				return nil, errProtocol
			}
			bln, err := parseLen(el[1:])
			if err != nil {
				return nil, err
			}
			if bln == -1 {
				rep.array = append(rep.array, nil)
				continue
			}
			buf, err := readBulkPayload(r, bln)
			if err != nil {
				return nil, err
			}
			rep.array = append(rep.array, buf)
		}
	default:
		return nil, errProtocol
	}
	return rep, nil
}

func writeSimple(w *bufio.Writer, s string) error {
	if err := w.WriteByte('+'); err != nil {
		return err
	}
	if _, err := w.WriteString(s); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeError(w *bufio.Writer, msg string) error {
	if _, err := w.WriteString("-ERR "); err != nil {
		return err
	}
	if _, err := w.WriteString(msg); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeInt(w *bufio.Writer, n int64) error {
	line := append(w.AvailableBuffer(), ':')
	line = strconv.AppendInt(line, n, 10)
	line = append(line, '\r', '\n')
	_, err := w.Write(line)
	return err
}

func writeBulk(w *bufio.Writer, b []byte) error {
	if b == nil {
		_, err := w.WriteString("$-1\r\n")
		return err
	}
	if err := writeLenLine(w, '$', len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeArray(w *bufio.Writer, items [][]byte) error {
	if err := writeLenLine(w, '*', len(items)); err != nil {
		return err
	}
	for _, it := range items {
		if err := writeBulk(w, it); err != nil {
			return err
		}
	}
	return nil
}

package kvstore_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"mummi/internal/datastore"
	"mummi/internal/faults"
	"mummi/internal/feedback"
	"mummi/internal/kvstore"
	"mummi/internal/retry"
	"mummi/internal/sim"
	"mummi/internal/vclock"
)

// fastRetry keeps failover tests quick: real backoff sleeps, but tiny.
var fastRetry = retry.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: -1}

func engineDump(t *testing.T, e *kvstore.Engine) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, k := range e.Keys("*") {
		v, err := e.Get(k)
		if err != nil {
			t.Fatalf("dump %s: %v", k, err)
		}
		out[k] = string(v)
	}
	return out
}

// TestReplicationMirrors drives every mutation class through a replicated
// cluster and asserts the replica keyspaces equal the primaries': the
// synchronous forwarding contract is "client ack implies replica holds the
// write", so after all acks the two sides must match exactly.
func TestReplicationMirrors(t *testing.T) {
	d, err := kvstore.LaunchReplicated(2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := kvstore.DialShards(d.Shards(), kvstore.ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	kv := map[string][]byte{}
	for i := 0; i < 120; i++ {
		kv[fmt.Sprintf("frame-%03d", i)] = []byte(fmt.Sprintf("payload-%d", i))
	}
	if err := cl.MSet(kv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := cl.Rename(fmt.Sprintf("frame-%03d", i), fmt.Sprintf("tagged-%03d", i)); err != nil {
			t.Fatalf("rename %d: %v", i, err)
		}
	}
	if _, err := cl.Del("frame-050", "frame-051", "frame-052"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		p, r := engineDump(t, d.Primary(i).Engine()), engineDump(t, d.Replica(i).Engine())
		if !reflect.DeepEqual(p, r) {
			t.Errorf("shard %d: primary has %d keys, replica %d; keyspaces differ", i, len(p), len(r))
		}
		if d.Primary(i).ReplicaDegraded() {
			t.Errorf("shard %d degraded during healthy run", i)
		}
		if d.Primary(i).ReplicaForwards() == 0 {
			t.Errorf("shard %d forwarded nothing", i)
		}
	}
}

// TestFailoverMidMoveBatch kills a shard primary between two MoveBatch
// bursts — the second burst replays keys the first already moved, plus the
// keys that were still pending — and asserts zero lost renames: every key
// ends up in the destination namespace with its value intact. This is the
// at-least-once contract: a replayed rename of an already-moved key
// reports "no such key" on the replica and is skipped, never an error.
func TestFailoverMidMoveBatch(t *testing.T) {
	d, err := kvstore.LaunchReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := kvstore.DialShards(d.Shards(), kvstore.ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := kvstore.NewStore(cl)

	const n = 300
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sel%04d", i)
		if err := st.Put("new", keys[i], []byte("v-"+keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	// First burst moves half, all acknowledged (and therefore replicated).
	if err := st.MoveBatch("new", keys[:n/2], "done"); err != nil {
		t.Fatal(err)
	}
	// Crash a primary: connections drop mid-stream.
	d.KillPrimary(1)
	// Replay the full batch: the first half replays as no-such-key skips,
	// the second half must survive the failover.
	if err := st.MoveBatch("new", keys, "done"); err != nil {
		t.Fatalf("MoveBatch across failover: %v", err)
	}

	left, err := st.Keys("new")
	if err != nil {
		t.Fatal(err)
	}
	done, err := st.Keys("done")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 || len(done) != n {
		t.Fatalf("after failover: new=%d done=%d, want 0/%d — lost renames", len(left), len(done), n)
	}
	for _, k := range []string{keys[0], keys[n/2], keys[n-1]} {
		v, err := st.Get("done", k)
		if err != nil || string(v) != "v-"+k {
			t.Errorf("Get(done, %s) = %q, %v", k, v, err)
		}
	}
	if cl.Failovers() == 0 {
		t.Error("no failover recorded despite a killed primary")
	}
}

// TestFailoverSetGet covers the simple path: kill a primary, then keep
// writing and reading through the same cluster handle.
func TestFailoverSetGet(t *testing.T) {
	d, err := kvstore.LaunchReplicated(2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := kvstore.DialShards(d.Shards(), kvstore.ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if err := cl.Set(fmt.Sprintf("pre-%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	d.KillPrimary(0)
	d.KillPrimary(1)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("pre-%d", i)
		v, err := cl.Get(k)
		if err != nil || string(v) != "x" {
			t.Fatalf("Get(%s) after kill = %q, %v", k, v, err)
		}
	}
	if err := cl.Set("post", []byte("y")); err != nil {
		t.Fatalf("Set after kill: %v", err)
	}
	if v, err := cl.Get("post"); err != nil || string(v) != "y" {
		t.Fatalf("Get(post) = %q, %v", v, err)
	}
}

// TestReplicatedStoreConformance runs the full datastore conformance suite
// against a replicated, sharded cluster via the datastore.Config.Replicas
// wiring.
func TestReplicatedStoreConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep in -short mode")
	}
	open := func(t *testing.T) datastore.Store {
		d, err := kvstore.LaunchReplicated(3)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		var addrs, reps []string
		for _, sh := range d.Shards() {
			addrs = append(addrs, sh.Primary)
			reps = append(reps, sh.Replica)
		}
		s, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs, Replicas: reps})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Inline the core conformance checks (dstest.Run is exercised by
	// store_test.go; here the point is the replicated wiring).
	s := open(t)
	defer s.Close()
	if err := s.Put("ns", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get("ns", "k"); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Move("ns", "k", "done"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ns", "k"); err == nil {
		t.Fatal("moved key still present")
	}
	if err := s.Delete("done", "k"); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Chaos campaign: feedback over a replicated cluster under NodeCrash faults

func chaosRDF(rng *rand.Rand, species int) [][]float32 {
	rdf := make([][]float32, species)
	for sp := range rdf {
		rdf[sp] = make([]float32, sim.RDFBins)
		for b := range rdf[sp] {
			rdf[sp][b] = float32(rng.Float64() * 2)
		}
	}
	return rdf
}

type chaosResult struct {
	couplings [][]float64
	doneKeys  []string
	frames    int64
	kills     int
	failovers int64
}

// runChaosCampaign produces CG frames into a replicated kv-backed store,
// runs the CG→continuum feedback loop over them, and lets a seeded
// fault-injection engine kill shard primaries on the virtual clock. All
// randomness (frame content, crash schedule, victim choice) derives from
// seed, so the resulting state is a pure function of it.
func runChaosCampaign(t *testing.T, seed int64) chaosResult {
	t.Helper()
	const shards, species, states = 3, 3, 2
	d, err := kvstore.LaunchReplicated(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := kvstore.DialShards(d.Shards(), kvstore.ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	st := kvstore.NewStore(cl)
	defer st.Close()
	fb, err := feedback.NewCGToContinuum(feedback.CGConfig{
		Store: st, NewNS: "new", DoneNS: "done", Species: species, States: states,
	})
	if err != nil {
		t.Fatal(err)
	}

	clk := vclock.NewVirtual(time.Unix(0, 0).UTC())
	// NodeCrash at 2880/day = one expected kill per 30 virtual seconds.
	plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{{Class: faults.NodeCrash, Rate: 2880}}}
	eng := faults.NewEngine(clk, nil, plan)
	killed := make([]bool, shards)
	kills := 0
	eng.SetHandler(faults.NodeCrash, func(_ faults.Rule, rng *rand.Rand) {
		victim := rng.Intn(shards) // drawn even when already dead: schedule stays replayable
		if killed[victim] {
			return
		}
		killed[victim] = true
		kills++
		d.KillPrimary(victim)
		eng.Note(fmt.Sprintf("shard %d primary", victim))
	})
	eng.Start()

	rng := rand.New(rand.NewSource(seed))
	produced := 0
	for round := 0; round < 8; round++ {
		for i := 0; i < 40; i++ {
			f := &sim.CGFrame{SimID: "chaos", Index: produced, State: rng.Intn(states), RDF: chaosRDF(rng, species)}
			b, err := f.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put("new", fmt.Sprintf("f%06d", produced), b); err != nil {
				t.Fatalf("round %d: Put: %v", round, err)
			}
			produced++
		}
		clk.RunFor(30 * time.Second) // crash events fire here
		if _, err := fb.Iterate(); err != nil {
			t.Fatalf("round %d: Iterate: %v", round, err)
		}
	}
	eng.Stop()

	doneKeys, err := st.Keys("done")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(doneKeys)
	left, err := st.Keys("new")
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: every acknowledged frame is either aggregated-and-tagged
	// or still pending; none may vanish across primary kills.
	if len(doneKeys)+len(left) != produced {
		t.Fatalf("frames lost: done=%d new=%d produced=%d", len(doneKeys), len(left), produced)
	}
	if len(left) != 0 {
		t.Fatalf("%d frames left unprocessed after final iteration", len(left))
	}
	if fb.TotalFrames() != int64(produced) {
		t.Fatalf("aggregated %d frames, produced %d", fb.TotalFrames(), produced)
	}
	return chaosResult{
		couplings: fb.Couplings(),
		doneKeys:  doneKeys,
		frames:    fb.TotalFrames(),
		kills:     kills,
		failovers: cl.Failovers(),
	}
}

// TestChaosFeedbackSurvivesPrimaryKills is the campaign-level guarantee the
// replication layer exists for: shard primaries die mid-feedback, and the
// loop completes with zero lost selections. Two same-seed runs must also
// produce byte-identical couplings and tagged key sets — the kill schedule,
// the frame stream, and every recovery are functions of the seed alone.
func TestChaosFeedbackSurvivesPrimaryKills(t *testing.T) {
	a := runChaosCampaign(t, 42)
	if a.kills == 0 {
		t.Fatal("chaos plan injected no primary kills; raise the rate")
	}
	if a.failovers == 0 {
		t.Error("primaries died but the cluster recorded no failovers")
	}
	b := runChaosCampaign(t, 42)
	if a.kills != b.kills {
		t.Errorf("same-seed runs injected %d vs %d kills", a.kills, b.kills)
	}
	if a.frames != b.frames {
		t.Errorf("same-seed runs aggregated %d vs %d frames", a.frames, b.frames)
	}
	if !reflect.DeepEqual(a.doneKeys, b.doneKeys) {
		t.Error("same-seed runs tagged different key sets")
	}
	if !reflect.DeepEqual(a.couplings, b.couplings) {
		t.Error("same-seed runs produced different couplings")
	}
}

// TestReplicaHoldsAckedWritesAtKill is the sharpest form of the replication
// invariant: write through the cluster, kill the primary with no grace at
// all, and read every acknowledged key back from what remains.
func TestReplicaHoldsAckedWritesAtKill(t *testing.T) {
	d, err := kvstore.LaunchReplicated(1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := kvstore.DialShards(d.Shards(), kvstore.ClientOptions{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var want [][2]string
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("acked-%03d", i), fmt.Sprintf("v%d", i)
		if err := cl.Set(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want = append(want, [2]string{k, v})
	}
	d.KillPrimary(0) // zero grace: anything acked must already be on the replica
	for _, kv := range want {
		v, err := cl.Get(kv[0])
		if err != nil || string(v) != kv[1] {
			t.Fatalf("acked write lost: Get(%s) = %q, %v", kv[0], v, err)
		}
	}
}

package kvstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"mummi/internal/datastore"
)

// Cluster is the client side of a multi-node deployment: the paper ran a
// cluster of 20 Redis servers with compute nodes "allocated randomly" to
// them. Keys are placed by stable hashing so that every client agrees on
// which node owns a key without coordination; scans and flushes fan out to
// all nodes.
type Cluster struct {
	mu      sync.Mutex
	addrs   []string
	clients []*Client
}

// DialCluster connects to every node of the cluster.
func DialCluster(addrs []string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvstore: empty cluster")
	}
	c := &Cluster{addrs: append([]string(nil), addrs...)}
	for _, a := range addrs {
		cl, err := Dial(a)
		if err != nil {
			return nil, errors.Join(err, c.Close())
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.clients) }

func (c *Cluster) node(key string) *Client {
	h := fnv.New32a()
	h.Write([]byte(key)) //lint:allow errdiscipline -- hash.Hash.Write never returns an error by contract
	return c.clients[int(h.Sum32())%len(c.clients)]
}

// Set stores value under key on its owning node.
func (c *Cluster) Set(key string, value []byte) error { return c.node(key).Set(key, value) }

// Get fetches key from its owning node.
func (c *Cluster) Get(key string) ([]byte, error) { return c.node(key).Get(key) }

// Del removes keys (grouped per owning node), returning how many existed.
func (c *Cluster) Del(keys ...string) (int, error) {
	groups := c.group(keys)
	total := 0
	for i, ks := range groups {
		if len(ks) == 0 {
			continue
		}
		n, err := c.clients[i].PipelineDel(ks)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Rename moves src to dst. Because hashing may place dst on a different
// node, rename degrades to get+set+del across nodes when needed.
func (c *Cluster) Rename(src, dst string) error {
	sn, dn := c.node(src), c.node(dst)
	if sn == dn {
		return sn.Rename(src, dst)
	}
	v, err := sn.Get(src)
	if err != nil {
		return err
	}
	if err := dn.Set(dst, v); err != nil {
		return err
	}
	_, err = sn.Del(src)
	return err
}

// Keys scans every node for the pattern and merges the results, sorted.
func (c *Cluster) Keys(pattern string) ([]string, error) {
	var all []string
	for _, cl := range c.clients {
		ks, err := cl.Keys(pattern)
		if err != nil {
			return nil, err
		}
		all = append(all, ks...)
	}
	sort.Strings(all)
	return all, nil
}

// MGet fetches many keys, fanning out one pipelined MGET per node.
func (c *Cluster) MGet(keys []string) (map[string][]byte, error) {
	groups := c.group(keys)
	out := make(map[string][]byte, len(keys))
	for i, ks := range groups {
		if len(ks) == 0 {
			continue
		}
		vals, err := c.clients[i].MGet(ks...)
		if err != nil {
			return nil, err
		}
		for j, k := range ks {
			if vals[j] != nil {
				out[k] = vals[j]
			}
		}
	}
	return out, nil
}

// MSet stores many key-value pairs, one pipelined batch per node.
func (c *Cluster) MSet(kv map[string][]byte) error {
	batches := make([]map[string][]byte, len(c.clients))
	for k, v := range kv {
		i := c.nodeIndex(k)
		if batches[i] == nil {
			batches[i] = make(map[string][]byte)
		}
		batches[i][k] = v
	}
	for i, b := range batches {
		if len(b) == 0 {
			continue
		}
		if err := c.clients[i].PipelineSet(b); err != nil {
			return err
		}
	}
	return nil
}

// Size sums key counts across nodes.
func (c *Cluster) Size() (int, error) {
	total := 0
	for _, cl := range c.clients {
		n, err := cl.DBSize()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// FlushAll clears every node.
func (c *Cluster) FlushAll() error {
	for _, cl := range c.clients {
		if err := cl.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) nodeIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key)) //lint:allow errdiscipline -- hash.Hash.Write never returns an error by contract
	return int(h.Sum32()) % len(c.clients)
}

func (c *Cluster) group(keys []string) [][]string {
	groups := make([][]string, len(c.clients))
	for _, k := range keys {
		i := c.nodeIndex(k)
		groups[i] = append(groups[i], k)
	}
	return groups
}

// Close closes all node connections.
func (c *Cluster) Close() error {
	var first error
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// datastore.Store adapter

// nsSep joins namespace and key into the flat cluster keyspace. Namespaces
// and keys may not contain it.
const nsSep = ":"

// Store adapts a Cluster to the abstract data interface: namespaces become
// key prefixes, Keys becomes a prefix scan, Move becomes a rename. This is
// MuMMI's "redis interface": any component can talk to it while cluster
// details stay hidden.
//
// Placement hashes only the key (not the namespace), so moving a key
// between namespaces — the feedback tagging primitive — is always a
// same-node rename, never a cross-node copy.
type Store struct{ c *Cluster }

// node returns the owning client for a bare (namespace-less) key.
func (s *Store) node(key string) *Client { return s.c.clients[s.c.nodeIndex(key)] }

// NewStore wraps an existing cluster connection.
func NewStore(c *Cluster) *Store { return &Store{c: c} }

func init() {
	datastore.Register(datastore.BackendKV, func(cfg datastore.Config) (datastore.Store, error) {
		cl, err := DialCluster(cfg.Addrs)
		if err != nil {
			return nil, err
		}
		return NewStore(cl), nil
	})
}

func nsKey(ns, key string) (string, error) {
	if ns == "" || key == "" || strings.Contains(ns, nsSep) || strings.Contains(key, nsSep) {
		return "", fmt.Errorf("kvstore: invalid namespace/key %q/%q", ns, key)
	}
	return ns + nsSep + key, nil
}

// Put implements datastore.Store.
func (s *Store) Put(ns, key string, data []byte) error {
	k, err := nsKey(ns, key)
	if err != nil {
		return err
	}
	return s.node(key).Set(k, data)
}

// Get implements datastore.Store.
func (s *Store) Get(ns, key string) ([]byte, error) {
	k, err := nsKey(ns, key)
	if err != nil {
		return nil, err
	}
	v, err := s.node(key).Get(k)
	if errors.Is(err, ErrNoSuchKey) {
		return nil, fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	return v, err
}

// Delete implements datastore.Store.
func (s *Store) Delete(ns, key string) error {
	k, err := nsKey(ns, key)
	if err != nil {
		return err
	}
	n, err := s.node(key).Del(k)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, ns, key)
	}
	return nil
}

// Keys implements datastore.Store.
func (s *Store) Keys(ns string) ([]string, error) {
	if ns == "" || strings.Contains(ns, nsSep) {
		return nil, fmt.Errorf("kvstore: invalid namespace %q", ns)
	}
	full, err := s.c.Keys(ns + nsSep + "*")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(full))
	for i, f := range full {
		out[i] = strings.TrimPrefix(f, ns+nsSep)
	}
	return out, nil
}

// Move implements datastore.Store ("renaming keys in the database"):
// key-based placement makes this a single same-node RENAME.
func (s *Store) Move(srcNS, key, dstNS string) error {
	src, err := nsKey(srcNS, key)
	if err != nil {
		return err
	}
	dst, err := nsKey(dstNS, key)
	if err != nil {
		return err
	}
	if err := s.node(key).Rename(src, dst); errors.Is(err, ErrNoSuchKey) {
		return fmt.Errorf("%w: %s/%s", datastore.ErrNotFound, srcNS, key)
	} else if err != nil {
		return err
	}
	return nil
}

// GetBatch implements datastore.BatchGetter: one pipelined MGET per node.
func (s *Store) GetBatch(ns string, keys []string) (map[string][]byte, error) {
	groups := make(map[int][]string)
	for _, k := range keys {
		if _, err := nsKey(ns, k); err != nil {
			return nil, err
		}
		i := s.c.nodeIndex(k)
		groups[i] = append(groups[i], k)
	}
	out := make(map[string][]byte, len(keys))
	for node, ks := range groups {
		full := make([]string, len(ks))
		for i, k := range ks {
			full[i] = ns + nsSep + k
		}
		vals, err := s.c.clients[node].MGet(full...)
		if err != nil {
			return nil, err
		}
		for i, k := range ks {
			if vals[i] != nil {
				out[k] = vals[i]
			}
		}
	}
	return out, nil
}

// MoveBatch implements datastore.BatchMover: with key-based placement every
// rename is same-node, so the whole batch is one pipelined RENAME burst per
// node.
func (s *Store) MoveBatch(srcNS string, keys []string, dstNS string) error {
	groups := make(map[int][][2]string)
	for _, k := range keys {
		src, err := nsKey(srcNS, k)
		if err != nil {
			return err
		}
		dst, err := nsKey(dstNS, k)
		if err != nil {
			return err
		}
		i := s.c.nodeIndex(k)
		groups[i] = append(groups[i], [2]string{src, dst})
	}
	for node, pairs := range groups {
		if _, err := s.c.clients[node].PipelineRename(pairs); err != nil {
			return err
		}
	}
	return nil
}

// Close implements datastore.Store.
func (s *Store) Close() error { return s.c.Close() }

// ---------------------------------------------------------------------------
// Test / deployment helper

// LaunchCluster starts n in-process servers on ephemeral loopback ports and
// returns their addresses plus a shutdown function. MuMMI's redis interface
// "sets up a cluster of Redis servers ... allocated randomly to all compute
// nodes"; this is that setup step for a single-machine deployment.
func LaunchCluster(n int) (addrs []string, shutdown func(), err error) {
	servers := make([]*Server, 0, n)
	stop := func() {
		for _, s := range servers {
			s.Close() //lint:allow errdiscipline -- best-effort teardown of ephemeral in-process servers
		}
	}
	for i := 0; i < n; i++ {
		s := NewServer(nil)
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		servers = append(servers, s)
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}

package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mummi/internal/parallel"
)

// Cluster is the client side of a multi-node deployment: the paper ran a
// cluster of 20 Redis servers with compute nodes "allocated randomly" to
// them. Keys are placed on shards by a consistent-hash ring (stable under
// topology change, allocation-free per lookup); each shard is a primary
// with an optional replica, reached through a pipelined AsyncClient; and
// scatter operations (Keys/MGet/MSet/Del/Size/FlushAll) fan out to all
// shards in parallel with a deterministic shard-order merge.
//
// Failover is client-side: when a shard's node stops answering, the
// cluster flips to the shard's other node, redials, and retries under the
// configured retry policy. Together with the primary's synchronous
// write-forwarding (Server.SetReplica) this gives at-least-once semantics
// across a primary kill: every acknowledged write survives on the replica,
// and a retried batch may re-apply operations that were in flight — which
// is why Rename-class retries treat "no such key" on a key that already
// reached its destination as success (see Store.MoveBatch).
type Cluster struct {
	opts      ClientOptions
	ring      *Ring
	shards    []*shardConn
	failovers atomic.Int64
}

// Shard names one shard's nodes. An empty Replica runs the shard
// unreplicated.
type Shard struct {
	Primary string
	Replica string
}

// shardConn is one shard's connection state: which node is currently
// authoritative and the pipelined client talking to it. gen counts
// recoveries so concurrent failures trigger one failover, not a stampede.
type shardConn struct {
	mu     sync.Mutex
	addrs  [2]string // [0] primary, [1] replica ("" if none)
	active int
	gen    uint64
	cl     *AsyncClient
	// redialing marks a recovery dial in progress; redialed (on mu) wakes
	// the callers waiting for its outcome. The dial itself happens outside
	// mu so client() never blocks behind a slow redial.
	redialing bool
	redialed  *sync.Cond
}

// DialCluster connects to every node of an unreplicated cluster with
// default options (one shard per address).
func DialCluster(addrs []string) (*Cluster, error) {
	return DialClusterOptions(addrs, ClientOptions{})
}

// DialClusterOptions is DialCluster with explicit client options.
func DialClusterOptions(addrs []string, opts ClientOptions) (*Cluster, error) {
	shards := make([]Shard, len(addrs))
	for i, a := range addrs {
		shards[i] = Shard{Primary: a}
	}
	return DialShards(shards, opts)
}

// DialShards connects to a replicated cluster: one pipelined client per
// shard, initially against each shard's primary. Shard order is part of
// the placement function (ring identity is positional), so every client
// of a deployment must use the same shard list order.
func DialShards(shards []Shard, opts ClientOptions) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, errors.New("kvstore: empty cluster")
	}
	opts = opts.withDefaults()
	c := &Cluster{opts: opts, ring: NewRing(len(shards), opts.VNodes)}
	for _, sh := range shards {
		cl, err := DialAsync(sh.Primary, opts)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("kvstore: shard %s: %w", sh.Primary, err), c.Close())
		}
		sc := &shardConn{addrs: [2]string{sh.Primary, sh.Replica}, cl: cl}
		sc.redialed = sync.NewCond(&sc.mu)
		c.shards = append(c.shards, sc)
	}
	return c, nil
}

// Nodes returns the number of shards.
func (c *Cluster) Nodes() int { return len(c.shards) }

// Failovers reports how many times any shard switched nodes (promotion to
// replica or redial of the same node after a drop).
func (c *Cluster) Failovers() int64 { return c.failovers.Load() }

// shardFor returns the shard owning a placement key.
func (c *Cluster) shardFor(key string) *shardConn { return c.shards[c.ring.Lookup(key)] }

// client returns the shard's current pipelined client and its generation.
func (s *shardConn) client() (*AsyncClient, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl, s.gen
}

// recover replaces a failed client observed at generation gen: if another
// caller already recovered (gen advanced), the fresh client is returned
// as-is; otherwise the shard flips to its other node (when one exists)
// and redials. The caller retries against whatever comes back.
//
// The dial and the old client's teardown both happen outside s.mu: a dial
// can stall for its full timeout and closing the old client joins its
// writer/reader goroutines, and neither may block the client() fast path
// every other request on this shard takes. One caller claims the redial
// (redialing flag); the rest wait on the condvar and re-check the
// generation when woken.
func (s *shardConn) recover(c *Cluster, gen uint64) (*AsyncClient, uint64, error) {
	s.mu.Lock()
	for {
		if s.gen != gen {
			cl, g := s.cl, s.gen
			s.mu.Unlock()
			return cl, g, nil
		}
		if !s.redialing {
			break
		}
		s.redialed.Wait()
	}
	s.redialing = true
	old := s.cl
	if s.addrs[1] != "" {
		s.active = 1 - s.active
	}
	addr := s.addrs[s.active]
	s.mu.Unlock()

	cl, err := DialAsync(addr, c.opts)

	s.mu.Lock()
	s.redialing = false
	s.redialed.Broadcast()
	if err != nil {
		// The broken client stays in place; the next recover attempt flips
		// to the other node again (alternating addresses across retries).
		s.mu.Unlock()
		return nil, 0, err
	}
	s.cl = cl
	s.gen++
	g := s.gen
	c.failovers.Add(1)
	s.mu.Unlock()
	if old != nil {
		old.Close() //lint:allow errdiscipline -- the old client is already broken; recovery replaces it wholesale
	}
	return cl, g, nil
}

// do sends one command to the shard owning placement (which also pins the
// pool connection, preserving per-key order), retrying through failover
// under the cluster's retry policy. Only transport errors trigger
// recovery; semantic errors arrive inside a reply and are returned as-is.
func (c *Cluster) do(placement string, args ...[]byte) (*reply, error) {
	return c.doOnShard(c.ring.Lookup(placement), placement, args...)
}

// doOnShard is do for an explicit shard index (scatter operations are not
// placed by key). Every failed attempt recovers the shard connection —
// failing over to the other node when one exists — before retrying.
func (c *Cluster) doOnShard(i int, placement string, args ...[]byte) (*reply, error) {
	sc := c.shards[i]
	cl, gen := sc.client()
	var rep *reply
	first := true
	_, err := c.opts.Retry.Do(time.Sleep, nil, func() error {
		if !first {
			var rerr error
			if cl, gen, rerr = sc.recover(c, gen); rerr != nil {
				return rerr
			}
		}
		first = false
		var derr error
		rep, derr = cl.Do(placement, args...)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// doBatch pipelines many commands onto one shard and waits for all
// replies. On any transport error the whole batch is retried (after
// recovery) — at-least-once, per the cluster contract.
func (sc *shardConn) doBatch(c *Cluster, placements []string, cmds [][][]byte) ([]*reply, error) {
	cl, gen := sc.client()
	var reps []*reply
	first := true
	_, err := c.opts.Retry.Do(time.Sleep, nil, func() error {
		if !first {
			var rerr error
			if cl, gen, rerr = sc.recover(c, gen); rerr != nil {
				return rerr
			}
		}
		first = false
		var berr error
		reps, berr = submitAll(cl, placements, cmds)
		return berr
	})
	if err != nil {
		return nil, err
	}
	return reps, nil
}

// submitAll enqueues every command before waiting on any reply — the
// client-side half of pipelining: one burst out, one burst back.
func submitAll(cl *AsyncClient, placements []string, cmds [][][]byte) ([]*reply, error) {
	calls := make([]*call, len(cmds))
	for i, args := range cmds {
		ca, err := cl.submit(placements[i], args...)
		if err != nil {
			return nil, err
		}
		calls[i] = ca
	}
	reps := make([]*reply, len(calls))
	var firstErr error
	for i, ca := range calls {
		rep, err := ca.wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		reps[i] = rep
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return reps, nil
}

// fanout runs fn once per shard, in parallel over the cluster's worker
// pool, and joins the per-shard errors in shard order — the deterministic
// merge every scatter operation builds on.
func (c *Cluster) fanout(fn func(shard int) error) error {
	errs := make([]error, len(c.shards))
	parallel.For(len(c.shards), parallel.Workers(c.opts.FanoutWorkers), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = fn(i)
		}
	})
	return errors.Join(errs...)
}

// group splits keys into per-shard lists, preserving input order within
// each shard.
func (c *Cluster) group(keys []string) [][]string {
	groups := make([][]string, len(c.shards))
	for _, k := range keys {
		i := c.ring.Lookup(k)
		groups[i] = append(groups[i], k)
	}
	return groups
}

// Set stores value under key on its owning shard.
func (c *Cluster) Set(key string, value []byte) error {
	rep, err := c.do(key, []byte("SET"), []byte(key), value)
	if err != nil {
		return err
	}
	if rep.kind == '-' {
		return errors.New(rep.str)
	}
	return nil
}

// Get fetches key from its owning shard; missing keys return ErrNoSuchKey.
func (c *Cluster) Get(key string) ([]byte, error) {
	rep, err := c.do(key, []byte("GET"), []byte(key))
	if err != nil {
		return nil, err
	}
	if rep.kind != '$' {
		return nil, errProtocol
	}
	if rep.bulk == nil {
		return nil, ErrNoSuchKey
	}
	return rep.bulk, nil
}

// Del removes keys (grouped per owning shard, deleted in parallel),
// returning how many existed.
func (c *Cluster) Del(keys ...string) (int, error) {
	groups := c.group(keys)
	counts := make([]int, len(groups))
	err := c.fanout(func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		cmds := make([][][]byte, len(groups[i]))
		for j, k := range groups[i] {
			cmds[j] = [][]byte{[]byte("DEL"), []byte(k)}
		}
		reps, err := c.shards[i].doBatch(c, groups[i], cmds)
		if err != nil {
			return err
		}
		for _, rep := range reps {
			counts[i] += int(rep.n)
		}
		return nil
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}

// RenameError is the typed failure of a cross-shard Rename. Cross-shard
// renames are copy-then-delete and therefore at-least-once, never atomic:
// on failure, Surviving names the key whose copy is known to hold the
// value, and Duplicated reports whether a second (stale) copy may also
// remain at Src. Callers that need exactly-once must delete the survivor
// themselves after acting on it.
type RenameError struct {
	Src, Dst   string
	Surviving  string
	Duplicated bool
	Err        error
}

// Error implements error.
func (e *RenameError) Error() string {
	state := "value survives at " + e.Surviving
	if e.Duplicated {
		state += " (stale copy may remain at " + e.Src + ")"
	}
	return fmt.Sprintf("kvstore: rename %s -> %s: %s: %v", e.Src, e.Dst, state, e.Err)
}

// Unwrap exposes the underlying transport or reply error.
func (e *RenameError) Unwrap() error { return e.Err }

// Rename moves src to dst. On one shard it is the server's atomic RENAME;
// across shards it degrades to copy-then-delete: the value is written to
// dst before src is deleted, so the value is never lost — but a failure
// between the two steps leaves both copies alive. The returned
// *RenameError names the surviving copy.
func (c *Cluster) Rename(src, dst string) error {
	ss, ds := c.shardFor(src), c.shardFor(dst)
	if ss == ds {
		rep, err := c.do(src, []byte("RENAME"), []byte(src), []byte(dst))
		if err != nil {
			return err
		}
		if rep.kind == '-' {
			return ErrNoSuchKey
		}
		return nil
	}
	v, err := c.Get(src)
	if err != nil {
		return err // nothing moved; src state unchanged
	}
	if err := c.Set(dst, v); err != nil {
		return &RenameError{Src: src, Dst: dst, Surviving: src, Err: err}
	}
	if _, err := c.Del(src); err != nil {
		return &RenameError{Src: src, Dst: dst, Surviving: dst, Duplicated: true, Err: err}
	}
	return nil
}

// Keys scans every shard for the pattern in parallel and merges the
// results, sorted.
func (c *Cluster) Keys(pattern string) ([]string, error) {
	per := make([][]string, len(c.shards))
	err := c.fanout(func(i int) error {
		rep, err := c.doOnShard(i, "", []byte("KEYS"), []byte(pattern))
		if err != nil {
			return err
		}
		if rep.kind != '*' {
			return errProtocol
		}
		ks := make([]string, len(rep.array))
		for j, b := range rep.array {
			ks[j] = string(b)
		}
		per[i] = ks
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []string
	for _, ks := range per {
		all = append(all, ks...)
	}
	sort.Strings(all)
	return all, nil
}

// MGet fetches many keys as a map; missing keys are absent. A convenience
// wrapper over MGetSlice.
func (c *Cluster) MGet(keys []string) (map[string][]byte, error) {
	vals, err := c.MGetSlice(keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for j, k := range keys {
		if vals[j] != nil {
			out[k] = vals[j]
		}
	}
	return out, nil
}

// MGetSlice fetches many keys positionally — vals[i] is the value of
// keys[i], nil if missing. One pipelined MGET per owning shard, fanned out
// in parallel; per-shard results land in a slice indexed by the key's
// original position, so there is no per-key map traffic at all. This is
// the read half of the feedback fast path.
func (c *Cluster) MGetSlice(keys []string) ([][]byte, error) {
	idx := make([][]int, len(c.shards))
	for j, k := range keys {
		i := c.ring.Lookup(k)
		idx[i] = append(idx[i], j)
	}
	vals := make([][]byte, len(keys))
	err := c.fanout(func(i int) error {
		if len(idx[i]) == 0 {
			return nil
		}
		args := make([][]byte, 1, len(idx[i])+1)
		args[0] = []byte("MGET")
		for _, j := range idx[i] {
			args = append(args, []byte(keys[j]))
		}
		rep, err := c.doOnShard(i, "", args...)
		if err != nil {
			return err
		}
		if rep.kind != '*' || len(rep.array) != len(idx[i]) {
			return errProtocol
		}
		for n, j := range idx[i] {
			vals[j] = rep.array[n]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// msetChunk bounds pairs per MSET command: large enough that the per-key
// cost is one parse and one map assign (not a command round trip), small
// enough that chunks still pipeline and bursts stay bounded in memory.
const msetChunk = 256

// MSet stores many key-value pairs: keys are sorted (wire order must be a
// pure function of the data, never of map iteration) and handed to
// MSetSlice.
func (c *Cluster) MSet(kv map[string][]byte) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = kv[k]
	}
	return c.MSetSlice(keys, vals)
}

// MSetSlice stores vals[i] under keys[i]: keys are grouped per shard in
// input order, and each shard's group rides chunked multi-key MSET
// commands, all shards in parallel. This is the write half of the feedback
// fast path — per-key cost inside an MSET is roughly an order of magnitude
// below a SET round trip, which is where the pipelined client's bulk-write
// speedup comes from. Wire order is a pure function of the input order;
// callers feeding from a map must sort first (MSet does).
func (c *Cluster) MSetSlice(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MSetSlice: %d keys, %d values", len(keys), len(vals))
	}
	idx := make([][]int, len(c.shards))
	for j, k := range keys {
		i := c.ring.Lookup(k)
		idx[i] = append(idx[i], j)
	}
	return c.fanout(func(i int) error {
		g := idx[i]
		if len(g) == 0 {
			return nil
		}
		nChunks := (len(g) + msetChunk - 1) / msetChunk
		placements := make([]string, 0, nChunks)
		cmds := make([][][]byte, 0, nChunks)
		for lo := 0; lo < len(g); lo += msetChunk {
			hi := lo + msetChunk
			if hi > len(g) {
				hi = len(g)
			}
			args := make([][]byte, 1, 1+2*(hi-lo))
			args[0] = []byte("MSET")
			for _, j := range g[lo:hi] {
				args = append(args, []byte(keys[j]), vals[j])
			}
			placements = append(placements, keys[g[lo]])
			cmds = append(cmds, args)
		}
		reps, err := c.shards[i].doBatch(c, placements, cmds)
		if err != nil {
			return err
		}
		for _, rep := range reps {
			if rep.kind == '-' {
				return errors.New(rep.str)
			}
		}
		return nil
	})
}

// Size sums key counts across shards, queried in parallel.
func (c *Cluster) Size() (int, error) {
	counts := make([]int, len(c.shards))
	err := c.fanout(func(i int) error {
		rep, rerr := c.doOnShard(i, "", []byte("DBSIZE"))
		if rerr != nil {
			return rerr
		}
		counts[i] = int(rep.n)
		return nil
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}

// FlushAll clears every shard in parallel.
func (c *Cluster) FlushAll() error {
	return c.fanout(func(i int) error {
		_, err := c.doOnShard(i, "", []byte("FLUSHALL"))
		return err
	})
}

// Close closes all shard clients.
func (c *Cluster) Close() error {
	var first error
	for _, sc := range c.shards {
		if sc == nil || sc.cl == nil {
			continue
		}
		if err := sc.cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

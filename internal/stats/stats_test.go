package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zero")
	}
	s.Add(-3)
	if s.Std() != 0 {
		t.Error("single-sample std must be 0")
	}
	if s.Min() != -3 || s.Max() != -3 {
		t.Errorf("Min/Max after one negative sample: %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.String(); !strings.Contains(got, "mean=2") || !strings.Contains(got, "n=2") {
		t.Errorf("String() = %q", got)
	}
}

func TestHistogramBinningAndClamp(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)  // bin 0
	h.Add(9.5)  // bin 9
	h.Add(-5)   // clamped to bin 0
	h.Add(99)   // clamped to bin 9
	h.Add(5)    // bin 5
	h.Add(10.0) // exactly Hi clamps to last bin
	if h.Counts[0] != 2 || h.Counts[9] != 3 || h.Counts[5] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("BinCenter(0) = %v", c)
	}
}

func TestHistogramFractionAtLeast(t *testing.T) {
	// Emulate Fig. 5: occupancy samples mostly in the top bin.
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 83; i++ {
		h.Add(99.0)
	}
	for i := 0; i < 17; i++ {
		h.Add(50.0)
	}
	if f := h.FractionAtLeast(98); math.Abs(f-0.83) > 1e-9 {
		t.Errorf("FractionAtLeast(98) = %v, want 0.83", f)
	}
	if f := h.FractionAtLeast(0); f != 1 {
		t.Errorf("FractionAtLeast(0) = %v, want 1", f)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.6)
	h.Add(0.65)
	h.Add(0.1)
	if m := h.Mode(); math.Abs(m-0.625) > 1e-9 {
		t.Errorf("Mode = %v, want 0.625", m)
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and bins<1 both repaired
	h.Add(5)
	if h.N() != 1 || len(h.Counts) != 1 {
		t.Errorf("degenerate histogram: n=%d bins=%d", h.N(), len(h.Counts))
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.5)
	out := h.Render("test")
	if !strings.Contains(out, "# test (n=3)") {
		t.Errorf("Render missing header: %q", out)
	}
	if !strings.Contains(out, "##") {
		t.Errorf("Render missing bars: %q", out)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-10, 1}, {110, 5}, {62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty slice percentile must be 0")
	}
	// Must not mutate the input.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedianAndFractionWithin(t *testing.T) {
	xs := []float64{10, 2, 8, 4, 6}
	if m := Median(xs); m != 6 {
		t.Errorf("Median = %v", m)
	}
	if f := FractionWithin(xs, 6); math.Abs(f-0.6) > 1e-9 {
		t.Errorf("FractionWithin(6) = %v, want 0.6", f)
	}
	if FractionWithin(nil, 1) != 0 {
		t.Error("empty FractionWithin must be 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "GPU"
	s.Append(0, 1)
	s.Append(1, 2)
	if s.Len() != 2 || s.Y[1] != 2 {
		t.Errorf("series = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"#nodes", "wall-time", "#runs", "node hours"}}
	tb.AddRow("100", "6 hours", "5", "3000")
	tb.AddRow("4000", "24 hours", "1", "96,000")
	out := tb.String()
	if !strings.Contains(out, "#nodes") || !strings.Contains(out, "96,000") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("want 4 lines (header, rule, 2 rows), got %d:\n%s", len(lines), out)
	}
}

func TestPropertySummaryMatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		va := 0.0
		for _, x := range xs {
			va += (x - mean) * (x - mean)
		}
		std := math.Sqrt(va / float64(n-1))
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Std()-std) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHistogramConservesCount(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-100, 100, 37)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == h.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

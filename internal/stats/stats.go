// Package stats provides the small statistical toolkit the evaluation
// harness needs: streaming summaries (mean/std/min/max), fixed-bin
// histograms, percentiles, and labeled series that print in the same
// rows-and-columns form as the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a streaming summary of a sequence of float64 samples
// using Welford's algorithm, so it is numerically stable for millions of
// samples of similar magnitude (e.g. per-frame feedback latencies).
type Summary struct {
	n         int
	mean, m2  float64
	min, max  float64
	populated bool
}

// Add incorporates one sample.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.populated || x < s.min {
		s.min = x
	}
	if !s.populated || x > s.max {
		s.max = x
	}
	s.populated = true
}

// N returns the number of samples added.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (0 for n < 2).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String renders the summary in the figure-caption form
// "mean=… std=… [min, max] n=…".
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.4g std=%.4g [%.4g, %.4g] n=%d",
		s.Mean(), s.Std(), s.Min(), s.Max(), s.n)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Samples outside
// the range are clamped to the first/last bin so that distribution tails
// remain visible, matching how the paper's figures render outliers.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	n      int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.n++
}

// N returns the total number of samples.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// FractionAtLeast returns the fraction of samples with value >= x.
// It is used for statements like "98% GPU occupancy for 83% of the time".
func (h *Histogram) FractionAtLeast(x float64) float64 {
	if h.n == 0 {
		return 0
	}
	c := 0
	for i := range h.Counts {
		w := (h.Hi - h.Lo) / float64(len(h.Counts))
		lo := h.Lo + float64(i)*w
		if lo >= x {
			c += h.Counts[i]
		}
	}
	return float64(c) / float64(h.n)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Render prints the histogram as rows of "center count" with an ASCII bar,
// so `mummi-bench` output can be eyeballed or piped into a plotter.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (n=%d)\n", label, h.n)
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*50/maxC)
		fmt.Fprintf(&b, "%12.5g %8d %s\n", h.BinCenter(i), c, bar)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// FractionWithin returns the fraction of xs with value <= limit.
func FractionWithin(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if x <= limit {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Series is a labeled (x, y) series for figure output.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table is a simple column-aligned text table used by the bench harness to
// print paper-style rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hcell := range t.Header {
		widths[i] = len(hcell)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

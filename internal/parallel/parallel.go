// Package parallel provides the deterministic chunked fan-out primitive
// behind the selector engine's sharded rank updates (§4.4 Task 2) and any
// other embarrassingly-parallel loop in the workflow. It is deliberately
// minimal — contiguous chunks, one goroutine per chunk, no work stealing —
// because the determinism contract the samplers depend on is easiest to
// state for static decompositions: if the loop body writes only state owned
// by its own index range, the aggregate result is bit-identical for every
// worker count, including 1.
//
// All of it is standard library; GOMAXPROCS is the only sizing input.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values <= 0 mean GOMAXPROCS. It is
// the shared convention for every worker field in the repo (campaign
// config, selector engine, continuum stepper).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For splits the index range [0, n) into one contiguous chunk per worker
// and invokes fn(lo, hi) once per chunk, concurrently when more than one
// chunk results. minChunk bounds fan-out from below: workers are reduced
// until every chunk holds at least minChunk indexes, so tiny loops stay on
// the calling goroutine instead of paying spawn latency.
//
// Determinism contract: fn must touch only state owned by indexes in
// [lo, hi) (plus read-only shared state). Under that contract the combined
// effect of a For call is identical — bit for bit — regardless of the
// worker count, because chunking changes only the grouping of independent
// per-index computations, never their inputs.
//
// For blocks until every chunk completes. Panics inside fn propagate to
// the caller (re-raised after all workers finish).
func For(n, workers, minChunk int, fn func(lo, hi int)) {
	ForChunk(n, workers, minChunk, func(_, lo, hi int) { fn(lo, hi) })
}

// Chunks reports how many chunks ForChunk will use for the same arguments,
// so callers can pre-size a per-chunk result slice before fanning out. The
// chunk decomposition depends only on (n, workers, minChunk), never on
// scheduling, which is what makes per-chunk reductions reproducible.
func Chunks(n, workers, minChunk int) int {
	if n <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForChunk is For with the chunk index exposed: fn(chunk, lo, hi) runs once
// per contiguous chunk, chunk in [0, Chunks(n, workers, minChunk)). It
// exists for parallel reductions — each chunk writes its partial result to
// its own slot in a pre-sized slice, and the caller combines the slots
// after ForChunk returns. When the combining operator selects the extremum
// under a total order (as the selector's argmax does), the reduction is
// grouping-invariant and therefore identical for every worker count.
func ForChunk(n, workers, minChunk int, fn func(chunk, lo, hi int)) {
	workers = Chunks(n, workers, minChunk)
	if workers == 0 {
		return
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	base, extra := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < extra {
			hi++
		}
		wg.Add(1)
		go func(chunk, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			fn(chunk, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolves(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, 1, func(lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForResultIndependentOfWorkerCount(t *testing.T) {
	// The determinism contract: per-index outputs must be identical for any
	// worker count when the body writes only its own indexes.
	n := 500
	ref := make([]float64, n)
	For(n, 1, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = float64(i)*1.5 + 2
		}
	})
	for _, workers := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		got := make([]float64, n)
		For(n, workers, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = float64(i)*1.5 + 2
			}
		})
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
}

func TestForMinChunkKeepsSmallLoopsSerial(t *testing.T) {
	var calls int32
	For(10, 8, 100, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 10 {
			t.Errorf("chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("minChunk ignored: %d chunks", calls)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate")
		}
	}()
	For(100, 4, 1, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

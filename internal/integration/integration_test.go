// Package integration exercises the full stack end to end: workflow
// manager + Flux-like scheduler + maestro conductor + real data backends
// (kv cluster, indexed tar archives) + both feedback pipelines + the
// continuum/patch/encoder application path, under virtual time — the whole
// paper in miniature, with failures injected.
package integration

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/continuum"
	"mummi/internal/core"
	"mummi/internal/datastore"
	"mummi/internal/dynim"
	"mummi/internal/feedback"
	"mummi/internal/kvstore"
	"mummi/internal/maestro"
	"mummi/internal/mlenc"
	"mummi/internal/patch"
	"mummi/internal/profile"
	"mummi/internal/sched"
	"mummi/internal/sim"
	"mummi/internal/taridx"
	"mummi/internal/units"
	"mummi/internal/vclock"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

// TestThreeScalePipelineOverKVStore runs a miniature three-scale campaign:
// a real continuum model feeds real patches through the real encoder into
// the patch selector; CG surrogates attached to simulation jobs stream RDF
// frames into a real KV cluster; the CG→continuum feedback updates the
// live continuum parameters; CG frames promote through the binned selector
// into AA jobs whose frames drive the AA→CG feedback.
func TestThreeScalePipelineOverKVStore(t *testing.T) {
	clk := vclock.NewVirtual(epoch)

	// Machine + scheduler + conductor.
	machine, err := cluster.New(cluster.Summit(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(clk, sched.Config{Machine: machine, Policy: sched.FirstMatch, Mode: sched.Async})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := maestro.NewConductor(clk, maestro.FluxBackend{S: s}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Real KV cluster as the feedback store.
	addrs, shutdown, err := kvstore.LaunchCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	store, err := datastore.Open(datastore.Config{Backend: datastore.BackendKV, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// The macro model and its feedback loop.
	contCfg := continuum.Config{GridN: 48, Domain: 150 * units.Nm,
		InnerLipids: 3, OuterLipids: 2, Proteins: 12, Seed: 9}
	macro, err := continuum.New(contCfg)
	if err != nil {
		t.Fatal(err)
	}
	cgFB, err := feedback.NewCGToContinuum(feedback.CGConfig{
		Store: store, NewNS: "rdf-new", DoneNS: "rdf-done",
		Species: contCfg.Species(), States: continuum.NumProteinStates,
		Apply: macro.UpdateCouplings,
	})
	if err != nil {
		t.Fatal(err)
	}
	aaApplied := 0
	aaFB, err := feedback.NewAAToCG(feedback.AAConfig{
		Store: store, NewNS: "ss-new", DoneNS: "ss-done", Workers: 2,
		Apply: func(consensus string, v int) error { aaApplied = v; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Selectors: encoder-driven farthest point for patches; binned for
	// frames.
	encoder, err := mlenc.NewPatchEncoder(contCfg.Species(), patch.DefaultGridN, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	patchQueues := dynim.NewQueueSet(9, 500)
	patchSel := patchQueues.AsSelector(func(p dynim.Point) string { return "all" })
	frameEnc := mlenc.DefaultFrameEncoder()
	frameSel, err := dynim.NewBinned([]dynim.BinDim{
		{Lo: 0, Hi: 1, Bins: 8}, {Lo: 0, Hi: 1, Bins: 8}, {Lo: 0, Hi: 1, Bins: 8}}, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Simulation attachments: when a CG job starts, a CG surrogate streams
	// frames into the store on a virtual-time ticker, and offers encoded
	// frames to the AA selector; AA jobs stream secondary structures.
	var tickers []*vclock.Ticker
	cgStarted, aaStarted := 0, 0
	attachCG := func(p dynim.Point, id sched.JobID) {
		cgStarted++
		g := sim.NewCGSim("cg-"+p.ID, contCfg.Species(), cgStarted%continuum.NumProteinStates, nil, int64(cgStarted))
		tk := vclock.NewTicker(clk, 10*time.Minute, func(time.Time) {
			f := g.NextFrame()
			b, err := f.Marshal()
			if err != nil {
				t.Error(err)
				return
			}
			if err := store.Put("rdf-new", f.ID(), b); err != nil {
				t.Error(err)
				return
			}
			frameSel.Add(dynim.Point{ID: f.ID(), Coords: frameEnc.Encode(f.Tilt, f.Rotation, f.Depth)})
		})
		tickers = append(tickers, tk)
	}
	attachAA := func(p dynim.Point, id sched.JobID) {
		aaStarted++
		g := sim.NewAASim("aa-"+p.ID, int64(aaStarted))
		tk := vclock.NewTicker(clk, 30*time.Minute, func(time.Time) {
			f := g.NextFrame()
			b, err := f.Marshal()
			if err != nil {
				t.Error(err)
				return
			}
			if err := store.Put("ss-new", f.ID(), b); err != nil {
				t.Error(err)
			}
		})
		tickers = append(tickers, tk)
	}
	defer func() {
		for _, tk := range tickers {
			tk.Stop()
		}
	}()

	wm, err := core.New(core.Config{
		Clock: clk, Conductor: cond, PollEvery: 2 * time.Minute, Seed: 77,
		Couplings: []core.CouplingSpec{
			{
				Name:          "continuum-to-cg",
				Selector:      patchSel,
				SetupReq:      sched.Request{Name: "createsim", Cores: 24},
				SetupDuration: func(*rand.Rand) time.Duration { return 30 * time.Minute },
				SimReq:        sched.Request{Name: "cg-sim", Cores: 3, GPUs: 1},
				SimDuration: func(*rand.Rand, dynim.Point) time.Duration {
					return 8 * time.Hour
				},
				MaxSims: 8, ReadyTarget: 4, MaxSetups: 2,
				OnSimStart:    attachCG,
				Feedback:      cgFB,
				FeedbackEvery: 30 * time.Minute,
			},
			{
				Name:          "cg-to-aa",
				Selector:      frameSel,
				SetupReq:      sched.Request{Name: "backmap", Cores: 24},
				SetupDuration: func(*rand.Rand) time.Duration { return 45 * time.Minute },
				SimReq:        sched.Request{Name: "aa-sim", Cores: 3, GPUs: 1},
				SimDuration: func(*rand.Rand, dynim.Point) time.Duration {
					return 6 * time.Hour
				},
				MaxSims: 4, ReadyTarget: 2, MaxSetups: 1,
				OnSimStart:    attachAA,
				Feedback:      aaFB,
				FeedbackEvery: time.Hour,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Task 1 at application level: continuum snapshots → patches → encoder
	// → selector.
	snapTicker := vclock.NewTicker(clk, time.Hour, func(time.Time) {
		macro.Step(1 * units.Microsecond)
		snap := macro.Snapshot()
		ps, err := patch.CreateAll(snap, patch.DefaultSize, patch.DefaultGridN)
		if err != nil {
			t.Error(err)
			return
		}
		for _, p := range ps {
			enc, err := encoder.Encode(p)
			if err != nil {
				t.Error(err)
				return
			}
			uid := fmt.Sprintf("%s@%s", p.ID, clk.Now().Format("150405"))
			if err := wm.AddCandidate("continuum-to-cg", dynim.Point{ID: uid, Coords: enc}); err != nil {
				t.Error(err)
			}
		}
	})
	defer snapTicker.Stop()

	if err := wm.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(36 * time.Hour)
	wm.Stop()

	// The whole pipeline must have turned over.
	stats := wm.Stats()
	if cgStarted == 0 {
		t.Fatal("no CG simulations started")
	}
	if aaStarted == 0 {
		t.Fatalf("no AA simulations started (cg-to-aa stats: %+v)", stats[1])
	}
	if macro.ParamVersion() == 0 {
		t.Error("CG→continuum feedback never updated the macro model")
	}
	if aaApplied == 0 {
		t.Error("AA→CG feedback never applied a consensus")
	}
	// Feedback tagging: no processed frame left behind in active
	// namespaces after the last iteration... (new frames may have arrived
	// since; just require the done namespaces to be populated).
	doneRDF, err := store.Keys("rdf-done")
	if err != nil {
		t.Fatal(err)
	}
	if len(doneRDF) == 0 {
		t.Error("no RDF frames tagged processed")
	}
	doneSS, err := store.Keys("ss-done")
	if err != nil {
		t.Fatal(err)
	}
	if len(doneSS) == 0 {
		t.Error("no AA frames tagged processed")
	}
	if cgFB.TotalFrames() == 0 || aaFB.TotalFrames() == 0 {
		t.Errorf("feedback frame counts: cg=%d aa=%d", cgFB.TotalFrames(), aaFB.TotalFrames())
	}
}

// TestNodeFailureDrainAndRecovery injects a node failure mid-campaign: the
// node is drained (running jobs continue, nothing new lands there), its
// jobs are failed, and the workflow resubmits and completes everything.
func TestNodeFailureDrainAndRecovery(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	machine, err := cluster.New(cluster.Summit(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(clk, sched.Config{Machine: machine, Policy: sched.FirstMatch, Mode: sched.Async})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := maestro.NewConductor(clk, maestro.FluxBackend{S: s}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel := dynim.NewFarthestPoint(1, 0)
	var onNode0 []sched.JobID
	wm, err := core.New(core.Config{
		Clock: clk, Conductor: cond, PollEvery: time.Minute, Seed: 5,
		Couplings: []core.CouplingSpec{{
			Name: "c", Selector: sel,
			SetupReq:      sched.Request{Name: "setup", Cores: 24},
			SetupDuration: func(*rand.Rand) time.Duration { return 30 * time.Minute },
			SimReq:        sched.Request{Name: "sim", Cores: 3, GPUs: 1},
			SimDuration:   func(*rand.Rand, dynim.Point) time.Duration { return 12 * time.Hour },
			MaxSims:       12, ReadyTarget: 4, MaxSetups: 2,
			OnSimStart: func(p dynim.Point, id sched.JobID) {
				if j, ok := s.Job(id); ok && len(j.Alloc.Parts) > 0 && j.Alloc.Parts[0].Node == 0 {
					onNode0 = append(onNode0, id)
				}
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		wm.AddCandidate("c", dynim.Point{ID: fmt.Sprintf("p%02d", i), Coords: []float64{float64(i)}})
	}
	if err := wm.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(3 * time.Hour)
	if len(onNode0) == 0 {
		t.Fatal("nothing placed on node 0")
	}

	// Node 0 dies: drain it, fail its jobs (Flux's failure handling; the
	// tracker resubmits).
	s.Drain(0)
	for _, id := range onNode0 {
		if j, ok := s.Job(id); ok && j.State == sched.Running {
			if err := s.Fail(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	clk.RunFor(2 * time.Hour)
	// Everything now runs on node 1 only.
	if machine.Node(0).FreeGPUs() != 6 {
		t.Errorf("drained node still hosts %d GPU jobs", 6-machine.Node(0).FreeGPUs())
	}
	_, running, _ := s.Counts()
	if running == 0 {
		t.Error("workflow stalled after node failure")
	}
	st := wm.Stats()[0]
	if st.FailedSims == 0 {
		t.Error("failures not recorded")
	}

	// Node repaired: undrain and confirm it fills again.
	s.Undrain(0)
	clk.RunFor(6 * time.Hour)
	if machine.Node(0).FreeGPUs() == 6 {
		t.Error("repaired node never reused")
	}
}

// TestArchiveLifecycleThroughWorkflow routes simulation outputs through the
// taridx backend end to end: frames written during the run land in
// archives, survive a reopen, and remain readable with a standard decoder
// semantics (same bytes back).
func TestArchiveLifecycleThroughWorkflow(t *testing.T) {
	dir := t.TempDir()
	store, err := datastore.Open(datastore.Config{Backend: datastore.BackendTaridx, Root: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewCGSim("arch", 4, 1, nil, 6)
	var ids []string
	var lastBytes []byte
	for i := 0; i < 50; i++ {
		f := g.NextFrame()
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put("frames", f.ID(), b); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		lastBytes = b
	}
	// Feedback-style tagging into a second archive.
	for _, id := range ids[:25] {
		if err := store.Move("frames", id, "frames-done"); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()

	// Reopen (crash/restart) and verify.
	store2, err := datastore.Open(datastore.Config{Backend: datastore.BackendTaridx, Root: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	active, err := store2.Keys("frames")
	if err != nil {
		t.Fatal(err)
	}
	done, err := store2.Keys("frames-done")
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 25 || len(done) != 25 {
		t.Fatalf("after reopen: %d active, %d done", len(active), len(done))
	}
	got, err := store2.Get("frames", ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(lastBytes) {
		t.Error("frame corrupted across archive reopen")
	}
	// And the bytes still decode as a frame.
	f, err := sim.UnmarshalCGFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != ids[len(ids)-1] {
		t.Errorf("decoded frame id %q", f.ID())
	}
}

// TestOccupancyProfilerAgainstScheduler wires the profiler to a live
// scheduler and checks the occupancy series tracks reality.
func TestOccupancyProfilerAgainstScheduler(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	machine, err := cluster.New(cluster.Summit(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(clk, sched.Config{Machine: machine, Policy: sched.FirstMatch, Mode: sched.Async})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(clk, 10*time.Minute, func() profile.Event {
		return profile.Event{GPUFrac: machine.GPUOccupancy(), CPUFrac: machine.CPUOccupancy()}
	})
	defer p.Stop()
	// Fill all six GPUs for 2 hours, then idle.
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(sched.Request{Name: "sim", GPUs: 1, Cores: 2, Duration: 2 * time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunFor(4 * time.Hour)
	evs := p.Events()
	gpu, _ := profile.OccupancyHistograms(evs, 100)
	// Half the events at full occupancy, half idle.
	if f := gpu.FractionAtLeast(98); f < 0.4 || f > 0.6 {
		t.Errorf("full-occupancy fraction = %v, want ~0.5", f)
	}
	frac, mean, _ := profile.Headline(evs, 98)
	if frac < 0.4 || frac > 0.6 || mean < 40 || mean > 60 {
		t.Errorf("headline = %v, %v", frac, mean)
	}
}

// TestTaridxDirectAndStoreAgree sanity-checks that the taridx Store and a
// directly opened Archive see the same data.
func TestTaridxDirectAndStoreAgree(t *testing.T) {
	dir := t.TempDir()
	st, err := taridx.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("ns", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	a, err := taridx.Open(dir + "/ns.tar")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got, err := a.Get("k1")
	if err != nil || string(got) != "v1" {
		t.Fatalf("direct archive read = %q, %v", got, err)
	}
}

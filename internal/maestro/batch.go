package maestro

import (
	"errors"
	"fmt"
	"sync"

	"mummi/internal/cluster"
	"mummi/internal/sched"
	"mummi/internal/vclock"
)

// BatchBackend is a second scheduler backend: a minimal SLURM/LSF-style
// batch scheduler with immediate first-fit placement and a FIFO wait queue.
// It exists to make Maestro's portability claim concrete (§4.3: "at the
// back-end, Maestro can interface with different job schedulers") — the
// workflow manager runs unchanged on either the Flux-like sched.Scheduler
// or this one; only the Conductor's backend changes.
//
// Compared to sched.Scheduler it has no queue-manager/matcher split, no
// policy knobs, and no modeled scheduling costs: placement is instantaneous
// at submission or at a predecessor's completion, which is how conventional
// batch systems appear to a workflow that polls them.
type BatchBackend struct {
	clk     vclock.Clock
	machine *cluster.Machine

	mu       sync.Mutex
	nextID   sched.JobID
	jobs     map[sched.JobID]*batchJob
	queue    []sched.JobID
	onStart  func(sched.JobID)
	onFinish func(sched.JobID, sched.State)
	// finishErrs counts unexpected auto-completion failures (model bugs).
	finishErrs int64
}

type batchJob struct {
	id    sched.JobID
	req   sched.Request
	state sched.State
	alloc cluster.Alloc
}

// NewBatchBackend builds the backend over a machine.
func NewBatchBackend(clk vclock.Clock, machine *cluster.Machine) (*BatchBackend, error) {
	if machine == nil {
		return nil, errors.New("maestro: nil machine")
	}
	return &BatchBackend{clk: clk, machine: machine, jobs: make(map[sched.JobID]*batchJob)}, nil
}

// Submit implements Backend.
func (b *BatchBackend) Submit(req sched.Request) (sched.JobID, error) {
	if req.NodeCount < 1 {
		req.NodeCount = 1
	}
	b.mu.Lock()
	b.nextID++
	j := &batchJob{id: b.nextID, req: req, state: sched.Pending}
	b.jobs[j.id] = j
	b.queue = append(b.queue, j.id)
	started := b.drainLocked()
	b.mu.Unlock()
	for _, id := range started {
		b.notifyStart(id)
	}
	return j.id, nil
}

// drainLocked places queued jobs FIFO (no backfilling) while they fit.
// Returns the ids started; caller notifies outside the lock.
func (b *BatchBackend) drainLocked() []sched.JobID {
	var started []sched.JobID
	for len(b.queue) > 0 {
		j := b.jobs[b.queue[0]]
		if j == nil || j.state != sched.Pending {
			b.queue = b.queue[1:]
			continue
		}
		nodes := b.fit(j.req)
		if nodes == nil {
			break // FIFO head blocked: classic batch behaviour
		}
		var alloc cluster.Alloc
		ok := true
		for _, n := range nodes {
			part, err := b.machine.Reserve(n, j.req.Cores, j.req.GPUs)
			if err != nil {
				ok = false
				break
			}
			alloc.Parts = append(alloc.Parts, part)
		}
		if !ok {
			b.machine.Release(alloc)
			break
		}
		b.queue = b.queue[1:]
		j.state = sched.Running
		j.alloc = alloc
		started = append(started, j.id)
		if j.req.Duration > 0 {
			id := j.id
			b.clk.After(j.req.Duration, func() {
				// Losing to a manual Complete/Fail is the one benign outcome
				// of the auto-completion race; anything else is a model bug.
				if err := b.finish(id, sched.Completed); err != nil && !errors.Is(err, sched.ErrAlreadyTerminal) {
					b.mu.Lock()
					b.finishErrs++
					b.mu.Unlock()
				}
			})
		}
	}
	return started
}

func (b *BatchBackend) fit(req sched.Request) []int {
	var nodes []int
	for n := 0; n < b.machine.NumNodes() && len(nodes) < req.NodeCount; n++ {
		if b.machine.NodeFits(n, req.Cores, req.GPUs) {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) < req.NodeCount {
		return nil
	}
	return nodes
}

func (b *BatchBackend) notifyStart(id sched.JobID) {
	b.mu.Lock()
	cb := b.onStart
	b.mu.Unlock()
	if cb != nil {
		cb(id)
	}
}

func (b *BatchBackend) finish(id sched.JobID, st sched.State) error {
	b.mu.Lock()
	j := b.jobs[id]
	if j == nil {
		b.mu.Unlock()
		return fmt.Errorf("maestro: unknown batch job %d", id)
	}
	if j.state != sched.Running {
		if j.state == sched.Completed || j.state == sched.Failed {
			b.mu.Unlock()
			return fmt.Errorf("maestro: batch job %d: %w", id, sched.ErrAlreadyTerminal)
		}
		b.mu.Unlock()
		return fmt.Errorf("maestro: batch job %d is %v, not running", id, j.state)
	}
	j.state = st
	b.machine.Release(j.alloc)
	started := b.drainLocked()
	cb := b.onFinish
	b.mu.Unlock()
	if cb != nil {
		cb(id, st)
	}
	for _, sid := range started {
		b.notifyStart(sid)
	}
	return nil
}

// Complete marks a running job done (drivers without Duration call this).
func (b *BatchBackend) Complete(id sched.JobID) error { return b.finish(id, sched.Completed) }

// Fail implements Backend: it marks a running job failed.
func (b *BatchBackend) Fail(id sched.JobID) error { return b.finish(id, sched.Failed) }

// Cancel implements Backend (pending jobs only).
func (b *BatchBackend) Cancel(id sched.JobID) bool {
	b.mu.Lock()
	j := b.jobs[id]
	if j == nil || j.state != sched.Pending {
		b.mu.Unlock()
		return false
	}
	j.state = sched.Canceled
	cb := b.onFinish
	b.mu.Unlock()
	if cb != nil {
		cb(id, sched.Canceled)
	}
	return true
}

// State returns a job's state.
func (b *BatchBackend) State(id sched.JobID) (sched.State, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.jobs[id]
	if !ok {
		return 0, false
	}
	return j.state, true
}

// OnStart implements Backend.
func (b *BatchBackend) OnStart(fn func(sched.JobID)) {
	b.mu.Lock()
	b.onStart = fn
	b.mu.Unlock()
}

// OnFinish implements Backend.
func (b *BatchBackend) OnFinish(fn func(sched.JobID, sched.State)) {
	b.mu.Lock()
	b.onFinish = fn
	b.mu.Unlock()
}

// interface check
var _ Backend = (*BatchBackend)(nil)

package maestro_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/core"
	"mummi/internal/dynim"
	"mummi/internal/maestro"
	"mummi/internal/sched"
	"mummi/internal/vclock"
)

func newBatch(t *testing.T, nodes int) (*vclock.Virtual, *cluster.Machine, *maestro.BatchBackend) {
	t.Helper()
	clk := vclock.NewVirtual(time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC))
	m, err := cluster.New(cluster.Summit(nodes))
	if err != nil {
		t.Fatal(err)
	}
	b, err := maestro.NewBatchBackend(clk, m)
	if err != nil {
		t.Fatal(err)
	}
	return clk, m, b
}

func TestBatchImmediatePlacement(t *testing.T) {
	clk, m, b := newBatch(t, 1)
	var started []sched.JobID
	b.OnStart(func(id sched.JobID) { started = append(started, id) })
	id, err := b.Submit(sched.Request{Name: "sim", GPUs: 1, Cores: 2, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0] != id {
		t.Fatalf("started = %v", started)
	}
	if m.UsedGPUs() != 1 {
		t.Error("GPU not reserved")
	}
	if st, ok := b.State(id); !ok || st != sched.Running {
		t.Errorf("state = %v", st)
	}
	clk.RunFor(2 * time.Hour)
	if st, _ := b.State(id); st != sched.Completed {
		t.Errorf("state after duration = %v", st)
	}
	if m.UsedGPUs() != 0 {
		t.Error("GPU not released")
	}
}

func TestBatchFIFOQueueing(t *testing.T) {
	clk, _, b := newBatch(t, 1)
	var finished int
	b.OnFinish(func(sched.JobID, sched.State) { finished++ })
	// 8 single-GPU jobs on a 6-GPU node: two must queue then run.
	for i := 0; i < 8; i++ {
		if _, err := b.Submit(sched.Request{Name: "sim", GPUs: 1, Cores: 2, Duration: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunFor(30 * time.Minute)
	if finished != 0 {
		t.Error("jobs finished early")
	}
	clk.RunFor(3 * time.Hour)
	if finished != 8 {
		t.Errorf("finished = %d", finished)
	}
}

func TestBatchHeadOfLineBlocks(t *testing.T) {
	clk, _, b := newBatch(t, 2)
	b.Submit(sched.Request{Name: "hog", Cores: 44, NodeCount: 2, Duration: 4 * time.Hour})
	big, _ := b.Submit(sched.Request{Name: "big", Cores: 44, NodeCount: 2, Duration: time.Hour})
	small, _ := b.Submit(sched.Request{Name: "small", Cores: 1, Duration: time.Hour})
	clk.RunFor(time.Hour)
	if st, _ := b.State(big); st != sched.Pending {
		t.Errorf("big = %v", st)
	}
	if st, _ := b.State(small); st != sched.Pending {
		t.Errorf("small = %v, want pending (no backfill)", st)
	}
	clk.RunFor(6 * time.Hour)
	if st, _ := b.State(small); st != sched.Completed {
		t.Errorf("small never ran: %v", st)
	}
}

func TestBatchCancelAndManualComplete(t *testing.T) {
	clk, _, b := newBatch(t, 1)
	for i := 0; i < 6; i++ {
		b.Submit(sched.Request{Name: "sim", GPUs: 1, Cores: 2}) // no duration
	}
	queued, _ := b.Submit(sched.Request{Name: "late", GPUs: 1, Cores: 2})
	if !b.Cancel(queued) {
		t.Error("cancel of queued job failed")
	}
	if b.Cancel(queued) {
		t.Error("double cancel succeeded")
	}
	if b.Cancel(sched.JobID(1)) {
		t.Error("cancel of running job succeeded")
	}
	if err := b.Complete(sched.JobID(1)); err != nil {
		t.Fatalf("manual complete: %v", err)
	}
	if st, _ := b.State(sched.JobID(1)); st != sched.Completed {
		t.Errorf("manual complete = %v", st)
	}
	if err := b.Fail(sched.JobID(2)); err != nil {
		t.Fatalf("manual fail: %v", err)
	}
	if st, _ := b.State(sched.JobID(2)); st != sched.Failed {
		t.Errorf("manual fail = %v", st)
	}
	if err := b.Fail(sched.JobID(2)); !errors.Is(err, sched.ErrAlreadyTerminal) {
		t.Errorf("double fail = %v, want ErrAlreadyTerminal", err)
	}
	clk.RunFor(time.Minute)
	if _, ok := b.State(sched.JobID(999)); ok {
		t.Error("unknown job reported")
	}
}

// TestWorkflowRunsOnBatchBackend is the portability claim: the unchanged
// workflow manager drives a conventional batch scheduler through the same
// Conductor API it uses for the Flux-like one.
func TestWorkflowRunsOnBatchBackend(t *testing.T) {
	clk, m, b := newBatch(t, 2)
	cond, err := maestro.NewConductor(clk, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel := dynim.NewFarthestPoint(1, 0)
	completed := 0
	wm, err := core.New(core.Config{
		Clock: clk, Conductor: cond, PollEvery: 2 * time.Minute, Seed: 1,
		Couplings: []core.CouplingSpec{{
			Name: "c", Selector: sel,
			SetupReq:      sched.Request{Name: "setup", Cores: 24},
			SetupDuration: func(*rand.Rand) time.Duration { return time.Hour },
			SimReq:        sched.Request{Name: "sim", Cores: 3, GPUs: 1},
			SimDuration:   func(*rand.Rand, dynim.Point) time.Duration { return 4 * time.Hour },
			MaxSims:       12, ReadyTarget: 4, MaxSetups: 2,
			OnSimEnd: func(p dynim.Point, id sched.JobID, st sched.State) {
				if st == sched.Completed {
					completed++
				}
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		wm.AddCandidate("c", dynim.Point{ID: fmt.Sprintf("p%02d", i), Coords: []float64{float64(i)}})
	}
	if err := wm.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(48 * time.Hour)
	if completed == 0 {
		t.Fatalf("workflow made no progress on the batch backend: %+v", wm.Stats()[0])
	}
	if m.UsedGPUs() < 0 || m.UsedCores() < 0 {
		t.Error("resource accounting corrupted")
	}
}

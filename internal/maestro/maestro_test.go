package maestro

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mummi/internal/cluster"
	"mummi/internal/sched"
	"mummi/internal/vclock"
)

var epoch = time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC)

// fakeBackend records submissions and lets tests fire callbacks.
type fakeBackend struct {
	mu       sync.Mutex
	subs     []sched.Request
	subTimes []time.Time
	clk      vclock.Clock
	failNext bool
	onFinish func(sched.JobID, sched.State)
	onStart  func(sched.JobID)
}

func (f *fakeBackend) Submit(req sched.Request) (sched.JobID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext {
		f.failNext = false
		return 0, errors.New("backend rejected")
	}
	f.subs = append(f.subs, req)
	f.subTimes = append(f.subTimes, f.clk.Now())
	return sched.JobID(len(f.subs)), nil
}
func (f *fakeBackend) Cancel(sched.JobID) bool                    { return true }
func (f *fakeBackend) Fail(sched.JobID) error                     { return nil }
func (f *fakeBackend) OnFinish(fn func(sched.JobID, sched.State)) { f.onFinish = fn }
func (f *fakeBackend) OnStart(fn func(sched.JobID))               { f.onStart = fn }

func TestConductorThrottlesTo100PerMinute(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fb := &fakeBackend{clk: clk}
	c, err := NewConductor(clk, fb, 100)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := c.Submit(sched.Request{Name: "cg", GPUs: 1, Cores: 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunFor(90 * time.Second)
	// At 100/min, ~150 jobs should have reached the backend in 90 s.
	got := len(fb.subs)
	if got < 140 || got > 160 {
		t.Errorf("submissions in 90s = %d, want ~150", got)
	}
	if c.Queued() != n-got {
		t.Errorf("Queued = %d, want %d", c.Queued(), n-got)
	}
	clk.RunFor(3 * time.Minute)
	if len(fb.subs) != n || c.Queued() != 0 {
		t.Errorf("drain incomplete: %d submitted, %d queued", len(fb.subs), c.Queued())
	}
	if c.Submitted() != n {
		t.Errorf("Submitted = %d", c.Submitted())
	}
	// The inter-submission spacing must be the throttle period.
	for i := 1; i < 10; i++ {
		gap := fb.subTimes[i].Sub(fb.subTimes[i-1])
		if gap != 600*time.Millisecond {
			t.Fatalf("gap %d = %v, want 600ms", i, gap)
		}
	}
}

func TestConductorUnthrottled(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fb := &fakeBackend{clk: clk}
	c, _ := NewConductor(clk, fb, 0)
	for i := 0; i < 50; i++ {
		c.Submit(sched.Request{Name: "x", Cores: 1}, nil)
	}
	clk.RunFor(time.Millisecond)
	if len(fb.subs) != 50 {
		t.Errorf("unthrottled submitted %d/50", len(fb.subs))
	}
}

func TestConductorCallbacksAndErrors(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fb := &fakeBackend{clk: clk, failNext: true}
	c, _ := NewConductor(clk, fb, 0)
	var ids []sched.JobID
	var errs []error
	cb := func(id sched.JobID, err error) { ids = append(ids, id); errs = append(errs, err) }
	c.Submit(sched.Request{Name: "a", Cores: 1}, cb)
	c.Submit(sched.Request{Name: "b", Cores: 1}, cb)
	clk.Run()
	if len(ids) != 2 {
		t.Fatalf("callbacks = %d", len(ids))
	}
	if errs[0] == nil || errs[1] != nil {
		t.Errorf("errs = %v", errs)
	}
	if ids[1] == 0 {
		t.Error("successful submission got zero id")
	}
}

func TestConductorClose(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	fb := &fakeBackend{clk: clk}
	c, _ := NewConductor(clk, fb, 60)
	for i := 0; i < 10; i++ {
		c.Submit(sched.Request{Name: "x", Cores: 1}, nil)
	}
	clk.RunFor(time.Second) // one submission at t=0
	c.Close()
	clk.RunFor(time.Hour)
	if len(fb.subs) > 2 {
		t.Errorf("submissions after Close: %d", len(fb.subs))
	}
	if err := c.Submit(sched.Request{Name: "y", Cores: 1}, nil); err == nil {
		t.Error("Submit after Close succeeded")
	}
}

func TestNewConductorValidation(t *testing.T) {
	if _, err := NewConductor(vclock.NewVirtual(epoch), nil, 10); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestFluxBackendEndToEnd(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	m, err := cluster.New(cluster.Summit(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(clk, sched.Config{Machine: m, Policy: sched.FirstMatch, Mode: sched.Async})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConductor(clk, FluxBackend{S: s}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var started, finished int
	c.OnStart(func(sched.JobID) { started++ })
	c.OnFinish(func(id sched.JobID, st sched.State) {
		if st == sched.Completed {
			finished++
		}
	})
	var gotID sched.JobID
	c.Submit(sched.Request{Name: "cg", GPUs: 1, Cores: 3, Duration: time.Hour},
		func(id sched.JobID, err error) { gotID = id })
	clk.RunFor(2 * time.Hour)
	if gotID == 0 {
		t.Fatal("submission callback never fired")
	}
	if started != 1 || finished != 1 {
		t.Errorf("started=%d finished=%d", started, finished)
	}
	j, ok := s.Job(gotID)
	if !ok || j.State != sched.Completed {
		t.Errorf("job state = %v", j.State)
	}
}

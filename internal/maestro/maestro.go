// Package maestro is mummi-go's analogue of the Maestro workflow conductor
// (§4.3): "a consistent API to schedule and monitor jobs" that absorbs "the
// changes and peculiarities of different job schedulers", keeping the
// workflow manager agnostic to the scheduler underneath.
//
// The Conductor adds the submission throttle the paper describes ("for most
// parts of this campaign, we specifically throttled the rate of submission
// to prevent overloading the job scheduler", ~100 jobs/min): submissions
// queue locally and drain to the backend at a bounded rate.
package maestro

import (
	"errors"
	"sync"
	"time"

	"mummi/internal/sched"
	"mummi/internal/vclock"
)

// Backend abstracts a job scheduler. The Flux-like sched.Scheduler is one
// backend; tests provide fakes, and other schedulers (a SLURM/LSF model)
// can slot in without touching the workflow.
type Backend interface {
	Submit(req sched.Request) (sched.JobID, error)
	Cancel(id sched.JobID) bool
	// Fail forces a running job to the failed state (watchdog kills, crash
	// handling). Failing an already-terminal job returns an error matching
	// sched.ErrAlreadyTerminal.
	Fail(id sched.JobID) error
	// OnFinish registers a terminal-state callback (completed/failed/
	// canceled).
	OnFinish(fn func(id sched.JobID, state sched.State))
	// OnStart registers a start callback.
	OnStart(fn func(id sched.JobID))
}

// FluxBackend adapts sched.Scheduler to the Backend interface.
type FluxBackend struct{ S *sched.Scheduler }

// Submit implements Backend.
func (f FluxBackend) Submit(req sched.Request) (sched.JobID, error) {
	j, err := f.S.Submit(req)
	if err != nil {
		return 0, err
	}
	return j.ID, nil
}

// Cancel implements Backend.
func (f FluxBackend) Cancel(id sched.JobID) bool { return f.S.Cancel(id) }

// Fail implements Backend.
func (f FluxBackend) Fail(id sched.JobID) error { return f.S.Fail(id) }

// OnFinish implements Backend.
func (f FluxBackend) OnFinish(fn func(sched.JobID, sched.State)) {
	f.S.OnFinish(func(j *sched.Job) { fn(j.ID, j.State) })
}

// OnStart implements Backend.
func (f FluxBackend) OnStart(fn func(sched.JobID)) {
	f.S.OnStart(func(j *sched.Job) { fn(j.ID) })
}

// Conductor queues submissions and drains them to the backend at a bounded
// rate. All methods are safe for concurrent use.
type Conductor struct {
	backend Backend
	clk     vclock.Clock
	period  time.Duration // min spacing between submissions

	mu      sync.Mutex
	queue   []pendingSub
	next    int64 // local ticket ids for queued submissions
	tickets map[int64]sched.JobID
	timer   vclock.EventID
	armed   bool
	closed  bool
	// submitted counts backend submissions (throughput accounting).
	submitted int64
}

type pendingSub struct {
	ticket int64
	req    sched.Request
	onSub  func(sched.JobID, error)
}

// NewConductor wraps a backend with a rate limit of jobsPerMinute
// (0 disables throttling).
func NewConductor(clk vclock.Clock, backend Backend, jobsPerMinute int) (*Conductor, error) {
	if backend == nil {
		return nil, errors.New("maestro: nil backend")
	}
	var period time.Duration
	if jobsPerMinute > 0 {
		period = time.Minute / time.Duration(jobsPerMinute)
	}
	return &Conductor{backend: backend, clk: clk, period: period,
		tickets: make(map[int64]sched.JobID)}, nil
}

// Submit enqueues a request; onSub (optional) is invoked with the backend's
// job id once the throttled submission actually happens.
func (c *Conductor) Submit(req sched.Request, onSub func(sched.JobID, error)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("maestro: conductor closed")
	}
	c.next++
	c.queue = append(c.queue, pendingSub{ticket: c.next, req: req, onSub: onSub})
	if !c.armed {
		c.armed = true
		c.timer = c.clk.After(0, c.tick)
	}
	return nil
}

// tick submits one queued request and re-arms.
func (c *Conductor) tick() {
	c.mu.Lock()
	if c.closed || len(c.queue) == 0 {
		c.armed = false
		c.mu.Unlock()
		return
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	more := len(c.queue) > 0
	if more {
		c.timer = c.clk.After(c.period, c.tick)
	} else {
		c.armed = false
	}
	c.mu.Unlock()

	id, err := c.backend.Submit(p.req)
	c.mu.Lock()
	c.submitted++
	if err == nil {
		c.tickets[p.ticket] = id
	}
	c.mu.Unlock()
	if p.onSub != nil {
		p.onSub(id, err)
	}
}

// Queued returns the locally queued (not yet submitted) count.
func (c *Conductor) Queued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Submitted returns how many jobs reached the backend.
func (c *Conductor) Submitted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitted
}

// Cancel forwards to the backend.
func (c *Conductor) Cancel(id sched.JobID) bool { return c.backend.Cancel(id) }

// Fail forwards to the backend: it forces a running job to the failed
// state, which drives the same terminal callback as a natural failure.
func (c *Conductor) Fail(id sched.JobID) error { return c.backend.Fail(id) }

// OnFinish forwards to the backend.
func (c *Conductor) OnFinish(fn func(sched.JobID, sched.State)) { c.backend.OnFinish(fn) }

// OnStart forwards to the backend.
func (c *Conductor) OnStart(fn func(sched.JobID)) { c.backend.OnStart(fn) }

// ErrClosed is delivered to the submission callbacks of requests still
// queued when the conductor shuts down (the allocation ended before the
// throttle drained them); callers treat it like any submission failure and
// recover the configuration.
var ErrClosed = errors.New("maestro: conductor closed")

// Close stops the drain loop. Queued submissions are not silently dropped:
// each pending callback is invoked with ErrClosed so the workflow can
// checkpoint those configurations.
func (c *Conductor) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	q := c.queue
	c.queue = nil
	if c.armed {
		c.clk.Cancel(c.timer)
		c.armed = false
	}
	c.mu.Unlock()
	for _, p := range q {
		if p.onSub != nil {
			p.onSub(0, ErrClosed)
		}
	}
}

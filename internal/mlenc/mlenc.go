// Package mlenc provides the two encoders behind the paper's ML-based
// selection (§4.1(6)): a patch encoder that reduces a 37×37 multi-species
// density patch to a 9-D representation, and a frame encoder that codes a
// CG frame's RAS-RAF conformational state into 3-D.
//
// The paper's patch encoder is a metric-learning deep neural network. We
// substitute a deterministic fixed-weight multilayer perceptron over patch
// density features: it preserves what selection actually needs — a stable
// map where similar patches land close in 9-D and dissimilar ones spread
// out — without a training pipeline (see DESIGN.md substitutions). Weights
// are derived from a seed, so encodings are reproducible across restarts,
// which the selector's checkpoint/replay machinery relies on.
package mlenc

import (
	"fmt"
	"math"
	"math/rand"

	"mummi/internal/patch"
)

// PatchEncoder maps patches to OutDim-dimensional vectors.
type PatchEncoder struct {
	species int
	gridN   int
	outDim  int

	// Two-layer MLP: features -> hidden (tanh) -> out.
	w1 [][]float64
	b1 []float64
	w2 [][]float64
	b2 []float64
}

// featuresPerSpecies is the number of summary features extracted per
// species field: mean, variance, center density, radial gradient, and two
// quadrant asymmetries.
const featuresPerSpecies = 6

// NewPatchEncoder builds an encoder for patches with the given species
// count and grid resolution. outDim is 9 in the paper.
func NewPatchEncoder(species, gridN, outDim int, seed int64) (*PatchEncoder, error) {
	if species < 1 || gridN < 3 || outDim < 1 {
		return nil, fmt.Errorf("mlenc: invalid encoder shape species=%d gridN=%d outDim=%d",
			species, gridN, outDim)
	}
	in := species * featuresPerSpecies
	hidden := 2*in + 8
	rng := rand.New(rand.NewSource(seed))
	e := &PatchEncoder{species: species, gridN: gridN, outDim: outDim}
	e.w1, e.b1 = randomLayer(rng, in, hidden)
	e.w2, e.b2 = randomLayer(rng, hidden, outDim)
	return e, nil
}

func randomLayer(rng *rand.Rand, in, out int) ([][]float64, []float64) {
	w := make([][]float64, out)
	scale := 1.0 / math.Sqrt(float64(in))
	for i := range w {
		w[i] = make([]float64, in)
		for j := range w[i] {
			w[i][j] = rng.NormFloat64() * scale
		}
	}
	b := make([]float64, out)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.1
	}
	return w, b
}

// OutDim returns the encoding dimensionality.
func (e *PatchEncoder) OutDim() int { return e.outDim }

// Encode reduces a patch to its 9-D (OutDim) representation.
func (e *PatchEncoder) Encode(p *patch.Patch) ([]float64, error) {
	if len(p.Fields) != e.species || p.GridN != e.gridN {
		return nil, fmt.Errorf("mlenc: patch shape (%d species, %d grid) does not match encoder (%d, %d)",
			len(p.Fields), p.GridN, e.species, e.gridN)
	}
	feats := e.features(p)
	h := forward(e.w1, e.b1, feats, true)
	return forward(e.w2, e.b2, h, false), nil
}

// features extracts per-species density summaries.
func (e *PatchEncoder) features(p *patch.Patch) []float64 {
	n := p.GridN
	c := n / 2
	out := make([]float64, 0, e.species*featuresPerSpecies)
	for _, f := range p.Fields {
		var sum, sum2 float64
		for _, v := range f {
			sum += float64(v)
			sum2 += float64(v) * float64(v)
		}
		cnt := float64(len(f))
		mean := sum / cnt
		variance := sum2/cnt - mean*mean
		center := float64(f[c*n+c])
		// Radial gradient: center ring vs edge ring.
		var edge float64
		for i := 0; i < n; i++ {
			edge += float64(f[i]) + float64(f[(n-1)*n+i])
		}
		edge /= float64(2 * n)
		// Quadrant asymmetries.
		var q00, q11 float64
		for y := 0; y < c; y++ {
			for x := 0; x < c; x++ {
				q00 += float64(f[y*n+x])
				q11 += float64(f[(y+c)*n+(x+c)])
			}
		}
		qn := float64(c * c)
		out = append(out, mean, variance, center, center-edge, q00/qn-mean, q11/qn-mean)
	}
	return out
}

func forward(w [][]float64, b []float64, in []float64, tanh bool) []float64 {
	out := make([]float64, len(w))
	for i := range w {
		s := b[i]
		for j, v := range in {
			s += w[i][j] * v
		}
		if tanh {
			s = math.Tanh(s)
		}
		out[i] = s
	}
	return out
}

// FrameEncoder codes a CG frame's RAS-RAF conformational state into 3-D
// (paper §4.1(6)): "the conformational state of the RAS-RAF complex is
// coded using a 3-D representation" of disparate quantities, for which L2
// distance is not meaningful — hence the binned sampler downstream. Each
// dimension is normalized to [0, 1] by its physical range.
type FrameEncoder struct {
	lo, hi [3]float64
}

// NewFrameEncoder builds the encoder from per-dimension physical ranges:
// typically tilt angle [0°, 180°], rotation [0°, 360°], and membrane depth
// [-5 nm, +5 nm].
func NewFrameEncoder(lo, hi [3]float64) (*FrameEncoder, error) {
	for i := range lo {
		if hi[i] <= lo[i] {
			return nil, fmt.Errorf("mlenc: frame dim %d has empty range [%v, %v]", i, lo[i], hi[i])
		}
	}
	return &FrameEncoder{lo: lo, hi: hi}, nil
}

// DefaultFrameEncoder returns the RAS-RAF ranges above.
func DefaultFrameEncoder() *FrameEncoder {
	fe, err := NewFrameEncoder([3]float64{0, 0, -5}, [3]float64{180, 360, 5})
	if err != nil {
		panic(err) // static ranges; cannot fail
	}
	return fe
}

// Encode normalizes (tilt, rotation, depth) to [0,1]³, clamping outliers.
func (fe *FrameEncoder) Encode(tilt, rotation, depth float64) []float64 {
	raw := [3]float64{tilt, rotation, depth}
	out := make([]float64, 3)
	for i, v := range raw {
		u := (v - fe.lo[i]) / (fe.hi[i] - fe.lo[i])
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

package mlenc

import (
	"math"
	"testing"

	"mummi/internal/continuum"
	"mummi/internal/patch"
	"mummi/internal/units"
)

func mkPatch(t *testing.T, seed int64) *patch.Patch {
	t.Helper()
	sim, err := continuum.New(continuum.Config{
		GridN: 64, Domain: 200 * units.Nm, InnerLipids: 3, OuterLipids: 2,
		Proteins: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(1 * units.Microsecond)
	snap := sim.Snapshot()
	p, err := patch.Create(snap, snap.Protein[0], patch.DefaultSize, patch.DefaultGridN)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEncoderShapeAndDeterminism(t *testing.T) {
	p := mkPatch(t, 5)
	e, err := NewPatchEncoder(5, 37, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if e.OutDim() != 9 {
		t.Errorf("OutDim = %d", e.OutDim())
	}
	a, err := e.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 9 {
		t.Fatalf("encoding dim = %d", len(a))
	}
	b, _ := e.Encode(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoder not deterministic")
		}
	}
	// A second encoder with the same seed produces identical encodings
	// (restart reproducibility).
	e2, _ := NewPatchEncoder(5, 37, 9, 42)
	c, _ := e2.Encode(p)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same-seed encoders disagree")
		}
	}
}

func TestEncoderSeparatesDifferentPatches(t *testing.T) {
	e, _ := NewPatchEncoder(5, 37, 9, 42)
	a, _ := e.Encode(mkPatch(t, 5))
	b, _ := e.Encode(mkPatch(t, 6))
	d := 0.0
	for i := range a {
		d += (a[i] - b[i]) * (a[i] - b[i])
	}
	if math.Sqrt(d) < 1e-6 {
		t.Error("different patches collapsed to the same encoding")
	}
}

func TestEncoderContinuity(t *testing.T) {
	// A tiny density perturbation must move the encoding only slightly
	// relative to the spread between genuinely different patches.
	e, _ := NewPatchEncoder(5, 37, 9, 42)
	p := mkPatch(t, 5)
	a, _ := e.Encode(p)
	for sp := range p.Fields {
		for i := range p.Fields[sp] {
			p.Fields[sp][i] += 1e-4
		}
	}
	b, _ := e.Encode(p)
	var small float64
	for i := range a {
		small += (a[i] - b[i]) * (a[i] - b[i])
	}
	q, _ := e.Encode(mkPatch(t, 7))
	var large float64
	for i := range a {
		large += (a[i] - q[i]) * (a[i] - q[i])
	}
	if math.Sqrt(small) > math.Sqrt(large)/10 {
		t.Errorf("perturbation moved encoding %v, inter-patch distance %v",
			math.Sqrt(small), math.Sqrt(large))
	}
}

func TestEncoderShapeMismatch(t *testing.T) {
	e, _ := NewPatchEncoder(8, 37, 9, 1)
	if _, err := e.Encode(mkPatch(t, 5)); err == nil { // patch has 5 species
		t.Error("species mismatch accepted")
	}
}

func TestNewPatchEncoderValidation(t *testing.T) {
	for _, c := range [][3]int{{0, 37, 9}, {5, 2, 9}, {5, 37, 0}} {
		if _, err := NewPatchEncoder(c[0], c[1], c[2], 1); err == nil {
			t.Errorf("shape %v accepted", c)
		}
	}
}

func TestFrameEncoderNormalizes(t *testing.T) {
	fe := DefaultFrameEncoder()
	v := fe.Encode(90, 180, 0)
	want := []float64{0.5, 0.5, 0.5}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("Encode mid-range = %v", v)
		}
	}
	lo := fe.Encode(0, 0, -5)
	hi := fe.Encode(180, 360, 5)
	for i := range lo {
		if lo[i] != 0 || hi[i] != 1 {
			t.Errorf("range endpoints: lo=%v hi=%v", lo, hi)
		}
	}
}

func TestFrameEncoderClamps(t *testing.T) {
	fe := DefaultFrameEncoder()
	v := fe.Encode(-50, 720, 99)
	if v[0] != 0 || v[1] != 1 || v[2] != 1 {
		t.Errorf("clamping failed: %v", v)
	}
}

func TestNewFrameEncoderValidation(t *testing.T) {
	if _, err := NewFrameEncoder([3]float64{0, 0, 5}, [3]float64{1, 1, 5}); err == nil {
		t.Error("empty range accepted")
	}
}

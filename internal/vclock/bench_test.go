package vclock

import (
	"testing"
	"time"
)

// BenchmarkVirtualDenseSameTimestamp drains bursts of events that all fire
// at the same instant — the shape a campaign's zero-cost callbacks and
// aligned poll ticks produce. This is the run-draining heap's best case.
func BenchmarkVirtualDenseSameTimestamp(b *testing.B) {
	const burst = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := NewVirtual(epoch)
		n := 0
		for j := 0; j < burst; j++ {
			v.After(time.Second, func() { n++ })
		}
		v.Run()
		if n != burst {
			b.Fatal("lost events")
		}
	}
}

// BenchmarkVirtualCancelHeavy models the scheduler's auto-completion
// pattern: every job arms a timer and most are canceled before firing.
// This was O(n) per cancel before the index-tracked heap.
func BenchmarkVirtualCancelHeavy(b *testing.B) {
	const pending = 20000
	b.ReportAllocs()
	ids := make([]EventID, pending)
	for i := 0; i < b.N; i++ {
		v := NewVirtual(epoch)
		for j := 0; j < pending; j++ {
			ids[j] = v.After(time.Duration(j)*time.Millisecond, func() {})
		}
		for j := 0; j < pending; j += 2 {
			if !v.Cancel(ids[j]) {
				b.Fatal("cancel failed")
			}
		}
		v.Run()
	}
}

// BenchmarkVirtualSteadyChurn measures the steady-state DES loop: a rolling
// window of pending events where each firing schedules a successor — the
// event-loop shape of a long campaign replay at fixed concurrency.
func BenchmarkVirtualSteadyChurn(b *testing.B) {
	const window = 10000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NewVirtual(epoch)
		fired := 0
		var reschedule func()
		reschedule = func() {
			fired++
			if fired < 10*window {
				v.After(time.Duration(1+fired%97)*time.Millisecond, reschedule)
			}
		}
		for j := 0; j < window; j++ {
			v.After(time.Duration(j%53)*time.Millisecond, reschedule)
		}
		v.Run()
	}
}

package vclock

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// refVirtual is an executable specification of Virtual: a plain slice
// scanned linearly for the earliest (at, seq) event, with lazy cancel
// marks — the pre-optimization implementation, kept as the oracle the
// four-ary index-tracked heap is fuzzed against. Any divergence in event
// order, observed times, Cancel results, or counters is an equivalence
// bug in the optimized engine.
type refVirtual struct {
	now      time.Time
	seq      int64
	nextID   EventID
	events   []*refEvent
	canceled map[EventID]bool
	executed int64
}

type refEvent struct {
	at  time.Time
	seq int64
	id  EventID
	fn  func()
}

func newRefVirtual(epoch time.Time) *refVirtual {
	return &refVirtual{now: epoch, canceled: make(map[EventID]bool)}
}

func (r *refVirtual) Now() time.Time { return r.now }

func (r *refVirtual) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return r.At(r.now.Add(d), fn)
}

func (r *refVirtual) At(t time.Time, fn func()) EventID {
	if t.Before(r.now) {
		t = r.now
	}
	r.nextID++
	r.seq++
	r.events = append(r.events, &refEvent{at: t, seq: r.seq, id: r.nextID, fn: fn})
	return r.nextID
}

func (r *refVirtual) Cancel(id EventID) bool {
	if r.canceled[id] {
		return false
	}
	for _, e := range r.events {
		if e.id == id {
			r.canceled[id] = true
			return true
		}
	}
	return false
}

func (r *refVirtual) Pending() int { return len(r.events) - len(r.canceled) }

func (r *refVirtual) Executed() int64 { return r.executed }

func (r *refVirtual) Step() bool {
	for len(r.events) > 0 {
		best := 0
		for i := 1; i < len(r.events); i++ {
			e, b := r.events[i], r.events[best]
			if e.at.Before(b.at) || (e.at.Equal(b.at) && e.seq < b.seq) {
				best = i
			}
		}
		e := r.events[best]
		r.events = append(r.events[:best], r.events[best+1:]...)
		if r.canceled[e.id] {
			delete(r.canceled, e.id)
			continue
		}
		r.now = e.at
		r.executed++
		e.fn()
		return true
	}
	return false
}

func (r *refVirtual) RunUntil(deadline time.Time) {
	for {
		earliest, any := time.Time{}, false
		for _, e := range r.events {
			if !r.canceled[e.id] && (!any || e.at.Before(earliest)) {
				earliest, any = e.at, true
			}
		}
		if !any || earliest.After(deadline) {
			break
		}
		r.Step()
	}
	if r.now.Before(deadline) {
		r.now = deadline
	}
}

// desClock is the surface the equivalence driver needs from both engines.
type desClock interface {
	Now() time.Time
	After(d time.Duration, fn func()) EventID
	Cancel(id EventID) bool
	Pending() int
	Executed() int64
	Step() bool
	RunUntil(deadline time.Time)
}

// driveScript runs a seeded randomized schedule against clk and returns the
// observed trace. Every decision a callback makes (nested scheduling,
// cancellations, delays) is a pure function of the event's label and the
// seed — never of host state — so two behaviorally identical engines
// produce byte-identical traces.
func driveScript(clk desClock, seed int64, initial int) []string {
	var trace []string
	ids := make(map[int]EventID)
	label := 0
	var schedule func(from int, depth int)
	schedule = func(from, depth int) {
		label++
		me := label
		rng := rand.New(rand.NewSource(seed + int64(me)*7919))
		// Coarse delays force dense same-timestamp runs; occasional zero
		// delays exercise fire-at-now batches.
		d := time.Duration(rng.Intn(5)) * time.Second
		ids[me] = clk.After(d, func() {
			trace = append(trace, fmt.Sprintf("fire %d @%v", me, clk.Now().Sub(time.Time{})))
			if depth < 3 && rng.Intn(2) == 0 {
				schedule(me, depth+1)
			}
			if rng.Intn(3) == 0 {
				// Cancel a pseudo-random earlier label: may be pending,
				// already fired, or already canceled — all three results
				// must match.
				victim := 1 + rng.Intn(me)
				trace = append(trace, fmt.Sprintf("cancel %d by %d = %v", victim, me, clk.Cancel(ids[victim])))
			}
			if rng.Intn(4) == 0 {
				schedule(me, depth+1)
			}
		})
	}
	for i := 0; i < initial; i++ {
		schedule(0, 0)
	}
	// Interleave stepping with mid-run cancels and a deadline stop.
	steps := 0
	for clk.Step() {
		steps++
		if steps%7 == 0 {
			rng := rand.New(rand.NewSource(seed ^ int64(steps)))
			victim := 1 + rng.Intn(label)
			trace = append(trace, fmt.Sprintf("midcancel %d = %v", victim, clk.Cancel(ids[victim])))
		}
		if steps > 100000 {
			panic("runaway script")
		}
	}
	trace = append(trace, fmt.Sprintf("end pending=%d executed=%d now=%v",
		clk.Pending(), clk.Executed(), clk.Now().Sub(time.Time{})))
	return trace
}

// TestVirtualEquivalentToReference fuzzes the optimized engine against the
// linear-scan oracle: event order, observed clock readings, Cancel results,
// and final counters must be identical for every seed.
func TestVirtualEquivalentToReference(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		got := driveScript(NewVirtual(epoch), seed, 20)
		want := driveScript(newRefVirtual(epoch), seed, 20)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: trace[%d]:\n optimized: %s\n reference: %s", seed, i, got[i], want[i])
			}
		}
	}
}

// TestVirtualRunUntilEquivalence checks the deadline path against the
// oracle, including events exactly on the deadline.
func TestVirtualRunUntilEquivalence(t *testing.T) {
	build := func(clk desClock) []string {
		var trace []string
		for i := 0; i < 30; i++ {
			i := i
			clk.After(time.Duration(i%7)*time.Second, func() {
				trace = append(trace, fmt.Sprintf("%d@%v", i, clk.Now().Sub(epoch)))
			})
		}
		clk.RunUntil(epoch.Add(3 * time.Second))
		trace = append(trace, fmt.Sprintf("cut pending=%d now=%v", clk.Pending(), clk.Now().Sub(epoch)))
		clk.RunUntil(epoch.Add(time.Hour))
		trace = append(trace, fmt.Sprintf("end pending=%d now=%v", clk.Pending(), clk.Now().Sub(epoch)))
		return trace
	}
	got := build(NewVirtual(epoch))
	want := build(newRefVirtual(epoch))
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trace[%d]: optimized %q, reference %q", i, got[i], want[i])
		}
	}
}

// TestCancelWithinSameTimestampRun pins the drain-batch semantics: an event
// already staged for execution (same timestamp as the currently running
// event) must still be cancelable, exactly as when it sat in the heap.
func TestCancelWithinSameTimestampRun(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []int
	var id2, id3 EventID
	v.After(time.Second, func() {
		fired = append(fired, 1)
		if !v.Cancel(id3) {
			t.Error("Cancel of later same-timestamp event returned false")
		}
		if v.Cancel(id3) {
			t.Error("double Cancel of batched event returned true")
		}
	})
	id2 = v.After(time.Second, func() { fired = append(fired, 2) })
	id3 = v.After(time.Second, func() { fired = append(fired, 3) })
	_ = id2
	v.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Errorf("fired = %v, want [1 2]", fired)
	}
	if v.Pending() != 0 {
		t.Errorf("Pending = %d after Run", v.Pending())
	}
}

// TestCancelEarlierInRunReturnsFalse pins Cancel-after-fire inside a
// same-timestamp run: by the time a later event runs, its same-instant
// predecessor has fired, so canceling it reports false.
func TestCancelEarlierInRunReturnsFalse(t *testing.T) {
	v := NewVirtual(epoch)
	var id1 EventID
	ran := false
	id1 = v.After(time.Second, func() {})
	v.After(time.Second, func() {
		ran = true
		if v.Cancel(id1) {
			t.Error("Cancel of already-fired same-timestamp event returned true")
		}
	})
	v.Run()
	if !ran {
		t.Fatal("second event never ran")
	}
}

// TestCancelSelfDuringExecutionReturnsFalse pins that an event canceling
// its own ID mid-callback sees false (it is no longer pending).
func TestCancelSelfDuringExecutionReturnsFalse(t *testing.T) {
	v := NewVirtual(epoch)
	var self EventID
	self = v.After(time.Second, func() {
		if v.Cancel(self) {
			t.Error("Cancel of the executing event returned true")
		}
	})
	v.Run()
}

// TestEventStructsRecycled checks the freelist actually reuses structs:
// steady-state scheduling must not grow the pending set or leak into the
// index.
func TestEventStructsRecycled(t *testing.T) {
	v := NewVirtual(epoch)
	for i := 0; i < 1000; i++ {
		v.After(time.Duration(i)*time.Millisecond, func() {})
	}
	v.Run()
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d", v.Pending())
	}
	if len(v.free) == 0 {
		t.Fatal("freelist empty after a full run")
	}
	// A second wave must be served from the freelist without growing it.
	grew := len(v.free)
	for i := 0; i < 500; i++ {
		v.After(time.Duration(i)*time.Millisecond, func() {})
	}
	v.Run()
	if len(v.free) != grew {
		t.Errorf("freelist grew from %d to %d on a smaller second wave", grew, len(v.free))
	}
}

// Package vclock abstracts wall-clock time behind a Clock interface with two
// implementations: Real (backed by the system clock) and Virtual (a
// deterministic discrete-event scheduler). The same workflow-manager,
// scheduler, and feedback code runs under either clock; examples run in real
// time, while the campaign driver replays a 600,000-node-hour Summit
// campaign in virtual time on one machine.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// EventID identifies a scheduled callback so it can be canceled.
type EventID int64

// Clock is the time facility components program against. Now returns the
// current time; After schedules fn to run once d from now; Cancel revokes a
// pending event (returning false if it already fired or never existed).
type Clock interface {
	Now() time.Time
	After(d time.Duration, fn func()) EventID
	Cancel(id EventID) bool
}

// ---------------------------------------------------------------------------
// Real clock

// Real is a Clock backed by the system clock and time.AfterFunc.
// The zero value is ready to use.
type Real struct {
	mu     sync.Mutex
	nextID EventID
	timers map[EventID]*time.Timer
}

// NewReal returns a real-time clock.
func NewReal() *Real { return &Real{timers: make(map[EventID]*time.Timer)} }

// Now returns the current wall-clock time.
func (r *Real) Now() time.Time { return time.Now() }

// After schedules fn after real duration d.
func (r *Real) After(d time.Duration, fn func()) EventID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = make(map[EventID]*time.Timer)
	}
	r.nextID++
	id := r.nextID
	r.timers[id] = time.AfterFunc(d, func() {
		r.mu.Lock()
		delete(r.timers, id)
		r.mu.Unlock()
		fn()
	})
	return id
}

// Cancel stops a pending timer.
func (r *Real) Cancel(id EventID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[id]
	if !ok {
		return false
	}
	delete(r.timers, id)
	return t.Stop()
}

// ---------------------------------------------------------------------------
// Virtual clock (discrete-event scheduler)

type event struct {
	at  time.Time
	seq int64 // tie-break: FIFO among events at the same instant
	id  EventID
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Virtual is a single-threaded discrete-event clock. Events execute in
// strictly nondecreasing time order with FIFO tie-breaking, which makes
// campaign replays deterministic. Virtual is not safe for concurrent use;
// the DES is intentionally single-threaded (see DESIGN.md §6).
type Virtual struct {
	now      time.Time
	seq      int64
	nextID   EventID
	events   eventHeap
	canceled map[EventID]bool
	executed int64
}

// NewVirtual returns a virtual clock starting at the given epoch. The paper's
// campaign ran Dec 2020 – Mar 2021; the campaign driver uses that epoch for
// flavor, but any epoch works.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch, canceled: make(map[EventID]bool)}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time { return v.now }

// After schedules fn at now+d. Negative d is treated as zero.
func (v *Virtual) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return v.At(v.now.Add(d), fn)
}

// At schedules fn at the absolute virtual time t. Times in the past are
// clamped to now, preserving run-order determinism.
func (v *Virtual) At(t time.Time, fn func()) EventID {
	if t.Before(v.now) {
		t = v.now
	}
	v.nextID++
	v.seq++
	heap.Push(&v.events, &event{at: t, seq: v.seq, id: v.nextID, fn: fn})
	return v.nextID
}

// Cancel revokes a pending event.
func (v *Virtual) Cancel(id EventID) bool {
	if id <= 0 || id > v.nextID || v.canceled[id] {
		return false
	}
	// Lazy deletion: mark and skip at pop time. Confirm the event is still
	// pending so canceling an already-fired event returns false.
	for _, e := range v.events {
		if e.id == id {
			v.canceled[id] = true
			return true
		}
	}
	return false
}

// Pending returns the number of scheduled (uncanceled) events.
func (v *Virtual) Pending() int { return len(v.events) - len(v.canceled) }

// Executed returns the total number of events that have run.
func (v *Virtual) Executed() int64 { return v.executed }

// Step runs the single earliest event, advancing time to it.
// It returns false when no events remain.
func (v *Virtual) Step() bool {
	for v.events.Len() > 0 {
		e := heap.Pop(&v.events).(*event)
		if v.canceled[e.id] {
			delete(v.canceled, e.id)
			continue
		}
		v.now = e.at
		v.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (v *Virtual) Run() {
	for v.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline (even if the event queue still holds later events).
func (v *Virtual) RunUntil(deadline time.Time) {
	for v.events.Len() > 0 {
		// Peek: the heap root is the earliest event.
		if v.events[0].at.After(deadline) {
			break
		}
		v.Step()
	}
	if v.now.Before(deadline) {
		v.now = deadline
	}
}

// RunFor executes events within the next d of virtual time.
func (v *Virtual) RunFor(d time.Duration) { v.RunUntil(v.now.Add(d)) }

// Ticker invokes fn every period until Stop is called, under any Clock.
type Ticker struct {
	clk    Clock
	period time.Duration
	fn     func(now time.Time)
	mu     sync.Mutex
	cur    EventID
	done   bool
}

// NewTicker starts a recurring callback. The first tick fires one period
// from now.
func NewTicker(clk Clock, period time.Duration, fn func(now time.Time)) *Ticker {
	t := &Ticker{clk: clk, period: period, fn: fn}
	t.mu.Lock()
	t.cur = clk.After(period, t.tick)
	t.mu.Unlock()
	return t
}

func (t *Ticker) tick() {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.cur = t.clk.After(t.period, t.tick)
	t.mu.Unlock()
	t.fn(t.clk.Now())
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	t.clk.Cancel(t.cur)
}
